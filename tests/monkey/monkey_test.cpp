#include "monkey/monkey.hpp"

#include <gtest/gtest.h>

#include "net/server.hpp"
#include "rt/tracer.hpp"

namespace libspector::monkey {
namespace {

class MonkeyTest : public ::testing::Test {
 protected:
  MonkeyTest() {
    const auto handlerA = program_.addMethod("Lcom/app/A;->onClick()V", {});
    const auto handlerB = program_.addMethod("Lcom/app/B;->onClick()V", {});
    program_.uiHandlers = {handlerA, handlerB};
  }

  net::ServerFarm farm_;
  util::SimClock clock_;
  rt::UniqueMethodTracer tracer_;
  rt::AppProgram program_;
};

TEST_F(MonkeyTest, DeliversRequestedEvents) {
  net::NetworkStack stack(farm_, clock_, util::Rng(1));
  rt::Interpreter runtime(program_, stack, tracer_, clock_, util::Rng(2));
  MonkeyConfig config;
  config.events = 100;
  config.throttleMs = 10;
  const auto stats = exercise(runtime, clock_, config);
  EXPECT_EQ(stats.eventsInjected, 100u);
  EXPECT_EQ(stats.eventsHandled, 100u);
  EXPECT_EQ(runtime.uiEventsDelivered(), 100u);
}

TEST_F(MonkeyTest, ThrottleAdvancesSimulatedClock) {
  net::NetworkStack stack(farm_, clock_, util::Rng(1));
  rt::Interpreter runtime(program_, stack, tracer_, clock_, util::Rng(2));
  MonkeyConfig config;
  config.events = 50;
  config.throttleMs = 500;
  const auto stats = exercise(runtime, clock_, config);
  EXPECT_EQ(clock_.now(), 50u * 500u);
  EXPECT_EQ(stats.elapsedMs, 50u * 500u);
}

TEST_F(MonkeyTest, StopsAtTimeBudget) {
  // Paper setup: 1,000 events at 500 ms throttle cannot fit into the
  // 8-minute budget; the run stops at the wall.
  net::NetworkStack stack(farm_, clock_, util::Rng(1));
  rt::Interpreter runtime(program_, stack, tracer_, clock_, util::Rng(2));
  MonkeyConfig config;  // defaults: 1000 events, 500 ms, 8 min
  const auto stats = exercise(runtime, clock_, config);
  EXPECT_EQ(stats.eventsInjected, 960u);  // 480s / 0.5s
  EXPECT_LE(stats.elapsedMs, config.maxRunMs + config.throttleMs);
}

TEST_F(MonkeyTest, AppWithoutHandlersStillConsumesEvents) {
  rt::AppProgram empty;
  net::NetworkStack stack(farm_, clock_, util::Rng(1));
  rt::Interpreter runtime(empty, stack, tracer_, clock_, util::Rng(2));
  MonkeyConfig config;
  config.events = 10;
  config.throttleMs = 1;
  const auto stats = exercise(runtime, clock_, config);
  EXPECT_EQ(stats.eventsInjected, 10u);
  EXPECT_EQ(stats.eventsHandled, 0u);
}

TEST_F(MonkeyTest, SameSeedSameHandlerSequence) {
  rt::UniqueMethodTracer tracerA;
  rt::UniqueMethodTracer tracerB;
  util::SimClock clockA;
  util::SimClock clockB;
  net::NetworkStack stackA(farm_, clockA, util::Rng(1));
  net::NetworkStack stackB(farm_, clockB, util::Rng(1));
  rt::Interpreter a(program_, stackA, tracerA, clockA, util::Rng(42));
  rt::Interpreter b(program_, stackB, tracerB, clockB, util::Rng(42));
  MonkeyConfig config;
  config.events = 200;
  config.throttleMs = 1;
  exercise(a, clockA, config);
  exercise(b, clockB, config);
  EXPECT_EQ(tracerA.traceFile(), tracerB.traceFile());
}

// Parameterized sweep mirroring the paper's §III-B pre-study (10..10,000
// events): injected events scale until the time budget caps them.
class EventSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EventSweep, EventBudgetRespected) {
  net::ServerFarm farm;
  util::SimClock clock;
  rt::UniqueMethodTracer tracer;
  rt::AppProgram program;
  program.uiHandlers = {program.addMethod("Lcom/app/A;->onClick()V", {})};
  net::NetworkStack stack(farm, clock, util::Rng(1));
  rt::Interpreter runtime(program, stack, tracer, clock, util::Rng(2));

  MonkeyConfig config;
  config.events = GetParam();
  config.throttleMs = 500;
  const auto stats = exercise(runtime, clock, config);
  EXPECT_EQ(stats.eventsInjected,
            std::min<std::uint32_t>(GetParam(), 960));  // 8-minute wall
}

INSTANTIATE_TEST_SUITE_P(PaperSweep, EventSweep,
                         ::testing::Values(10u, 100u, 500u, 1000u, 5000u,
                                           10000u));

}  // namespace
}  // namespace libspector::monkey
