#include "rt/tracer.hpp"

#include <gtest/gtest.h>

namespace libspector::rt {
namespace {

TEST(RingBufferTracerTest, RecordsEveryCallUpToCapacity) {
  RingBufferTracer tracer(3);
  tracer.onMethodEntry("a");
  tracer.onMethodEntry("a");  // repeated calls are recorded (stock behaviour)
  tracer.onMethodEntry("b");
  const auto trace = tracer.traceFile();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], "a");
  EXPECT_EQ(trace[1], "a");
  EXPECT_EQ(tracer.droppedCount(), 0u);
}

TEST(RingBufferTracerTest, DropsWhenFull) {
  // The paper: the stock profiler buffer "is filled within seconds of app
  // initialization" because repeated calls are all recorded.
  RingBufferTracer tracer(2);
  tracer.onMethodEntry("a");
  tracer.onMethodEntry("a");
  tracer.onMethodEntry("b");  // lost: the unique method b is never recorded
  tracer.onMethodEntry("c");
  EXPECT_EQ(tracer.traceFile().size(), 2u);
  EXPECT_EQ(tracer.droppedCount(), 2u);
  const auto trace = tracer.traceFile();
  EXPECT_EQ(trace[0], "a");
  EXPECT_EQ(trace[1], "a");
}

TEST(UniqueMethodTracerTest, DeduplicatesAndKeepsFirstSeenOrder) {
  UniqueMethodTracer tracer;
  tracer.onMethodEntry("b");
  tracer.onMethodEntry("a");
  tracer.onMethodEntry("b");
  tracer.onMethodEntry("c");
  tracer.onMethodEntry("a");
  const auto trace = tracer.traceFile();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], "b");
  EXPECT_EQ(trace[1], "a");
  EXPECT_EQ(trace[2], "c");
  EXPECT_EQ(tracer.uniqueCount(), 3u);
  EXPECT_EQ(tracer.totalEntries(), 5u);
  EXPECT_EQ(tracer.droppedCount(), 0u);
}

TEST(UniqueMethodTracerTest, NeverDropsUnderLoad) {
  UniqueMethodTracer tracer;
  for (int i = 0; i < 100000; ++i)
    tracer.onMethodEntry("method" + std::to_string(i % 500));
  EXPECT_EQ(tracer.uniqueCount(), 500u);
  EXPECT_EQ(tracer.totalEntries(), 100000u);
  EXPECT_EQ(tracer.droppedCount(), 0u);
}

TEST(TracerComparisonTest, ModificationBeatsStockOnRepetitiveWorkload) {
  // The ablation behind the paper's ART change: with a hot loop, the stock
  // buffer misses methods that run later, the unique tracer does not.
  RingBufferTracer stock(100);
  UniqueMethodTracer modified;
  for (int i = 0; i < 1000; ++i) {
    stock.onMethodEntry("hot.loop.method");
    modified.onMethodEntry("hot.loop.method");
  }
  stock.onMethodEntry("late.unique.method");
  modified.onMethodEntry("late.unique.method");

  const auto stockTrace = stock.traceFile();
  EXPECT_EQ(std::count(stockTrace.begin(), stockTrace.end(),
                       "late.unique.method"),
            0);  // lost
  const auto modifiedTrace = modified.traceFile();
  EXPECT_EQ(std::count(modifiedTrace.begin(), modifiedTrace.end(),
                       "late.unique.method"),
            1);  // captured
}

}  // namespace
}  // namespace libspector::rt
