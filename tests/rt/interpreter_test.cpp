#include "rt/interpreter.hpp"

#include <gtest/gtest.h>

#include "net/server.hpp"
#include "rt/tracer.hpp"

namespace libspector::rt {
namespace {

class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest() {
    net::EndpointProfile profile;
    profile.domain = "api.example.com";
    profile.trueCategory = "business_and_finance";
    profile.responseLogMu = 8.0;
    profile.responseLogSigma = 0.3;
    farm_.addEndpoint(profile);
  }

  std::unique_ptr<net::NetworkStack> makeStack() {
    return std::make_unique<net::NetworkStack>(farm_, clock_, util::Rng(5));
  }

  net::ServerFarm farm_;
  util::SimClock clock_;
  UniqueMethodTracer tracer_;
};

AppProgram programWithNestedCalls() {
  AppProgram program;
  const MethodId leaf = program.addMethod("Lcom/app/Leaf;->work()V", {});
  const MethodId mid =
      program.addMethod("Lcom/app/Mid;->call()V", {CallAction{leaf}});
  NetRequestAction request;
  request.domain = "api.example.com";
  const MethodId fetcher =
      program.addMethod("Lcom/app/net/Fetcher;->fetch()V", {request});
  const MethodId handler = program.addMethod(
      "Lcom/app/ui/Handler;->onClick(Landroid/view/View;)V",
      {CallAction{mid}, CallAction{fetcher}});
  program.uiHandlers.push_back(handler);
  program.onCreate =
      program.addMethod("Lcom/app/ui/Main;->onCreate()V", {CallAction{mid}});
  return program;
}

TEST_F(InterpreterTest, StartRunsOnCreateAndTracesMethods) {
  const AppProgram program = programWithNestedCalls();
  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  interp.start();
  const auto trace = tracer_.traceFile();
  EXPECT_NE(std::find(trace.begin(), trace.end(), "Lcom/app/ui/Main;->onCreate()V"),
            trace.end());
  EXPECT_NE(std::find(trace.begin(), trace.end(), "Lcom/app/Leaf;->work()V"),
            trace.end());
  EXPECT_EQ(interp.methodEntries(), 3u);  // onCreate, mid, leaf
}

TEST_F(InterpreterTest, UiEventRunsHandlerAndCreatesSocket) {
  const AppProgram program = programWithNestedCalls();
  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  EXPECT_TRUE(interp.dispatchUiEvent());
  EXPECT_EQ(interp.socketsCreated(), 1u);
  EXPECT_EQ(interp.uiEventsDelivered(), 1u);
}

TEST_F(InterpreterTest, NoHandlersReturnsFalse) {
  AppProgram program;
  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  EXPECT_FALSE(interp.dispatchUiEvent());
}

TEST_F(InterpreterTest, PostHookSeesEstablishedConnectionAndFullStack) {
  const AppProgram program = programWithNestedCalls();
  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));

  std::vector<StackFrameSnapshot> observed;
  net::SocketId observedSocket = 0;
  bool wasOpenInHook = false;
  interp.registerPostHook(
      std::string(kSocketConnectFrame),
      [&](const SocketHookContext& context) {
        observed = context.runtime.getStackTrace();
        observedSocket = context.socketId;
        wasOpenInHook = context.runtime.networkStack().isOpen(context.socketId);
      });
  interp.dispatchUiEvent();

  ASSERT_FALSE(observed.empty());
  // Innermost frame is the hooked socket connect.
  EXPECT_EQ(observed.front().name, kSocketConnectFrame);
  EXPECT_FALSE(observed.front().isAppFrame());
  // The outermost frame is the UI handler (app frame).
  EXPECT_EQ(observed.back().name, "com.app.ui.Handler.onClick");
  EXPECT_TRUE(observed.back().isAppFrame());
  // Post-hook semantics: the connection was live with valid parameters at
  // interception time (it closes once the request completes).
  ASSERT_NE(stack->pairOf(observedSocket), nullptr);
  EXPECT_TRUE(wasOpenInHook);
}

TEST_F(InterpreterTest, OkHttpChainMatchesListing1Order) {
  const AppProgram program = programWithNestedCalls();
  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  std::vector<std::string> frames;
  interp.registerPostHook(std::string(kSocketConnectFrame),
                          [&](const SocketHookContext& context) {
                            for (const auto& f : context.runtime.getStackTrace())
                              frames.push_back(f.name);
                          });
  interp.dispatchUiEvent();
  ASSERT_GE(frames.size(), 3u);
  EXPECT_EQ(frames[0], "java.net.Socket.connect");
  // Wrapper frames sit between the socket call and the app frames.
  EXPECT_TRUE(frames[1].starts_with("com.android.okhttp") ||
              frames[1].starts_with("org.apache.http") ||
              frames[1].starts_with("com.android.okhttp"));
}

TEST_F(InterpreterTest, AsyncTaskRunsUnderWrapperFrames) {
  AppProgram program;
  NetRequestAction request;
  request.domain = "api.example.com";
  const MethodId helper = program.addMethod("Lcom/lib/b;->a()V", {request});
  const MethodId task =
      program.addMethod("Lcom/lib/b;->doInBackground()V", {CallAction{helper}});
  const MethodId handler = program.addMethod("Lcom/app/H;->onClick()V",
                                             {AsyncAction{task}});
  program.uiHandlers.push_back(handler);

  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  std::vector<std::string> frames;
  interp.registerPostHook(std::string(kSocketConnectFrame),
                          [&](const SocketHookContext& context) {
                            for (const auto& f : context.runtime.getStackTrace())
                              frames.push_back(f.name);
                          });
  interp.dispatchUiEvent();

  // Listing 1 shape: ..., lib frames, AsyncTask$2.call, FutureTask.run.
  ASSERT_GE(frames.size(), 4u);
  EXPECT_EQ(frames[frames.size() - 1], "java.util.concurrent.FutureTask.run");
  EXPECT_EQ(frames[frames.size() - 2], "android.os.AsyncTask$2.call");
  EXPECT_EQ(frames[frames.size() - 3], "com.lib.b.doInBackground");
  // The handler frame is NOT on the async stack.
  for (const auto& frame : frames) EXPECT_NE(frame, "com.app.H.onClick");
}

TEST_F(InterpreterTest, SystemRequestHasNoAppFrames) {
  AppProgram program;
  SystemRequestAction request;
  request.domain = "api.example.com";
  const MethodId handler =
      program.addMethod("Lcom/app/H;->onClick()V", {request});
  program.uiHandlers.push_back(handler);

  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  std::vector<StackFrameSnapshot> observed;
  interp.registerPostHook(std::string(kSocketConnectFrame),
                          [&](const SocketHookContext& context) {
                            observed = context.runtime.getStackTrace();
                          });
  interp.dispatchUiEvent();
  ASSERT_FALSE(observed.empty());
  for (const auto& frame : observed) EXPECT_FALSE(frame.isAppFrame());
}

TEST_F(InterpreterTest, CallDepthIsBounded) {
  AppProgram program;
  // Mutually recursive pair: would loop forever without the depth cap.
  const MethodId a = program.addMethod("Lcom/app/A;->f()V", {});
  const MethodId b = program.addMethod("Lcom/app/B;->g()V", {CallAction{a}});
  program.methods[a].body.push_back(CallAction{b});
  program.onCreate = a;

  auto stack = makeStack();
  InterpreterLimits limits;
  limits.maxCallDepth = 10;
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9), limits);
  interp.start();
  EXPECT_LE(interp.methodEntries(), 10u);
}

TEST_F(InterpreterTest, GuardActionIsProbabilistic) {
  AppProgram program;
  const MethodId target = program.addMethod("Lcom/app/T;->t()V", {});
  const MethodId never =
      program.addMethod("Lcom/app/H;->never()V", {GuardAction{0.0, target}});
  const MethodId always =
      program.addMethod("Lcom/app/H;->always()V", {GuardAction{1.0, target}});
  program.uiHandlers = {never};

  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  interp.dispatchUiEvent();
  EXPECT_EQ(interp.methodEntries(), 1u);  // only the handler

  AppProgram program2 = program;
  program2.uiHandlers = {always};
  auto stack2 = makeStack();
  UniqueMethodTracer tracer2;
  Interpreter interp2(program2, *stack2, tracer2, clock_, util::Rng(9));
  interp2.dispatchUiEvent();
  EXPECT_EQ(interp2.methodEntries(), 2u);  // handler + target
}

TEST_F(InterpreterTest, FailedConnectFiresNoHook) {
  net::StackConfig config;
  config.connectFailureProb = 1.0;
  net::NetworkStack stack(farm_, clock_, util::Rng(5), config);
  const AppProgram program = programWithNestedCalls();
  Interpreter interp(program, stack, tracer_, clock_, util::Rng(9));
  int hookCalls = 0;
  interp.registerPostHook(std::string(kSocketConnectFrame),
                          [&](const SocketHookContext&) { ++hookCalls; });
  interp.dispatchUiEvent();
  EXPECT_EQ(hookCalls, 0);
  EXPECT_EQ(interp.socketsCreated(), 0u);
}

TEST_F(InterpreterTest, StackIsCleanAfterRun) {
  const AppProgram program = programWithNestedCalls();
  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  interp.start();
  interp.dispatchUiEvent();
  EXPECT_TRUE(interp.getStackTrace().empty());
}

TEST_F(InterpreterTest, SleepAdvancesClock) {
  AppProgram program;
  program.onCreate = program.addMethod("Lcom/app/M;->onCreate()V",
                                       {SleepAction{1234}});
  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  const auto before = clock_.now();
  interp.start();
  EXPECT_EQ(clock_.now(), before + 1234);
}

TEST_F(InterpreterTest, SocketClosedAfterRequestCompletes) {
  const AppProgram program = programWithNestedCalls();
  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  interp.dispatchUiEvent();
  EXPECT_EQ(stack->openSocketCount(), 0u);
}

TEST_F(InterpreterTest, BackgroundTickRunsTasksUnderAsyncWrappers) {
  AppProgram program;
  NetRequestAction request;
  request.domain = "api.example.com";
  const MethodId fetch = program.addMethod("Lcom/lib/sync/Flush;->send()V",
                                           {request});
  const MethodId task = program.addMethod("Lcom/lib/sync/BgSync;->run()V",
                                          {GuardAction{1.0, fetch}});
  program.backgroundTasks.push_back(task);

  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  std::vector<std::string> frames;
  interp.registerPostHook(std::string(kSocketConnectFrame),
                          [&](const SocketHookContext& context) {
                            for (const auto& f : context.runtime.getStackTrace())
                              frames.push_back(f.name);
                          });
  interp.runBackgroundTick();
  EXPECT_EQ(interp.socketsCreated(), 1u);
  ASSERT_GE(frames.size(), 4u);
  EXPECT_EQ(frames.back(), "java.util.concurrent.FutureTask.run");
  // The origin is the library's background task, so attribution (and
  // policy) treat background beacons like any other library traffic.
  EXPECT_NE(std::find(frames.begin(), frames.end(), "com.lib.sync.BgSync.run"),
            frames.end());
}

TEST_F(InterpreterTest, BackgroundTickWithoutTasksIsANoop) {
  AppProgram program;
  auto stack = makeStack();
  Interpreter interp(program, *stack, tracer_, clock_, util::Rng(9));
  interp.runBackgroundTick();
  EXPECT_EQ(interp.socketsCreated(), 0u);
  EXPECT_EQ(interp.methodEntries(), 0u);
}

}  // namespace
}  // namespace libspector::rt
