#include "policy/module.hpp"

#include <gtest/gtest.h>

#include "core/supervisor.hpp"
#include "net/server.hpp"
#include "rt/tracer.hpp"

namespace libspector::policy {
namespace {

class PolicyModuleTest : public ::testing::Test {
 protected:
  PolicyModuleTest() {
    for (const char* domain : {"config.unityads.com", "api.myapp.com"}) {
      net::EndpointProfile profile;
      profile.domain = domain;
      profile.trueCategory = "info_tech";
      farm_.addEndpoint(profile);
    }
    apk_.packageName = "com.fun.game";

    // Ad task (blacklistable) and first-party fetch on separate handlers.
    rt::NetRequestAction adRequest;
    adRequest.domain = "config.unityads.com";
    const auto adHelper = program_.addMethod(
        "Lcom/unity3d/ads/android/cache/b;->a()V", {adRequest});
    const auto adTask = program_.addMethod(
        "Lcom/unity3d/ads/android/cache/b;->doInBackground()V",
        {rt::CallAction{adHelper}});
    adHandler_ = program_.addMethod("Lcom/fun/game/ui/A;->onClick()V",
                                    {rt::AsyncAction{adTask}});
    rt::NetRequestAction ownRequest;
    ownRequest.domain = "api.myapp.com";
    appHandler_ = program_.addMethod("Lcom/fun/game/net/B;->refresh()V",
                                     {ownRequest});
    program_.uiHandlers = {adHandler_, appHandler_};
  }

  rt::Interpreter makeRuntime(net::NetworkStack& stack) {
    return rt::Interpreter(program_, stack, tracer_, clock_, util::Rng(4));
  }

  net::ServerFarm farm_;
  util::SimClock clock_;
  rt::UniqueMethodTracer tracer_;
  dex::ApkFile apk_;
  rt::AppProgram program_;
  rt::MethodId adHandler_ = 0;
  rt::MethodId appHandler_ = 0;
};

TEST_F(PolicyModuleTest, BlocksBlacklistedLibraryTrafficOnly) {
  PolicyEngine engine;
  engine.blockLibraryPrefix("com.unity3d.ads");
  auto module = std::make_shared<PolicyModule>(std::move(engine));

  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  auto runtime = makeRuntime(stack);
  module->onAppLoaded(runtime, apk_);

  // Drive both handlers many times: ad connections must all be vetoed,
  // first-party ones must all succeed.
  for (int i = 0; i < 30; ++i) runtime.dispatchUiEvent();
  EXPECT_GT(runtime.connectsBlocked(), 0u);
  EXPECT_GT(runtime.socketsCreated(), 0u);
  EXPECT_EQ(module->blockedCount(), runtime.connectsBlocked());

  for (const auto& blocked : module->blockedLog()) {
    EXPECT_EQ(blocked.domain, "config.unityads.com");
    EXPECT_EQ(blocked.originLibrary, "com.unity3d.ads.android.cache");
    EXPECT_EQ(blocked.rule, "library:com.unity3d.ads");
  }

  // No packets to the blocked domain at all (the veto fires pre-connect,
  // before even DNS for that connection).
  for (const auto& pkt : stack.capture().packets()) {
    if (pkt.isDns()) EXPECT_NE(pkt.dnsQname, "config.unityads.com");
  }
}

TEST_F(PolicyModuleTest, CoexistsWithTheSocketSupervisor) {
  PolicyEngine engine;
  engine.blockLibraryPrefix("com.unity3d.ads");
  auto policyModule = std::make_shared<PolicyModule>(std::move(engine));
  auto supervisor = std::make_shared<core::SocketSupervisor>();

  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  auto runtime = makeRuntime(stack);
  std::size_t reports = 0;
  stack.registerUdpSink(core::kDefaultCollectorEndpoint,
                        [&](const net::SockEndpoint&,
                            std::span<const std::uint8_t>) { ++reports; });

  hook::XposedFramework xposed;
  xposed.installModule(policyModule);
  xposed.installModule(supervisor);
  xposed.attachToApp(runtime, apk_);

  for (int i = 0; i < 30; ++i) runtime.dispatchUiEvent();

  // Every surviving socket was reported; no report for vetoed connects.
  EXPECT_EQ(reports, runtime.socketsCreated());
  EXPECT_EQ(runtime.socketsCreated() + runtime.connectsBlocked(), 30u);
}

TEST_F(PolicyModuleTest, PermissiveEngineBlocksNothing) {
  auto module = std::make_shared<PolicyModule>(PolicyEngine{});
  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  auto runtime = makeRuntime(stack);
  module->onAppLoaded(runtime, apk_);
  for (int i = 0; i < 10; ++i) runtime.dispatchUiEvent();
  EXPECT_EQ(runtime.connectsBlocked(), 0u);
  EXPECT_EQ(module->blockedCount(), 0u);
  EXPECT_EQ(runtime.socketsCreated(), 10u);
}

}  // namespace
}  // namespace libspector::policy
