#include "policy/engine.hpp"

#include <gtest/gtest.h>

namespace libspector::policy {
namespace {

TEST(PolicyEngineTest, EmptyEngineAllowsEverything) {
  PolicyEngine engine;
  EXPECT_FALSE(engine.evaluateOrigin("com.mopub.mobileads", "ads.x.com").blocked);
  EXPECT_EQ(engine.ruleCount(), 0u);
}

TEST(PolicyEngineTest, LibraryPrefixBlocksHierarchically) {
  PolicyEngine engine;
  engine.blockLibraryPrefix("com.mopub");
  EXPECT_TRUE(engine.evaluateOrigin("com.mopub.mobileads", "x.com").blocked);
  EXPECT_TRUE(engine.evaluateOrigin("com.mopub", "x.com").blocked);
  EXPECT_FALSE(engine.evaluateOrigin("com.mopubx.other", "x.com").blocked);
  EXPECT_FALSE(engine.evaluateOrigin("com.myapp.net", "x.com").blocked);
  EXPECT_EQ(engine.evaluateOrigin("com.mopub.net", "x.com").rule,
            "library:com.mopub");
}

TEST(PolicyEngineTest, DomainRuleIsExact) {
  PolicyEngine engine;
  engine.blockDomain("tracker.evil.com");
  EXPECT_TRUE(engine.evaluateOrigin("com.app", "tracker.evil.com").blocked);
  EXPECT_FALSE(engine.evaluateOrigin("com.app", "api.evil.com").blocked);
  EXPECT_EQ(engine.evaluateOrigin("com.app", "tracker.evil.com").rule,
            "domain:tracker.evil.com");
}

TEST(PolicyEngineTest, AntBlacklistCoversTheList) {
  PolicyEngine engine;
  engine.blockAntLibraries();
  EXPECT_GT(engine.ruleCount(), 20u);
  EXPECT_TRUE(engine.evaluateOrigin("com.unity3d.ads.android.cache", "x").blocked);
  EXPECT_TRUE(engine.evaluateOrigin("com.flurry.sdk", "x").blocked);
  EXPECT_FALSE(engine.evaluateOrigin("com.unity3d.player", "x").blocked);
  EXPECT_FALSE(engine.evaluateOrigin("okhttp3.internal.http", "x").blocked);
}

TEST(PolicyEngineTest, EvaluateExtractsOriginFromStack) {
  PolicyEngine engine;
  engine.blockLibraryPrefix("com.unity3d.ads");
  // Listing 1's trace: origin is the doInBackground frame.
  const std::vector<std::string> trace = {
      "java.net.Socket.connect",
      "com.android.okhttp.internal.Platform.connectSocket",
      "com.unity3d.ads.android.cache.b.a",
      "com.unity3d.ads.android.cache.b.doInBackground",
      "android.os.AsyncTask$2.call",
      "java.util.concurrent.FutureTask.run",
  };
  EXPECT_TRUE(engine.evaluate(trace, "config.unityads.com").blocked);

  // First-party origin with the same destination is allowed: enforcement
  // is per-library, not per-endpoint — BorderPatrol's selling point.
  const std::vector<std::string> firstParty = {
      "java.net.Socket.connect",
      "com.myapp.net.Fetcher.fetch",
      "com.myapp.ui.Main.onClick",
  };
  EXPECT_FALSE(engine.evaluate(firstParty, "config.unityads.com").blocked);
}

TEST(PolicyEngineTest, BuiltinOnlyStackHasNoOriginToMatch) {
  PolicyEngine engine;
  engine.blockLibraryPrefix("com.mopub");
  const std::vector<std::string> systemTrace = {
      "java.net.Socket.connect", "android.webkit.WebViewClient.onLoadResource",
      "java.lang.Thread.run"};
  EXPECT_FALSE(engine.evaluate(systemTrace, "x.com").blocked);
  // ...but a domain rule still catches it.
  engine.blockDomain("x.com");
  EXPECT_TRUE(engine.evaluate(systemTrace, "x.com").blocked);
}

TEST(PolicyEngineTest, RateLimitAllowsBudgetThenBlocks) {
  PolicyEngine engine;
  engine.rateLimitLibrary("com.mopub", /*maxConnects=*/2, /*windowMs=*/1000);
  // First two connections inside the window pass, the third is vetoed.
  EXPECT_FALSE(engine.evaluateOrigin("com.mopub.mobileads", "x", 100).blocked);
  EXPECT_FALSE(engine.evaluateOrigin("com.mopub.mobileads", "x", 200).blocked);
  const auto third = engine.evaluateOrigin("com.mopub.mobileads", "x", 300);
  EXPECT_TRUE(third.blocked);
  EXPECT_EQ(third.rule, "rate:com.mopub");
  // Window slides: after the first connect expires, budget frees up.
  EXPECT_FALSE(engine.evaluateOrigin("com.mopub.mobileads", "x", 1150).blocked);
  EXPECT_TRUE(engine.evaluateOrigin("com.mopub.mobileads", "x", 1160).blocked);
}

TEST(PolicyEngineTest, RateLimitDoesNotTouchOtherLibraries) {
  PolicyEngine engine;
  engine.rateLimitLibrary("com.mopub", 1, 1000);
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(engine.evaluateOrigin("com.myapp.net", "x", 10 * i).blocked);
}

TEST(PolicyEngineTest, BlacklistTakesPrecedenceOverRateLimit) {
  PolicyEngine engine;
  engine.rateLimitLibrary("com.mopub", 100, 1000);
  engine.blockLibraryPrefix("com.mopub");
  EXPECT_EQ(engine.evaluateOrigin("com.mopub.network", "x", 0).rule,
            "library:com.mopub");
}

}  // namespace
}  // namespace libspector::policy
