#include "vtsim/vendor.hpp"

#include <gtest/gtest.h>

#include "vtsim/categories.hpp"

namespace libspector::vtsim {
namespace {

TEST(VendorTest, Deterministic) {
  const VendorSim vendor(0, 0.1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(vendor.labelFor("ads.example.com", "advertisements"),
              vendor.labelFor("ads.example.com", "advertisements"));
  }
}

TEST(VendorTest, VendorsDisagree) {
  // Different vendors use different vocabularies / have different verdicts.
  int distinctAnswers = 0;
  const std::string domain = "svc7.something.net";
  std::optional<std::string> first;
  for (const auto& vendor : defaultVendorPanel()) {
    const auto label = vendor.labelFor(domain, "info_tech");
    if (!first) {
      first = label;
    } else if (label != first) {
      ++distinctAnswers;
    }
  }
  // Not a hard guarantee per domain, but the panel is built to disagree;
  // with 5 vendors and 3 phrasings at least one should differ here.
  EXPECT_GE(distinctAnswers, 1);
}

TEST(VendorTest, NoiselessVendorTokenizesToTruth) {
  const VendorSim vendor(1, 0.0);
  int answered = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string domain = "metrics" + std::to_string(i) + ".example.com";
    const auto label = vendor.labelFor(domain, "analytics");
    if (!label) continue;  // vendor may have no verdict
    ++answered;
    EXPECT_EQ(tokenizeLabel(*label), "analytics") << *label;
  }
  EXPECT_GT(answered, 150);  // ~12% no-verdict rate
}

TEST(VendorTest, NoVerdictRateIsPlausible) {
  const VendorSim vendor(2, 0.1);
  int noVerdict = 0;
  constexpr int kDomains = 2000;
  for (int i = 0; i < kDomains; ++i) {
    if (!vendor.labelFor("d" + std::to_string(i) + ".com", "games")) ++noVerdict;
  }
  const double rate = static_cast<double>(noVerdict) / kDomains;
  EXPECT_NEAR(rate, 0.12, 0.04);
}

TEST(VendorTest, NoisyVendorMislabelsSometimes) {
  const VendorSim vendor(3, 0.5);
  int offCategory = 0;
  int answered = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto label =
        vendor.labelFor("ads" + std::to_string(i) + ".com", "advertisements");
    if (!label) continue;
    ++answered;
    if (tokenizeLabel(*label) != "advertisements") ++offCategory;
  }
  EXPECT_GT(offCategory, answered / 4);
  EXPECT_LT(offCategory, answered);
}

TEST(VendorTest, RejectsBadParameters) {
  EXPECT_THROW(VendorSim(-1, 0.1), std::invalid_argument);
  EXPECT_THROW(VendorSim(0, -0.1), std::invalid_argument);
  EXPECT_THROW(VendorSim(0, 1.5), std::invalid_argument);
}

TEST(VendorTest, UnknownTruthThrowsForBadCategory) {
  const VendorSim vendor(0, 0.0);
  EXPECT_THROW((void)vendor.labelFor("x.com", "not_a_category"),
               std::invalid_argument);
}

TEST(VendorTest, PanelHasFiveVendors) {
  EXPECT_EQ(defaultVendorPanel().size(), 5u);  // §III-F: five companies
}

}  // namespace
}  // namespace libspector::vtsim
