#include "vtsim/categorizer.hpp"

#include <gtest/gtest.h>

namespace libspector::vtsim {
namespace {

DomainCategorizer::TruthLookup fixedTruth(std::string category) {
  return [category](const std::string&) { return category; };
}

TEST(CategorizerTest, MajorityVoteRecoversTruth) {
  DomainCategorizer categorizer(defaultVendorPanel(), fixedTruth("advertisements"));
  int correct = 0;
  constexpr int kDomains = 300;
  for (int i = 0; i < kDomains; ++i) {
    const auto& verdict =
        categorizer.categorize("adserv" + std::to_string(i) + ".example.com");
    if (verdict.category == "advertisements") ++correct;
  }
  // Vendor noise is 8-20%; the 5-way majority should recover nearly all.
  EXPECT_GT(correct, kDomains * 9 / 10);
}

TEST(CategorizerTest, VerdictIsCachedAndStable) {
  DomainCategorizer categorizer(defaultVendorPanel(), fixedTruth("games"));
  const auto& first = categorizer.categorize("game1.example.com");
  const std::string category = first.category;
  const auto& second = categorizer.categorize("game1.example.com");
  EXPECT_EQ(&first, &second);  // same cached object
  EXPECT_EQ(second.category, category);
  EXPECT_EQ(categorizer.domainsSeen(), 1u);
}

TEST(CategorizerTest, CollectsRawLabelsAndVotes) {
  DomainCategorizer categorizer(defaultVendorPanel(), fixedTruth("cdn"));
  const auto& verdict = categorizer.categorize("cdn5.edge.net");
  EXPECT_LE(verdict.rawLabels.size(), 5u);
  EXPECT_FALSE(verdict.votes.empty());
  int totalVotes = 0;
  for (const auto& [category, count] : verdict.votes) totalVotes += count;
  EXPECT_EQ(static_cast<std::size_t>(totalVotes), verdict.rawLabels.size());
}

TEST(CategorizerTest, UnknownOnlyWinsWhenNothingElseVoted) {
  DomainCategorizer categorizer(defaultVendorPanel(), fixedTruth("unknown"));
  // Truth "unknown" means vendors emit unparseable labels; most domains
  // should come out unknown, and any non-unknown verdict implies a real
  // (noise-injected) vote existed.
  int unknown = 0;
  for (int i = 0; i < 100; ++i) {
    const auto& verdict = categorizer.categorize("host" + std::to_string(i) + ".io");
    if (verdict.category == kUnknownDomainCategory) ++unknown;
  }
  EXPECT_GT(unknown, 50);
}

TEST(CategorizerTest, CategoryCountsCensus) {
  DomainCategorizer categorizer(defaultVendorPanel(), fixedTruth("news"));
  for (int i = 0; i < 40; ++i)
    categorizer.categorize("news" + std::to_string(i) + ".com");
  const auto counts = categorizer.categoryCounts();
  std::size_t total = 0;
  for (const auto& [category, count] : counts) total += count;
  EXPECT_EQ(total, 40u);
  ASSERT_TRUE(counts.contains("news"));
  EXPECT_GT(counts.at("news"), 30u);
}

TEST(CategorizerTest, NullTruthLookupRejected) {
  EXPECT_THROW(DomainCategorizer(defaultVendorPanel(), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace libspector::vtsim
