#include "vtsim/client.hpp"

#include <gtest/gtest.h>

namespace libspector::vtsim {
namespace {

DomainCategorizer makeCategorizer() {
  return DomainCategorizer(
      defaultVendorPanel(),
      [](const std::string& domain) -> std::string {
        if (domain.starts_with("ads")) return "advertisements";
        return "info_tech";
      });
}

TEST(VtClientTest, QuotaGatesFreshLookups) {
  auto categorizer = makeCategorizer();
  VtClient client(categorizer, {.requestsPerWindow = 2, .windowMs = 60000});

  EXPECT_TRUE(client.categorize("ads1.x.com", 0).has_value());
  EXPECT_TRUE(client.categorize("ads2.x.com", 100).has_value());
  // Third fresh lookup in the window: quota exhausted.
  EXPECT_FALSE(client.categorize("ads3.x.com", 200).has_value());
  // Window slides; the lookup goes through.
  EXPECT_TRUE(client.categorize("ads3.x.com", 60001).has_value());
  EXPECT_EQ(client.apiCalls(), 3u);
}

TEST(VtClientTest, CacheBypassesQuota) {
  auto categorizer = makeCategorizer();
  VtClient client(categorizer, {.requestsPerWindow = 1, .windowMs = 60000});
  const auto first = client.categorize("ads1.x.com", 0);
  ASSERT_TRUE(first.has_value());
  // Same domain again: no quota token spent, same verdict.
  for (int i = 0; i < 10; ++i) {
    const auto again = client.categorize("ads1.x.com", 10 + i);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *first);
  }
  EXPECT_EQ(client.apiCalls(), 1u);
  EXPECT_EQ(client.cacheHits(), 10u);
}

TEST(VtClientTest, CategorizeAllWaitsOutTheQuota) {
  auto categorizer = makeCategorizer();
  VtClient client(categorizer, {.requestsPerWindow = 2, .windowMs = 60000});
  util::SimClock clock;
  const std::vector<std::string> domains = {"ads1.x.com", "ads2.x.com",
                                            "ads3.x.com", "ads4.x.com",
                                            "ads5.x.com"};
  const auto verdicts = client.categorizeAll(domains, clock);
  EXPECT_EQ(verdicts.size(), 5u);
  // 5 lookups at 2/minute: at least two full window waits elapsed.
  EXPECT_GE(clock.now(), 2u * 60000u);
  // Vendor noise may flip an individual domain; the bulk must be correct.
  std::size_t correct = 0;
  for (const auto& [domain, verdict] : verdicts)
    if (verdict == "advertisements") ++correct;
  EXPECT_GE(correct, 4u);
}

TEST(VtClientTest, DiskCacheSurvivesRestart) {
  const std::string cachePath =
      ::testing::TempDir() + "/vt_cache_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + ".csv";
  auto categorizer = makeCategorizer();
  {
    VtClient client(categorizer, {.requestsPerWindow = 10, .windowMs = 60000},
                    cachePath);
    ASSERT_TRUE(client.categorize("svc1.y.com", 0).has_value());
    ASSERT_TRUE(client.categorize("ads1.x.com", 1).has_value());
    client.saveCache();
  }
  // A fresh client (fresh quota) answers from disk without any API call.
  auto categorizer2 = makeCategorizer();
  VtClient restarted(categorizer2, {.requestsPerWindow = 1, .windowMs = 60000},
                     cachePath);
  EXPECT_EQ(restarted.cacheSize(), 2u);
  EXPECT_TRUE(restarted.categorize("svc1.y.com", 0).has_value());
  EXPECT_TRUE(restarted.categorize("ads1.x.com", 0).has_value());
  EXPECT_EQ(restarted.apiCalls(), 0u);
}

TEST(VtClientTest, RejectsZeroQuota) {
  auto categorizer = makeCategorizer();
  EXPECT_THROW(VtClient(categorizer, {.requestsPerWindow = 0, .windowMs = 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace libspector::vtsim
