#include "vtsim/categories.hpp"

#include <gtest/gtest.h>

namespace libspector::vtsim {
namespace {

TEST(CategoriesTest, SeventeenGenericCategories) {
  EXPECT_EQ(genericCategories().size(), 17u);  // Table I
  EXPECT_EQ(genericCategories().back(), "unknown");
}

TEST(CategoriesTest, PatternTableCoversAllCategories) {
  const auto& table = categoryPatternTable();
  ASSERT_EQ(table.size(), genericCategories().size());
  for (std::size_t i = 0; i < table.size(); ++i)
    EXPECT_EQ(table[i].category, genericCategories()[i]);
  // Every category except the fallback has at least one token.
  for (const auto& row : table) {
    if (row.category == kUnknownDomainCategory) {
      EXPECT_TRUE(row.tokens.empty());
    } else {
      EXPECT_FALSE(row.tokens.empty());
    }
  }
}

TEST(TokenizeTest, TableIExamples) {
  EXPECT_EQ(tokenizeLabel("mobile ads provider"), "advertisements");
  EXPECT_EQ(tokenizeLabel("marketing"), "advertisements");
  EXPECT_EQ(tokenizeLabel("web analytics"), "analytics");
  EXPECT_EQ(tokenizeLabel("banking"), "business_and_finance");
  EXPECT_EQ(tokenizeLabel("content delivery network"), "cdn");
  EXPECT_EQ(tokenizeLabel("dns services"), "cdn");
  EXPECT_EQ(tokenizeLabel("online games"), "games");
  EXPECT_EQ(tokenizeLabel("news and tabloids"), "news");
  EXPECT_EQ(tokenizeLabel("social media"), "social_networks");
  EXPECT_EQ(tokenizeLabel("web hosting"), "internet_services");
  EXPECT_EQ(tokenizeLabel("gambling"), "adult");
  EXPECT_EQ(tokenizeLabel("compromised host"), "malicious");
  EXPECT_EQ(tokenizeLabel("nutrition"), "health");
  EXPECT_EQ(tokenizeLabel("reference"), "education");
  EXPECT_EQ(tokenizeLabel("video streaming"), "entertainment");
  EXPECT_EQ(tokenizeLabel("travel"), "lifestyle");
  EXPECT_EQ(tokenizeLabel("telephony"), "communication");
}

TEST(TokenizeTest, CaseInsensitive) {
  EXPECT_EQ(tokenizeLabel("ADVERTISEMENTS"), "advertisements");
  EXPECT_EQ(tokenizeLabel("Content Delivery"), "cdn");
}

TEST(TokenizeTest, LongestTokenWins) {
  // "dynamic content" is an info_tech token even though "content" alone
  // would be cdn; the longer (more specific) token must win.
  EXPECT_EQ(tokenizeLabel("dynamic content"), "info_tech");
  // "suspicious content" similarly resolves to malicious, not cdn.
  EXPECT_EQ(tokenizeLabel("suspicious content"), "malicious");
}

TEST(TokenizeTest, UnmatchedLabelsFallBackToUnknown) {
  EXPECT_EQ(tokenizeLabel("uncategorized"), "unknown");
  EXPECT_EQ(tokenizeLabel("tld registry"), "unknown");
  EXPECT_EQ(tokenizeLabel(""), "unknown");
}

TEST(TokenizeTest, SubstringMatchingWithinWords) {
  // Table I patterns are substrings: "financ" covers finance/financial.
  EXPECT_EQ(tokenizeLabel("financial services"), "business_and_finance");
  EXPECT_EQ(tokenizeLabel("cultural heritage"), "lifestyle");  // "cultur"
  EXPECT_EQ(tokenizeLabel("religious organizations"), "lifestyle");  // "religi"
}

// Property: every token in the table must tokenize to its own category
// (i.e., no token is shadowed by a longer token of another category).
class TokenSelfConsistency
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TokenSelfConsistency, TokensResolveToOwnCategory) {
  const auto& row = categoryPatternTable()[GetParam()];
  for (const auto token : row.tokens) {
    const std::string resolved = tokenizeLabel(token);
    // A handful of tokens are legitimately substrings of longer tokens in
    // other categories ("content" vs "dynamic content"); tokenizing the
    // bare token must still hit this row because exact equality means no
    // longer token can match.
    EXPECT_EQ(resolved, row.category) << "token: " << token;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRows, TokenSelfConsistency,
                         ::testing::Range<std::size_t>(0, 17));

}  // namespace
}  // namespace libspector::vtsim
