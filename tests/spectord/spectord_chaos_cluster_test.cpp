// Reconnect chaos for the cluster tier: every connection a collector
// opens is killed by a BreakerEndpoint at a randomized byte offset
// (mid-frame on purpose), the resilient client reconnects with backoff
// and resumes its session, and the rendered study must stay
// BYTE-IDENTICAL to the unbroken single-collector reference — across
// kill counts, collector counts, and through a mid-study kill + resume.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/export.hpp"
#include "orch/study.hpp"
#include "spectord/cluster.hpp"
#include "util/rng.hpp"

namespace libspector::spectord {
namespace {

using namespace std::chrono_literals;

orch::StudyConfig smallConfig() {
  orch::StudyConfig config;
  config.store.appCount = 12;
  config.store.seed = 5;
  config.store.methodScale = 0.05;
  config.dispatcher.emulator.monkey.events = 100;
  config.dispatcher.emulator.monkey.throttleMs = 50;
  return config;
}

std::string renderStudy(const core::StudyAggregator& study) {
  std::ostringstream out;
  core::writeFig2Csv(study, out);
  core::writeTopLibrariesCsv(study, 25, out);
  core::writeCdfCsv(study, out);
  core::writeFlowRatiosCsv(study, out);
  core::writeAntSharesCsv(study, out);
  core::writeCategoryAveragesCsv(study, out);
  core::writeHeatmapCsv(study, out);
  core::writeCoverageCsv(study, out);
  core::writeStudyReport(study, out);
  return out.str();
}

std::filesystem::path freshDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir;
}

ReconnectorConfig fastBackoff() {
  ReconnectorConfig config;
  config.initialDelay = 1ms;
  config.maxDelay = 20ms;
  config.maxAttempts = 10;
  config.seed = 11;
  return config;
}

/// Kill the first `kills` connections this collector opens, each at a
/// seeded pseudo-random byte offset with a rotating fault kind; every
/// later connection gets a pass-through proxy. The offsets stay well
/// under one job's worth of traffic so every scheduled fault fires.
CollectorOptions chaosOptions(std::uint32_t index, std::uint32_t count,
                              const std::string& directory,
                              std::uint32_t kills, std::uint64_t seed,
                              std::vector<std::unique_ptr<BreakerEndpoint>>*
                                  breakers) {
  CollectorOptions options;
  options.index = index;
  options.count = count;
  options.checkpointDirectory = directory;
  options.reconnect = fastBackoff();
  options.channelWrapper = [kills, seed, breakers](ChannelEndpoint upstream,
                                                   std::size_t ordinal) {
    BreakerEndpoint::Fault fault;
    if (ordinal < kills) {
      util::Rng rng(seed + 7919 * ordinal);
      constexpr std::array<BreakerEndpoint::FaultKind, 3> kKinds = {
          BreakerEndpoint::FaultKind::Sever,
          BreakerEndpoint::FaultKind::Stall,
          BreakerEndpoint::FaultKind::Truncate};
      fault.kind = kKinds[ordinal % kKinds.size()];
      fault.afterClientBytes = 150 + rng.next() % 4000;
      fault.stall = 2ms;
    }
    breakers->push_back(
        std::make_unique<BreakerEndpoint>(std::move(upstream), fault));
    return breakers->back()->clientEnd();
  };
  return options;
}

TEST(SpectordChaosClusterTest, EveryConnectionKilledStaysByteIdentical) {
  const auto config = smallConfig();
  const auto reference = orch::runStudy(config);
  const std::string referenceRender = renderStudy(reference.study);

  for (const std::uint32_t kills : {1u, 2u, 3u}) {
    const auto dir = freshDir("spectord_chaos_k" + std::to_string(kills));
    std::vector<std::unique_ptr<BreakerEndpoint>> breakers;
    const CollectorResult result = runCollector(
        config, chaosOptions(0, 1, dir.string(), kills,
                             /*seed=*/1000 + kills, &breakers));

    // Every scheduled kill fired and forced a resumed reconnect, and at
    // least one kill interrupted something that had to be re-sent (a
    // report-frame tail or an unacked run upload, depending on where in
    // the stream the offset landed).
    EXPECT_EQ(result.reconnects, kills) << "kills=" << kills;
    EXPECT_GT(result.framesResent + result.runsResent, 0u) << "kills=" << kills;
    EXPECT_EQ(result.runsAccepted, result.jobsDispatched);
    EXPECT_EQ(result.jobsDispatched, config.store.appCount);
    EXPECT_EQ(result.metrics.sessionsResumed, kills);
    EXPECT_EQ(result.metrics.reportsLost, 0u);

    const orch::MergeOutput merged = orch::mergeStudies(config, {dir.string()});
    EXPECT_EQ(renderStudy(merged.output.study), referenceRender)
        << "study diverged after every connection was killed " << kills
        << " time(s)";
    std::filesystem::remove_all(dir);
  }
}

TEST(SpectordChaosClusterTest, MultiCollectorChaosMergesByteIdentical) {
  const auto config = smallConfig();
  const auto reference = orch::runStudy(config);
  const std::string referenceRender = renderStudy(reference.study);

  for (const std::uint32_t count : {2u, 4u}) {
    std::vector<std::string> directories;
    std::uint64_t dispatched = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto dir = freshDir("spectord_chaos_c" + std::to_string(count) +
                                "_" + std::to_string(i));
      std::vector<std::unique_ptr<BreakerEndpoint>> breakers;
      const CollectorResult result = runCollector(
          config, chaosOptions(i, count, dir.string(), /*kills=*/1,
                               /*seed=*/2000 + 17 * i, &breakers));
      EXPECT_EQ(result.reconnects, 1u) << "collector " << i << "/" << count;
      EXPECT_EQ(result.runsAccepted, result.jobsDispatched);
      dispatched += result.jobsDispatched;
      directories.push_back(dir.string());
    }
    EXPECT_EQ(dispatched, config.store.appCount) << "count=" << count;

    const orch::MergeOutput merged = orch::mergeStudies(config, directories);
    EXPECT_EQ(renderStudy(merged.output.study), referenceRender)
        << "collector count " << count
        << " with killed connections is not byte-identical";
    for (const auto& directory : directories)
      std::filesystem::remove_all(directory);
  }
}

TEST(SpectordChaosClusterTest, KillResumeUnderChaosStaysByteIdentical) {
  const auto config = smallConfig();
  const auto reference = orch::runStudy(config);
  const std::string referenceRender = renderStudy(reference.study);

  const auto dirA = freshDir("spectord_chaos_kill_a");
  const auto dirB = freshDir("spectord_chaos_kill_b");

  // Collector 1 runs its full share, first connection killed.
  {
    std::vector<std::unique_ptr<BreakerEndpoint>> breakers;
    const CollectorResult survivor = runCollector(
        config,
        chaosOptions(1, 2, dirB.string(), /*kills=*/1, /*seed=*/31, &breakers));
    EXPECT_EQ(survivor.reconnects, 1u);
    EXPECT_EQ(survivor.runsAccepted, survivor.jobsDispatched);
  }

  // Collector 0 is process-killed after one job — while its connection is
  // also being chaos-killed.
  std::uint64_t dispatchedBeforeCrash = 0;
  {
    std::vector<std::unique_ptr<BreakerEndpoint>> breakers;
    CollectorOptions killed = chaosOptions(0, 2, dirA.string(), /*kills=*/1,
                                           /*seed=*/37, &breakers);
    killed.jobLimit = 1;
    const CollectorResult beforeCrash = runCollector(config, killed);
    ASSERT_EQ(beforeCrash.jobsDispatched, 1u);
    EXPECT_EQ(beforeCrash.jobsOwned, beforeCrash.jobsDispatched);
    dispatchedBeforeCrash = beforeCrash.jobsDispatched;
  }

  // It restarts, resumes its directory, and the remaining share runs —
  // through another killed connection.
  {
    std::vector<std::unique_ptr<BreakerEndpoint>> breakers;
    CollectorOptions resumed = chaosOptions(0, 2, dirA.string(), /*kills=*/1,
                                            /*seed=*/41, &breakers);
    resumed.resume = true;
    const CollectorResult afterResume = runCollector(config, resumed);
    EXPECT_EQ(afterResume.runsReplayed, dispatchedBeforeCrash);
    EXPECT_EQ(afterResume.jobsOwned, afterResume.jobsDispatched);
    EXPECT_EQ(afterResume.reconnects, 1u);
  }

  const auto merged =
      orch::mergeStudies(config, {dirA.string(), dirB.string()});
  EXPECT_EQ(merged.output.appsReplayed, config.store.appCount);
  EXPECT_EQ(renderStudy(merged.output.study), referenceRender)
      << "kill+resume under connection chaos diverged";

  std::filesystem::remove_all(dirA);
  std::filesystem::remove_all(dirB);
}

}  // namespace
}  // namespace libspector::spectord
