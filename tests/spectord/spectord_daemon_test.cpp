// The spectord daemon end to end over simulated duplex channels: session
// handshake + resume, wire ingest equal to the in-process pipeline, exact
// loss accounting through a chaos channel, dashboard mirrors that
// reconstruct daemon state byte-for-byte from snapshot + deltas, bounded
// slow-subscriber handling under both policies, and the admin surface
// (status, evict, drain, resume-from-checkpoint, shutdown).
#include "spectord/daemon.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/attribution.hpp"
#include "ingest/chaos.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "spectord/client.hpp"
#include "store/generator.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::spectord {
namespace {

using namespace std::chrono_literals;

class SpectordDaemonTest : public ::testing::Test {
 protected:
  SpectordDaemonTest()
      : generator_(storeConfig()),
        corpus_(radar::LibraryCorpus::builtin()),
        categorizer_(vtsim::defaultVendorPanel(),
                     [this](const std::string& domain) {
                       return generator_.domainTruth(domain);
                     }),
        attributor_(corpus_, categorizer_) {}

  static store::StoreConfig storeConfig() {
    store::StoreConfig config;
    config.appCount = 8;
    config.seed = 42;
    config.methodScale = 0.05;
    return config;
  }

  static DaemonConfig daemonConfig() {
    DaemonConfig config;
    config.ingest.shards = 2;
    return config;
  }

  std::unique_ptr<SpectorDaemon> makeDaemon(DaemonConfig config) {
    return std::make_unique<SpectorDaemon>(
        std::move(config), [this](const core::RunArtifacts& artifacts) {
          return attributor_.attribute(artifacts);
        });
  }

  core::RunArtifacts runApp(std::size_t index, ingest::ReportSink* collector) {
    orch::EmulatorConfig config;
    config.monkey.events = 80;
    config.monkey.throttleMs = 50;
    config.seed = 1000 + index;
    config.workerId = static_cast<std::uint32_t>(index);
    orch::EmulatorInstance emulator(generator_.farm(), collector, config);
    const auto job = generator_.makeJob(index);
    return emulator.run(job.apk, job.program);
  }

  store::AppStoreGenerator generator_;
  radar::LibraryCorpus corpus_;
  vtsim::DomainCategorizer categorizer_;
  core::TrafficAttributor attributor_;
};

TEST_F(SpectordDaemonTest, FramesBeforeHelloAreRejected) {
  auto daemon = makeDaemon(daemonConfig());
  ClientChannel channel(daemon->connect());
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  ASSERT_TRUE(channel.send(FrameType::Report, payload));
  const auto frame = channel.read(5000ms);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, FrameType::Error);
  EXPECT_EQ(ErrorMsg::decode(frame->body).code, 1u);
}

TEST_F(SpectordDaemonTest, WrongSurfaceFrameIsRejected) {
  auto daemon = makeDaemon(daemonConfig());
  DashboardClient dashboard(daemon->connect(), /*clientId=*/77);
  // A dashboard connection must not be able to inject reports.
  // Reach under the client: open a second raw channel as Dashboard.
  ClientChannel channel(daemon->connect());
  HelloMsg hello;
  hello.clientId = 78;
  hello.kind = ClientKind::Dashboard;
  ASSERT_TRUE(channel.send(FrameType::Hello, hello.encode()));
  auto ack = channel.read(5000ms);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, FrameType::HelloAck);
  const std::vector<std::uint8_t> payload = {9, 9};
  ASSERT_TRUE(channel.send(FrameType::Report, payload));
  const auto frame = channel.read(5000ms);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, FrameType::Error);
  EXPECT_EQ(ErrorMsg::decode(frame->body).code, 2u);
}

TEST_F(SpectordDaemonTest, WireIngestMatchesInProcessPipeline) {
  // Daemon side: datagrams and run uploads cross the framed protocol.
  auto daemon = makeDaemon(daemonConfig());
  {
    IngestClient client(daemon->connect(), /*clientId=*/1);
    for (std::size_t i = 0; i < 4; ++i) {
      auto artifacts = runApp(i, &client);
      const RunAckMsg ack = client.completeRun(i, artifacts);
      EXPECT_TRUE(ack.accepted) << ack.reason;
    }
    EXPECT_TRUE(client.waitAckedFrames(client.framesSent(), 10000ms));
    client.bye();
  }
  daemon->drain();

  // Reference side: the same runs submitted straight into a pipeline.
  ingest::IngestPipeline pipeline(
      daemonConfig().ingest, [this](const core::RunArtifacts& artifacts) {
        return attributor_.attribute(artifacts);
      });
  for (std::size_t i = 0; i < 4; ++i) {
    auto artifacts = runApp(i, &pipeline);
    pipeline.submitRun(i, std::move(artifacts));
  }
  pipeline.drain();

  const auto wire = daemon->rollingTotals();
  const auto direct = pipeline.rollingTotals();
  EXPECT_EQ(wire.runsFolded, direct.runsFolded);
  EXPECT_EQ(wire.flowCount, direct.flowCount);
  EXPECT_EQ(wire.attributedBytes, direct.attributedBytes);
  EXPECT_EQ(wire.unattributedBytes, direct.unattributedBytes);
  EXPECT_EQ(wire.bytesByLibrary, direct.bytesByLibrary);
  EXPECT_EQ(wire.bytesByLibCategory, direct.bytesByLibCategory);
  EXPECT_EQ(wire.bytesByApp, direct.bytesByApp);

  const auto metrics = daemon->metrics();
  EXPECT_EQ(metrics.runsCompleted, 4u);
  EXPECT_EQ(metrics.reportsLost, 0u);
  EXPECT_EQ(metrics.sessionsOpened, 1u);
}

TEST_F(SpectordDaemonTest, ChaosChannelDamageIsAccountedExactly) {
  auto daemon = makeDaemon(daemonConfig());
  IngestClient client(daemon->connect(), /*clientId=*/5);

  ingest::ChaosConfig chaosConfig;
  chaosConfig.lossProb = 0.05;
  chaosConfig.dupProb = 0.05;
  chaosConfig.reorderWindow = 4;
  chaosConfig.seed = 7;
  ingest::ChaosChannel chaos(client, chaosConfig);

  struct Expected {
    std::string sha;
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
  };
  std::vector<Expected> expected;
  for (std::size_t i = 0; i < generator_.appCount(); ++i) {
    const std::uint64_t droppedBefore = chaos.dropped();
    const std::uint64_t duplicatedBefore = chaos.duplicated();
    auto artifacts = runApp(i, &chaos);
    chaos.flush();
    Expected e;
    e.sha = artifacts.apkSha256;
    e.emitted = artifacts.reportsEmitted;
    e.dropped = chaos.dropped() - droppedBefore;
    e.duplicated = chaos.duplicated() - duplicatedBefore;
    expected.push_back(e);
    const RunAckMsg ack = client.completeRun(i, artifacts);
    EXPECT_TRUE(ack.accepted);
  }
  daemon->drain();

  // The daemon survived the damaged stream and reconstructed the channel's
  // exact per-apk damage from sequence accounting alone.
  const auto accounts = daemon->pipeline().lossAccounts();
  ASSERT_EQ(accounts.size(), expected.size());
  bool anyDamage = false;
  for (const auto& e : expected) {
    ASSERT_TRUE(accounts.contains(e.sha)) << e.sha;
    const auto& account = accounts.at(e.sha);
    EXPECT_EQ(account.reportsEmitted, e.emitted) << e.sha;
    EXPECT_EQ(account.lost, e.dropped) << e.sha;
    EXPECT_EQ(account.duplicated, e.duplicated) << e.sha;
    EXPECT_EQ(account.uniqueDelivered, e.emitted - e.dropped) << e.sha;
    anyDamage = anyDamage || account.lost + account.duplicated > 0;
  }
  EXPECT_TRUE(anyDamage) << "chaos injected no faults; test is vacuous";

  // Every frame the client actually put on the wire was acked.
  EXPECT_TRUE(client.waitAckedFrames(client.framesSent(), 10000ms));
  client.bye();
}

TEST_F(SpectordDaemonTest, SessionResumesAcrossReconnect) {
  auto daemon = makeDaemon(daemonConfig());
  std::uint64_t token = 0;
  std::uint64_t sent = 0;
  {
    IngestClient client(daemon->connect(), /*clientId=*/9);
    EXPECT_FALSE(client.resumed());
    auto artifacts = runApp(0, &client);
    const RunAckMsg ack = client.completeRun(0, artifacts);
    EXPECT_TRUE(ack.accepted);
    ASSERT_TRUE(client.waitAckedFrames(client.framesSent(), 10000ms));
    token = client.sessionToken();
    sent = client.framesSent();
    // Drop the connection without a Bye: a crashed fleet worker.
  }
  daemon->drain();

  {
    // Same clientId + the session token: the daemon reports everything it
    // already accepted, so the client re-sends only the unacked tail
    // (here: nothing).
    IngestClient client(daemon->connect(), /*clientId=*/9, token);
    EXPECT_TRUE(client.resumed());
    EXPECT_EQ(client.ackedFrames(), sent);
    EXPECT_EQ(client.ackedRuns(), 1u);
  }
  {
    // Wrong token: fresh session, no inherited acks.
    IngestClient client(daemon->connect(), /*clientId=*/9, token + 999);
    EXPECT_FALSE(client.resumed());
    EXPECT_EQ(client.ackedFrames(), 0u);
  }
  const auto counters = daemon->counters();
  EXPECT_EQ(counters.sessionsResumed, 1u);
  EXPECT_EQ(counters.sessionsOpened, 2u);
}

TEST_F(SpectordDaemonTest, DashboardMirrorReconstructsDaemonStateExactly) {
  auto daemon = makeDaemon(daemonConfig());

  // First subscriber sees an empty snapshot, then every run as a delta.
  DashboardClient early(daemon->connect(), /*clientId=*/100);
  early.subscribe(Topic::Totals);
  early.subscribe(Topic::Loss);
  early.subscribe(Topic::Progress);
  ASSERT_TRUE(early.waitForSnapshot(Topic::Totals, 5000ms));

  IngestClient client(daemon->connect(), /*clientId=*/2);
  for (std::size_t i = 0; i < 4; ++i) {
    auto artifacts = runApp(i, &client);
    client.completeRun(i, artifacts);
    if (i == 1) {
      // Second subscriber joins mid-study: snapshot + remaining deltas
      // must land on the same final state (no double count across the
      // subscribe boundary, no missed run).
      daemon->drain();
    }
  }
  daemon->drain();

  DashboardClient late(daemon->connect(), /*clientId=*/101);
  late.subscribe(Topic::Totals);
  late.subscribe(Topic::Loss);
  late.subscribe(Topic::Progress);

  ASSERT_TRUE(early.waitForRuns(4, 10000ms));
  ASSERT_TRUE(late.waitForRuns(4, 10000ms));

  const auto reference = daemon->rollingTotals();
  for (const DashboardClient* dashboard : {&early, &late}) {
    const DashboardMirror& mirror = dashboard->mirror();
    EXPECT_EQ(mirror.totals.runsFolded, reference.runsFolded);
    EXPECT_EQ(mirror.totals.flowCount, reference.flowCount);
    EXPECT_EQ(mirror.totals.attributedBytes, reference.attributedBytes);
    EXPECT_EQ(mirror.totals.unattributedBytes, reference.unattributedBytes);
    EXPECT_EQ(mirror.totals.bytesByLibrary, reference.bytesByLibrary);
    EXPECT_EQ(mirror.totals.bytesByLibCategory, reference.bytesByLibCategory);
    EXPECT_EQ(mirror.totals.bytesByApp, reference.bytesByApp);
    // Loss topic: exact per-apk accounts.
    const auto accounts = daemon->pipeline().lossAccounts();
    ASSERT_EQ(mirror.accounts.size(), accounts.size());
    for (const auto& [sha, account] : mirror.accounts) {
      ASSERT_TRUE(accounts.contains(sha));
      EXPECT_EQ(account, accounts.at(sha));
    }
    // Progress topic.
    EXPECT_EQ(mirror.runsFolded, 4u);
  }
  EXPECT_GT(early.deltasReceived(), 0u);
  EXPECT_GT(daemon->metrics().subscriberDeltasSent, 0u);
  EXPECT_EQ(daemon->metrics().subscriberDeltasDropped, 0u);
  client.bye();
}

TEST_F(SpectordDaemonTest, SlowSubscriberIsBoundedAndResyncsWithoutStallingIngest) {
  auto config = daemonConfig();
  // A budget small enough that a non-polling subscriber overflows fast.
  config.subscriberQueueBytes = 256;
  config.slowSubscriberPolicy = SlowSubscriberPolicy::DropAndResync;
  auto daemon = makeDaemon(std::move(config));

  DashboardClient dashboard(daemon->connect(), /*clientId=*/200);
  dashboard.subscribe(Topic::Totals);
  ASSERT_TRUE(dashboard.waitForSnapshot(Topic::Totals, 5000ms));

  // The subscriber goes silent; ingest must finish regardless.
  IngestClient client(daemon->connect(), /*clientId=*/3);
  for (std::size_t i = 0; i < generator_.appCount(); ++i) {
    auto artifacts = runApp(i, &client);
    const RunAckMsg ack = client.completeRun(i, artifacts);
    ASSERT_TRUE(ack.accepted);
  }
  daemon->drain();
  EXPECT_EQ(daemon->rollingTotals().runsFolded, generator_.appCount());

  // With a 256-byte budget and a silent reader the policy kicked in: at
  // least one delta was dropped (arming the resync), and once armed the
  // remaining runs ride the pending snapshot instead of the delta stream,
  // so attempts never exceed one per run for the one subscribed topic.
  const auto metrics = daemon->metrics();
  EXPECT_GT(metrics.subscriberDeltasDropped, 0u);
  EXPECT_LE(metrics.subscriberDeltasSent + metrics.subscriberDeltasDropped,
            generator_.appCount());
  EXPECT_EQ(metrics.subscribersDisconnected, 0u);

  // Once the subscriber drains, the resync snapshot restores exactness.
  ASSERT_TRUE(dashboard.waitForRuns(generator_.appCount(), 10000ms));
  EXPECT_GE(dashboard.snapshotsReceived(Topic::Totals), 2u);
  const auto reference = daemon->rollingTotals();
  EXPECT_EQ(dashboard.mirror().totals.bytesByApp, reference.bytesByApp);
  EXPECT_EQ(dashboard.mirror().totals.attributedBytes,
            reference.attributedBytes);
  EXPECT_GT(daemon->metrics().subscriberSnapshotsResent, 0u);
  client.bye();
}

TEST_F(SpectordDaemonTest, SlowSubscriberDisconnectPolicyCutsTheClient) {
  auto config = daemonConfig();
  config.subscriberQueueBytes = 256;
  config.slowSubscriberPolicy = SlowSubscriberPolicy::Disconnect;
  auto daemon = makeDaemon(std::move(config));

  DashboardClient dashboard(daemon->connect(), /*clientId=*/201);
  dashboard.subscribe(Topic::Totals);
  ASSERT_TRUE(dashboard.waitForSnapshot(Topic::Totals, 5000ms));

  IngestClient client(daemon->connect(), /*clientId=*/4);
  for (std::size_t i = 0; i < generator_.appCount(); ++i) {
    auto artifacts = runApp(i, &client);
    ASSERT_TRUE(client.completeRun(i, artifacts).accepted);
  }
  daemon->drain();

  // Ingest finished at full exactness; the slow dashboard was cut loose.
  EXPECT_EQ(daemon->rollingTotals().runsFolded, generator_.appCount());
  EXPECT_EQ(daemon->metrics().subscribersDisconnected, 1u);

  // The client observes the Bye (or the close racing it).
  dashboard.poll(2000ms);
  EXPECT_TRUE(dashboard.byeReceived() || dashboard.peerClosed());
  client.bye();
}

TEST_F(SpectordDaemonTest, AdminStatusDrainAndEvict) {
  auto daemon = makeDaemon(daemonConfig());
  AdminClient admin(daemon->connect(), /*clientId=*/300);

  const AdminAckMsg status = admin.request(AdminOp::Status);
  EXPECT_TRUE(status.ok);
  EXPECT_NE(status.info.find("\"runs_folded\""), std::string::npos);

  // Stream a run's datagrams but never complete the run: pending state.
  IngestClient client(daemon->connect(), /*clientId=*/6);
  auto artifacts = runApp(0, &client);
  ASSERT_TRUE(client.waitAckedFrames(client.framesSent(), 10000ms));
  const AdminAckMsg drained = admin.request(AdminOp::Drain);
  EXPECT_TRUE(drained.ok);

  const AdminAckMsg evicted = admin.request(AdminOp::EvictApk,
                                            artifacts.apkSha256);
  EXPECT_TRUE(evicted.ok) << evicted.info;
  // Second evict: nothing left.
  const AdminAckMsg again = admin.request(AdminOp::EvictApk,
                                          artifacts.apkSha256);
  EXPECT_FALSE(again.ok);
  std::uint64_t evictedApks = 0;
  for (const auto& shard : daemon->metrics().perShard)
    evictedApks += shard.apksEvicted;
  EXPECT_EQ(evictedApks, 1u);
  client.bye();
}

TEST_F(SpectordDaemonTest, AdminResumeReplaysCheckpointsAndShutdownStops) {
  const auto directory =
      std::filesystem::temp_directory_path() / "spectord_admin_resume";
  std::filesystem::remove_all(directory);

  ingest::RollingTotals before;
  {
    auto config = daemonConfig();
    config.checkpointDirectory = directory.string();
    auto daemon = makeDaemon(std::move(config));
    IngestClient client(daemon->connect(), /*clientId=*/7);
    for (std::size_t i = 0; i < 3; ++i) {
      auto artifacts = runApp(i, &client);
      ASSERT_TRUE(client.completeRun(i, artifacts).accepted);
    }
    daemon->drain();
    before = daemon->rollingTotals();
    client.bye();
    daemon->shutdown();
    EXPECT_FALSE(daemon->running());
  }

  {
    auto config = daemonConfig();
    config.checkpointDirectory = directory.string();
    auto daemon = makeDaemon(std::move(config));
    AdminClient admin(daemon->connect(), /*clientId=*/301);

    const AdminAckMsg compacted = admin.request(AdminOp::Compact);
    EXPECT_TRUE(compacted.ok);

    const AdminAckMsg resumed = admin.request(AdminOp::Resume);
    EXPECT_TRUE(resumed.ok);
    EXPECT_NE(resumed.info.find("replayed 3 runs"), std::string::npos)
        << resumed.info;

    const auto after = daemon->rollingTotals();
    EXPECT_EQ(after.runsFolded, before.runsFolded);
    EXPECT_EQ(after.attributedBytes, before.attributedBytes);
    EXPECT_EQ(after.bytesByApp, before.bytesByApp);
    EXPECT_EQ(after.bytesByLibrary, before.bytesByLibrary);

    // Graceful shutdown over the wire: the daemon stops and further
    // connects come back closed.
    const AdminAckMsg bye = admin.request(AdminOp::Shutdown);
    EXPECT_TRUE(bye.ok);
    for (int i = 0; i < 200 && daemon->running(); ++i)
      std::this_thread::sleep_for(10ms);
    EXPECT_FALSE(daemon->running());
    auto endpoint = daemon->connect();
    EXPECT_TRUE(endpoint.peerClosed() || endpoint.writeClosed());
  }
  std::filesystem::remove_all(directory);
}

TEST_F(SpectordDaemonTest, RunCompleteOutsideOwnedSliceIsRefused) {
  // Find two apps with different owners under a 4-way split.
  const CollectorAssignment probe{0, 4};
  std::optional<std::size_t> ownedIndex, foreignIndex;
  std::vector<core::RunArtifacts> runs;
  {
    // Hash the apks first (cheap single runs through a throwaway daemon's
    // client would also work, but the emulator needs *some* sink).
    ingest::IngestPipeline scratch(
        {.shards = 1}, [this](const core::RunArtifacts& artifacts) {
          return attributor_.attribute(artifacts);
        });
    for (std::size_t i = 0; i < generator_.appCount(); ++i) {
      runs.push_back(runApp(i, &scratch));
      if (probe.owns(runs.back().apkSha256)) {
        if (!ownedIndex) ownedIndex = i;
      } else if (!foreignIndex) {
        foreignIndex = i;
      }
    }
    scratch.drain();
  }
  ASSERT_TRUE(ownedIndex.has_value());
  ASSERT_TRUE(foreignIndex.has_value());

  auto config = daemonConfig();
  config.assignment = probe;
  auto daemon = makeDaemon(std::move(config));
  IngestClient client(daemon->connect(), /*clientId=*/8);

  const RunAckMsg good = client.completeRun(*ownedIndex, runs[*ownedIndex]);
  EXPECT_TRUE(good.accepted) << good.reason;

  const RunAckMsg refused =
      client.completeRun(*foreignIndex, runs[*foreignIndex]);
  EXPECT_FALSE(refused.accepted);
  EXPECT_NE(refused.reason.find("owned by collector"), std::string::npos)
      << refused.reason;

  daemon->drain();
  EXPECT_EQ(daemon->counters().runsRefused, 1u);
  EXPECT_EQ(daemon->rollingTotals().runsFolded, 1u);
  client.bye();
}

}  // namespace
}  // namespace libspector::spectord
