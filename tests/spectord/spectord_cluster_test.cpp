// Multi-collector spectord operation: N daemons each own a contiguous
// slice of sha-space, every run crosses the wire protocol into its
// collector, each collector's checkpoint directory is its entire output,
// and orch::mergeStudies must reproduce the single-collector runStudy
// BYTE-IDENTICALLY — at any collector count, through a mid-study collector
// kill (with and without resume), and through a simulated crash at every
// kill point of the checkpoint persistence protocol.
#include "spectord/cluster.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/export.hpp"
#include "orch/recovery.hpp"
#include "orch/study.hpp"

namespace libspector::spectord {
namespace {

orch::StudyConfig smallConfig() {
  orch::StudyConfig config;
  config.store.appCount = 12;
  config.store.seed = 5;
  config.store.methodScale = 0.05;
  config.dispatcher.emulator.monkey.events = 100;
  config.dispatcher.emulator.monkey.throttleMs = 50;
  return config;
}

/// Render every figure dataset plus the markdown report into one string:
/// byte equality here is study identity for every consumer in the repo.
std::string renderStudy(const core::StudyAggregator& study) {
  std::ostringstream out;
  core::writeFig2Csv(study, out);
  core::writeTopLibrariesCsv(study, 25, out);
  core::writeCdfCsv(study, out);
  core::writeFlowRatiosCsv(study, out);
  core::writeAntSharesCsv(study, out);
  core::writeCategoryAveragesCsv(study, out);
  core::writeHeatmapCsv(study, out);
  core::writeCoverageCsv(study, out);
  core::writeStudyReport(study, out);
  return out.str();
}

std::filesystem::path freshDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SpectordClusterTest, AnyCollectorCountMergesByteIdenticalToRunStudy) {
  const auto config = smallConfig();
  const auto reference = orch::runStudy(config);
  const std::string referenceRender = renderStudy(reference.study);

  for (const std::uint32_t count : {1u, 2u, 4u}) {
    std::vector<std::string> directories;
    std::uint64_t dispatched = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      CollectorOptions options;
      options.index = i;
      options.count = count;
      options.checkpointDirectory =
          freshDir("spectord_cluster_" + std::to_string(count) + "_" +
                   std::to_string(i))
              .string();
      const CollectorResult result = runCollector(config, options);
      EXPECT_EQ(result.runsAccepted, result.jobsDispatched);
      dispatched += result.jobsDispatched;
      directories.push_back(options.checkpointDirectory);
    }
    // The assignment partitions: every job ran exactly once, somewhere.
    EXPECT_EQ(dispatched, config.store.appCount) << "count=" << count;

    const orch::MergeOutput merged = orch::mergeStudies(config, directories);
    EXPECT_EQ(merged.output.appsProcessed, reference.appsProcessed);
    EXPECT_EQ(merged.output.appsReplayed, config.store.appCount);
    EXPECT_EQ(renderStudy(merged.output.study), referenceRender)
        << "collector count " << count
        << " is not byte-identical to the single-collector study";
    for (const auto& directory : directories)
      std::filesystem::remove_all(directory);
  }
}

TEST(SpectordClusterTest, CollectorKillAndResumeStaysByteIdentical) {
  const auto config = smallConfig();
  const auto reference = orch::runStudy(config);
  const std::string referenceRender = renderStudy(reference.study);

  const auto dirA = freshDir("spectord_kill_a");
  const auto dirB = freshDir("spectord_kill_b");

  // Collector 1 runs its full share.
  CollectorOptions full;
  full.index = 1;
  full.count = 2;
  full.checkpointDirectory = dirB.string();
  const CollectorResult survivor = runCollector(config, full);
  ASSERT_GT(survivor.jobsDispatched, 0u);

  // Collector 0 is killed after one owned job (in-flight work completes
  // and checkpoints; the rest of its share is never dispatched).
  CollectorOptions killed;
  killed.index = 0;
  killed.count = 2;
  killed.checkpointDirectory = dirA.string();
  killed.jobLimit = 1;
  const CollectorResult beforeCrash = runCollector(config, killed);
  ASSERT_EQ(beforeCrash.jobsDispatched, 1u);
  EXPECT_EQ(beforeCrash.jobsOwned, beforeCrash.jobsDispatched);
  ASSERT_GT(survivor.jobsDispatched + 1, 0u);

  // Merging *without* resuming: the merge itself re-runs the dead
  // collector's gap jobs and must still match byte for byte.
  {
    const auto merged =
        orch::mergeStudies(config, {dirA.string(), dirB.string()});
    EXPECT_EQ(renderStudy(merged.output.study), referenceRender)
        << "merge over a crashed collector's partial directory diverged";
  }

  // Now the collector restarts and resumes its own directory: survivors
  // replay (no emulator re-runs), the gaps run fresh, and the merged
  // study is again byte-identical.
  CollectorOptions resumed = killed;
  resumed.jobLimit = ~0ULL;
  resumed.resume = true;
  const CollectorResult afterResume = runCollector(config, resumed);
  EXPECT_EQ(afterResume.runsReplayed, 1u);
  // jobsOwned counts only the jobs this incarnation had to work: a
  // resumed collector reports its gaps, not its whole share over again.
  EXPECT_EQ(afterResume.jobsOwned, afterResume.jobsDispatched);
  EXPECT_EQ(afterResume.runsReplayed + afterResume.jobsDispatched +
                survivor.jobsDispatched,
            config.store.appCount);

  const auto merged =
      orch::mergeStudies(config, {dirA.string(), dirB.string()});
  EXPECT_EQ(merged.output.appsReplayed, config.store.appCount);
  EXPECT_EQ(renderStudy(merged.output.study), referenceRender)
      << "merge after kill+resume diverged";

  std::filesystem::remove_all(dirA);
  std::filesystem::remove_all(dirB);
}

TEST(SpectordClusterTest, CrashAtEveryCheckpointKillPointStillMerges) {
  const auto config = smallConfig();
  const auto reference = orch::runStudy(config);
  const std::string referenceRender = renderStudy(reference.study);

  // Run the two collectors once, cleanly, to harvest collector 0's runs.
  const auto dirA = freshDir("spectord_sweep_a");
  const auto dirB = freshDir("spectord_sweep_b");
  for (std::uint32_t i = 0; i < 2; ++i) {
    CollectorOptions options;
    options.index = i;
    options.count = 2;
    options.checkpointDirectory = (i == 0 ? dirA : dirB).string();
    (void)runCollector(config, options);
  }
  orch::RecoveryReport harvested = orch::StudyRecovery::scan(dirA.string());
  ASSERT_GE(harvested.runs.size(), 2u)
      << "collector 0 owns too few apps for the sweep to mean anything";

  // Re-drive the persistence protocol for collector 0's directory with a
  // crash injected at every kill point of its *last* checkpoint: whatever
  // state the crash leaves (torn tmp, unmanifested bundle, torn manifest
  // line), the merge must quarantine/ignore/recover it and still
  // reproduce the reference study byte for byte.
  for (const std::string_view point : orch::kCheckpointKillPoints) {
    const auto dirK =
        freshDir(std::string("spectord_sweep_kill_") + std::string(point));
    bool armed = false;
    orch::CheckpointWriter writer(
        dirK.string(), [&armed, point](std::string_view at) {
          if (armed && at == point)
            throw orch::SimulatedCrash(std::string(at));
        });
    for (std::size_t i = 0; i < harvested.runs.size(); ++i) {
      const auto& run = harvested.runs[i];
      armed = (i + 1 == harvested.runs.size());
      try {
        writer.checkpoint(run.jobIndex, run.account, run.artifacts);
      } catch (const orch::SimulatedCrash&) {
        ASSERT_TRUE(armed);
      }
    }

    const auto merged =
        orch::mergeStudies(config, {dirK.string(), dirB.string()});
    EXPECT_EQ(renderStudy(merged.output.study), referenceRender)
        << "kill point '" << point << "' broke merge byte-identity";
    std::filesystem::remove_all(dirK);
  }

  std::filesystem::remove_all(dirA);
  std::filesystem::remove_all(dirB);
}

}  // namespace
}  // namespace libspector::spectord
