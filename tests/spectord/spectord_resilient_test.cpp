// The resilient client tier: deterministic backoff schedules, clients
// that survive scripted connection kills (BreakerEndpoint) by resuming
// their session and re-sending only the unacked tail, the daemon's
// hardened session table (one live attach per clientId, stale-session
// expiry on drain), and the ack-path dedupe fixes (duplicate RunAcks,
// duplicate RunComplete uploads, pre-ack handshake frames).
#include "spectord/resilient.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/attribution.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "spectord/daemon.hpp"
#include "store/generator.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::spectord {
namespace {

using namespace std::chrono_literals;

ReconnectorConfig testBackoff() {
  ReconnectorConfig config;
  config.initialDelay = 1ms;
  config.maxDelay = 20ms;
  config.maxAttempts = 10;
  config.seed = 7;
  return config;
}

class SpectordResilientTest : public ::testing::Test {
 protected:
  SpectordResilientTest()
      : generator_(storeConfig()),
        corpus_(radar::LibraryCorpus::builtin()),
        categorizer_(vtsim::defaultVendorPanel(),
                     [this](const std::string& domain) {
                       return generator_.domainTruth(domain);
                     }),
        attributor_(corpus_, categorizer_) {}

  static store::StoreConfig storeConfig() {
    store::StoreConfig config;
    config.appCount = 8;
    config.seed = 42;
    config.methodScale = 0.05;
    return config;
  }

  std::unique_ptr<SpectorDaemon> makeDaemon() {
    DaemonConfig config;
    config.ingest.shards = 2;
    return std::make_unique<SpectorDaemon>(
        std::move(config), [this](const core::RunArtifacts& artifacts) {
          return attributor_.attribute(artifacts);
        });
  }

  core::RunArtifacts runApp(std::size_t index, ingest::ReportSink* collector) {
    orch::EmulatorConfig config;
    config.monkey.events = 80;
    config.monkey.throttleMs = 50;
    config.seed = 1000 + index;
    config.workerId = static_cast<std::uint32_t>(index);
    orch::EmulatorInstance emulator(generator_.farm(), collector, config);
    const auto job = generator_.makeJob(index);
    return emulator.run(job.apk, job.program);
  }

  store::AppStoreGenerator generator_;
  radar::LibraryCorpus corpus_;
  vtsim::DomainCategorizer categorizer_;
  core::TrafficAttributor attributor_;
};

// --- Reconnector -----------------------------------------------------------

TEST(ReconnectorTest, BackoffScheduleIsDeterministicWithPinnedJitter) {
  ReconnectorConfig config;
  config.initialDelay = 10ms;
  config.maxDelay = 200ms;
  config.multiplier = 2.0;
  config.jitter = 0.25;
  config.maxAttempts = 6;
  config.seed = 42;

  // The whole schedule is a pure function of the config: exponential base
  // 10,20,40,80,160,320 capped at 200, each scaled by seeded jitter in
  // [0.75, 1.25]. Pinned so an accidental reseed or formula change shows.
  Reconnector reconnector(config);
  const std::vector<std::int64_t> expected = {7, 18, 43, 96, 199, 226};
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(reconnector.nextDelay().count(), expected[i]) << "attempt " << i;
  // Budget exhausted: the seventh attempt must throw, not sleep forever.
  EXPECT_TRUE(reconnector.exhausted());
  EXPECT_THROW((void)reconnector.nextDelay(), std::runtime_error);

  // Identical config replays the identical schedule.
  Reconnector replay(config);
  for (const std::int64_t delay : expected)
    EXPECT_EQ(replay.nextDelay().count(), delay);

  // A successful attach resets the failure streak and the budget.
  Reconnector resetting(config);
  for (int i = 0; i < 3; ++i) (void)resetting.nextDelay();
  resetting.reset();
  EXPECT_EQ(resetting.attempt(), 0u);
  EXPECT_FALSE(resetting.exhausted());
}

TEST(ReconnectorTest, JitterStaysInsideTheConfiguredBand) {
  ReconnectorConfig config;
  config.initialDelay = 100ms;
  config.maxDelay = 100000ms;
  config.multiplier = 1.0;  // flat base isolates the jitter factor
  config.jitter = 0.5;
  config.maxAttempts = 200;
  config.seed = 99;
  Reconnector reconnector(config);
  for (int i = 0; i < 200; ++i) {
    const auto delay = reconnector.nextDelay().count();
    EXPECT_GE(delay, 50);
    EXPECT_LE(delay, 150);
  }
}

// --- Handshake and ack-path fixes ------------------------------------------

TEST(SpectordHandshakeTest, PreAckFramesAreSkippedNotFatal) {
  // A resumed connection can carry frames queued for the old attach ahead
  // of the HelloAck. Hand-roll a server that sends exactly that.
  ChannelPair pair = makeChannel(4096);
  std::thread server([endpoint = pair.server]() mutable {
    std::vector<std::uint8_t> buf;
    while (endpoint.readable() == 0) endpoint.waitReadable(50ms);
    endpoint.readSome(buf);  // the Hello; content irrelevant here
    ReportAckMsg stale;
    stale.ackedFrames = 5;
    endpoint.writeAll(encodeFrame(FrameType::ReportAck, stale.encode()));
    RunAckMsg run;
    run.jobIndex = 7;
    run.accepted = true;
    endpoint.writeAll(encodeFrame(FrameType::RunAck, run.encode()));
    HelloAckMsg ack;
    ack.session = 99;
    ack.ackedFrames = 5;
    ack.ackedRuns = 1;
    ack.resumed = true;
    endpoint.writeAll(encodeFrame(FrameType::HelloAck, ack.encode()));
  });
  IngestClient client(pair.client, /*clientId=*/1, /*resumeSession=*/42);
  server.join();
  EXPECT_EQ(client.sessionToken(), 99u);
  EXPECT_TRUE(client.resumed());
  EXPECT_EQ(client.ackedFrames(), 5u);
}

TEST_F(SpectordResilientTest, DuplicateRunUploadIsAckedOnceAndNotRefolded) {
  auto daemon = makeDaemon();
  IngestClient client(daemon->connect(), /*clientId=*/9);
  const auto artifacts = runApp(0, &client);

  const RunAckMsg first = client.completeRun(0, artifacts);
  EXPECT_TRUE(first.accepted);
  EXPECT_FALSE(first.duplicate);

  // A resumed client whose RunAck was lost re-sends the upload. The
  // daemon must ack it (the client needs closure) without folding the
  // run twice, and the client must not count the ack twice.
  const RunAckMsg second = client.completeRun(0, artifacts);
  EXPECT_TRUE(second.accepted);
  EXPECT_TRUE(second.duplicate);
  EXPECT_EQ(client.ackedRuns(), 1u);

  daemon->drain();
  EXPECT_EQ(daemon->metrics().runsCompleted, 1u);
  EXPECT_EQ(daemon->counters().duplicateRunUploads, 1u);
  client.bye();
  daemon->shutdown();
}

// --- Session-table hardening -----------------------------------------------

TEST_F(SpectordResilientTest, SecondLiveAttachOnSameClientIdIsRefused) {
  auto daemon = makeDaemon();
  IngestClient live(daemon->connect(), /*clientId=*/9);
  // Two workers sharing a clientId would corrupt the cumulative ack
  // stream; while the first attach is live the second must be refused.
  EXPECT_THROW(IngestClient(daemon->connect(), /*clientId=*/9),
               std::runtime_error);
  EXPECT_EQ(daemon->counters().attachRefusals, 1u);

  // The refused handshake must not have disturbed the live session.
  const auto artifacts = runApp(0, &live);
  EXPECT_TRUE(live.completeRun(0, artifacts).accepted);
  const std::uint64_t token = live.sessionToken();
  live.bye();

  // Once the first connection hung up, the same clientId attaches fine —
  // a dead-but-unreaped connection must not block its own replacement.
  IngestClient replacement(daemon->connect(), /*clientId=*/9, token);
  EXPECT_TRUE(replacement.resumed());
  replacement.bye();
  daemon->shutdown();
}

TEST_F(SpectordResilientTest, AdminDrainExpiresStaleSessions) {
  auto daemon = makeDaemon();
  std::uint64_t token = 0;
  {
    IngestClient client(daemon->connect(), /*clientId=*/9);
    const auto artifacts = runApp(0, &client);
    EXPECT_TRUE(client.completeRun(0, artifacts).accepted);
    token = client.sessionToken();
    client.bye();
  }
  // An admin drain sweeps sessions with no live attach out of the table.
  AdminClient admin(daemon->connect(), /*clientId=*/300);
  const AdminAckMsg drained = admin.request(AdminOp::Drain);
  EXPECT_TRUE(drained.ok);
  EXPECT_GE(daemon->counters().sessionsExpired, 1u);

  // The old token no longer resumes: the daemon forgot the session, so
  // the client gets a fresh one with nothing acked.
  IngestClient comeback(daemon->connect(), /*clientId=*/9, token);
  EXPECT_FALSE(comeback.resumed());
  EXPECT_EQ(comeback.ackedFrames(), 0u);
  comeback.bye();
  daemon->shutdown();
}

// --- Resilient clients under scripted kills --------------------------------

TEST_F(SpectordResilientTest, IngestClientSurvivesSeverAndLosesNothing) {
  auto daemon = makeDaemon();
  std::vector<std::unique_ptr<BreakerEndpoint>> breakers;
  ResilientClientConfig config;
  config.reconnect = testBackoff();

  // Calibrate the first kill to land mid-report-stream: replay app 0
  // through a counting sink (the emulator is deterministic, so the real
  // run emits the identical bytes) and sever halfway into its reports —
  // that tears a report frame, which only the unacked-tail replay can
  // recover.
  struct CountingSink final : ingest::ReportSink {
    std::uint64_t wireBytes = 0;
    void submitDatagram(std::span<const std::uint8_t> payload) override {
      wireBytes += encodeFrame(FrameType::Report, payload).size();
    }
  } counter;
  (void)runApp(0, &counter);
  ASSERT_GT(counter.wireBytes, 0u);
  HelloMsg hello;
  hello.clientId = 9;
  hello.kind = ClientKind::Ingest;
  const std::uint64_t severAt =
      encodeFrame(FrameType::Hello, hello.encode()).size() +
      counter.wireBytes / 2;

  ResilientIngestClient client(
      [&](std::size_t ordinal) {
        BreakerEndpoint::Fault fault;
        if (ordinal == 0) {
          // Kill the first connection mid-stream, deliberately mid-frame.
          fault.kind = BreakerEndpoint::FaultKind::Sever;
          fault.afterClientBytes = severAt;
        } else if (ordinal == 1) {
          fault.kind = BreakerEndpoint::FaultKind::Truncate;
          fault.afterClientBytes = 9001;
          fault.stall = 2ms;
        }
        breakers.push_back(
            std::make_unique<BreakerEndpoint>(daemon->connect(), fault));
        return breakers.back()->clientEnd();
      },
      /*clientId=*/9, config);

  for (std::size_t i = 0; i < 4; ++i) {
    const auto artifacts = runApp(i, &client);
    const RunAckMsg ack = client.completeRun(i, artifacts);
    EXPECT_TRUE(ack.accepted) << ack.reason;
  }
  ASSERT_TRUE(client.waitAckedFrames(client.framesOffered(), 10000ms));
  EXPECT_EQ(client.reconnects(), 2u);
  EXPECT_GT(client.framesResent(), 0u);
  // Exact, not best-effort: every offered frame was folded exactly once,
  // so the cumulative ack equals the offered count. A transport found
  // dead on entry to submitDatagram must not deliver the new frame both
  // via the tail replay and a direct send (which would over-advance the
  // ack stream and later prune a genuinely-unacked frame).
  EXPECT_EQ(client.ackedFrames(), client.framesOffered());

  daemon->drain();
  const auto metrics = daemon->metrics();
  // Every datagram the emulators emitted arrived exactly once: the
  // severed frames were re-sent from the unacked tail, and anything
  // double-delivered across the kill was deduped by (worker, sequence).
  EXPECT_EQ(metrics.runsCompleted, 4u);
  EXPECT_EQ(metrics.reportsLost, 0u);
  EXPECT_EQ(daemon->counters().sessionsResumed, 2u);
  client.bye();
  daemon->shutdown();
}

TEST_F(SpectordResilientTest, RefusedResumeRebasesAckAccounting) {
  auto daemon = makeDaemon();
  std::vector<std::unique_ptr<BreakerEndpoint>> breakers;
  ResilientClientConfig config;
  config.reconnect = testBackoff();

  // Capture a real report stream so the severed frames are genuine wire
  // payloads, then sever mid-way through the third frame.
  struct CaptureSink final : ingest::ReportSink {
    std::vector<std::vector<std::uint8_t>> frames;
    void submitDatagram(std::span<const std::uint8_t> payload) override {
      frames.emplace_back(payload.begin(), payload.end());
    }
  } capture;
  (void)runApp(0, &capture);
  ASSERT_GT(capture.frames.size(), 4u);
  HelloMsg hello;
  hello.clientId = 9;
  hello.kind = ClientKind::Ingest;
  std::uint64_t severAt = encodeFrame(FrameType::Hello, hello.encode()).size();
  for (std::size_t i = 0; i < 2; ++i)
    severAt += encodeFrame(FrameType::Report, capture.frames[i]).size();
  severAt += encodeFrame(FrameType::Report, capture.frames[2]).size() / 2;

  ResilientIngestClient client(
      [&](std::size_t ordinal) {
        if (ordinal == 1) {
          // The daemon expired the session while the client was down: an
          // admin drain swept it between the hangup and the re-attach, so
          // the resume is refused and the client gets a fresh session
          // whose ack stream restarts at zero.
          AdminClient admin(daemon->connect(), /*clientId=*/300);
          EXPECT_TRUE(admin.request(AdminOp::Drain).ok);
          admin.close();
        }
        BreakerEndpoint::Fault fault;
        if (ordinal == 0) {
          fault.kind = BreakerEndpoint::FaultKind::Sever;
          fault.afterClientBytes = severAt;
        }
        breakers.push_back(
            std::make_unique<BreakerEndpoint>(daemon->connect(), fault));
        return breakers.back()->clientEnd();
      },
      /*clientId=*/9, config);

  for (const auto& frame : capture.frames) client.submitDatagram(frame);
  // Without rebasing, the fresh session's from-zero acks can never reach
  // the absolute offered count: the tail would grow forever and this
  // wait would spin to its deadline.
  ASSERT_TRUE(client.waitAckedFrames(client.framesOffered(), 10000ms));
  EXPECT_EQ(client.reconnects(), 1u);
  EXPECT_EQ(client.resumesRefused(), 1u);
  EXPECT_EQ(client.ackedFrames(), client.framesOffered());
  EXPECT_GE(daemon->counters().sessionsExpired, 1u);
  client.bye();
  daemon->shutdown();
}

TEST(SpectordResilientBudgetTest, CompleteRunFailsLoudlyWhenDaemonNeverAcks) {
  // A daemon that stays reachable but never acks resets the reconnect
  // budget on every re-attach; the upload must have its own fail-loud
  // budget instead of retrying forever.
  std::vector<std::thread> servers;
  ResilientClientConfig config;
  config.reconnect = testBackoff();
  config.runAckTimeout = 25ms;
  config.runUploadAttempts = 3;
  {
    ResilientIngestClient client(
        [&](std::size_t) {
          ChannelPair pair = makeChannel(64 * 1024);
          servers.emplace_back([endpoint = pair.server]() mutable {
            std::vector<std::uint8_t> buf;
            while (endpoint.readable() == 0 && !endpoint.peerClosed())
              endpoint.waitReadable(50ms);
            endpoint.readSome(buf);  // the Hello
            HelloAckMsg ack;
            ack.session = 1;
            endpoint.writeAll(encodeFrame(FrameType::HelloAck, ack.encode()));
            // Swallow everything else; never send a RunAck.
            while (!endpoint.peerClosed()) {
              buf.clear();
              if (endpoint.readSome(buf) == 0) endpoint.waitReadable(20ms);
            }
            endpoint.close();
          });
          return pair.client;
        },
        /*clientId=*/5, config);
    core::RunArtifacts artifacts;  // content irrelevant: never acked
    EXPECT_THROW((void)client.completeRun(0, artifacts), std::runtime_error);
    EXPECT_EQ(client.runsResent(), 3u);
    client.bye();
  }
  for (auto& server : servers) server.join();
  EXPECT_EQ(servers.size(), 3u);
}

TEST(SpectordResilientDashboardTest, ReconnectDoesNotDuplicateSubscribes) {
  // Count the Subscribe frames each fake-server connection receives: a
  // reconnect re-subscribes the recorded topics, and subscribe() must not
  // send the requested topic a second time on top of that.
  std::vector<std::thread> servers;
  std::array<std::atomic<int>, 4> subscribes{};
  std::atomic<bool> firstConnClosed{false};
  ResilientClientConfig config;
  config.reconnect = testBackoff();
  {
    ResilientDashboardClient dashboard(
        [&](std::size_t ordinal) {
          ChannelPair pair = makeChannel(64 * 1024);
          servers.emplace_back([endpoint = pair.server, &subscribes,
                                &firstConnClosed, ordinal]() mutable {
            FrameParser parser;
            std::vector<std::uint8_t> buf;
            while (!endpoint.peerClosed()) {
              buf.clear();
              if (endpoint.readSome(buf) == 0) {
                endpoint.waitReadable(20ms);
                continue;
              }
              parser.feed(buf);
              while (auto frame = parser.next()) {
                if (frame->type == FrameType::Hello) {
                  HelloAckMsg ack;
                  ack.session = ordinal + 1;
                  endpoint.writeAll(
                      encodeFrame(FrameType::HelloAck, ack.encode()));
                } else if (frame->type == FrameType::Subscribe) {
                  ++subscribes[ordinal];
                  if (ordinal == 0) {
                    // Kill the first connection right after its initial
                    // subscribe landed.
                    endpoint.close();
                    firstConnClosed.store(true);
                    return;
                  }
                }
              }
            }
            endpoint.close();
          });
          return pair.client;
        },
        /*clientId=*/7, config);

    dashboard.subscribe(Topic::Totals);
    while (!firstConnClosed.load()) std::this_thread::sleep_for(1ms);

    // Re-asserting the same subscription on a dead transport reconnects;
    // the reconnect path already re-subscribes Totals, so exactly one
    // Subscribe may reach the second connection here.
    dashboard.subscribe(Topic::Totals);
    // A genuinely new topic on the live connection still goes out.
    dashboard.subscribe(Topic::Loss);
    const auto deadline = std::chrono::steady_clock::now() + 2000ms;
    while (subscribes[1].load() < 2 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(1ms);
    std::this_thread::sleep_for(50ms);  // would catch a late duplicate
    EXPECT_EQ(subscribes[0].load(), 1);
    EXPECT_EQ(subscribes[1].load(), 2);
    EXPECT_EQ(dashboard.reconnects(), 1u);
    dashboard.close();
  }
  for (auto& server : servers) server.join();
}

TEST_F(SpectordResilientTest, DashboardClientReconnectsAndResubscribes) {
  auto daemon = makeDaemon();
  std::vector<std::unique_ptr<BreakerEndpoint>> breakers;
  ResilientClientConfig config;
  config.reconnect = testBackoff();

  // Size the kill so the Hello lands but the first Subscribe is torn.
  HelloMsg hello;
  hello.clientId = 77;
  hello.kind = ClientKind::Dashboard;
  const std::size_t helloBytes =
      encodeFrame(FrameType::Hello, hello.encode()).size();
  SubscribeMsg sub;
  const std::size_t subBytes =
      encodeFrame(FrameType::Subscribe, sub.encode()).size();

  ResilientDashboardClient dashboard(
      [&](std::size_t ordinal) {
        BreakerEndpoint::Fault fault;
        if (ordinal == 0) {
          fault.kind = BreakerEndpoint::FaultKind::Sever;
          fault.afterClientBytes = helloBytes + subBytes / 2;
        }
        breakers.push_back(
            std::make_unique<BreakerEndpoint>(daemon->connect(), fault));
        return breakers.back()->clientEnd();
      },
      /*clientId=*/77, config);
  dashboard.subscribe(Topic::Totals);

  IngestClient ingest(daemon->connect(), /*clientId=*/9);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto artifacts = runApp(i, &ingest);
    EXPECT_TRUE(ingest.completeRun(i, artifacts).accepted);
  }
  daemon->drain();

  // The poll loop detects the hangup, reconnects, re-subscribes, and the
  // fresh snapshot catches the mirror up on everything it missed.
  ASSERT_TRUE(dashboard.waitForRuns(3, 10000ms));
  EXPECT_EQ(dashboard.reconnects(), 1u);
  EXPECT_EQ(dashboard.mirror().totals.runsFolded, 3u);
  EXPECT_GE(dashboard.snapshotsReceived(Topic::Totals), 1u);
  ingest.bye();
  dashboard.close();
  daemon->shutdown();
}

}  // namespace
}  // namespace libspector::spectord
