// The spectord frame grammar and its incremental stream parser: typed
// message round-trips, arbitrary chunking (down to one byte at a time),
// garbage resynchronization, crc rejection and the oversized-length cap.
// The parser never throws on wire input; the typed decoders throw
// util::DecodeError on truncation (their bodies are crc-clean by then).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "spectord/protocol.hpp"
#include "util/bytes.hpp"

namespace libspector::spectord {
namespace {

std::vector<std::uint8_t> bytesOf(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

/// Feed `stream` to a parser in `chunk`-sized pieces and drain every frame.
std::vector<Frame> parseChunked(const std::vector<std::uint8_t>& stream,
                                std::size_t chunk, FrameParser& parser) {
  std::vector<Frame> frames;
  for (std::size_t offset = 0; offset < stream.size(); offset += chunk) {
    const std::size_t n = std::min(chunk, stream.size() - offset);
    parser.feed(std::span<const std::uint8_t>(stream.data() + offset, n));
    while (auto frame = parser.next()) frames.push_back(std::move(*frame));
  }
  return frames;
}

TEST(SpectordProtocolTest, HelloRoundTrip) {
  HelloMsg msg;
  msg.clientId = 0xfeedbeefcafeULL;
  msg.kind = ClientKind::Dashboard;
  msg.resumeSession = 42;
  const HelloMsg back = HelloMsg::decode(msg.encode());
  EXPECT_EQ(back.clientId, msg.clientId);
  EXPECT_EQ(back.kind, msg.kind);
  EXPECT_EQ(back.resumeSession, msg.resumeSession);
}

TEST(SpectordProtocolTest, HelloAckRoundTrip) {
  HelloAckMsg msg;
  msg.session = 7;
  msg.ackedFrames = 123456;
  msg.ackedRuns = 17;
  msg.resumed = true;
  const HelloAckMsg back = HelloAckMsg::decode(msg.encode());
  EXPECT_EQ(back.session, 7u);
  EXPECT_EQ(back.ackedFrames, 123456u);
  EXPECT_EQ(back.ackedRuns, 17u);
  EXPECT_TRUE(back.resumed);
}

TEST(SpectordProtocolTest, RunAckRoundTrip) {
  RunAckMsg msg;
  msg.jobIndex = 99;
  msg.accepted = false;
  msg.reason = "apk owned by collector 2";
  const RunAckMsg back = RunAckMsg::decode(msg.encode());
  EXPECT_EQ(back.jobIndex, 99u);
  EXPECT_FALSE(back.accepted);
  EXPECT_EQ(back.reason, msg.reason);
}

// A snapshot's payload is per-topic: Totals carries the rolling view,
// Loss the per-apk accounts, Progress the run/report counters.
TEST(SpectordProtocolTest, TotalsSnapshotRoundTrip) {
  SnapshotMsg msg;
  msg.topic = Topic::Totals;
  msg.totals.runsFolded = 3;
  msg.totals.flowCount = 40;
  msg.totals.attributedBytes = 4096;
  msg.totals.unattributedBytes = 12;
  msg.totals.bytesByLibrary["okhttp"] = 2048;
  msg.totals.bytesByLibCategory["Advertisement"] = 1024;
  msg.totals.bytesByApp["aa11"] = 4096;

  const SnapshotMsg back = SnapshotMsg::decode(msg.encode());
  EXPECT_EQ(back.topic, Topic::Totals);
  EXPECT_EQ(back.totals.runsFolded, 3u);
  EXPECT_EQ(back.totals.flowCount, 40u);
  EXPECT_EQ(back.totals.attributedBytes, 4096u);
  EXPECT_EQ(back.totals.unattributedBytes, 12u);
  EXPECT_EQ(back.totals.bytesByLibrary.at("okhttp"), 2048u);
  EXPECT_EQ(back.totals.bytesByLibCategory.at("Advertisement"), 1024u);
  EXPECT_EQ(back.totals.bytesByApp.at("aa11"), 4096u);
}

TEST(SpectordProtocolTest, LossSnapshotRoundTripCarriesAccounts) {
  SnapshotMsg msg;
  msg.topic = Topic::Loss;
  core::ApkLossAccount account;
  account.framesDelivered = 10;
  account.uniqueDelivered = 9;
  account.duplicated = 1;
  account.lost = 2;
  msg.accounts.emplace_back("aa11", account);

  const SnapshotMsg back = SnapshotMsg::decode(msg.encode());
  EXPECT_EQ(back.topic, Topic::Loss);
  ASSERT_EQ(back.accounts.size(), 1u);
  EXPECT_EQ(back.accounts[0].first, "aa11");
  EXPECT_EQ(back.accounts[0].second, account);
}

TEST(SpectordProtocolTest, ProgressSnapshotRoundTrip) {
  SnapshotMsg msg;
  msg.topic = Topic::Progress;
  msg.runsFolded = 3;
  msg.expectedRuns = 25;
  msg.reportsDelivered = 9;
  msg.reportsLost = 2;

  const SnapshotMsg back = SnapshotMsg::decode(msg.encode());
  EXPECT_EQ(back.topic, Topic::Progress);
  EXPECT_EQ(back.runsFolded, 3u);
  EXPECT_EQ(back.expectedRuns, 25u);
  EXPECT_EQ(back.reportsDelivered, 9u);
  EXPECT_EQ(back.reportsLost, 2u);
}

TEST(SpectordProtocolTest, DeltaRoundTrip) {
  DeltaMsg msg;
  msg.topic = Topic::Totals;
  msg.jobIndex = 5;
  msg.apkSha256 = "ff00";
  msg.replayed = true;
  msg.flowCount = 7;
  msg.attributedBytes = 777;
  msg.unattributedBytes = 3;
  msg.bytesByLibrary.emplace_back("unity", 500);
  msg.bytesByLibCategory.emplace_back("Game Engine", 500);
  const DeltaMsg back = DeltaMsg::decode(msg.encode());
  EXPECT_EQ(back.topic, Topic::Totals);
  EXPECT_EQ(back.jobIndex, 5u);
  EXPECT_EQ(back.apkSha256, "ff00");
  EXPECT_TRUE(back.replayed);
  EXPECT_EQ(back.bytesByLibrary, msg.bytesByLibrary);
  EXPECT_EQ(back.bytesByLibCategory, msg.bytesByLibCategory);
}

TEST(SpectordProtocolTest, AdminAndErrorAndByeRoundTrip) {
  AdminMsg admin;
  admin.op = AdminOp::EvictApk;
  admin.arg = "deadbeef";
  const AdminMsg adminBack = AdminMsg::decode(admin.encode());
  EXPECT_EQ(adminBack.op, AdminOp::EvictApk);
  EXPECT_EQ(adminBack.arg, "deadbeef");

  AdminAckMsg ack;
  ack.op = AdminOp::Status;
  ack.ok = true;
  ack.info = "{\"runs\":3}";
  const AdminAckMsg ackBack = AdminAckMsg::decode(ack.encode());
  EXPECT_TRUE(ackBack.ok);
  EXPECT_EQ(ackBack.info, ack.info);

  ErrorMsg error;
  error.code = 2;
  error.message = "wrong surface";
  const ErrorMsg errorBack = ErrorMsg::decode(error.encode());
  EXPECT_EQ(errorBack.code, 2u);
  EXPECT_EQ(errorBack.message, "wrong surface");

  const ByeMsg byeBack = ByeMsg::decode(ByeMsg{"draining"}.encode());
  EXPECT_EQ(byeBack.reason, "draining");
}

TEST(SpectordProtocolTest, TruncatedTypedBodyThrowsDecodeError) {
  auto body = HelloAckMsg{}.encode();
  body.pop_back();
  EXPECT_THROW(HelloAckMsg::decode(body), util::DecodeError);
  EXPECT_THROW(SnapshotMsg::decode(std::vector<std::uint8_t>{1, 2}),
               util::DecodeError);
}

TEST(SpectordProtocolTest, ParserHandlesAnyChunking) {
  std::vector<std::uint8_t> stream;
  const auto first = encodeFrame(FrameType::Report, bytesOf("datagram-one"));
  const auto second = encodeFrame(FrameType::Bye, ByeMsg{"bye"}.encode());
  stream.insert(stream.end(), first.begin(), first.end());
  stream.insert(stream.end(), second.begin(), second.end());

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, stream.size()}) {
    FrameParser parser;
    const auto frames = parseChunked(stream, chunk, parser);
    ASSERT_EQ(frames.size(), 2u) << "chunk=" << chunk;
    EXPECT_EQ(frames[0].type, FrameType::Report);
    EXPECT_EQ(frames[0].body, bytesOf("datagram-one"));
    EXPECT_EQ(frames[1].type, FrameType::Bye);
    EXPECT_EQ(parser.garbageBytes(), 0u);
    EXPECT_EQ(parser.rejectedFrames(), 0u);
    EXPECT_EQ(parser.buffered(), 0u);
  }
}

TEST(SpectordProtocolTest, GarbageBetweenFramesIsSkippedAndCounted) {
  const auto frame = encodeFrame(FrameType::Report, bytesOf("payload"));
  std::vector<std::uint8_t> stream = bytesOf("torn!!");
  stream.insert(stream.end(), frame.begin(), frame.end());
  stream.insert(stream.end(), {0x00, 0x01, 0x02});
  stream.insert(stream.end(), frame.begin(), frame.end());

  FrameParser parser;
  const auto frames = parseChunked(stream, 5, parser);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].body, bytesOf("payload"));
  EXPECT_EQ(frames[1].body, bytesOf("payload"));
  EXPECT_EQ(parser.garbageBytes(), 9u);
  EXPECT_EQ(parser.rejectedFrames(), 0u);
}

TEST(SpectordProtocolTest, CrcMismatchRejectsTheFrameAndResyncs) {
  auto corrupt = encodeFrame(FrameType::Report, bytesOf("zzzzzz"));
  corrupt.back() ^= 0x5a;  // flip a body bit: crc must catch it
  const auto good = encodeFrame(FrameType::Bye, ByeMsg{"ok"}.encode());
  std::vector<std::uint8_t> stream = corrupt;
  stream.insert(stream.end(), good.begin(), good.end());

  FrameParser parser;
  const auto frames = parseChunked(stream, 4, parser);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::Bye);
  EXPECT_EQ(parser.rejectedFrames(), 1u);
  EXPECT_GT(parser.garbageBytes(), 0u);  // resync hunted past the bad frame
}

TEST(SpectordProtocolTest, OversizedLengthFieldIsRejectedNotAllocated) {
  auto frame = encodeFrame(FrameType::Report, bytesOf("tiny"));
  // Stamp a ludicrous length (> kMaxBody) into the header's length field
  // (bytes 10..13); the parser must reject by the cap without waiting for
  // gigabytes that will never come.
  frame[10] = 0xff;
  frame[11] = 0xff;
  frame[12] = 0xff;
  frame[13] = 0x7f;
  const auto good = encodeFrame(FrameType::Bye, ByeMsg{"after"}.encode());
  std::vector<std::uint8_t> stream = frame;
  stream.insert(stream.end(), good.begin(), good.end());

  FrameParser parser;
  const auto frames = parseChunked(stream, stream.size(), parser);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::Bye);
  EXPECT_EQ(parser.rejectedFrames(), 1u);
}

TEST(SpectordProtocolTest, PartialFrameStaysBufferedUntilCompleted) {
  const auto frame = encodeFrame(FrameType::Report, bytesOf("half"));
  FrameParser parser;
  parser.feed(std::span<const std::uint8_t>(frame.data(), frame.size() - 2));
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_GT(parser.buffered(), 0u);
  parser.feed(std::span<const std::uint8_t>(frame.data() + frame.size() - 2, 2));
  const auto parsed = parser.next();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body, bytesOf("half"));
  EXPECT_EQ(parser.buffered(), 0u);
}

}  // namespace
}  // namespace libspector::spectord
