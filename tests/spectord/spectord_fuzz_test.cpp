// Hostile-wire fuzzing of the spectord frame parser and typed decoders:
// deterministic LCG-driven random bytes, mutated real frames, and
// pathological header fields must never crash, never allocate unboundedly
// and never break the parser's counter accounting. The parser contract is
// "wire input is data, not an error": next() either yields a crc-clean
// frame or quietly resynchronizes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "spectord/protocol.hpp"
#include "util/bytes.hpp"

namespace libspector::spectord {
namespace {

/// Deterministic 64-bit LCG (same constants as the repo's other fuzz
/// harnesses): reproducible hostility, no std::random_device.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 16;
  }
  std::uint8_t byte() { return static_cast<std::uint8_t>(next()); }
  std::size_t below(std::size_t n) {
    return static_cast<std::size_t>(next() % n);
  }

 private:
  std::uint64_t state_;
};

/// Try every typed decoder against `body`; decoders must either succeed or
/// throw util::DecodeError — anything else (UB, crash, bad_alloc from a
/// hostile count field) fails the test by killing the process.
void probeTypedDecoders(const std::vector<std::uint8_t>& body) {
  const auto probe = [&](auto decode) {
    try {
      (void)decode(body);
    } catch (const util::DecodeError&) {
      // expected for hostile bodies
    }
  };
  probe([](auto& b) { return HelloMsg::decode(b); });
  probe([](auto& b) { return HelloAckMsg::decode(b); });
  probe([](auto& b) { return ReportAckMsg::decode(b); });
  probe([](auto& b) { return RunAckMsg::decode(b); });
  probe([](auto& b) { return SubscribeMsg::decode(b); });
  probe([](auto& b) { return SnapshotMsg::decode(b); });
  probe([](auto& b) { return DeltaMsg::decode(b); });
  probe([](auto& b) { return AdminMsg::decode(b); });
  probe([](auto& b) { return AdminAckMsg::decode(b); });
  probe([](auto& b) { return ErrorMsg::decode(b); });
  probe([](auto& b) { return ByeMsg::decode(b); });
}

TEST(SpectordFuzzTest, RandomByteStormNeverCrashesTheParser) {
  Lcg rng(0x5bec7041);
  FrameParser parser;
  std::uint64_t totalFed = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> chunk(rng.below(512) + 1);
    for (auto& b : chunk) b = rng.byte();
    totalFed += chunk.size();
    parser.feed(chunk);
    while (auto frame = parser.next()) probeTypedDecoders(frame->body);
  }
  // Conservation: every byte fed is garbage, buffered, or part of a frame
  // (accepted or rejected) — nothing vanishes unaccounted. Random bytes
  // essentially never form a valid crc32 frame, so garbage dominates.
  EXPECT_LE(parser.garbageBytes(), totalFed);
  EXPECT_GT(parser.garbageBytes(), totalFed / 2);
  EXPECT_LT(parser.buffered(), FrameParser::kMaxBody + 64);
}

TEST(SpectordFuzzTest, MutatedRealFramesAreRejectedOrParsedNeverFatal) {
  Lcg rng(0xfeedface);
  // A pool of genuine frames to mutate.
  std::vector<std::vector<std::uint8_t>> pool;
  {
    HelloMsg hello;
    hello.clientId = 1;
    pool.push_back(encodeFrame(FrameType::Hello, hello.encode()));
    SnapshotMsg snapshot;
    snapshot.totals.bytesByLibrary["lib"] = 7;
    snapshot.accounts.emplace_back("sha", core::ApkLossAccount{});
    pool.push_back(encodeFrame(FrameType::Snapshot, snapshot.encode()));
    DeltaMsg delta;
    delta.apkSha256 = "abc";
    delta.bytesByLibrary.emplace_back("x", 1);
    pool.push_back(encodeFrame(FrameType::Delta, delta.encode()));
    pool.push_back(encodeFrame(FrameType::Bye, ByeMsg{"bye"}.encode()));
  }

  // Warm-up: every pristine frame parses.
  FrameParser parser;
  for (const auto& frame : pool) parser.feed(frame);
  std::uint64_t accepted = 0;
  while (auto parsed = parser.next()) {
    ++accepted;
    probeTypedDecoders(parsed->body);
  }
  EXPECT_EQ(accepted, pool.size());

  // Storm: always-mutated copies. A flip in the length field can leave
  // the parser legitimately waiting for a body that never completes (TCP
  // framing would too; the crc rejects it when the bytes arrive), so the
  // storm asserts survival and bounded memory, not acceptance counts.
  for (int round = 0; round < 4000; ++round) {
    auto frame = pool[rng.below(pool.size())];
    const std::size_t flips = rng.below(3) + 1;
    for (std::size_t i = 0; i < flips; ++i)
      frame[rng.below(frame.size())] ^= static_cast<std::uint8_t>(
          1u << rng.below(8));
    parser.feed(frame);
    while (auto parsed = parser.next()) probeTypedDecoders(parsed->body);
    ASSERT_LE(parser.buffered(), FrameParser::kMaxBody + 64);
  }

  // Flush: pad past any hostile pending length (<= kMaxBody by the cap).
  // The swallowed stream must now resolve into rejects and garbage —
  // never a crash, never an accepted frame forged by bit flips.
  parser.feed(std::vector<std::uint8_t>(FrameParser::kMaxBody + 64, 0));
  while (auto parsed = parser.next()) probeTypedDecoders(parsed->body);
  EXPECT_GT(parser.rejectedFrames() + parser.garbageBytes(), 0u);
  EXPECT_LT(parser.buffered(), FrameParser::kHeaderSize);
}

TEST(SpectordFuzzTest, HostileHeaderFieldsNeverBalloonMemory) {
  Lcg rng(0x1234abcd);
  FrameParser parser;
  for (int round = 0; round < 500; ++round) {
    // A valid frame whose header fields are then scribbled over: version,
    // type, crc and length each take hostile values, including lengths
    // far past kMaxBody.
    auto frame = encodeFrame(FrameType::Report,
                             std::vector<std::uint8_t>(rng.below(64)));
    const std::size_t field = rng.below(10) + 4;  // within the header
    frame[field] = rng.byte();
    if (rng.below(3) == 0) {
      // Explicit oversized length.
      frame[10] = 0xff;
      frame[11] = 0xff;
      frame[12] = rng.byte();
      frame[13] = rng.byte() | 0x10;
    }
    parser.feed(frame);
    while (auto parsed = parser.next()) probeTypedDecoders(parsed->body);
    // The buffer never holds more than one partial frame's worth.
    ASSERT_LT(parser.buffered(), FrameParser::kMaxBody + 64);
  }
}

}  // namespace
}  // namespace libspector::spectord
