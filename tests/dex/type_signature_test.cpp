#include "dex/type_signature.hpp"

#include <gtest/gtest.h>

namespace libspector::dex {
namespace {

TEST(TypeSignatureTest, ParsesListing1OriginSignature) {
  const auto sig = TypeSignature::parse(
      "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/String;)"
      "Ljava/lang/Object;");
  ASSERT_TRUE(sig.has_value());
  EXPECT_EQ(sig->dottedClass(), "com.unity3d.ads.android.cache.b");
  EXPECT_EQ(sig->methodName(), "doInBackground");
  EXPECT_EQ(sig->packagePath(), "com.unity3d.ads.android.cache");
  EXPECT_EQ(sig->frameName(), "com.unity3d.ads.android.cache.b.doInBackground");
  ASSERT_EQ(sig->paramTypes().size(), 1u);
  EXPECT_EQ(sig->paramTypes()[0], "[Ljava/lang/String;");
  EXPECT_EQ(sig->returnType(), "Ljava/lang/Object;");
}

TEST(TypeSignatureTest, ParsesInnerClassesPerFootnote1) {
  // Smali convention: Lpackage/name/className$innerClassName;->...
  const auto sig =
      TypeSignature::parse("Lcom/android/okhttp/OkHttpClient$1;->connectAndSetOwner()V");
  ASSERT_TRUE(sig.has_value());
  EXPECT_EQ(sig->dottedClass(), "com.android.okhttp.OkHttpClient$1");
  EXPECT_EQ(sig->frameName(), "com.android.okhttp.OkHttpClient$1.connectAndSetOwner");
  EXPECT_EQ(sig->packagePath(), "com.android.okhttp");
}

TEST(TypeSignatureTest, ParsesPrimitiveParamsAndReturn) {
  const auto sig = TypeSignature::parse("Lcom/foo/Bar;->baz(IJZ)D");
  ASSERT_TRUE(sig.has_value());
  ASSERT_EQ(sig->paramTypes().size(), 3u);
  EXPECT_EQ(sig->paramTypes()[0], "I");
  EXPECT_EQ(sig->paramTypes()[1], "J");
  EXPECT_EQ(sig->paramTypes()[2], "Z");
  EXPECT_EQ(sig->returnType(), "D");
}

TEST(TypeSignatureTest, ParsesNestedArrays) {
  const auto sig = TypeSignature::parse("La/B;->m([[I[Lc/D;)[J");
  ASSERT_TRUE(sig.has_value());
  ASSERT_EQ(sig->paramTypes().size(), 2u);
  EXPECT_EQ(sig->paramTypes()[0], "[[I");
  EXPECT_EQ(sig->paramTypes()[1], "[Lc/D;");
  EXPECT_EQ(sig->returnType(), "[J");
}

TEST(TypeSignatureTest, RoundTripsToSmali) {
  const std::string smali =
      "Lcom/unity3d/ads/android/cache/b;->a(Ljava/lang/String;I)V";
  const auto sig = TypeSignature::parse(smali);
  ASSERT_TRUE(sig.has_value());
  EXPECT_EQ(sig->smali(), smali);
}

TEST(TypeSignatureTest, DistinguishesOverloads) {
  const auto a = TypeSignature::parse("Lcom/foo/Bar;->m(I)V");
  const auto b = TypeSignature::parse("Lcom/foo/Bar;->m(J)V");
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(a->frameName(), b->frameName());  // same frame, distinct signatures
}

TEST(TypeSignatureTest, RejectsMalformedInputs) {
  EXPECT_FALSE(TypeSignature::parse(""));
  EXPECT_FALSE(TypeSignature::parse("com.foo.Bar.baz"));          // frame name
  EXPECT_FALSE(TypeSignature::parse("Lcom/foo/Bar;baz(I)V"));     // no arrow
  EXPECT_FALSE(TypeSignature::parse("Lcom/foo/Bar;->(I)V"));      // no name
  EXPECT_FALSE(TypeSignature::parse("Lcom/foo/Bar;->m(I)"));      // no return
  EXPECT_FALSE(TypeSignature::parse("Lcom/foo/Bar;->m(Q)V"));     // bad type
  EXPECT_FALSE(TypeSignature::parse("Lcom/foo/Bar;->m(Lfoo)V"));  // unterminated
  EXPECT_FALSE(TypeSignature::parse("L;->m()V"));                 // empty class
  EXPECT_FALSE(TypeSignature::parse("Lcom/foo/Bar;->m()VV"));     // trailing junk
}

TEST(SignatureViewTest, AcceptsAndRejectsExactlyWhatParseDoes) {
  // parseSignatureView is the attribution hot path's zero-allocation twin
  // of TypeSignature::parse: the two must agree on every input, and on
  // accepted inputs the view must name the same class and method.
  const std::string_view inputs[] = {
      "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/"
      "String;)Ljava/lang/Object;",
      "Lcom/foo/Bar$Inner;->m(I)V",
      "Lcom/foo/Bar;->m(J)V",
      "Landroid/os/AsyncTask$2;->call()Ljava/lang/Object;",
      "",
      "com.foo.Bar.baz",             // frame name, not smali
      "Lcom/foo/Bar;baz(I)V",        // no arrow
      "Lcom/foo/Bar;->(I)V",         // no method name
      "Lcom/foo/Bar;->m(I)",         // no return type
      "Lcom/foo/Bar;->m(Q)V",        // bad type descriptor
      "Lcom/foo/Bar;->m(Lfoo)V",     // unterminated class descriptor
      "L;->m()V",                    // empty class
      "Lcom/foo/Bar;->m()VV",        // trailing junk
      "java.net.Socket.connect",
  };
  for (const std::string_view smali : inputs) {
    const auto full = TypeSignature::parse(smali);
    const auto view = parseSignatureView(smali);
    EXPECT_EQ(full.has_value(), view.has_value()) << smali;
    if (full && view) {
      std::string dotted;
      for (const char ch : view->slashedClass)
        dotted.push_back(ch == '/' ? '.' : ch);
      EXPECT_EQ(dotted, full->dottedClass()) << smali;
      EXPECT_EQ(view->methodName, full->methodName()) << smali;
    }
  }
}

TEST(SignatureViewTest, ViewsPointIntoTheInput) {
  const std::string smali = "Lcom/foo/Bar;->m(I)V";
  const auto view = parseSignatureView(smali);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->slashedClass, "com/foo/Bar");
  EXPECT_EQ(view->methodName, "m");
  // Zero-copy: both views alias the input buffer.
  EXPECT_GE(view->slashedClass.data(), smali.data());
  EXPECT_LT(view->slashedClass.data(), smali.data() + smali.size());
  EXPECT_GE(view->methodName.data(), smali.data());
  EXPECT_LT(view->methodName.data(), smali.data() + smali.size());
}

TEST(SplitTypeDescriptorsTest, EmptyBody) {
  const auto types = splitTypeDescriptors("");
  ASSERT_TRUE(types.has_value());
  EXPECT_TRUE(types->empty());
}

TEST(SplitTypeDescriptorsTest, MixedDescriptors) {
  const auto types = splitTypeDescriptors("ILjava/lang/String;[BZ");
  ASSERT_TRUE(types.has_value());
  ASSERT_EQ(types->size(), 4u);
  EXPECT_EQ((*types)[0], "I");
  EXPECT_EQ((*types)[1], "Ljava/lang/String;");
  EXPECT_EQ((*types)[2], "[B");
  EXPECT_EQ((*types)[3], "Z");
}

TEST(SplitTypeDescriptorsTest, RejectsMalformed) {
  EXPECT_FALSE(splitTypeDescriptors("X"));
  EXPECT_FALSE(splitTypeDescriptors("Lunterminated"));
  EXPECT_FALSE(splitTypeDescriptors("["));  // array of nothing
}

TEST(PackageOfFrameNameTest, StripsMethodAndClass) {
  EXPECT_EQ(packageOfFrameName("com.unity3d.ads.android.cache.b.doInBackground"),
            "com.unity3d.ads.android.cache");
  EXPECT_EQ(packageOfFrameName("java.net.Socket.connect"), "java.net");
}

TEST(PackageOfFrameNameTest, ShortNames) {
  EXPECT_EQ(packageOfFrameName("Socket.connect"), "");
  EXPECT_EQ(packageOfFrameName("connect"), "");
}

// Property sweep over the full okhttp wrapper chain of Listing 1: every
// frame must round-trip through a synthetic signature.
class FrameSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(FrameSweep, SyntheticSignatureRoundTrip) {
  const std::string frame = GetParam();
  // Build Lpkg/Class;->method()V from the frame name.
  const std::size_t lastDot = frame.rfind('.');
  ASSERT_NE(lastDot, std::string::npos);
  std::string cls = frame.substr(0, lastDot);
  std::string method = frame.substr(lastDot + 1);
  std::string slashes = cls;
  for (char& c : slashes)
    if (c == '.') c = '/';
  const std::string smali = "L" + slashes + ";->" + method + "()V";
  const auto sig = TypeSignature::parse(smali);
  ASSERT_TRUE(sig.has_value()) << smali;
  EXPECT_EQ(sig->frameName(), frame);
  EXPECT_EQ(sig->smali(), smali);
}

INSTANTIATE_TEST_SUITE_P(
    Listing1, FrameSweep,
    ::testing::Values(
        "java.net.Socket.connect",
        "com.android.okhttp.internal.Platform.connectSocket",
        "com.android.okhttp.Connection.connectSocket",
        "com.android.okhttp.Connection.connect",
        "com.android.okhttp.Connection.connectAndSetOwner",
        "com.android.okhttp.OkHttpClient$1.connectAndSetOwner",
        "com.android.okhttp.internal.http.HttpEngine.connect",
        "com.android.okhttp.internal.http.HttpEngine.sendRequest",
        "com.android.okhttp.internal.huc.HttpURLConnectionImpl.execute",
        "com.android.okhttp.internal.huc.HttpURLConnectionImpl.connect",
        "com.unity3d.ads.android.cache.b.a",
        "com.unity3d.ads.android.cache.b.doInBackground",
        "android.os.AsyncTask$2.call",
        "java.util.concurrent.FutureTask.run"));

}  // namespace
}  // namespace libspector::dex
