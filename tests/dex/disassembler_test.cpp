#include "dex/disassembler.hpp"

#include <gtest/gtest.h>

namespace libspector::dex {
namespace {

ApkFile apkWithOverloads() {
  ApkFile apk;
  apk.packageName = "com.example";
  DexFile dex;
  ClassDef bar;
  bar.dottedName = "com.example.Bar";
  bar.methods = {{"Lcom/example/Bar;->m(I)V"},
                 {"Lcom/example/Bar;->m(J)V"},
                 {"Lcom/example/Bar;->other()V"},
                 {"not a signature"}};
  dex.classes.push_back(bar);
  ClassDef second;
  second.dottedName = "com.example.net.Client";
  second.methods = {{"Lcom/example/net/Client;->connect()Z"}};
  dex.classes.push_back(second);
  apk.dexFiles.push_back(dex);
  return apk;
}

TEST(DisassemblerTest, AllMethodSignaturesInDexOrder) {
  const auto signatures = allMethodSignatures(apkWithOverloads());
  ASSERT_EQ(signatures.size(), 5u);
  EXPECT_EQ(signatures[0], "Lcom/example/Bar;->m(I)V");
  EXPECT_EQ(signatures[4], "Lcom/example/net/Client;->connect()Z");
}

TEST(DisassemblerTest, TranslationTableResolvesFrames) {
  const FrameTranslationTable table(apkWithOverloads());
  const auto& overloads = table.lookup("com.example.Bar.m");
  ASSERT_EQ(overloads.size(), 2u);
  EXPECT_EQ(overloads[0], "Lcom/example/Bar;->m(I)V");
  EXPECT_EQ(overloads[1], "Lcom/example/Bar;->m(J)V");
}

TEST(DisassemblerTest, TranslationTableSingleOverload) {
  const FrameTranslationTable table(apkWithOverloads());
  const auto& found = table.lookup("com.example.net.Client.connect");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], "Lcom/example/net/Client;->connect()Z");
}

TEST(DisassemblerTest, UnknownFrameIsEmpty) {
  const FrameTranslationTable table(apkWithOverloads());
  EXPECT_TRUE(table.lookup("java.net.Socket.connect").empty());
}

TEST(DisassemblerTest, MalformedEntriesAreTolerated) {
  // One of the five methods is unparseable; the table holds the other four
  // under three frame names.
  const FrameTranslationTable table(apkWithOverloads());
  EXPECT_EQ(table.size(), 3u);
}

TEST(DisassemblerTest, EmptyApk) {
  const ApkFile apk;
  EXPECT_TRUE(allMethodSignatures(apk).empty());
  const FrameTranslationTable table(apk);
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace libspector::dex
