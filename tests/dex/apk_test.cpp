#include "dex/apk.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/sha256.hpp"

namespace libspector::dex {
namespace {

ApkFile sampleApk() {
  ApkFile apk;
  apk.packageName = "com.example.game";
  apk.appCategory = "GAME_ACTION";
  apk.versionCode = 42;
  apk.dexTimestamp = 1555555555;
  apk.vtScanDate = 1560000000;
  apk.abis = {"x86", "armeabi-v7a"};
  DexFile dex;
  ClassDef cls;
  cls.dottedName = "com.example.game.Main";
  cls.methods = {{"Lcom/example/game/Main;->onCreate(Landroid/os/Bundle;)V"},
                 {"Lcom/example/game/Main;->onClick(Landroid/view/View;)V"}};
  dex.classes.push_back(cls);
  apk.dexFiles.push_back(dex);
  return apk;
}

TEST(ApkTest, SerializeDeserializeRoundTrip) {
  const ApkFile apk = sampleApk();
  const auto bytes = apk.serialize();
  const ApkFile decoded = ApkFile::deserialize(bytes);
  EXPECT_EQ(decoded, apk);
}

TEST(ApkTest, Sha256IsStable) {
  const ApkFile apk = sampleApk();
  EXPECT_EQ(util::toHex(apk.sha256()), util::toHex(sampleApk().sha256()));
}

TEST(ApkTest, Sha256ChangesWithContent) {
  ApkFile a = sampleApk();
  ApkFile b = sampleApk();
  b.versionCode = 43;
  EXPECT_NE(util::toHex(a.sha256()), util::toHex(b.sha256()));
  ApkFile c = sampleApk();
  c.dexFiles[0].classes[0].methods.push_back(
      {"Lcom/example/game/Main;->extra()V"});
  EXPECT_NE(util::toHex(a.sha256()), util::toHex(c.sha256()));
}

TEST(ApkTest, MethodCounting) {
  const ApkFile apk = sampleApk();
  EXPECT_EQ(apk.totalMethodCount(), 2u);
  EXPECT_EQ(apk.dexFiles[0].methodCount(), 2u);
  EXPECT_EQ(ApkFile{}.totalMethodCount(), 0u);
}

TEST(ApkTest, X86Compatibility) {
  ApkFile apk = sampleApk();
  EXPECT_TRUE(apk.isX86Compatible());
  apk.abis = {"armeabi-v7a", "arm64-v8a"};
  EXPECT_FALSE(apk.isX86Compatible());
  apk.abis = {"x86_64"};
  EXPECT_TRUE(apk.isX86Compatible());
  apk.abis.clear();  // pure Java
  EXPECT_TRUE(apk.isX86Compatible());
}

TEST(ApkTest, DeserializeRejectsBadMagic) {
  auto bytes = sampleApk().serialize();
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)ApkFile::deserialize(bytes), util::DecodeError);
}

TEST(ApkTest, DeserializeRejectsTruncation) {
  const auto bytes = sampleApk().serialize();
  const std::span<const std::uint8_t> truncated(bytes.data(), bytes.size() - 5);
  EXPECT_THROW((void)ApkFile::deserialize(truncated), util::DecodeError);
}

TEST(ApkTest, DeserializeRejectsTrailingBytes) {
  auto bytes = sampleApk().serialize();
  bytes.push_back(0);
  EXPECT_THROW((void)ApkFile::deserialize(bytes), util::DecodeError);
}

TEST(ApkTest, DefaultDexTimestampConstant) {
  // 1980-01-01T00:00:00Z
  EXPECT_EQ(kDefaultDexTimestamp, 315532800u);
}

TEST(ApkTest, EmptyApkRoundTrips) {
  const ApkFile apk;
  EXPECT_EQ(ApkFile::deserialize(apk.serialize()), apk);
}

}  // namespace
}  // namespace libspector::dex
