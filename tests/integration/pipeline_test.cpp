// Whole-system property tests: generate a small store, run the full
// measurement pipeline, and check the invariants that must hold for any
// seed — the paper's qualitative findings in miniature.
#include <gtest/gtest.h>

#include <mutex>

#include "core/analysis.hpp"
#include "core/attribution.hpp"
#include "orch/collector.hpp"
#include "orch/dispatcher.hpp"
#include "radar/corpus.hpp"
#include "store/generator.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector {
namespace {

struct StudyOutcome {
  core::StudyAggregator study;
  std::size_t totalReports = 0;
  std::size_t totalFlows = 0;
};

StudyOutcome runStudy(std::size_t apps, std::uint64_t seed) {
  store::StoreConfig storeConfig;
  storeConfig.appCount = apps;
  storeConfig.seed = seed;
  storeConfig.methodScale = 0.05;
  const store::AppStoreGenerator generator(storeConfig);

  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(),
      [&generator](const std::string& domain) { return generator.domainTruth(domain); });
  core::TrafficAttributor attributor(corpus, categorizer);

  StudyOutcome outcome;
  orch::CollectionServer collector;
  orch::DispatcherConfig config;
  config.workers = 4;
  orch::Dispatcher dispatcher(generator.farm(), &collector, config);
  std::size_t next = 0;
  dispatcher.run(
      [&]() -> std::optional<orch::Dispatcher::Job> {
        if (next >= generator.appCount()) return std::nullopt;
        auto job = generator.makeJob(next++);
        return orch::Dispatcher::Job{std::move(job.apk), std::move(job.program)};
      },
      [&](core::RunArtifacts&& artifacts) {
        const auto flows = attributor.attribute(artifacts);
        outcome.totalReports += artifacts.reports.size();
        outcome.totalFlows += flows.size();
        outcome.study.addApp(artifacts, flows);
      });
  return outcome;
}

class PipelineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeedSweep, InvariantsHoldForAnySeed) {
  const auto outcome = runStudy(60, GetParam());
  const auto totals = outcome.study.totals();

  // Every reported socket becomes exactly one attributed flow.
  EXPECT_EQ(outcome.totalFlows, outcome.totalReports);
  EXPECT_EQ(totals.flowCount, outcome.totalFlows);
  EXPECT_EQ(totals.appCount, 60u);

  // Traffic exists and is receive-dominated (paper Fig. 4: everything
  // receives more than it sends).
  EXPECT_GT(totals.totalBytes, 0u);
  EXPECT_GT(totals.recvBytes, totals.sentBytes);

  // Study-wide entities are consistent.
  EXPECT_GT(totals.originLibraryCount, 0u);
  EXPECT_LE(totals.twoLevelLibraryCount, totals.originLibraryCount);
  EXPECT_GT(totals.domainCount, 0u);

  // Transfer shares sum to the total.
  std::uint64_t sumShares = 0;
  for (const auto& [category, bytes] : outcome.study.transferByLibCategory())
    sumShares += bytes;
  EXPECT_EQ(sumShares, totals.totalBytes);

  // Heatmap mass equals total mass.
  std::uint64_t heatmapMass = 0;
  for (const auto& [libCat, row] : outcome.study.libraryDomainHeatmap())
    for (const auto& [domCat, bytes] : row) heatmapMass += bytes;
  EXPECT_EQ(heatmapMass, totals.totalBytes);

  // Coverage is a ratio in (0, 1) on average.
  const auto coverage = outcome.study.coverageStats();
  EXPECT_GT(coverage.mean, 0.0);
  EXPECT_LT(coverage.mean, 0.7);

  // UDP (DNS) traffic is a sliver of the capture, as in §III-E.
  const auto& udp = outcome.study.udpStats();
  EXPECT_LT(static_cast<double>(udp.udpBytes),
            0.05 * static_cast<double>(udp.totalBytes));
  EXPECT_GT(udp.dnsBytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep,
                         ::testing::Values(1ULL, 77ULL, 20200629ULL));

TEST(PipelineTest, PaperShapesEmergeAtModerateScale) {
  const auto outcome = runStudy(250, 4242);
  const auto totals = outcome.study.totals();
  const auto byCategory = outcome.study.transferByLibCategory();
  const auto share = [&](const std::string& category) {
    const auto it = byCategory.find(category);
    return it == byCategory.end()
               ? 0.0
               : static_cast<double>(it->second) /
                     static_cast<double>(totals.totalBytes);
  };

  // i) advertisement libraries cause roughly a quarter of the traffic.
  EXPECT_GT(share("Advertisement"), 0.15);
  EXPECT_LT(share("Advertisement"), 0.45);
  // Development aid and first-party (Unknown) are the other heavyweights.
  EXPECT_GT(share("Development Aid"), 0.10);
  EXPECT_GT(share("Unknown"), 0.10);

  // ii) AnT prevalence: most apps have some AnT traffic, a large minority
  // have nothing else.
  const auto ant = outcome.study.antStats();
  const double someAnt = static_cast<double>(ant.someAntApps) /
                         static_cast<double>(ant.appsWithTraffic);
  const double antOnly = static_cast<double>(ant.antOnlyApps) /
                         static_cast<double>(ant.appsWithTraffic);
  EXPECT_GT(someAnt, 0.75);
  EXPECT_GT(antOnly, 0.20);
  EXPECT_LT(antOnly, 0.50);

  // AnT libraries are more download-aggressive than common libraries.
  EXPECT_GT(ant.antMeanFlowRatio, ant.clMeanFlowRatio);

  // iii) no 1-to-1 category correlation: advertisement libraries reach
  // at least four distinct destination categories.
  const auto& heatmap = outcome.study.libraryDomainHeatmap();
  ASSERT_TRUE(heatmap.contains("Advertisement"));
  EXPECT_GE(heatmap.at("Advertisement").size(), 4u);
  // ... including CDN traffic that a DNS-only classifier would mislabel.
  EXPECT_GT(outcome.study.knownLibraryCdnShare(), 0.05);

  // iv) method coverage lands near the paper's ~10%.
  EXPECT_NEAR(outcome.study.coverageStats().mean, 0.10, 0.05);
}

TEST(PipelineTest, StudyIsReproducible) {
  const auto a = runStudy(40, 9);
  const auto b = runStudy(40, 9);
  EXPECT_EQ(a.study.totals().totalBytes, b.study.totals().totalBytes);
  EXPECT_EQ(a.study.totals().flowCount, b.study.totals().flowCount);
  EXPECT_EQ(a.study.transferByLibCategory(), b.study.transferByLibCategory());
}

}  // namespace
}  // namespace libspector
