// Decoder robustness: every binary decoder in the system must reject
// corrupted input with util::DecodeError (never crash, hang, or silently
// mis-parse into an over-allocating state). The collection server receives
// UDP datagrams from the network, and the result database reads files from
// disk — both are trust boundaries.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "core/artifacts.hpp"
#include "core/report.hpp"
#include "dex/apk.hpp"
#include "ingest/chaos.hpp"
#include "ingest/router.hpp"
#include "net/capture.hpp"
#include "orch/recovery.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace libspector {
namespace {

std::vector<std::uint8_t> sampleApkBytes() {
  dex::ApkFile apk;
  apk.packageName = "com.fuzz.app";
  apk.appCategory = "TOOLS";
  dex::DexFile dexFile;
  dex::ClassDef cls;
  cls.dottedName = "com.fuzz.app.Main";
  cls.methods = {{"Lcom/fuzz/app/Main;->m()V"}};
  dexFile.classes.push_back(cls);
  apk.dexFiles.push_back(dexFile);
  return apk.serialize();
}

std::vector<std::uint8_t> sampleCaptureBytes() {
  net::CaptureFile capture;
  const net::SocketPair pair{{net::Ipv4Addr(10, 0, 2, 15), 40000},
                             {net::Ipv4Addr(198, 18, 0, 1), 443}};
  capture.append(net::makeTcpPacket(1, pair, 140, 100));
  capture.append(net::makeUdpPacket(2, pair, 70, 42, "x.com",
                                    net::Ipv4Addr(198, 18, 0, 1)));
  capture.appendHttp({3, pair, "x.com", "/p", "ua", true});
  return capture.serialize();
}

std::vector<std::uint8_t> sampleReportBytes() {
  core::UdpReport report;
  report.apkSha256 = "fuzz";
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15), 40000},
                       {net::Ipv4Addr(198, 18, 0, 1), 443}};
  report.stackSignatures = {"java.net.Socket.connect", "Lcom/a/B;->c()V"};
  return report.encode();
}

std::vector<std::uint8_t> sampleArtifactBytes() {
  core::RunArtifacts artifacts;
  artifacts.apkSha256 = "fuzz";
  artifacts.capture = net::CaptureFile::deserialize(sampleCaptureBytes());
  artifacts.reports.push_back(core::UdpReport::decode(sampleReportBytes()));
  artifacts.methodTraceFile = {"Lcom/a/B;->c()V"};
  return artifacts.serialize();
}

/// Run a decoder over many random single/multi-byte mutations and random
/// truncations of a valid input. The decoder must either succeed (some
/// mutations are semantically harmless) or throw DecodeError.
template <typename Decode>
void fuzzDecoder(const std::vector<std::uint8_t>& valid, Decode decode,
                 std::uint64_t seed) {
  util::Rng rng(seed);
  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> mutated = valid;
    const int mutations = static_cast<int>(rng.uniform(1, 8));
    for (int m = 0; m < mutations; ++m) {
      if (mutated.empty()) break;
      const std::size_t pos = rng.uniform(0, mutated.size() - 1);
      mutated[pos] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    if (rng.chance(0.3) && !mutated.empty())
      mutated.resize(rng.uniform(0, mutated.size() - 1));
    try {
      decode(mutated);  // success is acceptable; crashes/UB are not
    } catch (const util::DecodeError&) {
      // expected rejection path
    }
  }
}

TEST(FuzzDecodersTest, ApkFileSurvivesMutation) {
  fuzzDecoder(sampleApkBytes(),
              [](const std::vector<std::uint8_t>& bytes) {
                (void)dex::ApkFile::deserialize(bytes);
              },
              101);
}

TEST(FuzzDecodersTest, CaptureFileSurvivesMutation) {
  fuzzDecoder(sampleCaptureBytes(),
              [](const std::vector<std::uint8_t>& bytes) {
                (void)net::CaptureFile::deserialize(bytes);
              },
              202);
}

TEST(FuzzDecodersTest, UdpReportSurvivesMutation) {
  fuzzDecoder(sampleReportBytes(),
              [](const std::vector<std::uint8_t>& bytes) {
                (void)core::UdpReport::decode(bytes);
              },
              303);
}

TEST(FuzzDecodersTest, RunArtifactsSurviveMutation) {
  fuzzDecoder(sampleArtifactBytes(),
              [](const std::vector<std::uint8_t>& bytes) {
                (void)core::RunArtifacts::deserialize(bytes);
              },
              404);
}

core::ReportFrame sampleFrame(std::uint64_t seq = 5) {
  return core::ReportFrame{3, seq,
                           core::UdpReport::decode(sampleReportBytes())};
}

TEST(FuzzDecodersTest, ReportFrameSurvivesMutation) {
  fuzzDecoder(sampleFrame().encode(),
              [](const std::vector<std::uint8_t>& bytes) {
                (void)core::ReportFrame::decode(bytes);
              },
              505);
}

TEST(FuzzDecodersTest, FrameChecksumMakesSilentMisParseImpossible) {
  // Unlike the other decoders, a frame that decodes at all must equal the
  // original: the crc32 covers every body byte, so a mutation either leaves
  // the frame byte-identical or gets rejected (a 2^-32 collision aside).
  const auto frame = sampleFrame();
  const auto valid = frame.encode();
  util::Rng rng(606);
  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> mutated = valid;
    const int mutations = static_cast<int>(rng.uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.uniform(0, mutated.size() - 1);
      mutated[pos] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    try {
      EXPECT_EQ(core::ReportFrame::decode(mutated), frame);
    } catch (const util::DecodeError&) {
      // the overwhelmingly common outcome for a real mutation
    }
  }
}

TEST(FuzzDecodersTest, FramePeekNeverCrashesAndAgreesWithDecode) {
  const auto valid = sampleFrame().encode();
  util::Rng rng(707);
  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> mutated = valid;
    const std::size_t pos = rng.uniform(0, mutated.size() - 1);
    mutated[pos] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    if (rng.chance(0.3)) mutated.resize(rng.uniform(0, mutated.size() - 1));
    try {
      const auto header = core::ReportFrame::peek(mutated);
      const auto frame = core::ReportFrame::decode(mutated);
      EXPECT_EQ(header.workerId, frame.workerId);
      EXPECT_EQ(header.sequence, frame.sequence);
      EXPECT_EQ(header.shaKey, util::fnv1a64(frame.report.apkSha256));
    } catch (const util::DecodeError&) {
    }
  }
}

TEST(FuzzDecodersTest, ShardedIngestSurvivesHostileDatagrams) {
  // The router faces the wire directly: mutated, truncated, duplicated and
  // reordered datagrams must never crash it — and must never mis-attribute
  // (a report landing under an apk key it does not carry).
  ingest::IngestConfig config;
  config.shards = 2;
  ingest::ShardedIngest ingest(config);
  util::Rng rng(808);

  std::vector<core::UdpReport> sent;
  std::vector<std::vector<std::uint8_t>> wire;
  for (std::uint64_t seq = 0; seq < 20; ++seq) {
    auto frame = sampleFrame(seq);
    frame.report.timestampMs = seq;
    sent.push_back(frame.report);
    wire.push_back(frame.encode());
  }
  // Hostile schedule: originals interleaved with mutations, duplicates and
  // pure garbage, in shuffled order.
  std::vector<std::vector<std::uint8_t>> schedule = wire;
  for (const auto& bytes : wire) {
    auto mutated = bytes;
    mutated[rng.uniform(0, mutated.size() - 1)] ^= 0x40;
    schedule.push_back(std::move(mutated));
    if (rng.chance(0.5)) schedule.push_back(bytes);  // duplicate
    std::vector<std::uint8_t> garbage(rng.uniform(0, 64));
    for (auto& byte : garbage)
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    schedule.push_back(std::move(garbage));
  }
  for (std::size_t i = schedule.size(); i > 1; --i)
    std::swap(schedule[i - 1], schedule[rng.uniform(0, i - 1)]);

  for (const auto& datagram : schedule) ingest.submitDatagram(datagram);
  ingest.drain();

  // Every surviving report is one of the originals, deduplicated, in send
  // order, under the right apk key.
  const auto reports = ingest.takeReports(sent[0].apkSha256);
  ASSERT_EQ(reports.size(), sent.size());
  EXPECT_EQ(reports, sent);
  const auto metrics = ingest.metrics();
  EXPECT_GT(metrics.datagramsMalformed, 0u);
  EXPECT_EQ(metrics.framesFolded + metrics.datagramsMalformed,
            metrics.datagramsReceived);
}

TEST(FuzzDecodersTest, ChaosChannelDamageNeverCorruptsContent) {
  ingest::IngestConfig config;
  config.shards = 3;
  ingest::ShardedIngest ingest(config);
  ingest::ChaosConfig chaosConfig;
  chaosConfig.lossProb = 0.1;
  chaosConfig.dupProb = 0.2;
  chaosConfig.reorderWindow = 6;
  chaosConfig.seed = 909;
  ingest::ChaosChannel chaos(ingest, chaosConfig);

  std::vector<core::UdpReport> sent;
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    auto frame = sampleFrame(seq);
    frame.report.timestampMs = seq;
    sent.push_back(frame.report);
    chaos.submitDatagram(frame.encode());
  }
  chaos.flush();
  ingest.drain();

  // Whatever got through is a subset of what was sent, deduplicated and in
  // send order — duplication and reordering leave no trace in content.
  const auto reports = ingest.takeReports(sent[0].apkSha256);
  EXPECT_EQ(reports.size(), 50 - chaos.dropped());
  std::size_t cursor = 0;
  for (const auto& report : reports) {
    while (cursor < sent.size() && !(sent[cursor] == report)) ++cursor;
    ASSERT_LT(cursor, sent.size()) << "report not among the sent originals";
    ++cursor;
  }
}

std::vector<std::uint8_t> sampleDictFrameBytes(std::uint64_t seq = 5) {
  // Two frames from one encoder: the second carries dictionary *references*
  // only, so the fuzzer exercises both def-carrying and def-free layouts.
  core::DictFrameEncoder encoder(3);
  auto bytes = encoder.encode(seq, core::UdpReport::decode(sampleReportBytes()));
  if (seq % 2 == 1)
    bytes = encoder.encode(seq + 1, core::UdpReport::decode(sampleReportBytes()));
  return bytes;
}

TEST(FuzzDecodersTest, DictReportFrameSurvivesMutation) {
  fuzzDecoder(sampleDictFrameBytes(4),
              [](const std::vector<std::uint8_t>& bytes) {
                (void)core::DictReportFrame::decode(bytes);
              },
              1212);
  fuzzDecoder(sampleDictFrameBytes(5),  // steady-state (defs elsewhere)
              [](const std::vector<std::uint8_t>& bytes) {
                (void)core::DictReportFrame::decode(bytes);
              },
              1313);
}

TEST(FuzzDecodersTest, ReportStreamDecoderSurvivesMutation) {
  // The stream decoder is stateful: keep one instance across all rounds so
  // mutations can also poison the dictionary it carries forward — the
  // crc32 must reject them before they reach that state.
  core::ReportStreamDecoder decoder;
  fuzzDecoder(sampleDictFrameBytes(4),
              [&decoder](const std::vector<std::uint8_t>& bytes) {
                (void)decoder.decode(bytes);
              },
              1414);
  fuzzDecoder(sampleFrame().encode(),
              [&decoder](const std::vector<std::uint8_t>& bytes) {
                (void)decoder.decode(bytes);
              },
              1515);
}

TEST(FuzzDecodersTest, DictFrameChecksumMakesSilentMisParseImpossible) {
  // Same guarantee as the v1 frame: a v3 datagram that decodes at all is
  // byte-identical to what was sent — ids, defs and metadata alike.
  const auto valid = sampleDictFrameBytes(4);
  const auto reference = core::DictReportFrame::decode(valid);
  util::Rng rng(1616);
  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> mutated = valid;
    const int mutations = static_cast<int>(rng.uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.uniform(0, mutated.size() - 1);
      mutated[pos] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    try {
      EXPECT_EQ(core::DictReportFrame::decode(mutated), reference);
    } catch (const util::DecodeError&) {
      // the overwhelmingly common outcome for a real mutation
    }
  }
}

TEST(FuzzDecodersTest, ShardedIngestSurvivesHostileDictDatagrams) {
  // The hostile-wire test again, with the v3 dictionary framing: parked
  // holes, healing defs and mutated dictionary opcodes must never crash
  // the router or mis-attribute a report.
  ingest::IngestConfig config;
  config.shards = 2;
  ingest::ShardedIngest ingest(config);
  util::Rng rng(1717);

  core::DictFrameEncoder encoder(3);
  std::vector<core::UdpReport> sent;
  std::vector<std::vector<std::uint8_t>> wire;
  for (std::uint64_t seq = 0; seq < 20; ++seq) {
    auto report = core::UdpReport::decode(sampleReportBytes());
    report.timestampMs = seq;
    sent.push_back(report);
    wire.push_back(encoder.encode(seq, report));
  }
  std::vector<std::vector<std::uint8_t>> schedule = wire;
  for (const auto& bytes : wire) {
    auto mutated = bytes;
    mutated[rng.uniform(0, mutated.size() - 1)] ^= 0x40;
    schedule.push_back(std::move(mutated));
    if (rng.chance(0.5)) schedule.push_back(bytes);  // duplicate
    std::vector<std::uint8_t> garbage(rng.uniform(0, 64));
    for (auto& byte : garbage)
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    schedule.push_back(std::move(garbage));
  }
  for (std::size_t i = schedule.size(); i > 1; --i)
    std::swap(schedule[i - 1], schedule[rng.uniform(0, i - 1)]);

  for (const auto& datagram : schedule) ingest.submitDatagram(datagram);
  ingest.drain();

  // Every original datagram arrived at least once, and reordering plus the
  // healing path must still reconstruct every stack: the delivered set is
  // exactly the sent run.
  const auto reports = ingest.takeReports(sent[0].apkSha256);
  ASSERT_EQ(reports.size(), sent.size());
  EXPECT_EQ(reports, sent);
  const auto metrics = ingest.metrics();
  EXPECT_GT(metrics.datagramsMalformed, 0u);
  EXPECT_EQ(metrics.dictHoles, metrics.dictRepaired + metrics.dictDropped);
}

std::vector<std::uint8_t> sampleEnvelopeBytes(std::uint64_t jobIndex = 11) {
  const auto artifacts = core::RunArtifacts::deserialize(sampleArtifactBytes());
  core::ApkLossAccount account;
  account.reportsEmitted = 4;
  account.framesDelivered = 3;
  account.uniqueDelivered = 3;
  account.lost = 1;
  return core::SpabEnvelope::encode(jobIndex, account, artifacts);
}

TEST(FuzzDecodersTest, SpabEnvelopeSurvivesMutation) {
  fuzzDecoder(sampleEnvelopeBytes(),
              [](const std::vector<std::uint8_t>& bytes) {
                (void)core::SpabEnvelope::decode(bytes);
              },
              909);
}

TEST(FuzzDecodersTest, EnvelopeChecksumMakesSilentMisParseImpossible) {
  // Same guarantee the report frames give the wire, extended to disk: a
  // persisted bundle that decodes at all is byte-identical to what was
  // written — job index, loss account and artifacts alike.
  const auto artifacts = core::RunArtifacts::deserialize(sampleArtifactBytes());
  const auto valid = sampleEnvelopeBytes();
  const auto reference = core::SpabEnvelope::decode(valid);
  util::Rng rng(1010);
  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> mutated = valid;
    const int mutations = static_cast<int>(rng.uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.uniform(0, mutated.size() - 1);
      mutated[pos] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    if (rng.chance(0.3)) mutated.resize(rng.uniform(0, mutated.size() - 1));
    try {
      const auto decoded = core::SpabEnvelope::decode(mutated);
      EXPECT_EQ(decoded.jobIndex, reference.jobIndex);
      EXPECT_EQ(decoded.account, reference.account);
      EXPECT_EQ(decoded.artifacts.serialize(), artifacts.serialize());
    } catch (const util::DecodeError&) {
      // the overwhelmingly common outcome for a real mutation
    }
  }
}

TEST(FuzzDecodersTest, RecoveryQuarantinesHostileCheckpointDirectory) {
  // Fill a checkpoint directory with bit-flipped, truncated and garbage
  // .spab files alongside intact ones, then scan. Recovery must never
  // throw, must keep exactly the intact bundles (byte-identical, under
  // their original job indices), and must quarantine the rest.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("spector_hostile_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::create_directories(dir);

  const auto writeFile = [&](const std::string& name,
                             std::span<const std::uint8_t> bytes) {
    std::ofstream out(dir / name, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  };

  util::Rng rng(1111);
  std::map<std::uint64_t, std::vector<std::uint8_t>> intact;
  std::size_t damaged = 0;
  for (std::uint64_t i = 0; i < 12; ++i) {
    auto artifacts = core::RunArtifacts::deserialize(sampleArtifactBytes());
    artifacts.apkSha256 = "sha" + std::to_string(i);
    auto bytes = core::SpabEnvelope::encode(
        i, core::ApkLossAccount::fromArtifacts(artifacts), artifacts);
    const std::string name = artifacts.apkSha256 + ".spab";
    switch (i % 4) {
      case 0:  // intact
      case 1:
        intact.emplace(i, bytes);
        writeFile(name, bytes);
        break;
      case 2: {  // bit-flipped
        bytes[rng.uniform(0, bytes.size() - 1)] ^= 0x08;
        writeFile(name, bytes);
        ++damaged;
        break;
      }
      default: {  // truncated (torn write that somehow got renamed)
        const std::span<const std::uint8_t> torn(
            bytes.data(), rng.uniform(1, bytes.size() - 1));
        writeFile(name, torn);
        ++damaged;
        break;
      }
    }
  }
  {  // pure garbage masquerading as a bundle
    std::vector<std::uint8_t> garbage(200);
    for (auto& byte : garbage)
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    writeFile("garbage.spab", garbage);
    ++damaged;
  }

  const auto report = orch::StudyRecovery::scan(dir.string());
  ASSERT_EQ(report.runs.size(), intact.size());
  for (const auto& run : report.runs) {
    const auto it = intact.find(run.jobIndex);
    ASSERT_NE(it, intact.end());
    EXPECT_EQ(core::SpabEnvelope::encode(run.jobIndex, run.account,
                                         run.artifacts),
              it->second)
        << "recovered bundle differs from what was written";
  }
  EXPECT_EQ(report.quarantined.size(), damaged);
  for (const auto& entry : report.quarantined) {
    EXPECT_FALSE(entry.error.empty());
    EXPECT_TRUE(fs::exists(dir / orch::StudyRecovery::kQuarantineDir /
                           entry.file))
        << entry.file << " not moved to quarantine";
  }
}

TEST(FuzzDecodersTest, PureGarbageIsRejected) {
  util::Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> garbage(rng.uniform(0, 300));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    EXPECT_THROW((void)core::UdpReport::decode(garbage), util::DecodeError);
    try {
      (void)net::CaptureFile::deserialize(garbage);
    } catch (const util::DecodeError&) {
    }
    try {
      (void)dex::ApkFile::deserialize(garbage);
    } catch (const util::DecodeError&) {
    }
  }
}

}  // namespace
}  // namespace libspector
