// Decoder robustness: every binary decoder in the system must reject
// corrupted input with util::DecodeError (never crash, hang, or silently
// mis-parse into an over-allocating state). The collection server receives
// UDP datagrams from the network, and the result database reads files from
// disk — both are trust boundaries.
#include <gtest/gtest.h>

#include "core/artifacts.hpp"
#include "core/report.hpp"
#include "dex/apk.hpp"
#include "net/capture.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace libspector {
namespace {

std::vector<std::uint8_t> sampleApkBytes() {
  dex::ApkFile apk;
  apk.packageName = "com.fuzz.app";
  apk.appCategory = "TOOLS";
  dex::DexFile dexFile;
  dex::ClassDef cls;
  cls.dottedName = "com.fuzz.app.Main";
  cls.methods = {{"Lcom/fuzz/app/Main;->m()V"}};
  dexFile.classes.push_back(cls);
  apk.dexFiles.push_back(dexFile);
  return apk.serialize();
}

std::vector<std::uint8_t> sampleCaptureBytes() {
  net::CaptureFile capture;
  const net::SocketPair pair{{net::Ipv4Addr(10, 0, 2, 15), 40000},
                             {net::Ipv4Addr(198, 18, 0, 1), 443}};
  capture.append(net::makeTcpPacket(1, pair, 140, 100));
  capture.append(net::makeUdpPacket(2, pair, 70, 42, "x.com",
                                    net::Ipv4Addr(198, 18, 0, 1)));
  capture.appendHttp({3, pair, "x.com", "/p", "ua", true});
  return capture.serialize();
}

std::vector<std::uint8_t> sampleReportBytes() {
  core::UdpReport report;
  report.apkSha256 = "fuzz";
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15), 40000},
                       {net::Ipv4Addr(198, 18, 0, 1), 443}};
  report.stackSignatures = {"java.net.Socket.connect", "Lcom/a/B;->c()V"};
  return report.encode();
}

std::vector<std::uint8_t> sampleArtifactBytes() {
  core::RunArtifacts artifacts;
  artifacts.apkSha256 = "fuzz";
  artifacts.capture = net::CaptureFile::deserialize(sampleCaptureBytes());
  artifacts.reports.push_back(core::UdpReport::decode(sampleReportBytes()));
  artifacts.methodTraceFile = {"Lcom/a/B;->c()V"};
  return artifacts.serialize();
}

/// Run a decoder over many random single/multi-byte mutations and random
/// truncations of a valid input. The decoder must either succeed (some
/// mutations are semantically harmless) or throw DecodeError.
template <typename Decode>
void fuzzDecoder(const std::vector<std::uint8_t>& valid, Decode decode,
                 std::uint64_t seed) {
  util::Rng rng(seed);
  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> mutated = valid;
    const int mutations = static_cast<int>(rng.uniform(1, 8));
    for (int m = 0; m < mutations; ++m) {
      if (mutated.empty()) break;
      const std::size_t pos = rng.uniform(0, mutated.size() - 1);
      mutated[pos] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    if (rng.chance(0.3) && !mutated.empty())
      mutated.resize(rng.uniform(0, mutated.size() - 1));
    try {
      decode(mutated);  // success is acceptable; crashes/UB are not
    } catch (const util::DecodeError&) {
      // expected rejection path
    }
  }
}

TEST(FuzzDecodersTest, ApkFileSurvivesMutation) {
  fuzzDecoder(sampleApkBytes(),
              [](const std::vector<std::uint8_t>& bytes) {
                (void)dex::ApkFile::deserialize(bytes);
              },
              101);
}

TEST(FuzzDecodersTest, CaptureFileSurvivesMutation) {
  fuzzDecoder(sampleCaptureBytes(),
              [](const std::vector<std::uint8_t>& bytes) {
                (void)net::CaptureFile::deserialize(bytes);
              },
              202);
}

TEST(FuzzDecodersTest, UdpReportSurvivesMutation) {
  fuzzDecoder(sampleReportBytes(),
              [](const std::vector<std::uint8_t>& bytes) {
                (void)core::UdpReport::decode(bytes);
              },
              303);
}

TEST(FuzzDecodersTest, RunArtifactsSurviveMutation) {
  fuzzDecoder(sampleArtifactBytes(),
              [](const std::vector<std::uint8_t>& bytes) {
                (void)core::RunArtifacts::deserialize(bytes);
              },
              404);
}

TEST(FuzzDecodersTest, PureGarbageIsRejected) {
  util::Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> garbage(rng.uniform(0, 300));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    EXPECT_THROW((void)core::UdpReport::decode(garbage), util::DecodeError);
    try {
      (void)net::CaptureFile::deserialize(garbage);
    } catch (const util::DecodeError&) {
    }
    try {
      (void)dex::ApkFile::deserialize(garbage);
    } catch (const util::DecodeError&) {
    }
  }
}

}  // namespace
}  // namespace libspector
