// End-to-end reproduction of Listing 1 + Listing 2: a unity3d-style ad
// fetch flows through the emulator, the Socket Supervisor, the collection
// server and the attribution pipeline, and must come out attributed to
// origin-library "com.unity3d.ads.android.cache", 2-level "com.unity3d",
// category Advertisement — exactly as the paper describes.
#include <gtest/gtest.h>

#include "core/attribution.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector {
namespace {

class Listing1Test : public ::testing::Test {
 protected:
  Listing1Test() {
    net::EndpointProfile ads;
    ads.domain = "config.unityads.unity3d.com";
    ads.trueCategory = "advertisements";
    ads.responseLogMu = 9.5;
    farm_.addEndpoint(ads);

    apk_.packageName = "com.fun.game";
    apk_.appCategory = "GAME_SIMULATION";

    rt::NetRequestAction request;
    request.domain = "config.unityads.unity3d.com";
    request.engine = rt::HttpEngine::OkHttp;
    const auto helper = program_.addMethod(
        "Lcom/unity3d/ads/android/cache/b;->a(Ljava/lang/String;)Ljava/lang/Object;",
        {request});
    const auto task = program_.addMethod(
        "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/String;)"
        "Ljava/lang/Object;",
        {rt::CallAction{helper}});
    const auto handler = program_.addMethod(
        "Lcom/fun/game/ui/Screen;->onClick(Landroid/view/View;)V",
        {rt::AsyncAction{task}});
    program_.uiHandlers.push_back(handler);

    dex::DexFile dexFile;
    dex::ClassDef cls;
    cls.dottedName = "all";
    for (const auto& method : program_.methods)
      cls.methods.push_back({method.signature});
    dexFile.classes.push_back(cls);
    apk_.dexFiles.push_back(dexFile);
  }

  net::ServerFarm farm_;
  dex::ApkFile apk_;
  rt::AppProgram program_;
};

TEST_F(Listing1Test, FullPipelineRecoversPaperAttribution) {
  orch::EmulatorConfig config;
  config.monkey.events = 3;
  config.monkey.throttleMs = 100;
  orch::EmulatorInstance emulator(farm_, nullptr, config);
  const auto artifacts = emulator.run(apk_, program_);
  ASSERT_EQ(artifacts.reports.size(), 3u);

  // The report's stack trace has the Listing 1 shape.
  const auto& stack = artifacts.reports[0].stackSignatures;
  ASSERT_GE(stack.size(), 6u);
  EXPECT_EQ(stack.front(), "java.net.Socket.connect");
  EXPECT_TRUE(stack[1].starts_with("com.android.okhttp"));
  EXPECT_EQ(stack[stack.size() - 2], "android.os.AsyncTask$2.call");
  EXPECT_EQ(stack.back(), "java.util.concurrent.FutureTask.run");

  // Attribution: Listing 2's prediction for the origin.
  const auto corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(),
      [](const std::string&) { return std::string("advertisements"); });
  core::TrafficAttributor attributor(corpus, categorizer);
  const auto flows = attributor.attribute(artifacts);
  ASSERT_EQ(flows.size(), 3u);
  for (const auto& flow : flows) {
    EXPECT_EQ(flow.originLibrary, "com.unity3d.ads.android.cache");
    EXPECT_EQ(flow.twoLevelLibrary, "com.unity3d");
    EXPECT_EQ(flow.libraryCategory, "Advertisement");
    EXPECT_TRUE(flow.antOrigin);
    EXPECT_EQ(flow.domain, "config.unityads.unity3d.com");
    EXPECT_GT(flow.recvBytes, 0u);
    EXPECT_GT(flow.sentBytes, 0u);
    EXPECT_GT(flow.recvBytes, flow.sentBytes);
  }
}

TEST_F(Listing1Test, OriginSignatureIsTheDoInBackgroundOverload) {
  orch::EmulatorConfig config;
  config.monkey.events = 1;
  orch::EmulatorInstance emulator(farm_, nullptr, config);
  const auto artifacts = emulator.run(apk_, program_);
  const auto corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(),
      [](const std::string&) { return std::string("advertisements"); });
  core::TrafficAttributor attributor(corpus, categorizer);
  const auto flows = attributor.attribute(artifacts);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].originSignature,
            "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/"
            "String;)Ljava/lang/Object;");
}

}  // namespace
}  // namespace libspector
