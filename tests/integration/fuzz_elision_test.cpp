// Fuzz tier for the trampoline-elision frame queries (§14). The elision
// pass runs on every reported stack frame, and reported frames cross the
// same trust boundary as the report decoder: a hostile supervisor can put
// ARBITRARY bytes in a stack signature. Every matcher must stay total
// (no crash, no UB) on garbage, the compiled allocation-free queries must
// agree with the reference matchers on every input, and the origin scan
// must never select a frame the elision rules say to skip.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/attribution.hpp"
#include "core/attribution_program.hpp"
#include "util/rng.hpp"

namespace libspector::core {
namespace {

/// Random bytes biased toward the separators and marker fragments the
/// matchers key on, plus occasional raw binary.
std::string fuzzEntry(util::Rng& rng) {
  static const std::vector<std::string> kFragments = {
      ".",       "/",     ";->",   "L",          "()V",
      "a",       "ab",    "abc",   "java",       "lang",
      "reflect", "Method", "Proxy", "invoke",    "android",
      "com",     "..",    "//",    "java.lang.reflect.",
      "Method.invoke", "\xff\xfe", std::string(1, '\0'),
  };
  std::string entry;
  const std::size_t parts = rng.uniform(0, 12);
  for (std::size_t i = 0; i < parts; ++i) {
    if (rng.chance(0.15)) {
      entry += static_cast<char>(rng.uniform(0, 255));
    } else {
      entry += kFragments[rng.uniform(0, kFragments.size() - 1)];
    }
  }
  return entry;
}

TEST(FuzzElisionTest, MatchersAreTotalAndCompiledAgreesWithReference) {
  util::Rng rng(0x20260808ULL);
  for (int q = 0; q < 20000; ++q) {
    const std::string entry = fuzzEntry(rng);
    const bool junk = isJunkPackageFrame(entry);
    const bool marker = isReflectionMarkerFrame(entry);
    EXPECT_EQ(AttributionProgram::isJunkPackageEntry(entry), junk) << q;
    EXPECT_EQ(AttributionProgram::isReflectionMarker(entry), marker) << q;
    // A marker is never junk-package (its components include "reflect").
    if (marker) {
      EXPECT_FALSE(junk) << q;
    }
  }
}

TEST(FuzzElisionTest, OriginScanNeverSelectsAnElidedFrame) {
  util::Rng rng(0xE11D3ULL);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::string> stack;
    const std::size_t depth = rng.uniform(0, 10);
    for (std::size_t i = 0; i < depth; ++i) stack.push_back(fuzzEntry(rng));
    // Sprinkle real markers so the adjacency rule actually fires.
    if (depth > 0 && rng.chance(0.4))
      stack[rng.uniform(0, depth - 1)] = "java.lang.reflect.Method.invoke";

    const auto elided = originFrameIndex(stack, true);
    if (elided.has_value()) {
      EXPECT_FALSE(isBuiltinFrame(stack[*elided])) << round;
      EXPECT_FALSE(isTrampolineFrame(stack, *elided)) << round;
      // Everything outward of the chosen origin was skippable.
      for (std::size_t i = *elided + 1; i < stack.size(); ++i)
        EXPECT_TRUE(isBuiltinFrame(stack[i]) || isTrampolineFrame(stack, i))
            << round << " frame " << i;
    } else {
      for (std::size_t i = 0; i < stack.size(); ++i)
        EXPECT_TRUE(isBuiltinFrame(stack[i]) || isTrampolineFrame(stack, i))
            << round << " frame " << i;
    }

    // Without elision the scan reduces to the legacy builtin skip.
    const auto plain = originFrameIndex(stack, false);
    if (plain.has_value()) {
      EXPECT_FALSE(isBuiltinFrame(stack[*plain])) << round;
      for (std::size_t i = *plain + 1; i < stack.size(); ++i)
        EXPECT_TRUE(isBuiltinFrame(stack[i])) << round << " frame " << i;
    }
  }
}

}  // namespace
}  // namespace libspector::core