// Differential scenario-conformance tier (§14).
//
// The three workload scenarios (keep-alive reuse, adversarial
// stack-laundering, background sync) are additive switches: all off, the
// pipeline must produce the legacy study BYTE FOR BYTE — pinned here as a
// golden hash so no future scenario change can silently shift the legacy
// world. All on, the scenario study is itself pinned, and must survive
// every execution shape the repo has: any worker count, a second seed, a
// mid-study kill + resume through the .spab checkpoint protocol (which now
// carries request-boundary records, bundle format v3), and a
// multi-collector mergeStudies at 1/2/4 collectors.
//
// The tier also proves the scenarios do what they claim: keep-alive
// splits single sockets across origin libraries via request ordinals, and
// adversarial apps attribute identically to their un-laundered twins.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/attribution.hpp"
#include "core/export.hpp"
#include "orch/recovery.hpp"
#include "orch/study.hpp"
#include "radar/corpus.hpp"
#include "spectord/cluster.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector {
namespace {

orch::StudyConfig smallConfig(std::uint64_t seed = 5) {
  orch::StudyConfig config;
  config.store.appCount = 25;
  config.store.seed = seed;
  config.store.methodScale = 0.05;
  config.dispatcher.emulator.monkey.events = 100;
  config.dispatcher.emulator.monkey.throttleMs = 50;
  return config;
}

/// All three scenarios on, threaded into BOTH halves of the pipeline: the
/// store flag shapes what apps are generated, the emulator flag what the
/// runtime does with them. (They are deliberately independent knobs — see
/// DESIGN.md §14.)
orch::StudyConfig scenarioConfig(std::uint64_t seed = 5) {
  auto config = smallConfig(seed);
  rt::ScenarioConfig scenarios;
  scenarios.keepAliveReuse = true;
  scenarios.adversarialApps = true;
  scenarios.backgroundSync = true;
  config.store.scenarios = scenarios;
  config.dispatcher.emulator.scenario = scenarios;
  return config;
}

/// Render every figure dataset plus the markdown report into one string:
/// byte equality here is study identity for every consumer in the repo.
std::string renderStudy(const core::StudyAggregator& study) {
  std::ostringstream out;
  core::writeFig2Csv(study, out);
  core::writeTopLibrariesCsv(study, 25, out);
  core::writeCdfCsv(study, out);
  core::writeFlowRatiosCsv(study, out);
  core::writeAntSharesCsv(study, out);
  core::writeCategoryAveragesCsv(study, out);
  core::writeHeatmapCsv(study, out);
  core::writeCoverageCsv(study, out);
  core::writeStudyReport(study, out);
  return out.str();
}

/// FNV-1a 64: stable, dependency-free content hash for the golden pins.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::filesystem::path freshDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The attribution-visible identity of one flow, as a comparable string.
/// Deliberately excludes requestOrdinal/rttMs: twins are compared on WHO
/// sent WHAT WHERE, the axes laundering tries to corrupt.
std::string flowKey(const core::FlowRecord& flow) {
  std::ostringstream out;
  out << flow.originLibrary.view() << '|' << flow.originSignature.view() << '|'
      << flow.twoLevelLibrary.view() << '|' << flow.libraryCategory.view()
      << '|' << flow.builtinOrigin << flow.antOrigin << flow.commonOrigin
      << '|' << flow.domain.view() << '|' << flow.domainCategory.view() << '|'
      << flow.socketPair.str() << '|' << flow.sentBytes << '|'
      << flow.recvBytes;
  return out.str();
}

/// Attribute one generated corpus app by app (the batch pipeline shape the
/// unit tiers use), returning per-app sorted flow keys. Symbols in a
/// FlowRecord borrow the attributor's pool, so everything comparable is
/// materialized here, while the attributor is alive.
std::vector<std::vector<std::string>> attributeCorpus(
    const orch::StudyConfig& config,
    std::vector<core::RunArtifacts>* runsOut = nullptr,
    std::size_t* pooledFlowsOut = nullptr,
    std::size_t* multiLibrarySocketsOut = nullptr) {
  const store::AppStoreGenerator generator(config.store);
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&generator](const std::string& domain) {
        return generator.domainTruth(domain);
      });
  static const radar::LibraryCorpus kCorpus = radar::LibraryCorpus::builtin();
  const core::TrafficAttributor attributor(kCorpus, categorizer,
                                           config.attribution);

  std::vector<std::vector<std::string>> keysPerApp;
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const auto job = generator.makeJob(i);
    auto emulatorConfig = config.dispatcher.emulator;
    emulatorConfig.seed = config.dispatcher.baseSeed + i;
    orch::EmulatorInstance emulator(generator.farm(), nullptr, emulatorConfig);
    auto run = emulator.run(job.apk, job.program);
    const auto flows = attributor.attribute(run);

    std::vector<std::string> keys;
    std::map<net::SocketPair, std::set<std::string>> librariesPerSocket;
    for (const auto& flow : flows) {
      keys.push_back(flowKey(flow));
      if (pooledFlowsOut != nullptr && flow.requestOrdinal >= 1)
        ++*pooledFlowsOut;
      if (multiLibrarySocketsOut != nullptr)
        librariesPerSocket[flow.socketPair].insert(flow.originLibrary.str());
    }
    if (multiLibrarySocketsOut != nullptr)
      for (const auto& [pair, libraries] : librariesPerSocket)
        if (libraries.size() >= 2) ++*multiLibrarySocketsOut;
    std::sort(keys.begin(), keys.end());
    keysPerApp.push_back(std::move(keys));
    if (runsOut != nullptr) runsOut->push_back(std::move(run));
  }
  return keysPerApp;
}

// ---------------------------------------------------------------------------
// Golden pins. Computed from the current tree (whose legacy output the
// orch/study tiers pin back to the seed pipeline); any byte drift in a
// rendered study fails these with the offending hash in the message.
// ---------------------------------------------------------------------------
constexpr std::uint64_t kLegacyGoldenSeed5 = 0xf596c340130da95dULL;
constexpr std::uint64_t kScenarioGoldenSeed5 = 0x8caebc428d1b7445ULL;
constexpr std::uint64_t kScenarioGoldenSeed7 = 0x946a3ab8a20e6040ULL;

TEST(ScenarioMatrixTest, FlagsOffStudyMatchesPinnedLegacyGolden) {
  // ScenarioConfig's default state must be inert: the rendered study of a
  // default (flags-off) config is the legacy study, pinned byte for byte.
  const auto output = orch::runStudy(smallConfig());
  const std::string rendered = renderStudy(output.study);
  EXPECT_EQ(fnv1a(rendered), kLegacyGoldenSeed5)
      << "flags-off study drifted from the pinned legacy bytes; hash now 0x"
      << std::hex << fnv1a(rendered);
}

TEST(ScenarioMatrixTest, ScenarioStudyPinnedAcrossWorkerCountsAndSeeds) {
  const struct {
    std::uint64_t seed;
    std::uint64_t golden;
  } kSeeds[] = {{5, kScenarioGoldenSeed5}, {7, kScenarioGoldenSeed7}};

  for (const auto& [seed, golden] : kSeeds) {
    for (const std::size_t workers :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      auto config = scenarioConfig(seed);
      config.dispatcher.workers = workers;
      const std::string rendered = renderStudy(orch::runStudy(config).study);
      EXPECT_EQ(fnv1a(rendered), golden)
          << "seed=" << seed << " workers=" << workers << " hash now 0x"
          << std::hex << fnv1a(rendered);
    }
  }
}

TEST(ScenarioMatrixTest, ScenarioCheckpointKillResumeIsByteIdentical) {
  // The scenario study's bundles carry request-boundary records (.spab
  // format v3): a collector killed mid-study must resume through them to
  // the same bytes. Re-drive the checkpoint protocol over a prefix of the
  // uninterrupted run's deliveries — the on-disk state of a collector that
  // died cleanly between runs — then resume.
  auto config = scenarioConfig();
  config.artifactsDirectory = freshDir("scenario_resume_truth").string();
  const auto truth = orch::runStudy(config);
  const std::string expected = renderStudy(truth.study);
  ASSERT_EQ(truth.appsProcessed, config.store.appCount);

  auto truthScan = orch::StudyRecovery::scan(config.artifactsDirectory);
  ASSERT_EQ(truthScan.runs.size(), config.store.appCount);
  // The scenario corpus actually exercises the v3 tail: at least one run
  // checkpointed request boundaries.
  std::size_t runsWithBoundaries = 0;
  for (const auto& run : truthScan.runs)
    if (!run.artifacts.requestBoundaries.empty()) ++runsWithBoundaries;
  EXPECT_GT(runsWithBoundaries, 0u);

  for (const std::size_t crashAfter : {std::size_t{1}, std::size_t{12}}) {
    auto crashed = scenarioConfig();
    crashed.artifactsDirectory =
        freshDir("scenario_resume_" + std::to_string(crashAfter)).string();
    orch::CheckpointWriter writer(crashed.artifactsDirectory);
    for (std::size_t i = 0; i < crashAfter; ++i)
      writer.checkpoint(truthScan.runs[i].jobIndex, truthScan.runs[i].account,
                        truthScan.runs[i].artifacts);

    const auto resumed = orch::resumeStudy(crashed);
    EXPECT_EQ(resumed.output.appsReplayed, crashAfter);
    EXPECT_EQ(resumed.output.appsProcessed, crashed.store.appCount);
    EXPECT_EQ(renderStudy(resumed.output.study), expected)
        << "scenario study diverged after resume from " << crashAfter
        << " checkpointed runs";
    std::filesystem::remove_all(crashed.artifactsDirectory);
  }
  std::filesystem::remove_all(config.artifactsDirectory);
}

TEST(ScenarioMatrixTest, ScenarioMergeIsByteIdenticalAtAnyCollectorCount) {
  const auto config = scenarioConfig();
  const std::string expected = renderStudy(orch::runStudy(config).study);

  for (const std::uint32_t count : {1u, 2u, 4u}) {
    std::vector<std::string> directories;
    for (std::uint32_t i = 0; i < count; ++i) {
      spectord::CollectorOptions options;
      options.index = i;
      options.count = count;
      options.checkpointDirectory =
          freshDir("scenario_merge_" + std::to_string(count) + "_" +
                   std::to_string(i))
              .string();
      const auto result = spectord::runCollector(config, options);
      EXPECT_EQ(result.runsAccepted, result.jobsDispatched);
      directories.push_back(options.checkpointDirectory);
    }
    const auto merged = orch::mergeStudies(config, directories);
    EXPECT_EQ(renderStudy(merged.output.study), expected)
        << "scenario merge at " << count << " collectors diverged";
    for (const auto& directory : directories)
      std::filesystem::remove_all(directory);
  }
}

TEST(ScenarioMatrixTest, KeepAliveSplitsSingleSocketsAcrossLibraries) {
  // The point of the keep-alive scenario: one TCP connection carrying
  // logical requests from different call stacks, with attribution splitting
  // the capture stream per request instead of blaming the opener for all
  // of it.
  std::size_t pooledFlows = 0;
  std::size_t multiLibrarySockets = 0;
  (void)attributeCorpus(scenarioConfig(), nullptr, &pooledFlows,
                        &multiLibrarySockets);
  EXPECT_GT(pooledFlows, 0u)
      << "keep-alive scenario produced no reused-connection flows";
  EXPECT_GE(multiLibrarySockets, 1u)
      << "no socket was attributed across >= 2 origin libraries";
}

TEST(ScenarioMatrixTest, AdversarialTwinsAttributeIdentically) {
  // Each adversarial app is the exact twin of its un-laundered self: the
  // laundering pass wraps entry points drawn from an rng forked off the
  // plan seed and never touches the planning or runtime streams. With
  // trampoline elision on (the default), attribution must see through the
  // reflection trampolines and spoofed builtin frames to the same flows.
  auto launderedConfig = smallConfig();
  launderedConfig.store.scenarios.adversarialApps = true;
  const auto honest = attributeCorpus(smallConfig());
  const auto laundered = attributeCorpus(launderedConfig);
  ASSERT_EQ(honest.size(), laundered.size());

  for (std::size_t app = 0; app < honest.size(); ++app) {
    EXPECT_EQ(honest[app], laundered[app])
        << "app " << app << " attributed differently from its twin";
  }
}

TEST(ScenarioMatrixTest, ElisionOffExposesTheLaundering) {
  // Sanity check that the twins test is not vacuous: with the elision pass
  // disabled, at least one laundered app must attribute differently —
  // junk-package trampolines become origins. (Spoofed builtin frames are
  // caught by the builtin skip regardless; elision exists for the
  // trampolines.)
  auto launderedConfig = smallConfig();
  launderedConfig.store.scenarios.adversarialApps = true;
  launderedConfig.attribution.elideTrampolines = false;
  auto honestConfig = smallConfig();
  honestConfig.attribution.elideTrampolines = false;

  const auto honest = attributeCorpus(honestConfig);
  const auto laundered = attributeCorpus(launderedConfig);
  ASSERT_EQ(honest.size(), laundered.size());

  std::size_t appsDiverged = 0;
  for (std::size_t app = 0; app < honest.size(); ++app)
    if (honest[app] != laundered[app]) ++appsDiverged;
  EXPECT_GT(appsDiverged, 0u)
      << "laundering changed nothing even without elision — the adversarial "
         "generator is not actually laundering";
}

}  // namespace
}  // namespace libspector
