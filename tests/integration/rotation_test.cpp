// End-to-end attribution under CDN address rotation: one multi-homed
// domain rotates its A records as DNS TTLs expire during a run, so the
// same domain appears behind several destination IPs in the capture — and
// different domains share addresses. The offline pipeline must still map
// every flow to the right domain via the most-recent-resolution rule.
#include <gtest/gtest.h>

#include "core/attribution.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector {
namespace {

class RotationTest : public ::testing::Test {
 protected:
  RotationTest() {
    net::EndpointProfile cdn;
    cdn.domain = "assets.edgecache.net";
    cdn.trueCategory = "cdn";
    cdn.responseLogMu = 10.0;
    const auto primary = farm_.addEndpoint(cdn);
    farm_.addAlternateAddress("assets.edgecache.net");
    farm_.addAlternateAddress("assets.edgecache.net");
    // A second domain co-hosted on the CDN's primary address.
    net::EndpointProfile coHosted;
    coHosted.domain = "static.othersite.com";
    coHosted.trueCategory = "cdn";
    farm_.addEndpoint(coHosted, primary);

    apk_.packageName = "com.rotation.app";
    apk_.appCategory = "ENTERTAINMENT";

    rt::NetRequestAction request;
    request.domain = "assets.edgecache.net";
    const auto helper =
        program_.addMethod("Lcom/bumptech/glide/load/engine/executor/F;->a()V",
                           {request});
    const auto task = program_.addMethod(
        "Lcom/bumptech/glide/load/engine/executor/F;->doInBackground()V",
        {rt::CallAction{helper}});
    const auto handler = program_.addMethod(
        "Lcom/rotation/app/H;->onClick()V", {rt::AsyncAction{task}});
    rt::NetRequestAction other;
    other.domain = "static.othersite.com";
    const auto otherHandler =
        program_.addMethod("Lcom/rotation/app/net/G;->load()V", {other});
    program_.uiHandlers = {handler, otherHandler};

    dex::DexFile dexFile;
    dex::ClassDef cls;
    cls.dottedName = "x";
    for (const auto& method : program_.methods)
      cls.methods.push_back({method.signature});
    apk_.dexFiles.push_back({{cls}});
  }

  net::ServerFarm farm_;
  dex::ApkFile apk_;
  rt::AppProgram program_;
};

TEST_F(RotationTest, FlowsFollowTheDomainAcrossAddresses) {
  orch::EmulatorConfig config;
  config.monkey.events = 400;
  config.monkey.throttleMs = 500;           // 200 s of run time
  config.stack.dnsTtlMs = 30 * 1000;        // several rotations per run
  config.backgroundTicks = 0;
  orch::EmulatorInstance emulator(farm_, nullptr, config);
  const auto artifacts = emulator.run(apk_, program_);

  // The rotation actually happened: the glide domain shows up behind more
  // than one destination address in the capture's DNS answers.
  std::set<std::uint32_t> answersForGlideDomain;
  for (const auto& pkt : artifacts.capture.packets()) {
    if (pkt.isDns() && pkt.dnsQname == "assets.edgecache.net" &&
        !(pkt.dnsAnswer == net::Ipv4Addr{}))
      answersForGlideDomain.insert(pkt.dnsAnswer.value());
  }
  ASSERT_GE(answersForGlideDomain.size(), 2u) << "no rotation observed";

  const auto corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(),
      [](const std::string&) { return std::string("cdn"); });
  core::TrafficAttributor attributor(corpus, categorizer);
  const auto flows = attributor.attribute(artifacts);
  ASSERT_FALSE(flows.empty());

  std::set<std::uint32_t> glideFlowIps;
  for (const auto& flow : flows) {
    if (flow.originLibrary.view().starts_with("com.bumptech.glide")) {
      EXPECT_EQ(flow.domain, "assets.edgecache.net") << flow.socketPair.str();
      glideFlowIps.insert(flow.socketPair.dst.ip.value());
    } else {
      EXPECT_EQ(flow.domain, "static.othersite.com");
      EXPECT_EQ(flow.originLibrary, "com.rotation.app.net");
    }
  }
  // The glide flows really did land on multiple rotated addresses, and the
  // co-hosted domain on the shared address was still attributed correctly.
  EXPECT_GE(glideFlowIps.size(), 2u);
}

}  // namespace
}  // namespace libspector
