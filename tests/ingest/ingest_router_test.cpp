// ShardedIngest: framed-wire accounting (loss, duplication, reordering,
// corruption — detected and counted per apk), bounded queues with explicit
// backpressure, sharded consumers, and the metrics surface.
#include "ingest/router.hpp"

#include <gtest/gtest.h>

#include <future>
#include <numeric>
#include <random>

#include "util/bytes.hpp"

namespace libspector::ingest {
namespace {

core::UdpReport sampleReport(const std::string& sha, std::uint64_t seq) {
  core::UdpReport report;
  report.apkSha256 = sha;
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15),
                        static_cast<std::uint16_t>(40000 + seq)},
                       {net::Ipv4Addr(198, 18, 0, 1), 443}};
  report.timestampMs = seq;  // lets tests recover send order from content
  report.stackSignatures = {"java.net.Socket.connect",
                            "Lcom/lib/b;->doInBackground()V"};
  return report;
}

std::vector<std::uint8_t> frameBytes(const std::string& sha,
                                     std::uint32_t workerId,
                                     std::uint64_t seq) {
  return core::ReportFrame{workerId, seq, sampleReport(sha, seq)}.encode();
}

core::RunArtifacts runFor(const std::string& sha, std::uint64_t emitted) {
  core::RunArtifacts artifacts;
  artifacts.apkSha256 = sha;
  artifacts.packageName = "com.app." + sha;
  artifacts.reportsEmitted = emitted;
  return artifacts;
}

TEST(ReportFrameTest, RoundTripsThroughWire) {
  const core::ReportFrame frame{7, 42, sampleReport("aaa", 42)};
  const auto bytes = frame.encode();
  EXPECT_TRUE(core::ReportFrame::looksFramed(bytes));
  EXPECT_EQ(core::ReportFrame::decode(bytes), frame);

  const auto header = core::ReportFrame::peek(bytes);
  EXPECT_EQ(header.workerId, 7u);
  EXPECT_EQ(header.sequence, 42u);
  EXPECT_EQ(header.shaKey, util::fnv1a64("aaa"));
}

TEST(ReportFrameTest, RawReportIsNotMistakenForAFrame) {
  const auto raw = sampleReport("aaa", 0).encode();
  EXPECT_FALSE(core::ReportFrame::looksFramed(raw));
  // The dual-format helper handles both encodings.
  EXPECT_EQ(core::decodeReportDatagram(raw), sampleReport("aaa", 0));
  EXPECT_EQ(core::decodeReportDatagram(frameBytes("aaa", 1, 5)),
            sampleReport("aaa", 5));
}

TEST(ReportFrameTest, ChecksumRejectsEveryBitFlip) {
  const auto valid = frameBytes("aaa", 3, 9);
  for (std::size_t pos = 0; pos < valid.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = valid;
      flipped[pos] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW((void)core::ReportFrame::decode(flipped), util::DecodeError)
          << "byte " << pos << " bit " << bit;
    }
  }
}

TEST(ReportFrameTest, TruncationIsRejected) {
  const auto valid = frameBytes("aaa", 3, 9);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const std::span<const std::uint8_t> cut(valid.data(), len);
    EXPECT_THROW((void)core::ReportFrame::decode(cut), util::DecodeError);
    EXPECT_THROW((void)core::ReportFrame::peek(cut), util::DecodeError);
  }
}

TEST(ShardedIngestTest, AccountsLossDuplicationAndReorderingExactly) {
  std::vector<RunDelivery> deliveries;
  IngestConfig config;
  config.shards = 2;
  ShardedIngest ingest(config, [&](RunDelivery&& d) {
    deliveries.push_back(std::move(d));
  });

  // Worker 7 emits sequences 0..9; the "network" loses {2,5}, duplicates
  // {1,3,8} and delivers the rest shuffled.
  std::vector<std::uint64_t> arrivals = {9, 1, 0, 3, 1, 8, 4, 3, 6, 7, 8};
  for (const auto seq : arrivals)
    ingest.submitDatagram(frameBytes("lossy", 7, seq));
  ingest.submitRun(0, runFor("lossy", 10));
  ingest.drain();

  ASSERT_EQ(deliveries.size(), 1u);
  const auto& account = deliveries[0].account;
  EXPECT_EQ(account.reportsEmitted, 10u);
  EXPECT_EQ(account.framesDelivered, 11u);  // 8 unique + 3 duplicates
  EXPECT_EQ(account.uniqueDelivered, 8u);
  EXPECT_EQ(account.duplicated, 3u);
  EXPECT_EQ(account.lost, 2u);
  EXPECT_GT(account.outOfOrder, 0u);

  // Delivered reports come out deduplicated and in send order.
  const auto& reports = deliveries[0].artifacts.reports;
  ASSERT_EQ(reports.size(), 8u);
  for (std::size_t i = 1; i < reports.size(); ++i)
    EXPECT_LT(reports[i - 1].timestampMs, reports[i].timestampMs);
}

TEST(ShardedIngestTest, ZeroLossReproducesTheSenderReportListExactly) {
  std::vector<RunDelivery> deliveries;
  ShardedIngest ingest({}, [&](RunDelivery&& d) {
    deliveries.push_back(std::move(d));
  });

  std::vector<core::UdpReport> sent;
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    sent.push_back(sampleReport("clean", seq));
    ingest.submitDatagram(core::ReportFrame{1, seq, sent.back()}.encode());
  }
  ingest.submitRun(3, runFor("clean", 6));
  ingest.drain();

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].jobIndex, 3u);
  EXPECT_EQ(deliveries[0].account.lost, 0u);
  EXPECT_EQ(deliveries[0].account.duplicated, 0u);
  EXPECT_EQ(deliveries[0].artifacts.reports, sent);
}

TEST(ShardedIngestTest, RunWithDeadChannelKeepsItsOwnReports) {
  // reportsEmitted == 0 and no frames ever routed: the run's locally
  // collected report list must pass through untouched.
  std::vector<RunDelivery> deliveries;
  ShardedIngest ingest({}, [&](RunDelivery&& d) {
    deliveries.push_back(std::move(d));
  });
  auto artifacts = runFor("local", 0);
  artifacts.reports = {sampleReport("local", 0)};
  ingest.submitRun(0, std::move(artifacts));
  ingest.drain();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].artifacts.reports.size(), 1u);
  EXPECT_EQ(deliveries[0].account.lost, 0u);
}

TEST(ShardedIngestTest, DropNewestShedsWhenTheQueueIsFull) {
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::promise<void> entered;

  IngestConfig config;
  config.shards = 1;
  config.queueCapacity = 2;
  config.backpressure = IngestConfig::Backpressure::DropNewest;
  ShardedIngest ingest(config, [&](RunDelivery&&) {
    entered.set_value();   // consumer is now stalled inside the callback
    released.wait();
  });

  // Stall the single consumer, then overfill the queue.
  ingest.submitRun(0, runFor("stall", 0));
  entered.get_future().wait();
  for (std::uint64_t seq = 0; seq < 5; ++seq)
    ingest.submitDatagram(frameBytes("stall", 1, seq));

  release.set_value();
  ingest.drain();

  const auto metrics = ingest.metrics();
  EXPECT_EQ(metrics.perShard[0].framesDropped, 3u);  // capacity 2 of 5
  EXPECT_EQ(metrics.framesFolded, 2u);
  EXPECT_EQ(metrics.datagramsReceived, 5u);
  EXPECT_GE(metrics.perShard[0].queueDepthPeak, 2u);
}

TEST(ShardedIngestTest, BlockBackpressureLosesNothing) {
  IngestConfig config;
  config.shards = 1;
  config.queueCapacity = 2;  // far smaller than the burst
  ShardedIngest ingest(config);
  constexpr std::uint64_t kFrames = 500;
  for (std::uint64_t seq = 0; seq < kFrames; ++seq)
    ingest.submitDatagram(frameBytes("burst", 1, seq));
  ingest.drain();
  const auto metrics = ingest.metrics();
  EXPECT_EQ(metrics.framesFolded, kFrames);
  EXPECT_EQ(metrics.framesDropped, 0u);
  EXPECT_EQ(ingest.takeReports("burst").size(), kFrames);
}

TEST(ShardedIngestTest, RoutesEveryShaToAStableShard) {
  IngestConfig config;
  config.shards = 4;
  ShardedIngest ingest(config);
  ASSERT_EQ(ingest.shardCount(), 4u);
  for (int i = 0; i < 32; ++i) {
    const std::string sha = "app" + std::to_string(i);
    const std::size_t shard = ingest.shardOf(sha);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, ingest.shardOf(sha));  // stable
    ingest.submitDatagram(frameBytes(sha, 1, 0));
  }
  ingest.drain();
  const auto metrics = ingest.metrics();
  std::uint64_t folded = 0;
  for (const auto& shard : metrics.perShard) folded += shard.framesFolded;
  EXPECT_EQ(folded, 32u);
  EXPECT_EQ(metrics.framesFolded, 32u);
}

TEST(ShardedIngestTest, TakeReportsDrainsUnclaimedState) {
  ShardedIngest ingest;
  ingest.submitDatagram(frameBytes("orphan", 2, 1));
  ingest.submitDatagram(frameBytes("orphan", 2, 0));
  ingest.submitDatagram(frameBytes("orphan", 2, 0));  // duplicate
  ingest.drain();
  const auto reports = ingest.takeReports("orphan");
  ASSERT_EQ(reports.size(), 2u);  // deduplicated
  EXPECT_EQ(reports[0].timestampMs, 0u);  // send order restored
  EXPECT_EQ(reports[1].timestampMs, 1u);
  EXPECT_TRUE(ingest.takeReports("orphan").empty());
}

TEST(ShardedIngestTest, EvictsOldestPendingApkOverCapacity) {
  IngestConfig config;
  config.shards = 1;
  config.maxPendingApks = 2;
  ShardedIngest ingest(config);
  ingest.submitDatagram(frameBytes("first", 1, 0));
  ingest.submitDatagram(frameBytes("second", 1, 0));
  ingest.submitDatagram(frameBytes("third", 1, 0));
  ingest.drain();
  const auto metrics = ingest.metrics();
  EXPECT_EQ(metrics.perShard[0].apksEvicted, 1u);
  EXPECT_EQ(metrics.perShard[0].reportsEvicted, 1u);
  EXPECT_TRUE(ingest.takeReports("first").empty());  // the oldest went
  EXPECT_EQ(ingest.takeReports("third").size(), 1u);
}

TEST(ShardedIngestTest, MalformedDatagramsAreCountedNotFatal) {
  ShardedIngest ingest;
  ingest.submitDatagram(std::vector<std::uint8_t>{0x01, 0x02, 0x03});
  ingest.submitDatagram({});
  auto truncated = frameBytes("mal", 1, 0);
  truncated.resize(truncated.size() / 2);
  ingest.submitDatagram(truncated);
  // Raw (unframed) report encodings are rejected on the sharded path: the
  // router needs the header to route without decoding payloads.
  ingest.submitDatagram(sampleReport("mal", 0).encode());
  ingest.submitDatagram(frameBytes("mal", 1, 1));
  ingest.drain();
  const auto metrics = ingest.metrics();
  EXPECT_EQ(metrics.datagramsReceived, 5u);
  EXPECT_EQ(metrics.datagramsMalformed, 4u);
  EXPECT_EQ(metrics.framesFolded, 1u);
}

TEST(ShardedIngestTest, MetricsExportAsWellFormedJson) {
  IngestConfig config;
  config.shards = 2;
  ShardedIngest ingest(config);
  for (std::uint64_t seq = 0; seq < 8; ++seq)
    ingest.submitDatagram(frameBytes("json", 1, seq));
  ingest.submitRun(0, runFor("json", 8));
  ingest.drain();

  const auto json = ingest.metrics().toJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"shards\"", "\"datagrams_received\"", "\"datagrams_malformed\"",
        "\"frames_folded\"", "\"frames_dropped\"", "\"duplicated\"",
        "\"out_of_order\"", "\"runs_completed\"", "\"reports_delivered\"",
        "\"reports_lost\"", "\"latency_p50_ms\"", "\"latency_p99_ms\"",
        "\"per_shard\"", "\"queue_depth_peak\"", "\"utilization\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(ShardedIngestTest, AutoShardCountUsesHardwareConcurrency) {
  IngestConfig config;
  config.shards = 0;
  ShardedIngest ingest(config);
  EXPECT_GE(ingest.shardCount(), 1u);
}

}  // namespace
}  // namespace libspector::ingest
