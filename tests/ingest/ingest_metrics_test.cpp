#include "ingest/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace libspector::ingest {
namespace {

TEST(IngestMetricsTest, ToJsonIsWellFormedForOrdinaryValues) {
  IngestMetrics metrics;
  metrics.shards = 2;
  metrics.datagramsReceived = 10;
  metrics.latencyP50Ms = 1.5;
  metrics.perShard.resize(2);
  metrics.perShard[1].shard = 1;
  metrics.perShard[1].utilization = 0.25;

  const std::string json = metrics.toJson();
  EXPECT_NE(json.find("\"shards\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"latency_p50_ms\": 1.500"), std::string::npos);
  EXPECT_NE(json.find("\"utilization\": 0.250"), std::string::npos);
}

TEST(IngestMetricsTest, NonFiniteValuesEmitValidJson) {
  // A zero-sample shard yields NaN percentiles; %.3f would render them as
  // bare `nan`/`inf` tokens, which no JSON parser accepts.
  IngestMetrics metrics;
  metrics.latencyP50Ms = std::numeric_limits<double>::quiet_NaN();
  metrics.latencyP90Ms = std::numeric_limits<double>::infinity();
  metrics.latencyP99Ms = -std::numeric_limits<double>::infinity();
  metrics.perShard.resize(1);
  metrics.perShard[0].utilization = std::numeric_limits<double>::quiet_NaN();
  metrics.perShard[0].latencyP99Ms = std::numeric_limits<double>::infinity();

  const std::string json = metrics.toJson();
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"latency_p50_ms\": 0.000"), std::string::npos);
  EXPECT_NE(json.find("\"latency_p90_ms\": 0.000"), std::string::npos);
  EXPECT_NE(json.find("\"utilization\": 0.000"), std::string::npos);
}

}  // namespace
}  // namespace libspector::ingest
