// Concurrency stress for the sharded ingest tier: many producer threads
// feeding framed datagrams and run completions, concurrent takeReports
// stealing unclaimed state, and a metrics poller — all against the same
// router. Assertions are conservation laws that hold under any legal
// interleaving, so the test is meaningful under TSan
// (LIBSPECTOR_SANITIZE=thread) and in plain builds alike.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "ingest/pipeline.hpp"
#include "ingest/router.hpp"

namespace libspector::ingest {
namespace {

core::UdpReport stressReport(const std::string& sha, std::uint64_t seq) {
  core::UdpReport report;
  report.apkSha256 = sha;
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15),
                        static_cast<std::uint16_t>(1024 + (seq % 60000))},
                       {net::Ipv4Addr(198, 18, 0, 1), 443}};
  report.timestampMs = seq;
  report.stackSignatures = {"java.net.Socket.connect"};
  return report;
}

std::vector<std::uint8_t> stressFrame(const std::string& sha,
                                      std::uint32_t workerId,
                                      std::uint64_t seq) {
  return core::ReportFrame{workerId, seq, stressReport(sha, seq)}.encode();
}

TEST(IngestStressTest, ProducersConsumersAndTakersRaceCleanly) {
  constexpr std::size_t kRunProducers = 6;
  constexpr std::size_t kOrphanProducers = 3;
  constexpr std::uint64_t kFramesPerProducer = 300;

  IngestConfig config;
  config.shards = 4;
  config.queueCapacity = 64;  // small enough that Block backpressure engages

  std::mutex deliveriesMutex;
  std::vector<RunDelivery> deliveries;
  {
    ShardedIngest ingest(config, [&](RunDelivery&& d) {
      const std::scoped_lock lock(deliveriesMutex);
      deliveries.push_back(std::move(d));
    });

    std::atomic<std::uint64_t> stolen{0};
    std::atomic<bool> done{false};
    {
      std::vector<std::jthread> threads;

      // Run producers: frames then the run completion, per-apk FIFO through
      // the shard queue, so every frame folds before its run finalizes.
      for (std::size_t t = 0; t < kRunProducers; ++t) {
        threads.emplace_back([&ingest, t] {
          const std::string sha = "run_app_" + std::to_string(t);
          for (std::uint64_t seq = 0; seq < kFramesPerProducer; ++seq)
            ingest.submitDatagram(
                stressFrame(sha, static_cast<std::uint32_t>(t), seq));
          core::RunArtifacts artifacts;
          artifacts.apkSha256 = sha;
          artifacts.reportsEmitted = kFramesPerProducer;
          ingest.submitRun(t, std::move(artifacts));
        });
      }

      // Orphan producers: frames nobody claims; takers race to steal them.
      for (std::size_t t = 0; t < kOrphanProducers; ++t) {
        threads.emplace_back([&ingest, t] {
          const std::string sha = "orphan_" + std::to_string(t);
          for (std::uint64_t seq = 0; seq < kFramesPerProducer; ++seq)
            ingest.submitDatagram(
                stressFrame(sha, static_cast<std::uint32_t>(100 + t), seq));
        });
      }

      // Takers: concurrently drain orphan state while it is being fed.
      for (std::size_t t = 0; t < 2; ++t) {
        threads.emplace_back([&ingest, &stolen, &done] {
          while (!done.load(std::memory_order_relaxed)) {
            for (std::size_t o = 0; o < kOrphanProducers; ++o)
              stolen.fetch_add(
                  ingest.takeReports("orphan_" + std::to_string(o)).size(),
                  std::memory_order_relaxed);
            std::this_thread::yield();
          }
        });
      }

      // Metrics poller: snapshots must be internally consistent at any time.
      threads.emplace_back([&ingest, &done] {
        while (!done.load(std::memory_order_relaxed)) {
          const auto snapshot = ingest.metrics();
          EXPECT_EQ(snapshot.shards, 4u);
          EXPECT_LE(snapshot.framesFolded + snapshot.framesDropped,
                    snapshot.datagramsReceived);
          std::this_thread::yield();
        }
      });

      // Join producers (the first kRunProducers + kOrphanProducers threads)
      // by destroying them, then stop the pollers.
      for (std::size_t i = 0; i < kRunProducers + kOrphanProducers; ++i)
        threads[i].join();
      ingest.drain();
      done.store(true, std::memory_order_relaxed);
    }

    // Conservation after the dust settles.
    std::uint64_t remaining = 0;
    for (std::size_t o = 0; o < kOrphanProducers; ++o)
      remaining += ingest.takeReports("orphan_" + std::to_string(o)).size();
    EXPECT_EQ(stolen.load() + remaining,
              kOrphanProducers * kFramesPerProducer);

    const auto metrics = ingest.metrics();
    EXPECT_EQ(metrics.datagramsReceived,
              (kRunProducers + kOrphanProducers) * kFramesPerProducer);
    EXPECT_EQ(metrics.framesDropped, 0u);  // Block policy loses nothing
    EXPECT_EQ(metrics.framesFolded, metrics.datagramsReceived);
    EXPECT_EQ(metrics.datagramsMalformed, 0u);
    EXPECT_EQ(metrics.runsCompleted, kRunProducers);

    ASSERT_EQ(deliveries.size(), kRunProducers);
    for (const auto& delivery : deliveries) {
      // Per-producer FIFO through the shard queue: zero loss, zero dups.
      EXPECT_EQ(delivery.account.reportsEmitted, kFramesPerProducer);
      EXPECT_EQ(delivery.account.uniqueDelivered, kFramesPerProducer);
      EXPECT_EQ(delivery.account.lost, 0u);
      EXPECT_EQ(delivery.account.duplicated, 0u);
      EXPECT_EQ(delivery.artifacts.reports.size(), kFramesPerProducer);
    }
  }
}

TEST(IngestStressTest, ConcurrentRunSubmissionsThroughThePipeline) {
  // The pipeline's rolling totals and accumulator fold must stay coherent
  // when many threads complete runs at once.
  constexpr std::size_t kRuns = 24;
  core::StudyAggregator study;
  core::StudyAccumulator accumulator(study);
  IngestConfig config;
  config.shards = 3;
  {
    IngestPipeline pipeline(
        config,
        [](const core::RunArtifacts&) {
          return std::vector<core::FlowRecord>{};
        },
        &accumulator);
    {
      std::vector<std::jthread> threads;
      for (std::size_t t = 0; t < 4; ++t) {
        threads.emplace_back([&pipeline, t] {
          for (std::size_t i = 0; i < kRuns / 4; ++i) {
            const std::size_t index = t * (kRuns / 4) + i;
            const std::string sha = "bulk_" + std::to_string(index);
            for (std::uint64_t seq = 0; seq < 5; ++seq)
              pipeline.submitDatagram(
                  stressFrame(sha, static_cast<std::uint32_t>(index), seq));
            core::RunArtifacts artifacts;
            artifacts.apkSha256 = sha;
            artifacts.reportsEmitted = 5;
            pipeline.submitRun(index, std::move(artifacts));
          }
        });
      }
    }
    pipeline.drain();
    const auto rolling = pipeline.rollingTotals();
    EXPECT_EQ(rolling.runsFolded, kRuns);
    EXPECT_EQ(pipeline.lossAccounts().size(), kRuns);
    for (const auto& [sha, account] : pipeline.lossAccounts()) {
      EXPECT_EQ(account.lost, 0u) << sha;
      EXPECT_EQ(account.uniqueDelivered, 5u) << sha;
    }
  }
  accumulator.finish();
  EXPECT_EQ(study.totals().appCount, kRuns);
}

}  // namespace
}  // namespace libspector::ingest
