// End-to-end acceptance of the streaming ingest tier: real emulator runs
// whose framed supervisor datagrams cross a seeded lossy/duplicating/
// reordering channel into an IngestPipeline. The pipeline must account the
// channel's damage *exactly* per apk, and attribution of what was delivered
// must match the batch pipeline run over the same delivered reports.
#include "ingest/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/attribution.hpp"
#include "ingest/chaos.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "store/generator.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::ingest {
namespace {

class IngestPipelineTest : public ::testing::Test {
 protected:
  IngestPipelineTest()
      : generator_(storeConfig()),
        corpus_(radar::LibraryCorpus::builtin()),
        categorizer_(vtsim::defaultVendorPanel(),
                     [this](const std::string& domain) {
                       return generator_.domainTruth(domain);
                     }),
        attributor_(corpus_, categorizer_) {}

  static store::StoreConfig storeConfig() {
    store::StoreConfig config;
    config.appCount = 8;
    config.seed = 42;
    config.methodScale = 0.05;
    return config;
  }

  core::RunArtifacts runApp(std::size_t index, ReportSink* collector) {
    orch::EmulatorConfig config;
    config.monkey.events = 80;
    config.monkey.throttleMs = 50;
    config.seed = 1000 + index;
    config.workerId = static_cast<std::uint32_t>(index);
    orch::EmulatorInstance emulator(generator_.farm(), collector, config);
    const auto job = generator_.makeJob(index);
    return emulator.run(job.apk, job.program);
  }

  store::AppStoreGenerator generator_;
  radar::LibraryCorpus corpus_;
  vtsim::DomainCategorizer categorizer_;
  core::TrafficAttributor attributor_;
};

TEST_F(IngestPipelineTest, AccountsAFaultyChannelExactlyPerApk) {
  IngestConfig ingestConfig;
  ingestConfig.shards = 3;
  IngestPipeline pipeline(ingestConfig,
                          [this](const core::RunArtifacts& artifacts) {
                            return attributor_.attribute(artifacts);
                          });
  ChaosConfig chaosConfig;
  chaosConfig.lossProb = 0.05;
  chaosConfig.dupProb = 0.05;
  chaosConfig.reorderWindow = 4;
  chaosConfig.seed = 7;
  ChaosChannel chaos(pipeline, chaosConfig);

  struct Expected {
    std::string sha;
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
  };
  std::vector<Expected> expected;
  std::uint64_t totalEmitted = 0;

  for (std::size_t i = 0; i < generator_.appCount(); ++i) {
    const std::uint64_t droppedBefore = chaos.dropped();
    const std::uint64_t duplicatedBefore = chaos.duplicated();
    auto artifacts = runApp(i, &chaos);
    chaos.flush();  // release anything still in the reorder buffer
    Expected e;
    e.sha = artifacts.apkSha256;
    e.emitted = artifacts.reportsEmitted;
    e.dropped = chaos.dropped() - droppedBefore;
    e.duplicated = chaos.duplicated() - duplicatedBefore;
    totalEmitted += e.emitted;
    expected.push_back(e);
    pipeline.submitRun(i, std::move(artifacts));
    pipeline.drain();  // finalize before the next run reuses the channel
  }

  const auto accounts = pipeline.lossAccounts();
  ASSERT_EQ(accounts.size(), expected.size());
  std::uint64_t totalLost = 0;
  bool anyDamage = false;
  for (const auto& e : expected) {
    ASSERT_TRUE(accounts.contains(e.sha)) << e.sha;
    const auto& account = accounts.at(e.sha);
    // The chaos channel's per-run counter deltas are ground truth; the
    // ingest tier must reconstruct them exactly from the wire.
    EXPECT_EQ(account.reportsEmitted, e.emitted) << e.sha;
    EXPECT_EQ(account.lost, e.dropped) << e.sha;
    EXPECT_EQ(account.duplicated, e.duplicated) << e.sha;
    EXPECT_EQ(account.uniqueDelivered, e.emitted - e.dropped) << e.sha;
    totalLost += account.lost;
    anyDamage = anyDamage || account.lost + account.duplicated +
                                 account.outOfOrder > 0;
  }
  EXPECT_TRUE(anyDamage) << "chaos config injected no faults; test is vacuous";

  const auto metrics = pipeline.metrics();
  EXPECT_EQ(metrics.runsCompleted, expected.size());
  EXPECT_EQ(metrics.reportsLost, totalLost);
  EXPECT_EQ(metrics.reportsDelivered, totalEmitted - totalLost);
}

TEST_F(IngestPipelineTest, StreamingAttributionMatchesBatchOverDeliveredReports) {
  // Streaming side: runs fold through the pipeline into an order-restoring
  // accumulator; the fold hook captures each run's post-delivery artifacts.
  core::StudyAggregator streaming;
  std::vector<core::RunArtifacts> delivered;
  core::StudyAccumulator accumulator(
      streaming, [&delivered](core::RunArtifacts&& artifacts) {
        delivered.push_back(std::move(artifacts));
      });
  IngestConfig ingestConfig;
  ingestConfig.shards = 2;
  const auto attribute = [this](const core::RunArtifacts& artifacts) {
    return attributor_.attribute(artifacts);
  };

  {
    IngestPipeline pipeline(ingestConfig, attribute, &accumulator);
    ChaosConfig chaosConfig;
    chaosConfig.lossProb = 0.05;
    chaosConfig.dupProb = 0.05;
    chaosConfig.reorderWindow = 4;
    chaosConfig.seed = 11;
    ChaosChannel chaos(pipeline, chaosConfig);
    for (std::size_t i = 0; i < generator_.appCount(); ++i) {
      auto artifacts = runApp(i, &chaos);
      chaos.flush();
      pipeline.submitRun(i, std::move(artifacts));
      pipeline.drain();
    }
  }
  accumulator.finish();
  ASSERT_EQ(delivered.size(), generator_.appCount());

  // Batch side: the classic offline pass over exactly those artifacts.
  core::StudyAggregator batch;
  for (const auto& artifacts : delivered)
    batch.addApp(artifacts, attributor_.attribute(artifacts));

  EXPECT_EQ(streaming.totals().totalBytes, batch.totals().totalBytes);
  EXPECT_EQ(streaming.totals().flowCount, batch.totals().flowCount);
  EXPECT_EQ(streaming.totals().unattributedBytes,
            batch.totals().unattributedBytes);
  EXPECT_EQ(streaming.transferByLibCategory(), batch.transferByLibCategory());
}

TEST_F(IngestPipelineTest, PublishesRollingTotalsAfterEveryRun) {
  IngestConfig ingestConfig;
  ingestConfig.shards = 1;
  IngestPipeline pipeline(ingestConfig,
                          [this](const core::RunArtifacts& artifacts) {
                            return attributor_.attribute(artifacts);
                          });

  std::uint64_t lastRuns = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    auto artifacts = runApp(i, &pipeline);
    pipeline.submitRun(i, std::move(artifacts));
    pipeline.drain();
    const auto rolling = pipeline.rollingTotals();
    EXPECT_EQ(rolling.runsFolded, lastRuns + 1);  // grows run by run
    lastRuns = rolling.runsFolded;
  }
  const auto rolling = pipeline.rollingTotals();
  EXPECT_EQ(rolling.runsFolded, 4u);
  EXPECT_EQ(rolling.bytesByApp.size(), 4u);
  EXPECT_GT(rolling.flowCount, 0u);
  EXPECT_GT(rolling.attributedBytes, 0u);
  // Zero loss: every reported socket keeps its context.
  EXPECT_EQ(rolling.unattributedBytes, 0u);
  std::uint64_t byLibrary = 0;
  for (const auto& [library, bytes] : rolling.bytesByLibrary)
    byLibrary += bytes;
  EXPECT_EQ(byLibrary, rolling.attributedBytes);
}

}  // namespace
}  // namespace libspector::ingest
