// v3 dictionary frames through ShardedIngest: under seeded loss /
// duplication / reordering the dictionary path must deliver the same run —
// reports and loss account — as the self-contained v1 framing, with holes
// (frames whose defining datagram is lost or late) healed by later defs or
// by the finalize-time repair from the locally recorded report list, and
// every unhealable hole counted, never silently dropped.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ingest/chaos.hpp"
#include "ingest/router.hpp"

namespace libspector::ingest {
namespace {

const std::vector<std::string>& signaturePool() {
  static const std::vector<std::string> kPool = {
      "java.net.Socket.connect",
      "com.android.okhttp.internal.Platform.connectSocket",
      "Lcom/unity3d/ads/android/cache/b;->a(Ljava/lang/String;)V",
      "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/String;)V",
      "Lcom/google/ads/internal/c;->run()V",
      "Lcom/flurry/android/monolithic/sdk/impl/ado;->a(Ljava/lang/Runnable;)V",
      "android.os.AsyncTask$2.call",
      "java.util.concurrent.FutureTask.run"};
  return kPool;
}

/// Report `seq` of a run: a 4-deep stack sliding over the signature pool,
/// so consecutive frames share most — but not all — of the dictionary.
core::UdpReport runReport(const std::string& sha, std::uint64_t seq) {
  core::UdpReport report;
  report.apkSha256 = sha;
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15),
                        static_cast<std::uint16_t>(40000 + seq)},
                       {net::Ipv4Addr(198, 18, 0, 1), 443}};
  report.timestampMs = seq;
  const auto& pool = signaturePool();
  for (std::uint64_t i = 0; i < 4; ++i)
    report.stackSignatures.push_back(pool[(seq + i) % pool.size()]);
  return report;
}

/// The run-completion artifacts. `withLocalReports` mirrors the emulator's
/// locally recorded (complete, send-ordered) report list.
core::RunArtifacts artifactsFor(const std::string& sha, std::uint64_t emitted,
                                bool withLocalReports) {
  core::RunArtifacts artifacts;
  artifacts.apkSha256 = sha;
  artifacts.packageName = "com.app." + sha;
  artifacts.reportsEmitted = emitted;
  if (withLocalReports)
    for (std::uint64_t seq = 0; seq < emitted; ++seq)
      artifacts.reports.push_back(runReport(sha, seq));
  return artifacts;
}

struct ChaosOutcome {
  std::vector<RunDelivery> deliveries;
  IngestMetrics metrics;
};

/// One run of `count` reports pushed through a seeded ChaosChannel into a
/// single-shard ingest, framed v1 or v3. Identical chaos seeds make the
/// loss/dup/reorder schedule identical across the two framings — the
/// channel draws once per submitted datagram, in submission order.
ChaosOutcome runUnderChaos(bool dictionary, const ChaosConfig& chaosConfig,
                           std::uint64_t count) {
  ChaosOutcome outcome;
  IngestConfig config;
  config.shards = 1;
  ShardedIngest ingest(config, [&](RunDelivery&& delivery) {
    outcome.deliveries.push_back(std::move(delivery));
  });
  {
    ChaosChannel chaos(ingest, chaosConfig);
    core::DictFrameEncoder encoder(7);
    for (std::uint64_t seq = 0; seq < count; ++seq) {
      const core::UdpReport report = runReport("chaotic", seq);
      chaos.submitDatagram(dictionary
                               ? encoder.encode(seq, report)
                               : core::ReportFrame{7, seq, report}.encode());
    }
    chaos.flush();
  }
  ingest.submitRun(0, artifactsFor("chaotic", count, true));
  ingest.drain();
  outcome.metrics = ingest.metrics();
  return outcome;
}

TEST(IngestDictTest, V3DeliversTheSameRunAsV1UnderChaos) {
  const ChaosConfig schedules[] = {
      {.lossProb = 0.0, .dupProb = 0.0, .reorderWindow = 0, .seed = 1},
      {.lossProb = 0.3, .dupProb = 0.0, .reorderWindow = 0, .seed = 42},
      {.lossProb = 0.0, .dupProb = 0.4, .reorderWindow = 0, .seed = 7},
      {.lossProb = 0.0, .dupProb = 0.0, .reorderWindow = 6, .seed = 9},
      {.lossProb = 0.25, .dupProb = 0.25, .reorderWindow = 5, .seed = 99},
  };
  for (const auto& schedule : schedules) {
    const auto v1 = runUnderChaos(false, schedule, 40);
    const auto v3 = runUnderChaos(true, schedule, 40);
    ASSERT_EQ(v1.deliveries.size(), 1u);
    ASSERT_EQ(v3.deliveries.size(), 1u);
    EXPECT_EQ(v3.deliveries[0].artifacts.reports,
              v1.deliveries[0].artifacts.reports)
        << "loss=" << schedule.lossProb << " dup=" << schedule.dupProb
        << " reorder=" << schedule.reorderWindow;
    EXPECT_EQ(v3.deliveries[0].account, v1.deliveries[0].account)
        << "loss=" << schedule.lossProb << " dup=" << schedule.dupProb
        << " reorder=" << schedule.reorderWindow;
    // Every hole the schedule opened was healed or counted, never leaked.
    EXPECT_EQ(v3.metrics.dictHoles,
              v3.metrics.dictRepaired + v3.metrics.dictDropped);
  }
}

TEST(IngestDictTest, ZeroChaosV3RunIsLossless) {
  const ChaosConfig clean{.lossProb = 0, .dupProb = 0, .reorderWindow = 0};
  const auto outcome = runUnderChaos(true, clean, 25);
  ASSERT_EQ(outcome.deliveries.size(), 1u);
  const auto& account = outcome.deliveries[0].account;
  EXPECT_EQ(account.uniqueDelivered, 25u);
  EXPECT_EQ(account.lost, 0u);
  EXPECT_EQ(outcome.metrics.dictFrames, 25u);
  EXPECT_EQ(outcome.metrics.dictHoles, 0u);
  // With zero loss the delivered set is the emulator's local list exactly.
  EXPECT_EQ(outcome.deliveries[0].artifacts.reports,
            artifactsFor("chaotic", 25, true).reports);
}

TEST(IngestDictTest, LateDefinitionHealsAParkedFrame) {
  std::vector<RunDelivery> deliveries;
  IngestConfig config;
  config.shards = 1;
  ShardedIngest ingest(config, [&](RunDelivery&& delivery) {
    deliveries.push_back(std::move(delivery));
  });

  core::DictFrameEncoder encoder(7);
  const auto defining = encoder.encode(0, runReport("heal", 0));
  const auto dependent = encoder.encode(1, runReport("heal", 1));

  // The dependent frame arrives first: three of its four signature ids are
  // defined only in frame 0, so it parks as a hole.
  ingest.submitDatagram(dependent);
  ingest.drain();
  EXPECT_EQ(ingest.metrics().dictHoles, 1u);
  EXPECT_EQ(ingest.metrics().dictRepaired, 0u);

  // The late defining frame resolves it.
  ingest.submitDatagram(defining);
  ingest.drain();
  EXPECT_EQ(ingest.metrics().dictRepaired, 1u);

  ingest.submitRun(0, artifactsFor("heal", 2, false));
  ingest.drain();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].account.uniqueDelivered, 2u);
  EXPECT_EQ(deliveries[0].account.lost, 0u);
  EXPECT_EQ(deliveries[0].account.outOfOrder, 1u);
  const std::vector<core::UdpReport> expected = {runReport("heal", 0),
                                                 runReport("heal", 1)};
  EXPECT_EQ(deliveries[0].artifacts.reports, expected);
}

TEST(IngestDictTest, FinalizeRepairsHolesFromTheCompleteLocalList) {
  std::vector<RunDelivery> deliveries;
  IngestConfig config;
  config.shards = 1;
  ShardedIngest ingest(config, [&](RunDelivery&& delivery) {
    deliveries.push_back(std::move(delivery));
  });

  // The defining frame is lost outright; only the dependent one arrives.
  core::DictFrameEncoder encoder(7);
  (void)encoder.encode(0, runReport("repair", 0));  // "lost" on the wire
  ingest.submitDatagram(encoder.encode(1, runReport("repair", 1)));

  // The run completes with the emulator's complete local list: the hole's
  // stack is recovered from reports[sequence] after metadata verification.
  ingest.submitRun(0, artifactsFor("repair", 2, true));
  ingest.drain();

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(ingest.metrics().dictRepaired, 1u);
  EXPECT_EQ(ingest.metrics().dictDropped, 0u);
  // Frame 1 was delivered (and repaired); frame 0 is honest channel loss.
  EXPECT_EQ(deliveries[0].account.uniqueDelivered, 1u);
  EXPECT_EQ(deliveries[0].account.lost, 1u);
  const std::vector<core::UdpReport> expected = {runReport("repair", 1)};
  EXPECT_EQ(deliveries[0].artifacts.reports, expected);
}

TEST(IngestDictTest, UnrepairableHoleIsDroppedAndCountedLost) {
  std::vector<RunDelivery> deliveries;
  IngestConfig config;
  config.shards = 1;
  ShardedIngest ingest(config, [&](RunDelivery&& delivery) {
    deliveries.push_back(std::move(delivery));
  });

  core::DictFrameEncoder encoder(7);
  (void)encoder.encode(0, runReport("drop", 0));
  ingest.submitDatagram(encoder.encode(1, runReport("drop", 1)));

  // The local list is incomplete (the local sink is lossy too), so the
  // hole cannot be verified against anything — it must be dropped and the
  // account must charge it as loss rather than invent a stack.
  ingest.submitRun(0, artifactsFor("drop", 2, false));
  ingest.drain();

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(ingest.metrics().dictDropped, 1u);
  EXPECT_EQ(ingest.metrics().dictRepaired, 0u);
  EXPECT_EQ(deliveries[0].account.framesDelivered, 1u);
  EXPECT_EQ(deliveries[0].account.uniqueDelivered, 0u);
  EXPECT_EQ(deliveries[0].account.lost, 2u);
  EXPECT_TRUE(deliveries[0].artifacts.reports.empty());
}

TEST(IngestDictTest, DuplicateDatagramsOfDictFramesAreCountedOnce) {
  std::vector<RunDelivery> deliveries;
  IngestConfig config;
  config.shards = 1;
  ShardedIngest ingest(config, [&](RunDelivery&& delivery) {
    deliveries.push_back(std::move(delivery));
  });

  core::DictFrameEncoder encoder(7);
  const auto first = encoder.encode(0, runReport("dup", 0));
  const auto second = encoder.encode(1, runReport("dup", 1));
  ingest.submitDatagram(first);
  ingest.submitDatagram(first);
  ingest.submitDatagram(second);
  ingest.submitDatagram(second);
  ingest.submitRun(0, artifactsFor("dup", 2, false));
  ingest.drain();

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].account.framesDelivered, 4u);
  EXPECT_EQ(deliveries[0].account.uniqueDelivered, 2u);
  EXPECT_EQ(deliveries[0].account.duplicated, 2u);
  EXPECT_EQ(deliveries[0].account.lost, 0u);
}

TEST(IngestDictTest, MetricsJsonCarriesDictionaryCounters) {
  IngestConfig config;
  config.shards = 1;
  ShardedIngest ingest(config);
  core::DictFrameEncoder encoder(7);
  ingest.submitDatagram(encoder.encode(1, runReport("json", 1)));
  ingest.drain();
  const std::string json = ingest.metrics().toJson();
  EXPECT_NE(json.find("\"dict_frames\""), std::string::npos);
  EXPECT_NE(json.find("\"dict_holes\""), std::string::npos);
  EXPECT_NE(json.find("\"dict_repaired\""), std::string::npos);
  EXPECT_NE(json.find("\"dict_dropped\""), std::string::npos);
}

}  // namespace
}  // namespace libspector::ingest
