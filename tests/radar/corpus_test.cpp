#include "radar/corpus.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace libspector::radar {
namespace {

// The corpus from Listing 2 of the paper.
LibraryCorpus listing2Corpus() {
  LibraryCorpus corpus;
  corpus.add("com.unity3d", "Game Engine");
  corpus.add("com.unity3d.ads", "Advertisement");
  corpus.add("com.unity3d.plugin.downloader", "App Market");
  corpus.add("com.unity3d.services", "Game Engine");
  return corpus;
}

TEST(CorpusTest, ExactLookup) {
  const auto corpus = listing2Corpus();
  ASSERT_NE(corpus.categoryOf("com.unity3d.ads"), nullptr);
  EXPECT_EQ(*corpus.categoryOf("com.unity3d.ads"), "Advertisement");
  EXPECT_EQ(corpus.categoryOf("com.unknown"), nullptr);
}

TEST(CorpusTest, FirstCategoryWinsOnReAdd) {
  LibraryCorpus corpus;
  corpus.add("com.foo", "Utility");
  corpus.add("com.foo", "Advertisement");
  EXPECT_EQ(*corpus.categoryOf("com.foo"), "Utility");
  EXPECT_EQ(corpus.size(), 1u);
}

TEST(CorpusTest, LongestMatchingPrefix) {
  const auto corpus = listing2Corpus();
  EXPECT_EQ(corpus.longestMatchingPrefix("com.unity3d.ads.android.cache"),
            "com.unity3d.ads");
  EXPECT_EQ(corpus.longestMatchingPrefix("com.unity3d.example"), "com.unity3d");
  EXPECT_EQ(corpus.longestMatchingPrefix("com.unity3d"), "com.unity3d");
  EXPECT_FALSE(corpus.longestMatchingPrefix("com.facebook.ads").has_value());
  // Boundary: com.unity3dx must not match com.unity3d.
  EXPECT_FALSE(corpus.longestMatchingPrefix("com.unity3dx.foo").has_value());
}

TEST(CorpusTest, Listing2ExampleVotes) {
  // [Predicted] com.unity3d.example -> {Game Engine:2, Advertisement:1,
  //  App Market:1} -> Game Engine
  const auto corpus = listing2Corpus();
  const auto prediction = corpus.predictCategory("com.unity3d.example");
  EXPECT_EQ(prediction.category, "Game Engine");
  EXPECT_EQ(prediction.matchedPrefix, "com.unity3d");
  EXPECT_EQ(prediction.votes.at("Game Engine"), 2);
  EXPECT_EQ(prediction.votes.at("Advertisement"), 1);
  EXPECT_EQ(prediction.votes.at("App Market"), 1);
}

TEST(CorpusTest, Listing2SecondExample) {
  // [Predicted] com.unity3d.ads.android.cache -> {Advertisement:1}
  //  -> Advertisement (longest prefix com.unity3d.ads, only matching lib).
  const auto corpus = listing2Corpus();
  const auto prediction = corpus.predictCategory("com.unity3d.ads.android.cache");
  EXPECT_EQ(prediction.category, "Advertisement");
  EXPECT_EQ(prediction.matchedPrefix, "com.unity3d.ads");
  EXPECT_EQ(prediction.votes.size(), 1u);
  EXPECT_EQ(prediction.votes.at("Advertisement"), 1);
}

TEST(CorpusTest, UnknownPackagePredictsUnknown) {
  const auto corpus = listing2Corpus();
  const auto prediction = corpus.predictCategory("com.firstparty.app.net");
  EXPECT_EQ(prediction.category, kUnknownCategory);
  EXPECT_TRUE(prediction.votes.empty());
  EXPECT_TRUE(prediction.matchedPrefix.empty());
}

TEST(CorpusTest, EntriesUnderExcludesRawPrefixCousins) {
  LibraryCorpus corpus;
  corpus.add("com.foo", "Utility");
  corpus.add("com.foo.bar", "Utility");
  corpus.add("com.fooz", "Advertisement");  // shares raw prefix only
  const auto under = corpus.entriesUnder("com.foo");
  ASSERT_EQ(under.size(), 2u);
  EXPECT_EQ(under[0].prefix, "com.foo");
  EXPECT_EQ(under[1].prefix, "com.foo.bar");
}

TEST(CorpusTest, TiesBreakLexicographically) {
  LibraryCorpus corpus;
  corpus.add("com.x.a", "Utility");
  corpus.add("com.x.b", "Advertisement");
  corpus.add("com.x", "Payment");
  const auto prediction = corpus.predictCategory("com.x.example");
  // 1 vote each; lexicographically smallest category wins deterministically.
  EXPECT_EQ(prediction.category, "Advertisement");
}

TEST(CorpusTest, ElectionsTrackInterleavedAdds) {
  // The per-prefix vote tallies are maintained incrementally by add();
  // every insertion order must yield the same predictions as a range scan.
  LibraryCorpus corpus;
  corpus.add("com.y.ads", "Advertisement");
  EXPECT_EQ(corpus.predictCategory("com.y.ads.sdk").category, "Advertisement");

  corpus.add("com.y", "Game Engine");  // parent after child: scans under itself
  EXPECT_EQ(corpus.predictCategory("com.y.example").matchedPrefix, "com.y");
  EXPECT_EQ(corpus.predictCategory("com.y.example").votes.at("Advertisement"), 1);
  EXPECT_EQ(corpus.predictCategory("com.y.example").votes.at("Game Engine"), 1);

  corpus.add("com.y.engine", "Game Engine");  // child after parent: votes up
  EXPECT_EQ(corpus.predictCategory("com.y.example").category, "Game Engine");
  EXPECT_EQ(corpus.predictCategory("com.y.example").votes.at("Game Engine"), 2);

  // Re-adding an existing prefix keeps the first category and adds no vote.
  corpus.add("com.y.engine", "Advertisement");
  EXPECT_EQ(corpus.predictCategory("com.y.example").votes.at("Game Engine"), 2);
  EXPECT_EQ(corpus.predictCategory("com.y.example").votes.at("Advertisement"), 1);
}

TEST(CorpusTest, DetectFindsBundledLibraries) {
  const auto corpus = listing2Corpus();
  dex::ApkFile apk;
  dex::DexFile dexFile;
  dex::ClassDef adsClass;
  adsClass.dottedName = "com.unity3d.ads.android.cache.b";
  adsClass.methods = {{"Lcom/unity3d/ads/android/cache/b;->a()V"}};
  dex::ClassDef appClass;
  appClass.dottedName = "com.myapp.Main";
  appClass.methods = {{"Lcom/myapp/Main;->onCreate()V"}};
  dexFile.classes = {adsClass, appClass};
  apk.dexFiles.push_back(dexFile);

  const auto detected = corpus.detect(apk);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0].prefix, "com.unity3d.ads");
  EXPECT_EQ(detected[0].category, "Advertisement");
}

TEST(CorpusTest, MatchCategoryAgreesWithPredictCategory) {
  // matchCategory is the zero-allocation hot-path view of predictCategory;
  // the two must answer identically everywhere, including ties, unknowns
  // and near-prefix boundaries.
  const auto corpus = listing2Corpus();
  const std::vector<std::string> packages = {
      "com.unity3d.example",
      "com.unity3d.ads.android.cache",
      "com.unity3d",
      "com.unity3d.ads",
      "com.unity3dx.foo",
      "com.firstparty.app.net",
      "com",
      "",
  };
  for (const std::string& package : packages) {
    const CategoryMatch match = corpus.matchCategory(package);
    const CategoryPrediction prediction = corpus.predictCategory(package);
    EXPECT_EQ(match.category, prediction.category) << package;
    EXPECT_EQ(match.matchedPrefix, prediction.matchedPrefix) << package;
    if (match.votes != nullptr) {
      EXPECT_EQ(*match.votes, prediction.votes) << package;
    } else {
      EXPECT_TRUE(prediction.votes.empty()) << package;
    }
  }
}

TEST(CorpusTest, ElectionViewsMirrorPredictions) {
  // electionViews() exposes the precomputed per-prefix elections (the
  // AttributionProgram compilation input): one per corpus prefix, sorted,
  // each winner exactly what a query at that prefix predicts.
  const auto corpus = listing2Corpus();
  const auto views = corpus.electionViews();
  ASSERT_EQ(views.size(), corpus.size());
  for (std::size_t i = 1; i < views.size(); ++i)
    EXPECT_LT(views[i - 1].prefix, views[i].prefix);
  for (const auto& view : views) {
    const auto prediction = corpus.predictCategory(std::string(view.prefix));
    EXPECT_EQ(view.winner, prediction.category) << view.prefix;
    ASSERT_NE(view.votes, nullptr) << view.prefix;
    EXPECT_EQ(*view.votes, prediction.votes) << view.prefix;
  }
}

TEST(CorpusTest, DetectMatchesPerClassPredictions) {
  // detect() answers from the precomputed elections; it must agree with
  // predicting each class package individually, and a near-prefix class
  // ("com.unity3dx...") must not surface the "com.unity3d" entries.
  const auto corpus = listing2Corpus();
  dex::ApkFile apk;
  dex::DexFile dexFile;
  for (const std::string& name :
       {std::string("com.unity3d.ads.android.cache.b"),
        std::string("com.unity3d.services.core.a"),
        std::string("com.unity3dx.fake.Widget"),
        std::string("com.myapp.Main")}) {
    dex::ClassDef classDef;
    classDef.dottedName = name;
    dexFile.classes.push_back(classDef);
  }
  apk.dexFiles.push_back(dexFile);

  const auto detected = corpus.detect(apk);
  ASSERT_EQ(detected.size(), 2u);
  EXPECT_EQ(detected[0].prefix, "com.unity3d.ads");
  EXPECT_EQ(detected[0].category, "Advertisement");
  EXPECT_EQ(detected[1].prefix, "com.unity3d.services");
  EXPECT_EQ(detected[1].category, "Game Engine");
  for (const auto& entry : detected) {
    const std::string* exact = corpus.categoryOf(entry.prefix);
    ASSERT_NE(exact, nullptr) << entry.prefix;
    EXPECT_EQ(*exact, entry.category) << entry.prefix;
  }
}

TEST(CorpusTest, BuiltinCorpusSanity) {
  const auto corpus = LibraryCorpus::builtin();
  EXPECT_GT(corpus.size(), 100u);
  // Spot-check categories against Fig. 2's taxonomy.
  EXPECT_EQ(*corpus.categoryOf("com.unity3d.ads"), "Advertisement");
  EXPECT_EQ(*corpus.categoryOf("com.unity3d.player"), "Game Engine");
  EXPECT_EQ(*corpus.categoryOf("com.android.volley"), "Development Aid");
  // Every category used is from the canonical list.
  const auto& valid = libraryCategories();
  for (const auto& entry : corpus.entriesUnder("com")) {
    EXPECT_NE(std::find(valid.begin(), valid.end(), entry.category), valid.end())
        << entry.prefix << " -> " << entry.category;
  }
}

TEST(CorpusTest, BuiltinReproducesListing1Attribution) {
  const auto corpus = LibraryCorpus::builtin();
  const auto prediction = corpus.predictCategory("com.unity3d.ads.android.cache");
  EXPECT_EQ(prediction.category, "Advertisement");
}

TEST(CorpusTest, CategoriesListHasThirteenEntries) {
  EXPECT_EQ(libraryCategories().size(), 13u);  // Fig. 2 legend
}

TEST(CorpusTest, CsvRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/corpus_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + ".csv";
  const auto original = listing2Corpus();
  original.saveCsv(path);
  const auto loaded = LibraryCorpus::loadCsv(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(*loaded.categoryOf("com.unity3d.ads"), "Advertisement");
  EXPECT_EQ(loaded.predictCategory("com.unity3d.example").category,
            "Game Engine");
}

TEST(CorpusTest, CsvLoaderRejectsGarbage) {
  const std::string path =
      ::testing::TempDir() + "/corpus_bad_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + ".csv";
  {
    std::ofstream out(path);
    out << "# comment is fine\ncom.ok,Utility\nno-comma-line\n";
  }
  EXPECT_THROW((void)LibraryCorpus::loadCsv(path), std::runtime_error);
  EXPECT_THROW((void)LibraryCorpus::loadCsv("/nonexistent/corpus.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace libspector::radar
