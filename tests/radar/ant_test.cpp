#include "radar/ant.hpp"

#include <gtest/gtest.h>

namespace libspector::radar {
namespace {

TEST(PrefixListTest, HierarchicalSemantics) {
  const PrefixList list({"com.mopub", "okhttp3"});
  EXPECT_TRUE(list.matches("com.mopub"));
  EXPECT_TRUE(list.matches("com.mopub.mobileads"));
  EXPECT_FALSE(list.matches("com.mopubx"));
  EXPECT_FALSE(list.matches("com"));
  EXPECT_TRUE(list.matches("okhttp3.internal.http"));
  EXPECT_FALSE(list.matches(""));
}

TEST(AntListTest, KnownAdNetworksMatch) {
  const auto& list = antLibraries();
  EXPECT_TRUE(list.matches("com.google.android.gms.ads.internal"));
  EXPECT_TRUE(list.matches("com.unity3d.ads.android.cache"));
  EXPECT_TRUE(list.matches("com.vungle.publisher"));
  EXPECT_TRUE(list.matches("com.chartboost.sdk.impl"));
  EXPECT_TRUE(list.matches("com.flurry.sdk"));        // tracker side
  EXPECT_TRUE(list.matches("com.crashlytics.android.core"));
}

TEST(AntListTest, NonAntLibrariesDoNotMatch) {
  const auto& list = antLibraries();
  EXPECT_FALSE(list.matches("com.unity3d.player"));   // game engine, not ads
  EXPECT_FALSE(list.matches("okhttp3.internal.http"));
  EXPECT_FALSE(list.matches("com.squareup.picasso"));
  EXPECT_FALSE(list.matches("com.myapp.net"));
  // Critically: gms.common is not ads even though gms.ads is.
  EXPECT_FALSE(list.matches("com.google.android.gms.common"));
}

TEST(CommonListTest, Membership) {
  const auto& list = commonLibraries();
  EXPECT_TRUE(list.matches("okhttp3.internal.http"));
  EXPECT_TRUE(list.matches("com.squareup.picasso"));
  EXPECT_TRUE(list.matches("com.android.volley")) << "volley is common";
  EXPECT_FALSE(list.matches("com.mopub.mobileads"));
  EXPECT_FALSE(list.matches("com.randomdev.app"));
}

TEST(ListsTest, AreNonTrivial) {
  EXPECT_GT(antLibraries().size(), 20u);
  EXPECT_GT(commonLibraries().size(), 15u);
}

}  // namespace
}  // namespace libspector::radar
