#include "orch/dispatcher.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <vector>

namespace libspector::orch {
namespace {

class DispatcherTest : public ::testing::Test {
 protected:
  DispatcherTest() {
    net::EndpointProfile profile;
    profile.domain = "api.example.com";
    profile.trueCategory = "info_tech";
    farm_.addEndpoint(profile);
  }

  Dispatcher::Job jobFor(int index) {
    Dispatcher::Job job;
    job.apk.packageName = "com.app.n" + std::to_string(index);
    job.apk.appCategory = "TOOLS";
    rt::NetRequestAction request;
    request.domain = "api.example.com";
    const auto handler =
        job.program.addMethod("Lcom/app/H;->onClick()V", {request});
    job.program.uiHandlers.push_back(handler);
    dex::DexFile dexFile;
    dex::ClassDef cls;
    cls.dottedName = "com.app.H";
    cls.methods.push_back({job.program.methods[0].signature});
    dexFile.classes.push_back(cls);
    job.apk.dexFiles.push_back(dexFile);
    return job;
  }

  DispatcherConfig quickConfig(std::size_t workers) {
    DispatcherConfig config;
    config.workers = workers;
    config.emulator.monkey.events = 5;
    config.emulator.monkey.throttleMs = 10;
    return config;
  }

  net::ServerFarm farm_;
};

TEST_F(DispatcherTest, ProcessesEveryJobAcrossWorkers) {
  CollectionServer collector;
  Dispatcher dispatcher(farm_, &collector, quickConfig(4));

  constexpr int kJobs = 40;
  int next = 0;
  std::set<std::string> seenPackages;
  dispatcher.run(
      [&]() -> std::optional<Dispatcher::Job> {
        if (next >= kJobs) return std::nullopt;
        return jobFor(next++);
      },
      [&](core::RunArtifacts&& artifacts) {
        // Sink calls are serialized by the dispatcher: no lock needed.
        seenPackages.insert(artifacts.packageName);
      });

  EXPECT_EQ(dispatcher.appsProcessed(), static_cast<std::size_t>(kJobs));
  EXPECT_EQ(seenPackages.size(), static_cast<std::size_t>(kJobs));
}

TEST_F(DispatcherTest, SingleWorkerProcessesInOrder) {
  Dispatcher dispatcher(farm_, nullptr, quickConfig(1));
  int next = 0;
  std::vector<std::string> order;
  dispatcher.run(
      [&]() -> std::optional<Dispatcher::Job> {
        if (next >= 5) return std::nullopt;
        return jobFor(next++);
      },
      [&](core::RunArtifacts&& artifacts) { order.push_back(artifacts.packageName); });
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], "com.app.n" + std::to_string(i));
}

TEST_F(DispatcherTest, EmptySourceCompletesImmediately) {
  Dispatcher dispatcher(farm_, nullptr, quickConfig(4));
  dispatcher.run([]() -> std::optional<Dispatcher::Job> { return std::nullopt; },
                 [](core::RunArtifacts&&) { FAIL() << "no jobs expected"; });
  EXPECT_EQ(dispatcher.appsProcessed(), 0u);
}

TEST_F(DispatcherTest, RunIsRepeatable) {
  Dispatcher dispatcher(farm_, nullptr, quickConfig(2));
  for (int round = 0; round < 2; ++round) {
    int next = 0;
    dispatcher.run(
        [&]() -> std::optional<Dispatcher::Job> {
          if (next >= 3) return std::nullopt;
          return jobFor(next++);
        },
        [](core::RunArtifacts&&) {});
  }
  EXPECT_EQ(dispatcher.appsProcessed(), 6u);
}

TEST_F(DispatcherTest, ArtifactsIdenticalRegardlessOfWorkerCount) {
  // Per-app seeds derive from the job index, so parallelism must not change
  // any app's artifacts.
  std::map<std::string, std::string> capturesSerial;
  std::map<std::string, std::string> capturesParallel;
  const auto runWith = [&](std::size_t workers,
                           std::map<std::string, std::string>& out) {
    Dispatcher dispatcher(farm_, nullptr, quickConfig(workers));
    int next = 0;
    dispatcher.run(
        [&]() -> std::optional<Dispatcher::Job> {
          if (next >= 12) return std::nullopt;
          return jobFor(next++);
        },
        [&](core::RunArtifacts&& artifacts) {
          const auto bytes = artifacts.capture.serialize();
          out[artifacts.packageName] = std::string(bytes.begin(), bytes.end());
        });
  };
  runWith(1, capturesSerial);
  runWith(6, capturesParallel);
  EXPECT_EQ(capturesSerial, capturesParallel);
}

TEST_F(DispatcherTest, ConcurrentDeliveryTagsJobsWithPullOrderIndices) {
  CollectionServer collector;
  Dispatcher dispatcher(farm_, &collector, quickConfig(4));
  constexpr int kJobs = 24;
  int next = 0;
  std::mutex mutex;
  std::map<std::size_t, std::string> byIndex;
  dispatcher.runConcurrent(
      [&]() -> std::optional<Dispatcher::Job> {
        if (next >= kJobs) return std::nullopt;
        return jobFor(next++);
      },
      [&](std::size_t index, core::RunArtifacts&& artifacts) {
        // Concurrent sink: the dispatcher no longer serializes delivery.
        const std::scoped_lock lock(mutex);
        byIndex.emplace(index, artifacts.packageName);
      });
  ASSERT_EQ(byIndex.size(), static_cast<std::size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) {
    // Index i is assigned at the i-th source pull, which produced app i.
    EXPECT_EQ(byIndex.at(static_cast<std::size_t>(i)),
              "com.app.n" + std::to_string(i));
  }
}

TEST_F(DispatcherTest, ConcurrentFailureCallbackReportsTheIndex) {
  Dispatcher dispatcher(farm_, nullptr, quickConfig(3));
  int next = 0;
  std::mutex mutex;
  std::vector<std::size_t> delivered;
  std::vector<std::size_t> failed;
  dispatcher.runConcurrent(
      [&]() -> std::optional<Dispatcher::Job> {
        if (next >= 9) return std::nullopt;
        Dispatcher::Job job = jobFor(next);
        if (next == 4) job.program.uiHandlers = {9999};
        ++next;
        return job;
      },
      [&](std::size_t index, core::RunArtifacts&&) {
        const std::scoped_lock lock(mutex);
        delivered.push_back(index);
      },
      [&](std::size_t index, const Dispatcher::FailedJob& failure) {
        const std::scoped_lock lock(mutex);
        failed.push_back(index);
        EXPECT_EQ(failure.packageName, "com.app.n4");
      });
  EXPECT_EQ(delivered.size(), 8u);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], 4u);
}

TEST_F(DispatcherTest, StatsCountEveryJob) {
  Dispatcher dispatcher(farm_, nullptr, quickConfig(2));
  int next = 0;
  dispatcher.run(
      [&]() -> std::optional<Dispatcher::Job> {
        if (next >= 10) return std::nullopt;
        return jobFor(next++);
      },
      [](core::RunArtifacts&&) {});
  const auto stats = dispatcher.stats();
  EXPECT_EQ(stats.jobs, 10u);
  EXPECT_GT(stats.elapsedSeconds, 0.0);
  EXPECT_GT(stats.jobsPerSecond(), 0.0);
  EXPECT_GE(stats.jobMsMax, stats.jobMsMean());
  EXPECT_GE(stats.sinkMsMax, stats.sinkMsMean());
  EXPECT_GE(stats.sinkBlockedMsTotal, 0.0);
}

TEST_F(DispatcherTest, BrokenAppDoesNotKillTheFleet) {
  Dispatcher dispatcher(farm_, nullptr, quickConfig(3));
  int next = 0;
  int delivered = 0;
  dispatcher.run(
      [&]() -> std::optional<Dispatcher::Job> {
        if (next >= 9) return std::nullopt;
        Dispatcher::Job job = jobFor(next);
        if (next == 4) {
          // Corrupt program: the only handler references a method that
          // does not exist; the emulator run throws on the first event.
          job.program.uiHandlers = {9999};
        }
        ++next;
        return job;
      },
      [&](core::RunArtifacts&&) { ++delivered; });

  EXPECT_EQ(delivered, 8);
  EXPECT_EQ(dispatcher.appsProcessed(), 8u);
  ASSERT_EQ(dispatcher.failures().size(), 1u);
  EXPECT_EQ(dispatcher.failures()[0].packageName, "com.app.n4");
  EXPECT_FALSE(dispatcher.failures()[0].error.empty());
}

}  // namespace
}  // namespace libspector::orch
