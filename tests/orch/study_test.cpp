#include "orch/study.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <sstream>

#include "core/attribution.hpp"
#include "core/export.hpp"
#include "orch/database.hpp"
#include "radar/corpus.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::orch {
namespace {

StudyConfig smallConfig() {
  StudyConfig config;
  config.store.appCount = 25;
  config.store.seed = 5;
  config.store.methodScale = 0.05;
  config.dispatcher.emulator.monkey.events = 100;
  config.dispatcher.emulator.monkey.throttleMs = 50;
  return config;
}

TEST(StudyRunnerTest, OneCallProducesAFullStudy) {
  const auto output = runStudy(smallConfig());
  EXPECT_EQ(output.appsProcessed, 25u);
  EXPECT_EQ(output.appsFailed, 0u);
  EXPECT_GT(output.wallSeconds, 0.0);

  const auto totals = output.study.totals();
  EXPECT_EQ(totals.appCount, 25u);
  EXPECT_GT(totals.totalBytes, 0u);
  EXPECT_GT(totals.flowCount, 0u);
  // Every reported socket attributed: no blind spot without UDP loss.
  EXPECT_EQ(totals.unattributedBytes, 0u);
}

/// Render every figure dataset plus the markdown report into one string:
/// if two studies agree on all of it byte for byte, they are the same study
/// for every consumer this repository has.
std::string renderStudy(const core::StudyAggregator& study) {
  std::ostringstream out;
  core::writeFig2Csv(study, out);
  core::writeTopLibrariesCsv(study, 25, out);
  core::writeCdfCsv(study, out);
  core::writeFlowRatiosCsv(study, out);
  core::writeAntSharesCsv(study, out);
  core::writeCategoryAveragesCsv(study, out);
  core::writeHeatmapCsv(study, out);
  core::writeCoverageCsv(study, out);
  core::writeStudyReport(study, out);
  return out.str();
}

TEST(StudyRunnerTest, WorkerCountDoesNotChangeAByteOfTheStudy) {
  // Attribution now runs on the worker fleet; the accumulator must restore
  // dispatch order so a parallel study is indistinguishable from a
  // sequential one — completion order varies, output must not.
  auto serialConfig = smallConfig();
  serialConfig.dispatcher.workers = 1;
  auto parallelConfig = smallConfig();
  parallelConfig.dispatcher.workers = 4;

  const auto serial = runStudy(serialConfig);
  const auto parallel = runStudy(parallelConfig);
  EXPECT_EQ(serial.appsProcessed, parallel.appsProcessed);
  EXPECT_EQ(serial.study.totals().totalBytes, parallel.study.totals().totalBytes);
  EXPECT_EQ(renderStudy(serial.study), renderStudy(parallel.study));
}

TEST(StudyRunnerTest, ShardCountDoesNotChangeAByteOfTheStudy) {
  // runStudy is the batch pipeline re-expressed over streaming ingest: the
  // sharded router finalizes runs in arbitrary relative order, but the
  // order-restoring accumulator must keep the study byte-identical from
  // one shard to many.
  auto oneShard = smallConfig();
  oneShard.dispatcher.workers = 4;
  oneShard.ingest.shards = 1;
  auto manyShards = smallConfig();
  manyShards.dispatcher.workers = 4;
  manyShards.ingest.shards = 4;

  const auto narrow = runStudy(oneShard);
  const auto wide = runStudy(manyShards);
  EXPECT_EQ(narrow.ingestMetrics.shards, 1u);
  EXPECT_EQ(wide.ingestMetrics.shards, 4u);
  EXPECT_EQ(renderStudy(narrow.study), renderStudy(wide.study));
}

TEST(StudyRunnerTest, ColumnarFoldDoesNotChangeAByteOfTheStudy) {
  // The compiled attribution program and the columnar fold are pure
  // accelerations: the row-at-a-time FlowRecord fold through the reference
  // matchers is ground truth, and every flag combination at every fleet
  // width must reproduce it byte for byte.
  auto referenceConfig = smallConfig();
  referenceConfig.dispatcher.workers = 1;
  referenceConfig.attribution.columnarFold = false;
  referenceConfig.attribution.compileProgram = false;
  const std::string expected = renderStudy(runStudy(referenceConfig).study);

  for (const std::size_t workers : {std::size_t{0}, std::size_t{2}}) {
    auto config = smallConfig();  // both accelerations on (the default)
    config.dispatcher.workers = workers;
    EXPECT_EQ(renderStudy(runStudy(config).study), expected)
        << "workers=" << workers;
  }

  // The two flags are independent; each half-on combination must also
  // land on the reference bytes.
  auto columnarOnly = smallConfig();
  columnarOnly.dispatcher.workers = 8;
  columnarOnly.attribution.columnarFold = true;
  columnarOnly.attribution.compileProgram = false;
  EXPECT_EQ(renderStudy(runStudy(columnarOnly).study), expected);

  auto programOnly = smallConfig();
  programOnly.dispatcher.workers = 8;
  programOnly.attribution.columnarFold = false;
  programOnly.attribution.compileProgram = true;
  EXPECT_EQ(renderStudy(runStudy(programOnly).study), expected);
}

TEST(StudyRunnerTest, StreamingIngestMatchesTheInlineBatchPipeline) {
  // The ground-truth batch shape: attribute every run on the worker thread
  // and fold straight into the accumulator, no ingest tier involved. The
  // streaming study must reproduce it byte for byte when nothing is lost.
  const auto config = smallConfig();
  const store::AppStoreGenerator generator(config.store);

  static const radar::LibraryCorpus kCorpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&generator](const std::string& domain) {
        return generator.domainTruth(domain);
      });
  const core::TrafficAttributor attributor(kCorpus, categorizer);

  core::StudyAggregator batchStudy;
  core::StudyAccumulator accumulator(batchStudy);
  Dispatcher dispatcher(generator.farm(), nullptr, config.dispatcher);
  std::size_t next = 0;
  dispatcher.runConcurrent(
      [&]() -> std::optional<Dispatcher::Job> {
        if (next >= generator.appCount()) return std::nullopt;
        auto job = generator.makeJob(next++);
        return Dispatcher::Job{std::move(job.apk), std::move(job.program)};
      },
      [&](std::size_t index, core::RunArtifacts&& artifacts) {
        auto flows = attributor.attribute(artifacts);
        accumulator.add(index, std::move(artifacts), std::move(flows));
      },
      [&](std::size_t index, const Dispatcher::FailedJob&) {
        accumulator.skip(index);
      });
  accumulator.finish();

  const auto streaming = runStudy(generator, config.dispatcher);
  EXPECT_EQ(renderStudy(streaming.study), renderStudy(batchStudy));
}

TEST(StudyRunnerTest, SurfacesIngestMetrics) {
  const auto output = runStudy(smallConfig());
  const auto& metrics = output.ingestMetrics;
  EXPECT_GE(metrics.shards, 1u);
  EXPECT_EQ(metrics.runsCompleted, 25u);
  EXPECT_GT(metrics.datagramsReceived, 0u);
  EXPECT_EQ(metrics.datagramsMalformed, 0u);
  // The emulator's virtual router is lossless by default, and the framed
  // wire format proves it: exact accounting says nothing went missing.
  EXPECT_EQ(metrics.reportsLost, 0u);
  EXPECT_EQ(metrics.duplicated, 0u);
  EXPECT_EQ(metrics.framesFolded, metrics.datagramsReceived);
  std::uint64_t delivered = 0;
  for (const auto& shard : metrics.perShard)
    delivered += shard.reportsDelivered;
  EXPECT_EQ(delivered, metrics.reportsDelivered);
  const auto json = metrics.toJson();
  EXPECT_NE(json.find("\"reports_lost\": 0"), std::string::npos);
}

TEST(StudyRunnerTest, AccountsUdpLossExactly) {
  auto config = smallConfig();
  config.dispatcher.emulator.stack.udpLossProb = 0.3;
  const auto output = runStudy(config);
  const auto& metrics = output.ingestMetrics;
  // The stack dropped ~30% of report datagrams before the collection sink;
  // sender-side emitted counts ride the reliable artifact path, so the
  // ingest tier knows exactly how many vanished.
  EXPECT_GT(metrics.reportsLost, 0u);
  EXPECT_GT(metrics.reportsDelivered, 0u);
  EXPECT_EQ(metrics.framesFolded, metrics.datagramsReceived);
  // Lost context reports surface as unattributed traffic downstream.
  EXPECT_GT(output.study.totals().unattributedBytes, 0u);
}

TEST(StudyRunnerTest, ReportsDispatcherThroughput) {
  const auto output = runStudy(smallConfig());
  EXPECT_EQ(output.dispatcherStats.jobs, 25u);
  EXPECT_GT(output.dispatcherStats.elapsedSeconds, 0.0);
  EXPECT_GT(output.dispatcherStats.jobsPerSecond(), 0.0);
  EXPECT_GE(output.dispatcherStats.jobMsMax, output.dispatcherStats.jobMsMean());
  // The concurrent path never waits on a serialized sink lock.
  EXPECT_EQ(output.dispatcherStats.sinkBlockedMsTotal, 0.0);
}

TEST(StudyRunnerTest, DeterministicAcrossCalls) {
  const auto a = runStudy(smallConfig());
  const auto b = runStudy(smallConfig());
  EXPECT_EQ(a.study.totals().totalBytes, b.study.totals().totalBytes);
  EXPECT_EQ(a.study.transferByLibCategory(), b.study.transferByLibCategory());
}

TEST(StudyRunnerTest, PersistsArtifactsAndManifest) {
  auto config = smallConfig();
  config.artifactsDirectory =
      ::testing::TempDir() + "/spector_study_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  const auto output = runStudy(config);
  EXPECT_EQ(output.appsProcessed, 25u);

  ResultDatabase restored;
  EXPECT_EQ(restored.loadFromDirectory(config.artifactsDirectory).loaded, 25u);
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(config.artifactsDirectory) / "domains.csv"));
}

TEST(StudyRunnerTest, UdpReportLossLeavesUnattributedTraffic) {
  auto config = smallConfig();
  config.dispatcher.emulator.stack.udpLossProb = 0.3;
  const auto lossy = runStudy(config);
  const auto clean = runStudy(smallConfig());

  // With 30% of context reports lost, a substantial slice of the TCP
  // payload has no owning flow — the measurement's honest blind spot.
  EXPECT_GT(lossy.study.totals().unattributedBytes, 0u);
  const double lossyShare =
      static_cast<double>(lossy.study.totals().unattributedBytes) /
      static_cast<double>(lossy.study.totals().totalBytes +
                          lossy.study.totals().unattributedBytes);
  EXPECT_GT(lossyShare, 0.10);
  EXPECT_LT(lossyShare, 0.60);
  EXPECT_EQ(clean.study.totals().unattributedBytes, 0u);
}

}  // namespace
}  // namespace libspector::orch
