#include "orch/study.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "orch/database.hpp"

namespace libspector::orch {
namespace {

StudyConfig smallConfig() {
  StudyConfig config;
  config.store.appCount = 25;
  config.store.seed = 5;
  config.store.methodScale = 0.05;
  config.dispatcher.emulator.monkey.events = 100;
  config.dispatcher.emulator.monkey.throttleMs = 50;
  return config;
}

TEST(StudyRunnerTest, OneCallProducesAFullStudy) {
  const auto output = runStudy(smallConfig());
  EXPECT_EQ(output.appsProcessed, 25u);
  EXPECT_EQ(output.appsFailed, 0u);
  EXPECT_GT(output.wallSeconds, 0.0);

  const auto totals = output.study.totals();
  EXPECT_EQ(totals.appCount, 25u);
  EXPECT_GT(totals.totalBytes, 0u);
  EXPECT_GT(totals.flowCount, 0u);
  // Every reported socket attributed: no blind spot without UDP loss.
  EXPECT_EQ(totals.unattributedBytes, 0u);
}

TEST(StudyRunnerTest, DeterministicAcrossCalls) {
  const auto a = runStudy(smallConfig());
  const auto b = runStudy(smallConfig());
  EXPECT_EQ(a.study.totals().totalBytes, b.study.totals().totalBytes);
  EXPECT_EQ(a.study.transferByLibCategory(), b.study.transferByLibCategory());
}

TEST(StudyRunnerTest, PersistsArtifactsAndManifest) {
  auto config = smallConfig();
  config.artifactsDirectory =
      ::testing::TempDir() + "/spector_study_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  const auto output = runStudy(config);
  EXPECT_EQ(output.appsProcessed, 25u);

  ResultDatabase restored;
  EXPECT_EQ(restored.loadFromDirectory(config.artifactsDirectory), 25u);
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(config.artifactsDirectory) / "domains.csv"));
}

TEST(StudyRunnerTest, UdpReportLossLeavesUnattributedTraffic) {
  auto config = smallConfig();
  config.dispatcher.emulator.stack.udpLossProb = 0.3;
  const auto lossy = runStudy(config);
  const auto clean = runStudy(smallConfig());

  // With 30% of context reports lost, a substantial slice of the TCP
  // payload has no owning flow — the measurement's honest blind spot.
  EXPECT_GT(lossy.study.totals().unattributedBytes, 0u);
  const double lossyShare =
      static_cast<double>(lossy.study.totals().unattributedBytes) /
      static_cast<double>(lossy.study.totals().totalBytes +
                          lossy.study.totals().unattributedBytes);
  EXPECT_GT(lossyShare, 0.10);
  EXPECT_LT(lossyShare, 0.60);
  EXPECT_EQ(clean.study.totals().unattributedBytes, 0u);
}

}  // namespace
}  // namespace libspector::orch
