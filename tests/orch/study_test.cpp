#include "orch/study.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/export.hpp"
#include "orch/database.hpp"

namespace libspector::orch {
namespace {

StudyConfig smallConfig() {
  StudyConfig config;
  config.store.appCount = 25;
  config.store.seed = 5;
  config.store.methodScale = 0.05;
  config.dispatcher.emulator.monkey.events = 100;
  config.dispatcher.emulator.monkey.throttleMs = 50;
  return config;
}

TEST(StudyRunnerTest, OneCallProducesAFullStudy) {
  const auto output = runStudy(smallConfig());
  EXPECT_EQ(output.appsProcessed, 25u);
  EXPECT_EQ(output.appsFailed, 0u);
  EXPECT_GT(output.wallSeconds, 0.0);

  const auto totals = output.study.totals();
  EXPECT_EQ(totals.appCount, 25u);
  EXPECT_GT(totals.totalBytes, 0u);
  EXPECT_GT(totals.flowCount, 0u);
  // Every reported socket attributed: no blind spot without UDP loss.
  EXPECT_EQ(totals.unattributedBytes, 0u);
}

/// Render every figure dataset plus the markdown report into one string:
/// if two studies agree on all of it byte for byte, they are the same study
/// for every consumer this repository has.
std::string renderStudy(const core::StudyAggregator& study) {
  std::ostringstream out;
  core::writeFig2Csv(study, out);
  core::writeTopLibrariesCsv(study, 25, out);
  core::writeCdfCsv(study, out);
  core::writeFlowRatiosCsv(study, out);
  core::writeAntSharesCsv(study, out);
  core::writeCategoryAveragesCsv(study, out);
  core::writeHeatmapCsv(study, out);
  core::writeCoverageCsv(study, out);
  core::writeStudyReport(study, out);
  return out.str();
}

TEST(StudyRunnerTest, WorkerCountDoesNotChangeAByteOfTheStudy) {
  // Attribution now runs on the worker fleet; the accumulator must restore
  // dispatch order so a parallel study is indistinguishable from a
  // sequential one — completion order varies, output must not.
  auto serialConfig = smallConfig();
  serialConfig.dispatcher.workers = 1;
  auto parallelConfig = smallConfig();
  parallelConfig.dispatcher.workers = 4;

  const auto serial = runStudy(serialConfig);
  const auto parallel = runStudy(parallelConfig);
  EXPECT_EQ(serial.appsProcessed, parallel.appsProcessed);
  EXPECT_EQ(serial.study.totals().totalBytes, parallel.study.totals().totalBytes);
  EXPECT_EQ(renderStudy(serial.study), renderStudy(parallel.study));
}

TEST(StudyRunnerTest, ReportsDispatcherThroughput) {
  const auto output = runStudy(smallConfig());
  EXPECT_EQ(output.dispatcherStats.jobs, 25u);
  EXPECT_GT(output.dispatcherStats.elapsedSeconds, 0.0);
  EXPECT_GT(output.dispatcherStats.jobsPerSecond(), 0.0);
  EXPECT_GE(output.dispatcherStats.jobMsMax, output.dispatcherStats.jobMsMean());
  // The concurrent path never waits on a serialized sink lock.
  EXPECT_EQ(output.dispatcherStats.sinkBlockedMsTotal, 0.0);
}

TEST(StudyRunnerTest, DeterministicAcrossCalls) {
  const auto a = runStudy(smallConfig());
  const auto b = runStudy(smallConfig());
  EXPECT_EQ(a.study.totals().totalBytes, b.study.totals().totalBytes);
  EXPECT_EQ(a.study.transferByLibCategory(), b.study.transferByLibCategory());
}

TEST(StudyRunnerTest, PersistsArtifactsAndManifest) {
  auto config = smallConfig();
  config.artifactsDirectory =
      ::testing::TempDir() + "/spector_study_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  const auto output = runStudy(config);
  EXPECT_EQ(output.appsProcessed, 25u);

  ResultDatabase restored;
  EXPECT_EQ(restored.loadFromDirectory(config.artifactsDirectory), 25u);
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(config.artifactsDirectory) / "domains.csv"));
}

TEST(StudyRunnerTest, UdpReportLossLeavesUnattributedTraffic) {
  auto config = smallConfig();
  config.dispatcher.emulator.stack.udpLossProb = 0.3;
  const auto lossy = runStudy(config);
  const auto clean = runStudy(smallConfig());

  // With 30% of context reports lost, a substantial slice of the TCP
  // payload has no owning flow — the measurement's honest blind spot.
  EXPECT_GT(lossy.study.totals().unattributedBytes, 0u);
  const double lossyShare =
      static_cast<double>(lossy.study.totals().unattributedBytes) /
      static_cast<double>(lossy.study.totals().totalBytes +
                          lossy.study.totals().unattributedBytes);
  EXPECT_GT(lossyShare, 0.10);
  EXPECT_LT(lossyShare, 0.60);
  EXPECT_EQ(clean.study.totals().unattributedBytes, 0u);
}

}  // namespace
}  // namespace libspector::orch
