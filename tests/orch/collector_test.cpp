#include "orch/collector.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace libspector::orch {
namespace {

core::UdpReport sampleReport(const std::string& sha) {
  core::UdpReport report;
  report.apkSha256 = sha;
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15), 40000},
                       {net::Ipv4Addr(198, 18, 0, 1), 443}};
  report.timestampMs = 1234;
  report.stackSignatures = {"java.net.Socket.connect",
                            "Lcom/lib/b;->doInBackground()V"};
  return report;
}

TEST(CollectorTest, GroupsReportsBySha) {
  CollectionServer server;
  server.submitDatagram(sampleReport("aaa").encode());
  server.submitDatagram(sampleReport("aaa").encode());
  server.submitDatagram(sampleReport("bbb").encode());
  EXPECT_EQ(server.datagramsReceived(), 3u);
  EXPECT_EQ(server.datagramsDropped(), 0u);

  const auto forA = server.takeReports("aaa");
  ASSERT_EQ(forA.size(), 2u);
  EXPECT_EQ(forA[0].apkSha256, "aaa");
  EXPECT_EQ(forA[0].stackSignatures.size(), 2u);
  EXPECT_EQ(server.takeReports("bbb").size(), 1u);
}

TEST(CollectorTest, TakeRemovesReports) {
  CollectionServer server;
  server.submitDatagram(sampleReport("aaa").encode());
  EXPECT_EQ(server.takeReports("aaa").size(), 1u);
  EXPECT_TRUE(server.takeReports("aaa").empty());
}

TEST(CollectorTest, UnknownShaYieldsEmpty) {
  CollectionServer server;
  EXPECT_TRUE(server.takeReports("nothing").empty());
}

TEST(CollectorTest, MalformedDatagramsDroppedNotFatal) {
  CollectionServer server;
  const std::vector<std::uint8_t> garbage = {0x01, 0x02, 0x03};
  server.submitDatagram(garbage);
  server.submitDatagram({});
  auto truncated = sampleReport("ccc").encode();
  truncated.resize(truncated.size() / 2);
  server.submitDatagram(truncated);
  EXPECT_EQ(server.datagramsReceived(), 3u);
  EXPECT_EQ(server.datagramsDropped(), 3u);
  // A good datagram after garbage still lands.
  server.submitDatagram(sampleReport("ccc").encode());
  EXPECT_EQ(server.takeReports("ccc").size(), 1u);
}

TEST(CollectorTest, AcceptsFramedDatagrams) {
  CollectionServer server;
  server.submitDatagram(
      core::ReportFrame{4, 0, sampleReport("fff")}.encode());
  server.submitDatagram(
      core::ReportFrame{4, 1, sampleReport("fff")}.encode());
  server.submitDatagram(sampleReport("fff").encode());  // legacy raw format
  EXPECT_EQ(server.datagramsReceived(), 3u);
  EXPECT_EQ(server.datagramsDropped(), 0u);
  EXPECT_EQ(server.takeReports("fff").size(), 3u);
}

TEST(CollectorTest, EvictsOldestApkOverCapacity) {
  // Reports for apks nobody ever claims must not grow the server without
  // bound; the capacity policy sheds the oldest pending apk and counts it.
  CollectionServerConfig config;
  config.maxPendingApks = 2;
  CollectionServer server(config);
  server.submitDatagram(sampleReport("old").encode());
  server.submitDatagram(sampleReport("old").encode());
  server.submitDatagram(sampleReport("mid").encode());
  EXPECT_EQ(server.apksEvicted(), 0u);
  server.submitDatagram(sampleReport("new").encode());
  EXPECT_EQ(server.apksEvicted(), 1u);
  EXPECT_EQ(server.reportsEvicted(), 2u);  // "old" held two reports
  EXPECT_EQ(server.pendingApks(), 2u);
  EXPECT_TRUE(server.takeReports("old").empty());
  EXPECT_EQ(server.takeReports("mid").size(), 1u);
  EXPECT_EQ(server.takeReports("new").size(), 1u);
}

TEST(CollectorTest, TakingAnApkFreesItsCapacitySlot) {
  CollectionServerConfig config;
  config.maxPendingApks = 2;
  CollectionServer server(config);
  server.submitDatagram(sampleReport("a").encode());
  server.submitDatagram(sampleReport("b").encode());
  EXPECT_EQ(server.takeReports("a").size(), 1u);
  // The slot freed by the take means no eviction on the next apk.
  server.submitDatagram(sampleReport("c").encode());
  EXPECT_EQ(server.apksEvicted(), 0u);
  EXPECT_EQ(server.pendingApks(), 2u);
}

TEST(CollectorTest, ConcurrentSubmissionsFromManyWorkers) {
  CollectionServer server;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&server, t] {
        for (int i = 0; i < kPerThread; ++i)
          server.submitDatagram(sampleReport("sha" + std::to_string(t)).encode());
      });
    }
  }
  EXPECT_EQ(server.datagramsReceived(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(server.takeReports("sha" + std::to_string(t)).size(),
              static_cast<std::size_t>(kPerThread));
}

}  // namespace
}  // namespace libspector::orch
