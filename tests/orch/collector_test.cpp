#include "orch/collector.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace libspector::orch {
namespace {

core::UdpReport sampleReport(const std::string& sha) {
  core::UdpReport report;
  report.apkSha256 = sha;
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15), 40000},
                       {net::Ipv4Addr(198, 18, 0, 1), 443}};
  report.timestampMs = 1234;
  report.stackSignatures = {"java.net.Socket.connect",
                            "Lcom/lib/b;->doInBackground()V"};
  return report;
}

TEST(CollectorTest, GroupsReportsBySha) {
  CollectionServer server;
  server.submitDatagram(sampleReport("aaa").encode());
  server.submitDatagram(sampleReport("aaa").encode());
  server.submitDatagram(sampleReport("bbb").encode());
  EXPECT_EQ(server.datagramsReceived(), 3u);
  EXPECT_EQ(server.datagramsDropped(), 0u);

  const auto forA = server.takeReports("aaa");
  ASSERT_EQ(forA.size(), 2u);
  EXPECT_EQ(forA[0].apkSha256, "aaa");
  EXPECT_EQ(forA[0].stackSignatures.size(), 2u);
  EXPECT_EQ(server.takeReports("bbb").size(), 1u);
}

TEST(CollectorTest, TakeRemovesReports) {
  CollectionServer server;
  server.submitDatagram(sampleReport("aaa").encode());
  EXPECT_EQ(server.takeReports("aaa").size(), 1u);
  EXPECT_TRUE(server.takeReports("aaa").empty());
}

TEST(CollectorTest, UnknownShaYieldsEmpty) {
  CollectionServer server;
  EXPECT_TRUE(server.takeReports("nothing").empty());
}

TEST(CollectorTest, MalformedDatagramsDroppedNotFatal) {
  CollectionServer server;
  const std::vector<std::uint8_t> garbage = {0x01, 0x02, 0x03};
  server.submitDatagram(garbage);
  server.submitDatagram({});
  auto truncated = sampleReport("ccc").encode();
  truncated.resize(truncated.size() / 2);
  server.submitDatagram(truncated);
  EXPECT_EQ(server.datagramsReceived(), 3u);
  EXPECT_EQ(server.datagramsDropped(), 3u);
  // A good datagram after garbage still lands.
  server.submitDatagram(sampleReport("ccc").encode());
  EXPECT_EQ(server.takeReports("ccc").size(), 1u);
}

TEST(CollectorTest, ConcurrentSubmissionsFromManyWorkers) {
  CollectionServer server;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&server, t] {
        for (int i = 0; i < kPerThread; ++i)
          server.submitDatagram(sampleReport("sha" + std::to_string(t)).encode());
      });
    }
  }
  EXPECT_EQ(server.datagramsReceived(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(server.takeReports("sha" + std::to_string(t)).size(),
              static_cast<std::size_t>(kPerThread));
}

}  // namespace
}  // namespace libspector::orch
