#include "orch/emulator.hpp"

#include "orch/collector.hpp"

#include <gtest/gtest.h>

#include "util/sha256.hpp"

namespace libspector::orch {
namespace {

class EmulatorTest : public ::testing::Test {
 protected:
  EmulatorTest() {
    net::EndpointProfile profile;
    profile.domain = "api.example.com";
    profile.trueCategory = "info_tech";
    profile.responseLogMu = 8.5;
    farm_.addEndpoint(profile);

    apk_.packageName = "com.example.app";
    apk_.appCategory = "TOOLS";

    rt::NetRequestAction request;
    request.domain = "api.example.com";
    const auto helper = program_.addMethod("Lcom/lib/b;->a()V", {request});
    const auto task =
        program_.addMethod("Lcom/lib/b;->doInBackground()V",
                           {rt::CallAction{helper}});
    const auto handler = program_.addMethod("Lcom/example/app/H;->onClick()V",
                                            {rt::AsyncAction{task}});
    program_.uiHandlers.push_back(handler);
    program_.onCreate = program_.addMethod("Lcom/example/app/M;->onCreate()V", {});

    // Dex mirror of the program methods plus cold code.
    dex::DexFile dexFile;
    for (const auto& method : program_.methods) {
      dex::ClassDef cls;
      cls.dottedName = "x";
      cls.methods.push_back({method.signature});
      dexFile.classes.push_back(std::move(cls));
    }
    dex::ClassDef cold;
    cold.dottedName = "com.example.app.Cold";
    for (int i = 0; i < 16; ++i)
      cold.methods.push_back(
          {"Lcom/example/app/Cold;->m" + std::to_string(i) + "()V"});
    dexFile.classes.push_back(cold);
    apk_.dexFiles.push_back(std::move(dexFile));
  }

  EmulatorConfig config(std::uint32_t events = 50) {
    EmulatorConfig config;
    config.monkey.events = events;
    config.monkey.throttleMs = 100;
    config.seed = 11;
    return config;
  }

  net::ServerFarm farm_;
  dex::ApkFile apk_;
  rt::AppProgram program_;
};

TEST_F(EmulatorTest, RunProducesCompleteArtifacts) {
  EmulatorInstance emulator(farm_, nullptr, config());
  const auto artifacts = emulator.run(apk_, program_);

  EXPECT_EQ(artifacts.apkSha256, util::toHex(apk_.sha256()));
  EXPECT_EQ(artifacts.packageName, "com.example.app");
  EXPECT_EQ(artifacts.appCategory, "TOOLS");
  EXPECT_EQ(artifacts.monkeyEventsInjected, 50u);
  EXPECT_GT(artifacts.runDurationMs, 0u);
  EXPECT_FALSE(artifacts.capture.packets().empty());
  EXPECT_FALSE(artifacts.reports.empty());
  EXPECT_FALSE(artifacts.methodTraceFile.empty());
}

TEST_F(EmulatorTest, OneReportPerCreatedSocket) {
  EmulatorInstance emulator(farm_, nullptr, config());
  const auto artifacts = emulator.run(apk_, program_);
  // 50 events, each handler run queues one async request: 50 sockets.
  EXPECT_EQ(artifacts.reports.size(), 50u);
  for (const auto& report : artifacts.reports) {
    EXPECT_EQ(report.apkSha256, artifacts.apkSha256);
    EXPECT_FALSE(report.stackSignatures.empty());
  }
}

TEST_F(EmulatorTest, ReportsMatchCaptureStreams) {
  EmulatorInstance emulator(farm_, nullptr, config(10));
  const auto artifacts = emulator.run(apk_, program_);
  for (const auto& report : artifacts.reports) {
    const auto volume = artifacts.capture.streamVolume(
        report.socketPair, 0, std::numeric_limits<util::SimTimeMs>::max());
    EXPECT_GT(volume.packetCount, 0u) << report.socketPair.str();
    EXPECT_GT(volume.payloadFromDst, 0u);
  }
}

TEST_F(EmulatorTest, CoverageComputedAgainstDex) {
  EmulatorInstance emulator(farm_, nullptr, config());
  const auto artifacts = emulator.run(apk_, program_);
  // 4 program methods executed out of 20 dex methods (16 cold ones).
  EXPECT_EQ(artifacts.coverage.totalMethods, 20u);
  EXPECT_EQ(artifacts.coverage.coveredMethods, 4u);
  EXPECT_NEAR(artifacts.coverage.ratio(), 4.0 / 20.0, 1e-9);
  // The trace also saw framework frames, so it is larger than the covered set.
  EXPECT_GT(artifacts.coverage.traceEntries, artifacts.coverage.coveredMethods);
}

TEST_F(EmulatorTest, CentralCollectorReceivesSameReports) {
  CollectionServer collector;
  EmulatorInstance emulator(farm_, &collector, config(10));
  const auto artifacts = emulator.run(apk_, program_);
  const auto central = collector.takeReports(artifacts.apkSha256);
  EXPECT_EQ(central.size(), artifacts.reports.size());
}

TEST_F(EmulatorTest, FreshImagePerRunIsDeterministic) {
  EmulatorInstance emulator(farm_, nullptr, config(20));
  const auto first = emulator.run(apk_, program_);
  const auto second = emulator.run(apk_, program_);
  // Same seed, fresh state: identical captures and reports.
  EXPECT_EQ(first.capture, second.capture);
  ASSERT_EQ(first.reports.size(), second.reports.size());
  for (std::size_t i = 0; i < first.reports.size(); ++i)
    EXPECT_EQ(first.reports[i], second.reports[i]);
}

TEST_F(EmulatorTest, DifferentSeedsDifferentSchedules) {
  EmulatorInstance a(farm_, nullptr, config(20));
  auto otherConfig = config(20);
  otherConfig.seed = 99;
  EmulatorInstance b(farm_, nullptr, otherConfig);
  EXPECT_NE(a.run(apk_, program_).capture, b.run(apk_, program_).capture);
}

}  // namespace
}  // namespace libspector::orch
