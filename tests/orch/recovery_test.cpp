// Crash-safety of the artifact store, proven by sweep: a simulated crash
// is injected at every kill point of the checkpoint protocol, at several
// positions within the study, and recovery + replay + resume must produce
// a study byte-identical to the uninterrupted run every time.
#include "orch/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/export.hpp"
#include "orch/study.hpp"

namespace libspector::orch {
namespace {

namespace fs = std::filesystem;

StudyConfig recoveryConfig(std::size_t prefetchThreads = 0) {
  StudyConfig config;
  config.store.appCount = 8;
  config.store.seed = 7;
  config.store.methodScale = 0.05;
  config.dispatcher.emulator.monkey.events = 80;
  config.dispatcher.emulator.monkey.throttleMs = 50;
  config.dispatcher.workers = 2;
  config.ingest.shards = 2;
  config.prefetch.threads = prefetchThreads;
  config.prefetch.capacity = 4;
  return config;
}

std::string freshDir(const std::string& tag) {
  const std::string dir =
      ::testing::TempDir() + "/spector_recovery_" + tag + "_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  fs::remove_all(dir);
  return dir;
}

/// Render every figure dataset plus the markdown report into one string:
/// byte equality here is byte equality for every consumer in the repo.
std::string renderStudy(const core::StudyAggregator& study) {
  std::ostringstream out;
  core::writeFig2Csv(study, out);
  core::writeTopLibrariesCsv(study, 25, out);
  core::writeCdfCsv(study, out);
  core::writeFlowRatiosCsv(study, out);
  core::writeAntSharesCsv(study, out);
  core::writeCategoryAveragesCsv(study, out);
  core::writeHeatmapCsv(study, out);
  core::writeCoverageCsv(study, out);
  core::writeStudyReport(study, out);
  return out.str();
}

TEST(RecoveryTest, CheckpointScanRoundTrip) {
  const std::string dir = freshDir("roundtrip");
  core::RunArtifacts a;
  a.apkSha256 = "aaa";
  a.packageName = "com.app.a";
  core::RunArtifacts b;
  b.apkSha256 = "bbb";
  b.packageName = "com.app.b";
  core::ApkLossAccount account;
  account.reportsEmitted = 3;
  account.uniqueDelivered = 2;
  account.lost = 1;

  CheckpointWriter writer(dir);
  writer.checkpoint(5, account, b);  // out of index order on purpose
  writer.checkpoint(2, {}, a);

  const auto report = StudyRecovery::scan(dir);
  ASSERT_EQ(report.runs.size(), 2u);
  EXPECT_EQ(report.runs[0].jobIndex, 2u);  // sorted by job index
  EXPECT_EQ(report.runs[0].artifacts.packageName, "com.app.a");
  EXPECT_EQ(report.runs[1].jobIndex, 5u);
  EXPECT_EQ(report.runs[1].account, account);
  EXPECT_EQ(report.manifestEntries, 2u);
  EXPECT_EQ(report.manifestTornLines, 0u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(report.tmpFilesRemoved, 0u);
  EXPECT_EQ(report.manifestMissingBundles, 0u);
}

TEST(RecoveryTest, ScanOfMissingDirectoryIsEmptyNotFatal) {
  const auto report = StudyRecovery::scan(freshDir("missing"));
  EXPECT_TRUE(report.runs.empty());
  EXPECT_TRUE(report.quarantined.empty());
}

TEST(RecoveryTest, TornManifestTailIsRepairedOnNextWriter) {
  const std::string dir = freshDir("torntail");
  core::RunArtifacts a;
  a.apkSha256 = "aaa";
  {
    CheckpointWriter writer(dir);
    writer.checkpoint(0, {}, a);
    // Simulate a crash mid-append: a torn line with no newline.
    std::ofstream manifest(fs::path(dir) / CheckpointWriter::kManifestName,
                           std::ios::binary | std::ios::app);
    manifest << "1 bb";
  }
  // A new writer must repair the tail so its appends don't merge into the
  // torn line; the torn line itself stays tolerated, never fatal.
  core::RunArtifacts c;
  c.apkSha256 = "ccc";
  CheckpointWriter writer(dir);
  writer.checkpoint(2, {}, c);

  const auto report = StudyRecovery::scan(dir);
  EXPECT_EQ(report.manifestEntries, 2u);
  EXPECT_EQ(report.manifestTornLines, 1u);
  ASSERT_EQ(report.runs.size(), 2u);
  EXPECT_EQ(report.runs[1].jobIndex, 2u);
}

// The sweep runs under several prefetch thread counts: resumeStudy feeds
// only the gap indices to the generation tier, and the reorder window must
// keep their original identities at any parallelism — a resumed pipelined
// study is byte-identical to the uninterrupted serial one.
class RecoverySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RecoverySweep, KillPointSweepYieldsByteIdenticalStudy) {
  const std::size_t prefetchThreads = GetParam();
  // Ground truth: the same study, uninterrupted, no prefetch pool — the
  // resumed pipelined runs below must match it byte for byte.
  auto config = recoveryConfig();
  config.artifactsDirectory =
      freshDir("groundtruth_p" + std::to_string(prefetchThreads));
  const auto groundTruth = runStudy(config);
  const std::string expected = renderStudy(groundTruth.study);
  ASSERT_EQ(groundTruth.appsProcessed, config.store.appCount);

  // The checkpointed deliveries of the uninterrupted run, in job-index
  // order — the exact sequence a crashed collector would have persisted.
  auto truthScan = StudyRecovery::scan(config.artifactsDirectory);
  ASSERT_EQ(truthScan.runs.size(), config.store.appCount);

  for (const std::string_view killPoint : kCheckpointKillPoints) {
    for (const std::size_t crashAt :
         {std::size_t{0}, truthScan.runs.size() / 2,
          truthScan.runs.size() - 1}) {
      const std::string tag = std::string(killPoint) + "_" +
                              std::to_string(crashAt) + "_p" +
                              std::to_string(prefetchThreads);
      auto crashed = recoveryConfig(prefetchThreads);
      crashed.artifactsDirectory = freshDir(tag);

      // Re-drive the checkpoint protocol up to the injected crash. The
      // CheckpointWriter is the only thing that ever writes bundles, so
      // this reproduces the on-disk state of a collector that died at
      // exactly this kill point of exactly this run.
      std::size_t current = 0;
      CheckpointWriter writer(
          crashed.artifactsDirectory,
          [&](std::string_view point) {
            if (point == killPoint && current == crashAt)
              throw SimulatedCrash("crash at " + std::string(point));
          });
      bool crashedOut = false;
      try {
        for (const auto& run : truthScan.runs) {
          current = run.jobIndex;
          writer.checkpoint(run.jobIndex, run.account, run.artifacts);
        }
      } catch (const SimulatedCrash&) {
        crashedOut = true;
      }
      ASSERT_TRUE(crashedOut) << tag;

      const auto resumed = resumeStudy(crashed);
      EXPECT_EQ(renderStudy(resumed.output.study), expected)
          << "study diverged after crash at " << tag;
      EXPECT_EQ(resumed.output.appsProcessed, crashed.store.appCount) << tag;
      EXPECT_EQ(resumed.output.appsFailed, 0u) << tag;
      EXPECT_TRUE(resumed.recovery.quarantined.empty()) << tag;

      // Spot-check the recovery accounting against what this kill point
      // must have left on disk.
      if (killPoint == "tmp-partial")
        EXPECT_EQ(resumed.recovery.tmpFilesRemoved, 1u) << tag;
      if (killPoint == "manifest-partial")
        EXPECT_GE(resumed.recovery.manifestTornLines, 1u) << tag;
      if (killPoint == "done")
        EXPECT_EQ(resumed.output.appsReplayed, crashAt + 1) << tag;
      if (killPoint == "begin" || killPoint == "tmp-partial" ||
          killPoint == "tmp-complete")
        EXPECT_EQ(resumed.output.appsReplayed, crashAt) << tag;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PrefetchThreads, RecoverySweep,
                         ::testing::Values(0, 2, 8));

TEST(RecoveryTest, ResumeWithoutSymbolInterningIsByteIdentical) {
  // The resumed half of a crashed study re-attributes with a fresh
  // attributor; running that half with symbol interning disabled must still
  // land on the interned ground truth, at every checkpoint kill point.
  auto config = recoveryConfig();
  config.artifactsDirectory = freshDir("intern_groundtruth");
  const auto groundTruth = runStudy(config);
  const std::string expected = renderStudy(groundTruth.study);

  auto truthScan = StudyRecovery::scan(config.artifactsDirectory);
  ASSERT_EQ(truthScan.runs.size(), config.store.appCount);
  const std::size_t crashAt = truthScan.runs.size() / 2;

  for (const std::string_view killPoint : kCheckpointKillPoints) {
    auto crashed = recoveryConfig(2);
    crashed.artifactsDirectory =
        freshDir("intern_off_" + std::string(killPoint));
    crashed.attribution.internSymbols = false;

    std::size_t current = 0;
    CheckpointWriter writer(crashed.artifactsDirectory,
                            [&](std::string_view point) {
                              if (point == killPoint && current == crashAt)
                                throw SimulatedCrash("crash");
                            });
    bool crashedOut = false;
    try {
      for (const auto& run : truthScan.runs) {
        current = run.jobIndex;
        writer.checkpoint(run.jobIndex, run.account, run.artifacts);
      }
    } catch (const SimulatedCrash&) {
      crashedOut = true;
    }
    ASSERT_TRUE(crashedOut) << killPoint;

    const auto resumed = resumeStudy(crashed);
    EXPECT_EQ(renderStudy(resumed.output.study), expected)
        << "interning-off resume diverged after crash at " << killPoint;
    EXPECT_EQ(resumed.output.appsProcessed, crashed.store.appCount)
        << killPoint;
  }
}

TEST(RecoveryTest, ResumeWithoutColumnarFoldIsByteIdentical) {
  // Same contract for the columnar fold and the compiled attribution
  // program: a resume that re-attributes through the row-reference path
  // must land on the ground truth the accelerated study wrote, at every
  // checkpoint kill point.
  auto config = recoveryConfig();
  config.artifactsDirectory = freshDir("columnar_groundtruth");
  const auto groundTruth = runStudy(config);
  const std::string expected = renderStudy(groundTruth.study);

  auto truthScan = StudyRecovery::scan(config.artifactsDirectory);
  ASSERT_EQ(truthScan.runs.size(), config.store.appCount);
  const std::size_t crashAt = truthScan.runs.size() / 2;

  for (const std::string_view killPoint : kCheckpointKillPoints) {
    auto crashed = recoveryConfig(2);
    crashed.artifactsDirectory =
        freshDir("columnar_off_" + std::string(killPoint));
    crashed.attribution.columnarFold = false;
    crashed.attribution.compileProgram = false;

    std::size_t current = 0;
    CheckpointWriter writer(crashed.artifactsDirectory,
                            [&](std::string_view point) {
                              if (point == killPoint && current == crashAt)
                                throw SimulatedCrash("crash");
                            });
    bool crashedOut = false;
    try {
      for (const auto& run : truthScan.runs) {
        current = run.jobIndex;
        writer.checkpoint(run.jobIndex, run.account, run.artifacts);
      }
    } catch (const SimulatedCrash&) {
      crashedOut = true;
    }
    ASSERT_TRUE(crashedOut) << killPoint;

    const auto resumed = resumeStudy(crashed);
    EXPECT_EQ(renderStudy(resumed.output.study), expected)
        << "columnar-off resume diverged after crash at " << killPoint;
    EXPECT_EQ(resumed.output.appsProcessed, crashed.store.appCount)
        << killPoint;
  }
}

TEST(RecoveryTest, CorruptBundlesAreQuarantinedAndReRun) {
  auto config = recoveryConfig();
  config.artifactsDirectory = freshDir("corrupt_gt");
  const auto groundTruth = runStudy(config);
  const std::string expected = renderStudy(groundTruth.study);

  // Copy the intact checkpoint dir, then damage two bundles: one
  // bit-flipped, one truncated mid-file.
  auto crashed = config;
  crashed.artifactsDirectory = freshDir("corrupt");
  fs::create_directories(crashed.artifactsDirectory);
  std::vector<fs::path> bundles;
  for (const auto& entry : fs::directory_iterator(config.artifactsDirectory)) {
    fs::copy(entry.path(),
             fs::path(crashed.artifactsDirectory) / entry.path().filename());
    if (entry.path().extension() == ".spab") bundles.push_back(
        fs::path(crashed.artifactsDirectory) / entry.path().filename());
  }
  ASSERT_GE(bundles.size(), 2u);
  std::sort(bundles.begin(), bundles.end());
  {
    std::fstream flip(bundles[0],
                      std::ios::binary | std::ios::in | std::ios::out);
    flip.seekg(20);
    const char byte = static_cast<char>(flip.get());
    flip.seekp(20);
    flip.put(static_cast<char>(byte ^ 0x40));
  }
  fs::resize_file(bundles[1], fs::file_size(bundles[1]) / 2);

  const auto resumed = resumeStudy(crashed);
  EXPECT_EQ(resumed.recovery.quarantined.size(), 2u);
  EXPECT_EQ(resumed.output.appsReplayed, config.store.appCount - 2);
  EXPECT_EQ(resumed.output.appsProcessed, config.store.appCount);
  EXPECT_EQ(renderStudy(resumed.output.study), expected);
  for (const auto& entry : resumed.recovery.quarantined)
    EXPECT_TRUE(fs::exists(fs::path(crashed.artifactsDirectory) /
                           StudyRecovery::kQuarantineDir / entry.file));
}

TEST(RecoveryTest, LossyChannelReplayPreservesLossAccounts) {
  // Under UDP report loss the loss numbers are part of the result. A
  // resume that replays every run must reproduce both the study bytes and
  // the exact loss accounting of the uninterrupted lossy run.
  auto config = recoveryConfig();
  config.dispatcher.emulator.stack.udpLossProb = 0.3;
  config.artifactsDirectory = freshDir("lossy");
  const auto groundTruth = runStudy(config);
  ASSERT_GT(groundTruth.ingestMetrics.reportsLost, 0u);

  const auto resumed = resumeStudy(config);  // every run replays from disk
  EXPECT_EQ(resumed.output.appsReplayed, config.store.appCount);
  EXPECT_EQ(resumed.output.ingestMetrics.reportsLost,
            groundTruth.ingestMetrics.reportsLost);
  EXPECT_EQ(resumed.output.ingestMetrics.reportsDelivered,
            groundTruth.ingestMetrics.reportsDelivered);
  EXPECT_EQ(renderStudy(resumed.output.study),
            renderStudy(groundTruth.study));
}

TEST(RecoveryTest, ResumeRequiresACheckpointDirectory) {
  EXPECT_THROW((void)resumeStudy(recoveryConfig()), std::invalid_argument);
}

}  // namespace
}  // namespace libspector::orch
