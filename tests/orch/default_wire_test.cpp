// The default report wire is now ReportFrame v3 (dictionary frames): the
// collector has spoken v3 end-to-end since the ingest dictionary path
// landed, so the fleet default flips on. Two things must stay true:
//
//  1. The rendered study is byte-identical to the old v1-wire default —
//     v3 changes only the size of Libspector's own report datagrams,
//     which no figure or table consumes.
//  2. The flip actually buys the compression it exists for: the capture's
//     recorded report bytes shrink.
//
// The v1/v2/v3 codec golden vectors live in tests/core/report_test.cpp
// and are independent of this default.
#include <gtest/gtest.h>

#include <sstream>

#include "core/export.hpp"
#include "orch/emulator.hpp"
#include "orch/study.hpp"

namespace libspector::orch {
namespace {

StudyConfig smallConfig() {
  StudyConfig config;
  config.store.appCount = 20;
  config.store.seed = 11;
  config.store.methodScale = 0.05;
  config.dispatcher.emulator.monkey.events = 100;
  config.dispatcher.emulator.monkey.throttleMs = 50;
  return config;
}

/// Render every figure dataset plus the markdown report into one string:
/// if two studies agree on all of it byte for byte, they are the same
/// study for every consumer this repository has.
std::string renderStudy(const core::StudyAggregator& study) {
  std::ostringstream out;
  core::writeFig2Csv(study, out);
  core::writeTopLibrariesCsv(study, 25, out);
  core::writeCdfCsv(study, out);
  core::writeFlowRatiosCsv(study, out);
  core::writeAntSharesCsv(study, out);
  core::writeCategoryAveragesCsv(study, out);
  core::writeHeatmapCsv(study, out);
  core::writeCoverageCsv(study, out);
  core::writeStudyReport(study, out);
  return out.str();
}

TEST(DefaultWireTest, DictionaryFramesDefaultsOn) {
  EXPECT_TRUE(EmulatorConfig{}.dictionaryFrames);
  EXPECT_TRUE(StudyConfig{}.dispatcher.emulator.dictionaryFrames);
}

TEST(DefaultWireTest, DefaultStudyByteIdenticalToLegacyV1Wire) {
  const auto modern = runStudy(smallConfig());

  auto legacyConfig = smallConfig();
  legacyConfig.dispatcher.emulator.dictionaryFrames = false;
  const auto legacy = runStudy(legacyConfig);

  EXPECT_EQ(modern.appsProcessed, legacy.appsProcessed);
  EXPECT_EQ(renderStudy(modern.study), renderStudy(legacy.study));

  // The wire itself must differ in exactly the advertised direction:
  // report datagrams shrink, everything else in the capture is untouched.
  EXPECT_LT(modern.study.udpStats().reportBytes,
            legacy.study.udpStats().reportBytes);
  EXPECT_EQ(modern.study.udpStats().udpBytes, legacy.study.udpStats().udpBytes);
  EXPECT_EQ(modern.study.udpStats().dnsBytes, legacy.study.udpStats().dnsBytes);
}

}  // namespace
}  // namespace libspector::orch
