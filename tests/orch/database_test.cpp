#include "orch/database.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

namespace libspector::orch {
namespace {

core::RunArtifacts artifactsFor(const std::string& sha) {
  core::RunArtifacts artifacts;
  artifacts.apkSha256 = sha;
  artifacts.packageName = "com.app." + sha;
  artifacts.appCategory = "TOOLS";
  artifacts.coverage.coveredMethods = 10;
  artifacts.coverage.totalMethods = 100;
  return artifacts;
}

TEST(DatabaseTest, StoreAndFetch) {
  ResultDatabase db;
  db.store(artifactsFor("abc"));
  EXPECT_EQ(db.size(), 1u);
  const auto fetched = db.fetch("abc");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->packageName, "com.app.abc");
  EXPECT_FALSE(db.fetch("missing").has_value());
}

TEST(DatabaseTest, ReuploadReplaces) {
  ResultDatabase db;
  db.store(artifactsFor("abc"));
  auto updated = artifactsFor("abc");
  updated.appCategory = "FINANCE";
  db.store(std::move(updated));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.fetch("abc")->appCategory, "FINANCE");
}

TEST(DatabaseTest, ForEachVisitsAll) {
  ResultDatabase db;
  for (int i = 0; i < 20; ++i) db.store(artifactsFor("sha" + std::to_string(i)));
  std::size_t visited = 0;
  db.forEach([&](const core::RunArtifacts&) { ++visited; });
  EXPECT_EQ(visited, 20u);
}

TEST(DatabaseTest, SaveAndLoadDirectoryRoundTrip) {
  const std::string dir =
      ::testing::TempDir() + "/spector_db_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  ResultDatabase db;
  for (int i = 0; i < 5; ++i) {
    auto artifacts = artifactsFor("sha" + std::to_string(i));
    artifacts.capture.append(net::makeTcpPacket(
        static_cast<util::SimTimeMs>(i),
        {{net::Ipv4Addr(10, 0, 2, 15), static_cast<std::uint16_t>(40000 + i)},
         {net::Ipv4Addr(198, 18, 0, 1), 443}},
        140, 100));
    db.store(std::move(artifacts));
  }
  EXPECT_EQ(db.saveToDirectory(dir), 5u);

  ResultDatabase restored;
  const auto report = restored.loadFromDirectory(dir);
  EXPECT_EQ(report.loaded, 5u);
  EXPECT_EQ(report.replaced, 0u);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(restored.size(), 5u);
  const auto fetched = restored.fetch("sha3");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->packageName, "com.app.sha3");
  EXPECT_EQ(fetched->capture.size(), 1u);
  EXPECT_EQ(fetched->coverage.totalMethods, 100u);
}

TEST(DatabaseTest, LoadIgnoresForeignFiles) {
  const std::string dir =
      ::testing::TempDir() + "/spector_db_mixed_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  ResultDatabase db;
  db.store(artifactsFor("only"));
  db.saveToDirectory(dir);
  {
    std::ofstream junk(dir + "/notes.txt");
    junk << "not a bundle";
  }
  ResultDatabase restored;
  EXPECT_EQ(restored.loadFromDirectory(dir).loaded, 1u);
}

TEST(DatabaseTest, StoreReportsInsertedVsReplaced) {
  ResultDatabase db;
  EXPECT_TRUE(db.store(artifactsFor("abc")));
  EXPECT_FALSE(db.store(artifactsFor("abc")));
  EXPECT_TRUE(db.store(artifactsFor("def")));
}

TEST(DatabaseTest, LoadCountsReplacedSeparately) {
  const std::string dir =
      ::testing::TempDir() + "/spector_db_replaced_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  ResultDatabase db;
  db.store(artifactsFor("aaa"));
  db.store(artifactsFor("bbb"));
  db.saveToDirectory(dir);

  ResultDatabase restored;
  restored.store(artifactsFor("aaa"));  // pre-existing entry gets replaced
  const auto report = restored.loadFromDirectory(dir);
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.replaced, 1u);
  EXPECT_EQ(restored.size(), 2u);
}

TEST(DatabaseTest, LoadCollectsCorruptBundlesInsteadOfThrowing) {
  const std::string dir =
      ::testing::TempDir() + "/spector_db_corrupt_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  ResultDatabase db;
  db.store(artifactsFor("good1"));
  db.store(artifactsFor("good2"));
  db.saveToDirectory(dir);
  {
    std::ofstream bad(dir + "/deadbeef.spab", std::ios::binary);
    bad << "this is not an artifact bundle";
  }

  ResultDatabase restored;
  const auto report = restored.loadFromDirectory(dir);
  EXPECT_EQ(report.loaded, 2u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].path.find("deadbeef.spab"), std::string::npos);
  EXPECT_FALSE(report.failures[0].error.empty());
  EXPECT_EQ(restored.size(), 2u);
}

TEST(DatabaseTest, LoadReadsLegacyUnframedBundles) {
  const std::string dir =
      ::testing::TempDir() + "/spector_db_legacy_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::create_directories(dir);
  const auto artifacts = artifactsFor("legacy");
  const auto raw = artifacts.serialize();  // pre-envelope on-disk format
  {
    std::ofstream out(dir + "/legacy.spab", std::ios::binary);
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
  }
  ResultDatabase restored;
  EXPECT_EQ(restored.loadFromDirectory(dir).loaded, 1u);
  EXPECT_EQ(restored.fetch("legacy")->packageName, "com.app.legacy");
}

TEST(DatabaseTest, SaveLeavesNoTempFiles) {
  const std::string dir =
      ::testing::TempDir() + "/spector_db_atomic_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  ResultDatabase db;
  for (int i = 0; i < 3; ++i) db.store(artifactsFor("s" + std::to_string(i)));
  db.saveToDirectory(dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
}

TEST(DatabaseTest, ConcurrentStores) {
  ResultDatabase db;
  {
    std::vector<std::jthread> writers;
    for (int t = 0; t < 8; ++t) {
      writers.emplace_back([&db, t] {
        for (int i = 0; i < 200; ++i)
          db.store(artifactsFor(std::to_string(t) + "-" + std::to_string(i)));
      });
    }
  }
  EXPECT_EQ(db.size(), 1600u);
}

}  // namespace
}  // namespace libspector::orch
