#include "net/server.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace libspector::net {
namespace {

EndpointProfile adEndpoint(const std::string& domain) {
  EndpointProfile profile;
  profile.domain = domain;
  profile.trueCategory = "advertisements";
  profile.responseLogMu = 9.0;
  profile.responseLogSigma = 0.5;
  profile.minResponseBytes = 1000;
  profile.maxResponseBytes = 50000;
  return profile;
}

TEST(ServerFarmTest, RegistersAndLooksUp) {
  ServerFarm farm;
  const Ipv4Addr ip = farm.addEndpoint(adEndpoint("ads.example.com"));
  EXPECT_EQ(farm.endpointCount(), 1u);
  ASSERT_NE(farm.byDomain("ads.example.com"), nullptr);
  EXPECT_EQ(farm.byDomain("ads.example.com")->trueCategory, "advertisements");
  EXPECT_EQ(farm.ipOf("ads.example.com"), ip);
  EXPECT_EQ(farm.byDomain("nope.example.com"), nullptr);
  EXPECT_FALSE(farm.ipOf("nope.example.com").has_value());
}

TEST(ServerFarmTest, AssignsDistinctAddresses) {
  ServerFarm farm;
  const Ipv4Addr a = farm.addEndpoint(adEndpoint("a.com"));
  const Ipv4Addr b = farm.addEndpoint(adEndpoint("b.com"));
  EXPECT_NE(a, b);
}

TEST(ServerFarmTest, RejectsDuplicateDomain) {
  ServerFarm farm;
  farm.addEndpoint(adEndpoint("a.com"));
  EXPECT_THROW(farm.addEndpoint(adEndpoint("a.com")), std::invalid_argument);
}

TEST(ServerFarmTest, RejectsEmptyDomain) {
  ServerFarm farm;
  EXPECT_THROW(farm.addEndpoint(adEndpoint("")), std::invalid_argument);
}

TEST(ServerFarmTest, CdnCoHostingSharesAddress) {
  ServerFarm farm;
  const Ipv4Addr host = farm.addEndpoint(adEndpoint("cdn1.com"));
  const Ipv4Addr same = farm.addEndpoint(adEndpoint("cdn2.com"), host);
  EXPECT_EQ(host, same);
  const auto domains = farm.domainsOn(host);
  ASSERT_EQ(domains.size(), 2u);
}

TEST(ServerFarmTest, SharedIpMustExist) {
  ServerFarm farm;
  EXPECT_THROW(farm.addEndpoint(adEndpoint("x.com"), Ipv4Addr(1, 2, 3, 4)),
               std::invalid_argument);
}

TEST(ServerFarmTest, ResponseSizeWithinClamps) {
  ServerFarm farm;
  farm.addEndpoint(adEndpoint("ads.example.com"));
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t size = farm.responseSize("ads.example.com", rng);
    EXPECT_GE(size, 1000u);
    EXPECT_LE(size, 50000u);
  }
}

TEST(ServerFarmTest, UnknownDomainGetsTinyResponse) {
  ServerFarm farm;
  util::Rng rng(5);
  EXPECT_EQ(farm.responseSize("ghost.example.com", rng), 64u);
}

TEST(ServerFarmTest, AllDomainsSorted) {
  ServerFarm farm;
  farm.addEndpoint(adEndpoint("zeta.com"));
  farm.addEndpoint(adEndpoint("alpha.com"));
  const auto domains = farm.allDomains();
  ASSERT_EQ(domains.size(), 2u);
  EXPECT_EQ(domains[0], "alpha.com");
  EXPECT_EQ(domains[1], "zeta.com");
}

TEST(ServerFarmTest, DomainsOnUnknownAddressEmpty) {
  ServerFarm farm;
  EXPECT_TRUE(farm.domainsOn(Ipv4Addr(9, 9, 9, 9)).empty());
}

}  // namespace
}  // namespace libspector::net
