// HTTP exchange logging through the stack and capture (de)serialization.
#include <gtest/gtest.h>

#include "net/stack.hpp"
#include "util/bytes.hpp"

namespace libspector::net {
namespace {

class HttpTest : public ::testing::Test {
 protected:
  HttpTest() {
    EndpointProfile profile;
    profile.domain = "api.example.com";
    profile.trueCategory = "info_tech";
    farm_.addEndpoint(profile);
  }

  ServerFarm farm_;
  util::SimClock clock_;
};

TEST_F(HttpTest, TransferWithInfoLogsExchange) {
  NetworkStack stack(farm_, clock_, util::Rng(3));
  const auto conn = stack.connectTcp("api.example.com", 443);
  ASSERT_TRUE(conn.has_value());
  NetworkStack::HttpRequestInfo info;
  info.path = "/v1/data";
  info.userAgent = "okhttp/3.12.0";
  info.post = true;
  stack.transfer(conn->id, 400, &info);

  const auto& exchanges = stack.capture().httpExchanges();
  ASSERT_EQ(exchanges.size(), 1u);
  EXPECT_EQ(exchanges[0].host, "api.example.com");
  EXPECT_EQ(exchanges[0].path, "/v1/data");
  EXPECT_EQ(exchanges[0].userAgent, "okhttp/3.12.0");
  EXPECT_TRUE(exchanges[0].post);
  EXPECT_EQ(exchanges[0].pair, conn->pair);
}

TEST_F(HttpTest, TransferWithoutInfoLogsNothing) {
  NetworkStack stack(farm_, clock_, util::Rng(3));
  const auto conn = stack.connectTcp("api.example.com", 443);
  stack.transfer(conn->id, 400);
  EXPECT_TRUE(stack.capture().httpExchanges().empty());
}

TEST_F(HttpTest, OneExchangePerTransfer) {
  NetworkStack stack(farm_, clock_, util::Rng(3));
  const auto conn = stack.connectTcp("api.example.com", 443);
  NetworkStack::HttpRequestInfo info;
  for (int i = 0; i < 3; ++i) stack.transfer(conn->id, 100, &info);
  EXPECT_EQ(stack.capture().httpExchanges().size(), 3u);
}

TEST(HttpCaptureTest, ExchangesSurviveSerialization) {
  CaptureFile capture;
  const SocketPair pair{{Ipv4Addr(10, 0, 2, 15), 40000},
                        {Ipv4Addr(198, 18, 0, 1), 443}};
  capture.append(makeTcpPacket(5, pair, 140, 100));
  capture.appendHttp({7, pair, "ads1.x.com", "/ads/v2/fetch",
                      "UnityAds/3.4 Android", false});
  capture.appendHttp({9, pair, "metrics.y.com", "/v1/batch", "", true});

  const auto decoded = CaptureFile::deserialize(capture.serialize());
  EXPECT_EQ(decoded, capture);
  ASSERT_EQ(decoded.httpExchanges().size(), 2u);
  EXPECT_EQ(decoded.httpExchanges()[0].userAgent, "UnityAds/3.4 Android");
  EXPECT_TRUE(decoded.httpExchanges()[1].post);
}

TEST(HttpCaptureTest, LegacyDecodeRejectsTruncatedExchangeBlock) {
  CaptureFile capture;
  capture.appendHttp({1,
                      {{Ipv4Addr(1, 1, 1, 1), 1}, {Ipv4Addr(2, 2, 2, 2), 2}},
                      "h.com",
                      "/",
                      "ua",
                      false});
  auto bytes = capture.serialize();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW((void)CaptureFile::deserialize(bytes), util::DecodeError);
}

}  // namespace
}  // namespace libspector::net
