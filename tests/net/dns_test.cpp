#include "net/dns.hpp"

#include <gtest/gtest.h>

namespace libspector::net {
namespace {

class DnsTest : public ::testing::Test {
 protected:
  DnsTest() : resolver_(farm_, device_, dnsServer_) {
    EndpointProfile profile;
    profile.domain = "ads.example.com";
    profile.trueCategory = "advertisements";
    ip_ = farm_.addEndpoint(profile);
  }

  ServerFarm farm_;
  SockEndpoint device_{Ipv4Addr(10, 0, 2, 15), 0};
  SockEndpoint dnsServer_{Ipv4Addr(10, 0, 2, 3), 53};
  Ipv4Addr ip_;
  util::SimClock clock_;
  CaptureFile capture_;
  DnsResolver resolver_;
};

TEST_F(DnsTest, ResolvesRegisteredDomain) {
  const auto answer = resolver_.resolve("ads.example.com", clock_, capture_);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, ip_);
}

TEST_F(DnsTest, RecordsQueryAndResponsePackets) {
  resolver_.resolve("ads.example.com", clock_, capture_);
  ASSERT_EQ(capture_.size(), 2u);
  const auto& query = capture_.packets()[0];
  const auto& response = capture_.packets()[1];
  EXPECT_EQ(query.proto, Proto::Udp);
  EXPECT_EQ(query.pair.dst, dnsServer_);
  EXPECT_EQ(query.dnsQname, "ads.example.com");
  EXPECT_EQ(query.dnsAnswer, Ipv4Addr{});
  EXPECT_EQ(response.pair.src, dnsServer_);
  EXPECT_EQ(response.dnsAnswer, ip_);
  EXPECT_GT(response.wireBytes, query.wireBytes);
  EXPECT_LT(query.timestampMs, response.timestampMs);
}

TEST_F(DnsTest, CachesAnswers) {
  resolver_.resolve("ads.example.com", clock_, capture_);
  const std::size_t packetsAfterFirst = capture_.size();
  resolver_.resolve("ads.example.com", clock_, capture_);
  EXPECT_EQ(capture_.size(), packetsAfterFirst);  // no new DNS traffic
  EXPECT_EQ(resolver_.cacheSize(), 1u);
}

TEST_F(DnsTest, NxdomainReturnsNulloptButRecordsTraffic) {
  const auto answer = resolver_.resolve("ghost.example.com", clock_, capture_);
  EXPECT_FALSE(answer.has_value());
  EXPECT_EQ(capture_.size(), 2u);
  EXPECT_EQ(capture_.packets()[1].dnsAnswer, Ipv4Addr{});  // negative answer
}

TEST_F(DnsTest, NegativeAnswersAreCachedToo) {
  resolver_.resolve("ghost.example.com", clock_, capture_);
  resolver_.resolve("ghost.example.com", clock_, capture_);
  EXPECT_EQ(capture_.size(), 2u);
  EXPECT_EQ(resolver_.cacheSize(), 1u);
}

TEST_F(DnsTest, ResolvedDomainsTracksSuccessOrder) {
  EndpointProfile profile;
  profile.domain = "cdn.example.com";
  profile.trueCategory = "cdn";
  farm_.addEndpoint(profile);

  resolver_.resolve("cdn.example.com", clock_, capture_);
  resolver_.resolve("ghost.example.com", clock_, capture_);
  resolver_.resolve("ads.example.com", clock_, capture_);
  const auto& resolved = resolver_.resolvedDomains();
  ASSERT_EQ(resolved.size(), 2u);  // NXDOMAIN excluded
  EXPECT_EQ(resolved[0], "cdn.example.com");
  EXPECT_EQ(resolved[1], "ads.example.com");
}

TEST_F(DnsTest, ClockAdvancesDuringResolution) {
  const auto before = clock_.now();
  resolver_.resolve("ads.example.com", clock_, capture_);
  EXPECT_GT(clock_.now(), before);
}

TEST_F(DnsTest, TtlExpiryTriggersRequery) {
  DnsResolver shortTtl(farm_, device_, dnsServer_, /*ttlMs=*/1000);
  shortTtl.resolve("ads.example.com", clock_, capture_);
  EXPECT_EQ(shortTtl.queriesSent(), 1u);
  clock_.advance(500);
  shortTtl.resolve("ads.example.com", clock_, capture_);
  EXPECT_EQ(shortTtl.queriesSent(), 1u);  // still cached
  clock_.advance(2000);
  shortTtl.resolve("ads.example.com", clock_, capture_);
  EXPECT_EQ(shortTtl.queriesSent(), 2u);  // expired -> re-query
  // Single-homed domain: same answer both times, listed once.
  EXPECT_EQ(shortTtl.resolvedDomains().size(), 1u);
}

TEST_F(DnsTest, MultiHomedDomainRotatesAcrossTtlExpiries) {
  EndpointProfile profile;
  profile.domain = "cdn.example.com";
  profile.trueCategory = "cdn";
  const Ipv4Addr first = farm_.addEndpoint(profile);
  const Ipv4Addr second = farm_.addAlternateAddress("cdn.example.com");
  ASSERT_NE(first, second);

  DnsResolver shortTtl(farm_, device_, dnsServer_, /*ttlMs=*/100);
  const auto a = shortTtl.resolve("cdn.example.com", clock_, capture_);
  clock_.advance(200);
  const auto b = shortTtl.resolve("cdn.example.com", clock_, capture_);
  clock_.advance(200);
  const auto c = shortTtl.resolve("cdn.example.com", clock_, capture_);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(*a, first);
  EXPECT_EQ(*b, second);
  EXPECT_EQ(*c, first);  // wraps around
  // The capture's DNS answers track the rotation, so offline attribution
  // can follow the domain across addresses.
  std::vector<Ipv4Addr> answers;
  for (const auto& pkt : capture_.packets()) {
    if (pkt.isDns() && !(pkt.dnsAnswer == Ipv4Addr{}) &&
        pkt.dnsQname == "cdn.example.com")
      answers.push_back(pkt.dnsAnswer);
  }
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_EQ(answers[0], first);
  EXPECT_EQ(answers[1], second);
}

}  // namespace
}  // namespace libspector::net
