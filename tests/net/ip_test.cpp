#include "net/ip.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace libspector::net {
namespace {

TEST(Ipv4AddrTest, ParseAndFormat) {
  const auto addr = Ipv4Addr::parse("10.0.2.15");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->str(), "10.0.2.15");
  EXPECT_EQ(addr->value(), (10u << 24) | (2u << 8) | 15u);
}

TEST(Ipv4AddrTest, ConstructorFromOctets) {
  constexpr Ipv4Addr addr(192, 168, 1, 1);
  EXPECT_EQ(addr.str(), "192.168.1.1");
}

TEST(Ipv4AddrTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.256"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.-1"));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4x"));
}

TEST(Ipv4AddrTest, ParseBoundaryValues) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(Ipv4AddrTest, Ordering) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(Ipv4Addr(1, 2, 3, 4), *Ipv4Addr::parse("1.2.3.4"));
}

TEST(SockEndpointTest, Format) {
  const SockEndpoint endpoint{Ipv4Addr(10, 0, 2, 2), 5005};
  EXPECT_EQ(endpoint.str(), "10.0.2.2:5005");
}

TEST(SocketPairTest, ReversedSwapsEnds) {
  const SocketPair pair{{Ipv4Addr(1, 1, 1, 1), 1000}, {Ipv4Addr(2, 2, 2, 2), 443}};
  const SocketPair reversed = pair.reversed();
  EXPECT_EQ(reversed.src, pair.dst);
  EXPECT_EQ(reversed.dst, pair.src);
  EXPECT_EQ(reversed.reversed(), pair);
}

TEST(SocketPairTest, SameConnectionEitherOrientation) {
  const SocketPair pair{{Ipv4Addr(1, 1, 1, 1), 1000}, {Ipv4Addr(2, 2, 2, 2), 443}};
  EXPECT_TRUE(pair.sameConnection(pair));
  EXPECT_TRUE(pair.sameConnection(pair.reversed()));
  SocketPair other = pair;
  other.src.port = 1001;
  EXPECT_FALSE(pair.sameConnection(other));
}

TEST(SocketPairTest, HashDistributesDistinctPairs) {
  std::unordered_set<SocketPair> pairs;
  for (std::uint16_t port = 1000; port < 1100; ++port) {
    const SocketPair pair{{Ipv4Addr(10, 0, 2, 15), port},
                          {Ipv4Addr(2, 2, 2, 2), 443}};
    pairs.insert(pair);
  }
  EXPECT_EQ(pairs.size(), 100u);
}

TEST(SocketPairTest, HashConsistentWithEquality) {
  const SocketPair a{{Ipv4Addr(1, 1, 1, 1), 1}, {Ipv4Addr(2, 2, 2, 2), 2}};
  const SocketPair b = a;
  EXPECT_EQ(std::hash<SocketPair>{}(a), std::hash<SocketPair>{}(b));
}

}  // namespace
}  // namespace libspector::net
