#include <gtest/gtest.h>

#include <vector>

#include "net/capture.hpp"
#include "util/rng.hpp"

namespace libspector::net {
namespace {

constexpr SocketPair kPair{{Ipv4Addr(10, 0, 2, 15), 40000},
                           {Ipv4Addr(198, 18, 0, 5), 443}};

void expectSameVolume(const CaptureFile::StreamVolume& naive,
                      const CaptureFile::StreamVolume& indexed,
                      const std::string& context) {
  EXPECT_EQ(naive.bytesFromSrc, indexed.bytesFromSrc) << context;
  EXPECT_EQ(naive.bytesFromDst, indexed.bytesFromDst) << context;
  EXPECT_EQ(naive.payloadFromSrc, indexed.payloadFromSrc) << context;
  EXPECT_EQ(naive.payloadFromDst, indexed.payloadFromDst) << context;
  EXPECT_EQ(naive.packetCount, indexed.packetCount) << context;
  // The RTT axis: first-packet-per-direction timestamps must agree too,
  // on both the sorted-view fast path and the resorted slow path.
  EXPECT_EQ(naive.firstFromSrcMs, indexed.firstFromSrcMs) << context;
  EXPECT_EQ(naive.firstFromDstMs, indexed.firstFromDstMs) << context;
  EXPECT_EQ(naive.rttMs(), indexed.rttMs()) << context;
}

TEST(CaptureIndexTest, EmptyCaptureAnswersZero) {
  const CaptureFile capture;
  const CaptureIndex index(capture);
  EXPECT_EQ(index.connectionCount(), 0u);
  const auto volume = index.streamVolume(kPair, 0, 1000);
  EXPECT_EQ(volume.packetCount, 0u);
  EXPECT_EQ(volume.bytesFromSrc, 0u);
}

TEST(CaptureIndexTest, UnknownPairAnswersZero) {
  CaptureFile capture;
  capture.append(makeTcpPacket(10, kPair, 140, 100));
  const CaptureIndex index(capture);
  const SocketPair other{{Ipv4Addr(10, 0, 2, 15), 40001},
                         {Ipv4Addr(198, 18, 0, 5), 443}};
  EXPECT_EQ(index.streamVolume(other, 0, 1000).packetCount, 0u);
}

TEST(CaptureIndexTest, MatchesNaiveInBothOrientations) {
  CaptureFile capture;
  capture.append(makeTcpPacket(10, kPair, 140, 100));
  capture.append(makeTcpPacket(20, kPair.reversed(), 1540, 1500));
  capture.append(makeTcpPacket(30, kPair, 40, 0));
  const CaptureIndex index(capture);
  expectSameVolume(capture.streamVolume(kPair, 0, 100),
                   index.streamVolume(kPair, 0, 100), "device-first");
  expectSameVolume(capture.streamVolume(kPair.reversed(), 0, 100),
                   index.streamVolume(kPair.reversed(), 0, 100),
                   "server-first");
  // The reversed query swaps the direction split.
  const auto reversed = index.streamVolume(kPair.reversed(), 0, 100);
  EXPECT_EQ(reversed.bytesFromSrc, 1540u);
  EXPECT_EQ(reversed.bytesFromDst, 180u);
}

TEST(CaptureIndexTest, UnsortedTimestampsAreHandled) {
  // CaptureFile::append makes no ordering promise; the index must sort.
  CaptureFile capture;
  capture.append(makeTcpPacket(300, kPair, 340, 300));
  capture.append(makeTcpPacket(100, kPair, 140, 100));
  capture.append(makeTcpPacket(200, kPair.reversed(), 240, 200));
  const CaptureIndex index(capture);
  for (const auto& [from, to] : std::vector<std::pair<util::SimTimeMs,
                                                      util::SimTimeMs>>{
           {0, 99}, {100, 100}, {100, 200}, {150, 300}, {301, 400}, {0, 400}}) {
    expectSameVolume(capture.streamVolume(kPair, from, to),
                     index.streamVolume(kPair, from, to),
                     "window [" + std::to_string(from) + "," +
                         std::to_string(to) + "]");
  }
}

// The property the whole attribution stage rests on: on arbitrary captures
// the index answers every query exactly like the naive scan, including
// window edges, both orientations, DNS/UDP packets, and pairs that collide
// after normalization.
TEST(CaptureIndexTest, PropertyRandomCapturesMatchNaiveScan) {
  util::Rng rng(20260805);
  for (int round = 0; round < 25; ++round) {
    // A small endpoint pool forces connection collisions and revisits.
    std::vector<SockEndpoint> endpoints;
    for (int e = 0; e < 6; ++e)
      endpoints.push_back({Ipv4Addr(static_cast<std::uint32_t>(
                               0x0a000000 + rng.uniform(1, 4))),
                           static_cast<std::uint16_t>(rng.uniform(1, 5))});

    const auto randomPair = [&] {
      return SocketPair{rng.pick(endpoints), rng.pick(endpoints)};
    };

    CaptureFile capture;
    const std::size_t packetCount = rng.uniform(0, 120);
    for (std::size_t i = 0; i < packetCount; ++i) {
      const auto ts = rng.uniform(0, 50);  // dense: many equal timestamps
      const auto wire = static_cast<std::uint32_t>(rng.uniform(40, 1500));
      const auto payload =
          rng.chance(0.3) ? 0u : static_cast<std::uint32_t>(rng.uniform(1, wire));
      if (rng.chance(0.2)) {
        capture.append(makeUdpPacket(ts, randomPair(), wire, payload, "q.example",
                                     Ipv4Addr(1, 2, 3, 4)));
      } else {
        capture.append(makeTcpPacket(ts, randomPair(), wire, payload));
      }
    }

    const CaptureIndex index(capture);
    EXPECT_EQ(index.packetCount(), capture.size());

    for (int q = 0; q < 60; ++q) {
      const SocketPair pair = randomPair();
      // Random windows, biased to hit edges: from > to, from == to, and
      // full-range all occur.
      util::SimTimeMs from = rng.uniform(0, 55);
      util::SimTimeMs to = rng.uniform(0, 55);
      if (rng.chance(0.2)) to = from;
      if (rng.chance(0.1)) {
        from = 0;
        to = 1'000'000;
      }
      expectSameVolume(capture.streamVolume(pair, from, to),
                       index.streamVolume(pair, from, to),
                       "round " + std::to_string(round) + " query " +
                           std::to_string(q) + " pair " + pair.str());
    }
  }
}

// ---------------------------------------------------------------------------
// RTT axis (§14): first-packet-per-direction timestamps and the derived
// round-trip estimate.
// ---------------------------------------------------------------------------

TEST(CaptureIndexTest, RttIsFirstResponseGapWithinTheWindow) {
  CaptureFile capture;
  capture.append(makeTcpPacket(100, kPair, 140, 100));             // request
  capture.append(makeTcpPacket(127, kPair.reversed(), 540, 500));  // response
  capture.append(makeTcpPacket(130, kPair, 140, 100));
  const CaptureIndex index(capture);
  const auto volume = index.streamVolume(kPair, 0, 1000);
  EXPECT_EQ(volume.firstFromSrcMs, 100u);
  EXPECT_EQ(volume.firstFromDstMs, 127u);
  EXPECT_EQ(volume.rttMs(), 27u);
}

TEST(CaptureIndexTest, RttIsZeroWithoutAResponse) {
  CaptureFile capture;
  capture.append(makeTcpPacket(100, kPair, 140, 100));
  const CaptureIndex index(capture);
  const auto volume = index.streamVolume(kPair, 0, 1000);
  EXPECT_EQ(volume.firstFromSrcMs, 100u);
  EXPECT_EQ(volume.firstFromDstMs, CaptureFile::StreamVolume::kNoTimestamp);
  EXPECT_EQ(volume.rttMs(), 0u);
}

TEST(CaptureIndexTest, RttIsZeroWhenResponsePrecedesRequestInWindow) {
  // A keep-alive window can open mid-stream, catching the tail of the
  // previous response before this request's first packet. A negative gap
  // is not a latency measurement.
  CaptureFile capture;
  capture.append(makeTcpPacket(90, kPair.reversed(), 540, 500));  // stale tail
  capture.append(makeTcpPacket(100, kPair, 140, 100));
  const CaptureIndex index(capture);
  const auto volume = index.streamVolume(kPair, 80, 1000);
  EXPECT_EQ(volume.firstFromDstMs, 90u);
  EXPECT_EQ(volume.rttMs(), 0u);
}

TEST(CaptureIndexTest, RttWindowingMatchesNaiveOnTheResortedPath) {
  // Out-of-order appends push the connection onto the index's resorted
  // slow path; the per-direction first-timestamp scan must still agree
  // with the naive reference on every window.
  CaptureFile capture;
  capture.append(makeTcpPacket(300, kPair.reversed(), 340, 300));
  capture.append(makeTcpPacket(100, kPair, 140, 100));
  capture.append(makeTcpPacket(200, kPair.reversed(), 240, 200));
  capture.append(makeTcpPacket(150, kPair, 40, 0));
  const CaptureIndex index(capture);
  for (util::SimTimeMs from : {0u, 100u, 150u, 151u, 250u})
    for (util::SimTimeMs to : {99u, 150u, 200u, 299u, 400u})
      expectSameVolume(capture.streamVolume(kPair, from, to),
                       index.streamVolume(kPair, from, to),
                       "resorted window [" + std::to_string(from) + "," +
                           std::to_string(to) + "]");
}

// ---------------------------------------------------------------------------
// Keep-alive request windows (§14): consecutive windows over one socket
// partition the capture exactly — every payload byte lands in exactly one
// logical request, whatever the segmentation looks like.
// ---------------------------------------------------------------------------

/// Sum per-direction payload over consecutive windows split at
/// `boundaries` (each boundary starts a new window) and check the totals
/// against the whole-capture scan.
void expectWindowsPartition(const CaptureFile& capture,
                            const std::vector<util::SimTimeMs>& boundaries,
                            const std::string& context) {
  const CaptureIndex index(capture);
  std::uint64_t paySrc = 0, payDst = 0;
  std::size_t packets = 0;
  for (std::size_t k = 0; k < boundaries.size(); ++k) {
    const util::SimTimeMs from = boundaries[k];
    const util::SimTimeMs to = k + 1 < boundaries.size()
                                   ? boundaries[k + 1] - 1
                                   : ~util::SimTimeMs{0};
    const auto volume = index.streamVolume(kPair, from, to);
    paySrc += volume.payloadFromSrc;
    payDst += volume.payloadFromDst;
    packets += volume.packetCount;
  }
  const auto whole = capture.streamVolume(kPair, 0, ~util::SimTimeMs{0});
  EXPECT_EQ(paySrc, whole.payloadFromSrc) << context;
  EXPECT_EQ(payDst, whole.payloadFromDst) << context;
  EXPECT_EQ(packets, whole.packetCount) << context;
  EXPECT_EQ(paySrc + payDst, capture.totalTcpPayloadBytes()) << context;
}

TEST(CaptureIndexTest, KeepAliveWindowsPartitionAtASegmentSplit) {
  // The second request's boundary lands exactly between two segments of
  // the same burst: the earlier segment must count for request 0, the
  // later (timestamp == boundary) for request 1 — never both, never
  // neither.
  CaptureFile capture;
  capture.append(makeTcpPacket(100, kPair, 640, 600));
  capture.append(makeTcpPacket(199, kPair, 940, 900));             // last of req 0
  capture.append(makeTcpPacket(200, kPair, 340, 300));             // first of req 1
  capture.append(makeTcpPacket(210, kPair.reversed(), 1540, 1500));
  expectWindowsPartition(capture, {0, 200}, "segment split");

  const CaptureIndex index(capture);
  EXPECT_EQ(index.streamVolume(kPair, 0, 199).payloadFromSrc, 1500u);
  EXPECT_EQ(index.streamVolume(kPair, 200, ~util::SimTimeMs{0}).payloadFromSrc,
            300u);
}

TEST(CaptureIndexTest, ZeroByteRequestWindowsAreEmptyNotWrong) {
  // A logical request that transferred nothing (cache hit) still owns a
  // window; it must contribute zero, and its neighbours must be unaffected.
  CaptureFile capture;
  capture.append(makeTcpPacket(100, kPair, 240, 200));
  capture.append(makeTcpPacket(110, kPair.reversed(), 840, 800));
  // [300, 499] is request 1's window: silent.
  capture.append(makeTcpPacket(500, kPair, 340, 300));
  expectWindowsPartition(capture, {0, 300, 500}, "zero-byte request");
  const CaptureIndex index(capture);
  const auto empty = index.streamVolume(kPair, 300, 499);
  EXPECT_EQ(empty.packetCount, 0u);
  EXPECT_EQ(empty.rttMs(), 0u);
}

TEST(CaptureIndexTest, InterleavedResponsesStayConserved) {
  // A slow response to request 0 arrives after request 1 opened. Windows
  // split by time, so the late bytes land in request 1's window — the
  // partition invariant (no loss, no double count) is what holds.
  CaptureFile capture;
  capture.append(makeTcpPacket(100, kPair, 240, 200));              // req 0
  capture.append(makeTcpPacket(300, kPair, 440, 400));              // req 1
  capture.append(makeTcpPacket(310, kPair.reversed(), 1040, 1000)); // late resp 0
  capture.append(makeTcpPacket(320, kPair.reversed(), 2040, 2000)); // resp 1
  expectWindowsPartition(capture, {0, 300}, "interleaved responses");
}

TEST(CaptureIndexTest, FinMidRequestAddsNoPayload) {
  // A FIN (header-only) inside a request window counts as a packet and
  // wire bytes but never as data transfer.
  CaptureFile capture;
  capture.append(makeTcpPacket(100, kPair, 240, 200));
  capture.append(makeTcpPacket(150, kPair, 40, 0));  // FIN
  capture.append(makeTcpPacket(160, kPair.reversed(), 40, 0));  // FIN-ACK
  capture.append(makeTcpPacket(200, kPair.reversed(), 540, 500));
  expectWindowsPartition(capture, {0, 180}, "fin mid-request");
  const CaptureIndex index(capture);
  const auto volume = index.streamVolume(kPair, 0, 180);
  EXPECT_EQ(volume.payloadFromSrc, 200u);
  EXPECT_EQ(volume.payloadFromDst, 0u);
  EXPECT_EQ(volume.bytesFromSrc, 280u);  // wire bytes do include the FIN
  EXPECT_EQ(volume.packetCount, 3u);
}

}  // namespace
}  // namespace libspector::net
