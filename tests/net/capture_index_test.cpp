#include <gtest/gtest.h>

#include <vector>

#include "net/capture.hpp"
#include "util/rng.hpp"

namespace libspector::net {
namespace {

constexpr SocketPair kPair{{Ipv4Addr(10, 0, 2, 15), 40000},
                           {Ipv4Addr(198, 18, 0, 5), 443}};

void expectSameVolume(const CaptureFile::StreamVolume& naive,
                      const CaptureFile::StreamVolume& indexed,
                      const std::string& context) {
  EXPECT_EQ(naive.bytesFromSrc, indexed.bytesFromSrc) << context;
  EXPECT_EQ(naive.bytesFromDst, indexed.bytesFromDst) << context;
  EXPECT_EQ(naive.payloadFromSrc, indexed.payloadFromSrc) << context;
  EXPECT_EQ(naive.payloadFromDst, indexed.payloadFromDst) << context;
  EXPECT_EQ(naive.packetCount, indexed.packetCount) << context;
}

TEST(CaptureIndexTest, EmptyCaptureAnswersZero) {
  const CaptureFile capture;
  const CaptureIndex index(capture);
  EXPECT_EQ(index.connectionCount(), 0u);
  const auto volume = index.streamVolume(kPair, 0, 1000);
  EXPECT_EQ(volume.packetCount, 0u);
  EXPECT_EQ(volume.bytesFromSrc, 0u);
}

TEST(CaptureIndexTest, UnknownPairAnswersZero) {
  CaptureFile capture;
  capture.append(makeTcpPacket(10, kPair, 140, 100));
  const CaptureIndex index(capture);
  const SocketPair other{{Ipv4Addr(10, 0, 2, 15), 40001},
                         {Ipv4Addr(198, 18, 0, 5), 443}};
  EXPECT_EQ(index.streamVolume(other, 0, 1000).packetCount, 0u);
}

TEST(CaptureIndexTest, MatchesNaiveInBothOrientations) {
  CaptureFile capture;
  capture.append(makeTcpPacket(10, kPair, 140, 100));
  capture.append(makeTcpPacket(20, kPair.reversed(), 1540, 1500));
  capture.append(makeTcpPacket(30, kPair, 40, 0));
  const CaptureIndex index(capture);
  expectSameVolume(capture.streamVolume(kPair, 0, 100),
                   index.streamVolume(kPair, 0, 100), "device-first");
  expectSameVolume(capture.streamVolume(kPair.reversed(), 0, 100),
                   index.streamVolume(kPair.reversed(), 0, 100),
                   "server-first");
  // The reversed query swaps the direction split.
  const auto reversed = index.streamVolume(kPair.reversed(), 0, 100);
  EXPECT_EQ(reversed.bytesFromSrc, 1540u);
  EXPECT_EQ(reversed.bytesFromDst, 180u);
}

TEST(CaptureIndexTest, UnsortedTimestampsAreHandled) {
  // CaptureFile::append makes no ordering promise; the index must sort.
  CaptureFile capture;
  capture.append(makeTcpPacket(300, kPair, 340, 300));
  capture.append(makeTcpPacket(100, kPair, 140, 100));
  capture.append(makeTcpPacket(200, kPair.reversed(), 240, 200));
  const CaptureIndex index(capture);
  for (const auto& [from, to] : std::vector<std::pair<util::SimTimeMs,
                                                      util::SimTimeMs>>{
           {0, 99}, {100, 100}, {100, 200}, {150, 300}, {301, 400}, {0, 400}}) {
    expectSameVolume(capture.streamVolume(kPair, from, to),
                     index.streamVolume(kPair, from, to),
                     "window [" + std::to_string(from) + "," +
                         std::to_string(to) + "]");
  }
}

// The property the whole attribution stage rests on: on arbitrary captures
// the index answers every query exactly like the naive scan, including
// window edges, both orientations, DNS/UDP packets, and pairs that collide
// after normalization.
TEST(CaptureIndexTest, PropertyRandomCapturesMatchNaiveScan) {
  util::Rng rng(20260805);
  for (int round = 0; round < 25; ++round) {
    // A small endpoint pool forces connection collisions and revisits.
    std::vector<SockEndpoint> endpoints;
    for (int e = 0; e < 6; ++e)
      endpoints.push_back({Ipv4Addr(static_cast<std::uint32_t>(
                               0x0a000000 + rng.uniform(1, 4))),
                           static_cast<std::uint16_t>(rng.uniform(1, 5))});

    const auto randomPair = [&] {
      return SocketPair{rng.pick(endpoints), rng.pick(endpoints)};
    };

    CaptureFile capture;
    const std::size_t packetCount = rng.uniform(0, 120);
    for (std::size_t i = 0; i < packetCount; ++i) {
      const auto ts = rng.uniform(0, 50);  // dense: many equal timestamps
      const auto wire = static_cast<std::uint32_t>(rng.uniform(40, 1500));
      const auto payload =
          rng.chance(0.3) ? 0u : static_cast<std::uint32_t>(rng.uniform(1, wire));
      if (rng.chance(0.2)) {
        capture.append(makeUdpPacket(ts, randomPair(), wire, payload, "q.example",
                                     Ipv4Addr(1, 2, 3, 4)));
      } else {
        capture.append(makeTcpPacket(ts, randomPair(), wire, payload));
      }
    }

    const CaptureIndex index(capture);
    EXPECT_EQ(index.packetCount(), capture.size());

    for (int q = 0; q < 60; ++q) {
      const SocketPair pair = randomPair();
      // Random windows, biased to hit edges: from > to, from == to, and
      // full-range all occur.
      util::SimTimeMs from = rng.uniform(0, 55);
      util::SimTimeMs to = rng.uniform(0, 55);
      if (rng.chance(0.2)) to = from;
      if (rng.chance(0.1)) {
        from = 0;
        to = 1'000'000;
      }
      expectSameVolume(capture.streamVolume(pair, from, to),
                       index.streamVolume(pair, from, to),
                       "round " + std::to_string(round) + " query " +
                           std::to_string(q) + " pair " + pair.str());
    }
  }
}

}  // namespace
}  // namespace libspector::net
