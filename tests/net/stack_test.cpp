#include "net/stack.hpp"

#include <gtest/gtest.h>

namespace libspector::net {
namespace {

class StackTest : public ::testing::Test {
 protected:
  StackTest() {
    EndpointProfile profile;
    profile.domain = "api.example.com";
    profile.trueCategory = "business_and_finance";
    profile.responseLogMu = 9.0;
    profile.responseLogSigma = 0.4;
    profile.minResponseBytes = 2000;
    profile.maxResponseBytes = 100000;
    serverIp_ = farm_.addEndpoint(profile);
  }

  NetworkStack makeStack(StackConfig config = {}) {
    return NetworkStack(farm_, clock_, util::Rng(77), config);
  }

  ServerFarm farm_;
  util::SimClock clock_;
  Ipv4Addr serverIp_;
};

TEST_F(StackTest, ConnectEstablishesWithHandshake) {
  auto stack = makeStack();
  const auto result = stack.connectTcp("api.example.com", 443);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(stack.isOpen(result->id));
  EXPECT_EQ(result->pair.src.ip, Ipv4Addr(10, 0, 2, 15));
  EXPECT_EQ(result->pair.dst, (SockEndpoint{serverIp_, 443}));

  // DNS query + response, SYN, SYN-ACK, ACK.
  ASSERT_EQ(stack.capture().size(), 5u);
  EXPECT_EQ(stack.capture().packets()[2].wireBytes, 40u);  // SYN
  EXPECT_EQ(stack.capture().packets()[3].pair, result->pair.reversed());
}

TEST_F(StackTest, ConnectToUnknownDomainFails) {
  auto stack = makeStack();
  EXPECT_FALSE(stack.connectTcp("ghost.example.com", 443).has_value());
  EXPECT_EQ(stack.openSocketCount(), 0u);
}

TEST_F(StackTest, TransferAccountsPayloadBothWays) {
  auto stack = makeStack();
  const auto conn = stack.connectTcp("api.example.com", 443);
  ASSERT_TRUE(conn.has_value());
  const auto transfer = stack.transfer(conn->id, 500);
  EXPECT_EQ(transfer.sentPayloadBytes, 500u);
  EXPECT_GE(transfer.recvPayloadBytes, 2000u);
  EXPECT_LE(transfer.recvPayloadBytes, 100000u);

  const auto volume = stack.capture().streamVolume(conn->pair, 0, clock_.now());
  EXPECT_EQ(volume.payloadFromSrc, 500u);
  EXPECT_EQ(volume.payloadFromDst, transfer.recvPayloadBytes);
  // Wire bytes include per-segment headers.
  EXPECT_GT(volume.bytesFromDst, volume.payloadFromDst);
}

TEST_F(StackTest, WireBytesIncludeOneHeaderPerSegment) {
  auto stack = makeStack();
  const auto conn = stack.connectTcp("api.example.com", 443);
  const auto transfer = stack.transfer(conn->id, 100);
  const auto volume = stack.capture().streamVolume(conn->pair, 0, clock_.now());
  const std::uint64_t payload = transfer.recvPayloadBytes;
  const std::uint64_t segments = (payload + 1459) / 1460;
  EXPECT_EQ(volume.bytesFromDst, payload + segments * 40 + 40);  // + SYN-ACK
}

TEST_F(StackTest, TransferOnClosedSocketThrows) {
  auto stack = makeStack();
  const auto conn = stack.connectTcp("api.example.com", 443);
  stack.closeTcp(conn->id);
  EXPECT_THROW((void)stack.transfer(conn->id, 100), std::logic_error);
  EXPECT_THROW(stack.closeTcp(conn->id), std::logic_error);
  EXPECT_THROW((void)stack.transfer(9999, 100), std::logic_error);
}

TEST_F(StackTest, PairRemainsQueryableAfterClose) {
  auto stack = makeStack();
  const auto conn = stack.connectTcp("api.example.com", 443);
  stack.closeTcp(conn->id);
  ASSERT_NE(stack.pairOf(conn->id), nullptr);
  EXPECT_EQ(*stack.pairOf(conn->id), conn->pair);
  ASSERT_NE(stack.domainOf(conn->id), nullptr);
  EXPECT_EQ(*stack.domainOf(conn->id), "api.example.com");
  EXPECT_FALSE(stack.isOpen(conn->id));
}

TEST_F(StackTest, LiveSocketPairsAreUniqueAtAnyInstant) {
  auto stack = makeStack();
  std::unordered_set<SocketPair> live;
  std::vector<SocketId> ids;
  for (int i = 0; i < 50; ++i) {
    const auto conn = stack.connectTcp("api.example.com", 443);
    ASSERT_TRUE(conn.has_value());
    EXPECT_TRUE(live.insert(conn->pair).second) << "duplicate live pair";
    ids.push_back(conn->id);
  }
  for (const SocketId id : ids) stack.closeTcp(id);
  EXPECT_EQ(stack.openSocketCount(), 0u);
}

TEST_F(StackTest, SocketIdsNeverReused) {
  auto stack = makeStack();
  const auto a = stack.connectTcp("api.example.com", 443);
  stack.closeTcp(a->id);
  const auto b = stack.connectTcp("api.example.com", 443);
  EXPECT_NE(a->id, b->id);
}

TEST_F(StackTest, InjectedConnectFailures) {
  StackConfig config;
  config.connectFailureProb = 1.0;
  auto stack = makeStack(config);
  EXPECT_FALSE(stack.connectTcp("api.example.com", 443).has_value());
  // DNS pair + SYN + retransmitted SYN, no established connection.
  EXPECT_EQ(stack.capture().size(), 4u);
  EXPECT_EQ(stack.openSocketCount(), 0u);
}

TEST_F(StackTest, UdpDatagramDeliveredToSink) {
  auto stack = makeStack();
  const SockEndpoint collector{Ipv4Addr(10, 0, 2, 2), 5005};
  std::vector<std::uint8_t> received;
  SockEndpoint from;
  stack.registerUdpSink(collector, [&](const SockEndpoint& src,
                                       std::span<const std::uint8_t> payload) {
    from = src;
    received.assign(payload.begin(), payload.end());
  });
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  stack.sendUdpDatagram(collector, payload);
  EXPECT_EQ(received, payload);
  EXPECT_EQ(from.ip, Ipv4Addr(10, 0, 2, 15));
  // Also recorded in the capture.
  ASSERT_EQ(stack.capture().size(), 1u);
  EXPECT_EQ(stack.capture().packets()[0].proto, Proto::Udp);
  EXPECT_EQ(stack.capture().packets()[0].payloadBytes, 4u);
}

TEST_F(StackTest, UdpWithoutSinkIsStillCaptured) {
  auto stack = makeStack();
  const std::vector<std::uint8_t> payload = {9};
  stack.sendUdpDatagram({Ipv4Addr(8, 8, 8, 8), 9999}, payload);
  EXPECT_EQ(stack.capture().size(), 1u);
}

TEST_F(StackTest, RejectsBadPortRange) {
  StackConfig config;
  config.ephemeralBase = 50000;
  config.ephemeralLimit = 50000;
  EXPECT_THROW(NetworkStack(farm_, clock_, util::Rng(1), config),
               std::invalid_argument);
}

TEST_F(StackTest, EphemeralPortsRecycleAfterClose) {
  StackConfig config;
  config.ephemeralBase = 50000;
  config.ephemeralLimit = 50005;  // only 5 usable ports
  auto stack = makeStack(config);
  for (int round = 0; round < 4; ++round) {
    std::vector<SocketId> ids;
    for (int i = 0; i < 5; ++i) {
      const auto conn = stack.connectTcp("api.example.com", 443);
      ASSERT_TRUE(conn.has_value());
      ids.push_back(conn->id);
    }
    for (const SocketId id : ids) stack.closeTcp(id);
  }
}

TEST_F(StackTest, EphemeralPortExhaustionThrows) {
  StackConfig config;
  config.ephemeralBase = 50000;
  config.ephemeralLimit = 50003;  // ports 50000..50003 inclusive
  auto stack = makeStack(config);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(stack.connectTcp("api.example.com", 443).has_value());
  EXPECT_THROW((void)stack.connectTcp("api.example.com", 443),
               std::runtime_error);
}

TEST_F(StackTest, ClockAdvancesThroughLifecycle) {
  auto stack = makeStack();
  const auto start = clock_.now();
  const auto conn = stack.connectTcp("api.example.com", 443);
  stack.transfer(conn->id, 100);
  stack.closeTcp(conn->id);
  EXPECT_GT(clock_.now(), start);
}

}  // namespace
}  // namespace libspector::net
