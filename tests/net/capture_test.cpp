#include "net/capture.hpp"

#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace libspector::net {
namespace {

const SocketPair kPair{{Ipv4Addr(10, 0, 2, 15), 40000}, {Ipv4Addr(2, 2, 2, 2), 443}};
const SocketPair kOther{{Ipv4Addr(10, 0, 2, 15), 40001}, {Ipv4Addr(2, 2, 2, 2), 443}};

TEST(CaptureTest, StreamVolumeSeparatesDirections) {
  CaptureFile capture;
  capture.append(makeTcpPacket(10, kPair, 540, 500));             // out
  capture.append(makeTcpPacket(11, kPair.reversed(), 1540, 1500));  // in
  capture.append(makeTcpPacket(12, kPair, 40, 0));                // ACK out

  const auto volume = capture.streamVolume(kPair, 0, 100);
  EXPECT_EQ(volume.bytesFromSrc, 580u);
  EXPECT_EQ(volume.bytesFromDst, 1540u);
  EXPECT_EQ(volume.payloadFromSrc, 500u);
  EXPECT_EQ(volume.payloadFromDst, 1500u);
  EXPECT_EQ(volume.packetCount, 3u);
}

TEST(CaptureTest, StreamVolumeRespectsTimeWindow) {
  CaptureFile capture;
  capture.append(makeTcpPacket(10, kPair, 100, 60));
  capture.append(makeTcpPacket(50, kPair, 200, 160));
  capture.append(makeTcpPacket(90, kPair, 400, 360));

  const auto volume = capture.streamVolume(kPair, 20, 60);
  EXPECT_EQ(volume.bytesFromSrc, 200u);
  EXPECT_EQ(volume.packetCount, 1u);
}

TEST(CaptureTest, StreamVolumeIgnoresOtherPairs) {
  CaptureFile capture;
  capture.append(makeTcpPacket(10, kPair, 100, 60));
  capture.append(makeTcpPacket(10, kOther, 999, 900));
  const auto volume = capture.streamVolume(kPair, 0, 100);
  EXPECT_EQ(volume.bytesFromSrc, 100u);
  EXPECT_EQ(volume.packetCount, 1u);
}

TEST(CaptureTest, StreamVolumeMatchesQueryOrientation) {
  CaptureFile capture;
  capture.append(makeTcpPacket(10, kPair, 100, 60));
  // Query with the reversed pair: bytesFromSrc must now be the server side.
  const auto volume = capture.streamVolume(kPair.reversed(), 0, 100);
  EXPECT_EQ(volume.bytesFromSrc, 0u);
  EXPECT_EQ(volume.bytesFromDst, 100u);
}

TEST(CaptureTest, TotalWireBytes) {
  CaptureFile capture;
  capture.append(makeTcpPacket(1, kPair, 100, 60));
  capture.append(makeUdpPacket(2, kPair, 50, 22));
  EXPECT_EQ(capture.totalWireBytes(), 150u);
}

TEST(CaptureTest, SerializeRoundTripsIncludingDnsFields) {
  CaptureFile capture;
  capture.append(makeTcpPacket(1, kPair, 100, 60));
  capture.append(makeUdpPacket(2, kPair, 80, 52, "ads1.example.com",
                               Ipv4Addr(198, 18, 0, 7)));
  const auto decoded = CaptureFile::deserialize(capture.serialize());
  EXPECT_EQ(decoded, capture);
  EXPECT_TRUE(decoded.packets()[1].isDns());
  EXPECT_EQ(decoded.packets()[1].dnsQname, "ads1.example.com");
  EXPECT_EQ(decoded.packets()[1].dnsAnswer, Ipv4Addr(198, 18, 0, 7));
}

TEST(CaptureTest, DeserializeRejectsCorruptInput) {
  CaptureFile capture;
  capture.append(makeTcpPacket(1, kPair, 100, 60));
  auto bytes = capture.serialize();
  bytes[0] ^= 0x01;
  EXPECT_THROW((void)CaptureFile::deserialize(bytes), util::DecodeError);
  const auto good = capture.serialize();
  const std::span<const std::uint8_t> truncated(good.data(), good.size() - 3);
  EXPECT_THROW((void)CaptureFile::deserialize(truncated), util::DecodeError);
}

TEST(CaptureTest, EmptyCapture) {
  const CaptureFile capture;
  EXPECT_EQ(capture.size(), 0u);
  EXPECT_EQ(capture.totalWireBytes(), 0u);
  const auto decoded = CaptureFile::deserialize(capture.serialize());
  EXPECT_EQ(decoded, capture);
  const auto volume = capture.streamVolume(kPair, 0, 100);
  EXPECT_EQ(volume.packetCount, 0u);
}

TEST(CaptureTest, TotalTcpPayloadIsMaintainedIncrementally) {
  // The O(1) counter must equal a full scan: TCP payload only — wire
  // overhead, UDP and pure-ACK packets contribute nothing.
  CaptureFile capture;
  EXPECT_EQ(capture.totalTcpPayloadBytes(), 0u);
  capture.append(makeTcpPacket(1, kPair, 540, 500));
  capture.append(makeTcpPacket(2, kPair.reversed(), 1540, 1500));
  capture.append(makeTcpPacket(3, kPair, 40, 0));  // bare ACK
  capture.append(makeUdpPacket(4, kPair, 120, 92));
  capture.append(makeTcpPacket(5, kOther, 240, 200));
  EXPECT_EQ(capture.totalTcpPayloadBytes(), 500u + 1500u + 200u);

  // The counter is derived state: it must survive serialization and agree
  // with the index built over the same capture.
  const auto decoded = CaptureFile::deserialize(capture.serialize());
  EXPECT_EQ(decoded.totalTcpPayloadBytes(), capture.totalTcpPayloadBytes());
  const CaptureIndex index(capture);
  EXPECT_EQ(index.totalTcpPayload(), capture.totalTcpPayloadBytes());
}

TEST(CaptureTest, IsDnsOnlyForNamedPackets) {
  EXPECT_FALSE(makeTcpPacket(1, kPair, 40, 0).isDns());
  EXPECT_FALSE(makeUdpPacket(1, kPair, 40, 12).isDns());
  EXPECT_TRUE(makeUdpPacket(1, kPair, 40, 12, "example.com").isDns());
}

}  // namespace
}  // namespace libspector::net
