#include "util/symbol.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace libspector::util {
namespace {

TEST(SymbolPool, InternDedupesAndAssignsDenseIds) {
  SymbolPool pool;
  Symbol a = pool.intern("com.example.app");
  Symbol b = pool.intern("Advertisement");
  Symbol a2 = pool.intern("com.example.app");

  EXPECT_EQ(a.id(), 0u);
  EXPECT_EQ(b.id(), 1u);
  EXPECT_EQ(a2.id(), a.id());
  EXPECT_EQ(a2.identity(), a.identity());
  EXPECT_EQ(a.view(), "com.example.app");
  EXPECT_EQ(b.view(), "Advertisement");
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.textBytes(),
            std::string("com.example.app").size() +
                std::string("Advertisement").size());
}

TEST(SymbolPool, DefaultSymbolIsEmptyWithNoId) {
  Symbol s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.view(), "");
  EXPECT_EQ(s.id(), Symbol::kNoId);
  EXPECT_EQ(s.identity(), nullptr);
  EXPECT_EQ(s.str(), "");
}

TEST(SymbolPool, EmptyStringIsInternable) {
  SymbolPool pool;
  Symbol e = pool.intern("");
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.id(), 0u);
  EXPECT_NE(e.identity(), nullptr);
  // An interned "" compares equal to a default Symbol by content...
  EXPECT_EQ(e, Symbol{});
  // ...but is resolvable by id.
  EXPECT_EQ(pool.at(0).identity(), e.identity());
}

TEST(SymbolPool, FindDoesNotInsert) {
  SymbolPool pool;
  EXPECT_EQ(pool.find("absent").identity(), nullptr);
  EXPECT_EQ(pool.size(), 0u);
  Symbol s = pool.intern("present");
  EXPECT_EQ(pool.find("present").identity(), s.identity());
  EXPECT_EQ(pool.size(), 1u);
}

TEST(SymbolPool, AtResolvesIdsAndBoundsChecks) {
  SymbolPool pool;
  std::vector<Symbol> syms;
  for (int i = 0; i < 100; ++i)
    syms.push_back(pool.intern("sym-" + std::to_string(i)));
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(pool.at(i).identity(), syms[i].identity());
    EXPECT_EQ(pool.at(i).id(), i);
  }
  EXPECT_EQ(pool.at(100).identity(), nullptr);
  EXPECT_EQ(pool.at(Symbol::kNoId).identity(), nullptr);
}

TEST(SymbolPool, ViewsStayStableAcrossChunkAndTableGrowth) {
  SymbolPool pool;
  // Cross multiple 1024-entry chunks and several table doublings.
  constexpr int kCount = 5000;
  std::vector<Symbol> syms;
  std::vector<const char*> data;
  syms.reserve(kCount);
  for (int i = 0; i < kCount; ++i) {
    syms.push_back(pool.intern("Lcom/vendor/pkg" + std::to_string(i) +
                               "/Widget;->draw(Landroid/graphics/Canvas;)V"));
    data.push_back(syms.back().view().data());
  }
  ASSERT_EQ(pool.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    // The underlying storage never moved...
    EXPECT_EQ(syms[i].view().data(), data[i]);
    // ...and re-interning still finds the original entry.
    Symbol again = pool.intern(syms[i].view());
    EXPECT_EQ(again.identity(), syms[i].identity());
  }
}

TEST(SymbolPool, ContentEqualityWorksAcrossPools) {
  SymbolPool a;
  SymbolPool b;
  Symbol sa = a.intern("shared.text");
  Symbol sb = b.intern("shared.text");
  EXPECT_NE(sa.identity(), sb.identity());
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa, std::string_view("shared.text"));
  EXPECT_EQ(std::hash<Symbol>{}(sa), std::hash<Symbol>{}(sb));
}

TEST(SymbolPool, SymbolsUsableAsUnorderedKeys) {
  SymbolPool pool;
  std::unordered_map<Symbol, int> counts;
  counts[pool.intern("ads")] += 1;
  counts[pool.intern("cdn")] += 2;
  counts[pool.intern("ads")] += 3;
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[pool.intern("ads")], 4);
  EXPECT_EQ(counts[pool.intern("cdn")], 2);
}

TEST(SymbolPool, MoveKeepsSymbolsValid) {
  SymbolPool pool;
  Symbol s = pool.intern("survives-the-move");
  SymbolPool moved = std::move(pool);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.at(0).identity(), s.identity());
  EXPECT_EQ(s.view(), "survives-the-move");
}

TEST(SymbolPool, ConcurrentInternIsConsistent) {
  SymbolPool pool;
  constexpr int kThreads = 8;
  constexpr int kShared = 400;   // contended: every thread interns these
  constexpr int kPrivate = 300;  // uncontended per-thread strings

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::vector<std::vector<Symbol>> sharedSeen(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      sharedSeen[t].reserve(kShared);
      for (int i = 0; i < kShared; ++i) {
        Symbol s = pool.intern("shared/" + std::to_string(i));
        sharedSeen[t].push_back(s);
        // Lock-free readers race the writers.
        EXPECT_EQ(pool.find(s.view()).identity(), s.identity());
        EXPECT_EQ(pool.at(s.id()).identity(), s.identity());
      }
      for (int i = 0; i < kPrivate; ++i)
        (void)pool.intern("private/" + std::to_string(t) + "/" +
                          std::to_string(i));
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  EXPECT_EQ(pool.size(),
            static_cast<std::size_t>(kShared + kThreads * kPrivate));
  // Every thread resolved each shared string to the same entry.
  for (int i = 0; i < kShared; ++i)
    for (int t = 1; t < kThreads; ++t)
      EXPECT_EQ(sharedSeen[t][i].identity(), sharedSeen[0][i].identity());
  // Ids are dense and resolvable, and every string round-trips.
  std::unordered_set<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < pool.size(); ++i) {
    Symbol s = pool.at(i);
    ASSERT_NE(s.identity(), nullptr);
    EXPECT_EQ(s.id(), i);
    EXPECT_TRUE(ids.insert(s.id()).second);
    EXPECT_EQ(pool.find(s.view()).identity(), s.identity());
  }
}

}  // namespace
}  // namespace libspector::util
