#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace libspector::util {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.sum(), 0.0);
}

TEST(OnlineStatsTest, MatchesNaiveComputation) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  OnlineStats stats;
  for (const double v : values) stats.add(v);
  EXPECT_EQ(stats.count(), values.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(PercentileTest, BasicQuartiles) {
  const std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 25), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenPoints) {
  const std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(values, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 75), 7.5);
}

TEST(PercentileTest, UnsortedInputIsHandled) {
  const std::vector<double> values = {9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(percentile(values, 50), 5.0);
}

TEST(PercentileTest, RejectsBadInput) {
  const std::vector<double> empty;
  const std::vector<double> one = {1.0};
  EXPECT_THROW((void)percentile(empty, 50), std::invalid_argument);
  EXPECT_THROW((void)percentile(one, -1), std::invalid_argument);
  EXPECT_THROW((void)percentile(one, 101), std::invalid_argument);
}

TEST(EmpiricalCdfTest, EmptyInput) {
  EXPECT_TRUE(empiricalCdf({}).empty());
}

TEST(EmpiricalCdfTest, MonotoneAndEndsAtOne) {
  std::vector<double> values;
  for (int i = 100; i > 0; --i) values.push_back(static_cast<double>(i));
  const auto cdf = empiricalCdf(values, 32);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LE(cdf[i - 1].fraction, cdf[i].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 100.0);
}

TEST(EmpiricalCdfTest, DownsamplesToRequestedPoints) {
  std::vector<double> values(1000, 1.0);
  EXPECT_EQ(empiricalCdf(values, 64).size(), 64u);
  EXPECT_EQ(empiricalCdf({1.0, 2.0}, 64).size(), 2u);
}

TEST(LogHistogramTest, CountsLandInRightBuckets) {
  LogHistogram histogram(1.0, 1e6, 6);  // decade per bucket
  histogram.add(5.0);      // bucket 0
  histogram.add(50.0);     // bucket 1
  histogram.add(500000.0); // bucket 5
  EXPECT_EQ(histogram.countAt(0), 1u);
  EXPECT_EQ(histogram.countAt(1), 1u);
  EXPECT_EQ(histogram.countAt(5), 1u);
  EXPECT_EQ(histogram.total(), 3u);
}

TEST(LogHistogramTest, ClampsOutOfRange) {
  LogHistogram histogram(10.0, 1000.0, 4);
  histogram.add(1.0);     // below range -> first bucket
  histogram.add(1e9);     // above range -> last bucket
  EXPECT_EQ(histogram.countAt(0), 1u);
  EXPECT_EQ(histogram.countAt(3), 1u);
}

TEST(LogHistogramTest, BinEdgesAreLogSpaced) {
  LogHistogram histogram(1.0, 10000.0, 4);
  EXPECT_NEAR(histogram.binLowerEdge(0), 1.0, 1e-9);
  EXPECT_NEAR(histogram.binLowerEdge(1), 10.0, 1e-6);
  EXPECT_NEAR(histogram.binLowerEdge(2), 100.0, 1e-5);
  EXPECT_THROW((void)histogram.binLowerEdge(4), std::out_of_range);
}

TEST(LogHistogramTest, RejectsBadRange) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace libspector::util
