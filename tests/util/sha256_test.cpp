#include "util/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace libspector::util {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(toHex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(toHex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(toHex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  std::string input(1000000, 'a');
  EXPECT_EQ(toHex(Sha256::hash(input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: padding must spill into a second block.
  std::string input(64, 'x');
  const auto digest = Sha256::hash(input);
  Sha256 h;
  h.update(input);
  EXPECT_EQ(h.finish(), digest);
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, repeatedly and at length, "
      "to exercise multi-block hashing paths.";
  const auto oneShot = Sha256::hash(data);
  // Feed in awkward chunk sizes.
  for (const std::size_t chunk : {1UL, 3UL, 7UL, 63UL, 64UL, 65UL}) {
    Sha256 h;
    for (std::size_t pos = 0; pos < data.size(); pos += chunk)
      h.update(std::string_view(data).substr(pos, chunk));
    EXPECT_EQ(h.finish(), oneShot) << "chunk size " << chunk;
  }
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash("hello"), Sha256::hash("hellp"));
  EXPECT_NE(Sha256::hash(std::string("a")), Sha256::hash(std::string("a\0", 2)));
}

TEST(Sha256Test, ToHexFormatsAllBytes) {
  const auto digest = Sha256::hash("abc");
  const std::string hex = toHex(digest);
  EXPECT_EQ(hex.size(), 64u);
  for (const char c : hex)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
}

// Property: hashing N bytes of a repeating pattern is stable across chunk
// decomposition, for lengths around block boundaries.
class Sha256LengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256LengthSweep, ChunkingInvariance) {
  const std::size_t length = GetParam();
  std::string data(length, '\0');
  for (std::size_t i = 0; i < length; ++i)
    data[i] = static_cast<char>('A' + (i % 23));
  const auto expected = Sha256::hash(data);
  Sha256 h;
  std::size_t pos = 0;
  std::size_t step = 1;
  while (pos < data.size()) {
    const std::size_t take = std::min(step, data.size() - pos);
    h.update(std::string_view(data).substr(pos, take));
    pos += take;
    step = step * 2 + 1;
  }
  EXPECT_EQ(h.finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha256LengthSweep,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 127,
                                           128, 129, 1000, 4096));

}  // namespace
}  // namespace libspector::util
