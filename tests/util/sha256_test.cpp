#include "util/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace libspector::util {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(toHex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(toHex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(toHex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, EightNinetySixBitMessage) {
  // The 896-bit FIPS 180-4 long-message vector ("abcdefgh..." x 112 chars).
  EXPECT_EQ(
      toHex(Sha256::hash("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghi"
                         "jklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrs"
                         "tnopqrstu")),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256Test, MillionAs) {
  std::string input(1000000, 'a');
  EXPECT_EQ(toHex(Sha256::hash(input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: padding must spill into a second block.
  std::string input(64, 'x');
  const auto digest = Sha256::hash(input);
  Sha256 h;
  h.update(input);
  EXPECT_EQ(h.finish(), digest);
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, repeatedly and at length, "
      "to exercise multi-block hashing paths.";
  const auto oneShot = Sha256::hash(data);
  // Feed in awkward chunk sizes.
  for (const std::size_t chunk : {1UL, 3UL, 7UL, 63UL, 64UL, 65UL}) {
    Sha256 h;
    for (std::size_t pos = 0; pos < data.size(); pos += chunk)
      h.update(std::string_view(data).substr(pos, chunk));
    EXPECT_EQ(h.finish(), oneShot) << "chunk size " << chunk;
  }
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash("hello"), Sha256::hash("hellp"));
  EXPECT_NE(Sha256::hash(std::string("a")), Sha256::hash(std::string("a\0", 2)));
}

TEST(Sha256Test, ToHexFormatsAllBytes) {
  const auto digest = Sha256::hash("abc");
  const std::string hex = toHex(digest);
  EXPECT_EQ(hex.size(), 64u);
  for (const char c : hex)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
}

// Property: hashing N bytes of a repeating pattern is stable across chunk
// decomposition, for lengths around block boundaries.
class Sha256LengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256LengthSweep, ChunkingInvariance) {
  const std::size_t length = GetParam();
  std::string data(length, '\0');
  for (std::size_t i = 0; i < length; ++i)
    data[i] = static_cast<char>('A' + (i % 23));
  const auto expected = Sha256::hash(data);
  Sha256 h;
  std::size_t pos = 0;
  std::size_t step = 1;
  while (pos < data.size()) {
    const std::size_t take = std::min(step, data.size() - pos);
    h.update(std::string_view(data).substr(pos, take));
    pos += take;
    step = step * 2 + 1;
  }
  EXPECT_EQ(h.finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha256LengthSweep,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 127,
                                           128, 129, 1000, 4096));

// Equivalence property: for 1,000 random buffers, chunked update() at
// random split points matches the one-shot digest. This is the contract
// the streaming apk-serialization walk rides on — any buffering bug at a
// block boundary would silently change every apk identity in a study.
TEST(Sha256Test, RandomSplitPointsMatchOneShotFor1000Buffers) {
  Rng rng(0x5eed5a256ULL);  // deterministic
  for (int round = 0; round < 1000; ++round) {
    const auto length = static_cast<std::size_t>(rng.uniform(0, 300));
    std::string data(length, '\0');
    for (auto& c : data)
      c = static_cast<char>(rng.uniform(0, 255));
    const auto oneShot = Sha256::hash(data);

    Sha256 chunked;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const auto take = static_cast<std::size_t>(
          rng.uniform(1, static_cast<std::uint64_t>(data.size() - pos)));
      chunked.update(std::string_view(data).substr(pos, take));
      pos += take;
    }
    ASSERT_EQ(chunked.finish(), oneShot) << "round " << round
                                         << " length " << length;
  }
}

// Sha256Writer must produce the digest of exactly the byte stream
// ByteWriter materializes — field for field, including the u32 length
// prefixes on strings. ApkFile::sha256() depends on this equivalence to
// hash in one serialization walk.
TEST(Sha256WriterTest, MatchesByteWriterEncoding) {
  ByteWriter materialized;
  Sha256Writer streamed;
  const auto both = [&](auto&& op) {
    op(materialized);
    op(streamed);
  };
  both([](auto& w) { w.u8(0x42); });
  both([](auto& w) { w.u16(0xBEEF); });
  both([](auto& w) { w.u32(0xDEADBEEF); });
  both([](auto& w) { w.u64(0x0123456789ABCDEFULL); });
  both([](auto& w) { w.str(""); });
  both([](auto& w) { w.str("com.example.app"); });
  both([](auto& w) { w.str(std::string_view("\x00\xff\x7f", 3)); });
  const std::vector<std::uint8_t> blob{1, 2, 3, 250, 251, 252};
  both([&blob](auto& w) { w.raw(std::span(blob.data(), blob.size())); });

  const auto bytes = materialized.take();
  EXPECT_EQ(streamed.finish(),
            Sha256::hash(std::span(bytes.data(), bytes.size())));
}

TEST(Sha256WriterTest, RandomFieldSequencesMatchByteWriter) {
  Rng rng(20260805);
  for (int round = 0; round < 200; ++round) {
    ByteWriter materialized;
    Sha256Writer streamed;
    const auto fields = rng.uniform(0, 40);
    for (std::uint64_t f = 0; f < fields; ++f) {
      switch (rng.uniform(0, 4)) {
        case 0: {
          const auto v = static_cast<std::uint8_t>(rng.next());
          materialized.u8(v);
          streamed.u8(v);
          break;
        }
        case 1: {
          const auto v = static_cast<std::uint16_t>(rng.next());
          materialized.u16(v);
          streamed.u16(v);
          break;
        }
        case 2: {
          const auto v = static_cast<std::uint32_t>(rng.next());
          materialized.u32(v);
          streamed.u32(v);
          break;
        }
        case 3: {
          const std::uint64_t v = rng.next();
          materialized.u64(v);
          streamed.u64(v);
          break;
        }
        default: {
          std::string s(static_cast<std::size_t>(rng.uniform(0, 90)), '\0');
          for (auto& c : s) c = static_cast<char>(rng.uniform(0, 255));
          materialized.str(s);
          streamed.str(s);
          break;
        }
      }
    }
    const auto bytes = materialized.take();
    ASSERT_EQ(streamed.finish(),
              Sha256::hash(std::span(bytes.data(), bytes.size())))
        << "round " << round;
  }
}

}  // namespace
}  // namespace libspector::util
