#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace libspector::util {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(RngTest, UniformThrowsOnInvertedRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform(3, 2), std::invalid_argument);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sumSq = 0.0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sumSq += v * v;
  }
  const double mean = sum / kTrials;
  const double variance = sumSq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(variance), 2.0, 0.1);
}

TEST(RngTest, LognormalIsPositiveWithMatchingMedian) {
  Rng rng(19);
  std::vector<double> values;
  for (int i = 0; i < 20001; ++i) {
    const double v = rng.lognormal(std::log(100.0), 0.5);
    EXPECT_GT(v, 0.0);
    values.push_back(v);
  }
  std::nth_element(values.begin(), values.begin() + values.size() / 2, values.end());
  EXPECT_NEAR(values[values.size() / 2], 100.0, 5.0);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(29);
  std::array<int, 10> counts{};
  for (int i = 0; i < 50000; ++i) ++counts[rng.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[0], 5 * counts[9]);
}

TEST(RngTest, ZipfThrowsOnEmpty) {
  Rng rng(29);
  EXPECT_THROW((void)rng.zipf(0, 1.0), std::invalid_argument);
}

TEST(RngTest, WeightedIndexHonorsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, WeightedIndexRejectsBadInput) {
  Rng rng(31);
  const std::vector<double> zero = {0.0, 0.0};
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW((void)rng.weightedIndex(zero), std::invalid_argument);
  EXPECT_THROW((void)rng.weightedIndex(negative), std::invalid_argument);
}

TEST(RngTest, PickThrowsOnEmptyContainer) {
  Rng rng(37);
  const std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(empty), std::invalid_argument);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng a(99);
  Rng b(99);
  Rng childA = a.fork(7);
  Rng childB = b.fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childA.next(), childB.next());
  // Different labels should diverge even from identical parents.
  Rng c(99);
  Rng d(99);
  Rng childC = c.fork(1);
  Rng childD = d.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (childC.next() == childD.next()) ++equal;
  EXPECT_LT(equal, 3);
}

// Property sweep: every seed must produce in-range uniforms and valid
// weighted draws.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, InvariantsHoldForSeed) {
  Rng rng(GetParam());
  const std::vector<double> weights = {1.0, 2.0, 0.5};
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform(100, 200);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 200u);
    EXPECT_LT(rng.weightedIndex(weights), weights.size());
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL, 20200629ULL));

}  // namespace
}  // namespace libspector::util
