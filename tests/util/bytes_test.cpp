#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace libspector::util {
namespace {

TEST(BytesTest, RoundTripAllWidths) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.str("hello");
  const auto buffer = w.take();

  ByteReader r(buffer);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.atEnd());
}

TEST(BytesTest, EmptyString) {
  ByteWriter w;
  w.str("");
  const auto buffer = w.data();
  ByteReader r(buffer);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.atEnd());
}

TEST(BytesTest, StringWithEmbeddedNulAndBinary) {
  ByteWriter w;
  const std::string payload("a\0b\xff", 4);
  w.str(payload);
  const auto buffer = w.data();
  ByteReader r(buffer);
  EXPECT_EQ(r.str(), payload);
}

TEST(BytesTest, TruncatedIntegerThrows) {
  ByteWriter w;
  w.u16(7);
  const auto buffer = w.data();
  ByteReader r(buffer);
  EXPECT_THROW((void)r.u32(), DecodeError);
}

TEST(BytesTest, TruncatedStringBodyThrows) {
  ByteWriter w;
  w.u32(100);  // length prefix claiming 100 bytes that do not exist
  const auto buffer = w.data();
  ByteReader r(buffer);
  EXPECT_THROW((void)r.str(), DecodeError);
}

TEST(BytesTest, EmptyBufferThrowsImmediately) {
  ByteReader r({});
  EXPECT_TRUE(r.atEnd());
  EXPECT_THROW((void)r.u8(), DecodeError);
}

TEST(BytesTest, RemainingTracksPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  const auto buffer = w.data();
  ByteReader r(buffer);
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, RawAppendsVerbatim) {
  ByteWriter w;
  const std::uint8_t raw[] = {1, 2, 3};
  w.raw(raw);
  EXPECT_EQ(w.data().size(), 3u);
  EXPECT_EQ(w.data()[2], 3);
}

TEST(BytesTest, CheckedU32PassesThroughAnyRepresentableSize) {
  EXPECT_EQ(checkedU32(0, "field"), 0u);
  EXPECT_EQ(checkedU32(0xFFFFFFFFull, "field"), 0xFFFFFFFFu);
}

TEST(BytesTest, CheckedU32ThrowsInsteadOfTruncating) {
  // The mocked >4GiB size a real capture could reach: the old unchecked
  // cast would wrap it to 0 and emit an undecodable length field.
  EXPECT_THROW((void)checkedU32(1ull << 32, "capture"), std::length_error);
  EXPECT_THROW((void)checkedU32((1ull << 32) + 17, "capture"),
               std::length_error);
  try {
    (void)checkedU32(1ull << 33, "RunArtifacts::serialize capture");
    FAIL() << "expected std::length_error";
  } catch (const std::length_error& error) {
    EXPECT_NE(std::string(error.what()).find("RunArtifacts::serialize"),
              std::string::npos);
  }
}

TEST(BytesTest, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

}  // namespace
}  // namespace libspector::util
