#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace libspector::util {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, PreservesEmptyFields) {
  const auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, NoDelimiterYieldsWhole) {
  const auto parts = split("abc", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, EmptyInput) {
  const auto parts = split("", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"com", "unity3d", "ads"};
  EXPECT_EQ(join(parts, "."), "com.unity3d.ads");
  EXPECT_EQ(split(join(parts, "."), '.'), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"one"}, "."), "one");
}

TEST(ToLowerTest, MixedCase) {
  EXPECT_EQ(toLower("AdVeRt-123"), "advert-123");
}

TEST(HierarchicalPrefixTest, ExactMatch) {
  EXPECT_TRUE(isHierarchicalPrefix("com.unity3d", "com.unity3d"));
}

TEST(HierarchicalPrefixTest, ProperPrefixWithSeparator) {
  EXPECT_TRUE(isHierarchicalPrefix("com.unity3d", "com.unity3d.ads"));
}

TEST(HierarchicalPrefixTest, RejectsNonBoundaryPrefix) {
  // The paper's rule: com.unity3d must NOT match com.unity3dx.
  EXPECT_FALSE(isHierarchicalPrefix("com.unity3d", "com.unity3dx"));
  EXPECT_FALSE(isHierarchicalPrefix("com.unity3d", "com.unity3dx.ads"));
}

TEST(HierarchicalPrefixTest, RejectsLongerPrefix) {
  EXPECT_FALSE(isHierarchicalPrefix("com.unity3d.ads", "com.unity3d"));
}

TEST(HierarchicalPrefixTest, EmptyPrefixNeverMatches) {
  EXPECT_FALSE(isHierarchicalPrefix("", "com.unity3d"));
}

// The allocation-free twin of isHierarchicalPrefix over raw smali parts:
// for every (prefix, class, method) it must agree with materializing
// slashToDot(class) + "." + method and matching against that.
TEST(HierarchicalPrefixTest, SlashedFrameVariantAgreesWithMaterialized) {
  const struct {
    std::string_view prefix;
    std::string_view slashedClass;
    std::string_view method;
  } cases[] = {
      {"com.unity3d", "com/unity3d/ads/android/cache/b", "doInBackground"},
      {"com.unity3d", "com/unity3dx/ads", "run"},
      {"com.unity3d.ads", "com/unity3d", "ads"},  // boundary inside method
      {"java.net", "java/net/Socket", "connect"},
      {"java.net.Socket.connect", "java/net/Socket", "connect"},  // exact
      {"java.net.Socket.connectX", "java/net/Socket", "connect"},
      {"java.net.Socket.conn", "java/net/Socket", "connect"},
      {"", "com/foo/Bar", "m"},
      {"com.foo.Bar.m.extra", "com/foo/Bar", "m"},  // longer than frame
      {"android.os", "android/os/AsyncTask$2", "call"},
  };
  for (const auto& c : cases) {
    std::string frame;
    for (const char ch : c.slashedClass)
      frame.push_back(ch == '/' ? '.' : ch);
    frame.push_back('.');
    frame.append(c.method);
    EXPECT_EQ(
        isHierarchicalPrefixOfSlashedFrame(c.prefix, c.slashedClass, c.method),
        isHierarchicalPrefix(c.prefix, frame))
        << "prefix=" << c.prefix << " frame=" << frame;
  }
}

TEST(HierarchicalPrefixTest, SlashedFrameMatchesAcrossTheClassMethodSeam) {
  // A prefix ending exactly at the class/method boundary must see the
  // virtual '.' that joins them.
  EXPECT_TRUE(isHierarchicalPrefixOfSlashedFrame("java.net.Socket",
                                                 "java/net/Socket", "connect"));
  EXPECT_FALSE(isHierarchicalPrefixOfSlashedFrame("java.net.Sock",
                                                  "java/net/Socket", "connect"));
}

TEST(PrefixLevelsTest, TruncatesToLevels) {
  EXPECT_EQ(prefixLevels("com.unity3d.ads.android.cache", 2), "com.unity3d");
  EXPECT_EQ(prefixLevels("com.unity3d.ads.android.cache", 3), "com.unity3d.ads");
}

TEST(PrefixLevelsTest, ShortInputsReturnedWhole) {
  EXPECT_EQ(prefixLevels("okhttp3", 2), "okhttp3");
  EXPECT_EQ(prefixLevels("com.google", 2), "com.google");
}

TEST(PrefixLevelsTest, ZeroOrNegativeLevels) {
  EXPECT_EQ(prefixLevels("com.foo", 0), "");
  EXPECT_EQ(prefixLevels("com.foo", -1), "");
}

TEST(ContainsTest, Substrings) {
  EXPECT_TRUE(contains("advertising network", "advert"));
  EXPECT_FALSE(contains("analytics", "advert"));
  EXPECT_TRUE(contains("abc", ""));
}

TEST(HumanBytesTest, UnitsScale) {
  EXPECT_EQ(humanBytes(713), "713 B");
  EXPECT_EQ(humanBytes(1536), "1.50 KB");
  EXPECT_EQ(humanBytes(1024.0 * 1024.0 * 1.59), "1.59 MB");
  EXPECT_EQ(humanBytes(1024.0 * 1024.0 * 1024.0 * 2.84), "2.84 GB");
}

}  // namespace
}  // namespace libspector::util
