#include "core/analysis.hpp"

#include "core/supervisor.hpp"

#include <gtest/gtest.h>

namespace libspector::core {
namespace {

// Backs the test flows' symbols; static so every FlowRecord built here
// stays valid for the whole test binary (mirrors the attributor's pool).
util::Symbol sym(std::string_view text) {
  static util::SymbolPool pool;
  return pool.intern(text);
}

FlowRecord flow(const std::string& app, const std::string& appCategory,
                const std::string& library, const std::string& libCategory,
                const std::string& domain, const std::string& domainCategory,
                std::uint64_t sent, std::uint64_t recv, bool ant = false,
                bool common = false) {
  FlowRecord record;
  record.apkSha256 = sym(app);
  record.appPackage = sym(app);
  record.appCategory = sym(appCategory);
  record.originLibrary = sym(library);
  record.twoLevelLibrary =
      sym(library.substr(0, library.find('.', library.find('.') + 1)));
  record.libraryCategory = sym(libCategory);
  record.domain = sym(domain);
  record.domainCategory = sym(domainCategory);
  record.sentBytes = sent;
  record.recvBytes = recv;
  record.antOrigin = ant;
  record.commonOrigin = common;
  return record;
}

RunArtifacts appRun(const std::string& sha, const std::string& category,
                    double coverage = 0.1, std::size_t totalMethods = 1000) {
  RunArtifacts run;
  run.apkSha256 = sha;
  run.packageName = sha;
  run.appCategory = category;
  run.coverage.totalMethods = totalMethods;
  run.coverage.coveredMethods =
      static_cast<std::size_t>(coverage * static_cast<double>(totalMethods));
  return run;
}

class AnalysisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // App 1 (game): one ad flow, one engine flow.
    const std::vector<FlowRecord> app1 = {
        flow("app1", "GAME_ACTION", "com.unity3d.ads.cache", "Advertisement",
             "ads1.com", "advertisements", 100, 10000, /*ant=*/true),
        flow("app1", "GAME_ACTION", "com.unity3d.player", "Game Engine",
             "cdn1.net", "cdn", 200, 40000, false, /*common=*/true),
    };
    // App 2 (news): one first-party flow only.
    const std::vector<FlowRecord> app2 = {
        flow("app2", "NEWS_AND_MAGAZINES", "com.news.app.net", "Unknown",
             "api1.com", "business_and_finance", 50, 500),
    };
    // App 3 (tools): AnT-only traffic.
    const std::vector<FlowRecord> app3 = {
        flow("app3", "TOOLS", "com.unity3d.ads.cache", "Advertisement",
             "ads1.com", "advertisements", 10, 900, /*ant=*/true),
    };
    // App 4: no traffic at all.
    aggregator_.addApp(appRun("app1", "GAME_ACTION", 0.20, 1000), app1);
    aggregator_.addApp(appRun("app2", "NEWS_AND_MAGAZINES", 0.05, 2000), app2);
    aggregator_.addApp(appRun("app3", "TOOLS", 0.10, 3000), app3);
    aggregator_.addApp(appRun("app4", "TOOLS", 0.01, 4000), {});
  }

  StudyAggregator aggregator_;
};

TEST_F(AnalysisTest, Totals) {
  const auto totals = aggregator_.totals();
  EXPECT_EQ(totals.appCount, 4u);
  EXPECT_EQ(totals.flowCount, 4u);
  EXPECT_EQ(totals.sentBytes, 360u);
  EXPECT_EQ(totals.recvBytes, 51400u);
  EXPECT_EQ(totals.totalBytes, 51760u);
  EXPECT_EQ(totals.originLibraryCount, 3u);  // unity3d.ads.cache shared
  EXPECT_EQ(totals.domainCount, 3u);
}

TEST_F(AnalysisTest, TransferByLibCategory) {
  const auto byCategory = aggregator_.transferByLibCategory();
  EXPECT_EQ(byCategory.at("Advertisement"), 100u + 10000u + 10u + 900u);
  EXPECT_EQ(byCategory.at("Game Engine"), 40200u);
  EXPECT_EQ(byCategory.at("Unknown"), 550u);
}

TEST_F(AnalysisTest, Fig2Matrix) {
  const auto& matrix = aggregator_.transferByAppAndLibCategory();
  EXPECT_EQ(matrix.at("GAME_ACTION").at("Advertisement"), 10100u);
  EXPECT_EQ(matrix.at("GAME_ACTION").at("Game Engine"), 40200u);
  EXPECT_EQ(matrix.at("TOOLS").at("Advertisement"), 910u);
  EXPECT_FALSE(matrix.contains("FINANCE"));
}

TEST_F(AnalysisTest, TopLibraries) {
  const auto top = aggregator_.topOriginLibraries(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "com.unity3d.player");
  EXPECT_EQ(top[0].bytes, 40200u);
  EXPECT_EQ(top[1].name, "com.unity3d.ads.cache");
  EXPECT_EQ(top[1].bytes, 11010u);

  const auto twoLevel = aggregator_.topTwoLevelLibraries(1);
  ASSERT_EQ(twoLevel.size(), 1u);
  EXPECT_EQ(twoLevel[0].name, "com.unity3d");
  EXPECT_EQ(twoLevel[0].bytes, 40200u + 11010u);
}

TEST_F(AnalysisTest, FlowRatios) {
  const auto appRatios = aggregator_.flowRatios(StudyAggregator::Entity::App);
  // app4 has no traffic -> skipped; three ratios remain, sorted.
  ASSERT_EQ(appRatios.ratios.size(), 3u);
  EXPECT_NEAR(appRatios.ratios[0], 10.0, 1e-9);                    // app2 500/50
  EXPECT_NEAR(appRatios.ratios[1], 90.0, 1e-9);                    // app3 900/10
  EXPECT_NEAR(appRatios.ratios.back(), 50000.0 / 300.0, 1e-9);     // app1
  const double expectedMean = (50000.0 / 300.0 + 10.0 + 90.0) / 3.0;
  EXPECT_NEAR(appRatios.mean, expectedMean, 1e-9);

  const auto domainRatios =
      aggregator_.flowRatios(StudyAggregator::Entity::Domain);
  EXPECT_EQ(domainRatios.ratios.size(), 3u);
}

TEST_F(AnalysisTest, AnTStats) {
  const auto stats = aggregator_.antStats();
  EXPECT_EQ(stats.appsWithTraffic, 3u);
  EXPECT_EQ(stats.antOnlyApps, 1u);  // app3
  EXPECT_EQ(stats.someAntApps, 2u);  // app1, app3
  EXPECT_EQ(stats.noAntApps, 1u);    // app2
  ASSERT_EQ(stats.antShare.size(), 3u);
  EXPECT_NEAR(stats.antShare.back(), 1.0, 1e-9);  // AnT-only app
  // Library flow ratios: AnT lib = unity3d.ads.cache (recv 10900/sent 110).
  EXPECT_NEAR(stats.antMeanFlowRatio, 10900.0 / 110.0, 1e-9);
  EXPECT_NEAR(stats.clMeanFlowRatio, 40000.0 / 200.0, 1e-9);
}

TEST_F(AnalysisTest, AveragesByCategory) {
  const auto perLibrary = aggregator_.avgBytesPerLibraryByCategory();
  EXPECT_NEAR(perLibrary.at("Advertisement"), 11010.0, 1e-9);  // one library
  EXPECT_NEAR(perLibrary.at("Game Engine"), 40200.0, 1e-9);

  const auto perDomain = aggregator_.avgBytesPerDomainByCategory();
  EXPECT_NEAR(perDomain.at("advertisements"), 11010.0, 1e-9);
  EXPECT_NEAR(perDomain.at("cdn"), 40200.0, 1e-9);

  const auto perApp = aggregator_.avgBytesPerAppByCategory();
  EXPECT_NEAR(perApp.at("GAME_ACTION"), 50300.0, 1e-9);
  EXPECT_NEAR(perApp.at("TOOLS"), 910.0 / 2.0, 1e-9);  // app4 dilutes
}

TEST_F(AnalysisTest, Heatmap) {
  const auto& heatmap = aggregator_.libraryDomainHeatmap();
  EXPECT_EQ(heatmap.at("Advertisement").at("advertisements"), 11010u);
  EXPECT_EQ(heatmap.at("Game Engine").at("cdn"), 40200u);
  EXPECT_EQ(heatmap.at("Unknown").at("business_and_finance"), 550u);
}

TEST_F(AnalysisTest, KnownLibraryCdnShare) {
  // Known (non-Unknown) traffic: 11010 ads + 40200 cdn; cdn share.
  EXPECT_NEAR(aggregator_.knownLibraryCdnShare(),
              40200.0 / (11010.0 + 40200.0), 1e-9);
}

TEST_F(AnalysisTest, CoverageStats) {
  const auto coverage = aggregator_.coverageStats();
  ASSERT_EQ(coverage.perApp.size(), 4u);
  EXPECT_NEAR(coverage.mean, (0.20 + 0.05 + 0.10 + 0.01) / 4.0, 1e-9);
  EXPECT_NEAR(coverage.meanMethodsPerApk, 2500.0, 1e-9);
  EXPECT_NEAR(coverage.fractionAboveMean, 0.5, 1e-9);  // 0.20 and 0.10
}

TEST_F(AnalysisTest, Concentration) {
  const auto concentration = aggregator_.concentration();
  // app1 alone holds ~97% of traffic.
  EXPECT_EQ(concentration.appsForHalf, 1u);
  EXPECT_EQ(concentration.librariesForHalf, 1u);
  EXPECT_EQ(concentration.domainsForHalf, 1u);
}

TEST_F(AnalysisTest, MeanBytesPerRun) {
  EXPECT_NEAR(aggregator_.meanBytesPerRun("Advertisement"), 11010.0 / 4.0, 1e-9);
  EXPECT_EQ(aggregator_.meanBytesPerRun("Payment"), 0.0);
}

TEST(AnalysisEdgeTest, EmptyStudy) {
  StudyAggregator aggregator;
  const auto totals = aggregator.totals();
  EXPECT_EQ(totals.appCount, 0u);
  EXPECT_EQ(totals.totalBytes, 0u);
  EXPECT_TRUE(aggregator.flowRatios(StudyAggregator::Entity::App).ratios.empty());
  EXPECT_EQ(aggregator.antStats().appsWithTraffic, 0u);
  EXPECT_EQ(aggregator.coverageStats().mean, 0.0);
  EXPECT_EQ(aggregator.knownLibraryCdnShare(), 0.0);
  EXPECT_EQ(aggregator.meanBytesPerRun("Advertisement"), 0.0);
}

TEST(AnalysisEdgeTest, UdpStatsSeparateReportsFromDns) {
  StudyAggregator aggregator;
  RunArtifacts run = appRun("app", "TOOLS");
  const net::SocketPair dnsPair{{net::Ipv4Addr(10, 0, 2, 15), 1000},
                                {net::Ipv4Addr(10, 0, 2, 3), 53}};
  run.capture.append(net::makeUdpPacket(1, dnsPair, 70, 42, "x.com",
                                        net::Ipv4Addr(198, 18, 0, 1)));
  const net::SocketPair reportPair{{net::Ipv4Addr(10, 0, 2, 15), 1001},
                                   kDefaultCollectorEndpoint};
  run.capture.append(net::makeUdpPacket(2, reportPair, 300, 272));
  const net::SocketPair tcpPair{{net::Ipv4Addr(10, 0, 2, 15), 1002},
                                {net::Ipv4Addr(198, 18, 0, 1), 443}};
  run.capture.append(net::makeTcpPacket(3, tcpPair, 1540, 1500));
  aggregator.addApp(run, {});

  const auto& udp = aggregator.udpStats();
  EXPECT_EQ(udp.dnsBytes, 70u);
  EXPECT_EQ(udp.udpBytes, 70u);      // excludes Libspector reports
  EXPECT_EQ(udp.reportBytes, 300u);
  EXPECT_EQ(udp.totalBytes, 1910u);
}

}  // namespace
}  // namespace libspector::core
