#include "core/artifacts.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace libspector::core {
namespace {

RunArtifacts sampleArtifacts() {
  RunArtifacts artifacts;
  artifacts.apkSha256 = "cafe01";
  artifacts.packageName = "com.example.app";
  artifacts.appCategory = "GAME_WORD";

  const net::SocketPair pair{{net::Ipv4Addr(10, 0, 2, 15), 40000},
                             {net::Ipv4Addr(198, 18, 0, 3), 443}};
  artifacts.capture.append(net::makeTcpPacket(10, pair, 540, 500));
  artifacts.capture.append(net::makeUdpPacket(
      12, pair, 70, 42, "ads1.x.com", net::Ipv4Addr(198, 18, 0, 3)));
  artifacts.capture.appendHttp({14, pair, "ads1.x.com", "/ads", "UnityAds", false});

  UdpReport report;
  report.apkSha256 = "cafe01";
  report.socketPair = pair;
  report.timestampMs = 9;
  report.stackSignatures = {"java.net.Socket.connect",
                            "Lcom/lib/b;->doInBackground()V"};
  artifacts.reports.push_back(report);

  artifacts.methodTraceFile = {"Lcom/lib/b;->doInBackground()V",
                               "java.net.Socket.connect"};
  artifacts.coverage.coveredMethods = 12;
  artifacts.coverage.totalMethods = 480;
  artifacts.coverage.traceEntries = 15;
  artifacts.monkeyEventsInjected = 960;
  artifacts.runDurationMs = 480000;
  return artifacts;
}

TEST(ArtifactsTest, SerializeDeserializeRoundTrip) {
  const RunArtifacts original = sampleArtifacts();
  const RunArtifacts decoded = RunArtifacts::deserialize(original.serialize());

  EXPECT_EQ(decoded.apkSha256, original.apkSha256);
  EXPECT_EQ(decoded.packageName, original.packageName);
  EXPECT_EQ(decoded.appCategory, original.appCategory);
  EXPECT_EQ(decoded.capture, original.capture);
  ASSERT_EQ(decoded.reports.size(), 1u);
  EXPECT_EQ(decoded.reports[0], original.reports[0]);
  EXPECT_EQ(decoded.methodTraceFile, original.methodTraceFile);
  EXPECT_EQ(decoded.coverage.coveredMethods, 12u);
  EXPECT_EQ(decoded.coverage.totalMethods, 480u);
  EXPECT_EQ(decoded.coverage.traceEntries, 15u);
  EXPECT_EQ(decoded.monkeyEventsInjected, 960u);
  EXPECT_EQ(decoded.runDurationMs, 480000u);
}

TEST(ArtifactsTest, EmptyBundleRoundTrips) {
  const RunArtifacts empty;
  const RunArtifacts decoded = RunArtifacts::deserialize(empty.serialize());
  EXPECT_TRUE(decoded.apkSha256.empty());
  EXPECT_EQ(decoded.capture.size(), 0u);
  EXPECT_TRUE(decoded.reports.empty());
}

TEST(ArtifactsTest, RejectsCorruption) {
  auto bytes = sampleArtifacts().serialize();
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)RunArtifacts::deserialize(bytes), util::DecodeError);

  const auto good = sampleArtifacts().serialize();
  const std::span<const std::uint8_t> truncated(good.data(), good.size() - 7);
  EXPECT_THROW((void)RunArtifacts::deserialize(truncated), util::DecodeError);

  auto padded = sampleArtifacts().serialize();
  padded.push_back(0);
  EXPECT_THROW((void)RunArtifacts::deserialize(padded), util::DecodeError);
}

TEST(ArtifactsTest, SerializationIsDeterministic) {
  EXPECT_EQ(sampleArtifacts().serialize(), sampleArtifacts().serialize());
}

TEST(ArtifactsTest, BoundaryFreeBundleKeepsTheExactV2Bytes) {
  // Scenario-off runs must stay byte-identical to the seed corpus: no
  // boundary records means no v3 tail and a version stamp of 2, so a
  // default-constructed boundary list is not merely "empty on decode" —
  // it is invisible on the wire.
  const auto bytes = sampleArtifacts().serialize();
  EXPECT_EQ(bytes[4], 2);  // version u16, little-endian low byte
  EXPECT_EQ(bytes[5], 0);

  RunArtifacts withTouchedList = sampleArtifacts();
  withTouchedList.requestBoundaries.clear();  // explicit no-op
  EXPECT_EQ(withTouchedList.serialize(), bytes);
}

TEST(ArtifactsTest, BoundaryBundleRoundTripsAtV3) {
  RunArtifacts artifacts = sampleArtifacts();
  artifacts.requestBoundaries = {
      {7, 0, 100},
      {7, 1, 2500},
      {9, 4, 0xFFFF'FFFF'0ULL},  // 64-bit timestamp survives
  };
  const auto bytes = artifacts.serialize();
  EXPECT_EQ(bytes[4], 3);  // boundary tail forces the version up

  const RunArtifacts decoded = RunArtifacts::deserialize(bytes);
  EXPECT_EQ(decoded.requestBoundaries, artifacts.requestBoundaries);
  EXPECT_EQ(decoded.reports, artifacts.reports);
  EXPECT_EQ(decoded.serialize(), bytes);

  // A truncated boundary tail is corruption, not a silent short list.
  const std::span<const std::uint8_t> truncated(bytes.data(),
                                                bytes.size() - 10);
  EXPECT_THROW((void)RunArtifacts::deserialize(truncated), util::DecodeError);
}

ApkLossAccount sampleAccount() {
  ApkLossAccount account;
  account.reportsEmitted = 9;
  account.framesDelivered = 8;
  account.uniqueDelivered = 7;
  account.duplicated = 1;
  account.outOfOrder = 2;
  account.lost = 2;
  return account;
}

TEST(ArtifactsTest, LossAccountFromArtifacts) {
  RunArtifacts artifacts = sampleArtifacts();
  artifacts.reportsEmitted = 3;  // 1 survived in `reports`, so 2 were lost
  const auto account = ApkLossAccount::fromArtifacts(artifacts);
  EXPECT_EQ(account.reportsEmitted, 3u);
  EXPECT_EQ(account.uniqueDelivered, artifacts.reports.size());
  EXPECT_EQ(account.lost, 2u);

  // No sender-side count (legacy bundle): nothing can be called lost.
  artifacts.reportsEmitted = 0;
  EXPECT_EQ(ApkLossAccount::fromArtifacts(artifacts).lost, 0u);
}

TEST(ArtifactsTest, EnvelopeRoundTripsIndexAccountAndArtifacts) {
  const RunArtifacts original = sampleArtifacts();
  const auto bytes = SpabEnvelope::encode(42, sampleAccount(), original);
  ASSERT_TRUE(SpabEnvelope::looksFramed(bytes));

  const SpabEnvelope decoded = SpabEnvelope::decode(bytes);
  EXPECT_EQ(decoded.jobIndex, 42u);
  EXPECT_EQ(decoded.account, sampleAccount());
  EXPECT_EQ(decoded.artifacts.serialize(), original.serialize());
}

TEST(ArtifactsTest, EnvelopeCarriesNoJobIndexSentinel) {
  const auto bytes = SpabEnvelope::encode(SpabEnvelope::kNoJobIndex,
                                          sampleAccount(), sampleArtifacts());
  EXPECT_EQ(SpabEnvelope::decode(bytes).jobIndex, SpabEnvelope::kNoJobIndex);
}

TEST(ArtifactsTest, EnvelopeRejectsCorruption) {
  const auto good =
      SpabEnvelope::encode(3, sampleAccount(), sampleArtifacts());

  // Any single flipped payload bit fails the crc, not just header bytes.
  for (const std::size_t pos : {std::size_t{0}, std::size_t{5},
                                good.size() / 2, good.size() - 1}) {
    auto bytes = good;
    bytes[pos] ^= 0x01;
    EXPECT_THROW((void)SpabEnvelope::decode(bytes), util::DecodeError)
        << "flipped byte " << pos;
  }

  const std::span<const std::uint8_t> truncated(good.data(), good.size() - 9);
  EXPECT_THROW((void)SpabEnvelope::decode(truncated), util::DecodeError);

  auto padded = good;
  padded.push_back(0);
  EXPECT_THROW((void)SpabEnvelope::decode(padded), util::DecodeError);
}

TEST(ArtifactsTest, LegacyBundleIsNotMistakenForEnvelope) {
  EXPECT_FALSE(SpabEnvelope::looksFramed(sampleArtifacts().serialize()));
  EXPECT_FALSE(SpabEnvelope::looksFramed({}));
}

}  // namespace
}  // namespace libspector::core
