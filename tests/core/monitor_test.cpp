#include "core/monitor.hpp"

#include <gtest/gtest.h>

namespace libspector::core {
namespace {

dex::ApkFile apkWithMethods(const std::vector<std::string>& signatures) {
  dex::ApkFile apk;
  dex::DexFile dexFile;
  dex::ClassDef cls;
  cls.dottedName = "x";
  for (const auto& signature : signatures) cls.methods.push_back({signature});
  dexFile.classes.push_back(cls);
  apk.dexFiles.push_back(dexFile);
  return apk;
}

TEST(MonitorTest, CoverageIntersectsTraceWithDex) {
  const auto apk = apkWithMethods({"La;->m1()V", "La;->m2()V", "La;->m3()V",
                                   "La;->m4()V"});
  const std::vector<std::string> trace = {
      "La;->m1()V",
      "La;->m3()V",
      "java.net.Socket.connect",           // framework entry, not in dex
      "android.os.AsyncTask$2.call",
  };
  const auto coverage = MethodMonitor::computeCoverage(trace, apk);
  EXPECT_EQ(coverage.totalMethods, 4u);
  EXPECT_EQ(coverage.coveredMethods, 2u);
  EXPECT_EQ(coverage.traceEntries, 4u);
  EXPECT_DOUBLE_EQ(coverage.ratio(), 0.5);
}

TEST(MonitorTest, EmptyTraceZeroCoverage) {
  const auto apk = apkWithMethods({"La;->m1()V"});
  const auto coverage = MethodMonitor::computeCoverage({}, apk);
  EXPECT_EQ(coverage.coveredMethods, 0u);
  EXPECT_DOUBLE_EQ(coverage.ratio(), 0.0);
}

TEST(MonitorTest, EmptyDexYieldsZeroRatioNotDivByZero) {
  const dex::ApkFile apk;
  const auto coverage = MethodMonitor::computeCoverage({"La;->m1()V"}, apk);
  EXPECT_EQ(coverage.totalMethods, 0u);
  EXPECT_DOUBLE_EQ(coverage.ratio(), 0.0);
}

TEST(MonitorTest, OverloadsCountedSeparately) {
  // §IV-C: type signatures distinguish overloaded variants.
  const auto apk = apkWithMethods({"La;->m(I)V", "La;->m(J)V"});
  const auto coverage = MethodMonitor::computeCoverage({"La;->m(I)V"}, apk);
  EXPECT_EQ(coverage.coveredMethods, 1u);
  EXPECT_EQ(coverage.totalMethods, 2u);
}

TEST(MonitorTest, MonitorWiresUniqueTracer) {
  MethodMonitor monitor;
  monitor.tracer().onMethodEntry("La;->m1()V");
  monitor.tracer().onMethodEntry("La;->m1()V");
  monitor.tracer().onMethodEntry("La;->m2()V");
  const auto trace = monitor.writeTraceFile();
  ASSERT_EQ(trace.size(), 2u);  // deduplicated: the paper's ART modification
  EXPECT_EQ(trace[0], "La;->m1()V");
}

}  // namespace
}  // namespace libspector::core
