#include "core/report.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace libspector::core {
namespace {

UdpReport sampleReport() {
  UdpReport report;
  report.apkSha256 = "deadbeef00";
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15), 40001},
                       {net::Ipv4Addr(198, 18, 0, 9), 443}};
  report.timestampMs = 123456;
  report.stackSignatures = {
      "java.net.Socket.connect",
      "com.android.okhttp.internal.Platform.connectSocket",
      "Lcom/unity3d/ads/android/cache/b;->a(Ljava/lang/String;)V",
      "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/String;)V",
      "android.os.AsyncTask$2.call",
      "java.util.concurrent.FutureTask.run"};
  return report;
}

TEST(ReportTest, EncodeDecodeRoundTrip) {
  const UdpReport report = sampleReport();
  const auto datagram = report.encode();
  EXPECT_EQ(UdpReport::decode(datagram), report);
}

TEST(ReportTest, EmptyStackRoundTrips) {
  UdpReport report = sampleReport();
  report.stackSignatures.clear();
  EXPECT_EQ(UdpReport::decode(report.encode()), report);
}

TEST(ReportTest, DatagramFitsTypicalMtu) {
  // One report per socket must remain a single realistic datagram.
  EXPECT_LT(sampleReport().encode().size(), 1400u);
}

TEST(ReportTest, DecodeRejectsCorruption) {
  auto datagram = sampleReport().encode();
  datagram[0] ^= 0xff;  // magic
  EXPECT_THROW((void)UdpReport::decode(datagram), util::DecodeError);

  const auto good = sampleReport().encode();
  const std::span<const std::uint8_t> truncated(good.data(), good.size() / 2);
  EXPECT_THROW((void)UdpReport::decode(truncated), util::DecodeError);

  auto padded = sampleReport().encode();
  padded.push_back(0);
  EXPECT_THROW((void)UdpReport::decode(padded), util::DecodeError);
}

TEST(ReportTest, PreservesSocketPairExactly) {
  const auto decoded = UdpReport::decode(sampleReport().encode());
  EXPECT_EQ(decoded.socketPair.src.port, 40001);
  EXPECT_EQ(decoded.socketPair.dst.ip.str(), "198.18.0.9");
  EXPECT_EQ(decoded.socketPair.dst.port, 443);
}

}  // namespace
}  // namespace libspector::core
