#include "core/report.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace libspector::core {
namespace {

UdpReport sampleReport() {
  UdpReport report;
  report.apkSha256 = "deadbeef00";
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15), 40001},
                       {net::Ipv4Addr(198, 18, 0, 9), 443}};
  report.timestampMs = 123456;
  report.stackSignatures = {
      "java.net.Socket.connect",
      "com.android.okhttp.internal.Platform.connectSocket",
      "Lcom/unity3d/ads/android/cache/b;->a(Ljava/lang/String;)V",
      "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/String;)V",
      "android.os.AsyncTask$2.call",
      "java.util.concurrent.FutureTask.run"};
  return report;
}

TEST(ReportTest, EncodeDecodeRoundTrip) {
  const UdpReport report = sampleReport();
  const auto datagram = report.encode();
  EXPECT_EQ(UdpReport::decode(datagram), report);
}

TEST(ReportTest, EmptyStackRoundTrips) {
  UdpReport report = sampleReport();
  report.stackSignatures.clear();
  EXPECT_EQ(UdpReport::decode(report.encode()), report);
}

TEST(ReportTest, DatagramFitsTypicalMtu) {
  // One report per socket must remain a single realistic datagram.
  EXPECT_LT(sampleReport().encode().size(), 1400u);
}

TEST(ReportTest, DecodeRejectsCorruption) {
  auto datagram = sampleReport().encode();
  datagram[0] ^= 0xff;  // magic
  EXPECT_THROW((void)UdpReport::decode(datagram), util::DecodeError);

  const auto good = sampleReport().encode();
  const std::span<const std::uint8_t> truncated(good.data(), good.size() / 2);
  EXPECT_THROW((void)UdpReport::decode(truncated), util::DecodeError);

  auto padded = sampleReport().encode();
  padded.push_back(0);
  EXPECT_THROW((void)UdpReport::decode(padded), util::DecodeError);
}

TEST(ReportTest, PreservesSocketPairExactly) {
  const auto decoded = UdpReport::decode(sampleReport().encode());
  EXPECT_EQ(decoded.socketPair.src.port, 40001);
  EXPECT_EQ(decoded.socketPair.dst.ip.str(), "198.18.0.9");
  EXPECT_EQ(decoded.socketPair.dst.port, 443);
}

TEST(ReportTest, OrdinalZeroAddsNoWireBytes) {
  // The keep-alive request ordinal is an optional trailing field: the
  // default ordinal 0 (socket opener) must encode to the exact pre-scenario
  // datagram so legacy captures stay byte-identical.
  UdpReport report = sampleReport();
  ASSERT_EQ(report.requestOrdinal, 0u);
  const auto legacy = report.encode();

  report.requestOrdinal = 2;
  const auto tagged = report.encode();
  EXPECT_EQ(tagged.size(), legacy.size() + 4);  // one trailing u32

  const UdpReport decoded = UdpReport::decode(tagged);
  EXPECT_EQ(decoded.requestOrdinal, 2u);
  EXPECT_EQ(decoded, report);
  EXPECT_EQ(UdpReport::decode(legacy).requestOrdinal, 0u);
}

// ---- v3 dictionary wire format -------------------------------------------

constexpr std::uint32_t kFrameMagicOnTheWire = 0x4652534C;  // "LSRF"

TEST(ReportTest, DictFrameRoundTripsExactly) {
  DictReportFrame frame;
  frame.workerId = 9;
  frame.sequence = 17;
  frame.apkSha256 = "deadbeef00";
  frame.socketPair = sampleReport().socketPair;
  frame.timestampMs = 5555;
  frame.defs = {{0, "java.net.Socket.connect"}, {1, "Lcom/a/b;->c()V"}};
  frame.signatureIds = {1, 0, 1};
  EXPECT_EQ(DictReportFrame::decode(frame.encode()), frame);
}

TEST(ReportTest, DictFrameCarriesTheOrdinalOnlyWhenNonZero) {
  DictReportFrame frame;
  frame.workerId = 2;
  frame.sequence = 5;
  frame.apkSha256 = "deadbeef00";
  frame.socketPair = sampleReport().socketPair;
  frame.timestampMs = 777;
  frame.defs = {{0, "java.net.Socket.connect"}};
  frame.signatureIds = {0};
  const auto legacy = frame.encode();
  ASSERT_EQ(DictReportFrame::decode(legacy).requestOrdinal, 0u);

  frame.requestOrdinal = 7;
  const auto tagged = frame.encode();
  EXPECT_EQ(tagged.size(), legacy.size() + 4);
  EXPECT_EQ(DictReportFrame::decode(tagged), frame);

  // Ordinals survive the encoder/stream-decoder path end to end.
  UdpReport viaStream = sampleReport();
  viaStream.requestOrdinal = 7;
  DictFrameEncoder encoder(2);
  ReportStreamDecoder decoder;
  EXPECT_EQ(decoder.decode(encoder.encode(0, viaStream)), viaStream);
}

TEST(ReportTest, DictEncoderDefinesEachSignatureExactlyOnce) {
  const UdpReport report = sampleReport();
  DictFrameEncoder encoder(7);
  const auto first = DictReportFrame::decode(encoder.encode(0, report));
  const auto second = DictReportFrame::decode(encoder.encode(1, report));

  // The first referencing frame carries every definition, in id order.
  ASSERT_EQ(first.defs.size(), report.stackSignatures.size());
  for (std::uint32_t id = 0; id < first.defs.size(); ++id) {
    EXPECT_EQ(first.defs[id].first, id);
    EXPECT_EQ(first.defs[id].second, report.stackSignatures[id]);
  }
  EXPECT_TRUE(second.defs.empty());
  EXPECT_EQ(second.signatureIds, first.signatureIds);
  EXPECT_EQ(encoder.dictionarySize(), report.stackSignatures.size());
}

TEST(ReportTest, SteadyStateDictFrameIsAFractionOfTheLegacyFrame) {
  const UdpReport report = sampleReport();
  DictFrameEncoder encoder(7);
  (void)encoder.encode(0, report);  // definitions paid here, once per run
  const auto steady = encoder.encode(1, report);
  const auto legacy = ReportFrame{7, 1, report}.encode();
  EXPECT_LT(steady.size() * 3, legacy.size());
}

TEST(ReportTest, StreamDecoderRoundTripsADictStream) {
  DictFrameEncoder encoder(3);
  ReportStreamDecoder decoder;
  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    UdpReport report = sampleReport();
    report.socketPair.src.port = static_cast<std::uint16_t>(40000 + seq);
    report.timestampMs = seq;
    // Later sockets reference a strict subset of the dictionary.
    if (seq > 4) report.stackSignatures.resize(3);
    EXPECT_EQ(decoder.decode(encoder.encode(seq, report)), report) << seq;
  }
}

TEST(ReportTest, StreamDecoderHandlesEveryWireFormatInOneStream) {
  const UdpReport report = sampleReport();
  ReportStreamDecoder decoder;
  EXPECT_EQ(decoder.decode(report.encode()), report);  // legacy raw
  EXPECT_EQ(decoder.decode(ReportFrame{1, 0, report}.encode()), report);
  DictFrameEncoder encoder(2);
  EXPECT_EQ(decoder.decode(encoder.encode(0, report)), report);
  EXPECT_EQ(decoder.decode(encoder.encode(1, report)), report);
}

TEST(ReportTest, StreamDecoderKeepsWorkerDictionariesSeparate) {
  // Both workers use id 0, for different signatures.
  UdpReport a = sampleReport();
  a.stackSignatures = {"Lcom/worker/one;->a()V"};
  UdpReport b = sampleReport();
  b.stackSignatures = {"Lcom/worker/two;->b()V"};

  DictFrameEncoder encoderA(1);
  DictFrameEncoder encoderB(2);
  ReportStreamDecoder decoder;
  EXPECT_EQ(decoder.decode(encoderA.encode(0, a)), a);
  EXPECT_EQ(decoder.decode(encoderB.encode(0, b)), b);
  EXPECT_EQ(decoder.decode(encoderA.encode(1, a)), a);
  EXPECT_EQ(decoder.decode(encoderB.encode(1, b)), b);
}

TEST(ReportTest, StatelessDecodersRejectDictFrames) {
  DictFrameEncoder encoder(1);
  const auto datagram = encoder.encode(0, sampleReport());
  EXPECT_THROW((void)ReportFrame::decode(datagram), util::DecodeError);
  EXPECT_THROW((void)decodeReportDatagram(datagram), util::DecodeError);

  // ...but the routing header stays version-agnostic: a shard router can
  // place a v3 datagram without dictionary state.
  const auto header = ReportFrame::peek(datagram);
  EXPECT_EQ(header.version, ReportFrame::kDictVersion);
  EXPECT_EQ(header.workerId, 1u);
  EXPECT_EQ(header.sequence, 0u);
  EXPECT_EQ(header.shaKey, util::fnv1a64(sampleReport().apkSha256));
}

TEST(ReportTest, StreamDecoderRejectsUndefinedIdOnInOrderStream) {
  // On a reliable in-order stream a definition always precedes its first
  // reference, so an unresolved id is corruption, not loss.
  DictReportFrame frame;
  frame.workerId = 4;
  frame.apkSha256 = "deadbeef00";
  frame.socketPair = sampleReport().socketPair;
  frame.signatureIds = {0};
  ReportStreamDecoder decoder;
  EXPECT_THROW((void)decoder.decode(frame.encode()), util::DecodeError);
}

TEST(ReportTest, DictFrameChecksumRejectsEveryBitFlip) {
  DictFrameEncoder encoder(3);
  const auto valid = encoder.encode(9, sampleReport());
  for (std::size_t pos = 0; pos < valid.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = valid;
      flipped[pos] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW((void)DictReportFrame::decode(flipped), util::DecodeError)
          << "byte " << pos << " bit " << bit;
    }
  }
}

// ---- frozen wire layouts (backward-compat byte vectors) ------------------
//
// These rebuild each version's datagram byte by byte from the documented
// layout. If an encoder change breaks them, it broke every deployed decoder.

std::vector<std::uint8_t> sealTestFrame(std::uint8_t version,
                                        const util::ByteWriter& body) {
  util::ByteWriter w;
  w.u32(kFrameMagicOnTheWire);
  w.u8(version);
  w.u32(util::crc32(body.data()));
  w.raw(body.data());
  return w.take();
}

TEST(ReportTest, V1WireLayoutIsFrozen) {
  const UdpReport report = sampleReport();
  util::ByteWriter body;
  body.u32(7);                              // workerId
  body.u64(42);                             // sequence
  body.u64(util::fnv1a64(report.apkSha256));  // shaKey
  const auto payload = report.encode();
  body.str({reinterpret_cast<const char*>(payload.data()), payload.size()});
  const auto bytes = sealTestFrame(1, body);

  EXPECT_EQ(bytes, (ReportFrame{7, 42, report}.encode()));
  EXPECT_EQ(ReportFrame::decode(bytes), (ReportFrame{7, 42, report}));
}

TEST(ReportTest, V2AliasDatagramStillDecodes) {
  // v2 is a wire alias of the v1 layout (the accounting upgrade changed
  // artifacts, not the frame): only the version byte differs, and the crc
  // covers the body alone.
  const UdpReport report = sampleReport();
  auto bytes = ReportFrame{7, 42, report}.encode();
  bytes[4] = 2;  // version byte: magic (4 bytes) | version | crc | body
  EXPECT_EQ(ReportFrame::peek(bytes).version, 2);
  EXPECT_EQ(ReportFrame::decode(bytes).report, report);
  EXPECT_EQ(decodeReportDatagram(bytes), report);
  ReportStreamDecoder stream;
  EXPECT_EQ(stream.decode(bytes), report);
}

TEST(ReportTest, V3WireLayoutIsFrozen) {
  DictReportFrame frame;
  frame.workerId = 11;
  frame.sequence = 3;
  frame.apkSha256 = "deadbeef00";
  frame.socketPair = sampleReport().socketPair;
  frame.timestampMs = 777;
  frame.defs = {{0, "java.net.Socket.connect"}};
  frame.signatureIds = {0, 0};

  util::ByteWriter body;
  body.u32(11);                             // workerId
  body.u64(3);                              // sequence
  body.u64(util::fnv1a64("deadbeef00"));    // shaKey
  body.u32(1);                              // defCount
  body.u32(0);                              // def id
  body.str("java.net.Socket.connect");      // def text
  body.str("deadbeef00");                   // apkSha256, inline
  body.u32(frame.socketPair.src.ip.value());
  body.u16(frame.socketPair.src.port);
  body.u32(frame.socketPair.dst.ip.value());
  body.u16(frame.socketPair.dst.port);
  body.u64(777);                            // timestampMs
  body.u32(2);                              // frameCount
  body.u32(0);
  body.u32(0);
  const auto bytes = sealTestFrame(3, body);

  EXPECT_EQ(bytes, frame.encode());
  EXPECT_EQ(DictReportFrame::decode(bytes), frame);
}

TEST(ReportTest, DictFrameRejectsMismatchedRoutingKey) {
  // A shaKey that disagrees with the inline checksum would let a router
  // shard a datagram one way and attribute it another.
  util::ByteWriter body;
  body.u32(1);                               // workerId
  body.u64(0);                               // sequence
  body.u64(util::fnv1a64("deadbeef00") + 1);  // wrong routing key
  body.u32(0);                               // defCount
  body.str("deadbeef00");
  body.u32(0);
  body.u16(0);
  body.u32(0);
  body.u16(0);
  body.u64(0);
  body.u32(0);                               // frameCount
  EXPECT_THROW((void)DictReportFrame::decode(sealTestFrame(3, body)),
               util::DecodeError);
}

}  // namespace
}  // namespace libspector::core
