#include "core/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace libspector::core {
namespace {

// Static pool: test flows stay valid for the whole binary.
util::Symbol sym(std::string_view text) {
  static util::SymbolPool pool;
  return pool.intern(text);
}

FlowRecord makeFlow(const std::string& library, const std::string& libCategory,
                    const std::string& domain, const std::string& domainCategory,
                    std::uint64_t sent, std::uint64_t recv) {
  FlowRecord flow;
  flow.originLibrary = sym(library);
  flow.twoLevelLibrary = sym(library);
  flow.libraryCategory = sym(libCategory);
  flow.domain = sym(domain);
  flow.domainCategory = sym(domainCategory);
  flow.appCategory = sym("TOOLS");
  flow.sentBytes = sent;
  flow.recvBytes = recv;
  flow.antOrigin = libCategory == "Advertisement";
  return flow;
}

StudyAggregator sampleStudy() {
  StudyAggregator study;
  RunArtifacts run;
  run.apkSha256 = "a1";
  run.appCategory = "TOOLS";
  run.coverage.coveredMethods = 10;
  run.coverage.totalMethods = 100;
  study.addApp(run, std::vector<FlowRecord>{
                        makeFlow("com.unity3d.ads", "Advertisement", "ads.com",
                                 "advertisements", 100, 9000),
                        makeFlow("com.myapp.net", "Unknown", "api.com",
                                 "business_and_finance", 50, 600)});
  return study;
}

std::size_t countLines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  return lines;
}

TEST(CsvFieldTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csvField("plain"), "plain");
  EXPECT_EQ(csvField("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csvField("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csvField("multi\nline"), "\"multi\nline\"");
  EXPECT_EQ(csvField(""), "");
}

TEST(ExportTest, Fig2CsvHasHeaderAndRows) {
  std::ostringstream out;
  writeFig2Csv(sampleStudy(), out);
  const std::string text = out.str();
  EXPECT_TRUE(text.starts_with("app_category,library_category,bytes\n"));
  EXPECT_EQ(countLines(text), 3u);  // header + 2 category cells
  EXPECT_NE(text.find("TOOLS,Advertisement,9100"), std::string::npos);
}

TEST(ExportTest, HeatmapCsvMatchesAggregates) {
  std::ostringstream out;
  writeHeatmapCsv(sampleStudy(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Advertisement,advertisements,9100"), std::string::npos);
  EXPECT_NE(text.find("Unknown,business_and_finance,650"), std::string::npos);
}

TEST(ExportTest, CdfCsvCoversAllSixSeries) {
  std::ostringstream out;
  writeCdfCsv(sampleStudy(), out);
  const std::string text = out.str();
  for (const char* series :
       {"app_sent", "app_recv", "lib_sent", "lib_recv", "dns_sent", "dns_recv"})
    EXPECT_NE(text.find(series), std::string::npos) << series;
}

TEST(ExportTest, CoverageCsvOneRowPerApp) {
  std::ostringstream out;
  writeCoverageCsv(sampleStudy(), out);
  EXPECT_EQ(countLines(out.str()), 2u);  // header + 1 app
  EXPECT_NE(out.str().find("0,0.1"), std::string::npos);
}

TEST(ExportTest, DirectoryExportWritesAllFiles) {
  const std::string dir =
      ::testing::TempDir() + "/spector_csv_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  EXPECT_EQ(exportStudyCsv(sampleStudy(), dir), 8u);
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".csv");
    std::ifstream in(entry.path());
    std::string header;
    std::getline(in, header);
    EXPECT_FALSE(header.empty()) << entry.path();
    ++files;
  }
  EXPECT_EQ(files, 8u);
}

TEST(ReportTest, MarkdownReportCoversEverySection) {
  std::ostringstream out;
  writeStudyReport(sampleStudy(), out);
  const std::string report = out.str();
  for (const char* heading :
       {"# Libspector study report", "## Totals", "## Transfer share",
        "## Top origin-libraries", "## AnT prevalence", "## Flow ratios",
        "## Method coverage", "## Context vs endpoints", "## User cost"}) {
    EXPECT_NE(report.find(heading), std::string::npos) << heading;
  }
  EXPECT_NE(report.find("com.unity3d.ads"), std::string::npos);
  EXPECT_NE(report.find("| Advertisement |"), std::string::npos);
}

TEST(ReportTest, EmptyStudyStillRendersValidReport) {
  std::ostringstream out;
  writeStudyReport(StudyAggregator{}, out);
  EXPECT_NE(out.str().find("apps analyzed: 0"), std::string::npos);
}

}  // namespace
}  // namespace libspector::core
