// Differential and property tests pinning core::AttributionProgram — the
// compiled component-trie every per-frame attribution question runs
// through — to the reference matchers it was compiled from: the
// hierarchical builtin-prefix walk, radar::PrefixList::matches, and the
// corpus Listing-2 election (LibraryCorpus::matchCategory).
#include "core/attribution_program.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/attribution.hpp"
#include "radar/ant.hpp"
#include "radar/corpus.hpp"
#include "util/strings.hpp"

namespace libspector::core {
namespace {

[[nodiscard]] std::vector<std::string_view> viewsOf(
    const std::vector<std::string>& storage) {
  return {storage.begin(), storage.end()};
}

/// Reference builtin answer: every compiled prefix asked the way the
/// uncompiled path asks it (against the materialized dotted frame name).
[[nodiscard]] bool referenceBuiltin(const std::vector<std::string>& prefixes,
                                    std::string_view entry) {
  const std::string frame = frameNameOf(entry);
  for (const std::string& prefix : prefixes)
    if (util::isHierarchicalPrefix(prefix, frame)) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Adversarial near-prefixes: "com.foo" must never bleed into "com.fooz"
// ---------------------------------------------------------------------------

TEST(AttributionProgramTest, NearPrefixSiblingsStayDistinct) {
  radar::LibraryCorpus corpus;
  corpus.add("com.foo", "Advertisement");
  corpus.add("com.fooz", "Game Engine");

  const std::vector<std::string> builtinStorage = {"com.bar"};
  const std::vector<std::string> antStorage = {"com.foo"};
  const std::vector<std::string> commonStorage = {"com.fooz"};
  const radar::PrefixList ant(viewsOf(antStorage));
  const radar::PrefixList common(viewsOf(commonStorage));
  const AttributionProgram program(corpus, viewsOf(builtinStorage), ant,
                                   common);

  const auto foo = program.lookupPackage("com.foo");
  EXPECT_TRUE(foo.ant);
  EXPECT_FALSE(foo.common);
  EXPECT_FALSE(foo.builtin);
  EXPECT_EQ(program.categoryOf(foo), "Advertisement");
  EXPECT_EQ(program.matchedPrefixOf(foo), "com.foo");

  // Descendants inherit the whole ancestor chain.
  const auto fooChild = program.lookupPackage("com.foo.bar.baz");
  EXPECT_TRUE(fooChild.ant);
  EXPECT_EQ(program.categoryOf(fooChild), "Advertisement");
  EXPECT_EQ(program.matchedPrefixOf(fooChild), "com.foo");

  // The sibling whose last component merely *extends* "foo" is a distinct
  // subtree — the classic false positive of naive string-prefix matching.
  const auto fooz = program.lookupPackage("com.fooz");
  EXPECT_FALSE(fooz.ant);
  EXPECT_TRUE(fooz.common);
  EXPECT_EQ(program.categoryOf(fooz), "Game Engine");
  EXPECT_EQ(program.matchedPrefixOf(fooz), "com.fooz");

  const auto foozDeep = program.lookupPackage("com.fooz.bar.baz");
  EXPECT_FALSE(foozDeep.ant);
  EXPECT_TRUE(foozDeep.common);
  EXPECT_EQ(program.categoryOf(foozDeep), "Game Engine");

  // Neither truncations nor extensions of a component match anything.
  for (const std::string_view miss :
       {"com", "com.fo", "com.foozy", "com.foob", "xcom.foo", "com.barz"}) {
    const auto lookup = program.lookupPackage(miss);
    EXPECT_FALSE(lookup.builtin) << miss;
    EXPECT_FALSE(lookup.ant) << miss;
    EXPECT_FALSE(lookup.common) << miss;
    EXPECT_EQ(program.categoryOf(lookup), radar::kUnknownCategory) << miss;
    EXPECT_EQ(program.matchedPrefixOf(lookup), "") << miss;
  }

  EXPECT_TRUE(program.lookupPackage("com.bar.widget").builtin);
  EXPECT_FALSE(program.lookupPackage("com.barz.widget").builtin);
  EXPECT_EQ(program.electionCount(), corpus.electionViews().size());
  EXPECT_GT(program.nodeCount(), 1u);
}

TEST(AttributionProgramTest, EmptyPackageMatchesNothing) {
  radar::LibraryCorpus corpus;
  corpus.add("com.foo", "Advertisement");
  const std::vector<std::string> builtinStorage = {"com.foo"};
  const radar::PrefixList ant(viewsOf(builtinStorage));
  const radar::PrefixList common({});
  const AttributionProgram program(corpus, viewsOf(builtinStorage), ant,
                                   common);

  const auto lookup = program.lookupPackage("");
  EXPECT_FALSE(lookup.builtin);
  EXPECT_FALSE(lookup.ant);
  EXPECT_FALSE(lookup.common);
  EXPECT_EQ(program.categoryOf(lookup), radar::kUnknownCategory);
  EXPECT_FALSE(program.isBuiltinFrame(""));
}

// ---------------------------------------------------------------------------
// Smali signatures walk exactly like their dotted frame names
// ---------------------------------------------------------------------------

TEST(AttributionProgramTest, SmaliSignaturesFilterLikeDottedFrames) {
  radar::LibraryCorpus corpus;
  const std::vector<std::string> builtinStorage = {"com.unity3d.ads",
                                                   "java.net"};
  const radar::PrefixList ant({});
  const radar::PrefixList common({});
  const AttributionProgram program(corpus, viewsOf(builtinStorage), ant,
                                   common);

  const std::vector<std::pair<std::string_view, std::string_view>> forms = {
      {"Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/"
       "String;)Ljava/lang/Object;",
       "com.unity3d.ads.android.cache.b.doInBackground"},
      {"Ljava/net/Socket;->connect(Ljava/net/SocketAddress;)V",
       "java.net.Socket.connect"},
      {"Lcom/unity3dz/a;->b()V", "com.unity3dz.a.b"},
      {"Lcom/unity3d/adsz/a;->b()V", "com.unity3d.adsz.a.b"},
      {"Ljava/netz/X;->y()V", "java.netz.X.y"},
      {"Lcom/unity3d;->x()V", "com.unity3d.x"},
  };
  for (const auto& [smali, dotted] : forms) {
    EXPECT_EQ(program.isBuiltinFrame(smali), program.isBuiltinFrame(dotted))
        << smali;
    EXPECT_EQ(program.isBuiltinFrame(smali),
              referenceBuiltin(builtinStorage, smali))
        << smali;
  }

  // A builtin prefix deeper than the class must keep matching through the
  // method-name component of the virtual frame name.
  const std::vector<std::string> deepStorage = {"com.unity3d.x"};
  const AttributionProgram deep(corpus, viewsOf(deepStorage), ant, common);
  EXPECT_TRUE(deep.isBuiltinFrame("Lcom/unity3d;->x()V"));
  EXPECT_FALSE(deep.isBuiltinFrame("Lcom/unity3d;->xz()V"));
}

// ---------------------------------------------------------------------------
// The standard study inputs agree with the uncompiled reference filter
// ---------------------------------------------------------------------------

TEST(AttributionProgramTest, StandardInputsMatchReferenceFilter) {
  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  const AttributionProgram program(corpus, builtinFramePrefixes(),
                                   radar::antLibraries(),
                                   radar::commonLibraries());

  const std::vector<std::string_view> entries = {
      "java.net.Socket.connect",
      "javax.net.ssl.SSLSocketFactory.createSocket",
      "com.android.okhttp.internal.Platform.connectSocket",
      "com.android.volley.toolbox.BasicNetwork.performRequest",
      "com.unity3d.ads.android.cache.b.doInBackground",
      "androidx.core.app.ComponentActivity.onCreate",
      "android.os.AsyncTask$2.call",
      "androidz.os.AsyncTask.call",
      "java.util.concurrent.FutureTask.run",
      "org.json.JSONObject.put",
      "org.jsonz.JSONObject.put",
      "okhttp3.internal.http.RealInterceptorChain.proceed",
      "Landroid/os/AsyncTask$2;->call()Ljava/lang/Object;",
      "Lcom/unity3d/ads/android/cache/b;->a()V",
      "Lcom/android/okhttp/Connection;->connect()V",
      "Lorg/json/JSONObject;->put(Ljava/lang/String;I)Lorg/json/JSONObject;",
      "dalvik.system.VMStack.getThreadStackTrace",
      "",
  };
  for (const std::string_view entry : entries)
    EXPECT_EQ(program.isBuiltinFrame(entry), isBuiltinFrame(entry)) << entry;
}

// ---------------------------------------------------------------------------
// Randomized differential sweep against every reference matcher
// ---------------------------------------------------------------------------

TEST(AttributionProgramTest, RandomCorporaAgreeWithReferenceMatchers) {
  // A deliberately collision-heavy component alphabet: many entries are
  // prefixes or one-character extensions of each other, the worst case for
  // any matcher that confuses string prefixes with component prefixes.
  const std::vector<std::string_view> alphabet = {
      "com", "org", "io",  "net",     "foo",    "fooz", "foob",
      "bar", "barz", "baz", "ads",    "adsx",   "sdk",  "analytics",
      "x",   "y",    "z",   "unity3d", "google", "app"};
  const std::vector<std::string>& categories = radar::libraryCategories();

  std::mt19937 rng(20260808u);
  const auto randomPackage = [&](int minComponents, int maxComponents) {
    std::uniform_int_distribution<int> depth(minComponents, maxComponents);
    std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
    std::string pkg;
    const int n = depth(rng);
    for (int i = 0; i < n; ++i) {
      if (!pkg.empty()) pkg += '.';
      pkg += alphabet[pick(rng)];
    }
    return pkg;
  };

  for (int round = 0; round < 8; ++round) {
    radar::LibraryCorpus corpus;
    std::uniform_int_distribution<std::size_t> pickCategory(
        0, categories.size() - 1);
    for (int i = 0; i < 60; ++i)
      corpus.add(randomPackage(1, 4), categories[pickCategory(rng)]);

    std::vector<std::string> builtinStorage, antStorage, commonStorage;
    for (int i = 0; i < 15; ++i) builtinStorage.push_back(randomPackage(1, 3));
    for (int i = 0; i < 15; ++i) antStorage.push_back(randomPackage(1, 4));
    for (int i = 0; i < 15; ++i) commonStorage.push_back(randomPackage(1, 4));
    const radar::PrefixList ant(viewsOf(antStorage));
    const radar::PrefixList common(viewsOf(commonStorage));
    const AttributionProgram program(corpus, viewsOf(builtinStorage), ant,
                                     common);

    std::uniform_int_distribution<int> mutate(0, 3);
    for (int q = 0; q < 600; ++q) {
      std::string pkg = randomPackage(1, 6);
      switch (mutate(rng)) {
        case 0:
          pkg += "z";  // extend the last component: near-miss, never a match
          break;
        case 1:
          pkg += ".extra.components.deep";
          break;
        default:
          break;
      }

      const auto lookup = program.lookupPackage(pkg);
      EXPECT_EQ(lookup.builtin, referenceBuiltin(builtinStorage, pkg)) << pkg;
      EXPECT_EQ(lookup.ant, ant.matches(pkg)) << pkg;
      EXPECT_EQ(lookup.common, common.matches(pkg)) << pkg;

      const radar::CategoryMatch reference = corpus.matchCategory(pkg);
      EXPECT_EQ(program.categoryOf(lookup), reference.category) << pkg;
      EXPECT_EQ(program.matchedPrefixOf(lookup), reference.matchedPrefix)
          << pkg;
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent lookups (the study's worker threads share one program)
// ---------------------------------------------------------------------------

TEST(AttributionProgramTest, ConcurrentLookupsAgreeWithSerialReference) {
  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  const AttributionProgram program(corpus, builtinFramePrefixes(),
                                   radar::antLibraries(),
                                   radar::commonLibraries());

  std::vector<std::string> queries;
  const std::vector<std::string_view> stems = {
      "com.unity3d.ads", "com.google.android.gms.ads", "com.facebook",
      "org.json",        "java.net",                   "com.myapp",
      "okhttp3",         "com.android.okhttp",         "androidx.core"};
  for (const std::string_view stem : stems) {
    queries.emplace_back(stem);
    queries.emplace_back(std::string(stem) + ".internal.http");
    queries.emplace_back(std::string(stem) + "z");
  }

  struct Answer {
    bool builtin, ant, common;
    std::string_view category, prefix;
    bool operator==(const Answer&) const = default;
  };
  const auto answer = [&](std::string_view pkg) {
    const auto lookup = program.lookupPackage(pkg);
    return Answer{lookup.builtin, lookup.ant, lookup.common,
                  program.categoryOf(lookup), program.matchedPrefixOf(lookup)};
  };

  std::vector<Answer> expected;
  for (const std::string& pkg : queries) expected.push_back(answer(pkg));

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int repeat = 0; repeat < 200; ++repeat)
        for (std::size_t i = 0; i < queries.size(); ++i)
          if (!(answer(queries[i]) == expected[i]))
            mismatches.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// Trampoline elision (§14): the compiled junk/reflect queries against the
// reference matchers, and the property that laundering never moves an
// honest stack's origin.
// ---------------------------------------------------------------------------

TEST(AttributionProgramTest, JunkPackageQueryAgreesWithReference) {
  // Hand-picked edges of the "every component <= 2 chars" rule in both
  // entry forms.
  const std::vector<std::pair<std::string, bool>> cases = {
      {"a.b.c.Gen.run", true},          // all 1-char components
      {"ab.cd.ef.Gen.run", true},       // all 2-char components
      {"abc.de.Gen.run", false},        // one 3-char component
      {"a.abc.Gen.run", false},         // 3-char in the middle
      {"com.foo.Bar.baz", false},       // ordinary package
      {"Main.run", false},              // empty package: not junk
      {"run", false},                   // no package at all
      {"a.B.c", true},                  // minimal dotted frame, junk
      {"La/b/C;->d()V", true},          // smali junk
      {"Lab/cd/C;->d()V", true},        // smali 2-char components
      {"Labc/d/C;->d()V", false},       // smali with a long component
      {"LC;->d()V", false},             // smali, no package
      {".Cls.run", false},              // leading dot: empty package
      {"L/C;->d()V", false},            // leading slash: empty package
  };
  for (const auto& [entry, junk] : cases) {
    EXPECT_EQ(isJunkPackageFrame(entry), junk) << entry;
    EXPECT_EQ(AttributionProgram::isJunkPackageEntry(entry), junk) << entry;
  }
}

TEST(AttributionProgramTest, RandomEntriesAgreeOnJunkAndReflect) {
  // Differential sweep: the allocation-free compiled queries must answer
  // exactly like the reference matchers on arbitrary entries of both
  // forms, junk-shaped or not.
  std::mt19937 rng(20260808u);
  std::uniform_int_distribution<int> componentLength(1, 4);
  std::uniform_int_distribution<int> depth(0, 5);
  std::uniform_int_distribution<int> letter(0, 25);
  std::uniform_int_distribution<int> form(0, 2);

  for (int q = 0; q < 2000; ++q) {
    const int n = depth(rng);
    std::vector<std::string> components;
    for (int i = 0; i < n + 2; ++i) {  // + class and method components
      std::string component;
      const int len = componentLength(rng);
      for (int c = 0; c < len; ++c)
        component += static_cast<char>('a' + letter(rng));
      components.push_back(std::move(component));
    }
    std::string entry;
    if (form(rng) == 0) {
      // Smali: Lpkg/components/Class;->method()V
      entry = "L";
      for (std::size_t i = 0; i + 1 < components.size(); ++i) {
        if (i > 0) entry += '/';
        entry += components[i];
      }
      entry += ";->" + components.back() + "()V";
    } else {
      for (std::size_t i = 0; i < components.size(); ++i) {
        if (i > 0) entry += '.';
        entry += components[i];
      }
    }
    EXPECT_EQ(AttributionProgram::isJunkPackageEntry(entry),
              isJunkPackageFrame(entry))
        << entry;
    EXPECT_EQ(AttributionProgram::isReflectionMarker(entry),
              isReflectionMarkerFrame(entry))
        << entry;
  }
  EXPECT_TRUE(AttributionProgram::isReflectionMarker(
      "java.lang.reflect.Method.invoke"));
  EXPECT_TRUE(AttributionProgram::isReflectionMarker(
      "java.lang.reflect.Proxy.invoke"));
}

/// Wrap an innermost-first stack in one random laundering layer, the way
/// rt::ReflectiveCallAction and the spoof wrapper materialize at runtime:
/// a new outermost frame (junk trampoline, reflective dispatch, or spoofed
/// platform frame) through which the old outermost frame was "called".
void launderOnce(std::vector<std::string>& stack, std::mt19937& rng) {
  std::uniform_int_distribution<int> kind(0, 2);
  std::uniform_int_distribution<int> letter(0, 25);
  const auto junkFrame = [&] {
    std::string frame;
    std::uniform_int_distribution<int> depth(2, 4);
    const int n = depth(rng);
    for (int i = 0; i < n; ++i) {
      if (!frame.empty()) frame += '.';
      frame += static_cast<char>('a' + letter(rng));
    }
    return frame + ".Gen.run";
  };
  switch (kind(rng)) {
    case 0:  // bare junk-package trampoline
      stack.push_back(junkFrame());
      break;
    case 1:  // reflective dispatch: marker, then the caller that drove it
      stack.push_back("java.lang.reflect.Method.invoke");
      stack.push_back(junkFrame());
      break;
    default:  // spoofed platform frame (caught by the builtin skip)
      stack.push_back("android.support.v7.sync.Dispatch" +
                      std::to_string(letter(rng)) + ".run");
      break;
  }
}

TEST(AttributionProgramTest, PropertyLaunderingNeverMovesAnHonestOrigin) {
  // THE elision contract: for any honest stack (no junk packages, no
  // reflection markers), wrapping it in any nesting of trampolines must
  // not change which frame originFrameIndex(_, elide=true) selects — and
  // on the honest stack itself, elision must be a fixed point (same answer
  // as elide=false).
  const std::vector<std::vector<std::string>> honestStacks = {
      {"java.net.Socket.connect",
       "com.android.okhttp.internal.Platform.connectSocket",
       "com.unity3d.ads.android.cache.b.a",
       "com.unity3d.ads.android.cache.b.doInBackground",
       "android.os.AsyncTask$2.call"},
      {"java.net.Socket.connect", "com.myapp.net.Api.fetch",
       "com.myapp.ui.MainActivity.onClick", "android.view.View.performClick"},
      {"java.net.Socket.connect",
       "okhttp3.internal.connection.RealConnection.connect",
       "com.flurry.sdk.analytics.Reporter.flush"},
      // Builtin-only stack: stays originless however hard it is laundered.
      {"java.net.Socket.connect", "android.os.Handler.dispatchMessage",
       "java.lang.Thread.run"},
  };

  std::mt19937 rng(20260808u);
  std::uniform_int_distribution<int> layers(1, 5);
  for (const auto& honest : honestStacks) {
    const auto honestElided = originFrameIndex(honest, true);
    const auto honestPlain = originFrameIndex(honest, false);
    EXPECT_EQ(honestElided.has_value(), honestPlain.has_value());
    if (honestElided && honestPlain) {
      EXPECT_EQ(honest[*honestElided], honest[*honestPlain]);
    }

    for (int round = 0; round < 200; ++round) {
      std::vector<std::string> laundered = honest;
      const int n = layers(rng);
      for (int i = 0; i < n; ++i) launderOnce(laundered, rng);

      const auto origin = originFrameIndex(laundered, true);
      ASSERT_EQ(origin.has_value(), honestElided.has_value())
          << "laundering changed origin existence, round " << round;
      if (origin && honestElided) {
        EXPECT_EQ(laundered[*origin], honest[*honestElided])
            << "laundering moved the origin, round " << round;
      }
    }
  }
}

}  // namespace
}  // namespace libspector::core
