#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analysis.hpp"

namespace libspector::core {
namespace {

RunArtifacts runFor(std::size_t i) {
  RunArtifacts run;
  run.apkSha256 = "sha" + std::to_string(i);
  run.packageName = "com.app.n" + std::to_string(i);
  run.appCategory = i % 2 == 0 ? "TOOLS" : "GAME_ACTION";
  run.coverage.coveredMethods = i + 1;
  run.coverage.totalMethods = 100;
  return run;
}

// Static pool: test flows stay valid for the whole binary.
util::Symbol sym(std::string_view text) {
  static util::SymbolPool pool;
  return pool.intern(text);
}

std::vector<FlowRecord> flowsFor(std::size_t i) {
  FlowRecord flow;
  flow.apkSha256 = sym("sha" + std::to_string(i));
  flow.appPackage = sym("com.app.n" + std::to_string(i));
  flow.originLibrary = sym("com.lib.l" + std::to_string(i % 3));
  flow.twoLevelLibrary = sym("com.lib");
  flow.libraryCategory = sym(i % 3 == 0 ? "Advertisement" : "Utility");
  flow.domain = sym("d" + std::to_string(i) + ".example.com");
  flow.domainCategory = sym("cdn");
  flow.sentBytes = 100 * (i + 1);
  flow.recvBytes = 1000 * (i + 1);
  return {flow};
}

TEST(StudyAccumulatorTest, OutOfOrderDeliveryMatchesSequentialFold) {
  constexpr std::size_t kApps = 7;

  StudyAggregator sequential;
  for (std::size_t i = 0; i < kApps; ++i)
    sequential.addApp(runFor(i), flowsFor(i));

  StudyAggregator reordered;
  std::vector<std::string> foldOrder;
  StudyAccumulator accumulator(reordered, [&](RunArtifacts&& run) {
    foldOrder.push_back(run.packageName);
  });
  // Completion order a 4-worker fleet could produce: nothing folds until
  // index 0 lands, then the contiguous prefix drains at once.
  for (const std::size_t index : {3u, 1u, 6u, 0u, 2u, 5u, 4u})
    accumulator.add(index, runFor(index), flowsFor(index));
  EXPECT_EQ(accumulator.pendingCount(), 0u);
  accumulator.finish();

  EXPECT_EQ(accumulator.appsFolded(), kApps);
  ASSERT_EQ(foldOrder.size(), kApps);
  for (std::size_t i = 0; i < kApps; ++i)
    EXPECT_EQ(foldOrder[i], "com.app.n" + std::to_string(i));

  EXPECT_EQ(sequential.totals().totalBytes, reordered.totals().totalBytes);
  EXPECT_EQ(sequential.totals().flowCount, reordered.totals().flowCount);
  EXPECT_EQ(sequential.totals().appCount, reordered.totals().appCount);
  EXPECT_EQ(sequential.transferByLibCategory(),
            reordered.transferByLibCategory());
  EXPECT_EQ(sequential.transferByAppAndLibCategory(),
            reordered.transferByAppAndLibCategory());
}

TEST(StudyAccumulatorTest, SkippedIndicesDoNotStallTheFold) {
  StudyAggregator study;
  std::vector<std::string> foldOrder;
  StudyAccumulator accumulator(study, [&](RunArtifacts&& run) {
    foldOrder.push_back(run.packageName);
  });
  accumulator.add(2, runFor(2), flowsFor(2));
  EXPECT_EQ(accumulator.appsFolded(), 0u);  // waiting on 0 and 1
  accumulator.skip(0);                      // failed job releases the prefix
  EXPECT_EQ(accumulator.appsFolded(), 0u);  // still waiting on 1
  accumulator.add(1, runFor(1), flowsFor(1));
  EXPECT_EQ(accumulator.appsFolded(), 2u);
  EXPECT_EQ(accumulator.pendingCount(), 0u);
  accumulator.finish();
  ASSERT_EQ(foldOrder.size(), 2u);
  EXPECT_EQ(foldOrder[0], "com.app.n1");
  EXPECT_EQ(foldOrder[1], "com.app.n2");
  EXPECT_EQ(study.totals().appCount, 2u);
}

TEST(StudyAccumulatorTest, FinishFoldsStragglersInIndexOrder) {
  // A gap that never resolves (worker died without reporting) must not
  // drop the apps that did arrive.
  StudyAggregator study;
  std::vector<std::string> foldOrder;
  StudyAccumulator accumulator(study, [&](RunArtifacts&& run) {
    foldOrder.push_back(run.packageName);
  });
  accumulator.add(4, runFor(4), flowsFor(4));
  accumulator.add(2, runFor(2), flowsFor(2));
  EXPECT_EQ(accumulator.appsFolded(), 0u);
  accumulator.finish();
  EXPECT_EQ(accumulator.appsFolded(), 2u);
  ASSERT_EQ(foldOrder.size(), 2u);
  EXPECT_EQ(foldOrder[0], "com.app.n2");
  EXPECT_EQ(foldOrder[1], "com.app.n4");
}

}  // namespace
}  // namespace libspector::core
