// FlowColumns (SoA flow batches) and the columnar StudyAggregator fold:
// row(i) must reconstruct the row batch exactly, attributeColumns must
// carry the same flows as attribute, and a study folded columnar must
// render byte-identically to the row-fold reference.
#include "core/attribution.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/export.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::core {
namespace {

void expectSameFlow(const FlowRecord& a, const FlowRecord& b) {
  EXPECT_EQ(a.apkSha256.view(), b.apkSha256.view());
  EXPECT_EQ(a.appPackage.view(), b.appPackage.view());
  EXPECT_EQ(a.appCategory.view(), b.appCategory.view());
  EXPECT_EQ(a.originLibrary.view(), b.originLibrary.view());
  EXPECT_EQ(a.originSignature.view(), b.originSignature.view());
  EXPECT_EQ(a.twoLevelLibrary.view(), b.twoLevelLibrary.view());
  EXPECT_EQ(a.libraryCategory.view(), b.libraryCategory.view());
  EXPECT_EQ(a.builtinOrigin, b.builtinOrigin);
  EXPECT_EQ(a.antOrigin, b.antOrigin);
  EXPECT_EQ(a.commonOrigin, b.commonOrigin);
  EXPECT_EQ(a.domain.view(), b.domain.view());
  EXPECT_EQ(a.domainCategory.view(), b.domainCategory.view());
  EXPECT_EQ(a.socketPair, b.socketPair);
  EXPECT_EQ(a.connectTimeMs, b.connectTimeMs);
  EXPECT_EQ(a.sentBytes, b.sentBytes);
  EXPECT_EQ(a.recvBytes, b.recvBytes);
}

/// Render every figure CSV plus the report — the same byte surface the
/// study tests compare — so "identical study" means identical output.
[[nodiscard]] std::string renderStudy(const StudyAggregator& study) {
  std::ostringstream out;
  writeFig2Csv(study, out);
  writeTopLibrariesCsv(study, 25, out);
  writeCdfCsv(study, out);
  writeFlowRatiosCsv(study, out);
  writeAntSharesCsv(study, out);
  writeCategoryAveragesCsv(study, out);
  writeHeatmapCsv(study, out);
  writeCoverageCsv(study, out);
  writeStudyReport(study, out);
  return out.str();
}

class FlowColumnsTest : public ::testing::Test {
 protected:
  FlowColumnsTest()
      : corpus_(radar::LibraryCorpus::builtin()),
        categorizer_(vtsim::defaultVendorPanel(),
                     [](const std::string& domain) -> std::string {
                       if (domain.starts_with("ads")) return "advertisements";
                       if (domain.starts_with("cdn")) return "cdn";
                       return "business_and_finance";
                     }),
        attributor_(corpus_, categorizer_) {}

  static net::SocketPair pairWithPort(std::uint16_t srcPort,
                                      net::Ipv4Addr dst) {
    return {{net::Ipv4Addr(10, 0, 2, 15), srcPort}, {dst, 443}};
  }

  /// DNS answer + data packets + report for one socket (the
  /// attribution_test recipe).
  void addFlow(RunArtifacts& run, std::uint16_t srcPort,
               const std::string& domain, net::Ipv4Addr serverIp,
               util::SimTimeMs when, std::uint32_t sentPayload,
               std::uint32_t recvPayload, std::vector<std::string> stack) {
    const auto pair = pairWithPort(srcPort, serverIp);
    run.capture.append(net::makeUdpPacket(
        when - 5,
        {{net::Ipv4Addr(10, 0, 2, 15), 0}, {net::Ipv4Addr(10, 0, 2, 3), 53}},
        70, 42, domain, serverIp));
    run.capture.append(
        net::makeTcpPacket(when + 1, pair, sentPayload + 40, sentPayload));
    run.capture.append(net::makeTcpPacket(when + 2, pair.reversed(),
                                          recvPayload + 40, recvPayload));
    UdpReport report;
    report.apkSha256 = run.apkSha256;
    report.socketPair = pair;
    report.timestampMs = when;
    report.stackSignatures = std::move(stack);
    run.reports.push_back(std::move(report));
  }

  /// One app run mixing every origin kind the fold distinguishes: AnT
  /// library, common library, first-party, and a fully built-in stack.
  RunArtifacts makeRun(int appIndex) {
    RunArtifacts run;
    run.apkSha256 = "sha" + std::to_string(appIndex);
    run.packageName = "com.app" + std::to_string(appIndex);
    run.appCategory = appIndex % 2 == 0 ? "GAME_ACTION" : "SOCIAL";
    const auto base = static_cast<std::uint16_t>(40000 + appIndex * 16);
    const auto serverA = net::Ipv4Addr(198, 18, 0, std::uint8_t(10 + appIndex));
    const auto serverB = net::Ipv4Addr(198, 18, 1, std::uint8_t(10 + appIndex));
    addFlow(run, base, "ads1.unityads.com", serverA, 1000,
            500 + appIndex, 18000, kAdStack);
    addFlow(run, base + 1, "cdn2.edge.net", serverB, 2000, 300,
            9000 + appIndex,
            {"java.net.Socket.connect",
             "Lokhttp3/internal/http/RealInterceptorChain;->proceed()V",
             "android.os.AsyncTask$2.call"});
    addFlow(run, base + 2, "api3.backend.com", serverA, 3000, 400, 5000,
            {"java.net.Socket.connect", "Lcom/myapp/net/Api;->fetch()V",
             "Lcom/myapp/ui/Main;->onClick(Landroid/view/View;)V"});
    addFlow(run, base + 3, "ads4.exchange.com", serverB, 4000, 300, 9000,
            {"java.net.Socket.connect",
             "android.webkit.WebViewClient.onLoadResource",
             "java.lang.Thread.run"});
    return run;
  }

  const std::vector<std::string> kAdStack = {
      "java.net.Socket.connect",
      "com.android.okhttp.internal.Platform.connectSocket",
      "Lcom/unity3d/ads/android/cache/b;->a(Ljava/lang/String;)V",
      "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/String;)V",
      "android.os.AsyncTask$2.call",
      "java.util.concurrent.FutureTask.run"};

  radar::LibraryCorpus corpus_;
  vtsim::DomainCategorizer categorizer_;
  TrafficAttributor attributor_;
};

TEST_F(FlowColumnsTest, FromRowsRoundTripsEveryRow) {
  const auto run = makeRun(0);
  const std::vector<FlowRecord> flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 4u);
  // The batch covers built-in origins (kNoId signature column) and all
  // three flag bits.
  const FlowColumns columns =
      FlowColumns::fromRows(flows, attributor_.symbols());
  ASSERT_EQ(columns.size(), flows.size());
  EXPECT_EQ(columns.pool, &attributor_.symbols());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    SCOPED_TRACE(i);
    expectSameFlow(columns.row(i), flows[i]);
  }
}

TEST_F(FlowColumnsTest, FlagsColumnPacksTheOriginBooleans) {
  const auto run = makeRun(0);
  const std::vector<FlowRecord> flows = attributor_.attribute(run);
  const FlowColumns columns =
      FlowColumns::fromRows(flows, attributor_.symbols());
  ASSERT_EQ(columns.size(), flows.size());
  bool sawBuiltin = false, sawAnt = false, sawCommon = false;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ((columns.flags[i] & FlowColumns::kBuiltinOrigin) != 0,
              flows[i].builtinOrigin);
    EXPECT_EQ((columns.flags[i] & FlowColumns::kAntOrigin) != 0,
              flows[i].antOrigin);
    EXPECT_EQ((columns.flags[i] & FlowColumns::kCommonOrigin) != 0,
              flows[i].commonOrigin);
    if (flows[i].builtinOrigin) {
      sawBuiltin = true;
      EXPECT_EQ(columns.originSignature[i], util::Symbol::kNoId);
    }
    sawAnt |= flows[i].antOrigin;
    sawCommon |= flows[i].commonOrigin;
  }
  EXPECT_TRUE(sawBuiltin);
  EXPECT_TRUE(sawAnt);
  EXPECT_TRUE(sawCommon);
}

TEST_F(FlowColumnsTest, AttributeColumnsMatchesRowAttribution) {
  for (int app = 0; app < 3; ++app) {
    const auto run = makeRun(app);
    const std::vector<FlowRecord> flows = attributor_.attribute(run);
    const FlowColumns columns = attributor_.attributeColumns(run);
    ASSERT_EQ(columns.size(), flows.size());
    for (std::size_t i = 0; i < flows.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "app " << app << " flow " << i);
      expectSameFlow(columns.row(i), flows[i]);
    }
  }
}

TEST_F(FlowColumnsTest, EmptyRunYieldsEmptyColumns) {
  RunArtifacts run;
  run.apkSha256 = "deadbeef";
  run.packageName = "com.empty";
  run.appCategory = "SOCIAL";
  const FlowColumns columns = attributor_.attributeColumns(run);
  EXPECT_EQ(columns.size(), 0u);
}

TEST_F(FlowColumnsTest, ColumnarFoldRendersIdenticallyToRowFold) {
  StudyAggregator rowStudy;
  StudyAggregator columnarStudy;
  for (int app = 0; app < 4; ++app) {
    const auto run = makeRun(app);
    rowStudy.addApp(run, attributor_.attribute(run));
    columnarStudy.addAppColumns(run, attributor_.attributeColumns(run));
  }
  const std::string expected = renderStudy(rowStudy);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(renderStudy(columnarStudy), expected);
}

TEST_F(FlowColumnsTest, AccumulatorMixesRowAndColumnarDeliveries) {
  // Ground truth: sequential row folds in index order.
  StudyAggregator reference;
  for (int app = 0; app < 4; ++app) {
    const auto run = makeRun(app);
    reference.addApp(run, attributor_.attribute(run));
  }
  const std::string expected = renderStudy(reference);

  // Out-of-order delivery, alternating row/columnar per job, must restore
  // dispatch order and land on the same bytes.
  StudyAggregator mixed;
  StudyAccumulator accumulator(mixed);
  for (const std::size_t job : {2u, 0u, 3u, 1u}) {
    auto run = makeRun(static_cast<int>(job));
    if (job % 2 == 0) {
      accumulator.addColumns(job, std::move(run),
                             attributor_.attributeColumns(makeRun(
                                 static_cast<int>(job))));
    } else {
      auto flows = attributor_.attribute(run);
      accumulator.add(job, std::move(run), std::move(flows));
    }
  }
  accumulator.finish();
  EXPECT_EQ(accumulator.appsFolded(), 4u);
  EXPECT_EQ(accumulator.pendingCount(), 0u);
  EXPECT_EQ(renderStudy(mixed), expected);
}

}  // namespace
}  // namespace libspector::core
