#include "core/baseline.hpp"

#include <gtest/gtest.h>

namespace libspector::core {
namespace {

net::HttpExchange exchange(std::uint16_t srcPort, util::SimTimeMs ts,
                           std::string host, std::string ua) {
  net::HttpExchange out;
  out.timestampMs = ts;
  out.pair = {{net::Ipv4Addr(10, 0, 2, 15), srcPort},
              {net::Ipv4Addr(198, 18, 0, 1), 443}};
  out.host = std::move(host);
  out.path = "/ads/v2/fetch";
  out.userAgent = std::move(ua);
  return out;
}

// Static pool: test flows stay valid for the whole binary.
util::Symbol sym(std::string_view text) {
  static util::SymbolPool pool;
  return pool.intern(text);
}

FlowRecord flowAt(std::uint16_t srcPort, util::SimTimeMs connect,
                  std::string libCategory, std::uint64_t bytes = 1000) {
  FlowRecord flow;
  flow.socketPair = {{net::Ipv4Addr(10, 0, 2, 15), srcPort},
                     {net::Ipv4Addr(198, 18, 0, 1), 443}};
  flow.connectTimeMs = connect;
  flow.libraryCategory = sym(libCategory);
  flow.recvBytes = bytes;
  return flow;
}

TEST(UserAgentClassifierTest, MatchesKnownSdkStrings) {
  const UserAgentAdClassifier classifier;
  EXPECT_TRUE(classifier.isAdTraffic(exchange(1, 0, "x.com", "UnityAds/3.4 Android")));
  EXPECT_TRUE(classifier.isAdTraffic(exchange(1, 0, "x.com", "MoPubSDK/5.4 (Android)")));
  EXPECT_TRUE(classifier.isAdTraffic(
      exchange(1, 0, "x.com", "FBAudienceNetwork/5.6 AN-SDK")));
}

TEST(UserAgentClassifierTest, GenericDalvikUaIsInvisible) {
  // The paper's critique: the default platform UA carries no SDK identity.
  const UserAgentAdClassifier classifier;
  EXPECT_FALSE(classifier.isAdTraffic(exchange(
      1, 0, "ads1.example.com",
      "Dalvik/2.1.0 (Linux; U; Android 7.1.1; sdk_google_phone_x86)")));
  EXPECT_FALSE(classifier.isAdTraffic(exchange(1, 0, "x.com", "")));
}

TEST(UserAgentClassifierTest, CaseInsensitiveAndExtendable) {
  UserAgentAdClassifier classifier;
  EXPECT_TRUE(classifier.isAdTraffic(exchange(1, 0, "x.com", "UNITYADS/3.4")));
  classifier.addMarker("MyCustomAdKit");
  EXPECT_TRUE(classifier.isAdTraffic(exchange(1, 0, "x.com", "mycustomadkit/1")));
}

TEST(HostnameClassifierTest, MatchesAdHostsMissesGenericOnes) {
  const HostnameAdClassifier classifier;
  EXPECT_TRUE(classifier.isAdTraffic("adserv3.unity3d-ads.net"));
  EXPECT_TRUE(classifier.isAdTraffic("ADS1.exchange.com"));
  // CDN-served ad creatives escape hostname matching — §IV-E.
  EXPECT_FALSE(classifier.isAdTraffic("cdn4.edgecache.net"));
  EXPECT_FALSE(classifier.isAdTraffic("api2.backend.com"));
}

TEST(JoinTest, ExchangesJoinToOwningFlowByPairAndTime) {
  std::vector<FlowRecord> flows = {flowAt(40000, 1000, "Advertisement"),
                                   flowAt(40000, 50000, "Development Aid"),
                                   flowAt(40001, 2000, "Unknown")};
  net::CaptureFile capture;
  capture.appendHttp(exchange(40000, 1100, "a.com", "ua"));   // first flow
  capture.appendHttp(exchange(40000, 50100, "a.com", "ua"));  // second flow
  capture.appendHttp(exchange(40001, 2100, "b.com", "ua"));   // third flow
  capture.appendHttp(exchange(49999, 100, "c.com", "ua"));    // no flow

  const auto joined = joinExchangesToFlows(flows, capture);
  ASSERT_EQ(joined.size(), 3u);
  EXPECT_EQ(joined[0].flow->libraryCategory, "Advertisement");
  EXPECT_EQ(joined[1].flow->libraryCategory, "Development Aid");
  EXPECT_EQ(joined[2].flow->libraryCategory, "Unknown");
}

TEST(ScoreTest, TalliesAndDerivedMetrics) {
  std::vector<FlowRecord> flows = {flowAt(1, 0, "Advertisement", 500),
                                   flowAt(2, 0, "Advertisement", 700),
                                   flowAt(3, 0, "Unknown", 100),
                                   flowAt(4, 0, "Unknown", 100)};
  net::CaptureFile capture;
  capture.appendHttp(exchange(1, 10, "ads.com", "UnityAds/3.4"));  // TP
  capture.appendHttp(exchange(2, 10, "cdn.net", "Dalvik/2.1"));    // FN
  capture.appendHttp(exchange(3, 10, "ads.com", "UnityAds/3.4"));  // FP
  capture.appendHttp(exchange(4, 10, "api.com", "Dalvik/2.1"));    // TN

  const UserAgentAdClassifier classifier;
  const auto joined = joinExchangesToFlows(flows, capture);
  const auto score = scoreBaseline(
      joined,
      [](const FlowRecord& f) { return f.libraryCategory == "Advertisement"; },
      [&](const JoinedExchange& e) { return classifier.isAdTraffic(*e.exchange); });

  EXPECT_EQ(score.truePositives, 1u);
  EXPECT_EQ(score.falseNegatives, 1u);
  EXPECT_EQ(score.falsePositives, 1u);
  EXPECT_EQ(score.trueNegatives, 1u);
  EXPECT_DOUBLE_EQ(score.precision(), 0.5);
  EXPECT_DOUBLE_EQ(score.recall(), 0.5);
  EXPECT_DOUBLE_EQ(score.f1(), 0.5);
  EXPECT_EQ(score.missedBytes, 700u);
}

TEST(ScoreTest, EmptyInputsGiveZeroMetricsNotNan) {
  const BaselineScore empty;
  EXPECT_EQ(empty.precision(), 0.0);
  EXPECT_EQ(empty.recall(), 0.0);
  EXPECT_EQ(empty.f1(), 0.0);
}

}  // namespace
}  // namespace libspector::core
