#include "core/attribution.hpp"

#include <gtest/gtest.h>

namespace libspector::core {
namespace {

// ---------------------------------------------------------------------------
// Built-in frame filter (footnote 2)
// ---------------------------------------------------------------------------

TEST(BuiltinFilterTest, Footnote2Prefixes) {
  EXPECT_TRUE(isBuiltinFrame("android.os.AsyncTask$2.call"));
  EXPECT_TRUE(isBuiltinFrame("dalvik.system.VMStack.getThreadStackTrace"));
  EXPECT_TRUE(isBuiltinFrame("java.net.Socket.connect"));
  EXPECT_TRUE(isBuiltinFrame("java.util.concurrent.FutureTask.run"));
  EXPECT_TRUE(isBuiltinFrame("javax.net.ssl.SSLSocketFactory.createSocket"));
  EXPECT_TRUE(isBuiltinFrame("junit.framework.TestCase.run"));
  EXPECT_TRUE(isBuiltinFrame("org.apache.http.impl.client.AbstractHttpClient.execute"));
  EXPECT_TRUE(isBuiltinFrame("org.json.JSONObject.put"));
  EXPECT_TRUE(isBuiltinFrame("org.w3c.dom.Document.createElement"));
  EXPECT_TRUE(isBuiltinFrame("org.xml.sax.XMLReader.parse"));
  EXPECT_TRUE(isBuiltinFrame("org.xmlpull.v1.XmlPullParser.next"));
}

TEST(BuiltinFilterTest, PlatformOkHttpIsBuiltinButVolleyIsNot) {
  // Listing 1 eliminates com.android.okhttp.* as internal API calls, yet
  // Fig. 3 lists com.android.volley as a top origin-library.
  EXPECT_TRUE(isBuiltinFrame("com.android.okhttp.internal.Platform.connectSocket"));
  EXPECT_TRUE(isBuiltinFrame("com.android.okhttp.OkHttpClient$1.connectAndSetOwner"));
  EXPECT_FALSE(isBuiltinFrame("com.android.volley.toolbox.BasicNetwork.performRequest"));
}

TEST(BuiltinFilterTest, ThirdPartyFramesPass) {
  EXPECT_FALSE(isBuiltinFrame("com.unity3d.ads.android.cache.b.doInBackground"));
  EXPECT_FALSE(isBuiltinFrame("okhttp3.internal.http.RealInterceptorChain.proceed"));
  EXPECT_FALSE(isBuiltinFrame("com.myapp.net.Fetcher.fetch"));
  // androidx is not android.*
  EXPECT_FALSE(isBuiltinFrame("androidx.core.app.ComponentActivity.onCreate"));
}

TEST(BuiltinFilterTest, AcceptsSmaliSignatures) {
  EXPECT_TRUE(isBuiltinFrame("Landroid/os/AsyncTask$2;->call()Ljava/lang/Object;"));
  EXPECT_FALSE(isBuiltinFrame("Lcom/unity3d/ads/android/cache/b;->a()V"));
}

// ---------------------------------------------------------------------------
// Origin frame selection (Listing 1)
// ---------------------------------------------------------------------------

TEST(OriginFrameTest, Listing1SelectsLine12) {
  // Exact trace from Listing 1, innermost first.
  const std::vector<std::string> trace = {
      "java.net.Socket.connect",
      "com.android.okhttp.internal.Platform.connectSocket",
      "com.android.okhttp.Connection.connectSocket",
      "com.android.okhttp.Connection.connect",
      "com.android.okhttp.Connection.connectAndSetOwner",
      "com.android.okhttp.OkHttpClient$1.connectAndSetOwner",
      "com.android.okhttp.internal.http.HttpEngine.connect",
      "com.android.okhttp.internal.http.HttpEngine.sendRequest",
      "com.android.okhttp.internal.huc.HttpURLConnectionImpl.execute",
      "com.android.okhttp.internal.huc.HttpURLConnectionImpl.connect",
      "com.unity3d.ads.android.cache.b.a",
      "com.unity3d.ads.android.cache.b.doInBackground",  // <- line 12
      "android.os.AsyncTask$2.call",
      "java.util.concurrent.FutureTask.run",
  };
  const auto origin = originFrameIndex(trace);
  ASSERT_TRUE(origin.has_value());
  EXPECT_EQ(*origin, 11u);
  EXPECT_EQ(trace[*origin], "com.unity3d.ads.android.cache.b.doInBackground");
  EXPECT_EQ(packageOfEntry(trace[*origin]), "com.unity3d.ads.android.cache");
}

TEST(OriginFrameTest, AllBuiltinMeansNoOrigin) {
  const std::vector<std::string> trace = {
      "java.net.Socket.connect",
      "com.android.okhttp.internal.Platform.connectSocket",
      "android.os.Handler.dispatchMessage",
      "java.lang.Thread.run",
  };
  EXPECT_FALSE(originFrameIndex(trace).has_value());
}

TEST(OriginFrameTest, EmptyTrace) {
  EXPECT_FALSE(originFrameIndex({}).has_value());
}

TEST(OriginFrameTest, DirectCallPicksOutermostAppFrame) {
  // A synchronous handler call: the chronologically first app method is
  // the UI handler, not the library helper beneath it.
  const std::vector<std::string> trace = {
      "java.net.Socket.connect",
      "okhttp3.internal.connection.RealConnection.connect",
      "com.myapp.net.Api.fetch",
      "com.myapp.ui.MainActivity.onClick",
      "android.view.View.performClick",
  };
  const auto origin = originFrameIndex(trace);
  ASSERT_TRUE(origin.has_value());
  EXPECT_EQ(trace[*origin], "com.myapp.ui.MainActivity.onClick");
}

TEST(EntryHelpersTest, FrameAndPackageFromEitherForm) {
  EXPECT_EQ(frameNameOf("Lcom/foo/Bar;->baz(I)V"), "com.foo.Bar.baz");
  EXPECT_EQ(frameNameOf("com.foo.Bar.baz"), "com.foo.Bar.baz");
  EXPECT_EQ(packageOfEntry("Lcom/foo/Bar;->baz(I)V"), "com.foo");
  EXPECT_EQ(packageOfEntry("com.foo.Bar.baz"), "com.foo");
}

// ---------------------------------------------------------------------------
// End-to-end attribution over a hand-built run
// ---------------------------------------------------------------------------

class AttributorTest : public ::testing::Test {
 protected:
  AttributorTest()
      : corpus_(radar::LibraryCorpus::builtin()),
        categorizer_(vtsim::defaultVendorPanel(),
                     [](const std::string& domain) -> std::string {
                       if (domain.starts_with("ads")) return "advertisements";
                       if (domain.starts_with("cdn")) return "cdn";
                       return "business_and_finance";
                     }),
        attributor_(corpus_, categorizer_) {}

  static net::SocketPair pairWithPort(std::uint16_t srcPort,
                                      net::Ipv4Addr dst = net::Ipv4Addr(198, 18, 0, 5)) {
    return {{net::Ipv4Addr(10, 0, 2, 15), srcPort}, {dst, 443}};
  }

  /// DNS answer + data packets + report for one socket.
  void addFlow(RunArtifacts& run, std::uint16_t srcPort,
               const std::string& domain, net::Ipv4Addr serverIp,
               util::SimTimeMs when, std::uint32_t sentPayload,
               std::uint32_t recvPayload,
               std::vector<std::string> stack) {
    const auto pair = pairWithPort(srcPort, serverIp);
    run.capture.append(net::makeUdpPacket(when - 5, {{net::Ipv4Addr(10, 0, 2, 15), 0},
                                                     {net::Ipv4Addr(10, 0, 2, 3), 53}},
                                          70, 42, domain, serverIp));
    run.capture.append(net::makeTcpPacket(when + 1, pair, sentPayload + 40, sentPayload));
    run.capture.append(
        net::makeTcpPacket(when + 2, pair.reversed(), recvPayload + 40, recvPayload));
    UdpReport report;
    report.apkSha256 = run.apkSha256;
    report.socketPair = pair;
    report.timestampMs = when;
    report.stackSignatures = std::move(stack);
    run.reports.push_back(std::move(report));
  }

  RunArtifacts baseRun() {
    RunArtifacts run;
    run.apkSha256 = "feedface";
    run.packageName = "com.myapp";
    run.appCategory = "GAME_ACTION";
    return run;
  }

  const std::vector<std::string> kAdStack = {
      "java.net.Socket.connect",
      "com.android.okhttp.internal.Platform.connectSocket",
      "Lcom/unity3d/ads/android/cache/b;->a(Ljava/lang/String;)V",
      "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/String;)V",
      "android.os.AsyncTask$2.call",
      "java.util.concurrent.FutureTask.run"};

  radar::LibraryCorpus corpus_;
  vtsim::DomainCategorizer categorizer_;
  TrafficAttributor attributor_;
};

TEST_F(AttributorTest, AttributesListing1FlowCompletely) {
  auto run = baseRun();
  addFlow(run, 40000, "ads1.unityads.com", net::Ipv4Addr(198, 18, 0, 5), 1000,
          500, 18000, kAdStack);
  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 1u);
  const FlowRecord& flow = flows[0];
  EXPECT_EQ(flow.originLibrary, "com.unity3d.ads.android.cache");
  EXPECT_EQ(flow.twoLevelLibrary, "com.unity3d");
  EXPECT_EQ(flow.libraryCategory, "Advertisement");
  EXPECT_TRUE(flow.antOrigin);
  EXPECT_FALSE(flow.builtinOrigin);
  EXPECT_EQ(flow.domain, "ads1.unityads.com");
  EXPECT_EQ(flow.sentBytes, 500u);
  EXPECT_EQ(flow.recvBytes, 18000u);
  EXPECT_EQ(flow.appCategory, "GAME_ACTION");
}

TEST_F(AttributorTest, BuiltinOnlyStackBecomesStarLibrary) {
  auto run = baseRun();
  addFlow(run, 40001, "ads2.exchange.com", net::Ipv4Addr(198, 18, 0, 6), 2000,
          300, 9000,
          {"java.net.Socket.connect", "android.webkit.WebViewClient.onLoadResource",
           "java.lang.Thread.run"});
  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_TRUE(flows[0].builtinOrigin);
  EXPECT_EQ(flows[0].libraryCategory, "Unknown");
  // Fig. 3's "*-Advertisement" convention (when the vote lands on ads).
  EXPECT_TRUE(flows[0].originLibrary.view().starts_with("*-"));
}

TEST_F(AttributorTest, FirstPartyOriginPredictsUnknownCategory) {
  auto run = baseRun();
  addFlow(run, 40002, "api7.backend.com", net::Ipv4Addr(198, 18, 0, 7), 3000,
          400, 5000,
          {"java.net.Socket.connect",
           "Lcom/myapp/net/Api;->fetch()V",
           "Lcom/myapp/ui/Main;->onClick(Landroid/view/View;)V"});
  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].originLibrary, "com.myapp.ui");
  EXPECT_EQ(flows[0].libraryCategory, "Unknown");
  EXPECT_FALSE(flows[0].antOrigin);
}

TEST_F(AttributorTest, PortReuseDisambiguatedByTime) {
  // Two different sockets reuse the identical socket pair; each report must
  // only absorb its own window's packets (§III-E: counted separately).
  auto run = baseRun();
  addFlow(run, 41000, "ads3.net.com", net::Ipv4Addr(198, 18, 0, 8), 10000, 500,
          7000, kAdStack);
  addFlow(run, 41000, "ads3.net.com", net::Ipv4Addr(198, 18, 0, 8), 50000, 600,
          9000, kAdStack);
  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].sentBytes, 500u);
  EXPECT_EQ(flows[0].recvBytes, 7000u);
  EXPECT_EQ(flows[1].sentBytes, 600u);
  EXPECT_EQ(flows[1].recvBytes, 9000u);
}

TEST_F(AttributorTest, DomainIsMostRecentResolutionForIp) {
  // Two domains resolve to one CDN address at different times; the flow
  // after the second resolution belongs to the second domain.
  auto run = baseRun();
  const auto cdnIp = net::Ipv4Addr(198, 18, 0, 9);
  run.capture.append(net::makeUdpPacket(
      100, {{net::Ipv4Addr(10, 0, 2, 15), 0}, {net::Ipv4Addr(10, 0, 2, 3), 53}},
      70, 42, "cdnA.edge.net", cdnIp));
  run.capture.append(net::makeUdpPacket(
      500, {{net::Ipv4Addr(10, 0, 2, 15), 0}, {net::Ipv4Addr(10, 0, 2, 3), 53}},
      70, 42, "cdnB.edge.net", cdnIp));
  const auto pair = pairWithPort(42000, cdnIp);
  run.capture.append(net::makeTcpPacket(1001, pair, 140, 100));
  UdpReport report;
  report.apkSha256 = run.apkSha256;
  report.socketPair = pair;
  report.timestampMs = 1000;
  report.stackSignatures = kAdStack;
  run.reports.push_back(report);

  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].domain, "cdnB.edge.net");
  EXPECT_EQ(flows[0].domainCategory, "cdn");
}

TEST_F(AttributorTest, UnresolvedIpHasEmptyDomainUnknownCategory) {
  auto run = baseRun();
  const auto pair = pairWithPort(43000, net::Ipv4Addr(203, 0, 113, 1));
  run.capture.append(net::makeTcpPacket(1001, pair, 140, 100));
  UdpReport report;
  report.apkSha256 = run.apkSha256;
  report.socketPair = pair;
  report.timestampMs = 1000;
  report.stackSignatures = kAdStack;
  run.reports.push_back(report);

  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_TRUE(flows[0].domain.empty());
  EXPECT_EQ(flows[0].domainCategory, vtsim::kUnknownDomainCategory);
}

TEST_F(AttributorTest, CommonLibraryFlagSet) {
  auto run = baseRun();
  addFlow(run, 44000, "api8.backend.com", net::Ipv4Addr(198, 18, 0, 10), 1500,
          300, 2000,
          {"java.net.Socket.connect",
           "Lokhttp3/internal/http/RealInterceptorChain;->proceed()V",
           "android.os.AsyncTask$2.call"});
  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].originLibrary, "okhttp3.internal.http");
  EXPECT_EQ(flows[0].libraryCategory, "Development Aid");
  EXPECT_TRUE(flows[0].commonOrigin);
  EXPECT_FALSE(flows[0].antOrigin);
}

TEST_F(AttributorTest, FlowsSortedByConnectTime) {
  auto run = baseRun();
  addFlow(run, 45001, "ads4.x.com", net::Ipv4Addr(198, 18, 0, 11), 9000, 1, 1,
          kAdStack);
  addFlow(run, 45000, "ads4.x.com", net::Ipv4Addr(198, 18, 0, 11), 1000, 1, 1,
          kAdStack);
  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_LT(flows[0].connectTimeMs, flows[1].connectTimeMs);
}

TEST_F(AttributorTest, EmptyRunYieldsNoFlows) {
  EXPECT_TRUE(attributor_.attribute(baseRun()).empty());
}

TEST_F(AttributorTest, OutOfOrderHttpExchangesPickChronologicalHost) {
  // Regression: the DPI pass emits exchanges per stream, so the capture's
  // exchange log is not globally time-sorted. hostFor must return the
  // chronologically first in-window exchange, not the first one appended.
  auto run = baseRun();
  const auto pair = pairWithPort(46000, net::Ipv4Addr(198, 18, 0, 12));
  run.capture.append(net::makeTcpPacket(1001, pair, 140, 100));
  UdpReport report;
  report.apkSha256 = run.apkSha256;
  report.socketPair = pair;
  report.timestampMs = 1000;
  report.stackSignatures = kAdStack;
  run.reports.push_back(report);

  net::HttpExchange late;
  late.timestampMs = 5000;
  late.pair = pair;
  late.host = "late.example.com";
  net::HttpExchange early;
  early.timestampMs = 1200;
  early.pair = pair;
  early.host = "early.example.com";
  run.capture.appendHttp(late);   // appended first, happened later
  run.capture.appendHttp(early);

  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].domain, "early.example.com");
}

TEST_F(AttributorTest, IndexedAndNaivePathsAgreeExactly) {
  // The capture index and the frame memos are pure accelerations: flows
  // must match the naive configuration field for field, including on
  // port-reuse windows.
  auto run = baseRun();
  addFlow(run, 47000, "ads5.y.com", net::Ipv4Addr(198, 18, 0, 13), 1000, 500,
          7000, kAdStack);
  addFlow(run, 47000, "ads5.y.com", net::Ipv4Addr(198, 18, 0, 13), 40000, 600,
          9000, kAdStack);
  addFlow(run, 47001, "api9.backend.com", net::Ipv4Addr(198, 18, 0, 14), 2000,
          400, 5000,
          {"java.net.Socket.connect", "Lcom/myapp/net/Api;->fetch()V",
           "Lcom/myapp/ui/Main;->onClick(Landroid/view/View;)V"});

  AttributorConfig naiveConfig;
  naiveConfig.useCaptureIndex = false;
  naiveConfig.memoizeFrames = false;
  const TrafficAttributor naive(corpus_, categorizer_, naiveConfig);

  const auto fast = attributor_.attribute(run);
  const auto slow = naive.attribute(run);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].originLibrary, slow[i].originLibrary) << i;
    EXPECT_EQ(fast[i].originSignature, slow[i].originSignature) << i;
    EXPECT_EQ(fast[i].twoLevelLibrary, slow[i].twoLevelLibrary) << i;
    EXPECT_EQ(fast[i].libraryCategory, slow[i].libraryCategory) << i;
    EXPECT_EQ(fast[i].domain, slow[i].domain) << i;
    EXPECT_EQ(fast[i].domainCategory, slow[i].domainCategory) << i;
    EXPECT_EQ(fast[i].sentBytes, slow[i].sentBytes) << i;
    EXPECT_EQ(fast[i].recvBytes, slow[i].recvBytes) << i;
    EXPECT_EQ(fast[i].antOrigin, slow[i].antOrigin) << i;
    EXPECT_EQ(fast[i].commonOrigin, slow[i].commonOrigin) << i;
    EXPECT_EQ(fast[i].builtinOrigin, slow[i].builtinOrigin) << i;
  }
}

// ---------------------------------------------------------------------------
// Keep-alive request boundaries (§14): one socket, many logical requests
// from different call stacks.
// ---------------------------------------------------------------------------

class KeepAliveAttributorTest : public AttributorTest {
 protected:
  /// A connect report (ordinal 0) without the DNS/packet scaffolding of
  /// addFlow — boundary tests lay out their own packets.
  void addFlowReport(RunArtifacts& run, const net::SocketPair& pair,
                     util::SimTimeMs when, std::vector<std::string> stack) {
    UdpReport report;
    report.apkSha256 = run.apkSha256;
    report.socketPair = pair;
    report.timestampMs = when;
    report.stackSignatures = std::move(stack);
    run.reports.push_back(std::move(report));
  }

  /// A boundary report: the supervisor's request-boundary hook fired on an
  /// already-open socket (ordinal >= 1), stamped strictly after the
  /// previous request's last packet.
  void addBoundary(RunArtifacts& run, const net::SocketPair& pair,
                   util::SimTimeMs when, std::uint32_t ordinal,
                   std::vector<std::string> stack) {
    UdpReport report;
    report.apkSha256 = run.apkSha256;
    report.socketPair = pair;
    report.timestampMs = when;
    report.requestOrdinal = ordinal;
    report.stackSignatures = std::move(stack);
    run.reports.push_back(std::move(report));
  }

  const std::vector<std::string> kAnalyticsStack = {
      "java.net.Socket.connect",
      "com.android.okhttp.internal.http.HttpEngine.sendRequest",
      "Lcom/flurry/android/monolithic/sdk/impl/b;->a(Ljava/lang/String;)V",
      "Lcom/flurry/android/monolithic/sdk/impl/b;->doInBackground([Ljava/lang/String;)V",
      "android.os.AsyncTask$2.call"};
};

TEST_F(KeepAliveAttributorTest, SplitsOneSocketAcrossTwoLibraries) {
  // Request 0 (ads) opens the socket; request 1 (analytics) reuses it.
  // Attribution must yield two flows on the SAME socket pair, each owning
  // exactly its window's bytes, and the per-request totals must sum to the
  // whole capture.
  auto run = baseRun();
  const auto pair = pairWithPort(50000, net::Ipv4Addr(198, 18, 0, 20));
  run.capture.append(net::makeTcpPacket(1001, pair, 540, 500));
  run.capture.append(net::makeTcpPacket(1010, pair.reversed(), 7040, 7000));
  // Boundary stamped after every packet of request 0.
  run.capture.append(net::makeTcpPacket(2001, pair, 340, 300));
  run.capture.append(net::makeTcpPacket(2010, pair.reversed(), 2040, 2000));
  addFlowReport(run, pair, 1000, kAdStack);
  addBoundary(run, pair, 2000, 1, kAnalyticsStack);

  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].originLibrary, "com.unity3d.ads.android.cache");
  EXPECT_EQ(flows[0].requestOrdinal, 0u);
  EXPECT_EQ(flows[0].sentBytes, 500u);
  EXPECT_EQ(flows[0].recvBytes, 7000u);
  EXPECT_EQ(flows[1].originLibrary, "com.flurry.android.monolithic.sdk.impl");
  EXPECT_EQ(flows[1].requestOrdinal, 1u);
  EXPECT_EQ(flows[1].sentBytes, 300u);
  EXPECT_EQ(flows[1].recvBytes, 2000u);
  EXPECT_EQ(flows[0].socketPair, flows[1].socketPair);
  EXPECT_EQ(flows[0].sentBytes + flows[0].recvBytes + flows[1].sentBytes +
                flows[1].recvBytes,
            run.capture.totalTcpPayloadBytes());
  // Per-request RTT: each window measures its own request->response gap.
  EXPECT_EQ(flows[0].rttMs, 9u);
  EXPECT_EQ(flows[1].rttMs, 9u);
}

TEST_F(KeepAliveAttributorTest, BoundaryAtASegmentSplitIsExact) {
  // The last segment of request 0 lands at boundary-1 and the first of
  // request 1 exactly at the boundary timestamp: no byte may be counted
  // twice or dropped.
  auto run = baseRun();
  const auto pair = pairWithPort(50001, net::Ipv4Addr(198, 18, 0, 21));
  run.capture.append(net::makeTcpPacket(1001, pair, 640, 600));
  run.capture.append(net::makeTcpPacket(1999, pair, 940, 900));  // last of 0
  run.capture.append(net::makeTcpPacket(2000, pair, 340, 300));  // first of 1
  addFlowReport(run, pair, 1000, kAdStack);
  addBoundary(run, pair, 2000, 1, kAnalyticsStack);

  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].sentBytes, 1500u);
  EXPECT_EQ(flows[1].sentBytes, 300u);
  EXPECT_EQ(flows[0].sentBytes + flows[1].sentBytes,
            run.capture.totalTcpPayloadBytes());
}

TEST_F(KeepAliveAttributorTest, ZeroByteRequestYieldsAnEmptyFlow) {
  // A reused request that transferred nothing (cache hit / suppressed
  // send) still reported a boundary: it must surface as a zero-byte flow,
  // not absorb the neighbouring requests' bytes.
  auto run = baseRun();
  const auto pair = pairWithPort(50002, net::Ipv4Addr(198, 18, 0, 22));
  run.capture.append(net::makeTcpPacket(1001, pair, 540, 500));
  // Request 1's window [2000, 2999] is silent.
  run.capture.append(net::makeTcpPacket(3001, pair, 340, 300));
  addFlowReport(run, pair, 1000, kAdStack);
  addBoundary(run, pair, 2000, 1, kAnalyticsStack);
  addBoundary(run, pair, 3000, 2, kAdStack);

  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_EQ(flows[1].sentBytes, 0u);
  EXPECT_EQ(flows[1].recvBytes, 0u);
  EXPECT_EQ(flows[1].rttMs, 0u);
  EXPECT_EQ(flows[0].sentBytes + flows[2].sentBytes,
            run.capture.totalTcpPayloadBytes());
}

TEST_F(KeepAliveAttributorTest, InterleavedResponsesConserveBytes) {
  // Request 0's response is still streaming when request 1 opens; windows
  // split by time, so the late bytes land in request 1's flow — the
  // invariant is conservation, not per-request purity (the capture cannot
  // attribute a byte to a logical request, only to a moment).
  auto run = baseRun();
  const auto pair = pairWithPort(50003, net::Ipv4Addr(198, 18, 0, 23));
  run.capture.append(net::makeTcpPacket(1001, pair, 240, 200));
  run.capture.append(net::makeTcpPacket(2001, pair, 440, 400));
  run.capture.append(net::makeTcpPacket(2010, pair.reversed(), 1040, 1000));
  run.capture.append(net::makeTcpPacket(2020, pair.reversed(), 2040, 2000));
  addFlowReport(run, pair, 1000, kAdStack);
  addBoundary(run, pair, 2000, 1, kAnalyticsStack);

  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& flow : flows) total += flow.sentBytes + flow.recvBytes;
  EXPECT_EQ(total, run.capture.totalTcpPayloadBytes());
}

TEST_F(KeepAliveAttributorTest, FinMidRequestLeavesPayloadAlone) {
  // The pooled teardown FINs the socket after the last request; header-only
  // segments inside the final window add no data transfer.
  auto run = baseRun();
  const auto pair = pairWithPort(50004, net::Ipv4Addr(198, 18, 0, 24));
  run.capture.append(net::makeTcpPacket(1001, pair, 540, 500));
  run.capture.append(net::makeTcpPacket(2001, pair, 340, 300));
  run.capture.append(net::makeTcpPacket(2100, pair, 40, 0));             // FIN
  run.capture.append(net::makeTcpPacket(2101, pair.reversed(), 40, 0));  // ACK
  addFlowReport(run, pair, 1000, kAdStack);
  addBoundary(run, pair, 2000, 1, kAnalyticsStack);

  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[1].sentBytes, 300u);
  EXPECT_EQ(flows[1].recvBytes, 0u);
  EXPECT_EQ(flows[0].sentBytes + flows[1].sentBytes,
            run.capture.totalTcpPayloadBytes());
}

TEST_F(KeepAliveAttributorTest, PerRequestHostsFollowTheirWindows) {
  // Regression for the one-logical-request-per-socket assumption in host
  // correlation: each reused request carries its own Host header, and each
  // flow must pick the exchange from ITS window, not the socket's first.
  auto run = baseRun();
  const auto pair = pairWithPort(50005, net::Ipv4Addr(198, 18, 0, 25));
  run.capture.append(net::makeTcpPacket(1001, pair, 240, 200));
  run.capture.append(net::makeTcpPacket(2001, pair, 240, 200));
  net::HttpExchange first;
  first.timestampMs = 1001;
  first.pair = pair;
  first.host = "ads6.first.com";
  net::HttpExchange second;
  second.timestampMs = 2001;
  second.pair = pair;
  second.host = "ads7.second.com";
  run.capture.appendHttp(first);
  run.capture.appendHttp(second);
  addFlowReport(run, pair, 1000, kAdStack);
  addBoundary(run, pair, 2000, 1, kAnalyticsStack);

  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].domain, "ads6.first.com");
  EXPECT_EQ(flows[1].domain, "ads7.second.com");
}

TEST_F(KeepAliveAttributorTest, BoundaryReportStillResolvesDnsDomain) {
  // Regression: a boundary report's window starts at the boundary, long
  // after the DNS answer that resolved the server. The DNS fallback keys
  // on most-recent-resolution-at-report-time, not on the window.
  auto run = baseRun();
  const auto serverIp = net::Ipv4Addr(198, 18, 0, 26);
  const auto pair = pairWithPort(50006, serverIp);
  run.capture.append(net::makeUdpPacket(
      500, {{net::Ipv4Addr(10, 0, 2, 15), 0}, {net::Ipv4Addr(10, 0, 2, 3), 53}},
      70, 42, "cdn9.pool.net", serverIp));
  run.capture.append(net::makeTcpPacket(1001, pair, 240, 200));
  run.capture.append(net::makeTcpPacket(2001, pair, 240, 200));
  addFlowReport(run, pair, 1000, kAdStack);
  addBoundary(run, pair, 2000, 1, kAnalyticsStack);

  const auto flows = attributor_.attribute(run);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].domain, "cdn9.pool.net");
  EXPECT_EQ(flows[1].domain, "cdn9.pool.net");
}

TEST_F(KeepAliveAttributorTest, IndexedAndNaivePathsAgreeOnBoundaries) {
  // The capture index answers boundary windows exactly like the naive
  // scan, ordinals and RTT included.
  auto run = baseRun();
  const auto pair = pairWithPort(50007, net::Ipv4Addr(198, 18, 0, 27));
  run.capture.append(net::makeTcpPacket(1001, pair, 540, 500));
  run.capture.append(net::makeTcpPacket(1010, pair.reversed(), 840, 800));
  run.capture.append(net::makeTcpPacket(2001, pair, 340, 300));
  run.capture.append(net::makeTcpPacket(2015, pair.reversed(), 640, 600));
  addFlowReport(run, pair, 1000, kAdStack);
  addBoundary(run, pair, 2000, 1, kAnalyticsStack);

  AttributorConfig naiveConfig;
  naiveConfig.useCaptureIndex = false;
  naiveConfig.memoizeFrames = false;
  naiveConfig.internSymbols = false;
  const TrafficAttributor naive(corpus_, categorizer_, naiveConfig);

  const auto fast = attributor_.attribute(run);
  const auto slow = naive.attribute(run);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].requestOrdinal, slow[i].requestOrdinal) << i;
    EXPECT_EQ(fast[i].rttMs, slow[i].rttMs) << i;
    EXPECT_EQ(fast[i].sentBytes, slow[i].sentBytes) << i;
    EXPECT_EQ(fast[i].recvBytes, slow[i].recvBytes) << i;
    EXPECT_EQ(fast[i].originLibrary.view(), slow[i].originLibrary.view()) << i;
    EXPECT_EQ(fast[i].domain.view(), slow[i].domain.view()) << i;
  }
}

}  // namespace
}  // namespace libspector::core
