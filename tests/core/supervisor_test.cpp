#include "core/supervisor.hpp"

#include <gtest/gtest.h>

#include "net/server.hpp"
#include "rt/tracer.hpp"
#include "util/sha256.hpp"

namespace libspector::core {
namespace {

class SupervisorTest : public ::testing::Test {
 protected:
  SupervisorTest() {
    net::EndpointProfile profile;
    profile.domain = "config.unityads.com";
    profile.trueCategory = "advertisements";
    farm_.addEndpoint(profile);

    apk_.packageName = "com.game.fun";
    apk_.appCategory = "GAME_ACTION";

    // Listing-1-style program: handler schedules an AsyncTask whose body
    // requests through an HTTP engine.
    rt::NetRequestAction request;
    request.domain = "config.unityads.com";
    request.engine = rt::HttpEngine::OkHttp;
    helper_ = program_.addMethod(
        "Lcom/unity3d/ads/android/cache/b;->a(Ljava/lang/String;)Ljava/lang/Object;",
        {request});
    task_ = program_.addMethod(
        "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/String;)Ljava/lang/Object;",
        {rt::CallAction{helper_}});
    const auto handler = program_.addMethod(
        "Lcom/game/fun/ui/H;->onClick(Landroid/view/View;)V",
        {rt::AsyncAction{task_}});
    program_.uiHandlers.push_back(handler);

    // Dex holds the program methods.
    dex::DexFile dexFile;
    dex::ClassDef cls;
    cls.dottedName = "mixed";
    for (const auto& method : program_.methods)
      cls.methods.push_back({method.signature});
    dexFile.classes.push_back(cls);
    apk_.dexFiles.push_back(dexFile);
  }

  net::ServerFarm farm_;
  util::SimClock clock_;
  rt::UniqueMethodTracer tracer_;
  dex::ApkFile apk_;
  rt::AppProgram program_;
  rt::MethodId helper_ = 0;
  rt::MethodId task_ = 0;
};

TEST_F(SupervisorTest, SendsOneReportPerSocketWithFullContext) {
  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  rt::Interpreter runtime(program_, stack, tracer_, clock_, util::Rng(4));

  std::vector<UdpReport> received;
  stack.registerUdpSink(kDefaultCollectorEndpoint,
                        [&](const net::SockEndpoint&,
                            std::span<const std::uint8_t> payload) {
                          received.push_back(decodeReportDatagram(payload));
                        });

  auto supervisor = std::make_shared<SocketSupervisor>();
  supervisor->onAppLoaded(runtime, apk_);
  runtime.dispatchUiEvent();
  runtime.dispatchUiEvent();

  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(supervisor->reportsSent(), 2u);
  const UdpReport& report = received[0];
  EXPECT_EQ(report.apkSha256, util::toHex(apk_.sha256()));

  // Socket pair from getsockname/getpeername: device first.
  EXPECT_EQ(report.socketPair.src.ip, net::Ipv4Addr(10, 0, 2, 15));
  EXPECT_EQ(report.socketPair.dst.port, 443);

  // Stack signatures innermost-first: socket connect down to FutureTask.
  ASSERT_GE(report.stackSignatures.size(), 4u);
  EXPECT_EQ(report.stackSignatures.front(), "java.net.Socket.connect");
  EXPECT_EQ(report.stackSignatures.back(), "java.util.concurrent.FutureTask.run");
}

TEST_F(SupervisorTest, AppFramesCarryFullTypeSignatures) {
  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  rt::Interpreter runtime(program_, stack, tracer_, clock_, util::Rng(4));
  std::vector<UdpReport> received;
  stack.registerUdpSink(kDefaultCollectorEndpoint,
                        [&](const net::SockEndpoint&,
                            std::span<const std::uint8_t> payload) {
                          received.push_back(decodeReportDatagram(payload));
                        });
  auto supervisor = std::make_shared<SocketSupervisor>();
  supervisor->onAppLoaded(runtime, apk_);
  runtime.dispatchUiEvent();

  ASSERT_EQ(received.size(), 1u);
  const auto& signatures = received[0].stackSignatures;
  // The unity3d helper and task appear as overload-precise signatures.
  EXPECT_NE(std::find(signatures.begin(), signatures.end(),
                      program_.method(helper_).signature),
            signatures.end());
  EXPECT_NE(std::find(signatures.begin(), signatures.end(),
                      program_.method(task_).signature),
            signatures.end());
}

TEST_F(SupervisorTest, TranslateFramePrefersMethodIdThenTable) {
  const dex::FrameTranslationTable table(apk_);
  // App frame: exact signature via method id.
  const rt::StackFrameSnapshot appFrame{
      "com.unity3d.ads.android.cache.b.a", static_cast<std::int32_t>(helper_)};
  EXPECT_EQ(translateFrame(appFrame, program_, table),
            program_.method(helper_).signature);
  // Framework frame present in dex: resolved through the table.
  const rt::StackFrameSnapshot dexFrame{"com.unity3d.ads.android.cache.b.a", -1};
  EXPECT_EQ(translateFrame(dexFrame, program_, table),
            program_.method(helper_).signature);
  // Pure framework frame: kept as the frame name.
  const rt::StackFrameSnapshot framework{"java.net.Socket.connect", -1};
  EXPECT_EQ(translateFrame(framework, program_, table), "java.net.Socket.connect");
}

TEST_F(SupervisorTest, ReportTimestampMatchesEmulatorClock) {
  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  rt::Interpreter runtime(program_, stack, tracer_, clock_, util::Rng(4));
  std::vector<UdpReport> received;
  stack.registerUdpSink(kDefaultCollectorEndpoint,
                        [&](const net::SockEndpoint&,
                            std::span<const std::uint8_t> payload) {
                          received.push_back(decodeReportDatagram(payload));
                        });
  auto supervisor = std::make_shared<SocketSupervisor>();
  supervisor->onAppLoaded(runtime, apk_);
  clock_.advance(5000);
  runtime.dispatchUiEvent();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_GE(received[0].timestampMs, 5000u);
  EXPECT_LE(received[0].timestampMs, clock_.now());
}

TEST_F(SupervisorTest, ReportsGoToConfiguredCollector) {
  const net::SockEndpoint custom{net::Ipv4Addr(10, 0, 2, 2), 7777};
  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  rt::Interpreter runtime(program_, stack, tracer_, clock_, util::Rng(4));
  int hits = 0;
  stack.registerUdpSink(custom, [&](const net::SockEndpoint&,
                                    std::span<const std::uint8_t>) { ++hits; });
  auto supervisor = std::make_shared<SocketSupervisor>(custom);
  supervisor->onAppLoaded(runtime, apk_);
  runtime.dispatchUiEvent();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace libspector::core
