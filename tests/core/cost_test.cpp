#include "core/cost.hpp"

#include <gtest/gtest.h>

namespace libspector::core {
namespace {

// §IV-D reproduces the paper's arithmetic exactly; these tests pin it.

TEST(EnergyModelTest, BatteryVoltage) {
  // 11.55 Wh / 3000 mAh = 3.85 V
  EXPECT_NEAR(EnergyModel{}.batteryVoltage(), 3.85, 1e-9);
}

TEST(EnergyModelTest, AdActivePower) {
  // (229 mA - 144.6 mA) * 3.85 V = 0.325 W
  EXPECT_NEAR(EnergyModel{}.adActivePowerWatts(), 0.325, 0.001);
}

TEST(EnergyModelTest, AdThroughput) {
  // (31 kB * 0.95) / (5 min * 9.3 s/min) ~= 635 B/s  (31 kB = 31*1024 B)
  EXPECT_NEAR(EnergyModel{}.adThroughputBytesPerSec(), 635.0, 25.0);
}

TEST(EnergyModelTest, JoulesPerByte) {
  // The paper prints 5e-3 J/B but its worked example (15.6 MB -> 7794 J)
  // pins the real value near 5e-4.
  EXPECT_NEAR(EnergyModel{}.joulesPerByte(), 5.0e-4, 0.6e-4);
}

TEST(EnergyModelTest, PaperWorkedExample) {
  const EnergyModel model;
  const double bytes = 15.6 * 1024 * 1024;  // "15.6 MB data on average"
  const double joules = model.energyJoules(bytes);
  EXPECT_NEAR(joules, 7794.0, 800.0);  // "costs 7794 Joules of energy"
  // "or 2.16 Wh ... that is 18.7% more energy consumption"
  EXPECT_NEAR(joules / 3600.0, 2.16, 0.25);
  EXPECT_NEAR(model.batteryFraction(bytes), 0.187, 0.02);
}

TEST(DataPlanTest, GoogleFiAdCost) {
  // 15.58 MB per 8-minute run at $10/GB ~= $1.17 per hour (paper's figure;
  // the plain arithmetic gives ~$1.14, within rounding of their inputs).
  const DataPlanModel plan;
  const double bytesPerRun = 15.58 * 1024 * 1024;
  EXPECT_NEAR(plan.usdPerHour(bytesPerRun, 8.0), 1.17, 0.05);
}

TEST(DataPlanTest, AnalyticsAndSocialCosts) {
  const DataPlanModel plan;
  // Mobile Analytics: 2.2 MB/8min -> ~$0.17/h (paper: $0.17).
  EXPECT_NEAR(plan.usdPerHour(2.2 * 1024 * 1024, 8.0), 0.17, 0.03);
  // Social+identity: 1.92 MB/8min -> ~$0.14/h (paper: $0.14).
  EXPECT_NEAR(plan.usdPerHour(1.92 * 1024 * 1024, 8.0), 0.14, 0.02);
}

TEST(DataPlanTest, GameEngineCost) {
  // Game engines: $3.02/h implies ~41 MB per 8-minute run.
  const DataPlanModel plan;
  EXPECT_NEAR(plan.usdPerHour(41.2 * 1024 * 1024, 8.0), 3.02, 0.1);
}

TEST(DataPlanTest, ZeroRunMinutes) {
  EXPECT_EQ(DataPlanModel{}.usdPerHour(1e6, 0.0), 0.0);
}

TEST(CostModelTest, EstimateBundlesEverything) {
  const CostModel model(DataPlanModel{}, EnergyModel{}, 8.0);
  const double bytes = 15.6 * 1024 * 1024;
  const auto estimate = model.estimate(bytes);
  EXPECT_DOUBLE_EQ(estimate.bytesPerRun, bytes);
  EXPECT_GT(estimate.usdPerHour, 1.0);
  EXPECT_GT(estimate.energyJoules, 7000.0);
  EXPECT_GT(estimate.batteryFraction, 0.15);
}

TEST(CostModelTest, ScalesLinearlyInBytes) {
  const CostModel model(DataPlanModel{}, EnergyModel{}, 8.0);
  const auto one = model.estimate(1e6);
  const auto two = model.estimate(2e6);
  EXPECT_NEAR(two.usdPerHour, 2 * one.usdPerHour, 1e-9);
  EXPECT_NEAR(two.energyJoules, 2 * one.energyJoules, 1e-6);
}

}  // namespace
}  // namespace libspector::core
