#include "hook/xposed.hpp"

#include <gtest/gtest.h>

#include "hook/native.hpp"
#include "net/server.hpp"
#include "rt/tracer.hpp"
#include "util/sha256.hpp"

namespace libspector::hook {
namespace {

class RecordingModule final : public XposedModule {
 public:
  void onAppLoaded(rt::Interpreter& runtime, const dex::ApkFile& apk) override {
    ++loads_;
    lastPackage_ = apk.packageName;
    runtime.registerPostHook(std::string(rt::kSocketConnectFrame),
                             [this](const rt::SocketHookContext&) { ++hooks_; });
  }

  int loads_ = 0;
  int hooks_ = 0;
  std::string lastPackage_;
};

class XposedTest : public ::testing::Test {
 protected:
  XposedTest() {
    net::EndpointProfile profile;
    profile.domain = "api.example.com";
    profile.trueCategory = "info_tech";
    farm_.addEndpoint(profile);
    apk_.packageName = "com.example.app";
    rt::NetRequestAction request;
    request.domain = "api.example.com";
    const auto handler = program_.addMethod("Lcom/example/app/H;->onClick()V",
                                            {request});
    program_.uiHandlers.push_back(handler);
  }

  net::ServerFarm farm_;
  util::SimClock clock_;
  rt::UniqueMethodTracer tracer_;
  dex::ApkFile apk_;
  rt::AppProgram program_;
};

TEST_F(XposedTest, ModulesAttachAtAppLoad) {
  XposedFramework framework;
  auto module = std::make_shared<RecordingModule>();
  framework.installModule(module);
  EXPECT_EQ(framework.moduleCount(), 1u);

  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  rt::Interpreter runtime(program_, stack, tracer_, clock_, util::Rng(4));
  framework.attachToApp(runtime, apk_);
  EXPECT_EQ(module->loads_, 1);
  EXPECT_EQ(module->lastPackage_, "com.example.app");

  runtime.dispatchUiEvent();
  EXPECT_EQ(module->hooks_, 1);
}

TEST_F(XposedTest, MultipleModulesAllAttach) {
  XposedFramework framework;
  auto a = std::make_shared<RecordingModule>();
  auto b = std::make_shared<RecordingModule>();
  framework.installModule(a);
  framework.installModule(b);

  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  rt::Interpreter runtime(program_, stack, tracer_, clock_, util::Rng(4));
  framework.attachToApp(runtime, apk_);
  runtime.dispatchUiEvent();
  EXPECT_EQ(a->hooks_, 1);
  EXPECT_EQ(b->hooks_, 1);
}

TEST_F(XposedTest, NullModuleRejected) {
  XposedFramework framework;
  EXPECT_THROW(framework.installModule(nullptr), std::invalid_argument);
}

TEST_F(XposedTest, AttachmentPreservesAppIntegrity) {
  // Design goal §II: apps must not be modified; the apk hash is unchanged
  // by instrumentation.
  const auto before = util::toHex(apk_.sha256());
  XposedFramework framework;
  framework.installModule(std::make_shared<RecordingModule>());
  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  rt::Interpreter runtime(program_, stack, tracer_, clock_, util::Rng(4));
  framework.attachToApp(runtime, apk_);
  runtime.dispatchUiEvent();
  EXPECT_EQ(util::toHex(apk_.sha256()), before);
}

TEST_F(XposedTest, NativeCallsReturnConnectionParameters) {
  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  const auto conn = stack.connectTcp("api.example.com", 443);
  ASSERT_TRUE(conn.has_value());

  const auto local = getsockname(stack, conn->id);
  const auto remote = getpeername(stack, conn->id);
  const auto pair = connectionParameters(stack, conn->id);
  ASSERT_TRUE(local && remote && pair);
  EXPECT_EQ(*local, conn->pair.src);
  EXPECT_EQ(*remote, conn->pair.dst);
  EXPECT_EQ(*pair, conn->pair);
}

TEST_F(XposedTest, NativeCallsFailForUnknownSocket) {
  net::NetworkStack stack(farm_, clock_, util::Rng(3));
  EXPECT_FALSE(getsockname(stack, 12345).has_value());
  EXPECT_FALSE(getpeername(stack, 12345).has_value());
  EXPECT_FALSE(connectionParameters(stack, 12345).has_value());
}

}  // namespace
}  // namespace libspector::hook
