#include "store/prefetch.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "util/sha256.hpp"

namespace libspector::store {
namespace {

StoreConfig smallConfig(std::size_t apps = 24, std::uint64_t seed = 7) {
  StoreConfig config;
  config.appCount = apps;
  config.seed = seed;
  config.methodScale = 0.05;  // keep test dex files small
  return config;
}

std::vector<std::size_t> allIndices(std::size_t count) {
  std::vector<std::size_t> indices(count);
  for (std::size_t i = 0; i < count; ++i) indices[i] = i;
  return indices;
}

TEST(PrefetchTest, DeliversEveryIndexExactlyOnceInOrder) {
  const AppStoreGenerator generator(smallConfig());
  PrefetchConfig config;
  config.threads = 4;
  JobPrefetcher prefetcher(generator, config);

  std::size_t expected = 0;
  while (auto item = prefetcher.next()) {
    EXPECT_EQ(item->index, expected);
    EXPECT_EQ(item->job.apk.packageName, generator.plan(expected).packageName);
    ++expected;
  }
  EXPECT_EQ(expected, generator.appCount());
  const auto stats = prefetcher.stats();
  EXPECT_EQ(stats.produced, generator.appCount());
  EXPECT_EQ(stats.delivered, generator.appCount());
}

TEST(PrefetchTest, NulloptIsSticky) {
  const AppStoreGenerator generator(smallConfig(3));
  PrefetchConfig config;
  config.threads = 2;
  JobPrefetcher prefetcher(generator, config);
  while (prefetcher.next()) {
  }
  EXPECT_FALSE(prefetcher.next().has_value());
  EXPECT_FALSE(prefetcher.next().has_value());
}

TEST(PrefetchTest, HonorsExplicitIndexList) {
  // Resumed studies feed the gap indices; the pool must expand exactly
  // those, in that order, under their original identities.
  const AppStoreGenerator generator(smallConfig());
  const std::vector<std::size_t> gaps{2, 5, 11, 17, 18};
  PrefetchConfig config;
  config.threads = 3;
  JobPrefetcher prefetcher(generator, gaps, config);

  std::vector<std::size_t> seen;
  while (auto item = prefetcher.next()) {
    seen.push_back(item->index);
    EXPECT_EQ(item->job.apk.packageName,
              generator.plan(item->index).packageName);
  }
  EXPECT_EQ(seen, gaps);
}

TEST(PrefetchTest, SlowConsumerNeverExceedsCapacity) {
  // Backpressure: with a capacity-K window and a consumer much slower than
  // the generators, memory must stay O(K) — the high-water mark of
  // outstanding jobs can never pass K no matter how far ahead the pool
  // could run.
  const AppStoreGenerator generator(smallConfig(32));
  constexpr std::size_t kCapacity = 4;
  PrefetchConfig config;
  config.threads = 8;
  config.capacity = kCapacity;
  JobPrefetcher prefetcher(generator, config);

  std::size_t delivered = 0;
  while (auto item = prefetcher.next()) {
    ++delivered;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_LE(prefetcher.stats().maxOutstanding, kCapacity);
  }
  EXPECT_EQ(delivered, generator.appCount());
  EXPECT_LE(prefetcher.stats().maxOutstanding, kCapacity);
}

TEST(PrefetchTest, EarlyDestructionDrainsWithoutDeadlock) {
  // Shutdown with generators mid-flight and a full window: the destructor
  // must stop and join without waiting on a consumer that will never come.
  const AppStoreGenerator generator(smallConfig(32));
  for (int round = 0; round < 10; ++round) {
    PrefetchConfig config;
    config.threads = 4;
    config.capacity = 2;
    JobPrefetcher prefetcher(generator, config);
    auto item = prefetcher.next();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->index, 0u);
    // Destructor runs with up to `capacity` jobs buffered and generators
    // blocked on the window.
  }
}

TEST(PrefetchTest, ImmediateDestructionIsSafe) {
  const AppStoreGenerator generator(smallConfig(16));
  for (int round = 0; round < 10; ++round) {
    PrefetchConfig config;
    config.threads = 4;
    JobPrefetcher prefetcher(generator, config);
  }
}

TEST(PrefetchTest, HashesApksDuringExpansion) {
  const AppStoreGenerator generator(smallConfig(6));
  PrefetchConfig config;
  config.threads = 2;
  JobPrefetcher prefetcher(generator, config);
  while (auto item = prefetcher.next()) {
    EXPECT_EQ(item->apkSha256, util::toHex(item->job.apk.sha256()));
  }
}

TEST(PrefetchTest, HashingCanBeDisabled) {
  const AppStoreGenerator generator(smallConfig(4));
  PrefetchConfig config;
  config.threads = 2;
  config.hashApks = false;
  JobPrefetcher prefetcher(generator, config);
  while (auto item = prefetcher.next()) {
    EXPECT_TRUE(item->apkSha256.empty());
  }
}

TEST(PrefetchTest, PullThroughModeMatchesThreadedDelivery) {
  // threads = 0 is the serial baseline: same items, same order, no pool.
  const AppStoreGenerator generator(smallConfig(12));
  JobPrefetcher serial(generator, PrefetchConfig{.threads = 0});
  PrefetchConfig threadedConfig;
  threadedConfig.threads = 4;
  JobPrefetcher threaded(generator, threadedConfig);

  while (true) {
    auto a = serial.next();
    auto b = threaded.next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    EXPECT_EQ(a->index, b->index);
    EXPECT_EQ(a->apkSha256, b->apkSha256);
    EXPECT_EQ(a->job.apk, b->job.apk);
  }
  EXPECT_EQ(serial.stats().delivered, threaded.stats().delivered);
}

TEST(PrefetchTest, CapacityIsClampedToAtLeastOne) {
  const AppStoreGenerator generator(smallConfig(5));
  PrefetchConfig config;
  config.threads = 2;
  config.capacity = 0;
  JobPrefetcher prefetcher(generator, config);
  std::size_t delivered = 0;
  while (prefetcher.next()) ++delivered;
  EXPECT_EQ(delivered, generator.appCount());
  EXPECT_LE(prefetcher.stats().maxOutstanding, 1u);
}

TEST(PrefetchTest, EmptyIndexListIsImmediatelyExhausted) {
  const AppStoreGenerator generator(smallConfig(4));
  PrefetchConfig config;
  config.threads = 2;
  JobPrefetcher prefetcher(generator, std::vector<std::size_t>{}, config);
  EXPECT_FALSE(prefetcher.next().has_value());
  EXPECT_EQ(prefetcher.stats().produced, 0u);
}

TEST(PrefetchTest, MoreThreadsThanJobsStillTerminates) {
  const AppStoreGenerator generator(smallConfig(2));
  PrefetchConfig config;
  config.threads = 16;
  JobPrefetcher prefetcher(generator, config);
  std::size_t delivered = 0;
  while (prefetcher.next()) ++delivered;
  EXPECT_EQ(delivered, 2u);
}

}  // namespace
}  // namespace libspector::store
