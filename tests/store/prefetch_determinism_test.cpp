// The determinism contract of the generation tier (ISSUE 4): at any
// prefetch thread count the pipeline must produce the same corpus — and
// runStudy the same study — byte for byte as the serial path. makeJob is a
// pure function of the plan seed and the reorder window preserves index
// order, so thread count may change *when* a job is expanded, never *what*
// the consumer sees.
#include "store/prefetch.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "core/export.hpp"
#include "orch/study.hpp"
#include "util/sha256.hpp"

namespace libspector::store {
namespace {

StoreConfig storeConfig(std::uint64_t seed, std::size_t apps = 20) {
  StoreConfig config;
  config.appCount = apps;
  config.seed = seed;
  config.methodScale = 0.05;
  return config;
}

struct CorpusFingerprint {
  std::vector<std::string> apkSha256;        // per index, hex
  std::vector<std::size_t> serializedBytes;  // per index
};

CorpusFingerprint drain(const AppStoreGenerator& generator,
                        std::size_t threads) {
  PrefetchConfig config;
  config.threads = threads;
  config.capacity = 8;
  JobPrefetcher prefetcher(generator, config);
  CorpusFingerprint fingerprint;
  std::size_t expected = 0;
  while (auto item = prefetcher.next()) {
    EXPECT_EQ(item->index, expected++);
    fingerprint.apkSha256.push_back(item->apkSha256);
    fingerprint.serializedBytes.push_back(item->job.apk.serialize().size());
  }
  EXPECT_EQ(expected, generator.appCount());
  return fingerprint;
}

class PrefetchCorpusDeterminism
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefetchCorpusDeterminism, ThreadCountDoesNotChangeACorpusByte) {
  const AppStoreGenerator generator(storeConfig(GetParam()));
  const auto serial = drain(generator, 0);
  for (const std::size_t threads : {1UL, 2UL, 8UL}) {
    const auto pipelined = drain(generator, threads);
    EXPECT_EQ(pipelined.apkSha256, serial.apkSha256) << threads << " threads";
    EXPECT_EQ(pipelined.serializedBytes, serial.serializedBytes)
        << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefetchCorpusDeterminism,
                         ::testing::Values(5, 77));

/// Render every figure dataset plus the markdown report into one string:
/// if two studies agree on all of it byte for byte, they are the same
/// study for every consumer this repository has.
std::string renderStudy(const core::StudyAggregator& study) {
  std::ostringstream out;
  core::writeFig2Csv(study, out);
  core::writeTopLibrariesCsv(study, 25, out);
  core::writeCdfCsv(study, out);
  core::writeFlowRatiosCsv(study, out);
  core::writeAntSharesCsv(study, out);
  core::writeCategoryAveragesCsv(study, out);
  core::writeHeatmapCsv(study, out);
  core::writeCoverageCsv(study, out);
  core::writeStudyReport(study, out);
  return out.str();
}

orch::StudyConfig studyConfig(std::uint64_t seed, std::size_t threads) {
  orch::StudyConfig config;
  config.store = storeConfig(seed, 12);
  config.dispatcher.workers = 2;
  config.dispatcher.emulator.monkey.events = 80;
  config.dispatcher.emulator.monkey.throttleMs = 50;
  config.ingest.shards = 2;
  config.prefetch.threads = threads;
  config.prefetch.capacity = 4;
  return config;
}

class PrefetchStudyDeterminism
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefetchStudyDeterminism, ThreadCountDoesNotChangeAStudyByte) {
  const std::uint64_t seed = GetParam();
  const auto serial = orch::runStudy(studyConfig(seed, 0));
  const std::string baseline = renderStudy(serial.study);
  ASSERT_FALSE(baseline.empty());

  for (const std::size_t threads : {1UL, 2UL, 8UL}) {
    const auto pipelined = orch::runStudy(studyConfig(seed, threads));
    EXPECT_EQ(pipelined.appsProcessed, serial.appsProcessed);
    EXPECT_EQ(pipelined.appsFailed, 0u);
    EXPECT_EQ(renderStudy(pipelined.study), baseline)
        << threads << " prefetch threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefetchStudyDeterminism,
                         ::testing::Values(5, 77));

// Symbol interning (ISSUE 5) is a speed/memory knob, never a results knob:
// with the attributor's cross-run frame cache on or off, at any prefetch
// thread count, the study must not move by a byte.
class InterningStudyIdentity : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(InterningStudyIdentity, InterningDoesNotChangeAStudyByte) {
  const std::uint64_t seed = GetParam();
  const auto interned = orch::runStudy(studyConfig(seed, 0));
  const std::string baseline = renderStudy(interned.study);
  ASSERT_FALSE(baseline.empty());

  for (const std::size_t threads : {0UL, 1UL, 2UL, 8UL}) {
    auto config = studyConfig(seed, threads);
    config.attribution.internSymbols = false;
    const auto plain = orch::runStudy(config);
    EXPECT_EQ(plain.appsProcessed, interned.appsProcessed);
    EXPECT_EQ(renderStudy(plain.study), baseline)
        << "interning off diverged at " << threads << " prefetch threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterningStudyIdentity,
                         ::testing::Values(5, 77));

TEST(PrefetchStudyTest, InterningDoesNotChangeACheckpointByte) {
  // The persisted artifact bundles carry reports and captures that flowed
  // through the symbol-interned pipeline; every .spab must stay
  // byte-identical with interning on and off.
  namespace fs = std::filesystem;
  const std::string tag =
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  const std::string dirOn =
      ::testing::TempDir() + "/spector_intern_on_" + tag;
  const std::string dirOff =
      ::testing::TempDir() + "/spector_intern_off_" + tag;
  fs::remove_all(dirOn);
  fs::remove_all(dirOff);

  auto on = studyConfig(5, 2);
  on.artifactsDirectory = dirOn;
  auto off = studyConfig(5, 2);
  off.artifactsDirectory = dirOff;
  off.attribution.internSymbols = false;
  (void)orch::runStudy(on);
  (void)orch::runStudy(off);

  const auto readAll = [](const fs::path& file) {
    std::ifstream in(file, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };
  std::size_t bundles = 0;
  for (const auto& entry : fs::directory_iterator(dirOn)) {
    if (entry.path().extension() != ".spab") continue;
    ++bundles;
    const fs::path other = fs::path(dirOff) / entry.path().filename();
    ASSERT_TRUE(fs::exists(other)) << entry.path().filename();
    EXPECT_EQ(readAll(entry.path()), readAll(other))
        << entry.path().filename() << " differs with interning off";
  }
  EXPECT_EQ(bundles, on.store.appCount);
}

TEST(PrefetchStudyTest, StatsAreReportedThroughStudyOutput) {
  auto config = studyConfig(5, 2);
  const auto output = orch::runStudy(config);
  EXPECT_EQ(output.prefetchStats.produced, config.store.appCount);
  EXPECT_EQ(output.prefetchStats.delivered, config.store.appCount);
  EXPECT_LE(output.prefetchStats.maxOutstanding, config.prefetch.capacity);
}

}  // namespace
}  // namespace libspector::store
