#include "store/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

#include "radar/corpus.hpp"
#include "util/strings.hpp"
#include "vtsim/categories.hpp"

namespace libspector::store {
namespace {

TEST(CatalogTest, FortyNineAppCategories) {
  const auto& categories = appCategories();
  EXPECT_EQ(categories.size(), 49u);  // Fig. 2 x-axis
  const std::set<std::string> unique(categories.begin(), categories.end());
  EXPECT_EQ(unique.size(), 49u);
  // 17 GAME_* subcategories as in Fig. 2.
  std::size_t games = 0;
  for (const auto& category : categories)
    if (category.starts_with("GAME_")) ++games;
  EXPECT_EQ(games, 17u);
}

TEST(CatalogTest, ClassMapping) {
  EXPECT_EQ(classOf("GAME_ACTION"), CategoryClass::Game);
  EXPECT_EQ(classOf("GAME_MUSIC"), CategoryClass::Game);
  EXPECT_EQ(classOf("MUSIC_AND_AUDIO"), CategoryClass::Media);
  EXPECT_EQ(classOf("DATING"), CategoryClass::Social);
  EXPECT_EQ(classOf("FINANCE"), CategoryClass::Commerce);
  EXPECT_EQ(classOf("BEAUTY"), CategoryClass::Lifestyle);
  EXPECT_EQ(classOf("WEATHER"), CategoryClass::Other);
}

TEST(CatalogTest, LibraryProfilesAreWellFormed) {
  const auto& validLibCategories = radar::libraryCategories();
  const auto& validDomainCategories = vtsim::genericCategories();
  const auto& profiles = libraryProfiles();
  EXPECT_GT(profiles.size(), 40u);
  std::set<std::string_view> prefixes;
  for (const auto& profile : profiles) {
    EXPECT_TRUE(prefixes.insert(profile.prefix).second)
        << "duplicate " << profile.prefix;
    EXPECT_NE(std::find(validLibCategories.begin(), validLibCategories.end(),
                        profile.radarCategory),
              validLibCategories.end())
        << profile.prefix;
    EXPECT_FALSE(profile.activeSubpackages.empty()) << profile.prefix;
    for (const auto sub : profile.activeSubpackages) {
      // Active sub-packages live under the same vendor namespace: either
      // below the profile prefix or a sibling sharing its 2-level root
      // (com.google.android.gms.internal.ads for com.google.android.gms.ads).
      const std::string root = util::prefixLevels(profile.prefix, 2);
      EXPECT_TRUE(util::isHierarchicalPrefix(profile.prefix, sub) ||
                  util::isHierarchicalPrefix(root, sub))
          << profile.prefix << " vs " << sub;
    }
    double mixSum = 0.0;
    for (const auto& [category, weight] : profile.destinationMix) {
      EXPECT_NE(std::find(validDomainCategories.begin(),
                          validDomainCategories.end(), category),
                validDomainCategories.end())
          << profile.prefix << " -> " << category;
      EXPECT_GT(weight, 0.0);
      mixSum += weight;
    }
    EXPECT_NEAR(mixSum, 1.0, 0.01) << profile.prefix;
    EXPECT_GT(profile.domainCount, 0);
    EXPECT_GT(profile.inclusionBase, 0.0);
    EXPECT_LE(profile.inclusionBase, 1.0);
    EXPECT_GE(profile.initRequestProb, 0.0);
    EXPECT_LE(profile.initRequestProb, 1.0);
    EXPECT_GT(profile.meanRequestsPerRun, 0.0);
    EXPECT_LE(profile.requestBytesMin, profile.requestBytesMax);
    EXPECT_GT(profile.bulkMethods, 0u);
  }
}

TEST(CatalogTest, MostProfilesKnownToLibRadar) {
  // Attribution quality depends on the corpus recognizing the roster.
  const auto corpus = radar::LibraryCorpus::builtin();
  std::size_t known = 0;
  for (const auto& profile : libraryProfiles()) {
    for (const auto sub : profile.activeSubpackages) {
      if (corpus.longestMatchingPrefix(sub)) {
        ++known;
        break;
      }
    }
  }
  EXPECT_GT(known, libraryProfiles().size() * 8 / 10);
}

TEST(CatalogTest, InclusionProbabilityInRange) {
  for (const auto& profile : libraryProfiles()) {
    for (const auto cls :
         {CategoryClass::Game, CategoryClass::Media, CategoryClass::Social,
          CategoryClass::Commerce, CategoryClass::Lifestyle,
          CategoryClass::Other}) {
      const double p = inclusionProbability(cls, profile);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 0.95);
    }
  }
}

TEST(CatalogTest, GamesPreferEnginesAndAds) {
  for (const auto& profile : libraryProfiles()) {
    if (profile.radarCategory == "Game Engine") {
      EXPECT_GT(inclusionProbability(CategoryClass::Game, profile),
                inclusionProbability(CategoryClass::Commerce, profile));
    }
    if (profile.radarCategory == "Payment") {
      EXPECT_GT(inclusionProbability(CategoryClass::Commerce, profile),
                inclusionProbability(CategoryClass::Game, profile));
    }
  }
}

TEST(CatalogTest, ResponseProfilesOrdered) {
  // Fig. 7 structure: CDN responses dwarf advertisement responses, which
  // dwarf analytics beacons.
  EXPECT_GT(responseProfileFor("cdn").meanBytes(),
            5 * responseProfileFor("advertisements").meanBytes());
  EXPECT_GT(responseProfileFor("advertisements").meanBytes(),
            5 * responseProfileFor("analytics").meanBytes());
  for (const auto& category : vtsim::genericCategories()) {
    const auto profile = responseProfileFor(category);
    EXPECT_GT(profile.meanBytes(), 0.0);
    EXPECT_LT(profile.minBytes, profile.maxBytes);
  }
}

TEST(CatalogTest, RequestWeightsDeflateByMeanSize) {
  const std::vector<std::pair<std::string_view, double>> mix = {
      {"advertisements", 0.5}, {"cdn", 0.5}};
  const auto weights = requestWeightsFromByteMix(mix);
  ASSERT_EQ(weights.size(), 2u);
  // Equal byte shares -> the big-response category gets fewer requests.
  EXPECT_GT(weights[0], weights[1]);
}

TEST(CatalogTest, AppCountWeightsPositive) {
  for (const auto& category : appCategories())
    EXPECT_GT(appCountWeight(category), 0.0) << category;
  EXPECT_GT(appCountWeight("MUSIC_AND_AUDIO"), appCountWeight("DATING"));
}

TEST(CatalogTest, ContentIntensityShapesFig8) {
  // Music/news must out-pull dating/finance (Fig. 8 extremes).
  EXPECT_GT(contentIntensity("MUSIC_AND_AUDIO"), 2.5);
  EXPECT_GT(contentIntensity("NEWS_AND_MAGAZINES"), 2.5);
  EXPECT_LT(contentIntensity("DATING"), 0.5);
  EXPECT_LT(contentIntensity("FINANCE"), 0.5);
}

TEST(CatalogTest, FirstPartyMixesWellFormed) {
  const auto& validDomainCategories = vtsim::genericCategories();
  for (const auto cls :
       {CategoryClass::Game, CategoryClass::Media, CategoryClass::Social,
        CategoryClass::Commerce, CategoryClass::Lifestyle,
        CategoryClass::Other}) {
    double sum = 0.0;
    for (const auto& [category, weight] : firstPartyDestinationMix(cls)) {
      EXPECT_NE(std::find(validDomainCategories.begin(),
                          validDomainCategories.end(), category),
                validDomainCategories.end());
      sum += weight;
    }
    EXPECT_NEAR(sum, 1.0, 0.01);
  }
}

}  // namespace
}  // namespace libspector::store
