#include "store/repository.hpp"

#include <gtest/gtest.h>

namespace libspector::store {
namespace {

ApkVersionInfo version(std::uint64_t dexTs, std::uint64_t vtDate,
                       std::vector<std::string> abis = {"x86"}) {
  ApkVersionInfo info;
  info.dexTimestamp = dexTs;
  info.vtScanDate = vtDate;
  info.abis = std::move(abis);
  return info;
}

TEST(SelectionTest, LatestDexTimestampWins) {
  // §III-A: "we retrieved the apk ... with the latest dex time stamp".
  const std::vector<ApkVersionInfo> versions = {
      version(1500000000, 0), version(1600000000, 0), version(1550000000, 0)};
  EXPECT_EQ(selectApkVersion(versions), 1u);
}

TEST(SelectionTest, DefaultTimestampsFallBackToVirusTotal) {
  // §III-A: "For packages with the default dex time stamps (i.e.,
  // 01-01-1980), we selected the apk that was most recently scanned via VT."
  const std::vector<ApkVersionInfo> versions = {
      version(dex::kDefaultDexTimestamp, 1560000000),
      version(dex::kDefaultDexTimestamp, 1590000000),
      version(dex::kDefaultDexTimestamp, 1570000000)};
  EXPECT_EQ(selectApkVersion(versions), 1u);
}

TEST(SelectionTest, NonDefaultDexBeatsNewerVtScan) {
  // A real dex timestamp always takes precedence over the VT fallback.
  const std::vector<ApkVersionInfo> versions = {
      version(dex::kDefaultDexTimestamp, 1599999999),
      version(1400000000, 0)};
  EXPECT_EQ(selectApkVersion(versions), 1u);
}

TEST(SelectionTest, NeitherSignalMeansUnselectable) {
  // The paper observed no such apks; we refuse rather than guess.
  const std::vector<ApkVersionInfo> versions = {
      version(dex::kDefaultDexTimestamp, 0)};
  EXPECT_FALSE(selectApkVersion(versions).has_value());
}

TEST(SelectionTest, EmptyVersionList) {
  EXPECT_FALSE(selectApkVersion({}).has_value());
}

TEST(SelectionTest, SingleVersion) {
  EXPECT_EQ(selectApkVersion({version(1500000000, 0)}), 0u);
}

TEST(AbiTest, X86Compatibility) {
  EXPECT_TRUE(version(1, 1, {"x86"}).isX86Compatible());
  EXPECT_TRUE(version(1, 1, {"x86_64", "arm64-v8a"}).isX86Compatible());
  EXPECT_FALSE(version(1, 1, {"armeabi-v7a"}).isX86Compatible());
  EXPECT_FALSE(version(1, 1, {"armeabi-v7a", "arm64-v8a"}).isX86Compatible());
  EXPECT_TRUE(version(1, 1, {}).isX86Compatible());  // pure Java
}

TEST(CorpusSelectionTest, FiltersArmOnlyAndUnselectable) {
  std::vector<RepositoryEntry> repository;
  repository.push_back({"com.good.app", {version(1500000000, 0)}});
  repository.push_back({"com.arm.only", {version(1600000000, 0, {"armeabi-v7a"})}});
  repository.push_back(
      {"com.no.signal", {version(dex::kDefaultDexTimestamp, 0)}});
  repository.push_back({"com.multi.version",
                        {version(1400000000, 0), version(1450000000, 0)}});

  const auto selected = selectCorpus(repository);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(selected[1], (std::pair<std::size_t, std::size_t>{3, 1}));
}

TEST(CorpusSelectionTest, ArmOnlyFilterAppliesToChosenVersion) {
  // The chosen (latest-dex) version is ARM-only even though an older x86
  // build exists: the paper filters on the retrieved apk.
  std::vector<RepositoryEntry> repository;
  repository.push_back({"com.regressed.app",
                        {version(1400000000, 0, {"x86"}),
                         version(1500000000, 0, {"armeabi-v7a"})}});
  EXPECT_TRUE(selectCorpus(repository).empty());
}

}  // namespace
}  // namespace libspector::store
