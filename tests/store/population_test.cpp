// Statistical properties of the generated population, swept over seeds:
// the calibration targets that make the §IV shapes reproducible must hold
// for any seed, not just the benches' default.
#include <gtest/gtest.h>

#include <map>

#include "radar/ant.hpp"
#include "store/generator.hpp"

namespace libspector::store {
namespace {

class PopulationSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  StoreConfig config() const {
    StoreConfig config;
    config.appCount = 400;
    config.seed = GetParam();
    config.methodScale = 0.05;
    return config;
  }
};

TEST_P(PopulationSweep, ArchetypeFractionsNearTargets) {
  const AppStoreGenerator generator(config());
  std::size_t antFree = 0, antOnly = 0;
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    switch (generator.plan(i).archetype) {
      case AppPlan::Archetype::AntFree: ++antFree; break;
      case AppPlan::Archetype::AntOnly: ++antOnly; break;
      case AppPlan::Archetype::Mixed: break;
    }
  }
  const double n = static_cast<double>(generator.appCount());
  EXPECT_NEAR(static_cast<double>(antFree) / n, 0.10, 0.05);
  EXPECT_NEAR(static_cast<double>(antOnly) / n, 0.34, 0.08);
}

TEST_P(PopulationSweep, GameAppsGetGameCategories) {
  const AppStoreGenerator generator(config());
  std::size_t games = 0;
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    if (generator.plan(i).appCategory.starts_with("GAME_")) ++games;
  }
  // 17 of 49 categories are games with above-average weights.
  const double share = static_cast<double>(games) /
                       static_cast<double>(generator.appCount());
  EXPECT_GT(share, 0.20);
  EXPECT_LT(share, 0.60);
}

TEST_P(PopulationSweep, EveryActiveSourceHasDomainsAndWeights) {
  const AppStoreGenerator generator(config());
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    for (const auto& source : generator.plan(i).sources) {
      ASSERT_FALSE(source.domains.empty());
      ASSERT_EQ(source.domains.size(), source.domainWeights.size());
      for (const double w : source.domainWeights) EXPECT_GT(w, 0.0);
      EXPECT_GT(source.meanRequestsPerRun, 0.0);
      EXPECT_FALSE(source.taskPackage.empty());
    }
  }
}

TEST_P(PopulationSweep, CoverageTargetsSpreadAroundTenPercent) {
  const AppStoreGenerator generator(config());
  double sum = 0.0;
  double low = 1.0, high = 0.0;
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const double target = generator.plan(i).coverageTarget;
    EXPECT_GE(target, 0.002);
    EXPECT_LE(target, 0.55);
    sum += target;
    low = std::min(low, target);
    high = std::max(high, target);
  }
  const double mean = sum / static_cast<double>(generator.appCount());
  EXPECT_NEAR(mean, 0.095, 0.035);  // paper's 9.5% mean coverage
  EXPECT_LT(low, 0.02);             // Fig. 10 spans orders of magnitude
  EXPECT_GT(high, 0.25);
}

TEST_P(PopulationSweep, ObfuscatedVariantsStayUnderTheirSdkPrefix) {
  const AppStoreGenerator generator(config());
  const auto& profiles = libraryProfiles();
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    for (const auto& source : generator.plan(i).sources) {
      if (source.profileIndex < 0) continue;
      // Every AnT source's task package (obfuscated or not) must still
      // match Li et al.'s list via prefix semantics, or attribution-based
      // findings (Fig. 6) would silently leak.
      const auto& profile =
          profiles[static_cast<std::size_t>(source.profileIndex)];
      if (profile.radarCategory == "Advertisement" ||
          profile.radarCategory == "Mobile Analytics") {
        EXPECT_TRUE(radar::antLibraries().matches(source.taskPackage))
            << source.taskPackage;
      }
    }
  }
}

TEST_P(PopulationSweep, DomainCountScalesSublinearlyWithApps) {
  StoreConfig small = config();
  small.appCount = 100;
  StoreConfig large = config();
  large.appCount = 400;
  const AppStoreGenerator smallGen(small);
  const AppStoreGenerator largeGen(large);
  // Domain reuse pools make the world grow slower than the population
  // (25k apps -> 14k domains in the paper).
  const double ratio = static_cast<double>(largeGen.farm().endpointCount()) /
                       static_cast<double>(smallGen.farm().endpointCount());
  EXPECT_LT(ratio, 4.0);
  EXPECT_GT(ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PopulationSweep,
                         ::testing::Values(1ULL, 42ULL, 777ULL, 20200629ULL));

TEST(UserAgentCatalogTest, KnownSdksHaveIdentifyingStrings) {
  const auto gms = userAgentProfileFor("com.google.android.gms.ads");
  EXPECT_FALSE(gms.sdkUserAgent.empty());
  EXPECT_GT(gms.identifyProb, 0.0);
  // Sub-packages inherit the SDK's UA behaviour.
  const auto sub = userAgentProfileFor("com.google.android.gms.ads.internal");
  EXPECT_EQ(sub.sdkUserAgent, gms.sdkUserAgent);
  // Unknown packages ride the platform default.
  const auto unknown = userAgentProfileFor("com.random.app.net");
  EXPECT_TRUE(unknown.sdkUserAgent.empty());
  EXPECT_EQ(unknown.identifyProb, 0.0);
}

TEST(UserAgentCatalogTest, RequestPathsCoverEveryLibraryCategory) {
  for (const auto& profile : libraryProfiles()) {
    EXPECT_FALSE(requestPathFor(profile.radarCategory).empty());
    EXPECT_EQ(requestPathFor(profile.radarCategory).front(), '/');
  }
  EXPECT_EQ(requestPathFor("Unknown"), "/api/v1/data");
}

}  // namespace
}  // namespace libspector::store
