#include "store/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "dex/disassembler.hpp"
#include "radar/ant.hpp"
#include "util/sha256.hpp"

namespace libspector::store {
namespace {

StoreConfig smallConfig(std::size_t apps = 60, std::uint64_t seed = 7) {
  StoreConfig config;
  config.appCount = apps;
  config.seed = seed;
  config.methodScale = 0.05;  // keep test dex files small
  return config;
}

TEST(GeneratorTest, WorldIsDeterministic) {
  const AppStoreGenerator a(smallConfig());
  const AppStoreGenerator b(smallConfig());
  ASSERT_EQ(a.appCount(), b.appCount());
  EXPECT_EQ(a.farm().endpointCount(), b.farm().endpointCount());
  for (std::size_t i = 0; i < a.appCount(); i += 7) {
    const auto jobA = a.makeJob(i);
    const auto jobB = b.makeJob(i);
    EXPECT_EQ(util::toHex(jobA.apk.sha256()), util::toHex(jobB.apk.sha256()));
  }
}

TEST(GeneratorTest, MakeJobIsIdempotent) {
  const AppStoreGenerator generator(smallConfig());
  const auto first = generator.makeJob(3);
  const auto second = generator.makeJob(3);
  EXPECT_EQ(first.apk, second.apk);
  EXPECT_EQ(first.program.methods.size(), second.program.methods.size());
}

TEST(GeneratorTest, DifferentSeedsDifferentWorlds) {
  const AppStoreGenerator a(smallConfig(60, 1));
  const AppStoreGenerator b(smallConfig(60, 2));
  EXPECT_NE(util::toHex(a.makeJob(0).apk.sha256()),
            util::toHex(b.makeJob(0).apk.sha256()));
}

TEST(GeneratorTest, ProgramMethodsAreInDex) {
  const AppStoreGenerator generator(smallConfig());
  const auto job = generator.makeJob(0);
  const auto dexSignatures = dex::allMethodSignatures(job.apk);
  const std::unordered_set<std::string_view> dexSet(dexSignatures.begin(),
                                                    dexSignatures.end());
  for (const auto& method : job.program.methods)
    EXPECT_TRUE(dexSet.contains(method.signature)) << method.signature;
}

TEST(GeneratorTest, PlannedDomainsResolveInFarm) {
  const AppStoreGenerator generator(smallConfig());
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    for (const auto& source : generator.plan(i).sources) {
      for (const auto& domain : source.domains) {
        EXPECT_TRUE(generator.farm().ipOf(domain).has_value()) << domain;
        EXPECT_NE(generator.domainTruth(domain), "");
      }
    }
  }
}

TEST(GeneratorTest, DomainTruthIsGenericCategory) {
  const AppStoreGenerator generator(smallConfig());
  for (const auto& domain : generator.farm().allDomains()) {
    const std::string truth = generator.domainTruth(domain);
    EXPECT_FALSE(truth.empty());
  }
  EXPECT_EQ(generator.domainTruth("not.a.real.domain"), "unknown");
}

TEST(GeneratorTest, ArchetypeInvariants) {
  const AppStoreGenerator generator(smallConfig(300));
  const auto& profiles = libraryProfiles();
  std::size_t antFree = 0, antOnly = 0;
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const AppPlan& plan = generator.plan(i);
    const auto isAnt = [&](int profileIndex) {
      const auto& category =
          profiles[static_cast<std::size_t>(profileIndex)].radarCategory;
      return category == "Advertisement" || category == "Mobile Analytics";
    };
    if (plan.archetype == AppPlan::Archetype::AntFree) {
      ++antFree;
      for (const int p : plan.bundledProfiles) EXPECT_FALSE(isAnt(p));
    }
    if (plan.archetype == AppPlan::Archetype::AntOnly) {
      ++antOnly;
      bool hasAnt = false;
      for (const auto& source : plan.sources) {
        ASSERT_GE(source.profileIndex, 0);  // no first-party sources
        EXPECT_TRUE(isAnt(source.profileIndex));
        hasAnt = true;
      }
      EXPECT_TRUE(hasAnt);
      EXPECT_FALSE(plan.systemAdTraffic);
    }
  }
  // Roughly 10% / 34% of the population.
  EXPECT_NEAR(static_cast<double>(antFree) / 300.0, 0.10, 0.06);
  EXPECT_NEAR(static_cast<double>(antOnly) / 300.0, 0.34, 0.09);
}

TEST(GeneratorTest, AppCategoriesAreValid) {
  const AppStoreGenerator generator(smallConfig(200));
  const auto& valid = appCategories();
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const auto& category = generator.plan(i).appCategory;
    EXPECT_NE(std::find(valid.begin(), valid.end(), category), valid.end());
  }
}

TEST(GeneratorTest, ChosenVersionsSatisfySelectionRules) {
  const AppStoreGenerator generator(smallConfig(200));
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const AppPlan& plan = generator.plan(i);
    const auto chosen = selectApkVersion(plan.versions);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_EQ(*chosen, plan.chosenVersion);
    EXPECT_TRUE(plan.versions[plan.chosenVersion].isX86Compatible());
  }
}

TEST(GeneratorTest, RepositoryContainsArmOnlyEntriesTheFilterRejects) {
  auto config = smallConfig(100);
  config.armOnlyFraction = 0.10;
  const AppStoreGenerator generator(config);
  const auto& repository = generator.repository();
  EXPECT_EQ(repository.size(), 110u);
  const auto selected = selectCorpus(repository);
  EXPECT_EQ(selected.size(), 100u);  // exactly the planned corpus survives
}

TEST(GeneratorTest, MethodCountsTrackScale) {
  auto small = smallConfig(30);
  small.methodScale = 0.05;
  auto large = smallConfig(30);
  large.methodScale = 0.20;
  const AppStoreGenerator smallGen(small);
  const AppStoreGenerator largeGen(large);
  std::size_t smallMethods = 0, largeMethods = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    smallMethods += smallGen.makeJob(i).apk.totalMethodCount();
    largeMethods += largeGen.makeJob(i).apk.totalMethodCount();
  }
  EXPECT_GT(largeMethods, 2 * smallMethods);
}

TEST(GeneratorTest, MultiDexSplitRespectsMethodLimit) {
  StoreConfig config;
  config.appCount = 120;
  config.seed = 99;
  config.methodScale = 2.0;  // push some apps past 65,536 methods
  const AppStoreGenerator generator(config);
  bool sawMultiDex = false;
  for (std::size_t i = 0; i < generator.appCount() && !sawMultiDex; i += 10) {
    const auto job = generator.makeJob(i);
    for (const auto& dexFile : job.apk.dexFiles)
      EXPECT_LE(dexFile.methodCount(), 65536u);
    if (job.apk.dexFiles.size() > 1) sawMultiDex = true;
  }
  EXPECT_TRUE(sawMultiDex);
}

TEST(GeneratorTest, UiHandlersExistAndAreValid) {
  const AppStoreGenerator generator(smallConfig());
  const auto job = generator.makeJob(1);
  EXPECT_FALSE(job.program.uiHandlers.empty());
  ASSERT_TRUE(job.program.onCreate.has_value());
  for (const auto handler : job.program.uiHandlers)
    EXPECT_LT(handler, job.program.methods.size());
}

TEST(GeneratorTest, AntOnlyAppsUseOnlyAntListedTaskPackages) {
  const AppStoreGenerator generator(smallConfig(300));
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const AppPlan& plan = generator.plan(i);
    if (plan.archetype != AppPlan::Archetype::AntOnly) continue;
    for (const auto& source : plan.sources) {
      EXPECT_TRUE(radar::antLibraries().matches(source.taskPackage))
          << source.taskPackage;
    }
  }
}

TEST(GeneratorTest, RejectsEmptyStore) {
  StoreConfig config;
  config.appCount = 0;
  EXPECT_THROW(AppStoreGenerator{config}, std::invalid_argument);
}

}  // namespace
}  // namespace libspector::store
