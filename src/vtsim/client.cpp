#include "vtsim/client.hpp"

#include <fstream>
#include <stdexcept>

namespace libspector::vtsim {

VtClient::VtClient(DomainCategorizer& categorizer, VtQuota quota,
                   std::string cachePath)
    : categorizer_(categorizer), quota_(quota), cachePath_(std::move(cachePath)) {
  if (quota_.requestsPerWindow == 0)
    throw std::invalid_argument("VtClient: zero quota");
  if (cachePath_.empty()) return;
  std::ifstream in(cachePath_);
  if (!in) return;  // no cache yet: first run
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    const std::size_t comma = line.rfind(',');
    if (comma == std::string::npos)
      throw std::runtime_error("VtClient: malformed cache line in " + cachePath_);
    cache_[line.substr(0, comma)] = line.substr(comma + 1);
  }
}

std::optional<std::string> VtClient::categorize(const std::string& domain,
                                                util::SimTimeMs nowMs) {
  if (const auto it = cache_.find(domain); it != cache_.end()) {
    ++cacheHits_;
    return it->second;
  }
  while (!recentCalls_.empty() &&
         recentCalls_.front() + quota_.windowMs <= nowMs)
    recentCalls_.pop_front();
  if (recentCalls_.size() >= quota_.requestsPerWindow) return std::nullopt;

  recentCalls_.push_back(nowMs);
  ++apiCalls_;
  const std::string category = categorizer_.categorize(domain).category;
  cache_.emplace(domain, category);
  return category;
}

std::unordered_map<std::string, std::string> VtClient::categorizeAll(
    const std::vector<std::string>& domains, util::SimClock& clock) {
  std::unordered_map<std::string, std::string> verdicts;
  for (const auto& domain : domains) {
    while (true) {
      if (const auto verdict = categorize(domain, clock.now())) {
        verdicts.emplace(domain, *verdict);
        break;
      }
      // Quota exhausted: wait until the oldest call leaves the window.
      clock.advance(recentCalls_.front() + quota_.windowMs - clock.now());
    }
  }
  return verdicts;
}

void VtClient::saveCache() const {
  if (cachePath_.empty()) return;
  std::ofstream out(cachePath_, std::ios::trunc);
  if (!out) throw std::runtime_error("VtClient: cannot write " + cachePath_);
  out << "# domain,category (VirusTotal verdict cache)\n";
  for (const auto& [domain, category] : cache_)
    out << domain << ',' << category << '\n';
}

}  // namespace libspector::vtsim
