#include "vtsim/categories.hpp"

#include "util/strings.hpp"

namespace libspector::vtsim {

const std::vector<std::string>& genericCategories() {
  static const std::vector<std::string> kCategories = {
      "adult",          "advertisements",    "analytics",
      "business_and_finance", "cdn",         "communication",
      "education",      "entertainment",     "games",
      "health",         "info_tech",         "internet_services",
      "lifestyle",      "malicious",         "news",
      "social_networks", "unknown"};
  return kCategories;
}

const std::vector<CategoryPatterns>& categoryPatternTable() {
  // Transcribed from Table I.
  static const std::vector<CategoryPatterns> kTable = {
      {"adult",
       {"adult", "sex", "obscene", "personals", "dating", "porn", "violence",
        "lingerie", "marijuana", "alcohol", "gambling"}},
      {"advertisements", {"ads", "advert", "marketing", "exposure"}},
      {"analytics", {"analytics"}},
      {"business_and_finance",
       {"busines", "financ", "shop", "bank", "trading", "estate", "auctions",
        "professional"}},
      {"cdn", {"proxy", "dns", "content", "delivery"}},
      {"communication",
       {"im", "chat", "mail", "text", "radio", "tv", "forum", "telephony",
        "portal", "file"}},
      {"education", {"education", "reference"}},
      {"entertainment",
       {"entertainment", "sport", "videos", "streaming", "pay-to-surf"}},
      {"games", {"game"}},
      {"health", {"health", "medication", "nutrition"}},
      {"info_tech",
       {"information", "technology", "computersandsoftware",
        "dynamic content"}},
      {"internet_services",
       {"hosting", "url-shortening", "search", "download", "collaboration",
        "parked", "online", "infrastructure", "storage", "security",
        "surveillance", "government"}},
      {"lifestyle",
       {"blog", "hobbies", "lifestyle", "travel", "cultur", "religi",
        "politic", "restaurant", "vehicles", "philanthropic", "event",
        "advice"}},
      {"malicious",
       {"malicious", "infected", "bot", "not recommended", "illegal", "hack",
        "compromised", "suspicious content"}},
      {"news", {"news", "tabloids", "journals"}},
      {"social_networks", {"social"}},
      {"unknown", {}},
  };
  return kTable;
}

std::string tokenizeLabel(std::string_view rawLabel) {
  const std::string label = util::toLower(rawLabel);
  // Pass 1: multi-word phrases are the most specific hand-curated rules
  // ("dynamic content" is info_tech even though "content" alone is cdn);
  // the longest matching phrase wins.
  std::string_view best;
  std::size_t bestLength = 0;
  for (const auto& row : categoryPatternTable()) {
    for (const auto token : row.tokens) {
      if (token.find(' ') == std::string_view::npos &&
          token.find('-') == std::string_view::npos)
        continue;
      if (token.size() > bestLength && util::contains(label, token)) {
        best = row.category;
        bestLength = token.size();
      }
    }
  }
  if (!best.empty()) return std::string(best);
  // Pass 2: single-word substrings in Table I order; the first row with a
  // hit wins ("online games" is games, not internet_services).
  for (const auto& row : categoryPatternTable()) {
    for (const auto token : row.tokens) {
      if (util::contains(label, token)) return std::string(row.category);
    }
  }
  return std::string(kUnknownDomainCategory);
}

}  // namespace libspector::vtsim
