// Domain categorization by tokenized majority vote (paper §III-F).
//
// For every domain seen in a DNS request, query the vendor panel, tokenize
// each returned label into a generic category, then majority-vote.  Results
// are cached: the paper collects VirusTotal verdicts once per domain.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "vtsim/categories.hpp"
#include "vtsim/vendor.hpp"

namespace libspector::vtsim {

/// Detailed outcome for one domain, kept for the Table I census.
struct DomainVerdict {
  std::string category;                 // winning generic category
  std::vector<std::string> rawLabels;   // what vendors answered
  std::map<std::string, int> votes;     // tokenized tally
};

class DomainCategorizer {
 public:
  /// `truthLookup` maps a domain to its ground-truth generic category; the
  /// vendor simulators derive their (noisy) labels from it. Unknown domains
  /// are treated as ground-truth "unknown".
  using TruthLookup = std::function<std::string(const std::string&)>;

  DomainCategorizer(const std::vector<VendorSim>& panel, TruthLookup truthLookup);

  /// Categorize (cached after the first call per domain). Thread-safe:
  /// parallel attribution workers share one categorizer, exactly like the
  /// paper's one-VirusTotal-query-per-domain collection. The returned
  /// reference stays valid for the categorizer's lifetime (node-based
  /// cache; entries are never erased).
  const DomainVerdict& categorize(const std::string& domain);

  /// Census over every domain categorized so far: generic category -> count
  /// (the "Count" column of Table I).
  [[nodiscard]] std::map<std::string, std::size_t> categoryCounts() const;

  [[nodiscard]] std::size_t domainsSeen() const;

 private:
  const std::vector<VendorSim>& panel_;
  TruthLookup truthLookup_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, DomainVerdict> cache_;
};

}  // namespace libspector::vtsim
