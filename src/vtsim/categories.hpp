// The 17 generic domain categories and the Table I tokenizer (paper §III-F).
//
// VirusTotal aggregates free-form category labels from five cybersecurity
// vendors; there is no universal naming baseline, so Libspector tokenizes
// every label into one of 17 generic categories by matching hand-curated
// word patterns.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace libspector::vtsim {

/// The generic categories in Table I order.
[[nodiscard]] const std::vector<std::string>& genericCategories();

inline constexpr std::string_view kUnknownDomainCategory = "unknown";

/// Word patterns for one generic category (Table I, right column).
struct CategoryPatterns {
  std::string_view category;
  std::vector<std::string_view> tokens;
};

/// All (category, token list) rows, in Table I order; "unknown" has no
/// tokens — it is the fallback.
[[nodiscard]] const std::vector<CategoryPatterns>& categoryPatternTable();

/// Tokenize one raw vendor label into a generic category. Matching is
/// case-insensitive; the longest matching token wins (so the label
/// "dynamic content" resolves to info_tech, not cdn's "content"); ties
/// break by Table I order. Labels matching nothing map to "unknown".
[[nodiscard]] std::string tokenizeLabel(std::string_view rawLabel);

}  // namespace libspector::vtsim
