// VirusTotal client discipline (paper §III-F).
//
// The paper collects domain categories "using their public API", which is
// aggressively rate limited (4 requests/minute for public keys), so large
// studies must cache verdicts per domain and spread queries over time.
// VtClient wraps the DomainCategorizer with exactly that discipline: a
// token-bucket quota over simulated time plus an optional on-disk verdict
// cache that survives across runs.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/clock.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::vtsim {

struct VtQuota {
  /// Public-API default: 4 lookups per 60-second window.
  std::size_t requestsPerWindow = 4;
  util::SimTimeMs windowMs = 60 * 1000;
};

class VtClient {
 public:
  /// `cachePath` empty disables persistence. An existing cache file is
  /// loaded eagerly; unknown lines are rejected.
  VtClient(DomainCategorizer& categorizer, VtQuota quota,
           std::string cachePath = {});

  /// Category for `domain` at simulated time `nowMs`. Served from cache
  /// when possible; otherwise spends one quota token and queries the
  /// vendor panel. Returns std::nullopt when the quota is exhausted — the
  /// caller retries after the window slides (the paper's scraper waits).
  [[nodiscard]] std::optional<std::string> categorize(const std::string& domain,
                                                      util::SimTimeMs nowMs);

  /// Drain a whole domain list, advancing `clock` past quota stalls —
  /// returns the verdicts and leaves the wait time on the clock, which is
  /// how long the real scrape would have taken.
  std::unordered_map<std::string, std::string> categorizeAll(
      const std::vector<std::string>& domains, util::SimClock& clock);

  /// Flush the verdict cache to `cachePath` (no-op when persistence is off).
  void saveCache() const;

  [[nodiscard]] std::size_t apiCalls() const noexcept { return apiCalls_; }
  [[nodiscard]] std::size_t cacheHits() const noexcept { return cacheHits_; }
  [[nodiscard]] std::size_t cacheSize() const noexcept { return cache_.size(); }

 private:
  DomainCategorizer& categorizer_;
  VtQuota quota_;
  std::string cachePath_;
  std::unordered_map<std::string, std::string> cache_;
  std::deque<util::SimTimeMs> recentCalls_;
  std::size_t apiCalls_ = 0;
  std::size_t cacheHits_ = 0;
};

}  // namespace libspector::vtsim
