#include "vtsim/categorizer.hpp"

#include <stdexcept>

namespace libspector::vtsim {

DomainCategorizer::DomainCategorizer(const std::vector<VendorSim>& panel,
                                     TruthLookup truthLookup)
    : panel_(panel), truthLookup_(std::move(truthLookup)) {
  if (!truthLookup_)
    throw std::invalid_argument("DomainCategorizer: null truth lookup");
}

const DomainVerdict& DomainCategorizer::categorize(const std::string& domain) {
  // One lock for lookup and insert: the verdict is deterministic per
  // domain, so contention is the only cost and the vendor panel is only
  // consulted once per domain regardless of which worker asks first.
  const std::scoped_lock lock(mutex_);
  if (const auto it = cache_.find(domain); it != cache_.end()) return it->second;

  const std::string truth = truthLookup_(domain);
  DomainVerdict verdict;
  for (const auto& vendor : panel_) {
    const auto label = vendor.labelFor(domain, truth);
    if (!label) continue;
    verdict.rawLabels.push_back(*label);
    ++verdict.votes[tokenizeLabel(*label)];
  }

  // Majority vote; "unknown" only wins when nothing else got any vote.
  int best = 0;
  verdict.category = std::string(kUnknownDomainCategory);
  for (const auto& [category, count] : verdict.votes) {
    if (category == kUnknownDomainCategory) continue;
    if (count > best) {
      best = count;
      verdict.category = category;
    }
  }
  return cache_.emplace(domain, std::move(verdict)).first->second;
}

std::map<std::string, std::size_t> DomainCategorizer::categoryCounts() const {
  const std::scoped_lock lock(mutex_);
  std::map<std::string, std::size_t> counts;
  for (const auto& [domain, verdict] : cache_) ++counts[verdict.category];
  return counts;
}

std::size_t DomainCategorizer::domainsSeen() const {
  const std::scoped_lock lock(mutex_);
  return cache_.size();
}

}  // namespace libspector::vtsim
