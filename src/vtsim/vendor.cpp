#include "vtsim/vendor.hpp"

#include <array>
#include <stdexcept>

#include "vtsim/categories.hpp"

namespace libspector::vtsim {

namespace {

// House vocabularies: several phrasings per generic category, every one of
// which tokenizes back to its category through Table I.
struct Vocabulary {
  std::string_view category;
  std::array<std::string_view, 3> phrasings;
};

constexpr Vocabulary kVocabularies[] = {
    {"adult", {"adult content", "dating and personals", "gambling"}},
    {"advertisements", {"advertisements", "mobile ads provider", "marketing services"}},
    {"analytics", {"web analytics", "analytics platform", "traffic analytics"}},
    {"business_and_finance", {"business", "banking and finance", "shopping"}},
    {"cdn", {"content delivery", "cdn proxy services", "dns services"}},
    {"communication", {"web chat", "e-mail services", "tv and radio"}},
    {"education", {"education", "reference materials", "education resources"}},
    {"entertainment", {"entertainment", "video streaming", "sports coverage"}},
    {"games", {"games", "online games", "game distribution"}},
    {"health", {"health", "medication info", "nutrition advice"}},
    {"info_tech", {"information technology", "computersandsoftware", "dynamic content"}},
    {"internet_services", {"web hosting", "search engines", "cloud storage"}},
    {"lifestyle", {"lifestyle", "travel", "personal blog"}},
    {"malicious", {"malicious site", "botnet c2", "compromised host"}},
    {"news", {"news", "news and tabloids", "journals"}},
    {"social_networks", {"social networks", "social media", "social sharing"}},
    {"unknown", {"uncategorized", "tld registry", "miscellaneous"}},
};

const Vocabulary& vocabularyOf(std::string_view category) {
  for (const auto& vocabulary : kVocabularies)
    if (vocabulary.category == category) return vocabulary;
  throw std::invalid_argument("VendorSim: unknown category " + std::string(category));
}

// Categories a sloppy vendor confuses a given truth with; keeps the noise
// realistic (an ad CDN labelled "cdn", analytics labelled "business").
std::string_view confusedWith(std::string_view category, std::uint64_t pick) {
  static constexpr std::array<std::string_view, 4> kGenericFallbacks = {
      "info_tech", "internet_services", "business_and_finance", "unknown"};
  if (category == "advertisements") {
    constexpr std::array<std::string_view, 3> c = {"cdn", "business_and_finance", "info_tech"};
    return c[pick % c.size()];
  }
  if (category == "analytics") {
    constexpr std::array<std::string_view, 3> c = {"business_and_finance", "info_tech", "internet_services"};
    return c[pick % c.size()];
  }
  if (category == "cdn") {
    constexpr std::array<std::string_view, 3> c = {"internet_services", "info_tech", "advertisements"};
    return c[pick % c.size()];
  }
  return kGenericFallbacks[pick % kGenericFallbacks.size()];
}

std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hashDomainVendor(std::string_view domain, int vendorId) noexcept {
  std::uint64_t h = 1469598103934665603ULL ^ static_cast<std::uint64_t>(vendorId);
  for (const char c : domain) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return mix(h);
}

}  // namespace

VendorSim::VendorSim(int vendorId, double noise)
    : vendorId_(vendorId), noise_(noise) {
  if (vendorId < 0 || noise < 0.0 || noise > 1.0)
    throw std::invalid_argument("VendorSim: bad parameters");
}

std::optional<std::string> VendorSim::labelFor(
    std::string_view domain, std::string_view trueCategory) const {
  const std::uint64_t h = hashDomainVendor(domain, vendorId_);
  const double roll = static_cast<double>(h >> 11) * 0x1.0p-53;

  // Vendors have no verdict for ~12% of categorizable domains; genuinely
  // uncategorizable hosts (one-off first-party backends) they mostly skip
  // outright, answering with a throwaway label only occasionally.
  if (trueCategory == "unknown") {
    if (roll < 0.75) return std::nullopt;
    if (roll < 0.75 + 0.04 * noise_ / 0.15) {
      const auto& confused = vocabularyOf(
          confusedWith(trueCategory, mix(h ^ 0xa5a5a5a5a5a5a5a5ULL)));
      return std::string(confused.phrasings[mix(h ^ 0x5bd1e995ULL) %
                                            confused.phrasings.size()]);
    }
    const auto& vocabulary = vocabularyOf("unknown");
    return std::string(vocabulary.phrasings[mix(h ^ 0x5bd1e995ULL) %
                                            vocabulary.phrasings.size()]);
  }
  if (roll < 0.12) return std::nullopt;

  std::string_view category = trueCategory;
  if (roll < 0.12 + noise_) {
    category = confusedWith(trueCategory, mix(h ^ 0xa5a5a5a5a5a5a5a5ULL));
  }
  const auto& vocabulary = vocabularyOf(category);
  const std::uint64_t pick = mix(h ^ 0x5bd1e995ULL);
  return std::string(vocabulary.phrasings[pick % vocabulary.phrasings.size()]);
}

const std::vector<VendorSim>& defaultVendorPanel() {
  static const std::vector<VendorSim> kPanel = {
      VendorSim(0, 0.08), VendorSim(1, 0.12), VendorSim(2, 0.15),
      VendorSim(3, 0.20), VendorSim(4, 0.10)};
  return kPanel;
}

}  // namespace libspector::vtsim
