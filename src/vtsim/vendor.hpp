// Simulated VirusTotal vendor feeds (paper §III-F).
//
// VirusTotal returns, per domain, category labels aggregated from five
// cybersecurity companies.  Each simulated vendor maps a domain's ground
// truth category to its own house vocabulary, with realistic noise: vendors
// disagree, use idiosyncratic wording, or have no verdict for a domain.
// Labels are a deterministic function of (vendor, domain) so repeated
// queries agree, like the real API.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace libspector::vtsim {

/// One vendor's label synthesis.
class VendorSim {
 public:
  /// `vendorId` in [0, 4]; `noise` in [0, 1] is the probability that the
  /// vendor answers with an off-category or unparseable label.
  VendorSim(int vendorId, double noise);

  /// This vendor's label for a domain whose true generic category is
  /// `trueCategory`; std::nullopt when the vendor has no verdict.
  [[nodiscard]] std::optional<std::string> labelFor(
      std::string_view domain, std::string_view trueCategory) const;

  [[nodiscard]] int id() const noexcept { return vendorId_; }

 private:
  int vendorId_;
  double noise_;
};

/// The standard panel of 5 vendors the categorizer queries.
[[nodiscard]] const std::vector<VendorSim>& defaultVendorPanel();

}  // namespace libspector::vtsim
