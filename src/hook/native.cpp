#include "hook/native.hpp"

namespace libspector::hook {

std::optional<net::SockEndpoint> getsockname(const net::NetworkStack& stack,
                                             net::SocketId id) {
  const net::SocketPair* pair = stack.pairOf(id);
  if (pair == nullptr) return std::nullopt;
  return pair->src;
}

std::optional<net::SockEndpoint> getpeername(const net::NetworkStack& stack,
                                             net::SocketId id) {
  const net::SocketPair* pair = stack.pairOf(id);
  if (pair == nullptr) return std::nullopt;
  return pair->dst;
}

std::optional<net::SocketPair> connectionParameters(
    const net::NetworkStack& stack, net::SocketId id) {
  const auto local = getsockname(stack, id);
  const auto remote = getpeername(stack, id);
  if (!local || !remote) return std::nullopt;
  return net::SocketPair{*local, *remote};
}

}  // namespace libspector::hook
