// The custom shared library (paper §II-B2b).
//
// Libspector's Xposed module cannot read connection parameters from Java, so
// the paper ships a JNI shared library exposing getsockname/getpeername.
// This is its analogue over the simulated stack.
#pragma once

#include <optional>

#include "net/ip.hpp"
#include "net/stack.hpp"

namespace libspector::hook {

/// getsockname(2): local endpoint of a socket, or nullopt for a bad id.
[[nodiscard]] std::optional<net::SockEndpoint> getsockname(
    const net::NetworkStack& stack, net::SocketId id);

/// getpeername(2): remote endpoint of a socket, or nullopt for a bad id.
[[nodiscard]] std::optional<net::SockEndpoint> getpeername(
    const net::NetworkStack& stack, net::SocketId id);

/// Both calls combined into the socket-pair tuple the UDP reports carry.
[[nodiscard]] std::optional<net::SocketPair> connectionParameters(
    const net::NetworkStack& stack, net::SocketId id);

}  // namespace libspector::hook
