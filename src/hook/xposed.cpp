#include "hook/xposed.hpp"

#include <stdexcept>

namespace libspector::hook {

void XposedFramework::installModule(std::shared_ptr<XposedModule> module) {
  if (!module) throw std::invalid_argument("XposedFramework: null module");
  modules_.push_back(std::move(module));
}

void XposedFramework::attachToApp(rt::Interpreter& runtime,
                                  const dex::ApkFile& apk) const {
  for (const auto& module : modules_) module->onAppLoaded(runtime, apk);
}

}  // namespace libspector::hook
