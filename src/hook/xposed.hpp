// Xposed framework analogue (paper §II-B2a).
//
// The real Xposed lets a module alter user-space app behaviour without
// modifying the apk — the property Libspector's "app integrity" design goal
// depends on.  Here a module receives the loaded app's runtime and apk and
// installs post-hooks through the runtime's public hook API; the apk bytes
// are never touched (tests assert the sha256 is unchanged by attachment).
#pragma once

#include <memory>
#include <vector>

#include "dex/apk.hpp"
#include "rt/interpreter.hpp"

namespace libspector::hook {

/// A loadable Xposed module (IXposedHookLoadPackage analogue).
class XposedModule {
 public:
  virtual ~XposedModule() = default;

  /// Called once per app load; the module installs its hooks here.
  virtual void onAppLoaded(rt::Interpreter& runtime, const dex::ApkFile& apk) = 0;
};

/// Framework that owns installed modules and attaches them to each app the
/// emulator loads.
class XposedFramework {
 public:
  void installModule(std::shared_ptr<XposedModule> module);

  /// Attach every installed module to a freshly loaded app.
  void attachToApp(rt::Interpreter& runtime, const dex::ApkFile& apk) const;

  [[nodiscard]] std::size_t moduleCount() const noexcept { return modules_.size(); }

 private:
  std::vector<std::shared_ptr<XposedModule>> modules_;
};

}  // namespace libspector::hook
