#include "radar/ant.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace libspector::radar {

PrefixList::PrefixList(std::vector<std::string_view> prefixes)
    : prefixes_(std::move(prefixes)) {
  std::sort(prefixes_.begin(), prefixes_.end());
}

bool PrefixList::matches(std::string_view package) const {
  // Listed prefixes that could cover `package` are its ancestors; check each.
  std::string_view candidate = package;
  while (!candidate.empty()) {
    if (std::binary_search(prefixes_.begin(), prefixes_.end(), candidate))
      return true;
    const std::size_t dot = candidate.rfind('.');
    if (dot == std::string_view::npos) break;
    candidate = candidate.substr(0, dot);
  }
  return false;
}

const PrefixList& antLibraries() {
  static const PrefixList kList({
      "com.google.android.gms.ads",
      "com.google.android.gms.internal.ads",
      "com.google.ads",
      "com.facebook.ads",
      "com.mopub",
      "com.chartboost.sdk",
      "com.vungle",
      "com.applovin",
      "com.ironsource",
      "com.adcolony",
      "com.inmobi",
      "com.unity3d.ads",
      "com.millennialmedia",
      "com.smaato",
      "com.startapp",
      "com.tapjoy",
      "com.fyber",
      "net.pubnative",
      "com.amazon.device.ads",
      "com.mobfox",
      "com.heyzap",
      "com.duapps.ad",
      "com.flurry",
      "com.crashlytics",
      "io.fabric",
      "com.mixpanel",
      "com.google.android.gms.analytics",
      "com.google.firebase.analytics",
      "com.appsflyer",
      "com.adjust.sdk",
      "com.localytics",
      "com.umeng.analytics",
      "com.kochava",
      "com.segment.analytics",
      "com.amplitude",
  });
  return kList;
}

const PrefixList& commonLibraries() {
  static const PrefixList kList({
      "okhttp3",
      "com.squareup",
      "retrofit2",
      "com.bumptech.glide",
      "com.nostra13.universalimageloader",
      "com.android.volley",
      "com.loopj.android.http",
      "com.google.gson",
      "com.fasterxml.jackson",
      "org.greenrobot.eventbus",
      "io.reactivex",
      "com.google.android.gms.common",
      "com.google.android.gms.maps",
      "com.google.firebase",
      "com.facebook",
      "com.unity3d.player",
      "com.airbnb.lottie",
      "com.github.mikephil.charting",
      "com.nineoldandroids",
      "org.apache.commons.io",
      "org.apache.commons.lang3",
  });
  return kList;
}

}  // namespace libspector::radar
