#include "radar/corpus.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <unordered_set>

#include "dex/type_signature.hpp"
#include "util/strings.hpp"

namespace libspector::radar {

const std::vector<std::string>& libraryCategories() {
  static const std::vector<std::string> kCategories = {
      "Advertisement",         "App Market",      "Development Aid",
      "Development Framework", "Digital Identity", "GUI Component",
      "Game Engine",           "Map/LBS",         "Mobile Analytics",
      "Payment",               "Social Network",  "Unknown",
      "Utility"};
  return kCategories;
}

void LibraryCorpus::PrefixElection::recount() {
  int best = 0;
  winner.clear();
  for (const auto& [category, count] : votes) {
    // std::map iteration is lexicographic, so strict > keeps the
    // lexicographically smallest category on ties.
    if (count > best) {
      best = count;
      winner = category;
    }
  }
}

void LibraryCorpus::add(std::string prefix, std::string category) {
  const auto [it, inserted] = entries_.emplace(std::move(prefix), std::move(category));
  if (!inserted) return;  // re-adding keeps the first category; votes unchanged

  // The new entry votes in its own election and in the election of every
  // corpus prefix above it; its own election also needs the votes of any
  // entries already registered underneath it.
  const auto [electionIt, electionInserted] = elections_.try_emplace(it->first);
  PrefixElection& own = electionIt->second;
  own.prefix = electionIt->first;
  own.entryCategory = &it->second;
  own.votes.clear();
  for (const auto& entry : entriesUnder(it->first)) ++own.votes[entry.category];
  own.recount();

  std::string_view ancestor = it->first;
  for (std::size_t dot = ancestor.rfind('.'); dot != std::string_view::npos;
       dot = ancestor.rfind('.')) {
    ancestor = ancestor.substr(0, dot);
    const auto election = elections_.find(ancestor);
    if (election == elections_.end()) continue;  // not a corpus prefix
    ++election->second.votes[it->second];
    election->second.recount();
  }
}

const std::string* LibraryCorpus::categoryOf(std::string_view prefix) const {
  const auto it = entries_.find(prefix);
  return it == entries_.end() ? nullptr : &it->second;
}

std::optional<std::string> LibraryCorpus::longestMatchingPrefix(
    std::string_view package) const {
  // Candidate prefixes of `package` are its own hierarchical ancestors;
  // walk from the full name upward and return the first corpus hit. The
  // election table keys exactly the entry set, so each candidate costs one
  // hash probe instead of an ordered-map descent.
  std::string_view candidate = package;
  while (!candidate.empty()) {
    if (elections_.find(candidate) != elections_.end())
      return std::string(candidate);
    const std::size_t dot = candidate.rfind('.');
    if (dot == std::string_view::npos) break;
    candidate = candidate.substr(0, dot);
  }
  return std::nullopt;
}

std::vector<LibraryEntry> LibraryCorpus::entriesUnder(
    std::string_view prefix) const {
  std::vector<LibraryEntry> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    const std::string& name = it->first;
    // Entries sharing the raw prefix are contiguous in the sorted map.
    if (name.size() < prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0)
      break;
    // Keep only hierarchical matches: "com.foo" covers "com.foo.x" but not
    // "com.fooz" (which still shares the raw prefix).
    if (util::isHierarchicalPrefix(prefix, name))
      out.push_back({name, it->second});
  }
  return out;
}

CategoryMatch LibraryCorpus::matchCategory(std::string_view package) const {
  // Longest-prefix walk over the precomputed elections: one hash probe per
  // hierarchical ancestor, no range scan, no re-tally, no allocation.
  std::string_view candidate = package;
  while (!candidate.empty()) {
    if (const auto it = elections_.find(candidate); it != elections_.end()) {
      const PrefixElection& election = it->second;
      return {election.winner.empty() ? kUnknownCategory
                                      : std::string_view(election.winner),
              election.prefix, &election.votes};
    }
    const std::size_t dot = candidate.rfind('.');
    if (dot == std::string_view::npos) break;
    candidate = candidate.substr(0, dot);
  }
  return {kUnknownCategory, {}, nullptr};
}

CategoryPrediction LibraryCorpus::predictCategory(
    std::string_view package) const {
  const CategoryMatch match = matchCategory(package);
  CategoryPrediction prediction;
  prediction.category = std::string(match.category);
  prediction.matchedPrefix = std::string(match.matchedPrefix);
  if (match.votes != nullptr) prediction.votes = *match.votes;
  return prediction;
}

std::vector<LibraryCorpus::ElectionView> LibraryCorpus::electionViews() const {
  // entries_ and elections_ share a keyset; iterate the ordered side so the
  // views come out sorted by prefix.
  std::vector<ElectionView> out;
  out.reserve(entries_.size());
  for (const auto& [prefix, category] : entries_) {
    const auto it = elections_.find(prefix);
    if (it == elections_.end()) continue;  // unreachable by construction
    out.push_back({it->second.prefix, it->second.winner, &it->second.votes});
  }
  return out;
}

LibraryCorpus LibraryCorpus::loadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("LibraryCorpus: cannot read " + path);
  LibraryCorpus corpus;
  std::string line;
  std::size_t lineNumber = 0;
  while (std::getline(in, line)) {
    ++lineNumber;
    if (line.empty() || line.front() == '#') continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos || comma == 0 || comma + 1 >= line.size())
      throw std::runtime_error("LibraryCorpus: malformed line " +
                               std::to_string(lineNumber) + " in " + path);
    corpus.add(line.substr(0, comma), line.substr(comma + 1));
  }
  return corpus;
}

void LibraryCorpus::saveCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("LibraryCorpus: cannot write " + path);
  out << "# prefix,category (LibRadar aggregate output)\n";
  for (const auto& [prefix, category] : entries_)
    out << prefix << ',' << category << '\n';
}

std::vector<LibraryEntry> LibraryCorpus::detect(const dex::ApkFile& apk) const {
  // Class packages as views into the (stable) dotted class names: an apk
  // repeats each package across many classes, so dedupe before matching.
  std::unordered_set<std::string_view> packages;
  for (const auto& dexFile : apk.dexFiles) {
    for (const auto& cls : dexFile.classes) {
      const std::size_t lastDot = cls.dottedName.rfind('.');
      if (lastDot == std::string::npos) continue;
      packages.insert(std::string_view(cls.dottedName).substr(0, lastDot));
    }
  }
  // Longest-prefix match each package straight off the election table (one
  // hash probe per ancestor) and collect the election nodes themselves:
  // each already carries its prefix and entry category, so no matched-set
  // of strings is rebuilt and no entries_ re-probe happens per hit.
  std::unordered_set<const PrefixElection*> matched;
  for (const std::string_view package : packages) {
    std::string_view candidate = package;
    while (!candidate.empty()) {
      if (const auto it = elections_.find(candidate); it != elections_.end()) {
        matched.insert(&it->second);
        break;
      }
      const std::size_t dot = candidate.rfind('.');
      if (dot == std::string_view::npos) break;
      candidate = candidate.substr(0, dot);
    }
  }
  std::vector<LibraryEntry> out;
  out.reserve(matched.size());
  for (const PrefixElection* election : matched)
    out.push_back({std::string(election->prefix), *election->entryCategory});
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.prefix < b.prefix;
  });
  return out;
}

}  // namespace libspector::radar
