// Advertisement/Tracker (AnT) and common-library lists (paper §III-D, §IV-A).
//
// The paper augments LibRadar's categories with Li et al.'s curated lists of
// common advertisement/tracker libraries and the most common libraries
// overall, and measures (Fig. 6) what fraction of each app's traffic
// originates from each list.
#pragma once

#include <string_view>
#include <vector>

namespace libspector::radar {

/// Prefix list membership with hierarchical-prefix semantics.
class PrefixList {
 public:
  explicit PrefixList(std::vector<std::string_view> prefixes);

  /// True when `package` equals or lies underneath any listed prefix.
  [[nodiscard]] bool matches(std::string_view package) const;

  [[nodiscard]] std::size_t size() const noexcept { return prefixes_.size(); }

  /// The listed prefixes (sorted). Policy engines seed blacklists from this.
  [[nodiscard]] const std::vector<std::string_view>& prefixes() const noexcept {
    return prefixes_;
  }

 private:
  std::vector<std::string_view> prefixes_;  // sorted
};

/// Li et al.'s advertisement/tracker library list.
[[nodiscard]] const PrefixList& antLibraries();

/// Li et al.'s most-common-library list.
[[nodiscard]] const PrefixList& commonLibraries();

}  // namespace libspector::radar
