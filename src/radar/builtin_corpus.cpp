// The aggregate LibRadar corpus (paper §III-D): well-known Android library
// prefixes and their categories, as LibRadar would report them across a
// large app population. Category names follow Fig. 2.
#include "radar/corpus.hpp"

namespace libspector::radar {

namespace {

struct CorpusRow {
  const char* prefix;
  const char* category;
};

constexpr CorpusRow kBuiltinCorpus[] = {
    // Advertisement networks
    {"com.google.android.gms.ads", "Advertisement"},
    {"com.google.android.gms.internal.ads", "Advertisement"},
    {"com.google.ads", "Advertisement"},
    {"com.facebook.ads", "Advertisement"},
    {"com.mopub.mobileads", "Advertisement"},
    {"com.mopub.nativeads", "Advertisement"},
    {"com.chartboost.sdk", "Advertisement"},
    {"com.chartboost.sdk.impl", "Advertisement"},
    {"com.vungle.publisher", "Advertisement"},
    {"com.vungle.warren", "Advertisement"},
    {"com.applovin.impl.sdk", "Advertisement"},
    {"com.applovin.adview", "Advertisement"},
    {"com.ironsource.sdk", "Advertisement"},
    {"com.ironsource.sdk.precache", "Advertisement"},
    {"com.ironsource.mediationsdk", "Advertisement"},
    {"com.adcolony.sdk", "Advertisement"},
    {"com.inmobi.ads", "Advertisement"},
    {"com.unity3d.ads", "Advertisement"},
    {"com.millennialmedia", "Advertisement"},
    {"com.smaato.soma", "Advertisement"},
    {"com.startapp.android.publish", "Advertisement"},
    {"com.tapjoy", "Advertisement"},
    {"com.fyber", "Advertisement"},
    {"net.pubnative", "Advertisement"},
    {"com.amazon.device.ads", "Advertisement"},
    {"com.mobfox.sdk", "Advertisement"},
    {"com.heyzap.sdk", "Advertisement"},
    {"com.duapps.ad", "Advertisement"},
    // Mobile analytics / trackers
    {"com.flurry.sdk", "Mobile Analytics"},
    {"com.flurry.android", "Mobile Analytics"},
    {"com.crashlytics.android", "Mobile Analytics"},
    {"io.fabric.sdk.android", "Mobile Analytics"},
    {"com.mixpanel.android", "Mobile Analytics"},
    {"com.google.android.gms.analytics", "Mobile Analytics"},
    {"com.google.firebase.analytics", "Mobile Analytics"},
    {"com.appsflyer", "Mobile Analytics"},
    {"com.adjust.sdk", "Mobile Analytics"},
    {"com.localytics.android", "Mobile Analytics"},
    {"com.umeng.analytics", "Mobile Analytics"},
    {"com.kochava.base", "Mobile Analytics"},
    {"com.segment.analytics", "Mobile Analytics"},
    {"com.amplitude.api", "Mobile Analytics"},
    // Development aid (http stacks, image loaders, json, di, ...)
    {"okhttp3", "Development Aid"},
    {"okhttp3.internal", "Development Aid"},
    {"okhttp3.internal.http", "Development Aid"},
    {"com.squareup.okhttp", "Development Aid"},
    {"com.squareup.picasso", "Development Aid"},
    {"com.squareup.retrofit2", "Development Aid"},
    {"retrofit2", "Development Aid"},
    {"com.bumptech.glide", "Development Aid"},
    {"com.bumptech.glide.load.engine.executor", "Development Aid"},
    {"com.nostra13.universalimageloader", "Development Aid"},
    {"com.nostra13.universalimageloader.core", "Development Aid"},
    {"com.android.volley", "Development Aid"},
    {"com.loopj.android.http", "Development Aid"},
    {"com.google.gson", "Development Aid"},
    {"com.fasterxml.jackson", "Development Aid"},
    {"org.greenrobot.eventbus", "Development Aid"},
    {"io.reactivex", "Development Aid"},
    {"rx.internal", "Development Aid"},
    {"com.amazon.whispersync", "Development Aid"},
    {"com.amazonaws", "Development Aid"},
    {"com.github.kittinunf.fuel", "Development Aid"},
    {"org.jsoup", "Development Aid"},
    {"com.koushikdutta.async", "Development Aid"},
    {"com.joanzapata.pdfview", "Development Aid"},
    {"bestdict.common", "Development Aid"},
    // Development frameworks
    {"org.apache.cordova", "Development Framework"},
    {"com.adobe.phonegap", "Development Framework"},
    {"io.flutter", "Development Framework"},
    {"com.facebook.react", "Development Framework"},
    {"mono.android", "Development Framework"},
    {"org.xwalk.core", "Development Framework"},
    // Digital identity / auth
    {"com.google.android.gms.auth", "Digital Identity"},
    {"com.facebook.login", "Digital Identity"},
    {"com.firebase.ui.auth", "Digital Identity"},
    {"com.auth0.android", "Digital Identity"},
    {"net.openid.appauth", "Digital Identity"},
    // GUI components
    {"com.airbnb.lottie", "GUI Component"},
    {"com.github.mikephil.charting", "GUI Component"},
    {"uk.co.senab.photoview", "GUI Component"},
    {"com.viewpagerindicator", "GUI Component"},
    {"com.nineoldandroids", "GUI Component"},
    {"com.daimajia.slider", "GUI Component"},
    {"me.relex.circleindicator", "GUI Component"},
    {"com.rey.material", "GUI Component"},
    // Game engines
    {"com.unity3d", "Game Engine"},
    {"com.unity3d.player", "Game Engine"},
    {"com.unity3d.services", "Game Engine"},
    {"com.gameloft", "Game Engine"},
    {"com.gameloft.android", "Game Engine"},
    {"org.cocos2dx.lib", "Game Engine"},
    {"com.badlogic.gdx", "Game Engine"},
    {"com.ansca.corona", "Game Engine"},
    {"org.andengine", "Game Engine"},
    {"com.epicgames.ue4", "Game Engine"},
    // App market
    {"com.unity3d.plugin.downloader", "App Market"},
    {"com.android.vending.billing", "App Market"},
    {"com.google.android.vending.expansion.downloader", "App Market"},
    {"com.amazon.inapp.purchasing", "App Market"},
    // Map / location-based services
    {"com.google.android.gms.maps", "Map/LBS"},
    {"com.google.android.gms.location", "Map/LBS"},
    {"com.baidu.mapapi", "Map/LBS"},
    {"com.amap.api", "Map/LBS"},
    {"com.mapbox.mapboxsdk", "Map/LBS"},
    {"org.osmdroid", "Map/LBS"},
    // Payment
    {"com.paypal.android.sdk", "Payment"},
    {"com.stripe.android", "Payment"},
    {"com.braintreepayments.api", "Payment"},
    {"com.alipay.sdk", "Payment"},
    {"com.square.checkout", "Payment"},
    // Social networks
    {"com.facebook.internal", "Social Network"},
    {"com.facebook.share", "Social Network"},
    {"com.twitter.sdk.android", "Social Network"},
    {"com.vk.sdk", "Social Network"},
    {"com.tencent.mm.opensdk", "Social Network"},
    {"com.linkedin.platform", "Social Network"},
    {"com.pinterest.android.pdk", "Social Network"},
    // Utility
    {"com.evernote.android.job", "Utility"},
    {"com.google.zxing", "Utility"},
    {"net.sqlcipher", "Utility"},
    {"org.apache.commons.io", "Utility"},
    {"org.apache.commons.lang3", "Utility"},
    {"com.jakewharton.disklrucache", "Utility"},
    {"de.greenrobot.dao", "Utility"},
    {"io.realm", "Utility"},
    {"com.google.android.gms.common", "Utility"},
    {"com.google.firebase.messaging", "Utility"},
    {"com.onesignal", "Utility"},
    {"com.urbanairship", "Utility"},
};

}  // namespace

LibraryCorpus LibraryCorpus::builtin() {
  LibraryCorpus corpus;
  for (const auto& row : kBuiltinCorpus) corpus.add(row.prefix, row.category);
  return corpus;
}

}  // namespace libspector::radar
