// LibRadar analogue (paper §III-C, §III-D, Listing 2).
//
// LibRadar detects third-party libraries in an apk and maps them to one of
// 13 categories.  Libspector aggregates LibRadar output across the whole
// corpus, resolves an arbitrary package name to the longest matching known
// prefix, and predicts categories for unknown libraries by majority voting
// over all corpus entries sharing that prefix.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dex/apk.hpp"
#include "util/strings.hpp"

namespace libspector::radar {

/// The 13 library categories of Fig. 2.
[[nodiscard]] const std::vector<std::string>& libraryCategories();

/// Category name for libraries that cannot be categorized.
inline constexpr std::string_view kUnknownCategory = "Unknown";

struct LibraryEntry {
  std::string prefix;    // package prefix, e.g. "com.unity3d.ads"
  std::string category;  // one of libraryCategories()

  [[nodiscard]] bool operator==(const LibraryEntry&) const = default;
};

/// Result of the Listing-2 category prediction, with the full tally copied
/// out. Figure benches and reports want the tally; the per-flow hot path
/// does not — it uses LibraryCorpus::matchCategory, which allocates nothing.
struct CategoryPrediction {
  std::string category;
  /// Vote tally, e.g. {Game Engine: 2, Advertisement: 1, App Market: 1}.
  std::map<std::string, int> votes;
  /// The corpus prefix the votes were collected under (empty when nothing
  /// matched and the prediction fell back to Unknown).
  std::string matchedPrefix;
};

/// Zero-allocation Listing-2 result: views into corpus-owned storage plus
/// an opt-in pointer to the precomputed tally. Valid while the corpus
/// lives (it is immutable after construction).
struct CategoryMatch {
  std::string_view category;       // kUnknownCategory when nothing matched
  std::string_view matchedPrefix;  // empty when nothing matched
  const std::map<std::string, int>* votes = nullptr;  // null when unmatched
};

class LibraryCorpus {
 public:
  /// Register a detected library. Re-adding an existing prefix keeps the
  /// first category (LibRadar output is aggregated, not overwritten).
  void add(std::string prefix, std::string category);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Exact-prefix category lookup.
  [[nodiscard]] const std::string* categoryOf(std::string_view prefix) const;

  /// Longest corpus prefix that is a hierarchical prefix of `package`
  /// ("com.unity3d.ads" for "com.unity3d.ads.android.cache").
  [[nodiscard]] std::optional<std::string> longestMatchingPrefix(
      std::string_view package) const;

  /// Listing 2: longest matching prefix, then majority vote across all
  /// corpus entries underneath it; Unknown when nothing matches.
  /// Ties break lexicographically for determinism.
  ///
  /// The vote tally and winner per corpus prefix are maintained
  /// incrementally by add(), so a query is one hash probe per hierarchical
  /// ancestor of `package` (the longest-prefix walk) instead of a fresh
  /// range scan + tally — the hot path of per-flow attribution. This
  /// overload allocates nothing; predictCategory copies the tally out for
  /// callers that need to keep it.
  [[nodiscard]] CategoryMatch matchCategory(std::string_view package) const;
  [[nodiscard]] CategoryPrediction predictCategory(std::string_view package) const;

  /// LibRadar's detection step: corpus entries whose prefix matches some
  /// class package in the apk.
  [[nodiscard]] std::vector<LibraryEntry> detect(const dex::ApkFile& apk) const;

  /// All entries sharing a hierarchical prefix, sorted by name.
  [[nodiscard]] std::vector<LibraryEntry> entriesUnder(std::string_view prefix) const;

  /// Borrowed view of one precomputed election: the compilation input for
  /// core::AttributionProgram. Valid while the corpus lives.
  struct ElectionView {
    std::string_view prefix;
    std::string_view winner;  // empty when the election tallied no votes
    const std::map<std::string, int>* votes = nullptr;
  };
  /// Every election, sorted by prefix (deterministic compile order).
  [[nodiscard]] std::vector<ElectionView> electionViews() const;

  /// A corpus pre-seeded with a realistic set of well-known Android
  /// libraries (the aggregate LibRadar output the paper builds in §III-D).
  [[nodiscard]] static LibraryCorpus builtin();

  /// Load entries from a "prefix,category" CSV (one per line, '#' comments
  /// allowed) — the hand-off format for real LibRadar output. Throws
  /// std::runtime_error on unreadable files or malformed lines.
  [[nodiscard]] static LibraryCorpus loadCsv(const std::string& path);

  /// Persist the corpus in the same CSV format.
  void saveCsv(const std::string& path) const;

 private:
  /// Precomputed Listing-2 election for one corpus prefix: the tally over
  /// every corpus entry hierarchically under it, and the winning category
  /// (lexicographically smallest on ties). `prefix` views the election's
  /// own key and `entryCategory` points at the matching entries_ value —
  /// both node-stable — so detect() and matchCategory() can answer from
  /// the election alone, without re-probing entries_.
  struct PrefixElection {
    std::map<std::string, int> votes;
    std::string winner;
    std::string_view prefix;
    const std::string* entryCategory = nullptr;

    void recount();
  };

  // Ordered by prefix so hierarchical scans are range scans.
  std::map<std::string, std::string, std::less<>> entries_;
  // One election per corpus prefix, updated incrementally by add(): after
  // construction the corpus is immutable and safe to query concurrently.
  std::unordered_map<std::string, PrefixElection, util::TransparentStringHash,
                     std::equal_to<>>
      elections_;
};

}  // namespace libspector::radar
