#include "policy/latency.hpp"

#include <cstdio>

namespace libspector::policy {

LatencyReport buildLatencyReport(const core::StudyAggregator& study,
                                 const LatencyReportOptions& options) {
  LatencyReport report;
  report.entries = study.latencyByLibrary();

  std::uint64_t weightedSumMs = 0;
  for (const auto& entry : report.entries) {
    report.measuredFlows += entry.flows;
    // meanRttMs * flows recovers the integer per-library sum exactly (the
    // aggregator divided an integer sum by the flow count).
    weightedSumMs += static_cast<std::uint64_t>(
        entry.meanRttMs * static_cast<double>(entry.flows) + 0.5);
  }
  if (report.measuredFlows > 0)
    report.meanRttMs = static_cast<double>(weightedSumMs) /
                       static_cast<double>(report.measuredFlows);

  if (options.minFlows > 1) {
    std::erase_if(report.entries,
                  [&](const core::StudyAggregator::LatencyEntry& entry) {
                    return entry.flows < options.minFlows;
                  });
  }
  if (options.topN != 0 && report.entries.size() > options.topN)
    report.entries.resize(options.topN);
  return report;
}

std::string writeLatencyCsv(const LatencyReport& report) {
  std::string out = "library,category,flows,mean_rtt_ms\n";
  char buffer[64];
  for (const auto& entry : report.entries) {
    out += entry.library;
    out += ',';
    out += entry.category;
    out += ',';
    out += std::to_string(entry.flows);
    out += ',';
    std::snprintf(buffer, sizeof(buffer), "%.3f", entry.meanRttMs);
    out += buffer;
    out += '\n';
  }
  return out;
}

std::vector<std::string> slowLibraries(const LatencyReport& report,
                                       double thresholdMs) {
  std::vector<std::string> out;
  for (const auto& entry : report.entries)
    if (entry.meanRttMs >= thresholdMs) out.push_back(entry.library);
  return out;
}

std::size_t rateLimitSlowLibraries(PolicyEngine& engine,
                                   const LatencyReport& report,
                                   double thresholdMs, std::size_t maxConnects,
                                   util::SimTimeMs windowMs) {
  std::size_t added = 0;
  for (auto& library : slowLibraries(report, thresholdMs)) {
    engine.rateLimitLibrary(std::move(library), maxConnects, windowMs);
    ++added;
  }
  return added;
}

}  // namespace libspector::policy
