#include "policy/engine.hpp"

#include <algorithm>

#include "core/attribution.hpp"
#include "radar/ant.hpp"
#include "util/strings.hpp"

namespace libspector::policy {

void PolicyEngine::blockLibraryPrefix(std::string prefix) {
  libraryPrefixes_.push_back(std::move(prefix));
}

void PolicyEngine::blockDomain(std::string domain) {
  domains_.push_back(std::move(domain));
}

void PolicyEngine::blockAntLibraries() {
  for (const auto prefix : radar::antLibraries().prefixes())
    libraryPrefixes_.emplace_back(prefix);
}

void PolicyEngine::rateLimitLibrary(std::string prefix, std::size_t maxConnects,
                                    util::SimTimeMs windowMs) {
  rateLimits_.push_back({std::move(prefix), maxConnects, windowMs, {}});
}

PolicyDecision PolicyEngine::evaluateOrigin(std::string_view originLibrary,
                                            std::string_view domain,
                                            util::SimTimeMs nowMs) {
  for (const auto& prefix : libraryPrefixes_) {
    if (util::isHierarchicalPrefix(prefix, originLibrary))
      return {true, "library:" + prefix};
  }
  for (const auto& blocked : domains_) {
    if (domain == blocked) return {true, "domain:" + blocked};
  }
  for (RateLimit& limit : rateLimits_) {
    if (!util::isHierarchicalPrefix(limit.prefix, originLibrary)) continue;
    while (!limit.recent.empty() &&
           limit.recent.front() + limit.windowMs <= nowMs)
      limit.recent.pop_front();
    if (limit.recent.size() >= limit.maxConnects)
      return {true, "rate:" + limit.prefix};
    limit.recent.push_back(nowMs);  // allowed connect consumes budget
    return {};
  }
  return {};
}

PolicyDecision PolicyEngine::evaluate(std::span<const std::string> stackEntries,
                                      std::string_view domain,
                                      util::SimTimeMs nowMs) {
  // Same origin extraction the measurement pipeline uses: chronologically
  // first non-built-in frame.
  const auto origin = core::originFrameIndex(stackEntries);
  std::string originLibrary;
  if (origin) originLibrary = core::packageOfEntry(stackEntries[*origin]);
  return evaluateOrigin(originLibrary, domain, nowMs);
}

}  // namespace libspector::policy
