// Per-library network policy (paper §IV-E, "Security").
//
// BorderPatrol (the authors' prior system) enforces per-library network
// policies but needs a-priori knowledge of which library to blacklist;
// Libspector's measurement output supplies exactly that. This engine is the
// enforcement half: a rule set over origin-library prefixes and destination
// domains, evaluated from the live call stack at connect time.
#pragma once

#include <deque>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"

namespace libspector::policy {

struct PolicyDecision {
  bool blocked = false;
  /// Human-readable rule that fired ("library:com.mopub"), empty if allowed.
  std::string rule;
};

class PolicyEngine {
 public:
  /// Block connections whose origin-library lies under `prefix`
  /// (hierarchical semantics, like all library matching in Libspector).
  void blockLibraryPrefix(std::string prefix);

  /// Block connections to an exact destination domain.
  void blockDomain(std::string domain);

  /// Convenience: blacklist every prefix of Li et al.'s AnT list.
  void blockAntLibraries();

  /// Rate-limit (rather than outright block) a library: at most
  /// `maxConnects` connections per sliding `windowMs` window. BorderPatrol
  /// supports graded enforcement; an ad SDK limited to one fetch per
  /// minute still serves an ad without draining the data plan.
  void rateLimitLibrary(std::string prefix, std::size_t maxConnects,
                        util::SimTimeMs windowMs);

  /// Decide from the live stack trace (innermost first, frame names or
  /// smali signatures — the same inputs the Socket Supervisor sees) and
  /// the destination domain. `nowMs` feeds the rate-limit windows; an
  /// allowed decision counts against them.
  [[nodiscard]] PolicyDecision evaluate(std::span<const std::string> stackEntries,
                                        std::string_view domain,
                                        util::SimTimeMs nowMs = 0);

  /// Decide from an already-extracted origin-library package.
  [[nodiscard]] PolicyDecision evaluateOrigin(std::string_view originLibrary,
                                              std::string_view domain,
                                              util::SimTimeMs nowMs = 0);

  [[nodiscard]] std::size_t ruleCount() const noexcept {
    return libraryPrefixes_.size() + domains_.size() + rateLimits_.size();
  }

 private:
  struct RateLimit {
    std::string prefix;
    std::size_t maxConnects = 0;
    util::SimTimeMs windowMs = 0;
    std::deque<util::SimTimeMs> recent;  // allowed-connect timestamps
  };

  std::vector<std::string> libraryPrefixes_;
  std::vector<std::string> domains_;
  std::vector<RateLimit> rateLimits_;
};

}  // namespace libspector::policy
