#include "policy/module.hpp"

#include "core/attribution.hpp"

namespace libspector::policy {

PolicyModule::PolicyModule(PolicyEngine engine)
    : engine_(std::make_shared<PolicyEngine>(std::move(engine))),
      log_(std::make_shared<std::vector<BlockedConnection>>()) {}

void PolicyModule::onAppLoaded(rt::Interpreter& runtime, const dex::ApkFile&) {
  runtime.registerPreConnectHook(
      [engine = engine_, log = log_](const rt::PreConnectContext& context) {
        // The live stack at connect time, exactly what the Socket
        // Supervisor would report for this socket.
        const auto trace = context.runtime.getStackTrace();
        std::vector<std::string> entries;
        entries.reserve(trace.size());
        for (const auto& frame : trace) entries.push_back(frame.name);

        const PolicyDecision decision = engine->evaluate(
            entries, context.domain, context.runtime.clock().now());
        if (!decision.blocked) return true;

        std::string origin;
        if (const auto index = core::originFrameIndex(entries))
          origin = core::packageOfEntry(entries[*index]);
        log->push_back({context.domain, std::move(origin), decision.rule});
        return false;
      });
}

}  // namespace libspector::policy
