// The enforcement Xposed module: installs a pre-connect hook that runs the
// PolicyEngine over the live stack trace at every connection attempt and
// vetoes blacklisted traffic before the socket exists. This is the
// BorderPatrol role, with Libspector's measurement output (which libraries
// are worth blacklisting) feeding its rule set — the paper's §IV-E loop.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hook/xposed.hpp"
#include "policy/engine.hpp"

namespace libspector::policy {

/// One blocked connection attempt, for audit logs.
struct BlockedConnection {
  std::string domain;
  std::string originLibrary;
  std::string rule;
};

class PolicyModule final : public hook::XposedModule {
 public:
  explicit PolicyModule(PolicyEngine engine);

  void onAppLoaded(rt::Interpreter& runtime, const dex::ApkFile& apk) override;

  [[nodiscard]] const PolicyEngine& engine() const noexcept { return *engine_; }
  [[nodiscard]] std::size_t blockedCount() const noexcept { return log_->size(); }
  [[nodiscard]] const std::vector<BlockedConnection>& blockedLog() const noexcept {
    return *log_;
  }

 private:
  // Shared with the installed hooks so the module may outlive attachments.
  std::shared_ptr<PolicyEngine> engine_;
  std::shared_ptr<std::vector<BlockedConnection>> log_;
};

}  // namespace libspector::policy
