// Per-library latency report (§14, background-sync scenario).
//
// The RTT axis threads capture timestamps through attribution into the
// StudyAggregator: every flow carries the gap between the first packet the
// device sent in its window and the first packet it got back. Folded per
// origin-library, that answers a question the byte axis cannot — which
// SDKs' endpoints are *slow*, not just chatty. This module turns the
// aggregator's latency query into a ranked report and into enforcement
// input for the PolicyEngine (BorderPatrol-style graded rules: rate-limit
// the libraries that stall the network, don't just blacklist the loud
// ones).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "policy/engine.hpp"
#include "util/clock.hpp"

namespace libspector::policy {

struct LatencyReportOptions {
  /// Keep the `topN` slowest libraries (0 = keep all).
  std::size_t topN = 25;
  /// Drop libraries with fewer measured flows than this — a single slow
  /// handshake is noise, not a policy signal.
  std::uint64_t minFlows = 1;
};

struct LatencyReport {
  /// Filtered and ranked (slowest first, ties by name) library entries.
  std::vector<core::StudyAggregator::LatencyEntry> entries;
  /// Flow-weighted mean RTT across *all* libraries that measured one
  /// (computed before topN truncation).
  double meanRttMs = 0.0;
  /// Total flows with a measured RTT (before truncation).
  std::uint64_t measuredFlows = 0;
};

[[nodiscard]] LatencyReport buildLatencyReport(
    const core::StudyAggregator& study, const LatencyReportOptions& options = {});

/// Deterministic CSV: `library,category,flows,mean_rtt_ms` (RTT fixed to
/// three decimals), one row per report entry in report order.
[[nodiscard]] std::string writeLatencyCsv(const LatencyReport& report);

/// Library packages whose mean RTT is at or above `thresholdMs`, in report
/// order — enforcement candidates.
[[nodiscard]] std::vector<std::string> slowLibraries(const LatencyReport& report,
                                                     double thresholdMs);

/// Install one rate-limit rule per slow library into `engine` (graded
/// enforcement: a stalling SDK still gets `maxConnects` per window).
/// Returns how many rules were added.
std::size_t rateLimitSlowLibraries(PolicyEngine& engine,
                                   const LatencyReport& report,
                                   double thresholdMs, std::size_t maxConnects,
                                   util::SimTimeMs windowMs);

}  // namespace libspector::policy
