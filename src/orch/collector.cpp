#include "orch/collector.hpp"

#include <algorithm>

#include "util/bytes.hpp"
#include "util/log.hpp"

namespace libspector::orch {

CollectionServer::CollectionServer(CollectionServerConfig config)
    : config_(config) {
  config_.maxPendingApks = std::max<std::size_t>(1, config_.maxPendingApks);
}

void CollectionServer::submitDatagram(std::span<const std::uint8_t> payload) {
  // Decode under the lock: the v3 dictionary decoder is stateful, and many
  // workers feed this server concurrently.
  const std::scoped_lock lock(mutex_);
  ++received_;
  core::UdpReport report;
  try {
    report = decoder_.decode(payload);
  } catch (const util::DecodeError& err) {
    ++dropped_;
    util::logWarn("CollectionServer: dropping malformed datagram: %s", err.what());
    return;
  }
  auto [it, inserted] = bySha_.try_emplace(report.apkSha256);
  if (inserted) {
    order_.push_back(it->first);
    it->second.orderIt = std::prev(order_.end());
  }
  it->second.reports.push_back(std::move(report));
  if (inserted) evictIfOverCapacityLocked();
}

void CollectionServer::evictIfOverCapacityLocked() {
  while (bySha_.size() > config_.maxPendingApks) {
    const std::string oldest = order_.front();
    const auto it = bySha_.find(oldest);
    ++apksEvicted_;
    reportsEvicted_ += it->second.reports.size();
    order_.erase(it->second.orderIt);
    bySha_.erase(it);
    util::logWarn("CollectionServer: evicted %s (capacity %zu apks)",
                  oldest.c_str(), config_.maxPendingApks);
  }
}

std::vector<core::UdpReport> CollectionServer::takeReports(
    const std::string& apkSha256) {
  const std::scoped_lock lock(mutex_);
  const auto it = bySha_.find(apkSha256);
  if (it == bySha_.end()) return {};
  std::vector<core::UdpReport> reports = std::move(it->second.reports);
  order_.erase(it->second.orderIt);
  bySha_.erase(it);
  return reports;
}

std::size_t CollectionServer::datagramsReceived() const {
  const std::scoped_lock lock(mutex_);
  return received_;
}

std::size_t CollectionServer::datagramsDropped() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

std::size_t CollectionServer::apksEvicted() const {
  const std::scoped_lock lock(mutex_);
  return apksEvicted_;
}

std::size_t CollectionServer::reportsEvicted() const {
  const std::scoped_lock lock(mutex_);
  return reportsEvicted_;
}

std::size_t CollectionServer::pendingApks() const {
  const std::scoped_lock lock(mutex_);
  return bySha_.size();
}

}  // namespace libspector::orch
