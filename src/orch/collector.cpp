#include "orch/collector.hpp"

#include "util/bytes.hpp"
#include "util/log.hpp"

namespace libspector::orch {

void CollectionServer::submitDatagram(std::span<const std::uint8_t> payload) {
  core::UdpReport report;
  try {
    report = core::UdpReport::decode(payload);
  } catch (const util::DecodeError& err) {
    const std::scoped_lock lock(mutex_);
    ++received_;
    ++dropped_;
    util::logWarn("CollectionServer: dropping malformed datagram: %s", err.what());
    return;
  }
  const std::scoped_lock lock(mutex_);
  ++received_;
  bySha_[report.apkSha256].push_back(std::move(report));
}

std::vector<core::UdpReport> CollectionServer::takeReports(
    const std::string& apkSha256) {
  const std::scoped_lock lock(mutex_);
  const auto it = bySha_.find(apkSha256);
  if (it == bySha_.end()) return {};
  std::vector<core::UdpReport> reports = std::move(it->second);
  bySha_.erase(it);
  return reports;
}

std::size_t CollectionServer::datagramsReceived() const {
  const std::scoped_lock lock(mutex_);
  return received_;
}

std::size_t CollectionServer::datagramsDropped() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

}  // namespace libspector::orch
