// The central data collection server (paper Fig. 1, §II-B3).
//
// Receives the Socket Supervisor's UDP report datagrams from every emulator
// worker, decodes them and groups them by apk checksum.  Thread-safe: many
// workers feed one server, as in the paper's CentOS fleet.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/report.hpp"

namespace libspector::orch {

class CollectionServer {
 public:
  /// Ingest one raw datagram. Malformed datagrams are counted and dropped
  /// (UDP gives no delivery or integrity guarantee).
  void submitDatagram(std::span<const std::uint8_t> payload);

  /// Remove and return all reports collected for an apk (a worker calls
  /// this once its app run finishes).
  [[nodiscard]] std::vector<core::UdpReport> takeReports(
      const std::string& apkSha256);

  [[nodiscard]] std::size_t datagramsReceived() const;
  [[nodiscard]] std::size_t datagramsDropped() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<core::UdpReport>> bySha_;
  std::size_t received_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace libspector::orch
