// The central data collection server (paper Fig. 1, §II-B3).
//
// Receives the Socket Supervisor's UDP report datagrams from every emulator
// worker, decodes them and groups them by apk checksum.  Thread-safe: many
// workers feed one server, as in the paper's CentOS fleet.
//
// This is the legacy single-map collector; the sharded, loss-accounting
// path lives in ingest::ShardedIngest. Both implement ingest::ReportSink,
// so emulators and dispatchers are wired against the boundary.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/report.hpp"
#include "ingest/sink.hpp"

namespace libspector::orch {

struct CollectionServerConfig {
  /// Reports for apks nobody ever takeReports()es must not accumulate
  /// forever (a long campaign with crashed workers would otherwise grow the
  /// server without bound). When the map holds this many apks, the one
  /// whose first datagram is oldest is evicted and counted.
  std::size_t maxPendingApks = 4096;
};

class CollectionServer final : public ingest::ReportSink {
 public:
  explicit CollectionServer(CollectionServerConfig config = {});

  /// Ingest one raw datagram — framed (core::ReportFrame v1/v2), the
  /// dictionary-compressed v3 frame, or legacy raw report encoding.
  /// Malformed datagrams are counted and dropped (UDP gives no delivery or
  /// integrity guarantee).
  void submitDatagram(std::span<const std::uint8_t> payload) override;

  /// Remove and return all reports collected for an apk (a worker calls
  /// this once its app run finishes).
  [[nodiscard]] std::vector<core::UdpReport> takeReports(
      const std::string& apkSha256);

  [[nodiscard]] std::size_t datagramsReceived() const;
  [[nodiscard]] std::size_t datagramsDropped() const;
  /// Apks (and the reports they held) shed by the capacity policy.
  [[nodiscard]] std::size_t apksEvicted() const;
  [[nodiscard]] std::size_t reportsEvicted() const;
  [[nodiscard]] std::size_t pendingApks() const;

 private:
  struct PendingApk {
    std::vector<core::UdpReport> reports;
    std::list<std::string>::iterator orderIt;
  };

  /// Requires mutex_ held.
  void evictIfOverCapacityLocked();

  CollectionServerConfig config_;
  mutable std::mutex mutex_;
  /// Stateful v3 dictionary decoder; guarded by mutex_ like the maps.
  core::ReportStreamDecoder decoder_;
  std::unordered_map<std::string, PendingApk> bySha_;
  std::list<std::string> order_;  // pending apks, oldest first
  std::size_t received_ = 0;
  std::size_t dropped_ = 0;
  std::size_t apksEvicted_ = 0;
  std::size_t reportsEvicted_ = 0;
};

}  // namespace libspector::orch
