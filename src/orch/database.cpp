#include "orch/database.hpp"

#include <filesystem>
#include <fstream>

namespace libspector::orch {

void ResultDatabase::store(core::RunArtifacts artifacts) {
  const std::scoped_lock lock(mutex_);
  bySha_[artifacts.apkSha256] = std::move(artifacts);
}

std::optional<core::RunArtifacts> ResultDatabase::fetch(
    const std::string& apkSha256) const {
  const std::scoped_lock lock(mutex_);
  const auto it = bySha_.find(apkSha256);
  if (it == bySha_.end()) return std::nullopt;
  return it->second;
}

std::size_t ResultDatabase::size() const {
  const std::scoped_lock lock(mutex_);
  return bySha_.size();
}

void ResultDatabase::forEach(
    const std::function<void(const core::RunArtifacts&)>& fn) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& [sha, artifacts] : bySha_) fn(artifacts);
}

std::size_t ResultDatabase::saveToDirectory(const std::string& directory) const {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  const std::scoped_lock lock(mutex_);
  std::size_t written = 0;
  for (const auto& [sha, artifacts] : bySha_) {
    const auto bytes = artifacts.serialize();
    const fs::path path = fs::path(directory) / (sha + ".spab");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("ResultDatabase: cannot write " + path.string());
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("ResultDatabase: short write " + path.string());
    ++written;
  }
  return written;
}

std::size_t ResultDatabase::loadFromDirectory(const std::string& directory) {
  namespace fs = std::filesystem;
  std::size_t loaded = 0;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".spab") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in)
      throw std::runtime_error("ResultDatabase: cannot read " +
                               entry.path().string());
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    store(core::RunArtifacts::deserialize(bytes));
    ++loaded;
  }
  return loaded;
}

}  // namespace libspector::orch
