#include "orch/database.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "orch/recovery.hpp"
#include "util/bytes.hpp"

namespace libspector::orch {

bool ResultDatabase::store(core::RunArtifacts artifacts) {
  // Copy the key first: insert_or_assign's argument evaluation order is
  // unspecified, and the move would race the key read.
  std::string sha = artifacts.apkSha256;
  const std::scoped_lock lock(mutex_);
  return bySha_.insert_or_assign(std::move(sha), std::move(artifacts)).second;
}

std::optional<core::RunArtifacts> ResultDatabase::fetch(
    const std::string& apkSha256) const {
  const std::scoped_lock lock(mutex_);
  const auto it = bySha_.find(apkSha256);
  if (it == bySha_.end()) return std::nullopt;
  return it->second;
}

std::size_t ResultDatabase::size() const {
  const std::scoped_lock lock(mutex_);
  return bySha_.size();
}

void ResultDatabase::forEach(
    const std::function<void(const core::RunArtifacts&)>& fn) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& [sha, artifacts] : bySha_) fn(artifacts);
}

std::size_t ResultDatabase::saveToDirectory(
    const std::string& directory) const {
  namespace fs = std::filesystem;
  fs::create_directories(directory);

  // Snapshot under the lock, write outside it: disk latency must not stall
  // workers uploading into the store.
  std::vector<core::RunArtifacts> snapshot;
  {
    const std::scoped_lock lock(mutex_);
    snapshot.reserve(bySha_.size());
    for (const auto& [sha, artifacts] : bySha_) snapshot.push_back(artifacts);
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const core::RunArtifacts& a, const core::RunArtifacts& b) {
              return a.apkSha256 < b.apkSha256;
            });

  for (const auto& artifacts : snapshot) {
    // Batch saves carry no job index; the loss account still rides along
    // so a later recovery scan can surface it.
    const auto bytes = core::SpabEnvelope::encode(
        core::SpabEnvelope::kNoJobIndex,
        core::ApkLossAccount::fromArtifacts(artifacts), artifacts);
    writeSpabAtomic(directory, artifacts.apkSha256, bytes);
  }
  return snapshot.size();
}

ResultDatabase::LoadReport ResultDatabase::loadFromDirectory(
    const std::string& directory) {
  namespace fs = std::filesystem;
  LoadReport report;

  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".spab")
      continue;
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  for (const auto& path : paths) {
    try {
      std::ifstream in(path, std::ios::binary);
      if (!in)
        throw std::runtime_error("ResultDatabase: cannot read " +
                                 path.string());
      const std::vector<std::uint8_t> bytes(
          (std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>());
      core::RunArtifacts artifacts =
          core::SpabEnvelope::looksFramed(bytes)
              ? core::SpabEnvelope::decode(bytes).artifacts
              : core::RunArtifacts::deserialize(bytes);
      if (store(std::move(artifacts)))
        ++report.loaded;
      else
        ++report.replaced;
    } catch (const std::exception& error) {
      report.failures.push_back({path.string(), error.what()});
    }
  }
  return report;
}

}  // namespace libspector::orch
