// The central result database (paper Fig. 1): workers upload each app's
// artifact bundle; the offline pipeline reads them back. Thread-safe.
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/artifacts.hpp"

namespace libspector::orch {

class ResultDatabase {
 public:
  /// Store one app's artifacts (keyed by apk sha256; re-upload replaces).
  void store(core::RunArtifacts artifacts);

  [[nodiscard]] std::optional<core::RunArtifacts> fetch(
      const std::string& apkSha256) const;

  [[nodiscard]] std::size_t size() const;

  /// Visit every stored artifact bundle (snapshot order unspecified).
  /// The callback must not call back into the database.
  void forEach(const std::function<void(const core::RunArtifacts&)>& fn) const;

  /// Persist every bundle to `directory` (created if missing), one
  /// `<sha256>.spab` file per app. Returns the number of files written.
  std::size_t saveToDirectory(const std::string& directory) const;

  /// Load every `.spab` bundle from `directory` into the database
  /// (replacing same-sha entries). Returns the number of bundles loaded;
  /// throws std::runtime_error on I/O failure or util::DecodeError on a
  /// corrupt bundle.
  std::size_t loadFromDirectory(const std::string& directory);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, core::RunArtifacts> bySha_;
};

}  // namespace libspector::orch
