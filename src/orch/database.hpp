// The central result database (paper Fig. 1): workers upload each app's
// artifact bundle; the offline pipeline reads them back. Thread-safe.
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/artifacts.hpp"

namespace libspector::orch {

class ResultDatabase {
 public:
  /// Outcome of loadFromDirectory. Corruption is accounted per file, never
  /// fatal: one bad bundle must not abandon the rest of a study's data.
  struct LoadReport {
    std::size_t loaded = 0;    // bundles added under a new sha
    std::size_t replaced = 0;  // bundles that overwrote an existing sha

    struct Failure {
      std::string path;   // file that failed to load
      std::string error;  // decode/I-O error text
    };
    std::vector<Failure> failures;
  };

  /// Store one app's artifacts (keyed by apk sha256; re-upload replaces).
  /// Returns true when the sha was new, false when it replaced an entry.
  bool store(core::RunArtifacts artifacts);

  [[nodiscard]] std::optional<core::RunArtifacts> fetch(
      const std::string& apkSha256) const;

  [[nodiscard]] std::size_t size() const;

  /// Visit every stored artifact bundle (snapshot order unspecified).
  /// The callback must not call back into the database.
  void forEach(const std::function<void(const core::RunArtifacts&)>& fn) const;

  /// Persist every bundle to `directory` (created if missing), one
  /// crc32-framed `<sha256>.spab` file per app, each written to a temp
  /// file and atomically renamed — a crash mid-save leaves only complete
  /// bundles plus at most one torn `.tmp`. The map is snapshotted under
  /// the lock and all disk I/O happens outside it, so concurrent store()
  /// calls never block on the filesystem. Returns the number written.
  std::size_t saveToDirectory(const std::string& directory) const;

  /// Load every `.spab` bundle from `directory` (sorted path order, so
  /// loads are deterministic) into the database. Understands both the
  /// crc32-framed envelope and the legacy raw-artifacts format. Corrupt
  /// or unreadable files are recorded in the report instead of thrown.
  LoadReport loadFromDirectory(const std::string& directory);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, core::RunArtifacts> bySha_;
};

}  // namespace libspector::orch
