#include "orch/emulator.hpp"

#include "hook/xposed.hpp"
#include "rt/interpreter.hpp"
#include "util/bytes.hpp"
#include "rt/tracer.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"

namespace libspector::orch {

EmulatorInstance::EmulatorInstance(const net::ServerFarm& farm,
                                   ingest::ReportSink* collector,
                                   EmulatorConfig config)
    : farm_(farm), collector_(collector), config_(config) {}

core::RunArtifacts EmulatorInstance::run(const dex::ApkFile& apk,
                                         const rt::AppProgram& program) {
  // Fresh image: everything below is constructed per run.
  util::SimClock clock;
  util::Rng rng(config_.seed);
  net::NetworkStack stack(farm_, clock, rng.fork(1), config_.stack);

  // Local + central report collection: the emulator's virtual router
  // forwards the supervisor's framed datagrams to the collection sink
  // verbatim (framing survives to the ingest tier); the local sink unwraps
  // them for the run's own artifact bundle.
  std::vector<core::UdpReport> localReports;
  core::ReportStreamDecoder localDecoder;
  stack.registerUdpSink(
      core::kDefaultCollectorEndpoint,
      [this, &localReports, &localDecoder](
          const net::SockEndpoint&, std::span<const std::uint8_t> payload) {
        try {
          localReports.push_back(localDecoder.decode(payload));
        } catch (const util::DecodeError&) {
          // v3 under datagram loss: a frame whose dictionary definition
          // was dropped before reaching this sink is a local loss, not an
          // error — reportsEmitted minus what lands here accounts for it,
          // and the ingest tier keeps its own exact per-apk account.
        }
        if (collector_ != nullptr) collector_->submitDatagram(payload);
      });

  core::MethodMonitor monitor;
  rt::Interpreter runtime(program, stack, monitor.tracer(), clock, rng.fork(2));
  runtime.setScenario(config_.scenario);

  // Apk identity, computed at most once per run: the prefetcher's streaming
  // digest when present, one streaming serialization walk otherwise. The
  // supervisor is primed with the same string (and the fleet's translation
  // table cache) so it never re-serializes the apk.
  const std::string apkSha256 = config_.apkSha256.empty()
                                    ? util::toHex(apk.sha256())
                                    : config_.apkSha256;

  hook::XposedFramework xposed;
  const auto supervisor = std::make_shared<core::SocketSupervisor>(
      core::kDefaultCollectorEndpoint, config_.workerId);
  if (config_.dictionaryFrames) supervisor->enableDictionaryFrames();
  supervisor->primeApkContext(apkSha256, config_.frameTableCache);
  xposed.installModule(supervisor);
  xposed.attachToApp(runtime, apk);

  runtime.start();
  const auto monkeyStats = monkey::exercise(runtime, clock, config_.monkey);

  // Background phase: the app keeps (sparsely) transmitting after the UI
  // session ends.
  for (std::uint32_t tick = 0; tick < config_.backgroundTicks; ++tick) {
    runtime.runBackgroundTick();
    clock.advance(config_.backgroundTickMs);
  }

  // Pooled keep-alive connections FIN only now (a no-op outside the
  // scenario), so the capture records their teardown before collection.
  runtime.closePooledConnections();

  core::RunArtifacts artifacts;
  artifacts.apkSha256 = apkSha256;
  artifacts.packageName = apk.packageName;
  artifacts.appCategory = apk.appCategory;
  artifacts.capture = std::move(stack.capture());
  artifacts.reports = std::move(localReports);
  // Sender-side truth, carried on the reliable artifact path: the ingest
  // tier subtracts what actually arrived to get exact per-apk loss.
  artifacts.reportsEmitted = supervisor->reportsSent();
  artifacts.methodTraceFile = monitor.writeTraceFile();
  artifacts.coverage =
      core::MethodMonitor::computeCoverage(artifacts.methodTraceFile, apk);
  artifacts.monkeyEventsInjected = monkeyStats.eventsInjected;
  artifacts.runDurationMs = monkeyStats.elapsedMs;
  artifacts.requestBoundaries = monitor.requestBoundaries();
  return artifacts;
}

}  // namespace libspector::orch
