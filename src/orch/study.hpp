// One-call measurement campaign (the whole paper pipeline as an API).
//
// Wires together the synthetic store, the emulator fleet, the streaming
// ingest tier and the study aggregator:
//
//   orch::StudyConfig config;
//   config.store.appCount = 2500;
//   auto output = orch::runStudy(config);
//   output.study.transferByLibCategory(); ...
//
// Since the ingest subsystem landed, runStudy is the batch pipeline
// *re-expressed over streaming ingest*: supervisor datagrams flow framed
// into an ingest::IngestPipeline, shards attribute each run as it
// completes, and an order-restoring accumulator keeps the study output
// byte-identical to a single-worker batch run at any shard count.
//
// Downstream users who bring their own corpus can use the lower-level
// pieces directly (Dispatcher + IngestPipeline + StudyAggregator).
#pragma once

#include <string>

#include "core/analysis.hpp"
#include "ingest/pipeline.hpp"
#include "orch/dispatcher.hpp"
#include "store/generator.hpp"

namespace libspector::orch {

struct StudyConfig {
  store::StoreConfig store;
  DispatcherConfig dispatcher;
  /// Streaming ingest tier shape (shard count, queue bounds, backpressure).
  /// Shards are the attribution parallelism axis, so the study default is
  /// one shard per hardware thread; any shard count yields byte-identical
  /// study output (the accumulator restores dispatch order).
  ingest::IngestConfig ingest{.shards = 0};
  /// When non-empty, every app's artifact bundle (.spab) plus the
  /// domains.csv world manifest are persisted here for later re-analysis.
  std::string artifactsDirectory;
};

struct StudyOutput {
  core::StudyAggregator study;
  std::size_t appsProcessed = 0;
  std::size_t appsFailed = 0;
  double wallSeconds = 0.0;
  /// Fleet throughput counters (jobs/s, per-job wall time, sink time) for
  /// the run — the observability behind the parallel-attribution numbers.
  Dispatcher::Stats dispatcherStats;
  /// Ingest-tier counters: per-shard loss/dup/reorder accounting, queue
  /// behaviour, fold latency percentiles. toJson() for dashboards.
  ingest::IngestMetrics ingestMetrics;
};

/// Generate a world per `config.store` and measure it end to end.
[[nodiscard]] StudyOutput runStudy(const StudyConfig& config);

/// Measure an existing world (the generator outlives the call).
[[nodiscard]] StudyOutput runStudy(const store::AppStoreGenerator& generator,
                                   const DispatcherConfig& dispatcherConfig,
                                   const std::string& artifactsDirectory = {},
                                   const ingest::IngestConfig& ingestConfig = {
                                       .shards = 0});

}  // namespace libspector::orch
