// One-call measurement campaign (the whole paper pipeline as an API).
//
// Wires together the synthetic store, the emulator fleet, the offline
// attribution pipeline and the study aggregator:
//
//   orch::StudyConfig config;
//   config.store.appCount = 2500;
//   auto output = orch::runStudy(config);
//   output.study.transferByLibCategory(); ...
//
// Downstream users who bring their own corpus can use the lower-level
// pieces directly (Dispatcher + TrafficAttributor + StudyAggregator).
#pragma once

#include <string>

#include "core/analysis.hpp"
#include "orch/dispatcher.hpp"
#include "store/generator.hpp"

namespace libspector::orch {

struct StudyConfig {
  store::StoreConfig store;
  DispatcherConfig dispatcher;
  /// When non-empty, every app's artifact bundle (.spab) plus the
  /// domains.csv world manifest are persisted here for later re-analysis.
  std::string artifactsDirectory;
};

struct StudyOutput {
  core::StudyAggregator study;
  std::size_t appsProcessed = 0;
  std::size_t appsFailed = 0;
  double wallSeconds = 0.0;
  /// Fleet throughput counters (jobs/s, per-job wall time, sink time) for
  /// the run — the observability behind the parallel-attribution numbers.
  Dispatcher::Stats dispatcherStats;
};

/// Generate a world per `config.store` and measure it end to end.
[[nodiscard]] StudyOutput runStudy(const StudyConfig& config);

/// Measure an existing world (the generator outlives the call).
[[nodiscard]] StudyOutput runStudy(const store::AppStoreGenerator& generator,
                                   const DispatcherConfig& dispatcherConfig,
                                   const std::string& artifactsDirectory = {});

}  // namespace libspector::orch
