// One-call measurement campaign (the whole paper pipeline as an API).
//
// Wires together the synthetic store, the emulator fleet, the streaming
// ingest tier and the study aggregator:
//
//   orch::StudyConfig config;
//   config.store.appCount = 2500;
//   auto output = orch::runStudy(config);
//   output.study.transferByLibCategory(); ...
//
// Since the ingest subsystem landed, runStudy is the batch pipeline
// *re-expressed over streaming ingest*: supervisor datagrams flow framed
// into an ingest::IngestPipeline, shards attribute each run as it
// completes, and an order-restoring accumulator keeps the study output
// byte-identical to a single-worker batch run at any shard count.
//
// When artifactsDirectory is set, every run is checkpointed the moment its
// shard finalizes it (crc32-framed bundle, atomic rename, manifest entry —
// see orch/recovery.hpp), so a collector that dies mid-study can
// resumeStudy(): survivors replay through ingest without re-running their
// emulators, the gaps re-run under their original job indices, and the
// output is byte-identical to the uninterrupted run.
//
// Downstream users who bring their own corpus can use the lower-level
// pieces directly (Dispatcher + IngestPipeline + StudyAggregator).
#pragma once

#include <string>

#include "core/analysis.hpp"
#include "ingest/pipeline.hpp"
#include "orch/dispatcher.hpp"
#include "orch/recovery.hpp"
#include "store/generator.hpp"
#include "store/prefetch.hpp"

namespace libspector::orch {

struct StudyConfig {
  store::StoreConfig store;
  DispatcherConfig dispatcher;
  /// Streaming ingest tier shape (shard count, queue bounds, backpressure).
  /// Shards are the attribution parallelism axis, so the study default is
  /// one shard per hardware thread; any shard count yields byte-identical
  /// study output (the accumulator restores dispatch order).
  ingest::IngestConfig ingest{.shards = 0};
  /// Pipelined job generation: N generator threads expand AppPlans (and
  /// stream-hash the apks) ahead of the dispatcher through a bounded
  /// reorder window, so emulator workers never stall on makeJob. 0 threads
  /// = the serial pull-through path. Any thread count yields byte-identical
  /// study output — makeJob is a pure function of the plan seed, and the
  /// window preserves index order (tests/store/prefetch_determinism_test).
  store::PrefetchConfig prefetch;
  /// When non-empty, every run is incrementally checkpointed here as its
  /// shard finalizes it (one crc32-framed .spab per app plus a manifest),
  /// and the domains.csv world manifest is written at the end. The same
  /// directory is what resumeStudy() recovers from after a crash.
  std::string artifactsDirectory;
  /// Attribution knobs (capture index, frame memoization, symbol
  /// interning). Every combination yields byte-identical study output —
  /// they trade speed and memory, not results.
  core::AttributorConfig attribution;
};

struct StudyOutput {
  core::StudyAggregator study;
  std::size_t appsProcessed = 0;
  std::size_t appsFailed = 0;
  /// Runs restored from checkpointed bundles instead of re-run emulators
  /// (always 0 for runStudy; counted into appsProcessed).
  std::size_t appsReplayed = 0;
  double wallSeconds = 0.0;
  /// Fleet throughput counters (jobs/s, per-job wall time, sink time) for
  /// the run — the observability behind the parallel-attribution numbers.
  Dispatcher::Stats dispatcherStats;
  /// Ingest-tier counters: per-shard loss/dup/reorder accounting, queue
  /// behaviour, fold latency percentiles. toJson() for dashboards.
  ingest::IngestMetrics ingestMetrics;
  /// Generation-tier counters (jobs expanded/delivered, reorder-window
  /// high-water mark, consumer stalls on makeJob).
  store::JobPrefetcher::Stats prefetchStats;
};

/// Generate a world per `config.store` and measure it end to end.
[[nodiscard]] StudyOutput runStudy(const StudyConfig& config);

/// Measure an existing world (the generator outlives the call).
[[nodiscard]] StudyOutput runStudy(const store::AppStoreGenerator& generator,
                                   const DispatcherConfig& dispatcherConfig,
                                   const std::string& artifactsDirectory = {},
                                   const ingest::IngestConfig& ingestConfig = {
                                       .shards = 0},
                                   const store::PrefetchConfig& prefetch = {},
                                   const core::AttributorConfig& attribution = {});

struct ResumeOutput {
  StudyOutput output;
  /// What the recovery scan found (runs are consumed by the resume and
  /// cleared here; quarantine/manifest accounting is preserved).
  RecoveryReport recovery;
};

/// Resume a crashed study from `config.artifactsDirectory` (must be
/// non-empty): scan the checkpoint directory, quarantine corrupt bundles,
/// replay survivors through ingest in job-index order, re-run the
/// remaining jobs under their original indices, and produce a StudyOutput
/// byte-identical to the uninterrupted run. The world is regenerated from
/// `config.store`, which must match the crashed run's.
[[nodiscard]] ResumeOutput resumeStudy(const StudyConfig& config);

/// Resume against an existing world.
[[nodiscard]] ResumeOutput resumeStudy(
    const store::AppStoreGenerator& generator,
    const DispatcherConfig& dispatcherConfig,
    const std::string& artifactsDirectory,
    const ingest::IngestConfig& ingestConfig = {.shards = 0},
    const store::PrefetchConfig& prefetch = {},
    const core::AttributorConfig& attribution = {});

struct MergeOutput {
  StudyOutput output;
  /// One recovery report per checkpoint directory, in argument order
  /// (runs are consumed by the merge and cleared; quarantine/manifest
  /// accounting is preserved).
  std::vector<RecoveryReport> recoveries;
};

/// Merge a multi-collector study: each spectord collector checkpointed its
/// owned slice of the corpus into its own directory; this scans them all,
/// replays every surviving run through one pipeline in job-index order
/// (the order-restoring accumulator interleaves them back into dispatch
/// order), re-runs any index no collector covered, and produces a
/// StudyOutput byte-identical to a single-collector runStudy of the same
/// config — at any collector count, and regardless of which collectors
/// crashed and resumed along the way. Duplicate job indices across
/// directories keep the first (directory-order) copy.
[[nodiscard]] MergeOutput mergeStudies(
    const StudyConfig& config,
    const std::vector<std::string>& checkpointDirectories);

}  // namespace libspector::orch
