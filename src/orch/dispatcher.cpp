#include "orch/dispatcher.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "util/log.hpp"

namespace libspector::orch {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double millisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

Dispatcher::Dispatcher(const net::ServerFarm& farm,
                       ingest::ReportSink* collector, DispatcherConfig config)
    : farm_(farm), collector_(collector), config_(config) {}

void Dispatcher::recordJob(double jobMs, double sinkMs, double blockedMs) {
  const std::scoped_lock lock(statsMutex_);
  ++stats_.jobs;
  stats_.jobMsTotal += jobMs;
  stats_.jobMsMax = std::max(stats_.jobMsMax, jobMs);
  stats_.sinkMsTotal += sinkMs;
  stats_.sinkMsMax = std::max(stats_.sinkMsMax, sinkMs);
  stats_.sinkBlockedMsTotal += blockedMs;
}

void Dispatcher::run(const JobSource& source, const ResultSink& sink) {
  // Serialized delivery is the concurrent path plus one lock around the
  // sink; the lock-acquire wait is surfaced in stats() so the cost of
  // funneling the fleet through a serialized sink stays measurable.
  std::mutex sinkMutex;
  runConcurrent(source, [&](std::size_t, core::RunArtifacts&& artifacts) {
    const auto blockedStart = Clock::now();
    const std::scoped_lock lock(sinkMutex);
    const double blockedMs = millisSince(blockedStart);
    {
      const std::scoped_lock statsLock(statsMutex_);
      stats_.sinkBlockedMsTotal += blockedMs;
    }
    sink(std::move(artifacts));
  });
}

void Dispatcher::runConcurrent(const JobSource& source,
                               const IndexedResultSink& sink,
                               const FailureSink& onFailure) {
  const std::size_t workerCount =
      config_.workers != 0
          ? config_.workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());

  const auto runStart = Clock::now();
  std::mutex sourceMutex;
  std::mutex failureMutex;
  std::atomic<std::size_t> jobIndex{0};
  std::atomic<std::size_t> completed{0};

  const auto workerLoop = [&] {
    while (true) {
      std::optional<Job> job;
      std::size_t index = 0;
      {
        // Pulls stay serialized (sources need no locking of their own) and
        // index assignment follows pull order, so per-app seeds — and with
        // them every artifact byte — are independent of worker count.
        const std::scoped_lock lock(sourceMutex);
        job = source();
        if (!job) return;
        index = job->index ? *job->index : jobIndex.fetch_add(1);
      }

      EmulatorConfig emulatorConfig = config_.emulator;
      emulatorConfig.seed = config_.baseSeed + index;
      // Job indices are unique per study, so (workerId, sequence) uniquely
      // identifies every framed report the fleet emits.
      emulatorConfig.workerId = static_cast<std::uint32_t>(index);
      emulatorConfig.apkSha256 = std::move(job->apkSha256);
      emulatorConfig.frameTableCache = &frameTables_;
      EmulatorInstance emulator(farm_, collector_, emulatorConfig);
      const auto jobStart = Clock::now();
      try {
        core::RunArtifacts artifacts = emulator.run(job->apk, job->program);
        const double jobMs = millisSince(jobStart);
        const auto sinkStart = Clock::now();
        sink(index, std::move(artifacts));
        recordJob(jobMs, millisSince(sinkStart), 0.0);
      } catch (const std::exception& error) {
        const FailedJob failure{job->apk.packageName, error.what()};
        {
          const std::scoped_lock lock(failureMutex);
          failures_.push_back(failure);
        }
        util::logWarn("dispatcher: app %s failed: %s",
                      failure.packageName.c_str(), failure.error.c_str());
        if (onFailure) onFailure(index, failure);
        continue;
      }
      const std::size_t done = completed.fetch_add(1) + 1;
      if (done % 500 == 0)
        util::logInfo("dispatcher: %zu apps processed", done);
    }
  };

  {
    std::vector<std::jthread> workers;
    workers.reserve(workerCount);
    for (std::size_t i = 0; i < workerCount; ++i) workers.emplace_back(workerLoop);
  }  // jthreads join here

  processed_ += completed.load();
  {
    const std::scoped_lock lock(statsMutex_);
    stats_.elapsedSeconds +=
        std::chrono::duration<double>(Clock::now() - runStart).count();
  }
}

}  // namespace libspector::orch
