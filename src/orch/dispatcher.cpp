#include "orch/dispatcher.hpp"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace libspector::orch {

Dispatcher::Dispatcher(const net::ServerFarm& farm, CollectionServer* collector,
                       DispatcherConfig config)
    : farm_(farm), collector_(collector), config_(config) {}

void Dispatcher::run(const JobSource& source, const ResultSink& sink) {
  const std::size_t workerCount =
      config_.workers != 0
          ? config_.workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::mutex sourceMutex;
  std::mutex sinkMutex;
  std::atomic<std::size_t> jobIndex{0};
  std::atomic<std::size_t> completed{0};

  const auto workerLoop = [&] {
    while (true) {
      std::optional<Job> job;
      std::size_t index = 0;
      {
        const std::scoped_lock lock(sourceMutex);
        job = source();
        if (!job) return;
        index = jobIndex.fetch_add(1);
      }

      EmulatorConfig emulatorConfig = config_.emulator;
      emulatorConfig.seed = config_.baseSeed + index;
      EmulatorInstance emulator(farm_, collector_, emulatorConfig);
      try {
        core::RunArtifacts artifacts = emulator.run(job->apk, job->program);
        const std::scoped_lock lock(sinkMutex);
        sink(std::move(artifacts));
      } catch (const std::exception& error) {
        const std::scoped_lock lock(sinkMutex);
        failures_.push_back({job->apk.packageName, error.what()});
        util::logWarn("dispatcher: app %s failed: %s",
                      job->apk.packageName.c_str(), error.what());
        continue;
      }
      const std::size_t done = completed.fetch_add(1) + 1;
      if (done % 500 == 0)
        util::logInfo("dispatcher: %zu apps processed", done);
    }
  };

  {
    std::vector<std::jthread> workers;
    workers.reserve(workerCount);
    for (std::size_t i = 0; i < workerCount; ++i) workers.emplace_back(workerLoop);
  }  // jthreads join here

  processed_ += completed.load();
}

}  // namespace libspector::orch
