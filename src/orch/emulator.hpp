// One emulator instance (paper §II-B3).
//
// Every app runs in a *fresh* copy of the same image: same device profile,
// fresh network stack, fresh runtime, the Xposed framework with the Socket
// Supervisor installed, and the modified-ART Method Monitor attached.  The
// run exercises the app with the monkey and produces the artifact bundle.
#pragma once

#include <memory>

#include "core/artifacts.hpp"
#include "core/supervisor.hpp"
#include "dex/apk.hpp"
#include "ingest/sink.hpp"
#include "monkey/monkey.hpp"
#include "net/server.hpp"
#include "net/stack.hpp"
#include "rt/program.hpp"
#include "rt/scenario.hpp"

namespace libspector::orch {

struct EmulatorConfig {
  net::StackConfig stack;
  monkey::MonkeyConfig monkey;
  /// After the monkey finishes, the app sits in background for a few ticks
  /// and may keep transmitting (Rosen et al.; the paper's §IV-D relies on
  /// the 80%%-within-60s observation).
  std::uint32_t backgroundTicks = 3;
  std::uint32_t backgroundTickMs = 20 * 1000;
  /// Seed for this instance's stochastic behaviour (RTTs, response sizes,
  /// monkey handler choice). The dispatcher derives one per app.
  std::uint64_t seed = 1;
  /// Stamped into every framed supervisor report so the ingest tier can
  /// account loss per (worker, sequence). The dispatcher passes the job
  /// index, which is unique per study.
  std::uint32_t workerId = 0;
  /// Emit dictionary-compressed v3 report frames (each distinct signature
  /// once per run, then by u32 id) instead of v1. On by default since the
  /// spectord daemon landed: v3 shrinks the report datagrams, which
  /// changes the capture's recorded UDP sizes and therefore the study's
  /// reportBytes — but nothing the renderer consumes (the rendered study
  /// is byte-identical either way, pinned by
  /// tests/orch/default_wire_test.cpp). Set false to reproduce historical
  /// v1-wire reportBytes numbers; the decoder accepts v1/v2/v3 regardless.
  bool dictionaryFrames = true;
  /// Precomputed hex sha256 of the apk under test (empty = hash at run
  /// start). The generation tier's JobPrefetcher fills this, so emulator
  /// workers never serialize an apk just to hash it; either way the digest
  /// is computed at most once per run and shared with the supervisor.
  std::string apkSha256;
  /// Fleet-wide frame-translation-table cache handed to the supervisor
  /// (nullptr = the supervisor builds its own table per run). Owned by the
  /// dispatcher; must outlive the instance.
  dex::FrameTableCache* frameTableCache = nullptr;
  /// Workload-scenario switches (§14). All off (the default) pins the
  /// legacy runtime byte for byte; each flag opens one new behaviour in
  /// the runtime (keep-alive pooling) — the matching store/generator flags
  /// put the triggering material in the apps.
  rt::ScenarioConfig scenario;
};

class EmulatorInstance {
 public:
  /// `farm` is the shared external-server world; `collector` receives the
  /// supervisor's raw report datagrams (may be nullptr in hermetic tests —
  /// reports are then collected from the local sink only).
  EmulatorInstance(const net::ServerFarm& farm, ingest::ReportSink* collector,
                   EmulatorConfig config);

  /// Install, exercise and tear down one app; returns the artifact bundle
  /// (capture, reports, method trace, coverage, run stats).
  [[nodiscard]] core::RunArtifacts run(const dex::ApkFile& apk,
                                       const rt::AppProgram& program);

 private:
  const net::ServerFarm& farm_;
  ingest::ReportSink* collector_;
  EmulatorConfig config_;
};

}  // namespace libspector::orch
