// The job dispatcher and worker fleet (paper Fig. 1, §II-B3).
//
// The paper runs a dispatcher that hands apks to emulator workers on a
// CentOS cluster.  Here workers are std::jthreads; each pulls a job, boots
// a fresh EmulatorInstance, runs the app, and hands the artifact bundle to
// the result sink.  Both job pulls and result delivery are serialized by
// the dispatcher so sources and sinks need no locking of their own.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>
#include <optional>

#include "dex/apk.hpp"
#include "net/server.hpp"
#include "orch/collector.hpp"
#include "orch/emulator.hpp"
#include "rt/program.hpp"

namespace libspector::orch {

struct DispatcherConfig {
  /// 0 = one worker per hardware thread.
  std::size_t workers = 0;
  EmulatorConfig emulator;
  /// Per-app emulator seeds derive from this and the job index.
  std::uint64_t baseSeed = 0x11b59ec701ULL;
};

class Dispatcher {
 public:
  struct Job {
    dex::ApkFile apk;
    rt::AppProgram program;
  };
  /// Returns the next job or std::nullopt when the corpus is exhausted.
  using JobSource = std::function<std::optional<Job>()>;
  /// Receives each finished app's artifacts.
  using ResultSink = std::function<void(core::RunArtifacts&&)>;

  Dispatcher(const net::ServerFarm& farm, CollectionServer* collector,
             DispatcherConfig config);

  /// Process every job; blocks until done. Callable multiple times.
  /// A job whose emulator run throws is recorded as failed and skipped —
  /// one broken apk must not take down the fleet (the paper's dispatcher
  /// ran 25,000 heterogeneous Play-store apps).
  void run(const JobSource& source, const ResultSink& sink);

  struct FailedJob {
    std::string packageName;
    std::string error;
  };

  [[nodiscard]] std::size_t appsProcessed() const noexcept { return processed_; }
  [[nodiscard]] const std::vector<FailedJob>& failures() const noexcept {
    return failures_;
  }

 private:
  const net::ServerFarm& farm_;
  CollectionServer* collector_;
  DispatcherConfig config_;
  std::size_t processed_ = 0;
  std::vector<FailedJob> failures_;
};

}  // namespace libspector::orch
