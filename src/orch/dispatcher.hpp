// The job dispatcher and worker fleet (paper Fig. 1, §II-B3).
//
// The paper runs a dispatcher that hands apks to emulator workers on a
// CentOS cluster.  Here workers are std::jthreads; each pulls a job, boots
// a fresh EmulatorInstance, runs the app, and hands the artifact bundle to
// the result sink.
//
// Two delivery modes:
//  - run(): job pulls and result delivery are serialized by the dispatcher,
//    so sources and sinks need no locking of their own. Simple, but the
//    whole fleet funnels through one sink — anything expensive in the sink
//    (the offline attribution stage used to live there) collapses the
//    fleet to one core.
//  - runConcurrent(): results are delivered on the worker thread that
//    produced them, tagged with the job index, with no serialization. The
//    sink must be thread-safe; in exchange heavy per-result work
//    (attribution) runs in parallel, and the index lets an order-restoring
//    consumer (core::StudyAccumulator) keep output deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dex/apk.hpp"
#include "dex/disassembler.hpp"
#include "net/server.hpp"
#include "orch/collector.hpp"
#include "orch/emulator.hpp"
#include "rt/program.hpp"

namespace libspector::orch {

struct DispatcherConfig {
  /// 0 = one worker per hardware thread.
  std::size_t workers = 0;
  EmulatorConfig emulator;
  /// Per-app emulator seeds derive from this and the job index.
  std::uint64_t baseSeed = 0x11b59ec701ULL;
};

class Dispatcher {
 public:
  struct Job {
    dex::ApkFile apk;
    rt::AppProgram program;
    /// When set, the job runs under this index instead of the next
    /// pull-order one. Emulator seeds derive from the index, so resumed
    /// studies use this to re-run gap jobs under their original
    /// identities and reproduce the uninterrupted run byte for byte.
    std::optional<std::size_t> index;
    /// Precomputed hex sha256 of `apk` (empty = the emulator hashes it).
    /// The generation tier fills this so the hash overlaps generation
    /// instead of stalling an emulator worker.
    std::string apkSha256;
  };
  /// Returns the next job or std::nullopt when the corpus is exhausted.
  using JobSource = std::function<std::optional<Job>()>;
  /// Receives each finished app's artifacts (serialized delivery).
  using ResultSink = std::function<void(core::RunArtifacts&&)>;
  /// Concurrent delivery: called on the producing worker thread with the
  /// job's dispatch index. Must be thread-safe.
  using IndexedResultSink =
      std::function<void(std::size_t jobIndex, core::RunArtifacts&&)>;

  struct FailedJob {
    std::string packageName;
    std::string error;
  };
  /// Concurrent failure notification (same threading rules as
  /// IndexedResultSink); lets order-restoring consumers release jobs that
  /// will never arrive.
  using FailureSink =
      std::function<void(std::size_t jobIndex, const FailedJob& failure)>;

  /// Fleet throughput counters, cumulative across run() calls (like
  /// appsProcessed). Job wall time covers the emulator run only; sink time
  /// is what the worker spent inside the result sink, and blocked time is
  /// what it spent waiting for the serialized sink lock (always 0 for
  /// runConcurrent, which has no lock — that difference is the whole point
  /// of the parallel attribution path).
  struct Stats {
    std::size_t jobs = 0;
    double elapsedSeconds = 0.0;
    double jobMsTotal = 0.0;
    double jobMsMax = 0.0;
    double sinkMsTotal = 0.0;
    double sinkMsMax = 0.0;
    double sinkBlockedMsTotal = 0.0;

    [[nodiscard]] double jobsPerSecond() const noexcept {
      return elapsedSeconds > 0.0 ? static_cast<double>(jobs) / elapsedSeconds
                                  : 0.0;
    }
    [[nodiscard]] double jobMsMean() const noexcept {
      return jobs != 0 ? jobMsTotal / static_cast<double>(jobs) : 0.0;
    }
    [[nodiscard]] double sinkMsMean() const noexcept {
      return jobs != 0 ? sinkMsTotal / static_cast<double>(jobs) : 0.0;
    }
  };

  Dispatcher(const net::ServerFarm& farm, ingest::ReportSink* collector,
             DispatcherConfig config);

  /// Process every job; blocks until done. Callable multiple times.
  /// A job whose emulator run throws is recorded as failed and skipped —
  /// one broken apk must not take down the fleet (the paper's dispatcher
  /// ran 25,000 heterogeneous Play-store apps).
  void run(const JobSource& source, const ResultSink& sink);

  /// Like run(), but results are delivered concurrently with job indices
  /// (assigned in source-pull order, which also seeds the emulators).
  /// `onFailure` is optional.
  void runConcurrent(const JobSource& source, const IndexedResultSink& sink,
                     const FailureSink& onFailure = {});

  [[nodiscard]] std::size_t appsProcessed() const noexcept { return processed_; }
  [[nodiscard]] const std::vector<FailedJob>& failures() const noexcept {
    return failures_;
  }
  [[nodiscard]] Stats stats() const noexcept { return stats_; }

 private:
  void recordJob(double jobMs, double sinkMs, double blockedMs);

  const net::ServerFarm& farm_;
  ingest::ReportSink* collector_;
  DispatcherConfig config_;
  /// Fleet-wide frame-translation-table cache, shared by every emulator
  /// this dispatcher boots (keyed on apk digest, so re-runs of the same
  /// apk skip the dex walk entirely).
  dex::FrameTableCache frameTables_;
  std::size_t processed_ = 0;
  std::vector<FailedJob> failures_;
  Stats stats_;
  std::mutex statsMutex_;
};

}  // namespace libspector::orch
