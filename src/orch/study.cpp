#include "orch/study.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>

#include "core/attribution.hpp"
#include "core/export.hpp"
#include "orch/collector.hpp"
#include "orch/database.hpp"
#include "radar/corpus.hpp"
#include "util/log.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::orch {

StudyOutput runStudy(const StudyConfig& config) {
  const store::AppStoreGenerator generator(config.store);
  return runStudy(generator, config.dispatcher, config.artifactsDirectory);
}

StudyOutput runStudy(const store::AppStoreGenerator& generator,
                     const DispatcherConfig& dispatcherConfig,
                     const std::string& artifactsDirectory) {
  const auto start = std::chrono::steady_clock::now();

  static const radar::LibraryCorpus kCorpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&generator](const std::string& domain) {
        return generator.domainTruth(domain);
      });
  core::TrafficAttributor attributor(kCorpus, categorizer);

  StudyOutput output;
  const bool persist = !artifactsDirectory.empty();
  ResultDatabase database;

  // Workers attribute their own run's artifacts (the heavy offline stage)
  // and only the aggregation is funneled — through the accumulator, which
  // restores dispatch order so the study is byte-identical to a
  // single-worker run. Persisted bundles flow through the same ordered
  // fold.
  core::StudyAccumulator accumulator(
      output.study, persist ? core::StudyAccumulator::FoldHook(
                                  [&database](core::RunArtifacts&& artifacts) {
                                    database.store(std::move(artifacts));
                                  })
                            : core::StudyAccumulator::FoldHook{});

  CollectionServer collector;
  Dispatcher dispatcher(generator.farm(), &collector, dispatcherConfig);
  std::size_t next = 0;
  dispatcher.runConcurrent(
      [&]() -> std::optional<Dispatcher::Job> {
        if (next >= generator.appCount()) return std::nullopt;
        auto job = generator.makeJob(next++);
        return Dispatcher::Job{std::move(job.apk), std::move(job.program)};
      },
      [&](std::size_t index, core::RunArtifacts&& artifacts) {
        auto flows = attributor.attribute(artifacts);
        accumulator.add(index, std::move(artifacts), std::move(flows));
      },
      [&](std::size_t index, const Dispatcher::FailedJob&) {
        accumulator.skip(index);
      });
  accumulator.finish();
  output.appsProcessed = dispatcher.appsProcessed();
  output.appsFailed = dispatcher.failures().size();

  if (persist) {
    database.saveToDirectory(artifactsDirectory);
    std::ofstream manifest(std::filesystem::path(artifactsDirectory) /
                           "domains.csv");
    manifest << "domain,truth\n";
    for (const auto& domain : generator.farm().allDomains())
      manifest << core::csvField(domain) << ','
               << core::csvField(generator.domainTruth(domain)) << '\n';
  }

  output.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  output.dispatcherStats = dispatcher.stats();
  const auto& stats = output.dispatcherStats;
  util::logInfo(
      "study: %zu apps in %.2fs (%.1f jobs/s; job mean %.2f ms max %.2f ms; "
      "attribution+fold mean %.2f ms max %.2f ms; sink blocked %.1f ms)",
      output.appsProcessed, output.wallSeconds, stats.jobsPerSecond(),
      stats.jobMsMean(), stats.jobMsMax, stats.sinkMsMean(), stats.sinkMsMax,
      stats.sinkBlockedMsTotal);
  return output;
}

}  // namespace libspector::orch
