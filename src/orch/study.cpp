#include "orch/study.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>

#include "core/attribution.hpp"
#include "core/export.hpp"
#include "orch/database.hpp"
#include "radar/corpus.hpp"
#include "util/log.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::orch {

StudyOutput runStudy(const StudyConfig& config) {
  const store::AppStoreGenerator generator(config.store);
  return runStudy(generator, config.dispatcher, config.artifactsDirectory,
                  config.ingest);
}

StudyOutput runStudy(const store::AppStoreGenerator& generator,
                     const DispatcherConfig& dispatcherConfig,
                     const std::string& artifactsDirectory,
                     const ingest::IngestConfig& ingestConfig) {
  const auto start = std::chrono::steady_clock::now();

  static const radar::LibraryCorpus kCorpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&generator](const std::string& domain) {
        return generator.domainTruth(domain);
      });
  core::TrafficAttributor attributor(kCorpus, categorizer);

  StudyOutput output;
  const bool persist = !artifactsDirectory.empty();
  ResultDatabase database;

  // Shard consumers attribute runs as they complete (the heavy offline
  // stage) and only the aggregation is funneled — through the accumulator,
  // which restores dispatch order so the study is byte-identical to a
  // single-worker, single-shard run. Persisted bundles flow through the
  // same ordered fold.
  core::StudyAccumulator accumulator(
      output.study, persist ? core::StudyAccumulator::FoldHook(
                                  [&database](core::RunArtifacts&& artifacts) {
                                    database.store(std::move(artifacts));
                                  })
                            : core::StudyAccumulator::FoldHook{});

  {
    // Supervisor datagrams stream framed into the pipeline while the run is
    // live; the run-completion submit routes to the same shard as the
    // datagrams (both hash the apk checksum), so each shard finalizes,
    // attributes and folds with no cross-shard coordination.
    ingest::IngestPipeline pipeline(
        ingestConfig,
        [&attributor](const core::RunArtifacts& artifacts) {
          return attributor.attribute(artifacts);
        },
        &accumulator);

    Dispatcher dispatcher(generator.farm(), &pipeline, dispatcherConfig);
    std::size_t next = 0;
    dispatcher.runConcurrent(
        [&]() -> std::optional<Dispatcher::Job> {
          if (next >= generator.appCount()) return std::nullopt;
          auto job = generator.makeJob(next++);
          return Dispatcher::Job{std::move(job.apk), std::move(job.program)};
        },
        [&](std::size_t index, core::RunArtifacts&& artifacts) {
          pipeline.submitRun(index, std::move(artifacts));
        },
        [&](std::size_t index, const Dispatcher::FailedJob&) {
          pipeline.skip(index);
        });
    pipeline.drain();
    accumulator.finish();
    output.ingestMetrics = pipeline.metrics();
    output.appsProcessed = dispatcher.appsProcessed();
    output.appsFailed = dispatcher.failures().size();
    output.dispatcherStats = dispatcher.stats();
  }

  if (persist) {
    database.saveToDirectory(artifactsDirectory);
    std::ofstream manifest(std::filesystem::path(artifactsDirectory) /
                           "domains.csv");
    manifest << "domain,truth\n";
    for (const auto& domain : generator.farm().allDomains())
      manifest << core::csvField(domain) << ','
               << core::csvField(generator.domainTruth(domain)) << '\n';
  }

  output.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto& stats = output.dispatcherStats;
  const auto& ingest = output.ingestMetrics;
  util::logInfo(
      "study: %zu apps in %.2fs (%.1f jobs/s; job mean %.2f ms max %.2f ms; "
      "sink mean %.2f ms max %.2f ms; %zu ingest shards, %llu datagrams, "
      "%llu lost, %llu dup, fold p99 %.2f ms)",
      output.appsProcessed, output.wallSeconds, stats.jobsPerSecond(),
      stats.jobMsMean(), stats.jobMsMax, stats.sinkMsMean(), stats.sinkMsMax,
      ingest.shards,
      static_cast<unsigned long long>(ingest.datagramsReceived),
      static_cast<unsigned long long>(ingest.reportsLost),
      static_cast<unsigned long long>(ingest.duplicated), ingest.latencyP99Ms);
  return output;
}

}  // namespace libspector::orch
