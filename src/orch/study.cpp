#include "orch/study.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>

#include "core/attribution.hpp"
#include "core/export.hpp"
#include "orch/collector.hpp"
#include "orch/database.hpp"
#include "radar/corpus.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::orch {

StudyOutput runStudy(const StudyConfig& config) {
  const store::AppStoreGenerator generator(config.store);
  return runStudy(generator, config.dispatcher, config.artifactsDirectory);
}

StudyOutput runStudy(const store::AppStoreGenerator& generator,
                     const DispatcherConfig& dispatcherConfig,
                     const std::string& artifactsDirectory) {
  const auto start = std::chrono::steady_clock::now();

  static const radar::LibraryCorpus kCorpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&generator](const std::string& domain) {
        return generator.domainTruth(domain);
      });
  core::TrafficAttributor attributor(kCorpus, categorizer);

  StudyOutput output;
  const bool persist = !artifactsDirectory.empty();
  ResultDatabase database;

  CollectionServer collector;
  Dispatcher dispatcher(generator.farm(), &collector, dispatcherConfig);
  std::size_t next = 0;
  dispatcher.run(
      [&]() -> std::optional<Dispatcher::Job> {
        if (next >= generator.appCount()) return std::nullopt;
        auto job = generator.makeJob(next++);
        return Dispatcher::Job{std::move(job.apk), std::move(job.program)};
      },
      [&](core::RunArtifacts&& artifacts) {
        output.study.addApp(artifacts, attributor.attribute(artifacts));
        if (persist) database.store(std::move(artifacts));
      });
  output.appsProcessed = dispatcher.appsProcessed();
  output.appsFailed = dispatcher.failures().size();

  if (persist) {
    database.saveToDirectory(artifactsDirectory);
    std::ofstream manifest(std::filesystem::path(artifactsDirectory) /
                           "domains.csv");
    manifest << "domain,truth\n";
    for (const auto& domain : generator.farm().allDomains())
      manifest << core::csvField(domain) << ','
               << core::csvField(generator.domainTruth(domain)) << '\n';
  }

  output.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return output;
}

}  // namespace libspector::orch
