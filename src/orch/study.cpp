#include "orch/study.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <utility>
#include <vector>

#include "core/attribution.hpp"
#include "core/export.hpp"
#include "radar/corpus.hpp"
#include "util/log.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::orch {

namespace {

/// Shared engine behind runStudy and resumeStudy. `replays` (may be null)
/// are checkpointed runs re-injected through ingest instead of re-running
/// their emulators; the dispatcher then covers only the gap indices, under
/// their original identities, so the output matches an uninterrupted run
/// byte for byte.
StudyOutput runPipeline(const store::AppStoreGenerator& generator,
                        const DispatcherConfig& dispatcherConfig,
                        const std::string& artifactsDirectory,
                        const ingest::IngestConfig& ingestConfig,
                        const store::PrefetchConfig& prefetchConfig,
                        const core::AttributorConfig& attributionConfig,
                        std::vector<RecoveredRun>* replays) {
  const auto start = std::chrono::steady_clock::now();

  static const radar::LibraryCorpus kCorpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&generator](const std::string& domain) {
        return generator.domainTruth(domain);
      });
  core::TrafficAttributor attributor(kCorpus, categorizer, attributionConfig);

  StudyOutput output;
  const bool persist = !artifactsDirectory.empty();
  const std::size_t appCount = generator.appCount();

  // Shard consumers attribute runs as they complete (the heavy offline
  // stage) and only the aggregation is funneled — through the accumulator,
  // which restores dispatch order so the study is byte-identical to a
  // single-worker, single-shard run.
  core::StudyAccumulator accumulator(output.study);

  // Replayed indices are already durable; the dispatcher must skip them.
  std::vector<bool> done(appCount, false);
  if (replays != nullptr) {
    for (const auto& run : *replays) {
      if (run.jobIndex >= appCount || done[run.jobIndex]) continue;
      done[run.jobIndex] = true;
      ++output.appsReplayed;
    }
  }

  {
    // Each run becomes durable the moment its shard finalizes it — before
    // it is folded into the aggregate — so a crash at any point loses at
    // most work that recovery will re-run, never work it can't see.
    std::optional<CheckpointWriter> checkpointer;
    if (persist) checkpointer.emplace(artifactsDirectory);

    // Supervisor datagrams stream framed into the pipeline while the run is
    // live; the run-completion submit routes to the same shard as the
    // datagrams (both hash the apk checksum), so each shard finalizes,
    // attributes and folds with no cross-shard coordination.
    ingest::IngestPipeline pipeline(
        ingestConfig,
        [&attributor](const core::RunArtifacts& artifacts) {
          return attributor.attribute(artifacts);
        },
        &accumulator,
        persist ? ingest::IngestPipeline::CheckpointFn(
                      [&checkpointer](const ingest::RunDelivery& delivery) {
                        checkpointer->checkpoint(delivery.jobIndex,
                                                 delivery.account,
                                                 delivery.artifacts);
                      })
                : ingest::IngestPipeline::CheckpointFn{},
        // Columnar fold (batch id arrays through the dense aggregator) when
        // enabled; the row AttributeFn above stays the bit-identical
        // reference path.
        attributionConfig.columnarFold
            ? ingest::IngestPipeline::AttributeColumnsFn(
                  [&attributor](const core::RunArtifacts& artifacts) {
                    return attributor.attributeColumns(artifacts);
                  })
            : ingest::IngestPipeline::AttributeColumnsFn{});

    if (replays != nullptr) {
      for (auto& run : *replays) {
        if (run.jobIndex >= appCount) continue;
        pipeline.replayRun(run.jobIndex, std::move(run.artifacts),
                           run.account);
      }
      replays->clear();
    }

    // Generation tier: the prefetcher expands the gap indices (all of them
    // for a fresh run) ahead of the fleet, order-preserving, hashing each
    // apk during expansion. Resumed studies see only the gaps here, still
    // pinned to their original indices.
    std::vector<std::size_t> gaps;
    gaps.reserve(appCount);
    for (std::size_t i = 0; i < appCount; ++i)
      if (!done[i]) gaps.push_back(i);
    store::JobPrefetcher prefetcher(generator, std::move(gaps),
                                    prefetchConfig);

    Dispatcher dispatcher(generator.farm(), &pipeline, dispatcherConfig);
    dispatcher.runConcurrent(
        [&prefetcher]() -> std::optional<Dispatcher::Job> {
          auto item = prefetcher.next();
          if (!item) return std::nullopt;
          return Dispatcher::Job{std::move(item->job.apk),
                                 std::move(item->job.program), item->index,
                                 std::move(item->apkSha256)};
        },
        [&](std::size_t index, core::RunArtifacts&& artifacts) {
          pipeline.submitRun(index, std::move(artifacts));
        },
        [&](std::size_t index, const Dispatcher::FailedJob&) {
          pipeline.skip(index);
        });
    pipeline.drain();
    accumulator.finish();
    output.prefetchStats = prefetcher.stats();
    output.ingestMetrics = pipeline.metrics();
    output.appsProcessed = dispatcher.appsProcessed() + output.appsReplayed;
    output.appsFailed = dispatcher.failures().size();
    output.dispatcherStats = dispatcher.stats();
  }

  if (persist) {
    std::ofstream manifest(std::filesystem::path(artifactsDirectory) /
                           "domains.csv");
    manifest << "domain,truth\n";
    for (const auto& domain : generator.farm().allDomains())
      manifest << core::csvField(domain) << ','
               << core::csvField(generator.domainTruth(domain)) << '\n';
  }

  output.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto& stats = output.dispatcherStats;
  const auto& ingest = output.ingestMetrics;
  util::logInfo(
      "study: %zu apps (%zu replayed) in %.2fs (%.1f jobs/s; job mean "
      "%.2f ms max %.2f ms; sink mean %.2f ms max %.2f ms; %zu ingest "
      "shards, %llu datagrams, %llu lost, %llu dup, fold p99 %.2f ms)",
      output.appsProcessed, output.appsReplayed, output.wallSeconds,
      stats.jobsPerSecond(), stats.jobMsMean(), stats.jobMsMax,
      stats.sinkMsMean(), stats.sinkMsMax, ingest.shards,
      static_cast<unsigned long long>(ingest.datagramsReceived),
      static_cast<unsigned long long>(ingest.reportsLost),
      static_cast<unsigned long long>(ingest.duplicated), ingest.latencyP99Ms);
  return output;
}

}  // namespace

StudyOutput runStudy(const StudyConfig& config) {
  const store::AppStoreGenerator generator(config.store);
  return runStudy(generator, config.dispatcher, config.artifactsDirectory,
                  config.ingest, config.prefetch, config.attribution);
}

StudyOutput runStudy(const store::AppStoreGenerator& generator,
                     const DispatcherConfig& dispatcherConfig,
                     const std::string& artifactsDirectory,
                     const ingest::IngestConfig& ingestConfig,
                     const store::PrefetchConfig& prefetch,
                     const core::AttributorConfig& attribution) {
  return runPipeline(generator, dispatcherConfig, artifactsDirectory,
                     ingestConfig, prefetch, attribution, nullptr);
}

ResumeOutput resumeStudy(const StudyConfig& config) {
  const store::AppStoreGenerator generator(config.store);
  return resumeStudy(generator, config.dispatcher, config.artifactsDirectory,
                     config.ingest, config.prefetch, config.attribution);
}

ResumeOutput resumeStudy(const store::AppStoreGenerator& generator,
                         const DispatcherConfig& dispatcherConfig,
                         const std::string& artifactsDirectory,
                         const ingest::IngestConfig& ingestConfig,
                         const store::PrefetchConfig& prefetch,
                         const core::AttributorConfig& attribution) {
  if (artifactsDirectory.empty())
    throw std::invalid_argument(
        "resumeStudy: artifactsDirectory must name the checkpoint directory "
        "of the crashed run");

  ResumeOutput resume;
  resume.recovery = StudyRecovery::scan(artifactsDirectory);
  resume.output = runPipeline(generator, dispatcherConfig, artifactsDirectory,
                              ingestConfig, prefetch, attribution,
                              &resume.recovery.runs);
  return resume;
}

MergeOutput mergeStudies(const StudyConfig& config,
                         const std::vector<std::string>& checkpointDirectories) {
  const store::AppStoreGenerator generator(config.store);

  MergeOutput merge;
  std::vector<RecoveredRun> combined;
  for (const auto& directory : checkpointDirectories) {
    RecoveryReport report = StudyRecovery::scan(directory);
    for (auto& run : report.runs) combined.push_back(std::move(run));
    report.runs.clear();
    merge.recoveries.push_back(std::move(report));
  }
  // Stable sort keeps directory order within a job index, then the first
  // copy wins — collectors partition the sha space so duplicates only
  // appear when an operator merges overlapping directories.
  std::stable_sort(combined.begin(), combined.end(),
                   [](const RecoveredRun& a, const RecoveredRun& b) {
                     return a.jobIndex < b.jobIndex;
                   });
  combined.erase(std::unique(combined.begin(), combined.end(),
                             [](const RecoveredRun& a, const RecoveredRun& b) {
                               return a.jobIndex == b.jobIndex;
                             }),
                 combined.end());

  // No artifactsDirectory: the merge aggregates, it does not re-persist
  // the collectors' bundles into a fourth directory.
  merge.output = runPipeline(generator, config.dispatcher, std::string{},
                             config.ingest, config.prefetch,
                             config.attribution, &combined);
  return merge;
}

}  // namespace libspector::orch
