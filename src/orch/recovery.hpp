// Crash-safe checkpointing and study recovery (ROADMAP follow-on to the
// streaming ingest tier).
//
// The paper's pipeline uploads every run's traces + pcap to a central
// database before offline attribution; at app-store scale the collector
// *will* die mid-study, and the artifact store must make that survivable:
//
//  - CheckpointWriter persists each run the moment its shard finalizes it:
//    envelope-framed (crc32) bundle, written to a temp file and atomically
//    renamed, then recorded in an append-only manifest. Every step of the
//    protocol exposes a kill point so tests can sweep simulated crashes
//    over every persistence call site.
//  - StudyRecovery scans a checkpoint directory after a crash: torn temp
//    files are deleted, corrupt or truncated bundles are quarantined with
//    per-file error accounting (never fatal), the manifest's torn tail is
//    tolerated, and the surviving runs come back sorted by job index,
//    ready to replay through ingest::IngestPipeline.
//
// orch::resumeStudy (study.hpp) ties the two together: replay survivors,
// re-run the gaps under their original job indices, and produce a
// StudyOutput byte-identical to the uninterrupted run.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/artifacts.hpp"

namespace libspector::orch {

/// Thrown by a crash-injection probe to abandon the persistence protocol
/// mid-flight. Unwinding here leaves the directory exactly as a process
/// death at that point would (torn temp files, renamed-but-unmanifested
/// bundles, torn manifest lines); tests catch it where a real deployment
/// would restart the collector.
class SimulatedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Crash-injection probe: invoked with a kill-point label at every step of
/// the persistence protocol. Production passes none; tests throw
/// SimulatedCrash from it to model a collector dying at that exact point.
using KillProbe = std::function<void(std::string_view point)>;

/// Every kill point of one checkpoint() call, in protocol order — the
/// crash-injection sweep enumerates these.
inline constexpr std::string_view kCheckpointKillPoints[] = {
    "begin",            // nothing written yet
    "tmp-partial",      // temp file torn mid-write
    "tmp-complete",     // temp file complete, not yet renamed
    "bundle-renamed",   // bundle durable, manifest not yet appended
    "manifest-partial", // manifest line torn mid-append
    "done",             // bundle + manifest entry both durable
};

/// Atomically persist one envelope-framed bundle as `<sha>.spab` in
/// `directory`: write to `<sha>.spab.tmp`, then rename over the final name
/// (atomic on POSIX). A crash mid-write leaves only a torn `.tmp` that
/// recovery deletes; readers never observe a partial bundle.
void writeSpabAtomic(const std::filesystem::path& directory,
                     const std::string& apkSha256,
                     std::span<const std::uint8_t> envelopeBytes,
                     const KillProbe& probe = {});

/// Incremental checkpointer for a running study. Thread-safe: shards call
/// checkpoint() concurrently as runs finalize; bundle writes are
/// per-sha-file and the manifest append is serialized.
class CheckpointWriter {
 public:
  static constexpr std::string_view kManifestName = "manifest.spmf";

  /// Creates `directory` if missing and repairs a torn manifest tail left
  /// by a previous crash (so appends never merge into a torn line).
  explicit CheckpointWriter(std::string directory, KillProbe probe = {});

  /// Persist one finalized run: atomic bundle write, then a
  /// `<jobIndex> <sha> ok` manifest line.
  void checkpoint(std::uint64_t jobIndex, const core::ApkLossAccount& account,
                  const core::RunArtifacts& artifacts);

  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

 private:
  void probe(std::string_view point) const;

  std::string directory_;
  KillProbe probe_;
  std::mutex manifestMutex_;
};

/// One bundle that survived the crash, ready to replay.
struct RecoveredRun {
  std::size_t jobIndex = 0;
  core::ApkLossAccount account;
  core::RunArtifacts artifacts;
};

struct RecoveryReport {
  /// Valid checkpointed bundles, sorted by job index (replay order).
  std::vector<RecoveredRun> runs;

  struct Quarantined {
    std::string file;   // filename within the checkpoint directory
    std::string error;  // why it was rejected
  };
  /// Corrupt/truncated bundles, moved to <dir>/quarantine/ — never fatal.
  std::vector<Quarantined> quarantined;

  std::size_t tmpFilesRemoved = 0;   // torn mid-write temp files deleted
  std::size_t unindexedBundles = 0;  // valid but not replayable (no job
                                     // index: batch saves, legacy format)
  std::size_t manifestEntries = 0;       // well-formed manifest lines
  std::size_t manifestTornLines = 0;     // torn/malformed lines tolerated
  std::size_t manifestMissingBundles = 0;  // listed sha with no valid bundle
};

/// Housekeeping for long-lived checkpoint directories (spectord's admin
/// `compact` op). The manifest is append-only, so resumed studies and
/// re-checkpointed apks accumulate duplicate and dangling lines over
/// time. Compaction rewrites the manifest atomically (tmp + rename) with
/// exactly one `<jobIndex> <sha> ok` line per valid indexed bundle on
/// disk, sorted by job index, and deletes torn `.tmp` files. Corrupt
/// bundles are left for StudyRecovery::scan to quarantine. Returns the
/// number of stale items removed (dropped manifest lines + tmp files).
std::size_t compactCheckpointDirectory(const std::string& directory);

/// Post-crash scan of a checkpoint directory. Quarantines instead of
/// throwing: a single corrupt bundle must never abandon the recovery the
/// way ResultDatabase::loadFromDirectory once did. Deterministic: files
/// are visited in sorted path order.
class StudyRecovery {
 public:
  static constexpr std::string_view kQuarantineDir = "quarantine";

  [[nodiscard]] static RecoveryReport scan(const std::string& directory);
};

}  // namespace libspector::orch
