#include "orch/recovery.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/bytes.hpp"
#include "util/log.hpp"

namespace libspector::orch {

namespace fs = std::filesystem;

void writeSpabAtomic(const fs::path& directory, const std::string& apkSha256,
                     std::span<const std::uint8_t> envelopeBytes,
                     const KillProbe& probe) {
  const fs::path finalPath = directory / (apkSha256 + ".spab");
  const fs::path tmpPath = directory / (apkSha256 + ".spab.tmp");
  {
    std::ofstream out(tmpPath, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("recovery: cannot write " + tmpPath.string());
    // Two half-writes with a kill point between them: a crash here leaves
    // a torn temp file on disk, exactly like a real mid-write death.
    const std::size_t half = envelopeBytes.size() / 2;
    out.write(reinterpret_cast<const char*>(envelopeBytes.data()),
              static_cast<std::streamsize>(half));
    out.flush();
    if (probe) probe("tmp-partial");
    out.write(reinterpret_cast<const char*>(envelopeBytes.data() + half),
              static_cast<std::streamsize>(envelopeBytes.size() - half));
    if (!out)
      throw std::runtime_error("recovery: short write " + tmpPath.string());
  }
  if (probe) probe("tmp-complete");
  // Atomic on POSIX: readers see either the old bundle or the new one,
  // never a prefix.
  fs::rename(tmpPath, finalPath);
  if (probe) probe("bundle-renamed");
}

CheckpointWriter::CheckpointWriter(std::string directory, KillProbe probe)
    : directory_(std::move(directory)), probe_(std::move(probe)) {
  fs::create_directories(directory_);
  // Repair a torn manifest tail: without the trailing newline, the next
  // append would merge into the torn line and corrupt a second entry.
  const fs::path manifestPath = fs::path(directory_) / kManifestName;
  std::error_code ec;
  const auto size = fs::file_size(manifestPath, ec);
  if (!ec && size > 0) {
    std::ifstream in(manifestPath, std::ios::binary);
    in.seekg(static_cast<std::streamoff>(size) - 1);
    char last = '\n';
    in.get(last);
    if (last != '\n') {
      std::ofstream out(manifestPath, std::ios::binary | std::ios::app);
      out << '\n';
    }
  }
}

void CheckpointWriter::probe(std::string_view point) const {
  if (probe_) probe_(point);
}

void CheckpointWriter::checkpoint(std::uint64_t jobIndex,
                                  const core::ApkLossAccount& account,
                                  const core::RunArtifacts& artifacts) {
  probe("begin");
  const auto bytes = core::SpabEnvelope::encode(jobIndex, account, artifacts);
  writeSpabAtomic(directory_, artifacts.apkSha256, bytes, probe_);
  {
    const std::scoped_lock lock(manifestMutex_);
    std::ofstream manifest(fs::path(directory_) / kManifestName,
                           std::ios::binary | std::ios::app);
    if (!manifest)
      throw std::runtime_error("recovery: cannot append manifest in " +
                               directory_);
    // The line lands in two flushes with a kill point between them; the
    // trailing "ok" token is the completeness marker a torn line lacks.
    manifest << jobIndex << ' ' << artifacts.apkSha256 << ' ';
    manifest.flush();
    probe("manifest-partial");
    manifest << "ok\n";
  }
  probe("done");
}

namespace {

struct ManifestEntry {
  std::uint64_t jobIndex = 0;
  std::string sha;
};

/// Parse the manifest, tolerating a torn tail: a well-formed line is
/// `<jobIndex> <sha> ok` and newline-terminated; anything else counts as
/// torn (the bundle files stay authoritative either way).
void parseManifest(const fs::path& path, std::vector<ManifestEntry>& entries,
                   std::size_t& torn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t newline = content.find('\n', start);
    const bool terminated = newline != std::string::npos;
    const std::string line = content.substr(
        start, (terminated ? newline : content.size()) - start);
    start = terminated ? newline + 1 : content.size();
    if (line.empty()) continue;

    ManifestEntry entry;
    std::string marker, extra;
    std::istringstream fields(line);
    if (terminated && (fields >> entry.jobIndex >> entry.sha >> marker) &&
        marker == "ok" && !(fields >> extra)) {
      entries.push_back(std::move(entry));
    } else {
      ++torn;
    }
  }
}

}  // namespace

std::size_t compactCheckpointDirectory(const std::string& directory) {
  const fs::path root(directory);
  if (!fs::exists(root)) return 0;

  std::size_t removed = 0;
  std::vector<fs::path> bundles;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto extension = entry.path().extension();
    if (extension == ".tmp") {
      std::error_code ec;
      fs::remove(entry.path(), ec);
      if (!ec) ++removed;
    } else if (extension == ".spab") {
      bundles.push_back(entry.path());
    }
  }
  std::sort(bundles.begin(), bundles.end());

  // The bundles on disk are authoritative; the rebuilt manifest lists
  // exactly the valid indexed ones, sorted by job index.
  std::vector<ManifestEntry> kept;
  for (const auto& path : bundles) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    if (!core::SpabEnvelope::looksFramed(bytes)) continue;
    try {
      core::SpabEnvelope envelope = core::SpabEnvelope::decode(bytes);
      if (envelope.jobIndex == core::SpabEnvelope::kNoJobIndex) continue;
      kept.push_back({envelope.jobIndex, envelope.artifacts.apkSha256});
    } catch (const util::DecodeError&) {
      // Corrupt bundle: StudyRecovery::scan quarantines; compaction only
      // drops its manifest line.
    }
  }
  std::sort(kept.begin(), kept.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.jobIndex < b.jobIndex;
            });

  std::vector<ManifestEntry> oldEntries;
  std::size_t torn = 0;
  const fs::path manifestPath = root / CheckpointWriter::kManifestName;
  parseManifest(manifestPath, oldEntries, torn);
  const std::size_t oldLines = oldEntries.size() + torn;
  removed += oldLines > kept.size() ? oldLines - kept.size() : 0;

  const fs::path tmpManifest = root / "manifest.spmf.compact.tmp";
  {
    std::ofstream out(tmpManifest, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("recovery: cannot write " +
                               tmpManifest.string());
    for (const auto& entry : kept)
      out << entry.jobIndex << ' ' << entry.sha << " ok\n";
  }
  fs::rename(tmpManifest, manifestPath);

  util::logInfo("recovery: compacted %s -> %zu manifest lines, %zu stale "
                "items removed",
                directory.c_str(), kept.size(), removed);
  return removed;
}

RecoveryReport StudyRecovery::scan(const std::string& directory) {
  RecoveryReport report;
  const fs::path root(directory);
  if (!fs::exists(root)) return report;

  const fs::path quarantineDir = root / kQuarantineDir;
  std::vector<fs::path> tmpFiles;
  std::vector<fs::path> bundles;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto extension = entry.path().extension();
    if (extension == ".tmp")
      tmpFiles.push_back(entry.path());
    else if (extension == ".spab")
      bundles.push_back(entry.path());
  }
  // Deterministic scan order → reproducible recovery logs and reports.
  std::sort(tmpFiles.begin(), tmpFiles.end());
  std::sort(bundles.begin(), bundles.end());

  // A .tmp is by construction an incomplete write: the rename never
  // happened, so the run it belonged to was not checkpointed. Delete it.
  for (const auto& path : tmpFiles) {
    std::error_code ec;
    fs::remove(path, ec);
    if (!ec) ++report.tmpFilesRemoved;
  }

  const auto quarantine = [&](const fs::path& path, const std::string& error) {
    std::error_code ec;
    fs::create_directories(quarantineDir, ec);
    fs::rename(path, quarantineDir / path.filename(), ec);
    report.quarantined.push_back({path.filename().string(), error});
    util::logWarn("recovery: quarantined %s: %s",
                  path.filename().string().c_str(), error.c_str());
  };

  std::unordered_set<std::string> validShas;
  std::unordered_set<std::size_t> seenIndices;
  for (const auto& path : bundles) {
    std::vector<std::uint8_t> bytes;
    try {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw std::runtime_error("cannot open");
      bytes.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
    } catch (const std::exception& error) {
      quarantine(path, error.what());
      continue;
    }

    if (!core::SpabEnvelope::looksFramed(bytes)) {
      // A legacy (pre-envelope) bundle that still decodes is valid data,
      // just not replayable: it carries no job index. Leave it in place.
      try {
        (void)core::RunArtifacts::deserialize(bytes);
        ++report.unindexedBundles;
      } catch (const util::DecodeError& error) {
        quarantine(path, error.what());
      }
      continue;
    }

    core::SpabEnvelope envelope;
    try {
      envelope = core::SpabEnvelope::decode(bytes);
    } catch (const util::DecodeError& error) {
      quarantine(path, error.what());
      continue;
    }
    if (envelope.jobIndex == core::SpabEnvelope::kNoJobIndex) {
      ++report.unindexedBundles;
      continue;
    }
    const auto jobIndex = static_cast<std::size_t>(envelope.jobIndex);
    if (!seenIndices.insert(jobIndex).second) {
      quarantine(path, "duplicate job index " + std::to_string(jobIndex));
      continue;
    }
    validShas.insert(envelope.artifacts.apkSha256);
    report.runs.push_back({jobIndex, envelope.account,
                           std::move(envelope.artifacts)});
  }
  std::sort(report.runs.begin(), report.runs.end(),
            [](const RecoveredRun& a, const RecoveredRun& b) {
              return a.jobIndex < b.jobIndex;
            });

  std::vector<ManifestEntry> entries;
  parseManifest(root / CheckpointWriter::kManifestName, entries,
                report.manifestTornLines);
  report.manifestEntries = entries.size();
  for (const auto& entry : entries)
    if (!validShas.contains(entry.sha)) ++report.manifestMissingBundles;

  util::logInfo(
      "recovery: %s -> %zu runs replayable, %zu quarantined, %zu torn tmp "
      "removed, manifest %zu entries (%zu torn, %zu missing bundles)",
      directory.c_str(), report.runs.size(), report.quarantined.size(),
      report.tmpFilesRemoved, report.manifestEntries,
      report.manifestTornLines, report.manifestMissingBundles);
  return report;
}

}  // namespace libspector::orch
