#include "dex/type_signature.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace libspector::dex {

namespace {

/// Consume one smali type descriptor starting at `pos`; returns the position
/// past it, or npos on malformed input.
std::size_t consumeDescriptor(std::string_view body, std::size_t pos) {
  while (pos < body.size() && body[pos] == '[') ++pos;  // array dimensions
  if (pos >= body.size()) return std::string_view::npos;
  switch (body[pos]) {
    case 'V': case 'Z': case 'B': case 'S': case 'C':
    case 'I': case 'J': case 'F': case 'D':
      return pos + 1;
    case 'L': {
      const std::size_t end = body.find(';', pos);
      if (end == std::string_view::npos) return std::string_view::npos;
      return end + 1;
    }
    default:
      return std::string_view::npos;
  }
}

std::string slashToDot(std::string_view s) {
  std::string out(s);
  std::replace(out.begin(), out.end(), '/', '.');
  return out;
}

std::string dotToSlash(std::string_view s) {
  std::string out(s);
  std::replace(out.begin(), out.end(), '.', '/');
  return out;
}

}  // namespace

std::optional<std::vector<std::string>> splitTypeDescriptors(
    std::string_view body) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t end = consumeDescriptor(body, pos);
    if (end == std::string_view::npos) return std::nullopt;
    out.emplace_back(body.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

namespace {

/// Structural split shared by parse() and parseSignatureView(): locates the
/// class/name/param/return components and validates everything that does not
/// require materializing the parameter list.
struct SignatureParts {
  std::string_view classPart;
  std::string_view name;
  std::string_view paramBody;
  std::string_view retBody;
};

std::optional<SignatureParts> splitSignature(std::string_view smali) noexcept {
  // Lpkg/Class;->name(params)ret
  if (smali.empty() || smali.front() != 'L') return std::nullopt;
  const std::size_t arrow = smali.find(";->");
  if (arrow == std::string_view::npos) return std::nullopt;
  SignatureParts parts;
  parts.classPart = smali.substr(1, arrow - 1);
  if (parts.classPart.empty()) return std::nullopt;

  const std::size_t pos = arrow + 3;
  const std::size_t paren = smali.find('(', pos);
  if (paren == std::string_view::npos || paren == pos) return std::nullopt;
  parts.name = smali.substr(pos, paren - pos);

  const std::size_t closeParen = smali.find(')', paren);
  if (closeParen == std::string_view::npos) return std::nullopt;
  parts.paramBody = smali.substr(paren + 1, closeParen - paren - 1);

  parts.retBody = smali.substr(closeParen + 1);
  if (parts.retBody.empty()) return std::nullopt;
  if (consumeDescriptor(parts.retBody, 0) != parts.retBody.size())
    return std::nullopt;
  return parts;
}

/// Validate a parameter list body without allocating the descriptor vector.
bool validTypeDescriptors(std::string_view body) noexcept {
  std::size_t pos = 0;
  while (pos < body.size()) {
    pos = consumeDescriptor(body, pos);
    if (pos == std::string_view::npos) return false;
  }
  return true;
}

}  // namespace

std::optional<TypeSignature> TypeSignature::parse(std::string_view smali) {
  const auto parts = splitSignature(smali);
  if (!parts) return std::nullopt;
  auto params = splitTypeDescriptors(parts->paramBody);
  if (!params) return std::nullopt;
  return TypeSignature(slashToDot(parts->classPart), std::string(parts->name),
                       std::move(*params), std::string(parts->retBody));
}

std::optional<SignatureView> parseSignatureView(std::string_view smali) noexcept {
  const auto parts = splitSignature(smali);
  if (!parts || !validTypeDescriptors(parts->paramBody)) return std::nullopt;
  return SignatureView{parts->classPart, parts->name};
}

TypeSignature::TypeSignature(std::string dottedClass, std::string methodName,
                             std::vector<std::string> paramTypes,
                             std::string returnType)
    : dottedClass_(std::move(dottedClass)),
      methodName_(std::move(methodName)),
      paramTypes_(std::move(paramTypes)),
      returnType_(std::move(returnType)) {}

std::string TypeSignature::smali() const {
  std::string out = "L" + dotToSlash(dottedClass_) + ";->" + methodName_ + "(";
  for (const auto& p : paramTypes_) out += p;
  out += ")" + returnType_;
  return out;
}

std::string TypeSignature::packagePath() const {
  const std::size_t lastDot = dottedClass_.rfind('.');
  if (lastDot == std::string::npos) return {};
  return dottedClass_.substr(0, lastDot);
}

std::string TypeSignature::frameName() const {
  return dottedClass_ + "." + methodName_;
}

std::string packageOfFrameName(std::string_view frame) {
  // Strip method name, then class name.
  std::size_t dot = frame.rfind('.');
  if (dot == std::string_view::npos) return {};
  frame = frame.substr(0, dot);
  dot = frame.rfind('.');
  if (dot == std::string_view::npos) return {};
  return std::string(frame.substr(0, dot));
}

}  // namespace libspector::dex
