#include "dex/apk.hpp"

#include <algorithm>

#include "util/bytes.hpp"

namespace libspector::dex {

namespace {
constexpr std::uint32_t kMagic = 0x4b504153;  // "SAPK"
constexpr std::uint16_t kVersion = 1;

/// The single serialization walk, shared by serialize() (Writer =
/// ByteWriter, materializes the bytes) and sha256() (Writer =
/// Sha256Writer, streams the same encoding straight into the digest with
/// no buffer). Keeping one walk is what guarantees the two stay the same
/// byte stream.
template <class Writer>
void writeApk(const ApkFile& apk, Writer& w) {
  w.u32(kMagic);
  w.u16(kVersion);
  w.str(apk.packageName);
  w.str(apk.appCategory);
  w.u32(apk.versionCode);
  w.u64(apk.dexTimestamp);
  w.u64(apk.vtScanDate);
  w.u32(static_cast<std::uint32_t>(apk.abis.size()));
  for (const auto& abi : apk.abis) w.str(abi);
  w.u32(static_cast<std::uint32_t>(apk.dexFiles.size()));
  for (const auto& dex : apk.dexFiles) {
    w.u32(static_cast<std::uint32_t>(dex.classes.size()));
    for (const auto& cls : dex.classes) {
      w.str(cls.dottedName);
      w.u32(static_cast<std::uint32_t>(cls.methods.size()));
      for (const auto& m : cls.methods) w.str(m.signature);
    }
  }
}
}  // namespace

std::size_t DexFile::methodCount() const noexcept {
  std::size_t n = 0;
  for (const auto& cls : classes) n += cls.methods.size();
  return n;
}

std::size_t ApkFile::totalMethodCount() const noexcept {
  std::size_t n = 0;
  for (const auto& dex : dexFiles) n += dex.methodCount();
  return n;
}

bool ApkFile::isX86Compatible() const noexcept {
  if (abis.empty()) return true;  // pure-Java apk runs everywhere
  return std::any_of(abis.begin(), abis.end(), [](const std::string& abi) {
    return abi == "x86" || abi == "x86_64";
  });
}

std::vector<std::uint8_t> ApkFile::serialize() const {
  util::ByteWriter w;
  writeApk(*this, w);
  return w.take();
}

ApkFile ApkFile::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.u32() != kMagic) throw util::DecodeError("ApkFile: bad magic");
  if (r.u16() != kVersion) throw util::DecodeError("ApkFile: unsupported version");
  ApkFile apk;
  apk.packageName = r.str();
  apk.appCategory = r.str();
  apk.versionCode = r.u32();
  apk.dexTimestamp = r.u64();
  apk.vtScanDate = r.u64();
  const std::uint32_t abiCount = r.countCheck(r.u32(), 4);
  apk.abis.reserve(abiCount);
  for (std::uint32_t i = 0; i < abiCount; ++i) apk.abis.push_back(r.str());
  const std::uint32_t dexCount = r.countCheck(r.u32(), 4);
  apk.dexFiles.reserve(dexCount);
  for (std::uint32_t i = 0; i < dexCount; ++i) {
    DexFile dex;
    const std::uint32_t classCount = r.countCheck(r.u32(), 8);
    dex.classes.reserve(classCount);
    for (std::uint32_t c = 0; c < classCount; ++c) {
      ClassDef cls;
      cls.dottedName = r.str();
      const std::uint32_t methodCount = r.countCheck(r.u32(), 4);
      cls.methods.reserve(methodCount);
      for (std::uint32_t m = 0; m < methodCount; ++m)
        cls.methods.push_back({r.str()});
      dex.classes.push_back(std::move(cls));
    }
    apk.dexFiles.push_back(std::move(dex));
  }
  if (!r.atEnd()) throw util::DecodeError("ApkFile: trailing bytes");
  return apk;
}

util::Sha256Digest ApkFile::sha256() const {
  util::Sha256Writer w;
  writeApk(*this, w);
  return w.finish();
}

}  // namespace libspector::dex
