// Apk / dex object model (paper §III-A, §III-B).
//
// An ApkFile bundles package metadata (Play category, version, dex
// timestamp, VirusTotal scan date, supported ABIs) with one or more DexFile
// class tables.  The binary serialization stands in for the real apk bytes:
// it is what the Socket Supervisor hashes (sha256) to tag UDP reports and
// what the AndroZoo-style corpus stores.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/sha256.hpp"

namespace libspector::dex {

/// Default dex timestamp found in apks whose toolchain zeroed it:
/// 1980-01-01T00:00:00Z as seconds since the Unix epoch (paper §III-A).
inline constexpr std::uint64_t kDefaultDexTimestamp = 315532800;

struct MethodDef {
  /// Full smali type signature, e.g. "Lcom/foo/Bar;->baz(I)V".
  std::string signature;

  [[nodiscard]] bool operator==(const MethodDef&) const = default;
};

struct ClassDef {
  /// Dotted class name including inner classes, e.g. "com.foo.Bar$1".
  std::string dottedName;
  std::vector<MethodDef> methods;

  [[nodiscard]] bool operator==(const ClassDef&) const = default;
};

struct DexFile {
  std::vector<ClassDef> classes;

  [[nodiscard]] std::size_t methodCount() const noexcept;
  [[nodiscard]] bool operator==(const DexFile&) const = default;
};

class ApkFile {
 public:
  std::string packageName;            // e.g. "com.example.game"
  std::string appCategory;            // Play category, e.g. "GAME_ACTION"
  std::uint32_t versionCode = 1;
  std::uint64_t dexTimestamp = kDefaultDexTimestamp;  // seconds since epoch
  std::uint64_t vtScanDate = 0;       // 0 = never scanned by VirusTotal
  std::vector<std::string> abis;      // e.g. {"x86", "armeabi-v7a"}
  std::vector<DexFile> dexFiles;

  /// Total methods across all dex files (denominator of method coverage).
  [[nodiscard]] std::size_t totalMethodCount() const noexcept;

  /// True when the apk ships at least one x86-compatible ABI or is
  /// pure-Java (no native libraries at all). Libspector filters out
  /// ARM-only apps (paper §III-A).
  [[nodiscard]] bool isX86Compatible() const noexcept;

  /// Deterministic binary serialization (the stand-in for apk bytes).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static ApkFile deserialize(std::span<const std::uint8_t> bytes);

  /// sha256 over the serialized bytes; the identity used everywhere else.
  /// Computed in one streaming serialization walk (util::Sha256Writer), so
  /// the full byte buffer is never materialized just to hash it.
  [[nodiscard]] util::Sha256Digest sha256() const;

  [[nodiscard]] bool operator==(const ApkFile&) const = default;
};

}  // namespace libspector::dex
