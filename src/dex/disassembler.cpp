#include "dex/disassembler.hpp"

namespace libspector::dex {

std::vector<std::string> allMethodSignatures(const ApkFile& apk) {
  std::vector<std::string> out;
  out.reserve(apk.totalMethodCount());
  for (const auto& dex : apk.dexFiles)
    for (const auto& cls : dex.classes)
      for (const auto& m : cls.methods) out.push_back(m.signature);
  return out;
}

FrameTranslationTable::FrameTranslationTable(const ApkFile& apk) {
  for (const auto& dex : apk.dexFiles) {
    for (const auto& cls : dex.classes) {
      for (const auto& m : cls.methods) {
        auto sig = TypeSignature::parse(m.signature);
        if (!sig) continue;  // tolerate malformed entries like real dex tools
        table_[sig->frameName()].push_back(m.signature);
      }
    }
  }
}

const std::vector<std::string>& FrameTranslationTable::lookup(
    const std::string& frameName) const {
  static const std::vector<std::string> kEmpty;
  const auto it = table_.find(frameName);
  return it == table_.end() ? kEmpty : it->second;
}

}  // namespace libspector::dex
