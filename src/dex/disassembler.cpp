#include "dex/disassembler.hpp"

namespace libspector::dex {

std::vector<std::string> allMethodSignatures(const ApkFile& apk) {
  std::vector<std::string> out;
  out.reserve(apk.totalMethodCount());
  for (const auto& dex : apk.dexFiles)
    for (const auto& cls : dex.classes)
      for (const auto& m : cls.methods) out.push_back(m.signature);
  return out;
}

FrameTranslationTable::FrameTranslationTable(const ApkFile& apk) {
  for (const auto& dex : apk.dexFiles) {
    for (const auto& cls : dex.classes) {
      for (const auto& m : cls.methods) {
        auto sig = TypeSignature::parse(m.signature);
        if (!sig) continue;  // tolerate malformed entries like real dex tools
        table_[sig->frameName()].push_back(m.signature);
      }
    }
  }
}

const std::vector<std::string>& FrameTranslationTable::lookup(
    const std::string& frameName) const {
  static const std::vector<std::string> kEmpty;
  const auto it = table_.find(frameName);
  return it == table_.end() ? kEmpty : it->second;
}

FrameTableCache::FrameTableCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const FrameTranslationTable> FrameTableCache::tableFor(
    const std::string& apkSha256, const ApkFile& apk) {
  {
    const std::scoped_lock lock(mutex_);
    const auto it = entries_.find(apkSha256);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lruPosition);
      return it->second.table;
    }
    ++stats_.misses;
  }

  // Build outside the lock: a paper-scale apk is tens of thousands of
  // signature parses, and serializing the whole fleet through one mutex
  // would undo the dispatcher's parallelism. Two workers racing on the
  // same digest build twice and the loser's copy is dropped — cheap and
  // rare next to blocking every other worker on every miss.
  auto table = std::make_shared<const FrameTranslationTable>(apk);

  const std::scoped_lock lock(mutex_);
  const auto it = entries_.find(apkSha256);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lruPosition);
    return it->second.table;
  }
  lru_.push_front(apkSha256);
  entries_.emplace(apkSha256, Entry{table, lru_.begin()});
  if (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  return table;
}

FrameTableCache::Stats FrameTableCache::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

std::size_t FrameTableCache::size() const {
  const std::scoped_lock lock(mutex_);
  return entries_.size();
}

}  // namespace libspector::dex
