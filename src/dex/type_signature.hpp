// Smali method type signatures (paper §III-C, footnote 1).
//
// A type signature is the unique identifier of a method inside an apk:
//   Lpackage/name/className$innerClassName;->methodName(inputTypes)returnType
// e.g. Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/String;)Ljava/lang/Object;
//
// The Socket Supervisor translates stack frames into type signatures so the
// offline pipeline can distinguish overloaded variants of a method and
// extract the package hierarchy the attribution heuristics operate on.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace libspector::dex {

/// A parsed smali method type signature.
class TypeSignature {
 public:
  /// Parse a smali signature; returns std::nullopt on malformed input.
  [[nodiscard]] static std::optional<TypeSignature> parse(std::string_view smali);

  /// Build from components. `dottedClass` is e.g. "com.foo.Bar$Inner";
  /// parameter and return types are smali type descriptors ("I", "[B",
  /// "Ljava/lang/String;", ...).
  TypeSignature(std::string dottedClass, std::string methodName,
                std::vector<std::string> paramTypes, std::string returnType);

  /// Render back to the smali form.
  [[nodiscard]] std::string smali() const;

  /// "com.foo.Bar$Inner" — fully qualified class including inner classes.
  [[nodiscard]] const std::string& dottedClass() const noexcept { return dottedClass_; }

  /// "com.foo" — package path (class name and inner classes stripped).
  [[nodiscard]] std::string packagePath() const;

  /// "com.foo.Bar$Inner.method" — the form a Java stack-trace frame prints.
  [[nodiscard]] std::string frameName() const;

  [[nodiscard]] const std::string& methodName() const noexcept { return methodName_; }
  [[nodiscard]] const std::vector<std::string>& paramTypes() const noexcept {
    return paramTypes_;
  }
  [[nodiscard]] const std::string& returnType() const noexcept { return returnType_; }

  [[nodiscard]] bool operator==(const TypeSignature&) const = default;

 private:
  std::string dottedClass_;
  std::string methodName_;
  std::vector<std::string> paramTypes_;
  std::string returnType_;
};

/// Zero-allocation structural view of a smali signature: the slash-separated
/// class part and the method name, pointing into the input. Validated with
/// exactly TypeSignature::parse's rules (same inputs succeed and fail), but
/// without materializing any component — the attribution hot path uses this
/// to filter built-in frames and derive packages with no heap traffic.
struct SignatureView {
  std::string_view slashedClass;  // "com/unity3d/ads/android/cache/b"
  std::string_view methodName;    // "doInBackground"
};

/// Parse `smali` into a SignatureView; std::nullopt on malformed input
/// (accepts and rejects exactly what TypeSignature::parse does).
[[nodiscard]] std::optional<SignatureView> parseSignatureView(
    std::string_view smali) noexcept;

/// Split a smali parameter list body ("[Ljava/lang/String;IZ") into
/// individual type descriptors. Returns std::nullopt on malformed input.
[[nodiscard]] std::optional<std::vector<std::string>> splitTypeDescriptors(
    std::string_view body);

/// Extract the package path from a frame name such as
/// "com.unity3d.ads.android.cache.b.doInBackground". The last component is
/// the method, the one before it the class; everything earlier is the
/// package. Heuristic used by the offline pipeline when a full signature is
/// unavailable.
[[nodiscard]] std::string packageOfFrameName(std::string_view frame);

}  // namespace libspector::dex
