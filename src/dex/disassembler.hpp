// Dex disassembly (the dexlib2 role, paper §III-B).
//
// The Method Monitor needs the full set of method type signatures contained
// in an apk to compute coverage; the Socket Supervisor needs a map from
// stack-frame names to type signatures to translate traces.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dex/apk.hpp"
#include "dex/type_signature.hpp"

namespace libspector::dex {

/// All method type signatures in the apk, in dex order.
[[nodiscard]] std::vector<std::string> allMethodSignatures(const ApkFile& apk);

/// Map from frame name ("com.foo.Bar.baz") to the type signatures of its
/// overloads, as a Java stack frame does not carry parameter types.
/// Signatures for one frame name keep dex order.
class FrameTranslationTable {
 public:
  explicit FrameTranslationTable(const ApkFile& apk);

  /// Signatures of all overloads behind a frame name; empty when the frame
  /// does not belong to the apk (e.g. a framework method).
  [[nodiscard]] const std::vector<std::string>& lookup(
      const std::string& frameName) const;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

 private:
  std::unordered_map<std::string, std::vector<std::string>> table_;
};

/// Thread-safe LRU cache of FrameTranslationTables keyed on apk digest.
///
/// Building the table is a full walk of the apk's class tables (tens of
/// thousands of signature parses for a paper-scale apk); the Socket
/// Supervisor used to rebuild it on every app load. The dispatcher owns
/// one cache for the whole fleet, so repeated runs of the same apk —
/// resume re-runs, retries, benches, policy re-checks — parse the dex
/// once. Keying on the content digest (not package/version) makes a stale
/// hit impossible: same digest, same bytes, same table.
class FrameTableCache {
 public:
  explicit FrameTableCache(std::size_t capacity = 256);

  /// The table for `apk`, built on miss. `apkSha256` is the hex digest of
  /// the apk's serialized bytes (the caller already has it — computing it
  /// here would defeat the digest memoization this cache rides on).
  [[nodiscard]] std::shared_ptr<const FrameTranslationTable> tableFor(
      const std::string& apkSha256, const ApkFile& apk);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const FrameTranslationTable> table;
    std::list<std::string>::iterator lruPosition;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<std::string> lru_;  // front = most recently used digest
  std::unordered_map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace libspector::dex
