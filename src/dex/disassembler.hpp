// Dex disassembly (the dexlib2 role, paper §III-B).
//
// The Method Monitor needs the full set of method type signatures contained
// in an apk to compute coverage; the Socket Supervisor needs a map from
// stack-frame names to type signatures to translate traces.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "dex/apk.hpp"
#include "dex/type_signature.hpp"

namespace libspector::dex {

/// All method type signatures in the apk, in dex order.
[[nodiscard]] std::vector<std::string> allMethodSignatures(const ApkFile& apk);

/// Map from frame name ("com.foo.Bar.baz") to the type signatures of its
/// overloads, as a Java stack frame does not carry parameter types.
/// Signatures for one frame name keep dex order.
class FrameTranslationTable {
 public:
  explicit FrameTranslationTable(const ApkFile& apk);

  /// Signatures of all overloads behind a frame name; empty when the frame
  /// does not belong to the apk (e.g. a framework method).
  [[nodiscard]] const std::vector<std::string>& lookup(
      const std::string& frameName) const;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

 private:
  std::unordered_map<std::string, std::vector<std::string>> table_;
};

}  // namespace libspector::dex
