// Sharded streaming ingest router (the scale path the ROADMAP's
// "heavy traffic from millions of users" goal demands).
//
// The legacy orch::CollectionServer funnels every emulator worker through
// one mutex-guarded map and silently absorbs whatever UDP did to the
// datagrams in flight. ShardedIngest replaces that hot path:
//
//  - every datagram carries the core::ReportFrame framing (worker id,
//    per-run sequence number, crc32), so loss, duplication, reordering and
//    corruption are *detected and accounted per apk* instead of vanishing;
//  - datagrams are routed to a shard by the frame header's apk routing key
//    (no payload decode on the producer path) and enqueued on a bounded
//    per-shard queue with an explicit backpressure policy;
//  - a consumer thread per shard decodes, deduplicates and folds frames
//    into per-apk state, and finalizes runs as their artifacts arrive —
//    because routing is by apk checksum, a run's datagrams and its
//    completion serialize through the same shard queue, so no cross-shard
//    coordination is ever needed.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/artifacts.hpp"
#include "core/report.hpp"
#include "ingest/metrics.hpp"
#include "ingest/sink.hpp"

namespace libspector::ingest {

struct IngestConfig {
  /// 0 = one shard per hardware thread.
  std::size_t shards = 1;
  /// Bounded per-shard queue capacity (items).
  std::size_t queueCapacity = 4096;
  /// What a producer does when its shard queue is full. Block applies
  /// backpressure to the caller; DropNewest sheds the datagram and counts
  /// it (run completions are never shed — they block in either mode).
  enum class Backpressure { Block, DropNewest };
  Backpressure backpressure = Backpressure::Block;
  /// Cap on per-shard pending apks (datagrams for apks no run ever claims
  /// must not accumulate forever); the oldest pending apk is evicted and
  /// counted when exceeded.
  std::size_t maxPendingApks = 4096;
  /// Sliding window of per-shard ingest latency samples kept for the
  /// metrics percentiles.
  std::size_t latencyWindow = 8192;
};

/// Exact per-apk delivery account over the best-effort channel (lives in
/// core so persisted `.spab` envelopes can carry it across a crash).
using ApkLossAccount = core::ApkLossAccount;

/// A finalized run: its artifacts (reports replaced by the delivered,
/// deduplicated, sequence-ordered set when the report channel was live)
/// plus the loss account.
struct RunDelivery {
  std::size_t jobIndex = 0;
  core::RunArtifacts artifacts;
  ApkLossAccount account;
  /// True when this run was re-injected from a persisted bundle rather
  /// than finalized off the live channel (recovery must not re-checkpoint).
  bool replayed = false;
};

class ShardedIngest final : public ReportSink {
 public:
  /// Invoked on the owning shard's consumer thread for each finalized run;
  /// heavy work here (attribution) is the intended use — it parallelizes
  /// across shards and backpressures producers via the bounded queue.
  using RunCallback = std::function<void(RunDelivery&&)>;

  explicit ShardedIngest(IngestConfig config = {}, RunCallback onRun = {});
  /// Drains the queues and joins the consumers. Producers must have
  /// quiesced (a producer blocked on a full queue would never wake).
  ~ShardedIngest() override;

  ShardedIngest(const ShardedIngest&) = delete;
  ShardedIngest& operator=(const ShardedIngest&) = delete;

  /// Route one framed datagram (any thread). Malformed datagrams are
  /// counted and dropped.
  void submitDatagram(std::span<const std::uint8_t> payload) override;

  /// Mark `artifacts`'s run complete (any thread). The shard folds the
  /// delivered reports into the artifacts, computes the loss account and
  /// hands the RunDelivery to the run callback.
  void submitRun(std::size_t jobIndex, core::RunArtifacts&& artifacts);

  /// Re-inject a recovered run (any thread): the bundle's reports are
  /// already the finalized delivered set and `account` is its persisted
  /// loss account, so the shard skips report folding and hands the run —
  /// flagged replayed — straight to the run callback, preserving the
  /// original delivery/loss numbers in the shard counters.
  void submitReplay(std::size_t jobIndex, core::RunArtifacts&& artifacts,
                    const ApkLossAccount& account);

  /// Block until every queued item has been consumed and all run callbacks
  /// have returned. Call after producers quiesce, before reading results.
  void drain();

  /// Remove and return the pending (unclaimed-by-a-run) reports for an apk,
  /// deduplicated and sequence-ordered. Only frames already consumed are
  /// visible — drain() first for a complete view.
  [[nodiscard]] std::vector<core::UdpReport> takeReports(
      const std::string& apkSha256);

  /// Drop one apk's pending state outright (the admin evict op): its
  /// delivered-but-unclaimed reports, parked holes and dictionaries are
  /// discarded and counted under the eviction counters. Returns true when
  /// the apk had pending state.
  bool evictPending(const std::string& apkSha256);

  [[nodiscard]] IngestMetrics metrics() const;
  [[nodiscard]] std::size_t shardCount() const noexcept { return shards_.size(); }
  /// Shard an apk checksum routes to (exposed for tests and benches).
  [[nodiscard]] std::size_t shardOf(const std::string& apkSha256) const;

 private:
  struct RunTask {
    std::size_t jobIndex = 0;
    core::RunArtifacts artifacts;
    bool replay = false;
    ApkLossAccount account;  // only meaningful when replay is set
  };

  struct Item {
    // Exactly one of frameBytes / run is set.
    std::vector<std::uint8_t> frameBytes;
    core::ReportFrame::Header header;
    std::unique_ptr<RunTask> run;
    std::chrono::steady_clock::time_point enqueuedAt;
  };

  struct WorkerSeq {
    std::uint64_t maxSeq = 0;
    bool any = false;
  };

  /// A delivered v3 frame whose signature ids are not all defined yet
  /// (the frame carrying the definition was lost or reordered behind it).
  /// Everything but the stack is known; the id list waits for defs.
  struct CompactReport {
    core::UdpReport base;  // stackSignatures empty until resolved
    std::vector<std::uint32_t> sigIds;
  };

  struct PendingApk {
    /// Delivered reports keyed (workerId, sequence): the map both
    /// deduplicates and restores send order.
    std::map<std::pair<std::uint32_t, std::uint64_t>, core::UdpReport> reports;
    /// v3 frames parked until their dictionary entries arrive. Disjoint
    /// from `reports`; dedup spans both.
    std::map<std::pair<std::uint32_t, std::uint64_t>, CompactReport> holes;
    /// Per-worker signature dictionary folded from v3 frame defs.
    std::unordered_map<std::uint32_t,
                       std::unordered_map<std::uint32_t, std::string>>
        dicts;
    std::unordered_map<std::uint32_t, WorkerSeq> workers;
    std::uint64_t framesDelivered = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t outOfOrder = 0;
    std::list<std::string>::iterator orderIt;  // position in Shard::order
  };

  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable_any notEmpty;
    std::condition_variable_any notFull;
    std::condition_variable_any drained;
    std::deque<Item> queue;
    bool busy = false;

    std::unordered_map<std::string, PendingApk> pending;
    std::list<std::string> order;  // pending apks, oldest first

    ShardMetrics counters;
    std::vector<double> latencyMs;  // ring buffer
    std::size_t latencyNext = 0;
    std::uint64_t latencyTotal = 0;
    double busyMs = 0.0;

    std::jthread consumer;  // last: joins before the rest is destroyed
  };

  void enqueue(Shard& shard, Item&& item, bool droppable);
  void consumeLoop(std::stop_token stop, Shard& shard);
  void foldFrame(Shard& shard, const Item& item);
  void foldDictFrame(Shard& shard, const Item& item);
  void finalizeRun(Shard& shard, RunTask&& task);
  /// Dedup + worker-sequence bookkeeping shared by the v1 and v3 fold
  /// paths. Returns false when (workerId, sequence) was already delivered
  /// (as a report or a hole). Requires shard.mutex held.
  bool recordArrivalLocked(Shard& shard, PendingApk& apk,
                           std::uint32_t workerId, std::uint64_t sequence);
  /// Resolve any of `workerId`'s parked frames the dictionary now covers.
  /// Requires shard.mutex held.
  void resolveHolesLocked(Shard& shard, PendingApk& apk,
                          std::uint32_t workerId);
  /// Last-resort hole repair at run finalization: heal from the emulator's
  /// locally recorded report list (complete and sequence-ordered), each
  /// candidate verified against the hole's delivered metadata. Unrepairable
  /// holes are dropped and counted. Requires shard.mutex held.
  void repairHolesFromLocalLocked(Shard& shard, PendingApk& apk,
                                  const core::RunArtifacts& artifacts);
  /// Requires shard.mutex held.
  void evictIfOverCapacityLocked(Shard& shard);

  IngestConfig config_;
  RunCallback onRun_;
  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::chrono::steady_clock::time_point startedAt_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace libspector::ingest
