// Deterministic fault injection for the report channel.
//
// UDP loses, duplicates and reorders datagrams; the network simulator only
// models loss (StackConfig::udpLossProb). ChaosChannel sits between a
// producer and any ReportSink and injects all three, seeded, so tests and
// benches can assert the ingest tier's loss accounting *exactly*.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "ingest/sink.hpp"
#include "util/rng.hpp"

namespace libspector::ingest {

struct ChaosConfig {
  double lossProb = 0.0;
  double dupProb = 0.0;
  /// Datagrams are buffered and released in random order once the buffer
  /// holds this many; 0 delivers in order. flush() releases the tail.
  std::size_t reorderWindow = 0;
  std::uint64_t seed = 1;
};

class ChaosChannel final : public ReportSink {
 public:
  ChaosChannel(ReportSink& downstream, ChaosConfig config);
  /// Releases anything still buffered.
  ~ChaosChannel() override;

  void submitDatagram(std::span<const std::uint8_t> payload) override;

  /// Deliver every buffered datagram (in randomized order). Call before
  /// finalizing a run so reordered datagrams are not stranded.
  void flush();

  [[nodiscard]] std::uint64_t delivered() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t duplicated() const;

 private:
  /// Requires mutex_ held. Pops a random buffered datagram downstream.
  void releaseOneLocked();

  ReportSink& downstream_;
  ChaosConfig config_;
  mutable std::mutex mutex_;
  util::Rng rng_;
  std::vector<std::vector<std::uint8_t>> buffer_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
};

}  // namespace libspector::ingest
