// The datagram ingestion boundary.
//
// Everything that can receive a supervisor report datagram — the legacy
// orch::CollectionServer, the sharded ingest router, fault-injection
// wrappers — implements this one-method interface, so emulators and
// dispatchers are wired against the boundary rather than a concrete
// collector.
#pragma once

#include <cstdint>
#include <span>

namespace libspector::ingest {

class ReportSink {
 public:
  virtual ~ReportSink() = default;

  /// Ingest one raw datagram. Must be callable from any thread; malformed
  /// input is counted and dropped, never thrown (UDP gives no integrity
  /// guarantee, so a bad datagram is data, not an error).
  virtual void submitDatagram(std::span<const std::uint8_t> payload) = 0;
};

}  // namespace libspector::ingest
