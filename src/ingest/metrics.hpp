// Observability surface of the ingest tier: per-shard and aggregate
// counters for everything the wire format makes detectable (loss,
// duplication, reordering, corruption), plus queue and latency behaviour,
// exported as JSON for dashboards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace libspector::ingest {

struct ShardMetrics {
  std::size_t shard = 0;

  // Datagram path.
  std::uint64_t framesRouted = 0;     // accepted into this shard's queue
  std::uint64_t framesFolded = 0;     // consumed and folded into state
  std::uint64_t framesDropped = 0;    // rejected by backpressure policy
  std::uint64_t duplicated = 0;       // (workerId, sequence) already seen
  std::uint64_t outOfOrder = 0;       // arrived below the worker's max seq

  // Dictionary-compressed (v3) frame path.
  std::uint64_t dictFrames = 0;    // v3 frames folded
  std::uint64_t dictHoles = 0;     // v3 frames parked awaiting a definition
  std::uint64_t dictRepaired = 0;  // holes healed (late defs or finalize repair)
  std::uint64_t dictDropped = 0;   // holes never resolved (counted lost)

  // Run path.
  std::uint64_t runsCompleted = 0;
  std::uint64_t reportsDelivered = 0;  // unique reports handed to runs
  std::uint64_t reportsLost = 0;       // emitted - unique delivered

  // Pending-state hygiene.
  std::uint64_t apksEvicted = 0;    // pending apks dropped by capacity policy
  std::uint64_t reportsEvicted = 0;

  // Queue behaviour.
  std::size_t queueDepth = 0;      // at snapshot time
  std::size_t queueDepthPeak = 0;
  double utilization = 0.0;        // consumer busy time / wall time

  // End-to-end ingest latency (enqueue -> fold), milliseconds, over a
  // sliding sample window.
  double latencyP50Ms = 0.0;
  double latencyP90Ms = 0.0;
  double latencyP99Ms = 0.0;
  std::size_t latencySamples = 0;
};

struct IngestMetrics {
  std::size_t shards = 0;
  std::uint64_t datagramsReceived = 0;   // every submitDatagram call
  std::uint64_t datagramsMalformed = 0;  // failed frame validation
  std::vector<ShardMetrics> perShard;

  // Aggregates over perShard (filled by ShardedIngest::metrics()).
  std::uint64_t framesFolded = 0;
  std::uint64_t framesDropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t outOfOrder = 0;
  std::uint64_t dictFrames = 0;
  std::uint64_t dictHoles = 0;
  std::uint64_t dictRepaired = 0;
  std::uint64_t dictDropped = 0;
  std::uint64_t runsCompleted = 0;
  std::uint64_t reportsDelivered = 0;
  std::uint64_t reportsLost = 0;
  double latencyP50Ms = 0.0;
  double latencyP90Ms = 0.0;
  double latencyP99Ms = 0.0;

  // Service surface (filled in by spectord when the pipeline runs behind
  // the daemon; zero when driven in-process).
  std::uint64_t sessionsOpened = 0;
  std::uint64_t sessionsResumed = 0;
  std::uint64_t sessionsExpired = 0;        // stale sessions swept on drain
  std::uint64_t sessionAttachRefusals = 0;  // second live attach refused
  std::uint64_t duplicateRunUploads = 0;    // resume re-uploads deduped
  std::uint64_t subscriberDeltasSent = 0;
  std::uint64_t subscriberDeltasDropped = 0;    // slow-subscriber drops
  std::uint64_t subscriberSnapshotsResent = 0;  // resyncs after drops
  std::uint64_t subscribersDisconnected = 0;    // Disconnect-policy kills
  std::uint64_t protocolGarbageBytes = 0;       // bytes skipped resyncing
  std::uint64_t protocolRejectedFrames = 0;     // bad crc/version/length

  /// Machine-readable export (stable key order, valid JSON).
  [[nodiscard]] std::string toJson() const;
};

}  // namespace libspector::ingest
