#include "ingest/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace libspector::ingest {

namespace {

void appendKv(std::string& out, const char* key, std::uint64_t value,
              bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(value), comma ? ", " : "");
  out += buf;
}

void appendKv(std::string& out, const char* key, double value,
              bool comma = true) {
  // %.3f renders NaN/Inf (a zero-sample shard's percentiles) as bare
  // `nan`/`inf` tokens, which are not valid JSON — guard them to 0.0.
  if (!std::isfinite(value)) value = 0.0;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.3f%s", key, value,
                comma ? ", " : "");
  out += buf;
}

}  // namespace

std::string IngestMetrics::toJson() const {
  std::string out = "{\n  ";
  appendKv(out, "shards", static_cast<std::uint64_t>(shards));
  appendKv(out, "datagrams_received", datagramsReceived);
  appendKv(out, "datagrams_malformed", datagramsMalformed);
  appendKv(out, "frames_folded", framesFolded);
  appendKv(out, "frames_dropped", framesDropped);
  appendKv(out, "duplicated", duplicated);
  appendKv(out, "out_of_order", outOfOrder);
  appendKv(out, "dict_frames", dictFrames);
  appendKv(out, "dict_holes", dictHoles);
  appendKv(out, "dict_repaired", dictRepaired);
  appendKv(out, "dict_dropped", dictDropped);
  appendKv(out, "runs_completed", runsCompleted);
  appendKv(out, "reports_delivered", reportsDelivered);
  appendKv(out, "reports_lost", reportsLost);
  appendKv(out, "latency_p50_ms", latencyP50Ms);
  appendKv(out, "latency_p90_ms", latencyP90Ms);
  appendKv(out, "latency_p99_ms", latencyP99Ms);
  appendKv(out, "sessions_opened", sessionsOpened);
  appendKv(out, "sessions_resumed", sessionsResumed);
  appendKv(out, "sessions_expired", sessionsExpired);
  appendKv(out, "session_attach_refusals", sessionAttachRefusals);
  appendKv(out, "duplicate_run_uploads", duplicateRunUploads);
  appendKv(out, "subscriber_deltas_sent", subscriberDeltasSent);
  appendKv(out, "subscriber_deltas_dropped", subscriberDeltasDropped);
  appendKv(out, "subscriber_snapshots_resent", subscriberSnapshotsResent);
  appendKv(out, "subscribers_disconnected", subscribersDisconnected);
  appendKv(out, "protocol_garbage_bytes", protocolGarbageBytes);
  appendKv(out, "protocol_rejected_frames", protocolRejectedFrames);
  out += "\"per_shard\": [";
  for (std::size_t i = 0; i < perShard.size(); ++i) {
    const ShardMetrics& s = perShard[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    appendKv(out, "shard", static_cast<std::uint64_t>(s.shard));
    appendKv(out, "frames_routed", s.framesRouted);
    appendKv(out, "frames_folded", s.framesFolded);
    appendKv(out, "frames_dropped", s.framesDropped);
    appendKv(out, "duplicated", s.duplicated);
    appendKv(out, "out_of_order", s.outOfOrder);
    appendKv(out, "dict_frames", s.dictFrames);
    appendKv(out, "dict_holes", s.dictHoles);
    appendKv(out, "dict_repaired", s.dictRepaired);
    appendKv(out, "dict_dropped", s.dictDropped);
    appendKv(out, "runs_completed", s.runsCompleted);
    appendKv(out, "reports_delivered", s.reportsDelivered);
    appendKv(out, "reports_lost", s.reportsLost);
    appendKv(out, "apks_evicted", s.apksEvicted);
    appendKv(out, "reports_evicted", s.reportsEvicted);
    appendKv(out, "queue_depth", static_cast<std::uint64_t>(s.queueDepth));
    appendKv(out, "queue_depth_peak",
             static_cast<std::uint64_t>(s.queueDepthPeak));
    appendKv(out, "utilization", s.utilization);
    appendKv(out, "latency_p50_ms", s.latencyP50Ms);
    appendKv(out, "latency_p90_ms", s.latencyP90Ms);
    appendKv(out, "latency_p99_ms", s.latencyP99Ms);
    appendKv(out, "latency_samples",
             static_cast<std::uint64_t>(s.latencySamples), false);
    out += "}";
  }
  out += perShard.empty() ? "]\n}" : "\n  ]\n}";
  return out;
}

}  // namespace libspector::ingest
