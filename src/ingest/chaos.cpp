#include "ingest/chaos.hpp"

#include <utility>

namespace libspector::ingest {

ChaosChannel::ChaosChannel(ReportSink& downstream, ChaosConfig config)
    : downstream_(downstream), config_(config), rng_(config.seed) {}

ChaosChannel::~ChaosChannel() { flush(); }

void ChaosChannel::submitDatagram(std::span<const std::uint8_t> payload) {
  const std::scoped_lock lock(mutex_);
  if (rng_.chance(config_.lossProb)) {
    ++dropped_;
    return;
  }
  const int copies = rng_.chance(config_.dupProb) ? 2 : 1;
  if (copies == 2) ++duplicated_;
  for (int i = 0; i < copies; ++i)
    buffer_.emplace_back(payload.begin(), payload.end());
  while (buffer_.size() > config_.reorderWindow) releaseOneLocked();
}

void ChaosChannel::releaseOneLocked() {
  const std::size_t pick =
      buffer_.size() == 1
          ? 0
          : static_cast<std::size_t>(rng_.uniform(0, buffer_.size() - 1));
  std::vector<std::uint8_t> datagram = std::move(buffer_[pick]);
  buffer_[pick] = std::move(buffer_.back());
  buffer_.pop_back();
  downstream_.submitDatagram(datagram);
  ++delivered_;
}

void ChaosChannel::flush() {
  const std::scoped_lock lock(mutex_);
  while (!buffer_.empty()) releaseOneLocked();
}

std::uint64_t ChaosChannel::delivered() const {
  const std::scoped_lock lock(mutex_);
  return delivered_;
}

std::uint64_t ChaosChannel::dropped() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

std::uint64_t ChaosChannel::duplicated() const {
  const std::scoped_lock lock(mutex_);
  return duplicated_;
}

}  // namespace libspector::ingest
