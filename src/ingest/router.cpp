#include "ingest/router.hpp"

#include <algorithm>
#include <utility>

#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace libspector::ingest {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double millisBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

[[nodiscard]] std::size_t resolveShardCount(std::size_t configured) {
  if (configured != 0) return configured;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

ShardedIngest::ShardedIngest(IngestConfig config, RunCallback onRun)
    : config_(config), onRun_(std::move(onRun)), startedAt_(Clock::now()) {
  config_.queueCapacity = std::max<std::size_t>(1, config_.queueCapacity);
  config_.maxPendingApks = std::max<std::size_t>(1, config_.maxPendingApks);
  config_.latencyWindow = std::max<std::size_t>(1, config_.latencyWindow);
  const std::size_t shardCount = resolveShardCount(config_.shards);
  shards_.reserve(shardCount);
  for (std::size_t i = 0; i < shardCount; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->counters.shard = i;
    shards_.push_back(std::move(shard));
  }
  // Consumers start after every shard exists (they only touch their own).
  for (auto& shard : shards_) {
    shard->consumer = std::jthread(
        [this, raw = shard.get()](std::stop_token stop) { consumeLoop(stop, *raw); });
  }
}

ShardedIngest::~ShardedIngest() {
  for (auto& shard : shards_) {
    shard->consumer.request_stop();
    const std::scoped_lock lock(shard->mutex);
    shard->notEmpty.notify_all();
  }
  // jthread members join in Shard destruction; consumers drain their queue
  // before exiting so no accepted item is ever silently discarded.
}

std::size_t ShardedIngest::shardOf(const std::string& apkSha256) const {
  return util::fnv1a64(apkSha256) % shards_.size();
}

void ShardedIngest::enqueue(Shard& shard, Item&& item, bool droppable) {
  std::unique_lock lock(shard.mutex);
  if (shard.queue.size() >= config_.queueCapacity) {
    if (droppable && config_.backpressure == IngestConfig::Backpressure::DropNewest) {
      ++shard.counters.framesDropped;
      return;
    }
    shard.notFull.wait(lock,
                       [&] { return shard.queue.size() < config_.queueCapacity; });
  }
  if (item.run == nullptr) ++shard.counters.framesRouted;
  shard.queue.push_back(std::move(item));
  shard.counters.queueDepthPeak =
      std::max(shard.counters.queueDepthPeak, shard.queue.size());
  shard.notEmpty.notify_one();
}

void ShardedIngest::submitDatagram(std::span<const std::uint8_t> payload) {
  received_.fetch_add(1, std::memory_order_relaxed);
  core::ReportFrame::Header header;
  try {
    header = core::ReportFrame::peek(payload);
  } catch (const util::DecodeError& err) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    util::logWarn("ingest: dropping malformed datagram: %s", err.what());
    return;
  }
  Item item;
  item.frameBytes.assign(payload.begin(), payload.end());
  item.header = header;
  item.enqueuedAt = Clock::now();
  enqueue(*shards_[header.shaKey % shards_.size()], std::move(item),
          /*droppable=*/true);
}

void ShardedIngest::submitRun(std::size_t jobIndex,
                              core::RunArtifacts&& artifacts) {
  const std::size_t shard = shardOf(artifacts.apkSha256);
  Item item;
  item.run = std::make_unique<RunTask>(
      RunTask{jobIndex, std::move(artifacts)});
  item.enqueuedAt = Clock::now();
  enqueue(*shards_[shard], std::move(item), /*droppable=*/false);
}

void ShardedIngest::submitReplay(std::size_t jobIndex,
                                 core::RunArtifacts&& artifacts,
                                 const ApkLossAccount& account) {
  const std::size_t shard = shardOf(artifacts.apkSha256);
  Item item;
  item.run = std::make_unique<RunTask>(
      RunTask{jobIndex, std::move(artifacts), /*replay=*/true, account});
  item.enqueuedAt = Clock::now();
  enqueue(*shards_[shard], std::move(item), /*droppable=*/false);
}

void ShardedIngest::consumeLoop(std::stop_token stop, Shard& shard) {
  while (true) {
    Item item;
    {
      std::unique_lock lock(shard.mutex);
      if (!shard.notEmpty.wait(lock, stop,
                               [&] { return !shard.queue.empty(); })) {
        shard.drained.notify_all();
        return;  // stop requested and the queue is fully drained
      }
      item = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.busy = true;
      shard.notFull.notify_one();
    }
    const auto startedAt = Clock::now();
    if (item.run != nullptr) {
      finalizeRun(shard, std::move(*item.run));
    } else {
      foldFrame(shard, item);
    }
    const auto finishedAt = Clock::now();
    {
      const std::scoped_lock lock(shard.mutex);
      shard.busyMs += millisBetween(startedAt, finishedAt);
      const double latency = millisBetween(item.enqueuedAt, finishedAt);
      if (shard.latencyMs.size() < config_.latencyWindow) {
        shard.latencyMs.push_back(latency);
      } else {
        shard.latencyMs[shard.latencyNext] = latency;
        shard.latencyNext = (shard.latencyNext + 1) % config_.latencyWindow;
      }
      ++shard.latencyTotal;
      shard.busy = false;
      if (shard.queue.empty()) shard.drained.notify_all();
    }
  }
}

bool ShardedIngest::recordArrivalLocked(Shard& shard, PendingApk& apk,
                                        std::uint32_t workerId,
                                        std::uint64_t sequence) {
  ++apk.framesDelivered;
  const auto key = std::make_pair(workerId, sequence);
  if (apk.reports.contains(key) || apk.holes.contains(key)) {
    ++apk.duplicated;
    ++shard.counters.duplicated;
    return false;
  }
  WorkerSeq& seq = apk.workers[workerId];
  if (seq.any && sequence < seq.maxSeq) {
    ++apk.outOfOrder;
    ++shard.counters.outOfOrder;
  }
  seq.maxSeq = seq.any ? std::max(seq.maxSeq, sequence) : sequence;
  seq.any = true;
  return true;
}

void ShardedIngest::foldFrame(Shard& shard, const Item& item) {
  if (item.header.version == core::ReportFrame::kDictVersion) {
    foldDictFrame(shard, item);
    return;
  }
  core::ReportFrame frame;
  try {
    frame = core::ReportFrame::decode(item.frameBytes);
  } catch (const util::DecodeError& err) {
    // peek() validated the checksum, so this only fires on payloads that
    // are self-inconsistent end to end; still data, not an error.
    malformed_.fetch_add(1, std::memory_order_relaxed);
    util::logWarn("ingest: dropping undecodable frame: %s", err.what());
    return;
  }

  const std::scoped_lock lock(shard.mutex);
  auto [it, created] = shard.pending.try_emplace(frame.report.apkSha256);
  PendingApk& apk = it->second;
  if (created) {
    apk.orderIt = shard.order.insert(shard.order.end(), it->first);
    evictIfOverCapacityLocked(shard);
  }
  if (recordArrivalLocked(shard, apk, frame.workerId, frame.sequence)) {
    apk.reports.emplace(std::make_pair(frame.workerId, frame.sequence),
                        std::move(frame.report));
  }
  ++shard.counters.framesFolded;
}

void ShardedIngest::foldDictFrame(Shard& shard, const Item& item) {
  core::DictReportFrame frame;
  try {
    frame = core::DictReportFrame::decode(item.frameBytes);
  } catch (const util::DecodeError& err) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    util::logWarn("ingest: dropping undecodable dict frame: %s", err.what());
    return;
  }

  const std::scoped_lock lock(shard.mutex);
  auto [it, created] = shard.pending.try_emplace(frame.apkSha256);
  PendingApk& apk = it->second;
  if (created) {
    apk.orderIt = shard.order.insert(shard.order.end(), it->first);
    evictIfOverCapacityLocked(shard);
  }
  ++shard.counters.dictFrames;

  // Fold definitions before the dedup check: a duplicated datagram is
  // redundant as a *report* but its defs still heal the dictionary when
  // the first copy's defs arrived and later references were parked.
  auto& dict = apk.dicts[frame.workerId];
  bool newDefs = false;
  for (auto& [id, signature] : frame.defs)
    newDefs = dict.try_emplace(id, std::move(signature)).second || newDefs;

  if (recordArrivalLocked(shard, apk, frame.workerId, frame.sequence)) {
    std::vector<std::string> stack;
    stack.reserve(frame.signatureIds.size());
    bool complete = true;
    for (const std::uint32_t id : frame.signatureIds) {
      const auto def = dict.find(id);
      if (def == dict.end()) {
        complete = false;
        break;
      }
      stack.push_back(def->second);
    }
    core::UdpReport report;
    report.apkSha256 = std::move(frame.apkSha256);
    report.socketPair = frame.socketPair;
    report.timestampMs = frame.timestampMs;
    report.requestOrdinal = frame.requestOrdinal;
    const auto key = std::make_pair(frame.workerId, frame.sequence);
    if (complete) {
      report.stackSignatures = std::move(stack);
      apk.reports.emplace(key, std::move(report));
    } else {
      // The defining frame is lost or still in flight: park everything we
      // know and wait for a healing def or the finalize-time repair.
      ++shard.counters.dictHoles;
      apk.holes.emplace(
          key, CompactReport{std::move(report), std::move(frame.signatureIds)});
    }
  }

  if (newDefs) resolveHolesLocked(shard, apk, frame.workerId);
  ++shard.counters.framesFolded;
}

void ShardedIngest::resolveHolesLocked(Shard& shard, PendingApk& apk,
                                       std::uint32_t workerId) {
  const auto& dict = apk.dicts[workerId];
  for (auto it = apk.holes.lower_bound({workerId, 0});
       it != apk.holes.end() && it->first.first == workerId;) {
    std::vector<std::string> stack;
    stack.reserve(it->second.sigIds.size());
    bool complete = true;
    for (const std::uint32_t id : it->second.sigIds) {
      const auto def = dict.find(id);
      if (def == dict.end()) {
        complete = false;
        break;
      }
      stack.push_back(def->second);
    }
    if (!complete) {
      ++it;
      continue;
    }
    core::UdpReport report = std::move(it->second.base);
    report.stackSignatures = std::move(stack);
    apk.reports.emplace(it->first, std::move(report));
    ++shard.counters.dictRepaired;
    it = apk.holes.erase(it);
  }
}

void ShardedIngest::repairHolesFromLocalLocked(
    Shard& shard, PendingApk& apk, const core::RunArtifacts& artifacts) {
  if (apk.holes.empty()) return;
  // The emulator records every emitted report locally in send order, so
  // when that list is complete, sequence s *is* artifacts.reports[s]. Each
  // candidate must still match the hole's delivered metadata (apk, socket
  // pair, timestamp, stack depth) before it is trusted — the hole's own
  // fields came off the wire checksummed, so a mismatch means the local
  // list is not what this frame described.
  const bool localComplete =
      artifacts.reportsEmitted > 0 &&
      artifacts.reports.size() == artifacts.reportsEmitted;
  for (auto it = apk.holes.begin(); it != apk.holes.end();) {
    bool repaired = false;
    const std::uint64_t sequence = it->first.second;
    if (localComplete && sequence < artifacts.reports.size()) {
      const core::UdpReport& candidate = artifacts.reports[sequence];
      const CompactReport& hole = it->second;
      if (candidate.apkSha256 == hole.base.apkSha256 &&
          candidate.socketPair == hole.base.socketPair &&
          candidate.timestampMs == hole.base.timestampMs &&
          candidate.stackSignatures.size() == hole.sigIds.size()) {
        core::UdpReport report = std::move(it->second.base);
        report.stackSignatures = candidate.stackSignatures;
        apk.reports.emplace(it->first, std::move(report));
        ++shard.counters.dictRepaired;
        repaired = true;
      }
    }
    if (!repaired) ++shard.counters.dictDropped;
    it = apk.holes.erase(it);
  }
}

void ShardedIngest::finalizeRun(Shard& shard, RunTask&& task) {
  RunDelivery delivery;
  delivery.jobIndex = task.jobIndex;
  delivery.artifacts = std::move(task.artifacts);

  if (task.replay) {
    // The bundle already went through finalization once; its reports are
    // the delivered set and its persisted account is authoritative. Fold
    // the original numbers into the counters so a recovered study's
    // delivery/loss totals match the uninterrupted run exactly.
    delivery.account = task.account;
    delivery.replayed = true;
    {
      const std::scoped_lock lock(shard.mutex);
      ++shard.counters.runsCompleted;
      shard.counters.reportsDelivered += delivery.account.uniqueDelivered;
      shard.counters.reportsLost += delivery.account.lost;
    }
    if (onRun_) onRun_(std::move(delivery));
    return;
  }

  delivery.account.reportsEmitted = delivery.artifacts.reportsEmitted;

  bool channelLive = delivery.artifacts.reportsEmitted > 0;
  std::vector<core::UdpReport> deliveredReports;
  {
    const std::scoped_lock lock(shard.mutex);
    const auto it = shard.pending.find(delivery.artifacts.apkSha256);
    if (it != shard.pending.end()) {
      PendingApk& apk = it->second;
      channelLive = true;
      // Heal any dictionary holes from the locally recorded report list
      // before the account is computed: a repaired hole counts delivered
      // (its frame did arrive), an unrepairable one counts lost.
      repairHolesFromLocalLocked(shard, apk, delivery.artifacts);
      delivery.account.framesDelivered = apk.framesDelivered;
      delivery.account.uniqueDelivered = apk.reports.size();
      delivery.account.duplicated = apk.duplicated;
      delivery.account.outOfOrder = apk.outOfOrder;
      deliveredReports.reserve(apk.reports.size());
      for (auto& [key, report] : apk.reports)
        deliveredReports.push_back(std::move(report));
      shard.order.erase(apk.orderIt);
      shard.pending.erase(it);
    }
    delivery.account.lost =
        delivery.account.reportsEmitted > delivery.account.uniqueDelivered
            ? delivery.account.reportsEmitted - delivery.account.uniqueDelivered
            : 0;
    ++shard.counters.runsCompleted;
    shard.counters.reportsDelivered += delivery.account.uniqueDelivered;
    shard.counters.reportsLost += delivery.account.lost;
  }
  // When the report channel fed this router, the delivered set *is* the
  // run's report list (sequence-ordered and deduplicated, so with zero loss
  // it is byte-identical to what the emulator recorded locally). A run that
  // emitted nothing and routed nothing keeps its (empty) list untouched.
  if (channelLive) delivery.artifacts.reports = std::move(deliveredReports);

  // Callback outside the lock: attribution is heavy, and producers must be
  // able to keep feeding the queue while it runs.
  if (onRun_) onRun_(std::move(delivery));
}

void ShardedIngest::evictIfOverCapacityLocked(Shard& shard) {
  while (shard.pending.size() > config_.maxPendingApks && !shard.order.empty()) {
    const std::string& oldest = shard.order.front();
    const auto it = shard.pending.find(oldest);
    if (it != shard.pending.end()) {
      ++shard.counters.apksEvicted;
      shard.counters.reportsEvicted +=
          it->second.reports.size() + it->second.holes.size();
      shard.pending.erase(it);
    }
    shard.order.pop_front();
  }
}

void ShardedIngest::drain() {
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    shard->drained.wait(lock,
                        [&] { return shard->queue.empty() && !shard->busy; });
  }
}

std::vector<core::UdpReport> ShardedIngest::takeReports(
    const std::string& apkSha256) {
  Shard& shard = *shards_[shardOf(apkSha256)];
  const std::scoped_lock lock(shard.mutex);
  const auto it = shard.pending.find(apkSha256);
  if (it == shard.pending.end()) return {};
  std::vector<core::UdpReport> reports;
  reports.reserve(it->second.reports.size());
  for (auto& [key, report] : it->second.reports)
    reports.push_back(std::move(report));
  // Unresolved dictionary holes have no stack to return; with no run to
  // repair them from, they are dropped and counted.
  shard.counters.dictDropped += it->second.holes.size();
  shard.order.erase(it->second.orderIt);
  shard.pending.erase(it);
  return reports;
}

bool ShardedIngest::evictPending(const std::string& apkSha256) {
  Shard& shard = *shards_[shardOf(apkSha256)];
  const std::scoped_lock lock(shard.mutex);
  const auto it = shard.pending.find(apkSha256);
  if (it == shard.pending.end()) return false;
  ++shard.counters.apksEvicted;
  shard.counters.reportsEvicted +=
      it->second.reports.size() + it->second.holes.size();
  shard.order.erase(it->second.orderIt);
  shard.pending.erase(it);
  return true;
}

IngestMetrics ShardedIngest::metrics() const {
  IngestMetrics out;
  out.shards = shards_.size();

  const double wallMs = millisBetween(startedAt_, Clock::now());
  std::vector<double> allLatencies;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    ShardMetrics m = shard->counters;
    m.queueDepth = shard->queue.size();
    m.utilization = wallMs > 0.0 ? shard->busyMs / wallMs : 0.0;
    m.latencySamples = shard->latencyMs.size();
    if (!shard->latencyMs.empty()) {
      m.latencyP50Ms = util::percentile(shard->latencyMs, 50.0);
      m.latencyP90Ms = util::percentile(shard->latencyMs, 90.0);
      m.latencyP99Ms = util::percentile(shard->latencyMs, 99.0);
      allLatencies.insert(allLatencies.end(), shard->latencyMs.begin(),
                          shard->latencyMs.end());
    }
    out.framesFolded += m.framesFolded;
    out.framesDropped += m.framesDropped;
    out.duplicated += m.duplicated;
    out.outOfOrder += m.outOfOrder;
    out.dictFrames += m.dictFrames;
    out.dictHoles += m.dictHoles;
    out.dictRepaired += m.dictRepaired;
    out.dictDropped += m.dictDropped;
    out.runsCompleted += m.runsCompleted;
    out.reportsDelivered += m.reportsDelivered;
    out.reportsLost += m.reportsLost;
    out.perShard.push_back(std::move(m));
  }
  if (!allLatencies.empty()) {
    out.latencyP50Ms = util::percentile(allLatencies, 50.0);
    out.latencyP90Ms = util::percentile(allLatencies, 90.0);
    out.latencyP99Ms = util::percentile(allLatencies, 99.0);
  }
  // Read the producer-side atomics *after* the shard counters: a datagram
  // increments received_ before it can ever fold, so this order keeps the
  // snapshot invariant framesFolded + framesDropped <= datagramsReceived.
  out.datagramsReceived = received_.load(std::memory_order_relaxed);
  out.datagramsMalformed = malformed_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace libspector::ingest
