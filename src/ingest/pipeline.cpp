#include "ingest/pipeline.hpp"

#include <string_view>
#include <utility>

namespace libspector::ingest {

IngestPipeline::IngestPipeline(IngestConfig config, AttributeFn attribute,
                               core::StudyAccumulator* accumulator,
                               CheckpointFn checkpoint,
                               AttributeColumnsFn attributeColumns)
    : attribute_(std::move(attribute)),
      attributeColumns_(std::move(attributeColumns)),
      accumulator_(accumulator),
      checkpoint_(std::move(checkpoint)),
      router_(config, [this](RunDelivery&& delivery) {
        onRun(std::move(delivery));
      }) {}

void IngestPipeline::submitDatagram(std::span<const std::uint8_t> payload) {
  router_.submitDatagram(payload);
}

void IngestPipeline::submitRun(std::size_t jobIndex,
                               core::RunArtifacts&& artifacts) {
  router_.submitRun(jobIndex, std::move(artifacts));
}

void IngestPipeline::replayRun(std::size_t jobIndex,
                               core::RunArtifacts&& artifacts,
                               const ApkLossAccount& account) {
  router_.submitReplay(jobIndex, std::move(artifacts), account);
}

void IngestPipeline::skip(std::size_t jobIndex) {
  if (accumulator_ != nullptr) accumulator_->skip(jobIndex);
}

void IngestPipeline::drain() { router_.drain(); }

namespace {

// std::map::try_emplace has no heterogeneous overload, so the string-view
// keyed bump goes through lower_bound + emplace_hint to only allocate a
// key string on first sight.
void bumpBytes(std::map<std::string, std::uint64_t, std::less<>>& map,
               std::string_view key, std::uint64_t bytes) {
  auto it = map.lower_bound(key);
  if (it == map.end() || it->first != key)
    it = map.emplace_hint(it, std::string(key), 0);
  it->second += bytes;
}

}  // namespace

void IngestPipeline::onRun(RunDelivery&& delivery) {
  if (attributeColumns_) {
    onRunColumnar(std::move(delivery));
    return;
  }
  // Attribution runs on the shard consumer thread, unlocked: this is the
  // heavy stage, and shards are the parallelism axis of the ingest tier.
  std::vector<core::FlowRecord> flows = attribute_(delivery.artifacts);
  const std::uint64_t unattributed = core::TrafficAttributor::
      unattributedTcpPayload(delivery.artifacts, flows);

  const bool publish = static_cast<bool>(runHook_);
  RunDigest digest;
  {
    const std::scoped_lock lock(mutex_);
    ++rolling_.runsFolded;
    rolling_.flowCount += flows.size();
    rolling_.unattributedBytes += unattributed;
    std::uint64_t appBytes = 0;
    std::map<std::string_view, std::uint64_t> runLibs;
    std::map<std::string_view, std::uint64_t> runCats;
    for (const auto& flow : flows) {
      const std::uint64_t bytes = flow.sentBytes + flow.recvBytes;
      appBytes += bytes;
      bumpBytes(rolling_.bytesByLibrary, flow.originLibrary.view(), bytes);
      bumpBytes(rolling_.bytesByLibCategory, flow.libraryCategory.view(), bytes);
      if (publish) {
        runLibs[flow.originLibrary.view()] += bytes;
        runCats[flow.libraryCategory.view()] += bytes;
      }
    }
    rolling_.attributedBytes += appBytes;
    rolling_.bytesByApp[delivery.artifacts.apkSha256] += appBytes;
    accounts_[delivery.artifacts.apkSha256] = delivery.account;
    if (publish) {
      digest.jobIndex = delivery.jobIndex;
      digest.apkSha256 = delivery.artifacts.apkSha256;
      digest.replayed = delivery.replayed;
      digest.flowCount = flows.size();
      digest.attributedBytes = appBytes;
      digest.unattributedBytes = unattributed;
      for (const auto& [lib, bytes] : runLibs)
        digest.bytesByLibrary.emplace_back(std::string(lib), bytes);
      for (const auto& [cat, bytes] : runCats)
        digest.bytesByLibCategory.emplace_back(std::string(cat), bytes);
      digest.account = delivery.account;
      digest.runsFolded = rolling_.runsFolded;
    }
  }

  // Durable before aggregated: a run that is checkpointed but not yet
  // folded is replayed on recovery; the reverse order would lose it.
  if (checkpoint_ && !delivery.replayed) checkpoint_(delivery);
  // Durable before published: observers only ever see checkpointed runs.
  if (publish) runHook_(digest);

  if (accumulator_ != nullptr)
    accumulator_->add(delivery.jobIndex, std::move(delivery.artifacts),
                      std::move(flows));
}

void IngestPipeline::onRunColumnar(RunDelivery&& delivery) {
  // Attribution (the heavy stage) stays on the shard consumer thread,
  // unlocked; only the fold below takes the pipeline mutex.
  core::FlowColumns columns = attributeColumns_(delivery.artifacts);

  std::uint64_t attributed = 0;
  for (std::size_t i = 0; i < columns.size(); ++i)
    attributed += columns.sentBytes[i] + columns.recvBytes[i];
  const std::uint64_t totalTcp =
      delivery.artifacts.capture.totalTcpPayloadBytes();
  const std::uint64_t unattributed =
      attributed >= totalTcp ? 0 : totalTcp - attributed;

  const bool publish = static_cast<bool>(runHook_);
  RunDigest digest;
  {
    const std::scoped_lock lock(mutex_);
    ++rolling_.runsFolded;
    rolling_.flowCount += columns.size();
    rolling_.unattributedBytes += unattributed;
    // Sum per distinct id first (array adds), then one sorted-map bump per
    // distinct library/category this run — the row path pays a map probe
    // per flow.
    for (std::size_t i = 0; i < columns.size(); ++i) {
      const std::uint64_t bytes = columns.sentBytes[i] + columns.recvBytes[i];
      libSums_.bump(columns.originLibrary[i], bytes);
      catSums_.bump(columns.libraryCategory[i], bytes);
    }
    const auto flush =
        [&](IdSums& sums,
            std::map<std::string, std::uint64_t, std::less<>>& map,
            std::vector<std::pair<std::string, std::uint64_t>>* runDelta) {
          for (const std::uint32_t id : sums.touched) {
            bumpBytes(map, columns.pool->at(id).view(), sums.bytes.at(id));
            if (runDelta != nullptr)
              runDelta->emplace_back(std::string(columns.pool->at(id).view()),
                                     sums.bytes.at(id));
            sums.bytes[id] = 0;
            sums.seen[id] = 0;
          }
          sums.touched.clear();
        };
    flush(libSums_, rolling_.bytesByLibrary,
          publish ? &digest.bytesByLibrary : nullptr);
    flush(catSums_, rolling_.bytesByLibCategory,
          publish ? &digest.bytesByLibCategory : nullptr);
    rolling_.attributedBytes += attributed;
    rolling_.bytesByApp[delivery.artifacts.apkSha256] += attributed;
    accounts_[delivery.artifacts.apkSha256] = delivery.account;
    if (publish) {
      digest.jobIndex = delivery.jobIndex;
      digest.apkSha256 = delivery.artifacts.apkSha256;
      digest.replayed = delivery.replayed;
      digest.flowCount = columns.size();
      digest.attributedBytes = attributed;
      digest.unattributedBytes = unattributed;
      digest.account = delivery.account;
      digest.runsFolded = rolling_.runsFolded;
    }
  }

  // Durable before aggregated — same crash-recovery ordering as the row
  // path.
  if (checkpoint_ && !delivery.replayed) checkpoint_(delivery);
  // Durable before published: observers only ever see checkpointed runs.
  if (publish) runHook_(digest);

  if (accumulator_ != nullptr)
    accumulator_->addColumns(delivery.jobIndex, std::move(delivery.artifacts),
                             std::move(columns));
}

RollingTotals IngestPipeline::rollingTotals() const {
  const std::scoped_lock lock(mutex_);
  return rolling_;
}

std::unordered_map<std::string, ApkLossAccount> IngestPipeline::lossAccounts()
    const {
  const std::scoped_lock lock(mutex_);
  return accounts_;
}

}  // namespace libspector::ingest
