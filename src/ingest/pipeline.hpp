// Incremental attribution over the sharded ingest router.
//
// The batch pipeline attributes a study in one offline pass after the fleet
// finishes. App-store-scale systems characterize results *as they arrive*
// (Taming the Android AppStore): here, each shard folds a run through the
// attributor the moment its reports and capture complete, publishes rolling
// per-app/per-library volume aggregates, and optionally feeds an
// order-restoring core::StudyAccumulator — which is how the batch
// orch::runStudy path is re-expressed on top of streaming ingest without
// changing a byte of study output.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/analysis.hpp"
#include "core/attribution.hpp"
#include "ingest/router.hpp"
#include "util/symbol.hpp"

namespace libspector::ingest {

/// Rolling study-so-far view, published after every finalized run.
struct RollingTotals {
  std::uint64_t runsFolded = 0;
  std::uint64_t flowCount = 0;
  std::uint64_t attributedBytes = 0;    // sent + recv across flows
  std::uint64_t unattributedBytes = 0;  // TCP payload lost context covers
  // Transparent comparators: the fold path keys by the flows' interned
  // string_views without materializing a std::string per lookup.
  std::map<std::string, std::uint64_t, std::less<>> bytesByLibrary;  // origin library
  std::map<std::string, std::uint64_t, std::less<>> bytesByLibCategory;
  std::map<std::string, std::uint64_t, std::less<>> bytesByApp;  // apk sha256
};

/// One finalized run's increment to the rolling view — everything a live
/// observer (spectord's dashboard surface) needs to update a mirror of
/// RollingTotals without re-scanning it: the per-run byte deltas plus the
/// run's exact loss account and the post-fold progress counter.
struct RunDigest {
  std::size_t jobIndex = 0;
  std::string apkSha256;
  bool replayed = false;
  std::uint64_t flowCount = 0;
  std::uint64_t attributedBytes = 0;
  std::uint64_t unattributedBytes = 0;
  std::vector<std::pair<std::string, std::uint64_t>> bytesByLibrary;
  std::vector<std::pair<std::string, std::uint64_t>> bytesByLibCategory;
  ApkLossAccount account;
  std::uint64_t runsFolded = 0;  // rolling counter after this run folded
};

class IngestPipeline final : public ReportSink {
 public:
  using AttributeFn =
      std::function<std::vector<core::FlowRecord>(const core::RunArtifacts&)>;
  /// Columnar variant: produces the run's flows as one core::FlowColumns
  /// batch instead of row records.
  using AttributeColumnsFn =
      std::function<core::FlowColumns(const core::RunArtifacts&)>;

  /// Incremental checkpoint hook: invoked on the shard consumer thread for
  /// every freshly finalized run (never for replays), after attribution
  /// and before the run is folded into the accumulator — durable first, so
  /// a crash between the two replays the run instead of losing it. The
  /// callee must be thread-safe; orch::CheckpointWriter is the intended
  /// implementation.
  using CheckpointFn = std::function<void(const RunDelivery&)>;

  /// Live-observer hook: invoked on the shard consumer thread for every
  /// folded run — fresh *and* replayed (a dashboard mirrors the rolling
  /// view, which replays also advance) — after the checkpoint hook, so a
  /// published run is always durable. Must be thread-safe and cheap; the
  /// intended implementation enqueues the digest and returns.
  using RunHookFn = std::function<void(const RunDigest&)>;

  /// `accumulator` (optional) receives every finalized run under its job
  /// index — the deterministic batch view. Rolling aggregates and loss
  /// accounts are always maintained. When `attributeColumns` is set it
  /// replaces `attribute` on every run: the shard produces one FlowColumns
  /// batch, folds the rolling totals from the id columns (one map bump per
  /// distinct library/category per run instead of per flow), and hands the
  /// batch to the accumulator's columnar entry point. Study output is byte
  /// identical either way.
  IngestPipeline(IngestConfig config, AttributeFn attribute,
                 core::StudyAccumulator* accumulator = nullptr,
                 CheckpointFn checkpoint = {},
                 AttributeColumnsFn attributeColumns = {});

  /// Datagram path: forwards to the sharded router.
  void submitDatagram(std::span<const std::uint8_t> payload) override;

  /// Run-completion path (any thread): routes to the apk's shard, where the
  /// consumer attributes and folds it.
  void submitRun(std::size_t jobIndex, core::RunArtifacts&& artifacts);
  /// Replay path (crash recovery): re-inject a persisted bundle under its
  /// original job index and loss account. The shard attributes and folds it
  /// like a live run but skips report finalization and checkpointing.
  void replayRun(std::size_t jobIndex, core::RunArtifacts&& artifacts,
                 const ApkLossAccount& account);
  /// Release a job index that will never arrive (failed job).
  void skip(std::size_t jobIndex);

  /// Install the live-observer hook. Must be called before any runs are
  /// submitted (the hook pointer is read unlocked on consumer threads).
  void setRunHook(RunHookFn hook) { runHook_ = std::move(hook); }

  /// Drop one apk's pending (not yet finalized) ingest state — the admin
  /// evict op. Returns true when the apk had pending state.
  bool evictPending(const std::string& apkSha256) {
    return router_.evictPending(apkSha256);
  }

  /// Block until all submitted work is folded (producers must be done).
  void drain();

  [[nodiscard]] RollingTotals rollingTotals() const;
  [[nodiscard]] std::unordered_map<std::string, ApkLossAccount> lossAccounts()
      const;
  [[nodiscard]] IngestMetrics metrics() const { return router_.metrics(); }
  [[nodiscard]] std::size_t shardCount() const noexcept {
    return router_.shardCount();
  }

 private:
  /// Per-run byte sums dense by a source pool's symbol ids. `seen` (not a
  /// nonzero sum) marks touched ids because the rolling maps record
  /// zero-byte flows too; the touched list makes the post-run reset O(ids
  /// seen this run).
  struct IdSums {
    util::DenseSymbolMap<std::uint64_t> bytes;
    util::DenseSymbolMap<std::uint8_t> seen;
    std::vector<std::uint32_t> touched;

    void bump(std::uint32_t id, std::uint64_t add) {
      if (seen[id] == 0) {
        seen[id] = 1;
        touched.push_back(id);
      }
      bytes[id] += add;
    }
  };

  void onRun(RunDelivery&& delivery);
  void onRunColumnar(RunDelivery&& delivery);

  AttributeFn attribute_;
  AttributeColumnsFn attributeColumns_;
  core::StudyAccumulator* accumulator_;
  CheckpointFn checkpoint_;
  RunHookFn runHook_;
  mutable std::mutex mutex_;
  RollingTotals rolling_;
  IdSums libSums_;  // guarded by mutex_ (scratch, reset every run)
  IdSums catSums_;  // guarded by mutex_
  std::unordered_map<std::string, ApkLossAccount> accounts_;
  ShardedIngest router_;  // last: consumers stop before state is destroyed
};

}  // namespace libspector::ingest
