#include "net/capture.hpp"

#include <algorithm>

#include "util/bytes.hpp"

namespace libspector::net {

namespace {
constexpr std::uint32_t kMagic = 0x50434c53;  // "SLCP"
}

void CaptureFile::append(PacketRecord record) {
  if (record.proto == Proto::Tcp) tcpPayloadBytes_ += record.payloadBytes;
  const auto index = static_cast<std::uint32_t>(packets_.size());
  if (record.proto == Proto::Udp && record.isDns() &&
      !(record.dnsAnswer == Ipv4Addr{}))
    dnsAnswerPackets_.push_back(index);
  // Thread the packet onto its connection's chain. This is the only hash
  // probe the pair ever pays: the per-run CaptureIndex build used to redo
  // it for every packet on the offline attribution path, where it was the
  // single largest cost; here it amortizes into capture recording.
  const auto [it, inserted] = connIdOf_.try_emplace(
      normalizedPair(record.pair), static_cast<std::uint32_t>(connPairs_.size()));
  if (inserted) {
    connPairs_.push_back(it->first);
    connPackets_.emplace_back();
    connSorted_.push_back(1);
  }
  const std::uint32_t conn = it->second;
  std::vector<std::uint32_t>& group = connPackets_[conn];
  const std::uint32_t prev = group.empty() ? kNoPacket : group.back();
  group.push_back(index);

  // Per-packet columns: timestamp and running per-direction sums of the
  // packet's connection. The previous packet of the same connection was
  // appended recently, so reading its running sums stays cache-resident —
  // unlike the index-build-time gather these columns replace.
  if (prev != kNoPacket && record.timestampMs < packetTimestamps_[prev])
    connSorted_[conn] = 0;
  packetTimestamps_.push_back(record.timestampMs);
  const bool forward = record.pair.src == connPairs_[conn].src;
  const std::uint64_t wireFwd = prev == kNoPacket ? 0 : cumWireFwd_[prev];
  const std::uint64_t wireRev = prev == kNoPacket ? 0 : cumWireRev_[prev];
  const std::uint64_t payFwd = prev == kNoPacket ? 0 : cumPayFwd_[prev];
  const std::uint64_t payRev = prev == kNoPacket ? 0 : cumPayRev_[prev];
  cumWireFwd_.push_back(wireFwd + (forward ? record.wireBytes : 0));
  cumWireRev_.push_back(wireRev + (forward ? 0 : record.wireBytes));
  cumPayFwd_.push_back(payFwd + (forward ? record.payloadBytes : 0));
  cumPayRev_.push_back(payRev + (forward ? 0 : record.payloadBytes));
  packets_.push_back(std::move(record));
}

void CaptureFile::appendHttp(HttpExchange exchange) {
  http_.push_back(std::move(exchange));
}

CaptureFile::StreamVolume CaptureFile::streamVolume(const SocketPair& pair,
                                                    util::SimTimeMs fromMs,
                                                    util::SimTimeMs toMs) const {
  StreamVolume volume;
  for (const auto& pkt : packets_) {
    if (pkt.timestampMs < fromMs || pkt.timestampMs > toMs) continue;
    if (!pkt.pair.sameConnection(pair)) continue;
    if (pkt.pair.src == pair.src) {
      volume.bytesFromSrc += pkt.wireBytes;
      volume.payloadFromSrc += pkt.payloadBytes;
      volume.firstFromSrcMs = std::min(volume.firstFromSrcMs, pkt.timestampMs);
    } else {
      volume.bytesFromDst += pkt.wireBytes;
      volume.payloadFromDst += pkt.payloadBytes;
      volume.firstFromDstMs = std::min(volume.firstFromDstMs, pkt.timestampMs);
    }
    ++volume.packetCount;
  }
  return volume;
}

CaptureIndex::CaptureIndex(const CaptureFile& capture) : capture_(&capture) {
  // The capture groups, timestamps, and prefix-sums its packets as they are
  // appended, so for connections whose packets arrived chronologically —
  // the monotonic-clock common case, i.e. essentially all of them — there
  // is nothing to build: queries read the capture's columns directly. Only
  // out-of-order connections get time-sorted copies with materialized
  // prefix sums (a stable sort keeps capture order among equal timestamps;
  // any order among equals yields the same sums for the inclusive-range
  // queries, but stability makes the index reproducible byte-for-byte).
  const auto& sorted = capture.connectionSorted();
  const auto& packets = capture.packets();
  const auto& flatTs = capture.packetTimestamps();
  for (std::uint32_t c = 0; c < sorted.size(); ++c) {
    if (sorted[c]) continue;
    const SocketPair& conn = capture.connectionPairs()[c];
    std::vector<std::uint32_t> order = capture.connectionPackets()[c];
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return flatTs[a] < flatTs[b];
                     });
    SortedConn& out = resorted_[c];
    const std::size_t n = order.size();
    out.timestamps.resize(n);
    out.wireForward.assign(n + 1, 0);
    out.wireReverse.assign(n + 1, 0);
    out.payloadForward.assign(n + 1, 0);
    out.payloadReverse.assign(n + 1, 0);
    out.forward.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      const PacketRecord& pkt = packets[order[k]];
      out.timestamps[k] = pkt.timestampMs;
      const bool forward = pkt.pair.src == conn.src;
      out.forward[k] = forward ? 1 : 0;
      out.wireForward[k + 1] =
          out.wireForward[k] + (forward ? pkt.wireBytes : 0);
      out.wireReverse[k + 1] =
          out.wireReverse[k] + (forward ? 0 : pkt.wireBytes);
      out.payloadForward[k + 1] =
          out.payloadForward[k] + (forward ? pkt.payloadBytes : 0);
      out.payloadReverse[k + 1] =
          out.payloadReverse[k] + (forward ? 0 : pkt.payloadBytes);
    }
  }
}

CaptureFile::StreamVolume CaptureIndex::streamVolume(
    const SocketPair& pair, util::SimTimeMs fromMs,
    util::SimTimeMs toMs) const {
  CaptureFile::StreamVolume volume;
  if (capture_ == nullptr) return volume;
  const SocketPair conn = normalized(pair);
  const auto& ids = capture_->connectionIds();
  const auto it = ids.find(conn);
  if (it == ids.end()) return volume;
  const std::uint32_t c = it->second;

  std::uint64_t wireFwd = 0;
  std::uint64_t wireRev = 0;
  std::uint64_t payFwd = 0;
  std::uint64_t payRev = 0;
  std::size_t matched = 0;
  util::SimTimeMs firstFwd = CaptureFile::StreamVolume::kNoTimestamp;
  util::SimTimeMs firstRev = CaptureFile::StreamVolume::kNoTimestamp;

  const auto resortedIt = resorted_.find(c);
  if (resortedIt == resorted_.end()) {
    // Chronological connection: binary-search the capture's timestamp
    // column through the connection's packet-index list, and difference
    // its append-time cumulative sums. Nothing was copied to get here.
    const std::vector<std::uint32_t>& group =
        capture_->connectionPackets()[c];
    const auto& ts = capture_->packetTimestamps();
    std::size_t a = 0;
    for (std::size_t lo = 0, hi = group.size(); lo < hi;) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (ts[group[mid]] < fromMs)
        lo = mid + 1;
      else
        hi = mid;
      a = lo;
    }
    std::size_t b = a;
    for (std::size_t lo = a, hi = group.size(); lo < hi;) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (ts[group[mid]] <= toMs)
        lo = mid + 1;
      else
        hi = mid;
      b = lo;
    }
    if (a >= b) return volume;
    const std::uint32_t last = group[b - 1];
    const std::uint64_t baseWireFwd =
        a == 0 ? 0 : capture_->cumulativeWireForward()[group[a - 1]];
    const std::uint64_t baseWireRev =
        a == 0 ? 0 : capture_->cumulativeWireReverse()[group[a - 1]];
    const std::uint64_t basePayFwd =
        a == 0 ? 0 : capture_->cumulativePayloadForward()[group[a - 1]];
    const std::uint64_t basePayRev =
        a == 0 ? 0 : capture_->cumulativePayloadReverse()[group[a - 1]];
    wireFwd = capture_->cumulativeWireForward()[last] - baseWireFwd;
    wireRev = capture_->cumulativeWireReverse()[last] - baseWireRev;
    payFwd = capture_->cumulativePayloadForward()[last] - basePayFwd;
    payRev = capture_->cumulativePayloadReverse()[last] - basePayRev;
    matched = b - a;
    // First packet per direction: a short forward scan from the range
    // start, done the moment both directions have been seen. In time order
    // the first hit per direction is the minimum, matching the naive scan.
    const auto& pkts = capture_->packets();
    for (std::size_t k = a; k < b; ++k) {
      if (pkts[group[k]].pair.src == conn.src) {
        if (firstFwd == CaptureFile::StreamVolume::kNoTimestamp)
          firstFwd = ts[group[k]];
      } else if (firstRev == CaptureFile::StreamVolume::kNoTimestamp) {
        firstRev = ts[group[k]];
      }
      if (firstFwd != CaptureFile::StreamVolume::kNoTimestamp &&
          firstRev != CaptureFile::StreamVolume::kNoTimestamp)
        break;
    }
  } else {
    const SortedConn& sc = resortedIt->second;
    const auto a = static_cast<std::size_t>(
        std::lower_bound(sc.timestamps.begin(), sc.timestamps.end(), fromMs) -
        sc.timestamps.begin());
    const auto b = static_cast<std::size_t>(
        std::upper_bound(sc.timestamps.begin(), sc.timestamps.end(), toMs) -
        sc.timestamps.begin());
    if (a >= b) return volume;
    wireFwd = sc.wireForward[b] - sc.wireForward[a];
    wireRev = sc.wireReverse[b] - sc.wireReverse[a];
    payFwd = sc.payloadForward[b] - sc.payloadForward[a];
    payRev = sc.payloadReverse[b] - sc.payloadReverse[a];
    matched = b - a;
    for (std::size_t k = a; k < b; ++k) {
      if (sc.forward[k]) {
        if (firstFwd == CaptureFile::StreamVolume::kNoTimestamp)
          firstFwd = sc.timestamps[k];
      } else if (firstRev == CaptureFile::StreamVolume::kNoTimestamp) {
        firstRev = sc.timestamps[k];
      }
      if (firstFwd != CaptureFile::StreamVolume::kNoTimestamp &&
          firstRev != CaptureFile::StreamVolume::kNoTimestamp)
        break;
    }
  }

  // "Forward" is relative to the normalized orientation; the caller's src
  // may be either end. Mirror exactly the naive scan's direction test
  // (pkt.pair.src == pair.src), under which a src == dst pair counts every
  // packet as sent by src.
  const bool queryIsForward = pair.src == conn.src;
  volume.bytesFromSrc = queryIsForward ? wireFwd : wireRev;
  volume.bytesFromDst = queryIsForward ? wireRev : wireFwd;
  volume.payloadFromSrc = queryIsForward ? payFwd : payRev;
  volume.payloadFromDst = queryIsForward ? payRev : payFwd;
  volume.firstFromSrcMs = queryIsForward ? firstFwd : firstRev;
  volume.firstFromDstMs = queryIsForward ? firstRev : firstFwd;
  volume.packetCount = matched;
  return volume;
}

std::uint64_t CaptureFile::totalWireBytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& pkt : packets_) total += pkt.wireBytes;
  return total;
}

std::vector<std::uint8_t> CaptureFile::serialize() const {
  util::ByteWriter w;
  w.u32(kMagic);
  w.u32(static_cast<std::uint32_t>(packets_.size()));
  for (const auto& pkt : packets_) {
    w.u64(pkt.timestampMs);
    w.u8(static_cast<std::uint8_t>(pkt.proto));
    w.u32(pkt.pair.src.ip.value());
    w.u16(pkt.pair.src.port);
    w.u32(pkt.pair.dst.ip.value());
    w.u16(pkt.pair.dst.port);
    w.u32(pkt.wireBytes);
    w.u32(pkt.payloadBytes);
    w.str(pkt.dnsQname);
    w.u32(pkt.dnsAnswer.value());
  }
  w.u32(static_cast<std::uint32_t>(http_.size()));
  for (const auto& exchange : http_) {
    w.u64(exchange.timestampMs);
    w.u32(exchange.pair.src.ip.value());
    w.u16(exchange.pair.src.port);
    w.u32(exchange.pair.dst.ip.value());
    w.u16(exchange.pair.dst.port);
    w.str(exchange.host);
    w.str(exchange.path);
    w.str(exchange.userAgent);
    w.u8(exchange.post ? 1 : 0);
  }
  return w.take();
}

CaptureFile CaptureFile::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.u32() != kMagic) throw util::DecodeError("CaptureFile: bad magic");
  // Each packet record occupies at least 37 bytes on the wire.
  const std::uint32_t count = r.countCheck(r.u32(), 37);
  CaptureFile capture;
  capture.packets_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PacketRecord pkt;
    pkt.timestampMs = r.u64();
    pkt.proto = static_cast<Proto>(r.u8());
    pkt.pair.src.ip = Ipv4Addr(r.u32());
    pkt.pair.src.port = r.u16();
    pkt.pair.dst.ip = Ipv4Addr(r.u32());
    pkt.pair.dst.port = r.u16();
    pkt.wireBytes = r.u32();
    pkt.payloadBytes = r.u32();
    pkt.dnsQname = r.str();
    pkt.dnsAnswer = Ipv4Addr(r.u32());
    capture.append(std::move(pkt));
  }
  // Each HTTP exchange record occupies at least 33 bytes.
  const std::uint32_t httpCount = r.countCheck(r.u32(), 33);
  capture.http_.reserve(httpCount);
  for (std::uint32_t i = 0; i < httpCount; ++i) {
    HttpExchange exchange;
    exchange.timestampMs = r.u64();
    exchange.pair.src.ip = Ipv4Addr(r.u32());
    exchange.pair.src.port = r.u16();
    exchange.pair.dst.ip = Ipv4Addr(r.u32());
    exchange.pair.dst.port = r.u16();
    exchange.host = r.str();
    exchange.path = r.str();
    exchange.userAgent = r.str();
    exchange.post = r.u8() != 0;
    capture.http_.push_back(std::move(exchange));
  }
  if (!r.atEnd()) throw util::DecodeError("CaptureFile: trailing bytes");
  return capture;
}

}  // namespace libspector::net
