#include "net/capture.hpp"

#include "util/bytes.hpp"

namespace libspector::net {

namespace {
constexpr std::uint32_t kMagic = 0x50434c53;  // "SLCP"
}

void CaptureFile::append(PacketRecord record) {
  packets_.push_back(std::move(record));
}

void CaptureFile::appendHttp(HttpExchange exchange) {
  http_.push_back(std::move(exchange));
}

CaptureFile::StreamVolume CaptureFile::streamVolume(const SocketPair& pair,
                                                    util::SimTimeMs fromMs,
                                                    util::SimTimeMs toMs) const {
  StreamVolume volume;
  for (const auto& pkt : packets_) {
    if (pkt.timestampMs < fromMs || pkt.timestampMs > toMs) continue;
    if (!pkt.pair.sameConnection(pair)) continue;
    if (pkt.pair.src == pair.src) {
      volume.bytesFromSrc += pkt.wireBytes;
      volume.payloadFromSrc += pkt.payloadBytes;
    } else {
      volume.bytesFromDst += pkt.wireBytes;
      volume.payloadFromDst += pkt.payloadBytes;
    }
    ++volume.packetCount;
  }
  return volume;
}

std::uint64_t CaptureFile::totalWireBytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& pkt : packets_) total += pkt.wireBytes;
  return total;
}

std::vector<std::uint8_t> CaptureFile::serialize() const {
  util::ByteWriter w;
  w.u32(kMagic);
  w.u32(static_cast<std::uint32_t>(packets_.size()));
  for (const auto& pkt : packets_) {
    w.u64(pkt.timestampMs);
    w.u8(static_cast<std::uint8_t>(pkt.proto));
    w.u32(pkt.pair.src.ip.value());
    w.u16(pkt.pair.src.port);
    w.u32(pkt.pair.dst.ip.value());
    w.u16(pkt.pair.dst.port);
    w.u32(pkt.wireBytes);
    w.u32(pkt.payloadBytes);
    w.str(pkt.dnsQname);
    w.u32(pkt.dnsAnswer.value());
  }
  w.u32(static_cast<std::uint32_t>(http_.size()));
  for (const auto& exchange : http_) {
    w.u64(exchange.timestampMs);
    w.u32(exchange.pair.src.ip.value());
    w.u16(exchange.pair.src.port);
    w.u32(exchange.pair.dst.ip.value());
    w.u16(exchange.pair.dst.port);
    w.str(exchange.host);
    w.str(exchange.path);
    w.str(exchange.userAgent);
    w.u8(exchange.post ? 1 : 0);
  }
  return w.take();
}

CaptureFile CaptureFile::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.u32() != kMagic) throw util::DecodeError("CaptureFile: bad magic");
  // Each packet record occupies at least 37 bytes on the wire.
  const std::uint32_t count = r.countCheck(r.u32(), 37);
  CaptureFile capture;
  capture.packets_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PacketRecord pkt;
    pkt.timestampMs = r.u64();
    pkt.proto = static_cast<Proto>(r.u8());
    pkt.pair.src.ip = Ipv4Addr(r.u32());
    pkt.pair.src.port = r.u16();
    pkt.pair.dst.ip = Ipv4Addr(r.u32());
    pkt.pair.dst.port = r.u16();
    pkt.wireBytes = r.u32();
    pkt.payloadBytes = r.u32();
    pkt.dnsQname = r.str();
    pkt.dnsAnswer = Ipv4Addr(r.u32());
    capture.packets_.push_back(std::move(pkt));
  }
  // Each HTTP exchange record occupies at least 33 bytes.
  const std::uint32_t httpCount = r.countCheck(r.u32(), 33);
  capture.http_.reserve(httpCount);
  for (std::uint32_t i = 0; i < httpCount; ++i) {
    HttpExchange exchange;
    exchange.timestampMs = r.u64();
    exchange.pair.src.ip = Ipv4Addr(r.u32());
    exchange.pair.src.port = r.u16();
    exchange.pair.dst.ip = Ipv4Addr(r.u32());
    exchange.pair.dst.port = r.u16();
    exchange.host = r.str();
    exchange.path = r.str();
    exchange.userAgent = r.str();
    exchange.post = r.u8() != 0;
    capture.http_.push_back(std::move(exchange));
  }
  if (!r.atEnd()) throw util::DecodeError("CaptureFile: trailing bytes");
  return capture;
}

}  // namespace libspector::net
