#include "net/capture.hpp"

#include <algorithm>

#include "util/bytes.hpp"

namespace libspector::net {

namespace {
constexpr std::uint32_t kMagic = 0x50434c53;  // "SLCP"
}

void CaptureFile::append(PacketRecord record) {
  if (record.proto == Proto::Tcp) tcpPayloadBytes_ += record.payloadBytes;
  packets_.push_back(std::move(record));
}

void CaptureFile::appendHttp(HttpExchange exchange) {
  http_.push_back(std::move(exchange));
}

CaptureFile::StreamVolume CaptureFile::streamVolume(const SocketPair& pair,
                                                    util::SimTimeMs fromMs,
                                                    util::SimTimeMs toMs) const {
  StreamVolume volume;
  for (const auto& pkt : packets_) {
    if (pkt.timestampMs < fromMs || pkt.timestampMs > toMs) continue;
    if (!pkt.pair.sameConnection(pair)) continue;
    if (pkt.pair.src == pair.src) {
      volume.bytesFromSrc += pkt.wireBytes;
      volume.payloadFromSrc += pkt.payloadBytes;
    } else {
      volume.bytesFromDst += pkt.wireBytes;
      volume.payloadFromDst += pkt.payloadBytes;
    }
    ++volume.packetCount;
  }
  return volume;
}

CaptureIndex::CaptureIndex(const CaptureFile& capture)
    : packets_(capture.size()) {
  const auto& packets = capture.packets();
  if (packets.empty()) return;

  // Pass 1: assign a dense id to each normalized connection and count its
  // packets, so pass 2 places every index into an exactly-sized slot with
  // no vector regrowth (this constructor is on the per-run attribution
  // path; allocation churn here shows up directly in study throughput).
  const std::size_t count = packets.size();
  idOf_.reserve(count / 8 + 8);
  std::vector<SocketPair> connections;
  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> connOf(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto [it, inserted] = idOf_.try_emplace(
        normalized(packets[i].pair), static_cast<std::uint32_t>(counts.size()));
    if (inserted) {
      connections.push_back(it->first);
      counts.push_back(0);
    }
    connOf[i] = it->second;
    ++counts[it->second];
    if (packets[i].proto == Proto::Tcp) tcpPayload_ += packets[i].payloadBytes;
  }

  // Pass 2: scatter packet indices into contiguous per-connection ranges,
  // preserving capture order within each connection.
  ranges_.resize(counts.size());
  std::uint32_t offset = 0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    ranges_[c] = {offset, offset + counts[c]};
    offset += counts[c];
  }
  std::vector<std::uint32_t> order(count);
  std::vector<std::uint32_t> cursor(counts.size());
  for (std::size_t c = 0; c < counts.size(); ++c) cursor[c] = ranges_[c].first;
  for (std::size_t i = 0; i < count; ++i)
    order[cursor[connOf[i]]++] = static_cast<std::uint32_t>(i);

  // Pass 3: per connection, time-sort and accumulate prefix sums into the
  // flat arrays. The capture is recorded from a monotonic clock, so each
  // range is almost always already sorted — check before paying for the
  // sort. A stable sort keeps capture order among equal timestamps; since
  // queries are inclusive timestamp ranges, any order among equals yields
  // the same sums, but stability makes the index reproducible
  // byte-for-byte.
  timestamps_.resize(count);
  wireForward_.resize(count + counts.size());
  wireReverse_.resize(count + counts.size());
  payloadForward_.resize(count + counts.size());
  payloadReverse_.resize(count + counts.size());
  for (std::size_t c = 0; c < connections.size(); ++c) {
    const SocketPair& conn = connections[c];
    const auto first = order.begin() + ranges_[c].first;
    const auto last = order.begin() + ranges_[c].last;
    const auto byTimestamp = [&](std::uint32_t a, std::uint32_t b) {
      return packets[a].timestampMs < packets[b].timestampMs;
    };
    if (!std::is_sorted(first, last, byTimestamp))
      std::stable_sort(first, last, byTimestamp);

    const std::size_t n = static_cast<std::size_t>(last - first);
    const std::size_t base = ranges_[c].first + c;  // prefix block start
    wireForward_[base] = 0;
    wireReverse_[base] = 0;
    payloadForward_[base] = 0;
    payloadReverse_[base] = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const PacketRecord& pkt = packets[first[k]];
      timestamps_[ranges_[c].first + k] = pkt.timestampMs;
      const bool forward = pkt.pair.src == conn.src;
      wireForward_[base + k + 1] =
          wireForward_[base + k] + (forward ? pkt.wireBytes : 0);
      wireReverse_[base + k + 1] =
          wireReverse_[base + k] + (forward ? 0 : pkt.wireBytes);
      payloadForward_[base + k + 1] =
          payloadForward_[base + k] + (forward ? pkt.payloadBytes : 0);
      payloadReverse_[base + k + 1] =
          payloadReverse_[base + k] + (forward ? 0 : pkt.payloadBytes);
    }
  }
}

CaptureFile::StreamVolume CaptureIndex::streamVolume(
    const SocketPair& pair, util::SimTimeMs fromMs,
    util::SimTimeMs toMs) const {
  CaptureFile::StreamVolume volume;
  const SocketPair conn = normalized(pair);
  const auto it = idOf_.find(conn);
  if (it == idOf_.end()) return volume;
  const std::uint32_t c = it->second;
  const Range range = ranges_[c];

  const auto tsFirst = timestamps_.begin() + range.first;
  const auto tsLast = timestamps_.begin() + range.last;
  const auto a = static_cast<std::size_t>(
      std::lower_bound(tsFirst, tsLast, fromMs) - tsFirst);
  const auto b = static_cast<std::size_t>(
      std::upper_bound(tsFirst, tsLast, toMs) - tsFirst);
  if (a >= b) return volume;

  const std::size_t base = range.first + c;  // prefix block start
  const std::uint64_t wireFwd = wireForward_[base + b] - wireForward_[base + a];
  const std::uint64_t wireRev = wireReverse_[base + b] - wireReverse_[base + a];
  const std::uint64_t payFwd =
      payloadForward_[base + b] - payloadForward_[base + a];
  const std::uint64_t payRev =
      payloadReverse_[base + b] - payloadReverse_[base + a];

  // "Forward" is relative to the normalized orientation; the caller's src
  // may be either end. Mirror exactly the naive scan's direction test
  // (pkt.pair.src == pair.src), under which a src == dst pair counts every
  // packet as sent by src.
  const bool queryIsForward = pair.src == conn.src;
  volume.bytesFromSrc = queryIsForward ? wireFwd : wireRev;
  volume.bytesFromDst = queryIsForward ? wireRev : wireFwd;
  volume.payloadFromSrc = queryIsForward ? payFwd : payRev;
  volume.payloadFromDst = queryIsForward ? payRev : payFwd;
  volume.packetCount = b - a;
  return volume;
}

std::uint64_t CaptureFile::totalWireBytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& pkt : packets_) total += pkt.wireBytes;
  return total;
}

std::vector<std::uint8_t> CaptureFile::serialize() const {
  util::ByteWriter w;
  w.u32(kMagic);
  w.u32(static_cast<std::uint32_t>(packets_.size()));
  for (const auto& pkt : packets_) {
    w.u64(pkt.timestampMs);
    w.u8(static_cast<std::uint8_t>(pkt.proto));
    w.u32(pkt.pair.src.ip.value());
    w.u16(pkt.pair.src.port);
    w.u32(pkt.pair.dst.ip.value());
    w.u16(pkt.pair.dst.port);
    w.u32(pkt.wireBytes);
    w.u32(pkt.payloadBytes);
    w.str(pkt.dnsQname);
    w.u32(pkt.dnsAnswer.value());
  }
  w.u32(static_cast<std::uint32_t>(http_.size()));
  for (const auto& exchange : http_) {
    w.u64(exchange.timestampMs);
    w.u32(exchange.pair.src.ip.value());
    w.u16(exchange.pair.src.port);
    w.u32(exchange.pair.dst.ip.value());
    w.u16(exchange.pair.dst.port);
    w.str(exchange.host);
    w.str(exchange.path);
    w.str(exchange.userAgent);
    w.u8(exchange.post ? 1 : 0);
  }
  return w.take();
}

CaptureFile CaptureFile::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.u32() != kMagic) throw util::DecodeError("CaptureFile: bad magic");
  // Each packet record occupies at least 37 bytes on the wire.
  const std::uint32_t count = r.countCheck(r.u32(), 37);
  CaptureFile capture;
  capture.packets_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PacketRecord pkt;
    pkt.timestampMs = r.u64();
    pkt.proto = static_cast<Proto>(r.u8());
    pkt.pair.src.ip = Ipv4Addr(r.u32());
    pkt.pair.src.port = r.u16();
    pkt.pair.dst.ip = Ipv4Addr(r.u32());
    pkt.pair.dst.port = r.u16();
    pkt.wireBytes = r.u32();
    pkt.payloadBytes = r.u32();
    pkt.dnsQname = r.str();
    pkt.dnsAnswer = Ipv4Addr(r.u32());
    capture.append(std::move(pkt));
  }
  // Each HTTP exchange record occupies at least 33 bytes.
  const std::uint32_t httpCount = r.countCheck(r.u32(), 33);
  capture.http_.reserve(httpCount);
  for (std::uint32_t i = 0; i < httpCount; ++i) {
    HttpExchange exchange;
    exchange.timestampMs = r.u64();
    exchange.pair.src.ip = Ipv4Addr(r.u32());
    exchange.pair.src.port = r.u16();
    exchange.pair.dst.ip = Ipv4Addr(r.u32());
    exchange.pair.dst.port = r.u16();
    exchange.host = r.str();
    exchange.path = r.str();
    exchange.userAgent = r.str();
    exchange.post = r.u8() != 0;
    capture.http_.push_back(std::move(exchange));
  }
  if (!r.atEnd()) throw util::DecodeError("CaptureFile: trailing bytes");
  return capture;
}

}  // namespace libspector::net
