// IPv4 addressing and socket pairs.
//
// A socket pair — the (srcIP, srcPort, dstIP, dstPort) tuple — is the key
// Libspector uses to join a UDP context report with the TCP stream it
// describes in the packet capture (paper §II-A, §III-E).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace libspector::net {

/// An IPv4 address stored in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_(std::uint32_t{a} << 24 | std::uint32_t{b} << 16 |
               std::uint32_t{c} << 8 | std::uint32_t{d}) {}

  /// Parse dotted-quad notation; std::nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::string str() const;

  [[nodiscard]] constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// IP:port pair.
struct SockEndpoint {
  Ipv4Addr ip;
  std::uint16_t port = 0;

  [[nodiscard]] std::string str() const;
  [[nodiscard]] constexpr auto operator<=>(const SockEndpoint&) const = default;
};

/// The four connection parameters of a socket, oriented src -> dst.
struct SocketPair {
  SockEndpoint src;
  SockEndpoint dst;

  /// The same connection seen from the other end.
  [[nodiscard]] constexpr SocketPair reversed() const noexcept { return {dst, src}; }

  /// True when `other` names the same connection in either orientation,
  /// which is how capture packets (recorded sender-first) are matched to a
  /// socket recorded device-first.
  [[nodiscard]] constexpr bool sameConnection(const SocketPair& other) const noexcept {
    return (*this == other) || (reversed() == other);
  }

  [[nodiscard]] std::string str() const;
  [[nodiscard]] constexpr auto operator<=>(const SocketPair&) const = default;
};

}  // namespace libspector::net

template <>
struct std::hash<libspector::net::Ipv4Addr> {
  std::size_t operator()(const libspector::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<libspector::net::SockEndpoint> {
  std::size_t operator()(const libspector::net::SockEndpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{e.ip.value()} << 16) ^ e.port);
  }
};

template <>
struct std::hash<libspector::net::SocketPair> {
  std::size_t operator()(const libspector::net::SocketPair& p) const noexcept {
    const std::size_t h1 = std::hash<libspector::net::SockEndpoint>{}(p.src);
    const std::size_t h2 = std::hash<libspector::net::SockEndpoint>{}(p.dst);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
