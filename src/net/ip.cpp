#include "net/ip.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace libspector::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), octet);
    if (ec != std::errc{} || ptr != part.data() + part.size() || octet > 255)
      return std::nullopt;
    value = value << 8 | octet;
  }
  return Ipv4Addr(value);
}

std::string Ipv4Addr::str() const {
  return std::to_string(value_ >> 24) + "." + std::to_string((value_ >> 16) & 0xff) +
         "." + std::to_string((value_ >> 8) & 0xff) + "." +
         std::to_string(value_ & 0xff);
}

std::string SockEndpoint::str() const {
  return ip.str() + ":" + std::to_string(port);
}

std::string SocketPair::str() const {
  return src.str() + " -> " + dst.str();
}

}  // namespace libspector::net
