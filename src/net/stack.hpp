// The emulator's userspace network stack.
//
// One NetworkStack exists per emulator instance. It owns ephemeral port
// allocation, TCP connection state, DNS resolution and the packet capture,
// and models segment-level traffic (handshake, MSS-sized data segments,
// ACKs, teardown) so that the offline volume computation over the capture
// behaves like the paper's pcap traversal.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/capture.hpp"
#include "net/dns.hpp"
#include "net/ip.hpp"
#include "net/server.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace libspector::net {

/// Identifier of a socket within one NetworkStack, unique for the lifetime
/// of the stack (never reused, unlike ports).
using SocketId = std::uint64_t;

struct StackConfig {
  Ipv4Addr deviceIp{10, 0, 2, 15};           // Android emulator guest address
  SockEndpoint dnsServer{{10, 0, 2, 3}, 53}; // emulator virtual router DNS
  std::uint16_t ephemeralBase = 32768;
  std::uint16_t ephemeralLimit = 60999;
  /// Probability that an individual TCP connect fails after SYN
  /// retransmission (unreachable host, refused connection).
  double connectFailureProb = 0.0;
  /// Mean simulated round-trip time drawn per connection, milliseconds.
  std::uint32_t rttMeanMs = 40;
  /// DNS answer lifetime; expired entries re-query (and multi-homed
  /// domains rotate A records).
  util::SimTimeMs dnsTtlMs = 120 * 1000;
  /// Probability an outgoing UDP datagram is lost en route to its sink
  /// (the Socket Supervisor's report channel is best-effort UDP).
  double udpLossProb = 0.0;
};

/// Result of a completed request/response exchange on a TCP socket.
struct TransferResult {
  std::uint64_t sentPayloadBytes = 0;
  std::uint64_t recvPayloadBytes = 0;
};

class NetworkStack {
 public:
  NetworkStack(const ServerFarm& farm, util::SimClock& clock, util::Rng rng,
               StackConfig config = {});

  /// Resolve a domain via the per-emulator DNS cache (records DNS datagrams).
  std::optional<Ipv4Addr> resolve(const std::string& domain);

  struct ConnectResult {
    SocketId id = 0;
    SocketPair pair;  // device endpoint first
  };

  /// Establish a TCP connection to `domain`:`port`. Performs DNS resolution
  /// and the three-way handshake; returns std::nullopt on NXDOMAIN or
  /// (injected) connect failure. Failure still leaves SYN packets in the
  /// capture, as a real trace would show.
  std::optional<ConnectResult> connectTcp(const std::string& domain,
                                          std::uint16_t port);

  /// HTTP-level request metadata, recorded in the capture's exchange log
  /// (what a DPI pass over the pcap would reconstruct).
  struct HttpRequestInfo {
    std::string path = "/";
    std::string userAgent;
    bool post = false;
  };

  /// Send `requestBytes` of payload and receive the server-modelled
  /// response. The socket must be open. When `http` is given, the exchange
  /// (host = connected domain, path, User-Agent) is logged in the capture.
  TransferResult transfer(SocketId id, std::uint32_t requestBytes,
                          const HttpRequestInfo* http = nullptr);

  /// FIN/ACK teardown; frees the ephemeral port for reuse.
  void closeTcp(SocketId id);

  /// Fire-and-forget UDP datagram (the Socket Supervisor's report channel).
  /// Recorded in the capture and delivered to a sink registered for `dst`.
  void sendUdpDatagram(SockEndpoint dst, std::span<const std::uint8_t> payload);

  /// Datagram delivery callback: (source endpoint, payload bytes).
  using UdpSink =
      std::function<void(const SockEndpoint&, std::span<const std::uint8_t>)>;
  void registerUdpSink(SockEndpoint listenAddr, UdpSink sink);

  /// Connection parameters of an open or closed socket (getsockname +
  /// getpeername); nullptr for an unknown id.
  [[nodiscard]] const SocketPair* pairOf(SocketId id) const;
  /// Domain the socket was connected to; nullptr for an unknown id.
  [[nodiscard]] const std::string* domainOf(SocketId id) const;
  [[nodiscard]] bool isOpen(SocketId id) const;

  [[nodiscard]] CaptureFile& capture() noexcept { return capture_; }
  [[nodiscard]] const CaptureFile& capture() const noexcept { return capture_; }
  [[nodiscard]] const DnsResolver& dns() const noexcept { return dns_; }
  [[nodiscard]] std::size_t openSocketCount() const noexcept { return open_.size(); }

 private:
  struct Connection {
    SocketPair pair;
    std::string domain;
    bool open = false;
  };

  std::uint16_t allocatePort(const SockEndpoint& dst);
  void emitTcp(const SocketPair& pair, std::uint32_t payload);

  const ServerFarm& farm_;
  util::SimClock& clock_;
  util::Rng rng_;
  StackConfig config_;
  CaptureFile capture_;
  DnsResolver dns_;
  std::unordered_map<SocketId, Connection> connections_;
  std::unordered_set<SocketId> open_;
  std::unordered_map<SockEndpoint, UdpSink> sinks_;
  /// (dstEndpoint, srcPort) pairs currently in use, to keep live socket
  /// pairs unique at any instant (the invariant §II-B2b relies on).
  std::unordered_set<std::uint64_t> livePairKeys_;
  std::uint16_t nextPort_;
  SocketId nextSocketId_ = 1;
};

}  // namespace libspector::net
