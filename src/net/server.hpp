// Remote endpoint behaviour models.
//
// The paper's apps talk to real ad networks, CDNs, analytics backends, etc.
// Our substitute is a ServerFarm: a registry of endpoint profiles, each with
// a ground-truth category and a heavy-tailed response-size model.  CDN
// realism matters for reproducing §IV-B: several logical domains may share
// one IP, and CDN endpoints serve far larger responses than ad or analytics
// endpoints.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"
#include "util/rng.hpp"

namespace libspector::net {

/// Behaviour and ground truth of one remote domain.
struct EndpointProfile {
  std::string domain;
  /// Ground-truth generic category (one of the paper's 17, e.g. "cdn",
  /// "advertisements"); the VirusTotal simulator derives vendor labels from
  /// this, the analysis never reads it directly.
  std::string trueCategory;
  /// Response size model: lognormal(mu, sigma) clamped to [minBytes, maxBytes].
  double responseLogMu = 8.0;
  double responseLogSigma = 1.0;
  std::uint32_t minResponseBytes = 128;
  std::uint32_t maxResponseBytes = 8 * 1024 * 1024;

  [[nodiscard]] bool operator==(const EndpointProfile&) const = default;
};

/// Registry of all remote endpoints reachable from the emulators, plus the
/// authoritative domain -> IP mapping the DNS service answers from.
class ServerFarm {
 public:
  /// Register a domain. When `sharedIp` is set the domain is CNAMEd onto an
  /// existing address (CDN co-hosting); otherwise a fresh address from
  /// 198.18.0.0/15 (benchmark address space) is assigned.
  /// Returns the assigned address. Re-registering a domain is an error.
  Ipv4Addr addEndpoint(EndpointProfile profile,
                       std::optional<Ipv4Addr> sharedIp = std::nullopt);

  /// Add another A record for an existing domain (CDNs rotate among several
  /// frontend addresses). Returns the new address.
  Ipv4Addr addAlternateAddress(const std::string& domain);

  [[nodiscard]] const EndpointProfile* byDomain(const std::string& domain) const;
  /// The domain's primary address (first A record).
  [[nodiscard]] std::optional<Ipv4Addr> ipOf(const std::string& domain) const;
  /// Every A record of the domain, in registration order (empty if unknown).
  [[nodiscard]] std::vector<Ipv4Addr> addressesOf(const std::string& domain) const;

  /// Domains hosted on an address (one for dedicated hosts, several on CDNs).
  [[nodiscard]] std::vector<std::string> domainsOn(Ipv4Addr ip) const;

  /// Draw a response size for a request to `domain`. Unknown domains get a
  /// small default response (connection to a dead host still elicits
  /// RST-sized traffic in practice).
  [[nodiscard]] std::uint32_t responseSize(const std::string& domain,
                                           util::Rng& rng) const;

  [[nodiscard]] std::size_t endpointCount() const noexcept { return profiles_.size(); }
  [[nodiscard]] std::vector<std::string> allDomains() const;

 private:
  Ipv4Addr allocateAddress();

  std::unordered_map<std::string, EndpointProfile> profiles_;
  std::unordered_map<std::string, std::vector<Ipv4Addr>> addresses_;
  std::unordered_map<Ipv4Addr, std::vector<std::string>> reverse_;
  std::uint32_t nextHostId_ = 1;
};

}  // namespace libspector::net
