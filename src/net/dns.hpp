// Per-emulator DNS resolution.
//
// Resolution queries the ServerFarm's authoritative records, caches answers
// per emulator, and records query/response datagrams in the capture file —
// the paper observes DNS makes up 97% of the (otherwise negligible) UDP
// traffic, and §III-F categorizes exactly the domains seen in DNS requests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/capture.hpp"
#include "net/ip.hpp"
#include "net/server.hpp"
#include "util/clock.hpp"

namespace libspector::net {

class DnsResolver {
 public:
  /// Answers live for `ttlMs` of simulated time; after expiry the next
  /// lookup re-queries, and multi-homed domains (CDN frontends) rotate
  /// through their A records — the situation that forces the offline
  /// pipeline to use the *most recent* resolution per address.
  DnsResolver(const ServerFarm& farm, SockEndpoint deviceEndpoint,
              SockEndpoint dnsServer,
              util::SimTimeMs ttlMs = 120 * 1000) noexcept;

  /// Resolve `domain`, recording query/response packets into `capture` on a
  /// cache miss or expired entry. Returns std::nullopt for NXDOMAIN (still
  /// records the query and the negative response).
  std::optional<Ipv4Addr> resolve(const std::string& domain,
                                  util::SimClock& clock, CaptureFile& capture);

  /// Domains this resolver has successfully resolved, in first-seen order.
  [[nodiscard]] const std::vector<std::string>& resolvedDomains() const noexcept {
    return resolvedOrder_;
  }

  [[nodiscard]] std::size_t cacheSize() const noexcept { return cache_.size(); }
  [[nodiscard]] std::size_t queriesSent() const noexcept { return queriesSent_; }

 private:
  struct CacheEntry {
    std::optional<Ipv4Addr> answer;
    util::SimTimeMs expiresAtMs = 0;
    std::size_t rotation = 0;   // next A-record index for this domain
    bool recorded = false;      // already listed in resolvedOrder_
  };

  const ServerFarm& farm_;
  SockEndpoint device_;
  SockEndpoint dnsServer_;
  util::SimTimeMs ttlMs_;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::vector<std::string> resolvedOrder_;
  std::size_t queriesSent_ = 0;
};

}  // namespace libspector::net
