#include "net/stack.hpp"

#include <stdexcept>

namespace libspector::net {

namespace {

constexpr std::uint32_t kMss = 1460;       // TCP payload per segment
constexpr std::uint32_t kTcpHeader = 40;   // IPv4 + TCP header estimate
constexpr std::uint32_t kUdpHeader = 28;   // IPv4 + UDP header estimate

// Capture records coalesce runs of segments so multi-megabyte responses do
// not inflate the capture; wire byte totals stay exact (payload + one
// header per underlying segment).
constexpr std::uint32_t kMaxRecordsPerBurst = 6;

std::uint64_t pairKey(const SockEndpoint& dst, std::uint16_t srcPort) noexcept {
  return (std::uint64_t{dst.ip.value()} << 32) |
         (std::uint64_t{dst.port} << 16) | srcPort;
}

std::uint32_t segmentCount(std::uint64_t payload) noexcept {
  return payload == 0 ? 0 : static_cast<std::uint32_t>((payload + kMss - 1) / kMss);
}

}  // namespace

NetworkStack::NetworkStack(const ServerFarm& farm, util::SimClock& clock,
                           util::Rng rng, StackConfig config)
    : farm_(farm),
      clock_(clock),
      rng_(rng),
      config_(config),
      dns_(farm, SockEndpoint{config.deviceIp, 0}, config.dnsServer,
           config.dnsTtlMs),
      nextPort_(config.ephemeralBase) {
  if (config_.ephemeralBase >= config_.ephemeralLimit)
    throw std::invalid_argument("NetworkStack: bad ephemeral port range");
}

std::optional<Ipv4Addr> NetworkStack::resolve(const std::string& domain) {
  return dns_.resolve(domain, clock_, capture_);
}

std::uint16_t NetworkStack::allocatePort(const SockEndpoint& dst) {
  const std::uint16_t range =
      static_cast<std::uint16_t>(config_.ephemeralLimit - config_.ephemeralBase);
  for (std::uint16_t attempt = 0; attempt <= range; ++attempt) {
    const std::uint16_t candidate = nextPort_;
    nextPort_ = nextPort_ >= config_.ephemeralLimit ? config_.ephemeralBase
                                                    : static_cast<std::uint16_t>(nextPort_ + 1);
    if (!livePairKeys_.contains(pairKey(dst, candidate))) return candidate;
  }
  throw std::runtime_error("NetworkStack: ephemeral ports exhausted for destination");
}

std::optional<NetworkStack::ConnectResult> NetworkStack::connectTcp(
    const std::string& domain, std::uint16_t port) {
  const auto ip = resolve(domain);
  if (!ip) return std::nullopt;  // NXDOMAIN

  const SockEndpoint dst{*ip, port};
  const SockEndpoint src{config_.deviceIp, allocatePort(dst)};
  const SocketPair pair{src, dst};
  const auto rtt = static_cast<std::uint32_t>(
      rng_.uniform(config_.rttMeanMs / 2, config_.rttMeanMs * 3 / 2));

  // SYN
  capture_.append(makeTcpPacket(clock_.now(), pair, kTcpHeader, 0));
  clock_.advance(rtt / 2 + 1);

  if (rng_.chance(config_.connectFailureProb)) {
    // Retransmitted SYN, then give up: connection never established, so no
    // post-hook fires and no socket id is handed out.
    capture_.append(makeTcpPacket(clock_.now(), pair, kTcpHeader, 0));
    clock_.advance(rtt);
    return std::nullopt;
  }

  // SYN-ACK, ACK
  capture_.append(makeTcpPacket(clock_.now(), pair.reversed(), kTcpHeader, 0));
  clock_.advance(rtt / 2 + 1);
  capture_.append(makeTcpPacket(clock_.now(), pair, kTcpHeader, 0));

  const SocketId id = nextSocketId_++;
  connections_.emplace(id, Connection{pair, domain, true});
  open_.insert(id);
  livePairKeys_.insert(pairKey(dst, src.port));
  return ConnectResult{id, pair};
}

void NetworkStack::emitTcp(const SocketPair& pair, std::uint32_t payload) {
  const std::uint32_t segments = segmentCount(payload);
  if (segments == 0) {
    capture_.append(makeTcpPacket(clock_.now(), pair, kTcpHeader, 0));
    clock_.advance(1);
    return;
  }
  // Coalesce segments into at most kMaxRecordsPerBurst records.
  const std::uint32_t records = std::min(segments, kMaxRecordsPerBurst);
  std::uint32_t payloadLeft = payload;
  std::uint32_t segmentsLeft = segments;
  for (std::uint32_t i = 0; i < records; ++i) {
    const std::uint32_t segsHere =
        (segmentsLeft + (records - i) - 1) / (records - i);
    const std::uint32_t payloadHere =
        i + 1 == records ? payloadLeft
                         : std::min(payloadLeft, segsHere * kMss);
    capture_.append(makeTcpPacket(clock_.now(), pair,
                                    payloadHere + segsHere * kTcpHeader,
                                    payloadHere));
    clock_.advance(1);
    payloadLeft -= payloadHere;
    segmentsLeft -= segsHere;
  }
}

TransferResult NetworkStack::transfer(SocketId id, std::uint32_t requestBytes,
                                      const HttpRequestInfo* http) {
  const auto it = connections_.find(id);
  if (it == connections_.end() || !it->second.open)
    throw std::logic_error("NetworkStack::transfer: socket not open");
  Connection& conn = it->second;

  if (http != nullptr) {
    capture_.appendHttp({clock_.now(), conn.pair, conn.domain, http->path,
                         http->userAgent, http->post});
  }
  emitTcp(conn.pair, requestBytes);

  const std::uint32_t responseBytes = farm_.responseSize(conn.domain, rng_);
  emitTcp(conn.pair.reversed(), responseBytes);

  // Delayed ACKs: one 40-byte ACK from the device per four response
  // segments (coalesced by the emulator NIC's receive offload).
  const std::uint32_t acks = (segmentCount(responseBytes) + 3) / 4;
  if (acks > 0) {
    capture_.append(makeTcpPacket(clock_.now(), conn.pair, acks * kTcpHeader, 0));
    clock_.advance(1);
  }
  return {requestBytes, responseBytes};
}

void NetworkStack::closeTcp(SocketId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end() || !it->second.open)
    throw std::logic_error("NetworkStack::closeTcp: socket not open");
  Connection& conn = it->second;
  // FIN, FIN-ACK
  capture_.append(makeTcpPacket(clock_.now(), conn.pair, kTcpHeader, 0));
  capture_.append(makeTcpPacket(clock_.now(), conn.pair.reversed(), kTcpHeader, 0));
  clock_.advance(1);
  conn.open = false;
  open_.erase(id);
  livePairKeys_.erase(pairKey(conn.pair.dst, conn.pair.src.port));
}

void NetworkStack::sendUdpDatagram(SockEndpoint dst,
                                   std::span<const std::uint8_t> payload) {
  const SockEndpoint src{config_.deviceIp, allocatePort(dst)};
  const SocketPair pair{src, dst};
  capture_.append(makeUdpPacket(
      clock_.now(), pair,
      static_cast<std::uint32_t>(payload.size()) + kUdpHeader,
      static_cast<std::uint32_t>(payload.size())));
  // Best-effort delivery: the datagram is on the wire (captured above)
  // but may never reach the sink.
  if (rng_.chance(config_.udpLossProb)) return;
  if (const auto it = sinks_.find(dst); it != sinks_.end()) it->second(src, payload);
}

void NetworkStack::registerUdpSink(SockEndpoint listenAddr, UdpSink sink) {
  sinks_[listenAddr] = std::move(sink);
}

const SocketPair* NetworkStack::pairOf(SocketId id) const {
  const auto it = connections_.find(id);
  return it == connections_.end() ? nullptr : &it->second.pair;
}

const std::string* NetworkStack::domainOf(SocketId id) const {
  const auto it = connections_.find(id);
  return it == connections_.end() ? nullptr : &it->second.domain;
}

bool NetworkStack::isOpen(SocketId id) const { return open_.contains(id); }

}  // namespace libspector::net
