#include "net/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace libspector::net {

Ipv4Addr ServerFarm::addEndpoint(EndpointProfile profile,
                                 std::optional<Ipv4Addr> sharedIp) {
  if (profile.domain.empty())
    throw std::invalid_argument("ServerFarm: empty domain");
  if (profiles_.contains(profile.domain))
    throw std::invalid_argument("ServerFarm: duplicate domain " + profile.domain);

  Ipv4Addr ip;
  if (sharedIp) {
    if (!reverse_.contains(*sharedIp))
      throw std::invalid_argument("ServerFarm: sharedIp not in farm");
    ip = *sharedIp;
  } else {
    ip = allocateAddress();
  }
  const std::string domain = profile.domain;
  addresses_[domain].push_back(ip);
  reverse_[ip].push_back(domain);
  profiles_.emplace(domain, std::move(profile));
  return ip;
}

Ipv4Addr ServerFarm::allocateAddress() {
  // 198.18.0.0/15 benchmark space; /15 holds 2^17 hosts, far more than any
  // generated farm needs.
  const std::uint32_t hostId = nextHostId_++;
  return Ipv4Addr((198u << 24) | (18u << 16) | (hostId & 0x1ffff));
}

Ipv4Addr ServerFarm::addAlternateAddress(const std::string& domain) {
  const auto it = addresses_.find(domain);
  if (it == addresses_.end())
    throw std::invalid_argument("ServerFarm: unknown domain " + domain);
  const Ipv4Addr ip = allocateAddress();
  it->second.push_back(ip);
  reverse_[ip].push_back(domain);
  return ip;
}

const EndpointProfile* ServerFarm::byDomain(const std::string& domain) const {
  const auto it = profiles_.find(domain);
  return it == profiles_.end() ? nullptr : &it->second;
}

std::optional<Ipv4Addr> ServerFarm::ipOf(const std::string& domain) const {
  const auto it = addresses_.find(domain);
  if (it == addresses_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

std::vector<Ipv4Addr> ServerFarm::addressesOf(const std::string& domain) const {
  const auto it = addresses_.find(domain);
  return it == addresses_.end() ? std::vector<Ipv4Addr>{} : it->second;
}

std::vector<std::string> ServerFarm::domainsOn(Ipv4Addr ip) const {
  const auto it = reverse_.find(ip);
  return it == reverse_.end() ? std::vector<std::string>{} : it->second;
}

std::uint32_t ServerFarm::responseSize(const std::string& domain,
                                       util::Rng& rng) const {
  const EndpointProfile* profile = byDomain(domain);
  if (profile == nullptr) return 64;  // RST-sized answer from unknown hosts
  const double size = rng.lognormal(profile->responseLogMu, profile->responseLogSigma);
  const double clamped =
      std::clamp(size, static_cast<double>(profile->minResponseBytes),
                 static_cast<double>(profile->maxResponseBytes));
  return static_cast<std::uint32_t>(clamped);
}

std::vector<std::string> ServerFarm::allDomains() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& [domain, _] : profiles_) out.push_back(domain);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace libspector::net
