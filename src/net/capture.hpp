// Packet capture (the tcpdump/pcap role, paper §II-B3).
//
// Every worker records all traffic of its emulator into a CaptureFile which
// is shipped to the central database and traversed offline to compute data
// transfer sizes per socket (paper §III-E).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"
#include "util/clock.hpp"

namespace libspector::net {

enum class Proto : std::uint8_t { Tcp = 6, Udp = 17 };

/// One captured packet. `pair` is oriented sender -> receiver; `wireBytes`
/// is the on-the-wire size including the 40-byte IPv4+TCP/UDP header
/// estimate (a pure ACK or SYN is 40 bytes, a full segment 1500).
struct PacketRecord {
  util::SimTimeMs timestampMs = 0;
  Proto proto = Proto::Tcp;
  SocketPair pair;
  std::uint32_t wireBytes = 0;
  std::uint32_t payloadBytes = 0;
  /// DNS payload visible in the capture (what a real pcap dissector would
  /// extract): query name, and for responses the answered address
  /// (0.0.0.0 for NXDOMAIN). Empty/zero on non-DNS packets.
  std::string dnsQname;
  Ipv4Addr dnsAnswer;

  [[nodiscard]] bool isDns() const noexcept { return !dnsQname.empty(); }
  [[nodiscard]] bool operator==(const PacketRecord&) const = default;
};

/// Factories keeping call sites explicit about which fields matter.
[[nodiscard]] inline PacketRecord makeTcpPacket(util::SimTimeMs ts,
                                                const SocketPair& pair,
                                                std::uint32_t wireBytes,
                                                std::uint32_t payloadBytes) {
  return {ts, Proto::Tcp, pair, wireBytes, payloadBytes, {}, {}};
}

[[nodiscard]] inline PacketRecord makeUdpPacket(util::SimTimeMs ts,
                                                const SocketPair& pair,
                                                std::uint32_t wireBytes,
                                                std::uint32_t payloadBytes,
                                                std::string dnsQname = {},
                                                Ipv4Addr dnsAnswer = {}) {
  return {ts,           Proto::Udp,  pair,     wireBytes,
          payloadBytes, std::move(dnsQname), dnsAnswer};
}

/// One HTTP request/response exchange as a payload dissector (DPI over the
/// capture) would reconstruct it: the network-visible identifiers prior
/// work classified traffic by (Xu et al. and Maier et al. used the
/// User-Agent header, Tongaonkar et al. the hostname).
struct HttpExchange {
  util::SimTimeMs timestampMs = 0;
  SocketPair pair;  // device endpoint first
  std::string host;
  std::string path;
  std::string userAgent;
  bool post = false;

  [[nodiscard]] bool operator==(const HttpExchange&) const = default;
};

/// The lexicographically smaller of the two orientations of `pair`, so a
/// stream's packets and queries from either end share one key.
[[nodiscard]] inline SocketPair normalizedPair(const SocketPair& pair) noexcept {
  return pair.reversed() < pair ? pair.reversed() : pair;
}

/// Append-only capture with pcap-like binary (de)serialization.
class CaptureFile {
 public:
  /// Sentinel in the per-packet chain links: no earlier packet on this
  /// connection.
  static constexpr std::uint32_t kNoPacket = 0xFFFFFFFFu;

  void append(PacketRecord record);

  /// Record a dissected HTTP exchange (kept alongside the raw packets, as
  /// a DPI pass over the pcap would produce).
  void appendHttp(HttpExchange exchange);
  [[nodiscard]] const std::vector<HttpExchange>& httpExchanges() const noexcept {
    return http_;
  }

  [[nodiscard]] const std::vector<PacketRecord>& packets() const noexcept {
    return packets_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return packets_.size(); }

  /// Byte sums of all packets matching `pair` in either direction whose
  /// timestamp lies in [fromMs, toMs]. Payload sums exclude header-only
  /// packets (SYN/ACK/FIN), which is what "data transfer" means in the
  /// paper's volume analysis; wire sums include them.
  struct StreamVolume {
    /// Sentinel for the first-packet timestamps: no matching packet in the
    /// queried range for that direction.
    static constexpr util::SimTimeMs kNoTimestamp = ~util::SimTimeMs{0};

    std::uint64_t bytesFromSrc = 0;     // wire bytes sent by pair.src
    std::uint64_t bytesFromDst = 0;     // wire bytes sent by pair.dst
    std::uint64_t payloadFromSrc = 0;   // payload bytes sent by pair.src
    std::uint64_t payloadFromDst = 0;   // payload bytes sent by pair.dst
    std::size_t packetCount = 0;
    /// Earliest matching packet per direction (kNoTimestamp when none):
    /// the per-flow RTT axis reads firstFromDstMs - firstFromSrcMs as the
    /// request->first-response latency visible in the capture.
    util::SimTimeMs firstFromSrcMs = kNoTimestamp;
    util::SimTimeMs firstFromDstMs = kNoTimestamp;

    /// The capture-derived round-trip estimate, or 0 when either direction
    /// is silent in the range (a flow with no response has no RTT sample).
    [[nodiscard]] util::SimTimeMs rttMs() const noexcept {
      if (firstFromSrcMs == kNoTimestamp || firstFromDstMs == kNoTimestamp ||
          firstFromDstMs < firstFromSrcMs)
        return 0;
      return firstFromDstMs - firstFromSrcMs;
    }
  };
  /// Reference implementation: one full scan over the capture per query,
  /// O(packets). CaptureIndex answers the same query in O(log packets);
  /// the two must agree exactly (see the capture_index property tests).
  [[nodiscard]] StreamVolume streamVolume(const SocketPair& pair,
                                          util::SimTimeMs fromMs,
                                          util::SimTimeMs toMs) const;

  [[nodiscard]] std::uint64_t totalWireBytes() const noexcept;

  /// Sum of TCP payload bytes over the whole capture, maintained
  /// incrementally on append — O(1) at query time. The attribution
  /// unattributed-traffic accounting reads this once per run; recomputing
  /// it was a full packet scan per run.
  [[nodiscard]] std::uint64_t totalTcpPayloadBytes() const noexcept {
    return tcpPayloadBytes_;
  }

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static CaptureFile deserialize(std::span<const std::uint8_t> bytes);

  [[nodiscard]] bool operator==(const CaptureFile& other) const noexcept {
    // Everything but packets_ and http_ is derived from them on append;
    // comparing derived state would be redundant.
    return packets_ == other.packets_ && http_ == other.http_;
  }

  /// Per-connection grouping maintained incrementally on append: each
  /// packet's index is recorded under its normalized connection as it is
  /// captured. CaptureIndex reads these directly, so the per-run index
  /// build — on the offline attribution hot path — no longer re-hashes or
  /// regroups any packet.
  [[nodiscard]] const std::vector<SocketPair>& connectionPairs() const noexcept {
    return connPairs_;
  }
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>&
  connectionPackets() const noexcept {
    return connPackets_;
  }
  /// Dense connection id of a *normalized* socket pair (first-seen order,
  /// the same ids connectionPairs/connectionPackets are keyed by).
  [[nodiscard]] const std::unordered_map<SocketPair, std::uint32_t>&
  connectionIds() const noexcept {
    return connIdOf_;
  }

  /// Indices (in capture order) of DNS response packets carrying a real
  /// answer — the only packets the attribution DNS correlation reads.
  [[nodiscard]] const std::vector<std::uint32_t>& dnsAnswerPackets()
      const noexcept {
    return dnsAnswerPackets_;
  }

  /// Compact per-packet columns in capture order: the timestamp, and the
  /// connection-cumulative per-direction byte sums *including* the packet
  /// ("forward" = sent by the normalized orientation's src). When a
  /// connection's packets are chronological (connectionSorted), these are
  /// exactly the time-sorted prefix sums CaptureIndex needs, so its build
  /// gathers from these small flat arrays instead of re-walking the fat
  /// PacketRecords.
  [[nodiscard]] const std::vector<util::SimTimeMs>& packetTimestamps()
      const noexcept {
    return packetTimestamps_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& cumulativeWireForward()
      const noexcept {
    return cumWireFwd_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& cumulativeWireReverse()
      const noexcept {
    return cumWireRev_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& cumulativePayloadForward()
      const noexcept {
    return cumPayFwd_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& cumulativePayloadReverse()
      const noexcept {
    return cumPayRev_;
  }
  /// Per connection: 1 while its packets arrived in non-decreasing
  /// timestamp order (the monotonic-clock common case), 0 otherwise.
  [[nodiscard]] const std::vector<std::uint8_t>& connectionSorted()
      const noexcept {
    return connSorted_;
  }

 private:
  std::vector<PacketRecord> packets_;
  std::vector<HttpExchange> http_;
  std::uint64_t tcpPayloadBytes_ = 0;
  std::unordered_map<SocketPair, std::uint32_t> connIdOf_;  // normalized -> id
  std::vector<SocketPair> connPairs_;
  std::vector<std::vector<std::uint32_t>> connPackets_;
  std::vector<std::uint8_t> connSorted_;
  std::vector<std::uint32_t> dnsAnswerPackets_;
  std::vector<util::SimTimeMs> packetTimestamps_;
  std::vector<std::uint64_t> cumWireFwd_;
  std::vector<std::uint64_t> cumWireRev_;
  std::vector<std::uint64_t> cumPayFwd_;
  std::vector<std::uint64_t> cumPayRev_;
};

/// Read-only query accelerator over one CaptureFile.
///
/// The capture already groups its packets by *normalized* connection (the
/// socket pair in a canonical orientation, so both directions of a stream
/// land in one bucket) and keeps per-packet timestamps and per-direction
/// connection-cumulative byte sums, all maintained on append. For the
/// monotonic-clock common case — a connection's packets already in
/// timestamp order — the index is a pure view over those columns and costs
/// one pass over the (small) per-connection sorted bits to build; only
/// out-of-order connections get time-sorted copies with materialized
/// prefix sums. A streamVolume query is a hash probe plus two binary
/// searches either way: O(log P) against the naive O(P), which turns the
/// offline attribution of a run from O(flows x packets) into
/// O((flows + packets) log P).
///
/// The index borrows the capture: it must outlive the index, and packets
/// appended after construction leave the index in an unspecified (though
/// memory-safe) state. The offline pipeline builds it once per run, right
/// before attribution, when the capture is final.
class CaptureIndex {
 public:
  CaptureIndex() = default;
  explicit CaptureIndex(const CaptureFile& capture);

  /// Exactly CaptureFile::streamVolume, answered from the index.
  [[nodiscard]] CaptureFile::StreamVolume streamVolume(
      const SocketPair& pair, util::SimTimeMs fromMs,
      util::SimTimeMs toMs) const;

  [[nodiscard]] std::size_t connectionCount() const noexcept {
    return capture_ == nullptr ? 0 : capture_->connectionPairs().size();
  }
  [[nodiscard]] std::size_t packetCount() const noexcept {
    return capture_ == nullptr ? 0 : capture_->size();
  }

  /// Sum of TCP payload bytes over the indexed capture (matches
  /// CaptureFile::totalTcpPayloadBytes()).
  [[nodiscard]] std::uint64_t totalTcpPayload() const noexcept {
    return capture_ == nullptr ? 0 : capture_->totalTcpPayloadBytes();
  }

 private:
  /// Slow-path materialization for one out-of-order connection: its packet
  /// timestamps time-sorted, plus per-direction prefix sums ("forward" =
  /// sent by the canonical orientation's src; block[k] sums the
  /// connection's first k packets in time order).
  struct SortedConn {
    std::vector<util::SimTimeMs> timestamps;
    std::vector<std::uint64_t> wireForward;
    std::vector<std::uint64_t> wireReverse;
    std::vector<std::uint64_t> payloadForward;
    std::vector<std::uint64_t> payloadReverse;
    /// Per time-sorted packet: 1 when sent by the canonical orientation's
    /// src (the first-packet-per-direction scan reads this).
    std::vector<std::uint8_t> forward;
  };

  [[nodiscard]] static SocketPair normalized(const SocketPair& pair) noexcept {
    return normalizedPair(pair);
  }

  const CaptureFile* capture_ = nullptr;
  std::unordered_map<std::uint32_t, SortedConn> resorted_;  // by conn id
};

}  // namespace libspector::net
