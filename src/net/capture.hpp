// Packet capture (the tcpdump/pcap role, paper §II-B3).
//
// Every worker records all traffic of its emulator into a CaptureFile which
// is shipped to the central database and traversed offline to compute data
// transfer sizes per socket (paper §III-E).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"
#include "util/clock.hpp"

namespace libspector::net {

enum class Proto : std::uint8_t { Tcp = 6, Udp = 17 };

/// One captured packet. `pair` is oriented sender -> receiver; `wireBytes`
/// is the on-the-wire size including the 40-byte IPv4+TCP/UDP header
/// estimate (a pure ACK or SYN is 40 bytes, a full segment 1500).
struct PacketRecord {
  util::SimTimeMs timestampMs = 0;
  Proto proto = Proto::Tcp;
  SocketPair pair;
  std::uint32_t wireBytes = 0;
  std::uint32_t payloadBytes = 0;
  /// DNS payload visible in the capture (what a real pcap dissector would
  /// extract): query name, and for responses the answered address
  /// (0.0.0.0 for NXDOMAIN). Empty/zero on non-DNS packets.
  std::string dnsQname;
  Ipv4Addr dnsAnswer;

  [[nodiscard]] bool isDns() const noexcept { return !dnsQname.empty(); }
  [[nodiscard]] bool operator==(const PacketRecord&) const = default;
};

/// Factories keeping call sites explicit about which fields matter.
[[nodiscard]] inline PacketRecord makeTcpPacket(util::SimTimeMs ts,
                                                const SocketPair& pair,
                                                std::uint32_t wireBytes,
                                                std::uint32_t payloadBytes) {
  return {ts, Proto::Tcp, pair, wireBytes, payloadBytes, {}, {}};
}

[[nodiscard]] inline PacketRecord makeUdpPacket(util::SimTimeMs ts,
                                                const SocketPair& pair,
                                                std::uint32_t wireBytes,
                                                std::uint32_t payloadBytes,
                                                std::string dnsQname = {},
                                                Ipv4Addr dnsAnswer = {}) {
  return {ts,           Proto::Udp,  pair,     wireBytes,
          payloadBytes, std::move(dnsQname), dnsAnswer};
}

/// One HTTP request/response exchange as a payload dissector (DPI over the
/// capture) would reconstruct it: the network-visible identifiers prior
/// work classified traffic by (Xu et al. and Maier et al. used the
/// User-Agent header, Tongaonkar et al. the hostname).
struct HttpExchange {
  util::SimTimeMs timestampMs = 0;
  SocketPair pair;  // device endpoint first
  std::string host;
  std::string path;
  std::string userAgent;
  bool post = false;

  [[nodiscard]] bool operator==(const HttpExchange&) const = default;
};

/// Append-only capture with pcap-like binary (de)serialization.
class CaptureFile {
 public:
  void append(PacketRecord record);

  /// Record a dissected HTTP exchange (kept alongside the raw packets, as
  /// a DPI pass over the pcap would produce).
  void appendHttp(HttpExchange exchange);
  [[nodiscard]] const std::vector<HttpExchange>& httpExchanges() const noexcept {
    return http_;
  }

  [[nodiscard]] const std::vector<PacketRecord>& packets() const noexcept {
    return packets_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return packets_.size(); }

  /// Byte sums of all packets matching `pair` in either direction whose
  /// timestamp lies in [fromMs, toMs]. Payload sums exclude header-only
  /// packets (SYN/ACK/FIN), which is what "data transfer" means in the
  /// paper's volume analysis; wire sums include them.
  struct StreamVolume {
    std::uint64_t bytesFromSrc = 0;     // wire bytes sent by pair.src
    std::uint64_t bytesFromDst = 0;     // wire bytes sent by pair.dst
    std::uint64_t payloadFromSrc = 0;   // payload bytes sent by pair.src
    std::uint64_t payloadFromDst = 0;   // payload bytes sent by pair.dst
    std::size_t packetCount = 0;
  };
  /// Reference implementation: one full scan over the capture per query,
  /// O(packets). CaptureIndex answers the same query in O(log packets);
  /// the two must agree exactly (see the capture_index property tests).
  [[nodiscard]] StreamVolume streamVolume(const SocketPair& pair,
                                          util::SimTimeMs fromMs,
                                          util::SimTimeMs toMs) const;

  [[nodiscard]] std::uint64_t totalWireBytes() const noexcept;

  /// Sum of TCP payload bytes over the whole capture, maintained
  /// incrementally on append — O(1) at query time. The attribution
  /// unattributed-traffic accounting reads this once per run; recomputing
  /// it was a full packet scan per run.
  [[nodiscard]] std::uint64_t totalTcpPayloadBytes() const noexcept {
    return tcpPayloadBytes_;
  }

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static CaptureFile deserialize(std::span<const std::uint8_t> bytes);

  [[nodiscard]] bool operator==(const CaptureFile& other) const noexcept {
    // tcpPayloadBytes_ is derived from packets_; comparing it would be
    // redundant (and it is equal whenever packets_ are).
    return packets_ == other.packets_ && http_ == other.http_;
  }

 private:
  std::vector<PacketRecord> packets_;
  std::vector<HttpExchange> http_;
  std::uint64_t tcpPayloadBytes_ = 0;
};

/// Read-only query accelerator over one CaptureFile.
///
/// Groups the capture's packets by *normalized* connection (the socket pair
/// in a canonical orientation, so both directions of a stream land in one
/// bucket), sorts each bucket by timestamp, and keeps per-direction prefix
/// sums over wire and payload bytes. A streamVolume query is then a hash
/// probe plus two binary searches instead of a scan over every packet:
/// O(log P) against the naive O(P), which turns the offline attribution of
/// a run from O(flows x packets) into O((flows + packets) log P).
///
/// The index is a snapshot: packets appended to the CaptureFile after
/// construction are not visible. The offline pipeline builds it once per
/// run, right before attribution, when the capture is final.
class CaptureIndex {
 public:
  CaptureIndex() = default;
  explicit CaptureIndex(const CaptureFile& capture);

  /// Exactly CaptureFile::streamVolume, answered from the index.
  [[nodiscard]] CaptureFile::StreamVolume streamVolume(
      const SocketPair& pair, util::SimTimeMs fromMs,
      util::SimTimeMs toMs) const;

  [[nodiscard]] std::size_t connectionCount() const noexcept {
    return ranges_.size();
  }
  [[nodiscard]] std::size_t packetCount() const noexcept { return packets_; }

  /// Sum of TCP payload bytes over the indexed capture, accumulated while
  /// the index is built (matches CaptureFile::totalTcpPayloadBytes()).
  [[nodiscard]] std::uint64_t totalTcpPayload() const noexcept {
    return tcpPayload_;
  }

 private:
  /// Packet slots [first, last) of one connection in the flat arrays below.
  struct Range {
    std::uint32_t first = 0;
    std::uint32_t last = 0;
  };

  /// The lexicographically smaller of the two orientations of `pair`, so a
  /// stream's packets and queries from either end share one key.
  [[nodiscard]] static SocketPair normalized(const SocketPair& pair) noexcept {
    return pair.reversed() < pair ? pair.reversed() : pair;
  }

  std::unordered_map<SocketPair, std::uint32_t> idOf_;  // normalized -> id
  std::vector<Range> ranges_;                           // per connection id
  /// Timestamps (ascending within each connection's range) and per-direction
  /// prefix sums, all grouped by connection in one flat allocation each.
  /// "Forward" means sent by the canonical orientation's src. The prefix
  /// arrays carry one extra slot per connection: connection c's block starts
  /// at ranges_[c].first + c, and block[k] sums the connection's first k
  /// packets.
  std::vector<util::SimTimeMs> timestamps_;
  std::vector<std::uint64_t> wireForward_;
  std::vector<std::uint64_t> wireReverse_;
  std::vector<std::uint64_t> payloadForward_;
  std::vector<std::uint64_t> payloadReverse_;
  std::size_t packets_ = 0;
  std::uint64_t tcpPayload_ = 0;
};

}  // namespace libspector::net
