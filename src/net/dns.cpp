#include "net/dns.hpp"

namespace libspector::net {

namespace {
// IPv4 + UDP header estimate used for DNS datagrams.
constexpr std::uint32_t kUdpHeader = 28;
}

DnsResolver::DnsResolver(const ServerFarm& farm, SockEndpoint deviceEndpoint,
                         SockEndpoint dnsServer, util::SimTimeMs ttlMs) noexcept
    : farm_(farm), device_(deviceEndpoint), dnsServer_(dnsServer), ttlMs_(ttlMs) {}

std::optional<Ipv4Addr> DnsResolver::resolve(const std::string& domain,
                                             util::SimClock& clock,
                                             CaptureFile& capture) {
  auto [it, isNew] = cache_.try_emplace(domain);
  CacheEntry& entry = it->second;
  if (!isNew && clock.now() < entry.expiresAtMs) return entry.answer;

  // Fresh query. Multi-homed domains answer with their A records in
  // rotation, so successive TTL expiries move the domain across addresses.
  const auto addresses = farm_.addressesOf(domain);
  std::optional<Ipv4Addr> answer;
  if (!addresses.empty()) {
    answer = addresses[entry.rotation % addresses.size()];
    ++entry.rotation;
  }

  ++queriesSent_;
  // Query: ~17 bytes of fixed DNS header + QNAME.
  const auto queryPayload = static_cast<std::uint32_t>(17 + domain.size());
  capture.append(makeUdpPacket(clock.now(), SocketPair{device_, dnsServer_},
                               kUdpHeader + queryPayload, queryPayload,
                               domain));
  clock.advance(1);
  // Response: query echo + 16 bytes of answer RR (or SOA for NXDOMAIN).
  const auto respPayload = static_cast<std::uint32_t>(queryPayload + 16);
  capture.append(makeUdpPacket(clock.now(), SocketPair{dnsServer_, device_},
                               kUdpHeader + respPayload, respPayload, domain,
                               answer.value_or(Ipv4Addr{})));
  clock.advance(1);

  entry.answer = answer;
  entry.expiresAtMs = clock.now() + ttlMs_;
  if (answer.has_value() && !entry.recorded) {
    resolvedOrder_.push_back(domain);
    entry.recorded = true;
  }
  return answer;
}

}  // namespace libspector::net
