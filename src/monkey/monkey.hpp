// adb monkey analogue (paper §II-B3, §III-B).
//
// The paper exercises every app with 1,000 pseudo-random UI events at a
// 500 ms throttle for 8 minutes.  Event choice randomness lives in the
// interpreter's dispatcher (monkey taps coordinates; which handler fires is
// an app property); the monkey owns pacing and the event budget.
#pragma once

#include <cstdint>

#include "rt/interpreter.hpp"
#include "util/clock.hpp"

namespace libspector::monkey {

struct MonkeyConfig {
  std::uint32_t events = 1000;
  std::uint32_t throttleMs = 500;
  /// Hard stop: end the run when the simulated clock passes this duration,
  /// even if events remain (the paper's 8-minute wall budget).
  std::uint64_t maxRunMs = 8 * 60 * 1000;
};

struct MonkeyStats {
  std::uint32_t eventsInjected = 0;
  std::uint32_t eventsHandled = 0;  // events that hit a UI handler
  std::uint64_t elapsedMs = 0;
};

/// Drive one app run to completion. The interpreter must already have been
/// started (onCreate executed).
MonkeyStats exercise(rt::Interpreter& runtime, util::SimClock& clock,
                     const MonkeyConfig& config);

}  // namespace libspector::monkey
