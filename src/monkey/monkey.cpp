#include "monkey/monkey.hpp"

namespace libspector::monkey {

MonkeyStats exercise(rt::Interpreter& runtime, util::SimClock& clock,
                     const MonkeyConfig& config) {
  MonkeyStats stats;
  const util::SimTimeMs start = clock.now();
  for (std::uint32_t i = 0; i < config.events; ++i) {
    if (clock.now() - start >= config.maxRunMs) break;
    ++stats.eventsInjected;
    if (runtime.dispatchUiEvent()) ++stats.eventsHandled;
    clock.advance(config.throttleMs);
  }
  stats.elapsedMs = clock.now() - start;
  return stats;
}

}  // namespace libspector::monkey
