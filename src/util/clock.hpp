// Simulated time. An 8-minute paper experiment advances this clock, not the
// wall clock, so a 25,000-app study runs in seconds and every timestamp in a
// capture file is deterministic.
#pragma once

#include <cstdint>

namespace libspector::util {

/// Milliseconds since the start of an experiment run.
using SimTimeMs = std::uint64_t;

/// Monotonic simulated clock owned by one emulator instance.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimTimeMs start) noexcept : now_(start) {}

  [[nodiscard]] SimTimeMs now() const noexcept { return now_; }
  void advance(SimTimeMs deltaMs) noexcept { now_ += deltaMs; }

 private:
  SimTimeMs now_ = 0;
};

}  // namespace libspector::util
