// Minimal leveled logger. The orchestration layer logs worker lifecycle and
// per-app progress; everything defaults to Warn so tests and benches stay
// quiet unless a caller opts in.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace libspector::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level (thread-safe; atomically updated).
void setLogLevel(LogLevel level) noexcept;
[[nodiscard]] LogLevel logLevel() noexcept;

namespace detail {
void logLine(LogLevel level, std::string_view message);

template <typename... Args>
std::string formatPrintf(const char* fmt, Args&&... args) {
  const int needed = std::snprintf(nullptr, 0, fmt, args...);
  if (needed <= 0) return fmt;
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}
}  // namespace detail

/// printf-style logging: log(LogLevel::Info, "ran %zu apps", n).
template <typename... Args>
void log(LogLevel level, const char* fmt, Args&&... args) {
  if (level < logLevel()) return;
  if constexpr (sizeof...(Args) == 0) {
    detail::logLine(level, fmt);
  } else {
    detail::logLine(level, detail::formatPrintf(fmt, std::forward<Args>(args)...));
  }
}

template <typename... Args>
void logDebug(const char* fmt, Args&&... args) {
  log(LogLevel::Debug, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void logInfo(const char* fmt, Args&&... args) {
  log(LogLevel::Info, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void logWarn(const char* fmt, Args&&... args) {
  log(LogLevel::Warn, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void logError(const char* fmt, Args&&... args) {
  log(LogLevel::Error, fmt, std::forward<Args>(args)...);
}

}  // namespace libspector::util
