// Little-endian byte-stream (de)serialization used for the dex-like binary
// format, pcap-like capture files and UDP report datagrams.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace libspector::util {

/// Error thrown when a reader runs past the end of its buffer or a length
/// field is inconsistent — i.e. the input is truncated or corrupt.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends fixed-width integers and length-prefixed strings to a buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed (u32) byte string.
  void str(std::string_view s);
  void raw(std::span<const std::uint8_t> data);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Narrow a 64-bit size to the u32 length field the wire formats use.
/// Throws std::length_error instead of silently truncating — a truncated
/// length field produces an undecodable (or worse, mis-decodable) record.
[[nodiscard]] std::uint32_t checkedU32(std::uint64_t value, const char* what);

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte span. Used by the
/// framed report wire format to detect in-flight corruption of UDP
/// datagrams — the channel gives no integrity guarantee of its own.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// FNV-1a 64-bit hash of a string. Stable across platforms; used as the
/// shard-routing key carried in framed report headers so routers can place
/// a datagram without decoding its payload.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept;

/// Reads the format ByteWriter produces. Throws DecodeError on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::string str();
  /// A view over the next `n` raw bytes (zero-copy; valid while the
  /// underlying buffer lives).
  [[nodiscard]] std::span<const std::uint8_t> view(std::size_t n);

  /// Validate a decoded element count against the bytes remaining: each
  /// element occupies at least `minBytesPerItem`, so a count implying more
  /// data than exists is corrupt. Prevents attacker-controlled counts from
  /// driving huge reserve() allocations. Returns `count` for chaining.
  [[nodiscard]] std::uint32_t countCheck(std::uint32_t count,
                                         std::size_t minBytesPerItem) const;

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool atEnd() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace libspector::util
