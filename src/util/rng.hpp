// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in libspector (the app-store generator, the
// monkey exerciser, server response models) draws from an explicitly seeded
// Rng so that experiments are reproducible bit-for-bit.  The generator is
// xoshiro256**, seeded through SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace libspector::util {

/// xoshiro256** PRNG with distribution helpers used across the simulator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept;

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev) noexcept;

  /// Log-normally distributed value: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Pareto(xm, alpha) heavy-tailed value, >= xm.
  double pareto(double xm, double alpha) noexcept;

  /// Zipf-like rank in [0, n) where rank r has weight 1/(r+1)^s.
  std::size_t zipf(std::size_t n, double s);

  /// Pick an index according to non-negative weights. Requires a positive sum.
  std::size_t weightedIndex(std::span<const double> weights);

  /// Pick a uniformly random element of a non-empty container.
  template <typename Container>
  const auto& pick(const Container& c) {
    if (c.empty()) throw std::invalid_argument("Rng::pick: empty container");
    return c[uniform(0, c.size() - 1)];
  }

  /// Derive an independent child generator (stable given the same label).
  Rng fork(std::uint64_t label) noexcept;

 private:
  std::uint64_t s_[4];
  // Cached Zipf normalization: recomputing the harmonic sum per draw would
  // dominate corpus generation time.
  std::size_t zipfN_ = 0;
  double zipfS_ = 0.0;
  std::vector<double> zipfCdf_;
};

}  // namespace libspector::util
