#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace libspector::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool isHierarchicalPrefix(std::string_view prefix, std::string_view s, char sep) {
  if (prefix.empty() || prefix.size() > s.size()) return false;
  if (s.compare(0, prefix.size(), prefix) != 0) return false;
  return s.size() == prefix.size() || s[prefix.size()] == sep;
}

bool isHierarchicalPrefixOfSlashedFrame(std::string_view dottedPrefix,
                                        std::string_view slashedClass,
                                        std::string_view methodName) noexcept {
  // The virtual frame name is slashToDot(slashedClass) ++ "." ++ methodName.
  const std::size_t frameSize = slashedClass.size() + 1 + methodName.size();
  if (dottedPrefix.empty() || dottedPrefix.size() > frameSize) return false;
  const auto frameAt = [&](std::size_t i) -> char {
    if (i < slashedClass.size()) {
      const char c = slashedClass[i];
      return c == '/' ? '.' : c;
    }
    if (i == slashedClass.size()) return '.';
    return methodName[i - slashedClass.size() - 1];
  };
  for (std::size_t i = 0; i < dottedPrefix.size(); ++i) {
    if (dottedPrefix[i] != frameAt(i)) return false;
  }
  return dottedPrefix.size() == frameSize || frameAt(dottedPrefix.size()) == '.';
}

std::string prefixLevels(std::string_view package, int n) {
  if (n <= 0) return {};
  std::size_t pos = 0;
  int seen = 0;
  while (pos < package.size()) {
    if (package[pos] == '.') {
      if (++seen == n) return std::string(package.substr(0, pos));
    }
    ++pos;
  }
  return std::string(package);
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string humanBytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", bytes, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  }
  return buf;
}

}  // namespace libspector::util
