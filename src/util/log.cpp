#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace libspector::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_outMutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level.store(level); }
LogLevel logLevel() noexcept { return g_level.load(); }

namespace detail {
void logLine(LogLevel level, std::string_view message) {
  const std::scoped_lock lock(g_outMutex);
  std::fprintf(stderr, "[%s] %.*s\n", levelName(level),
               static_cast<int>(message.size()), message.data());
}
}  // namespace detail

}  // namespace libspector::util
