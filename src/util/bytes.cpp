#include "util/bytes.hpp"

#include <array>

namespace libspector::util {

namespace {

std::array<std::uint32_t, 256> makeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t checkedU32(std::uint64_t value, const char* what) {
  if (value > 0xFFFFFFFFull)
    throw std::length_error(std::string(what) + ": size " +
                            std::to_string(value) +
                            " overflows a u32 length field");
  return static_cast<std::uint32_t>(value);
}

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  static const std::array<std::uint32_t, 256> kTable = makeCrc32Table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data)
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::str(std::string_view s) {
  u32(checkedU32(s.size(), "ByteWriter::str"));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) throw DecodeError("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
  pos_ += 8;
  return v;
}

std::uint32_t ByteReader::countCheck(std::uint32_t count,
                                     std::size_t minBytesPerItem) const {
  if (minBytesPerItem != 0 &&
      static_cast<std::uint64_t>(count) * minBytesPerItem > remaining())
    throw DecodeError("ByteReader: element count exceeds remaining input");
  return count;
}

std::span<const std::uint8_t> ByteReader::view(std::size_t n) {
  need(n);
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

}  // namespace libspector::util
