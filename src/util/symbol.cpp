#include "util/symbol.hpp"

#include <array>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/bytes.hpp"

namespace libspector::util {

namespace {
constexpr std::size_t kChunkShift = 10;
constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;  // entries
constexpr std::size_t kMaxChunks = 4096;  // 4M symbols per pool
constexpr std::size_t kInitialTableSize = 256;  // power of two
}  // namespace

struct SymbolPool::State {
  /// Open-addressing table of published entries. Slots transition once,
  /// nullptr -> entry (release store), and are never rewritten; a full
  /// rebuilt table is published atomically through `table`. Readers that
  /// race a growth may probe a stale table and miss a fresh entry — they
  /// fall through to the mutex path, which re-probes authoritatively.
  struct Table {
    explicit Table(std::size_t capacity)
        : mask(capacity - 1),
          slots(std::make_unique<std::atomic<const Symbol::Entry*>[]>(capacity)) {
      for (std::size_t i = 0; i < capacity; ++i)
        slots[i].store(nullptr, std::memory_order_relaxed);
    }
    std::size_t mask;
    std::unique_ptr<std::atomic<const Symbol::Entry*>[]> slots;
  };

  std::mutex writeMutex;
  /// Count released *after* the entry (and its table slot) are fully
  /// written, so at(id < size()) always reads a constructed entry.
  std::atomic<std::size_t> count{0};
  std::atomic<std::size_t> textBytes{0};
  std::array<std::atomic<Symbol::Entry*>, kMaxChunks> chunks{};
  std::atomic<Table*> table{nullptr};
  /// Every table ever published (readers may still hold a stale pointer),
  /// freed only with the pool. Guarded by writeMutex.
  std::vector<std::unique_ptr<Table>> tables;

  State() {
    auto first = std::make_unique<Table>(kInitialTableSize);
    table.store(first.get(), std::memory_order_release);
    tables.push_back(std::move(first));
  }

  ~State() {
    // Chunks are allocated densely in id order; the first null ends them.
    for (auto& slot : chunks) {
      Symbol::Entry* chunk = slot.load(std::memory_order_relaxed);
      if (chunk == nullptr) break;
      delete[] chunk;
    }
  }

  /// Probe `t` for `text`; nullptr slot ends the probe. Lock-free.
  [[nodiscard]] static const Symbol::Entry* probe(const Table& t,
                                                  std::uint64_t hash,
                                                  std::string_view text) noexcept {
    for (std::size_t i = hash & t.mask;; i = (i + 1) & t.mask) {
      const Symbol::Entry* entry = t.slots[i].load(std::memory_order_acquire);
      if (entry == nullptr) return nullptr;
      if (entry->text == text) return entry;
    }
  }

  /// Insert into `t` at the first free slot. Requires writeMutex held and
  /// `text` known absent.
  static void insert(Table& t, std::uint64_t hash, const Symbol::Entry* entry) {
    for (std::size_t i = hash & t.mask;; i = (i + 1) & t.mask) {
      if (t.slots[i].load(std::memory_order_relaxed) == nullptr) {
        t.slots[i].store(entry, std::memory_order_release);
        return;
      }
    }
  }

  /// Requires writeMutex held.
  void growLocked(std::size_t entries) {
    Table* current = table.load(std::memory_order_relaxed);
    auto grown = std::make_unique<Table>((current->mask + 1) * 2);
    for (std::size_t id = 0; id < entries; ++id) {
      Symbol::Entry* entry =
          &chunks[id >> kChunkShift].load(std::memory_order_relaxed)
              [id & (kChunkSize - 1)];
      insert(*grown, fnv1a64(entry->text), entry);
    }
    table.store(grown.get(), std::memory_order_release);
    tables.push_back(std::move(grown));
  }
};

SymbolPool::SymbolPool() : state_(std::make_unique<State>()) {}
SymbolPool::~SymbolPool() = default;
SymbolPool::SymbolPool(SymbolPool&&) noexcept = default;
SymbolPool& SymbolPool::operator=(SymbolPool&&) noexcept = default;

Symbol SymbolPool::intern(std::string_view text) {
  State& s = *state_;
  const std::uint64_t hash = fnv1a64(text);

  // Fast path: lock-free probe of the current table.
  {
    const State::Table* t = s.table.load(std::memory_order_acquire);
    if (const Symbol::Entry* entry = State::probe(*t, hash, text))
      return Symbol(entry);
  }

  const std::scoped_lock lock(s.writeMutex);
  State::Table* t = s.table.load(std::memory_order_relaxed);
  if (const Symbol::Entry* entry = State::probe(*t, hash, text))
    return Symbol(entry);  // lost the race to another writer

  const std::size_t id = s.count.load(std::memory_order_relaxed);
  const std::size_t chunkIndex = id >> kChunkShift;
  if (chunkIndex >= kMaxChunks)
    throw std::length_error("SymbolPool: symbol capacity exhausted");
  Symbol::Entry* chunk = s.chunks[chunkIndex].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Symbol::Entry[kChunkSize];
    s.chunks[chunkIndex].store(chunk, std::memory_order_release);
  }
  Symbol::Entry* entry = &chunk[id & (kChunkSize - 1)];
  entry->text.assign(text);
  entry->id = static_cast<std::uint32_t>(id);
  State::insert(*t, hash, entry);
  s.textBytes.fetch_add(text.size(), std::memory_order_relaxed);
  s.count.store(id + 1, std::memory_order_release);
  // Keep the load factor under ~3/4 so probes stay short.
  if ((id + 1) * 4 >= (t->mask + 1) * 3) s.growLocked(id + 1);
  return Symbol(entry);
}

Symbol SymbolPool::find(std::string_view text) const noexcept {
  const State& s = *state_;
  const State::Table* t = s.table.load(std::memory_order_acquire);
  return Symbol(State::probe(*t, fnv1a64(text), text));
}

Symbol SymbolPool::at(std::uint32_t id) const noexcept {
  const State& s = *state_;
  if (id >= s.count.load(std::memory_order_acquire)) return Symbol{};
  const Symbol::Entry* chunk =
      s.chunks[id >> kChunkShift].load(std::memory_order_acquire);
  if (chunk == nullptr) return Symbol{};
  return Symbol(&chunk[id & (kChunkSize - 1)]);
}

std::size_t SymbolPool::size() const noexcept {
  return state_->count.load(std::memory_order_acquire);
}

std::size_t SymbolPool::textBytes() const noexcept {
  return state_->textBytes.load(std::memory_order_relaxed);
}

}  // namespace libspector::util
