// Standalone SHA-256 implementation (FIPS 180-4).
//
// The Socket Supervisor tags every UDP report with the sha256 checksum of
// the apk under test (paper §II-B2a); the result database keys artifacts by
// the same digest.  No external crypto dependency is available offline, so
// the digest is implemented here and validated against FIPS test vectors in
// tests/util/sha256_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace libspector::util {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;

  /// Finalize and return the digest. The hasher must not be reused afterwards.
  [[nodiscard]] Sha256Digest finish() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Sha256Digest hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Sha256Digest hash(std::string_view data) noexcept;

 private:
  void processBlock(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t bufferLen_ = 0;
  std::uint64_t totalBytes_ = 0;
};

/// Lowercase hex rendering of a digest.
[[nodiscard]] std::string toHex(const Sha256Digest& digest);

/// ByteWriter-compatible encoder that hashes instead of materializing.
///
/// Fields stream straight into an incremental Sha256 in the exact wire
/// encoding util::ByteWriter produces (little-endian integers, u32
/// length-prefixed strings), so `Sha256::hash(serialize(x))` collapses to a
/// single serialization walk with O(1) memory. dex::ApkFile::sha256() runs
/// every apk of a study through this; tests/util/sha256_test.cpp pins the
/// encoding equivalence against ByteWriter.
class Sha256Writer {
 public:
  void u8(std::uint8_t v) noexcept;
  void u16(std::uint16_t v) noexcept;
  void u32(std::uint32_t v) noexcept;
  void u64(std::uint64_t v) noexcept;
  /// Length-prefixed (u32) byte string; throws std::length_error past 4 GiB
  /// exactly like ByteWriter::str.
  void str(std::string_view s);
  void raw(std::span<const std::uint8_t> data) noexcept;

  /// Finalize; the writer must not be reused afterwards.
  [[nodiscard]] Sha256Digest finish() noexcept { return hash_.finish(); }

 private:
  Sha256 hash_;
};

}  // namespace libspector::util
