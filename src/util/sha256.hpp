// Standalone SHA-256 implementation (FIPS 180-4).
//
// The Socket Supervisor tags every UDP report with the sha256 checksum of
// the apk under test (paper §II-B2a); the result database keys artifacts by
// the same digest.  No external crypto dependency is available offline, so
// the digest is implemented here and validated against FIPS test vectors in
// tests/util/sha256_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace libspector::util {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;

  /// Finalize and return the digest. The hasher must not be reused afterwards.
  [[nodiscard]] Sha256Digest finish() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Sha256Digest hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Sha256Digest hash(std::string_view data) noexcept;

 private:
  void processBlock(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t bufferLen_ = 0;
  std::uint64_t totalBytes_ = 0;
};

/// Lowercase hex rendering of a digest.
[[nodiscard]] std::string toHex(const Sha256Digest& digest);

}  // namespace libspector::util
