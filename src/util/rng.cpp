#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace libspector::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return next();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = range * (UINT64_MAX / range);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + v % range;
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return uniform01() < p; }

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Rng::zipf: n == 0");
  if (n != zipfN_ || s != zipfS_) {
    zipfCdf_.assign(n, 0.0);
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1), s);
      zipfCdf_[r] = sum;
    }
    for (auto& v : zipfCdf_) v /= sum;
    zipfN_ = n;
    zipfS_ = s;
  }
  const double u = uniform01();
  const auto it = std::lower_bound(zipfCdf_.begin(), zipfCdf_.end(), u);
  return static_cast<std::size_t>(it - zipfCdf_.begin());
}

std::size_t Rng::weightedIndex(std::span<const double> weights) {
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weightedIndex: negative weight");
    sum += w;
  }
  if (sum <= 0.0) throw std::invalid_argument("Rng::weightedIndex: zero weight sum");
  double target = uniform01() * sum;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t label) noexcept {
  return Rng(next() ^ (label * 0x9e3779b97f4a7c15ULL));
}

}  // namespace libspector::util
