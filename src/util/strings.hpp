// Small string utilities shared across the library.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace libspector::util {

/// Split `s` on `delim`; empty fields are preserved ("a..b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Join `parts` with `delim` between elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view delim);

/// ASCII lowercase copy.
[[nodiscard]] std::string toLower(std::string_view s);

/// True when `s` starts with `prefix` followed by end-of-string or `sep`.
/// Used for package-hierarchy prefix matching: "com.unity3d" matches
/// "com.unity3d.ads" but not "com.unity3dx".
[[nodiscard]] bool isHierarchicalPrefix(std::string_view prefix,
                                        std::string_view s, char sep = '.');

/// First `n` dot-separated components of a package path ("a.b.c", 2 -> "a.b").
[[nodiscard]] std::string prefixLevels(std::string_view package, int n);

/// isHierarchicalPrefix against the *virtual* dotted frame name
/// `slashToDot(slashedClass) + "." + methodName` — i.e. what
/// dex::TypeSignature::frameName() would materialize — without building the
/// string. Lets the built-in-package filter run allocation-free on raw
/// smali signatures: equivalent to
/// `isHierarchicalPrefix(dottedPrefix, frameName)` in every case.
[[nodiscard]] bool isHierarchicalPrefixOfSlashedFrame(
    std::string_view dottedPrefix, std::string_view slashedClass,
    std::string_view methodName) noexcept;

/// True if `s` contains `needle` as a substring.
[[nodiscard]] bool contains(std::string_view s, std::string_view needle);

/// Human-readable byte count ("1.59 GB", "452 MB", "713 B").
[[nodiscard]] std::string humanBytes(double bytes);

/// Heterogeneous hash for unordered containers keyed by std::string, so
/// lookups accept std::string_view without allocating a temporary key.
struct TransparentStringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace libspector::util
