#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace libspector::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<CdfPoint> empiricalCdf(std::vector<double> values,
                                   std::size_t maxPoints) {
  std::vector<CdfPoint> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  const std::size_t points = std::min(maxPoints, n);
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Sample evenly across the sorted sample, always including the last point.
    const std::size_t idx =
        points == 1 ? n - 1 : i * (n - 1) / (points - 1);
    out.push_back({values[idx],
                   static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return out;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : logLo_(std::log10(lo)), logHi_(std::log10(hi)), counts_(bins, 0) {
  if (!(lo > 0.0) || !(hi > lo) || bins == 0)
    throw std::invalid_argument("LogHistogram: invalid range");
}

void LogHistogram::add(double value) noexcept {
  const double lv = std::log10(std::max(value, 1e-300));
  const double frac = (lv - logLo_) / (logHi_ - logLo_);
  const auto bin = static_cast<std::size_t>(std::clamp(
      frac * static_cast<double>(counts_.size()), 0.0,
      static_cast<double>(counts_.size() - 1)));
  ++counts_[bin];
  ++total_;
}

double LogHistogram::binLowerEdge(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("LogHistogram::binLowerEdge");
  const double frac = static_cast<double>(bin) / static_cast<double>(counts_.size());
  return std::pow(10.0, logLo_ + frac * (logHi_ - logLo_));
}

}  // namespace libspector::util
