// Descriptive statistics used by the analysis pipeline (§IV): running
// moments, percentiles, empirical CDFs and fixed-bin histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace libspector::util {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (linear interpolation, p in [0, 100]).
/// The input is copied and sorted; throws on an empty sample.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;  // P(X <= value)
};

/// Empirical CDF of a sample, downsampled to at most `maxPoints` points.
[[nodiscard]] std::vector<CdfPoint> empiricalCdf(std::vector<double> values,
                                                 std::size_t maxPoints = 256);

/// Fixed log-spaced histogram over [lo, hi] with `bins` buckets; values
/// outside the range are clamped to the first/last bucket.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t countAt(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] double binLowerEdge(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  double logLo_;
  double logHi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace libspector::util
