// String interning for the hot flow pipeline.
//
// The same handful of strings — smali signatures, origin-library packages,
// category names, apk checksums — recur millions of times across ingest,
// attribution and aggregation. A SymbolPool stores each distinct string
// once and hands out Symbols: trivially copyable handles with stable
// string_view access and a dense per-pool u32 id space, so downstream maps
// can key on a u32 instead of re-hashing the string per flow.
//
// Concurrency contract: intern() is safe from any number of threads.
// Lookups that hit run lock-free (an acquire load of the open-addressing
// table plus a probe); only the first intern of a distinct string takes the
// pool's write mutex. Entries are allocated in stable chunks, so a Symbol
// (and every view() taken from it) stays valid for the pool's lifetime —
// growth never moves an entry.
//
// Ownership/lifetime rules (DESIGN.md §10): a Symbol is a borrowed pointer
// into its pool. Holders must not outlive the pool; the pipeline therefore
// scopes pools to the object that outlives every holder (the attributor
// for per-run flows, the aggregator for per-study entity maps). Moving a
// pool keeps all Symbols valid (state is behind a unique_ptr); moving it
// while another thread interns is undefined.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace libspector::util {

class SymbolPool;

/// Handle to one interned string. Default-constructed Symbols view "".
class Symbol {
 public:
  static constexpr std::uint32_t kNoId = 0xFFFFFFFFu;

  constexpr Symbol() noexcept = default;

  /// Stable view into the owning pool (valid for the pool's lifetime).
  [[nodiscard]] std::string_view view() const noexcept {
    return entry_ == nullptr ? std::string_view{} : std::string_view(entry_->text);
  }
  [[nodiscard]] std::string str() const { return std::string(view()); }
  /// Dense per-pool id (interning order); kNoId for a default Symbol.
  [[nodiscard]] std::uint32_t id() const noexcept {
    return entry_ == nullptr ? kNoId : entry_->id;
  }
  [[nodiscard]] bool empty() const noexcept { return view().empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return view().size(); }

  operator std::string_view() const noexcept { return view(); }  // NOLINT

  /// Content equality (works across pools; the common case in tests).
  friend bool operator==(Symbol a, Symbol b) noexcept { return a.view() == b.view(); }
  friend bool operator==(Symbol a, std::string_view b) noexcept { return a.view() == b; }

  /// Pool-entry identity: stable key for translation caches that map a
  /// foreign pool's symbols onto a local pool (same pointer <=> same entry).
  [[nodiscard]] const void* identity() const noexcept { return entry_; }

 private:
  friend class SymbolPool;
  struct Entry {
    std::string text;
    std::uint32_t id = 0;
  };
  constexpr explicit Symbol(const Entry* entry) noexcept : entry_(entry) {}
  const Entry* entry_ = nullptr;
};

class SymbolPool {
 public:
  SymbolPool();
  ~SymbolPool();
  SymbolPool(SymbolPool&&) noexcept;
  SymbolPool& operator=(SymbolPool&&) noexcept;
  SymbolPool(const SymbolPool&) = delete;
  SymbolPool& operator=(const SymbolPool&) = delete;

  /// Intern `text`: returns the existing Symbol when the string is already
  /// pooled (lock-free), otherwise copies it under the write mutex and
  /// assigns the next id. Throws std::length_error past ~4M symbols.
  [[nodiscard]] Symbol intern(std::string_view text);

  /// Lock-free lookup without insertion; default Symbol when absent.
  [[nodiscard]] Symbol find(std::string_view text) const noexcept;

  /// Resolve an id handed out by this pool; default Symbol out of range.
  [[nodiscard]] Symbol at(std::uint32_t id) const noexcept;

  /// Distinct strings interned so far.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Total bytes of interned text (observability for the wire/memory bench).
  [[nodiscard]] std::size_t textBytes() const noexcept;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

/// Dense table keyed by the u32 ids of one SymbolPool.
///
/// Pool ids are allocated contiguously from 0, so a plain vector beats any
/// hash map for per-id state: `operator[]` grows on first touch and every
/// later access is one bounds check plus an array probe. This is the
/// backing structure of the columnar aggregation fold and the compiled
/// attribution program — anywhere "per distinct string" state is accessed
/// once per flow.
///
/// Not a container of the pool's strings: it never observes the pool, it
/// just mirrors its id space. Callers index it with Symbol::id() values
/// from a single pool; mixing pools gives silently wrong answers, exactly
/// like mixing ids in any other id-keyed map.
template <typename T>
class DenseSymbolMap {
 public:
  DenseSymbolMap() = default;
  explicit DenseSymbolMap(T fill) : fill_(std::move(fill)) {}

  /// Grow-on-access mutable slot for `id` (new slots take the fill value).
  [[nodiscard]] T& operator[](std::uint32_t id) {
    if (id >= slots_.size()) slots_.resize(std::size_t{id} + 1, fill_);
    return slots_[id];
  }

  /// Read-only probe: the fill value for ids never written.
  [[nodiscard]] const T& at(std::uint32_t id) const noexcept {
    return id < slots_.size() ? slots_[id] : fill_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  void clear() noexcept { slots_.clear(); }
  /// Iterate touched slots in id order (callers filter their own notion of
  /// "present"; untouched slots hold the fill value).
  [[nodiscard]] auto begin() const noexcept { return slots_.begin(); }
  [[nodiscard]] auto end() const noexcept { return slots_.end(); }
  /// Pre-grow to the pool's current size() so the fold loop never resizes.
  void reserveFor(const SymbolPool& pool) {
    if (pool.size() > slots_.size()) slots_.resize(pool.size(), fill_);
  }

 private:
  std::vector<T> slots_;
  T fill_{};
};

}  // namespace libspector::util

template <>
struct std::hash<libspector::util::Symbol> {
  [[nodiscard]] std::size_t operator()(
      libspector::util::Symbol s) const noexcept {
    return std::hash<std::string_view>{}(s.view());
  }
};
