// Multi-collector operation: N spectord daemons, each owning a contiguous
// slice of sha space, together covering one study.
//
// runCollector drives one collector's share of a study *through the wire
// protocol*: the emulator fleet's datagrams flow as Report frames into a
// live daemon (which attributes, accounts loss and checkpoints each run),
// and run completions are uploaded as RunComplete envelopes. The daemon's
// checkpoint directory is the collector's entire output — there is no
// in-process accumulator — which is what makes the cluster crash-safe and
// mergeable: orch::mergeStudies scans every collector's directory and
// replays the union through one order-restoring pipeline, producing study
// output byte-identical to a single-collector orch::runStudy at any
// collector count and through any kill/resume history (the cluster tests
// sweep exactly that).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ingest/metrics.hpp"
#include "orch/study.hpp"
#include "spectord/daemon.hpp"
#include "spectord/resilient.hpp"

namespace libspector::spectord {

struct CollectorOptions {
  /// This collector's slice (index of count).
  std::uint32_t index = 0;
  std::uint32_t count = 1;
  /// Required: where this collector checkpoints its runs (one directory
  /// per collector; mergeStudies consumes them all).
  std::string checkpointDirectory;
  /// Resume a previous incarnation first: replay the directory's
  /// surviving runs through the daemon, then dispatch only the gaps.
  bool resume = false;
  /// Simulated mid-study kill: dispatch at most this many owned jobs,
  /// then stop (in-flight jobs still finish and checkpoint — a process
  /// kill between runs). ~0 = run the full share.
  std::uint64_t jobLimit = ~0ULL;
  /// Optional wrapper around every daemon connection the collector's
  /// ingest client opens (`ordinal` = nth connection, 0-based). The chaos
  /// tests interpose a BreakerEndpoint here to kill connections mid-study.
  std::function<ChannelEndpoint(ChannelEndpoint endpoint, std::size_t ordinal)>
      channelWrapper;
  /// Backoff policy for the resilient ingest client's reconnects.
  ReconnectorConfig reconnect;
};

struct CollectorResult {
  std::uint64_t jobsOwned = 0;      // owned jobs needing work this run
                                    // (resume-restored jobs excluded)
  std::uint64_t jobsDispatched = 0; // owned jobs actually run this time
  std::uint64_t runsAccepted = 0;   // RunComplete uploads the daemon took
  std::uint64_t runsReplayed = 0;   // restored from checkpoints (resume)
  std::uint64_t reconnects = 0;     // ingest connections re-opened
  std::uint64_t framesResent = 0;   // unacked report frames replayed
  std::uint64_t runsResent = 0;     // run uploads retried after a death
  std::uint64_t sessionToken = 0;
  ingest::IngestMetrics metrics;
};

/// Run collector `options.index`'s share of `config` against a live
/// daemon. The whole corpus is generated to learn each apk's sha (the
/// digest is what ownership hashes); only owned jobs run emulators.
[[nodiscard]] CollectorResult runCollector(const orch::StudyConfig& config,
                                           const CollectorOptions& options);

}  // namespace libspector::spectord
