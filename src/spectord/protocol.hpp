// The spectord wire protocol: framed request/stream messages between a
// long-running collector daemon and its clients (emulator fleets,
// dashboards, operators).
//
// The ingest tier's ReportFrame is a *datagram* format: each UDP datagram
// is self-delimiting because the channel frames it. spectord speaks over
// byte *streams* (simulated duplex channels shaped like sockets), so the
// protocol adds its own stream framing — the idiom of an async HTTP
// server: a per-connection read buffer, an incremental parser that
// tolerates partial delivery and resynchronizes past garbage, and a hard
// frame-size cap so a corrupt length field cannot balloon memory.
//
//   magic (u32) | version (u8) | type (u8) | crc32 (u32) | length (u32) | body
//
// The crc32 covers the body (same discipline as ReportFrame/SpabEnvelope),
// so a flipped bit inside a frame is rejected and the parser skips to the
// next magic instead of mis-decoding. Three client surfaces share the one
// frame grammar:
//
//  - report ingest: Hello/HelloAck session handshake with sequence resume,
//    Report frames carrying ReportFrame v1/v2/v3 datagram bytes verbatim,
//    RunComplete frames carrying core::SpabEnvelope bytes (the checkpoint
//    format reused as the upload format), cumulative ReportAck flow.
//  - dashboard subscriptions: Subscribe(topic), full Snapshot on
//    subscribe, incremental Delta frames per finalized run.
//  - admin ops: Admin(op, arg) / AdminAck — drain, compact, evict-apk,
//    resume-from-checkpoint, status, shutdown.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/artifacts.hpp"
#include "ingest/pipeline.hpp"

namespace libspector::spectord {

/// Frame types. Client->daemon and daemon->client frames share one
/// numbering so a trace of either direction is self-describing.
enum class FrameType : std::uint8_t {
  // Session surface.
  Hello = 1,
  HelloAck = 2,
  Bye = 3,
  // Report-ingest surface.
  Report = 4,
  ReportAck = 5,
  RunComplete = 6,
  RunAck = 7,
  // Dashboard surface.
  Subscribe = 8,
  Snapshot = 9,
  Delta = 10,
  // Admin surface.
  Admin = 11,
  AdminAck = 12,
  // Daemon-side rejection of anything it could parse but not accept.
  Error = 13,
};

/// What a connection is for, declared in the handshake. A connection only
/// speaks its surface; frames outside it are answered with Error.
enum class ClientKind : std::uint8_t {
  Ingest = 1,
  Dashboard = 2,
  Admin = 3,
};

/// Dashboard subscription topics.
enum class Topic : std::uint8_t {
  Totals = 1,    // rolling per-apk / per-library byte totals
  Loss = 2,      // exact per-apk loss accounts
  Progress = 3,  // study progress (runs folded vs expected)
};

/// Admin operations.
enum class AdminOp : std::uint8_t {
  Drain = 1,     // block until everything submitted is folded + checkpointed
  Compact = 2,   // compact the checkpoint manifest
  EvictApk = 3,  // drop one apk's pending (unclaimed) ingest state
  Resume = 4,    // scan the checkpoint directory and replay survivors
  Status = 5,    // JSON status document
  Shutdown = 6,  // graceful: drain, flush checkpoints, Bye all clients
};

/// One parsed frame: the type tag plus its raw body bytes. Typed message
/// structs below encode to / decode from `body`.
struct Frame {
  FrameType type = FrameType::Error;
  std::vector<std::uint8_t> body;
};

/// Frame a body for the stream. The only allocation is the result buffer.
[[nodiscard]] std::vector<std::uint8_t> encodeFrame(
    FrameType type, std::span<const std::uint8_t> body);

/// Incremental stream parser: feed() bytes as they arrive (any chunking,
/// down to one byte at a time), then drain next() until it returns
/// nullopt. Garbage between frames is skipped byte-by-byte until the next
/// magic and counted; a frame whose length field exceeds kMaxBody or whose
/// crc32 does not match its body is dropped and counted, and parsing
/// resynchronizes. The parser never throws on wire input — a byte stream
/// from a peer is data, not an error.
class FrameParser {
 public:
  /// Hard cap on a frame body. RunComplete carries a whole serialized
  /// artifact bundle, so the cap is generous; anything larger is treated
  /// as corruption (a real length field this big means a framing bug).
  static constexpr std::size_t kMaxBody = 64u << 20;
  /// magic u32 | version u8 | type u8 | crc32 u32 | length u32.
  static constexpr std::size_t kHeaderSize = 14;

  void feed(std::span<const std::uint8_t> bytes);
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes skipped while hunting for a magic (garbage / torn stream).
  [[nodiscard]] std::uint64_t garbageBytes() const noexcept { return garbage_; }
  /// Frames rejected for a bad crc, unknown version, or an oversized
  /// length field.
  [[nodiscard]] std::uint64_t rejectedFrames() const noexcept {
    return rejected_;
  }
  /// Bytes buffered awaiting the rest of a partial frame (the consumed
  /// prefix before the parse cursor is already spoken for).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // parse cursor into buf_ (compacted on next())
  std::uint64_t garbage_ = 0;
  std::uint64_t rejected_ = 0;
};

// ---------------------------------------------------------------------------
// Typed messages. Each encodes to / decodes from a frame *body*. decode()
// throws util::DecodeError on truncation or inconsistency — by the time a
// body reaches a typed decoder its crc has already passed, so a decode
// failure is a protocol bug or a version skew, not line noise.
// ---------------------------------------------------------------------------

struct HelloMsg {
  std::uint64_t clientId = 0;  // caller-chosen stable identity
  ClientKind kind = ClientKind::Ingest;
  /// Session token from a previous HelloAck (0 = fresh session). Presenting
  /// it resumes the session: the daemon replies with the frames it already
  /// accepted so the client re-sends only the unacknowledged tail.
  std::uint64_t resumeSession = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static HelloMsg decode(std::span<const std::uint8_t> body);
};

struct HelloAckMsg {
  std::uint64_t session = 0;      // token to present on reconnect
  std::uint64_t ackedFrames = 0;  // report frames accepted across sessions
  std::uint64_t ackedRuns = 0;    // run bundles accepted across sessions
  bool resumed = false;           // true when resumeSession matched

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static HelloAckMsg decode(std::span<const std::uint8_t> body);
};

/// Report frames carry the ReportFrame datagram bytes verbatim as their
/// body — no re-encoding, so v1/v2/v3 all pass through and the router's
/// loss accounting applies unchanged. No typed struct needed.

struct ReportAckMsg {
  std::uint64_t ackedFrames = 0;  // cumulative per client

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static ReportAckMsg decode(std::span<const std::uint8_t> body);
};

/// RunComplete bodies are core::SpabEnvelope bytes (jobIndex + a zero loss
/// account + the serialized artifacts): the crash-safe checkpoint framing
/// reused as the upload format, so the daemon can validate and persist a
/// run with the machinery PR 3 built.

struct RunAckMsg {
  std::uint64_t jobIndex = 0;
  bool accepted = false;  // false: outside this collector's shard range
  /// The session already uploaded this jobIndex: the re-upload (a resumed
  /// client re-sending a RunComplete whose ack was lost) was not folded
  /// again, and the ack must not be counted again either.
  bool duplicate = false;
  std::string reason;  // empty when accepted and fresh

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static RunAckMsg decode(std::span<const std::uint8_t> body);
};

struct SubscribeMsg {
  Topic topic = Topic::Totals;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static SubscribeMsg decode(std::span<const std::uint8_t> body);
};

/// Full state of one topic (sent on subscribe, and re-sent after a slow
/// subscriber has had deltas dropped — snapshot-resync).
struct SnapshotMsg {
  Topic topic = Topic::Totals;
  ingest::RollingTotals totals;  // Topic::Totals
  std::vector<std::pair<std::string, core::ApkLossAccount>>
      accounts;  // Topic::Loss, sha-sorted
  // Topic::Progress.
  std::uint64_t runsFolded = 0;
  std::uint64_t expectedRuns = 0;
  std::uint64_t reportsDelivered = 0;
  std::uint64_t reportsLost = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static SnapshotMsg decode(std::span<const std::uint8_t> body);
};

/// One finalized run's increment, the unit of dashboard streaming. A
/// subscriber that folds every delta into its snapshot mirror reconstructs
/// the daemon's rolling state exactly (the dashboard tests pin this).
struct DeltaMsg {
  Topic topic = Topic::Totals;
  std::uint64_t jobIndex = 0;
  std::string apkSha256;
  bool replayed = false;
  // Topic::Totals payload.
  std::uint64_t flowCount = 0;
  std::uint64_t attributedBytes = 0;
  std::uint64_t unattributedBytes = 0;
  std::vector<std::pair<std::string, std::uint64_t>> bytesByLibrary;
  std::vector<std::pair<std::string, std::uint64_t>> bytesByLibCategory;
  // Topic::Loss payload.
  core::ApkLossAccount account;
  // Topic::Progress payload (cumulative counters, not increments: progress
  // deltas may be applied out of order across shards, so the mirror keeps
  // the max).
  std::uint64_t runsFolded = 0;
  std::uint64_t expectedRuns = 0;
  std::uint64_t reportsDelivered = 0;
  std::uint64_t reportsLost = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static DeltaMsg decode(std::span<const std::uint8_t> body);
};

struct AdminMsg {
  AdminOp op = AdminOp::Status;
  std::string arg;  // EvictApk: the apk sha256; others: unused

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static AdminMsg decode(std::span<const std::uint8_t> body);
};

struct AdminAckMsg {
  AdminOp op = AdminOp::Status;
  bool ok = false;
  std::string info;  // human-readable result / JSON status document

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static AdminAckMsg decode(std::span<const std::uint8_t> body);
};

struct ErrorMsg {
  std::uint16_t code = 0;
  std::string message;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static ErrorMsg decode(std::span<const std::uint8_t> body);
};

struct ByeMsg {
  std::string reason;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static ByeMsg decode(std::span<const std::uint8_t> body);
};

}  // namespace libspector::spectord
