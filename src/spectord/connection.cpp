#include "spectord/connection.hpp"

namespace libspector::spectord {

std::size_t Connection::pumpRead() {
  if (closed_) return 0;
  readScratch_.clear();
  const std::size_t got = endpoint_.readSome(readScratch_);
  if (got != 0) parser_.feed(readScratch_);
  return got;
}

void Connection::sendControl(FrameType type,
                             std::span<const std::uint8_t> body) {
  if (closed_) return;
  auto frame = encodeFrame(type, body);
  queuedBytes_ += frame.size();
  queue_.push_back(std::move(frame));
}

bool Connection::sendDelta(std::span<const std::uint8_t> body) {
  if (closed_) return false;
  auto frame = encodeFrame(FrameType::Delta, body);
  if (queuedBytes_ + frame.size() > writeQueueBudget_) {
    if (policy_ == SlowSubscriberPolicy::Disconnect) {
      disconnectAfterFlush = true;
    }
    ++stats.deltasDropped;
    return false;
  }
  queuedBytes_ += frame.size();
  queue_.push_back(std::move(frame));
  ++stats.deltasSent;
  return true;
}

bool Connection::flushWrites() {
  bool progressed = false;
  while (!closed_ && !queue_.empty()) {
    const auto& front = queue_.front();
    const std::span<const std::uint8_t> rest(front.data() + frontOffset_,
                                             front.size() - frontOffset_);
    const std::size_t wrote = endpoint_.tryWrite(rest);
    if (wrote == 0) break;
    progressed = true;
    frontOffset_ += wrote;
    queuedBytes_ -= wrote;
    if (frontOffset_ == front.size()) {
      queue_.pop_front();
      frontOffset_ = 0;
    }
  }
  return progressed;
}

void Connection::close() {
  if (closed_) return;
  closed_ = true;
  queuedBytes_ = 0;
  queue_.clear();
  frontOffset_ = 0;
  endpoint_.close();
}

}  // namespace libspector::spectord
