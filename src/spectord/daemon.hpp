// spectord: the long-running collector daemon.
//
// Everything PRs 2–6 built runs in-process under orch::runStudy; the
// paper's Libspector is a *service* — a fleet of instrumented emulators
// streams reports at a collector that aggregates continuously and answers
// live queries. SpectorDaemon is that service shape, layered over
// ingest::IngestPipeline:
//
//  - clients connect over simulated duplex channels and speak the framed
//    protocol (protocol.hpp) on three surfaces: report ingest (with
//    session handshake + sequence resume), dashboard subscriptions
//    (snapshot-on-subscribe + per-run delta frames) and admin ops;
//  - one event-loop thread owns every connection (the async-server
//    idiom): it pumps reads into incremental parsers, dispatches frames,
//    applies run digests to a loop-owned dashboard mirror, fans deltas
//    out to subscribers through bounded write queues, and enforces the
//    slow-subscriber policy — ingest never blocks on a dashboard;
//  - heavy work stays where PR 2 put it: shard consumer threads attribute
//    and fold runs inside the pipeline; they only hand the loop a
//    ingest::RunDigest through a queue.
//
// Consistency contract of the dashboard surface: snapshots and deltas for
// one connection are emitted by the same thread from the same mirror, so
// a subscriber that folds every delta into its snapshot reconstructs the
// daemon's state *exactly* (no double counting across the subscribe
// boundary, no missed runs) — the dashboard tests pin this.
//
// Multi-collector mode: each daemon owns a contiguous slice of the 64-bit
// fnv1a hash of apk-sha space (CollectorAssignment). RunComplete uploads
// for apks outside the slice are refused, so N collectors partition a
// study; orch::mergeStudies proves the merged result byte-identical to a
// single collector.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis.hpp"
#include "ingest/pipeline.hpp"
#include "orch/recovery.hpp"
#include "spectord/connection.hpp"
#include "spectord/protocol.hpp"

namespace libspector::spectord {

/// Which slice of sha-space one collector owns: collector `i` of `count`
/// owns the apks whose fnv1a64(sha256) falls in the i-th contiguous range
/// of the 64-bit hash space. Contiguous ranges (not modulo) so growing
/// the collector count splits ranges instead of reshuffling every apk.
struct CollectorAssignment {
  std::uint32_t index = 0;
  std::uint32_t count = 1;

  [[nodiscard]] std::uint32_t ownerOf(const std::string& apkSha256) const;
  [[nodiscard]] bool owns(const std::string& apkSha256) const {
    return ownerOf(apkSha256) == index;
  }
};

struct DaemonConfig {
  ingest::IngestConfig ingest;
  /// Total runs this collector expects (its share of the study), for the
  /// Progress topic. 0 = unknown.
  std::uint64_t expectedRuns = 0;
  /// Checkpoint directory for crash-safe `.spab` persistence; empty runs
  /// the daemon in-memory only (no checkpoints, no admin resume).
  std::string checkpointDirectory;
  CollectorAssignment assignment;
  /// Per-direction byte capacity of each client channel (the simulated
  /// kernel buffer).
  std::size_t channelCapacity = 64 * 1024;
  /// Write-queue budget per connection before the slow-subscriber policy
  /// applies to delta frames.
  std::size_t subscriberQueueBytes = 256 * 1024;
  SlowSubscriberPolicy slowSubscriberPolicy =
      SlowSubscriberPolicy::DropAndResync;
};

/// Daemon-level counters (merged into IngestMetrics by metrics()).
struct DaemonCounters {
  std::uint64_t sessionsOpened = 0;
  std::uint64_t sessionsResumed = 0;
  std::uint64_t sessionsExpired = 0;   // stale sessions swept on drain/compact
  std::uint64_t attachRefusals = 0;    // Hello while the session is live
  std::uint64_t duplicateRunUploads = 0;  // RunComplete re-uploads deduped
  std::uint64_t deltasSent = 0;
  std::uint64_t deltasDropped = 0;
  std::uint64_t snapshotsResent = 0;
  std::uint64_t subscribersDisconnected = 0;
  std::uint64_t garbageBytes = 0;
  std::uint64_t rejectedFrames = 0;
  std::uint64_t runsRefused = 0;  // RunComplete outside the owned slice
};

class SpectorDaemon {
 public:
  /// `attribute` / `attributeColumns` / `accumulator` are the pipeline's
  /// usual wiring (pipeline.hpp). When `config.checkpointDirectory` is
  /// set the daemon owns an orch::CheckpointWriter and persists every
  /// fresh run before it is published; `checkpointProbe` is the
  /// crash-injection hook for it.
  explicit SpectorDaemon(
      DaemonConfig config, ingest::IngestPipeline::AttributeFn attribute,
      ingest::IngestPipeline::AttributeColumnsFn attributeColumns = {},
      core::StudyAccumulator* accumulator = nullptr,
      orch::KillProbe checkpointProbe = {});
  ~SpectorDaemon();

  SpectorDaemon(const SpectorDaemon&) = delete;
  SpectorDaemon& operator=(const SpectorDaemon&) = delete;

  /// Open a connection; returns the client end of a fresh duplex channel.
  /// Thread-safe. A connection opened after shutdown() is returned
  /// already closed.
  [[nodiscard]] ChannelEndpoint connect();

  /// Block until everything submitted so far is folded, checkpointed and
  /// published. Callable from any thread except the event loop's clients'
  /// frame handlers (the admin Drain op is how clients reach it).
  void drain();

  /// Graceful shutdown: drain the pipeline (flushing `.spab`
  /// checkpoints), Bye every client, close every channel, stop the loop.
  /// Idempotent; also run by the destructor.
  void shutdown();

  [[nodiscard]] bool running() const;

  [[nodiscard]] ingest::RollingTotals rollingTotals() const {
    return pipeline_.rollingTotals();
  }
  /// Pipeline metrics with the daemon's service counters merged in.
  [[nodiscard]] ingest::IngestMetrics metrics() const;
  [[nodiscard]] DaemonCounters counters() const;

  /// Direct pipeline access for in-process producers (the cluster driver
  /// replays recovered runs through this).
  [[nodiscard]] ingest::IngestPipeline& pipeline() noexcept {
    return pipeline_;
  }
  [[nodiscard]] const DaemonConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Loop-owned mirror of the publishable state. Snapshots are built from
  /// this (never from the pipeline directly) so that snapshot + later
  /// deltas is an exact reconstruction — the pipeline's own rolling view
  /// may already include runs whose digests are still queued.
  struct DashboardState {
    ingest::RollingTotals totals;
    std::map<std::string, core::ApkLossAccount> accounts;  // sha-sorted
    std::uint64_t reportsDelivered = 0;
    std::uint64_t reportsLost = 0;
  };

  /// Cross-connection client session: survives disconnects so a
  /// reconnecting client can resume and re-send only its unacked tail.
  /// Exactly one live connection may be attached at a time — a second
  /// Hello for a live session is refused (a client that reconnected
  /// because *it* saw a hangup races the daemon reaping the old
  /// connection, so an attach whose previous connection is peer-gone is
  /// adopted, not refused). Sessions with no live attach are swept on the
  /// admin Drain/Compact housekeeping ops.
  struct SessionRecord {
    std::uint64_t token = 0;
    ClientKind kind = ClientKind::Ingest;
    std::uint64_t ackedFrames = 0;  // report frames accepted, cumulative
    std::uint64_t ackedRuns = 0;    // run bundles accepted, cumulative
    /// Job indices this session has accepted a RunComplete for: a resumed
    /// client re-uploading a run whose ack was severed is acked
    /// (duplicate=true) without folding the run a second time.
    std::set<std::uint64_t> completedJobs;
  };

  void loopMain();
  void wake();
  /// True when the loop has outstanding work (reads pending, publish
  /// queue non-empty, writes queued).
  bool pumpOnce();

  void handleFrame(Connection& conn, Frame&& frame);
  void handleHello(Connection& conn, const Frame& frame);
  void handleAdmin(Connection& conn, const AdminMsg& msg);
  void sendError(Connection& conn, std::uint16_t code, std::string_view what);

  /// Loop-thread only: the open, handshaken connection attached as
  /// `clientId`, excluding `except`; nullptr when none.
  [[nodiscard]] Connection* liveAttach(std::uint64_t clientId,
                                       const Connection* except);
  /// Loop-thread only: drop every session with no live attach. Returns the
  /// number swept (counted into sessionsExpired by the caller).
  std::size_t expireStaleSessions();

  void applyDigest(const ingest::RunDigest& digest);
  void publishDigest(const ingest::RunDigest& digest);
  void sendSnapshots(Connection& conn);
  [[nodiscard]] SnapshotMsg buildSnapshot(Topic topic) const;
  [[nodiscard]] std::string statusJson() const;

  DaemonConfig config_;
  std::optional<orch::CheckpointWriter> checkpoints_;
  ingest::IngestPipeline pipeline_;

  // Event-loop wake machinery (channel activity, publishes, connects).
  std::mutex wakeMutex_;
  std::condition_variable wakeCv_;
  bool wakePending_ = false;
  bool stopRequested_ = false;
  std::atomic<bool> shutdownStarted_{false};
  std::atomic<bool> loopExited_{false};
  /// Digests enqueued but not yet fanned out (drain() waits on zero).
  std::atomic<std::uint64_t> pendingPublishes_{0};

  // New connections parked until the loop adopts them. Every channel
  // connect() hands out is armed with the loop waker; the loop disarms a
  // connection when it reaps it, and shutdown() disarms the survivors
  // once the loop is gone, so a client or proxy that outlives the daemon
  // cannot wake() into a destroyed object (and a long-lived daemon under
  // a reconnect storm does not pin every dead connection's pipes).
  std::mutex acceptMutex_;
  std::vector<std::unique_ptr<Connection>> accepted_;
  std::uint64_t nextConnId_ = 1;
  bool acceptingClosed_ = false;

  // Digests queued by shard consumer threads for the loop to publish.
  std::mutex publishMutex_;
  std::deque<ingest::RunDigest> publishQueue_;

  // Loop-owned state (no lock: only loopMain touches these).
  std::vector<std::unique_ptr<Connection>> conns_;
  DashboardState dash_;
  std::map<std::uint64_t, SessionRecord> sessions_;  // by clientId
  std::uint64_t nextSessionToken_ = 1;

  mutable std::mutex countersMutex_;
  DaemonCounters counters_;

  std::thread loop_;  // last-ish: joined in shutdown()
};

}  // namespace libspector::spectord
