#include "spectord/protocol.hpp"

#include <cstring>

#include "util/bytes.hpp"

namespace libspector::spectord {

namespace {

// 'S' 'P' 'C' 'D' little-endian, distinct from the report-frame and spab
// magics so a misdirected stream is rejected instead of half-parsed.
constexpr std::uint32_t kMagic = 0x44435053u;
constexpr std::uint8_t kVersion = 1;
// magic u32 | version u8 | type u8 | crc32 u32 | length u32
constexpr std::size_t kHeaderSize = FrameParser::kHeaderSize;

std::uint32_t readU32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

bool validFrameType(std::uint8_t type) noexcept {
  return type >= static_cast<std::uint8_t>(FrameType::Hello) &&
         type <= static_cast<std::uint8_t>(FrameType::Error);
}

void writeAccount(util::ByteWriter& w, const core::ApkLossAccount& a) {
  w.u64(a.reportsEmitted);
  w.u64(a.framesDelivered);
  w.u64(a.uniqueDelivered);
  w.u64(a.duplicated);
  w.u64(a.outOfOrder);
  w.u64(a.lost);
}

core::ApkLossAccount readAccount(util::ByteReader& r) {
  core::ApkLossAccount a;
  a.reportsEmitted = r.u64();
  a.framesDelivered = r.u64();
  a.uniqueDelivered = r.u64();
  a.duplicated = r.u64();
  a.outOfOrder = r.u64();
  a.lost = r.u64();
  return a;
}

void writeStrU64Pairs(
    util::ByteWriter& w,
    const std::vector<std::pair<std::string, std::uint64_t>>& pairs) {
  w.u32(util::checkedU32(pairs.size(), "spectord pair count"));
  for (const auto& [name, value] : pairs) {
    w.str(name);
    w.u64(value);
  }
}

std::vector<std::pair<std::string, std::uint64_t>> readStrU64Pairs(
    util::ByteReader& r) {
  const std::uint32_t n = r.countCheck(r.u32(), 12);  // str len + u64
  std::vector<std::pair<std::string, std::uint64_t>> pairs;
  pairs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = r.str();
    const std::uint64_t value = r.u64();
    pairs.emplace_back(std::move(name), value);
  }
  return pairs;
}

void writeStrU64Map(
    util::ByteWriter& w,
    const std::map<std::string, std::uint64_t, std::less<>>& map) {
  w.u32(util::checkedU32(map.size(), "spectord map count"));
  for (const auto& [name, value] : map) {
    w.str(name);
    w.u64(value);
  }
}

std::map<std::string, std::uint64_t, std::less<>> readStrU64Map(
    util::ByteReader& r) {
  const std::uint32_t n = r.countCheck(r.u32(), 12);
  std::map<std::string, std::uint64_t, std::less<>> map;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = r.str();
    const std::uint64_t value = r.u64();
    map.emplace(std::move(name), value);
  }
  return map;
}

}  // namespace

std::vector<std::uint8_t> encodeFrame(FrameType type,
                                      std::span<const std::uint8_t> body) {
  util::ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(util::crc32(body));
  w.u32(util::checkedU32(body.size(), "spectord frame body"));
  w.raw(body);
  return w.take();
}

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameParser::next() {
  while (true) {
    // Hunt for the magic, counting skipped garbage byte by byte — the
    // stream equivalent of the router dropping a malformed datagram.
    while (buf_.size() - pos_ >= 4 && readU32(buf_.data() + pos_) != kMagic) {
      ++pos_;
      ++garbage_;
    }
    if (buf_.size() - pos_ < kHeaderSize) break;  // partial header

    const std::uint8_t* header = buf_.data() + pos_;
    const std::uint8_t version = header[4];
    const std::uint8_t type = header[5];
    const std::uint32_t crc = readU32(header + 6);
    const std::uint32_t length = readU32(header + 10);

    if (version != kVersion || !validFrameType(type) || length > kMaxBody) {
      // Unusable header: resynchronize just past this magic. The length
      // field cannot be trusted, so skipping the claimed body could skip a
      // real frame.
      ++rejected_;
      pos_ += 4;
      garbage_ += 4;
      continue;
    }
    if (buf_.size() - pos_ < kHeaderSize + length) break;  // partial body

    const std::span<const std::uint8_t> body(header + kHeaderSize, length);
    if (util::crc32(body) != crc) {
      // The header was plausible but the body is torn; the length field is
      // as suspect as the payload, so resync past the magic only.
      ++rejected_;
      pos_ += 4;
      garbage_ += 4;
      continue;
    }

    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.body.assign(body.begin(), body.end());
    pos_ += kHeaderSize + length;
    // Compact once the consumed prefix dominates, so the buffer does not
    // grow with the whole session.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
      pos_ = 0;
    }
    return frame;
  }
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Typed message bodies.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> HelloMsg::encode() const {
  util::ByteWriter w;
  w.u64(clientId);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(resumeSession);
  return w.take();
}

HelloMsg HelloMsg::decode(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  HelloMsg msg;
  msg.clientId = r.u64();
  const std::uint8_t kind = r.u8();
  if (kind < static_cast<std::uint8_t>(ClientKind::Ingest) ||
      kind > static_cast<std::uint8_t>(ClientKind::Admin))
    throw util::DecodeError("spectord Hello: unknown client kind");
  msg.kind = static_cast<ClientKind>(kind);
  msg.resumeSession = r.u64();
  return msg;
}

std::vector<std::uint8_t> HelloAckMsg::encode() const {
  util::ByteWriter w;
  w.u64(session);
  w.u64(ackedFrames);
  w.u64(ackedRuns);
  w.u8(resumed ? 1 : 0);
  return w.take();
}

HelloAckMsg HelloAckMsg::decode(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  HelloAckMsg msg;
  msg.session = r.u64();
  msg.ackedFrames = r.u64();
  msg.ackedRuns = r.u64();
  msg.resumed = r.u8() != 0;
  return msg;
}

std::vector<std::uint8_t> ReportAckMsg::encode() const {
  util::ByteWriter w;
  w.u64(ackedFrames);
  return w.take();
}

ReportAckMsg ReportAckMsg::decode(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  ReportAckMsg msg;
  msg.ackedFrames = r.u64();
  return msg;
}

std::vector<std::uint8_t> RunAckMsg::encode() const {
  util::ByteWriter w;
  w.u64(jobIndex);
  w.u8(accepted ? 1 : 0);
  w.u8(duplicate ? 1 : 0);
  w.str(reason);
  return w.take();
}

RunAckMsg RunAckMsg::decode(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  RunAckMsg msg;
  msg.jobIndex = r.u64();
  msg.accepted = r.u8() != 0;
  msg.duplicate = r.u8() != 0;
  msg.reason = r.str();
  return msg;
}

std::vector<std::uint8_t> SubscribeMsg::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(topic));
  return w.take();
}

SubscribeMsg SubscribeMsg::decode(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  SubscribeMsg msg;
  const std::uint8_t topic = r.u8();
  if (topic < static_cast<std::uint8_t>(Topic::Totals) ||
      topic > static_cast<std::uint8_t>(Topic::Progress))
    throw util::DecodeError("spectord Subscribe: unknown topic");
  msg.topic = static_cast<Topic>(topic);
  return msg;
}

std::vector<std::uint8_t> SnapshotMsg::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(topic));
  switch (topic) {
    case Topic::Totals:
      w.u64(totals.runsFolded);
      w.u64(totals.flowCount);
      w.u64(totals.attributedBytes);
      w.u64(totals.unattributedBytes);
      writeStrU64Map(w, totals.bytesByLibrary);
      writeStrU64Map(w, totals.bytesByLibCategory);
      writeStrU64Map(w, totals.bytesByApp);
      break;
    case Topic::Loss:
      w.u32(util::checkedU32(accounts.size(), "spectord loss accounts"));
      for (const auto& [sha, account] : accounts) {
        w.str(sha);
        writeAccount(w, account);
      }
      break;
    case Topic::Progress:
      w.u64(runsFolded);
      w.u64(expectedRuns);
      w.u64(reportsDelivered);
      w.u64(reportsLost);
      break;
  }
  return w.take();
}

SnapshotMsg SnapshotMsg::decode(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  SnapshotMsg msg;
  const std::uint8_t topic = r.u8();
  if (topic < static_cast<std::uint8_t>(Topic::Totals) ||
      topic > static_cast<std::uint8_t>(Topic::Progress))
    throw util::DecodeError("spectord Snapshot: unknown topic");
  msg.topic = static_cast<Topic>(topic);
  switch (msg.topic) {
    case Topic::Totals:
      msg.totals.runsFolded = r.u64();
      msg.totals.flowCount = r.u64();
      msg.totals.attributedBytes = r.u64();
      msg.totals.unattributedBytes = r.u64();
      msg.totals.bytesByLibrary = readStrU64Map(r);
      msg.totals.bytesByLibCategory = readStrU64Map(r);
      msg.totals.bytesByApp = readStrU64Map(r);
      break;
    case Topic::Loss: {
      const std::uint32_t n = r.countCheck(r.u32(), 4 + 48);
      msg.accounts.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string sha = r.str();
        msg.accounts.emplace_back(std::move(sha), readAccount(r));
      }
      break;
    }
    case Topic::Progress:
      msg.runsFolded = r.u64();
      msg.expectedRuns = r.u64();
      msg.reportsDelivered = r.u64();
      msg.reportsLost = r.u64();
      break;
  }
  return msg;
}

std::vector<std::uint8_t> DeltaMsg::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(topic));
  w.u64(jobIndex);
  w.str(apkSha256);
  w.u8(replayed ? 1 : 0);
  switch (topic) {
    case Topic::Totals:
      w.u64(flowCount);
      w.u64(attributedBytes);
      w.u64(unattributedBytes);
      writeStrU64Pairs(w, bytesByLibrary);
      writeStrU64Pairs(w, bytesByLibCategory);
      break;
    case Topic::Loss:
      writeAccount(w, account);
      break;
    case Topic::Progress:
      w.u64(runsFolded);
      w.u64(expectedRuns);
      w.u64(reportsDelivered);
      w.u64(reportsLost);
      break;
  }
  return w.take();
}

DeltaMsg DeltaMsg::decode(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  DeltaMsg msg;
  const std::uint8_t topic = r.u8();
  if (topic < static_cast<std::uint8_t>(Topic::Totals) ||
      topic > static_cast<std::uint8_t>(Topic::Progress))
    throw util::DecodeError("spectord Delta: unknown topic");
  msg.topic = static_cast<Topic>(topic);
  msg.jobIndex = r.u64();
  msg.apkSha256 = r.str();
  msg.replayed = r.u8() != 0;
  switch (msg.topic) {
    case Topic::Totals:
      msg.flowCount = r.u64();
      msg.attributedBytes = r.u64();
      msg.unattributedBytes = r.u64();
      msg.bytesByLibrary = readStrU64Pairs(r);
      msg.bytesByLibCategory = readStrU64Pairs(r);
      break;
    case Topic::Loss:
      msg.account = readAccount(r);
      break;
    case Topic::Progress:
      msg.runsFolded = r.u64();
      msg.expectedRuns = r.u64();
      msg.reportsDelivered = r.u64();
      msg.reportsLost = r.u64();
      break;
  }
  return msg;
}

std::vector<std::uint8_t> AdminMsg::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.str(arg);
  return w.take();
}

AdminMsg AdminMsg::decode(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  AdminMsg msg;
  const std::uint8_t op = r.u8();
  if (op < static_cast<std::uint8_t>(AdminOp::Drain) ||
      op > static_cast<std::uint8_t>(AdminOp::Shutdown))
    throw util::DecodeError("spectord Admin: unknown op");
  msg.op = static_cast<AdminOp>(op);
  msg.arg = r.str();
  return msg;
}

std::vector<std::uint8_t> AdminAckMsg::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u8(ok ? 1 : 0);
  w.str(info);
  return w.take();
}

AdminAckMsg AdminAckMsg::decode(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  AdminAckMsg msg;
  msg.op = static_cast<AdminOp>(r.u8());
  msg.ok = r.u8() != 0;
  msg.info = r.str();
  return msg;
}

std::vector<std::uint8_t> ErrorMsg::encode() const {
  util::ByteWriter w;
  w.u16(code);
  w.str(message);
  return w.take();
}

ErrorMsg ErrorMsg::decode(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  ErrorMsg msg;
  msg.code = r.u16();
  msg.message = r.str();
  return msg;
}

std::vector<std::uint8_t> ByeMsg::encode() const {
  util::ByteWriter w;
  w.str(reason);
  return w.take();
}

ByeMsg ByeMsg::decode(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  ByeMsg msg;
  msg.reason = r.str();
  return msg;
}

}  // namespace libspector::spectord
