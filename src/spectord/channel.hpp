// Simulated duplex byte channels, shaped like sockets.
//
// spectord's protocol machinery (incremental parsing, bounded write
// queues, slow-consumer handling) is only honest if the transport behaves
// like a real socket: finite kernel buffers, partial writes, partial
// reads, EOF on close. DuplexChannel models exactly that — two bounded
// byte pipes with blocking and non-blocking APIs — so the daemon's
// connection state machine is written against socket semantics and would
// port to a real fd loop by swapping this class out.
//
// Thread model: each pipe has its own mutex/cv; both endpoints are safe to
// use from any thread. An optional activity hook fires (outside the lock)
// whenever a pipe changes state, which is how the daemon's event loop
// sleeps on a condition variable instead of polling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace libspector::spectord {

/// One direction of a channel: a bounded byte queue with socket-like
/// blocking/non-blocking access and a close flag (EOF after drain).
class Pipe {
 public:
  explicit Pipe(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking write: accepts up to the free space, returns how many
  /// bytes were taken (0 when full or closed) — a socket's partial write.
  std::size_t tryWrite(std::span<const std::uint8_t> bytes);

  /// Blocking write of the whole span; returns false if the pipe closed
  /// before everything was accepted.
  bool writeAll(std::span<const std::uint8_t> bytes);

  /// Non-blocking read: appends up to `max` available bytes to `out`,
  /// returns how many were read.
  std::size_t readSome(std::vector<std::uint8_t>& out,
                       std::size_t max = static_cast<std::size_t>(-1));

  /// Block until bytes are readable, EOF, or the timeout; true when
  /// readable or EOF (a read will make progress either way).
  bool waitReadable(std::chrono::milliseconds timeout) const;

  void close();
  [[nodiscard]] std::size_t available() const;
  [[nodiscard]] std::size_t freeSpace() const;
  [[nodiscard]] bool closed() const;
  /// Closed and fully drained — the reader's EOF.
  [[nodiscard]] bool eof() const;

  /// Invoked (outside the buffer lock) after every write, read and
  /// close. The daemon points both of a connection's pipes here to wake
  /// its loop. Setting an empty hook *disarms* the pipe and blocks until
  /// any in-flight invocation returns, so the hook's captured state may
  /// be destroyed afterwards even though peers still hold the pipe.
  void setOnActivity(std::function<void()> hook);

 private:
  void notifyAndSignal();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::mutex hookMutex_;  // serializes hook invocation vs. setOnActivity
  std::vector<std::uint8_t> buf_;  // ring-free: head offset + compaction
  std::size_t head_ = 0;
  bool closed_ = false;
  std::function<void()> onActivity_;
};

/// One end of a duplex channel: writes go to one pipe, reads come from the
/// other. Copyable handle (shared ownership of both pipes).
class ChannelEndpoint {
 public:
  ChannelEndpoint() = default;
  ChannelEndpoint(std::shared_ptr<Pipe> out, std::shared_ptr<Pipe> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  [[nodiscard]] bool valid() const noexcept { return out_ != nullptr; }

  std::size_t tryWrite(std::span<const std::uint8_t> bytes) {
    return out_->tryWrite(bytes);
  }
  bool writeAll(std::span<const std::uint8_t> bytes) {
    return out_->writeAll(bytes);
  }
  std::size_t readSome(std::vector<std::uint8_t>& out,
                       std::size_t max = static_cast<std::size_t>(-1)) {
    return in_->readSome(out, max);
  }
  bool waitReadable(std::chrono::milliseconds timeout) const {
    return in_->waitReadable(timeout);
  }

  [[nodiscard]] std::size_t readable() const { return in_->available(); }
  [[nodiscard]] std::size_t writableSpace() const { return out_->freeSpace(); }
  /// EOF from the peer: it closed and everything it sent was read.
  [[nodiscard]] bool peerClosed() const { return in_->eof(); }
  /// The peer closed its write side (a FIN arrived) even if bytes it
  /// already sent are still buffered for reading.
  [[nodiscard]] bool peerHungUp() const { return in_->closed(); }
  [[nodiscard]] bool writeClosed() const { return out_->closed(); }

  /// Socket-style close: both directions shut down.
  void close() {
    out_->close();
    in_->close();
  }

  /// Detach the activity hooks from both pipes, waiting out any
  /// in-flight invocation. The arming side calls this at teardown so a
  /// peer that outlives it (a client or proxy closing late) cannot call
  /// into freed state.
  void disarmActivity() {
    out_->setOnActivity({});
    in_->setOnActivity({});
  }

 private:
  std::shared_ptr<Pipe> out_;
  std::shared_ptr<Pipe> in_;
};

struct ChannelPair {
  ChannelEndpoint server;
  ChannelEndpoint client;
};

/// Build a connected channel; `capacity` bounds each direction
/// independently (the simulated kernel buffer). `onActivity` is attached
/// to both pipes — the daemon passes its loop waker.
[[nodiscard]] ChannelPair makeChannel(std::size_t capacity,
                                      std::function<void()> onActivity = {});

}  // namespace libspector::spectord
