// Server-side per-connection state: the async-server idiom of a read
// buffer feeding an incremental parser, plus a bounded write queue with
// partial-write continuation and slow-consumer policy.
//
// A Connection is owned and driven exclusively by the daemon's event-loop
// thread — it is a single-threaded state machine; the only concurrency is
// inside the channel pipes. Frames are split into two classes on the
// write side:
//
//  - control frames (acks, snapshots, admin replies, errors, bye) are
//    always queued — they are small, bounded in number, and the protocol
//    is meaningless without them;
//  - delta frames are droppable: when the queue is over budget the
//    slow-subscriber policy applies (drop the delta and schedule a
//    snapshot-resync, or disconnect the client). Ingest never blocks on a
//    slow dashboard.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "spectord/channel.hpp"
#include "spectord/protocol.hpp"

namespace libspector::spectord {

/// What to do with a subscriber whose write queue is over budget.
enum class SlowSubscriberPolicy : std::uint8_t {
  /// Drop delta frames; once the queue drains, re-send a full snapshot so
  /// the subscriber's mirror converges again.
  DropAndResync = 0,
  /// Treat a full queue as a fatal lag: Bye + close.
  Disconnect = 1,
};

/// Per-connection protocol counters, folded into the session registry on
/// disconnect so they survive reconnects.
struct ConnectionStats {
  std::uint64_t framesParsed = 0;
  std::uint64_t reportFrames = 0;
  std::uint64_t runFrames = 0;
  std::uint64_t deltasSent = 0;
  std::uint64_t deltasDropped = 0;
  std::uint64_t snapshotsSent = 0;
  std::uint64_t errorsSent = 0;
};

class Connection {
 public:
  Connection(std::uint64_t id, ChannelEndpoint endpoint,
             std::size_t writeQueueBudget, SlowSubscriberPolicy policy)
      : id_(id),
        endpoint_(std::move(endpoint)),
        writeQueueBudget_(writeQueueBudget),
        policy_(policy) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  // --- read side -----------------------------------------------------------

  /// Move whatever the peer has written into the parser. Returns the
  /// number of bytes consumed (0 = no progress).
  std::size_t pumpRead();

  /// Next fully-parsed frame, if any.
  [[nodiscard]] std::optional<Frame> nextFrame() { return parser_.next(); }

  [[nodiscard]] const FrameParser& parser() const noexcept { return parser_; }

  /// Peer closed and everything it sent has been consumed.
  [[nodiscard]] bool peerGone() const { return endpoint_.peerClosed(); }

  /// Peer closed its write side; buffered bytes may remain to drain.
  /// Liveness checks (one-attach-per-session) use this, not peerGone():
  /// a half-drained hangup is already dead, just not yet reaped.
  [[nodiscard]] bool peerHungUp() const { return endpoint_.peerHungUp(); }

  // --- write side ----------------------------------------------------------

  /// Queue a control frame (never dropped; queue may exceed its budget for
  /// these — the count of control frames per event is bounded).
  void sendControl(FrameType type, std::span<const std::uint8_t> body);

  /// Queue a delta frame, honouring the write budget. Returns true when
  /// queued; false means the frame was dropped (DropAndResync) or the
  /// connection was marked for disconnect (Disconnect).
  bool sendDelta(std::span<const std::uint8_t> body);

  /// Push queued bytes into the channel as far as it will accept them.
  /// Returns true if any bytes moved.
  bool flushWrites();

  [[nodiscard]] bool writeQueueEmpty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t queuedBytes() const noexcept {
    return queuedBytes_;
  }

  /// Close the channel (both directions) immediately.
  void close();
  [[nodiscard]] bool closed() const noexcept { return closed_; }

  /// Detach the daemon's loop-waker hooks from the channel's pipes,
  /// waiting out any in-flight invocation. Called when the connection is
  /// reaped (and at shutdown for live ones) so a peer holding the other
  /// endpoint can neither wake a gone loop nor pin hook state.
  void disarmActivity() { endpoint_.disarmActivity(); }

  // --- protocol state (daemon-managed) -------------------------------------

  bool helloDone = false;
  ClientKind kind = ClientKind::Ingest;
  std::uint64_t clientId = 0;
  std::uint64_t session = 0;
  /// Topic subscriptions, indexed by Topic value.
  std::array<bool, 4> subscribed{};
  /// Topics owed a fresh snapshot (on subscribe, or resync after drops).
  std::array<bool, 4> needsSnapshot{};
  /// Subset of needsSnapshot owed because deltas were dropped (counted as
  /// resyncs, and deferred until the write queue drains).
  std::array<bool, 4> resyncSnapshot{};
  /// Report frames accepted since the last ReportAck went out.
  bool ackOwed = false;
  /// Parser counters already folded into the daemon aggregates.
  std::uint64_t garbageFolded = 0;
  std::uint64_t rejectedFolded = 0;
  /// Set by sendDelta under Disconnect policy, or by the daemon to end a
  /// connection after its queue drains.
  bool disconnectAfterFlush = false;
  ConnectionStats stats;

 private:
  const std::uint64_t id_;
  ChannelEndpoint endpoint_;
  const std::size_t writeQueueBudget_;
  const SlowSubscriberPolicy policy_;
  FrameParser parser_;
  std::vector<std::uint8_t> readScratch_;
  std::deque<std::vector<std::uint8_t>> queue_;
  std::size_t frontOffset_ = 0;  // bytes of queue_.front() already written
  std::size_t queuedBytes_ = 0;
  bool closed_ = false;
};

}  // namespace libspector::spectord
