#include "spectord/channel.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace libspector::spectord {

namespace {

/// Compact a head-offset buffer once the dead prefix dominates, so a
/// long-lived pipe does not grow without bound.
void maybeCompact(std::vector<std::uint8_t>& buf, std::size_t& head) {
  if (head == buf.size()) {
    buf.clear();
    head = 0;
  } else if (head > 4096 && head * 2 > buf.size()) {
    buf.erase(buf.begin(),
              buf.begin() + static_cast<std::ptrdiff_t>(head));
    head = 0;
  }
}

}  // namespace

std::size_t Pipe::tryWrite(std::span<const std::uint8_t> bytes) {
  std::size_t accepted = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return 0;
    const std::size_t used = buf_.size() - head_;
    const std::size_t space = capacity_ > used ? capacity_ - used : 0;
    accepted = std::min(space, bytes.size());
    if (accepted == 0) return 0;
    buf_.insert(buf_.end(), bytes.begin(),
                bytes.begin() + static_cast<std::ptrdiff_t>(accepted));
  }
  notifyAndSignal();
  return accepted;
}

bool Pipe::writeAll(std::span<const std::uint8_t> bytes) {
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return closed_ || buf_.size() - head_ < capacity_;
      });
      if (closed_) return false;
      const std::size_t space = capacity_ - (buf_.size() - head_);
      const std::size_t take = std::min(space, bytes.size() - offset);
      buf_.insert(
          buf_.end(), bytes.begin() + static_cast<std::ptrdiff_t>(offset),
          bytes.begin() + static_cast<std::ptrdiff_t>(offset + take));
      offset += take;
    }
    notifyAndSignal();
  }
  return true;
}

std::size_t Pipe::readSome(std::vector<std::uint8_t>& out, std::size_t max) {
  std::size_t taken = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t avail = buf_.size() - head_;
    taken = std::min(avail, max);
    if (taken == 0) return 0;
    out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(head_),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_ + taken));
    head_ += taken;
    maybeCompact(buf_, head_);
  }
  notifyAndSignal();
  return taken;
}

bool Pipe::waitReadable(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, timeout,
                      [&] { return closed_ || buf_.size() > head_; });
}

void Pipe::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
  }
  notifyAndSignal();
}

std::size_t Pipe::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buf_.size() - head_;
}

std::size_t Pipe::freeSpace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return 0;
  const std::size_t used = buf_.size() - head_;
  return capacity_ > used ? capacity_ - used : 0;
}

bool Pipe::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

bool Pipe::eof() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_ && buf_.size() == head_;
}

void Pipe::setOnActivity(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hookMutex_);
  onActivity_ = std::move(hook);
}

void Pipe::notifyAndSignal() {
  cv_.notify_all();
  // The hook runs under hookMutex_, never the buffer mutex: buffer ops
  // stay hook-reentrant, while setOnActivity({}) blocks until any
  // in-flight invocation returns — after a disarm the hook's captured
  // state can be destroyed safely even though peers still hold the pipe.
  std::lock_guard<std::mutex> lock(hookMutex_);
  if (onActivity_) onActivity_();
}

ChannelPair makeChannel(std::size_t capacity,
                        std::function<void()> onActivity) {
  auto toServer = std::make_shared<Pipe>(capacity);
  auto toClient = std::make_shared<Pipe>(capacity);
  if (onActivity) {
    toServer->setOnActivity(onActivity);
    toClient->setOnActivity(onActivity);
  }
  ChannelPair pair;
  pair.server = ChannelEndpoint(toClient, toServer);
  pair.client = ChannelEndpoint(toServer, toClient);
  return pair;
}

}  // namespace libspector::spectord
