#include "spectord/daemon.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "util/bytes.hpp"

namespace libspector::spectord {

using namespace std::chrono_literals;

namespace {

constexpr std::size_t topicIndex(Topic topic) noexcept {
  return static_cast<std::size_t>(topic);
}

constexpr Topic kTopics[] = {Topic::Totals, Topic::Loss, Topic::Progress};

}  // namespace

std::uint32_t CollectorAssignment::ownerOf(const std::string& apkSha256) const {
  if (count <= 1) return 0;
  // Fixed-point range map: (h * count) >> 64 sends the i-th contiguous
  // slice of the hash space to collector i, with slice widths within one
  // of each other.
  const std::uint64_t h = util::fnv1a64(apkSha256);
  return static_cast<std::uint32_t>(
      (static_cast<unsigned __int128>(h) * count) >> 64);
}

SpectorDaemon::SpectorDaemon(
    DaemonConfig config, ingest::IngestPipeline::AttributeFn attribute,
    ingest::IngestPipeline::AttributeColumnsFn attributeColumns,
    core::StudyAccumulator* accumulator, orch::KillProbe checkpointProbe)
    : config_(std::move(config)),
      pipeline_(
          config_.ingest, std::move(attribute), accumulator,
          [this](const ingest::RunDelivery& delivery) {
            if (checkpoints_)
              checkpoints_->checkpoint(delivery.jobIndex, delivery.account,
                                       delivery.artifacts);
          },
          std::move(attributeColumns)) {
  if (!config_.checkpointDirectory.empty())
    checkpoints_.emplace(config_.checkpointDirectory,
                         std::move(checkpointProbe));
  // Shard consumer threads only hand the loop a digest; everything that
  // touches connections happens on the loop thread.
  pipeline_.setRunHook([this](const ingest::RunDigest& digest) {
    {
      const std::scoped_lock lock(publishMutex_);
      publishQueue_.push_back(digest);
    }
    pendingPublishes_.fetch_add(1, std::memory_order_release);
    wake();
  });
  loop_ = std::thread([this] { loopMain(); });
}

SpectorDaemon::~SpectorDaemon() { shutdown(); }

ChannelEndpoint SpectorDaemon::connect() {
  auto pair = makeChannel(config_.channelCapacity, [this] { wake(); });
  {
    const std::scoped_lock lock(acceptMutex_);
    if (acceptingClosed_) {
      pair.server.disarmActivity();
      pair.server.close();
      return pair.client;
    }
    accepted_.push_back(std::make_unique<Connection>(
        nextConnId_++, pair.server, config_.subscriberQueueBytes,
        config_.slowSubscriberPolicy));
  }
  wake();
  return pair.client;
}

void SpectorDaemon::drain() {
  pipeline_.drain();
  // Folded is not yet published: wait for the loop to apply and fan out
  // every queued digest, so callers observe snapshot == sum of deltas.
  while (pendingPublishes_.load(std::memory_order_acquire) != 0 &&
         !loopExited_.load(std::memory_order_acquire)) {
    wake();
    std::this_thread::sleep_for(1ms);
  }
}

void SpectorDaemon::shutdown() {
  {
    const std::scoped_lock lock(acceptMutex_);
    acceptingClosed_ = true;
  }
  if (!shutdownStarted_.exchange(true)) pipeline_.drain();
  {
    const std::scoped_lock lock(wakeMutex_);
    stopRequested_ = true;
    wakePending_ = true;
  }
  wakeCv_.notify_all();
  if (loop_.joinable() && loop_.get_id() != std::this_thread::get_id()) {
    loop_.join();
    // The loop is gone, so the waker is dead weight — detach it from
    // every connection still holding a channel (reaped ones were already
    // disarmed by the loop). A peer (client or fault proxy) that closes
    // its end after we are destroyed must find no hook, not a dangling
    // `this`. disarmActivity waits out any hook invocation in flight.
    std::vector<std::unique_ptr<Connection>> unadopted;
    {
      const std::scoped_lock lock(acceptMutex_);
      unadopted.swap(accepted_);
    }
    for (auto& conn : unadopted) {
      conn->disarmActivity();
      conn->close();
    }
    for (auto& conn : conns_) conn->disarmActivity();
  }
}

bool SpectorDaemon::running() const {
  return !loopExited_.load(std::memory_order_acquire);
}

ingest::IngestMetrics SpectorDaemon::metrics() const {
  ingest::IngestMetrics m = pipeline_.metrics();
  const DaemonCounters c = counters();
  m.sessionsOpened = c.sessionsOpened;
  m.sessionsResumed = c.sessionsResumed;
  m.sessionsExpired = c.sessionsExpired;
  m.sessionAttachRefusals = c.attachRefusals;
  m.duplicateRunUploads = c.duplicateRunUploads;
  m.subscriberDeltasSent = c.deltasSent;
  m.subscriberDeltasDropped = c.deltasDropped;
  m.subscriberSnapshotsResent = c.snapshotsResent;
  m.subscribersDisconnected = c.subscribersDisconnected;
  m.protocolGarbageBytes = c.garbageBytes;
  m.protocolRejectedFrames = c.rejectedFrames;
  return m;
}

DaemonCounters SpectorDaemon::counters() const {
  const std::scoped_lock lock(countersMutex_);
  return counters_;
}

void SpectorDaemon::wake() {
  {
    const std::scoped_lock lock(wakeMutex_);
    wakePending_ = true;
  }
  wakeCv_.notify_all();
}

void SpectorDaemon::loopMain() {
  bool stop = false;
  while (!stop) {
    {
      std::unique_lock lock(wakeMutex_);
      wakeCv_.wait_for(lock, 20ms,
                       [&] { return wakePending_ || stopRequested_; });
      wakePending_ = false;
      stop = stopRequested_;
    }
    pumpOnce();
  }

  // Graceful exit: publish what's queued, say goodbye, flush what the
  // peers will accept, close everything.
  pumpOnce();
  for (auto& conn : conns_) {
    if (conn->closed()) continue;
    conn->sendControl(FrameType::Bye, ByeMsg{"shutdown"}.encode());
  }
  for (int attempt = 0; attempt < 50; ++attempt) {
    bool allFlushed = true;
    for (auto& conn : conns_) {
      if (conn->closed()) continue;
      conn->flushWrites();
      allFlushed = allFlushed && conn->writeQueueEmpty();
    }
    if (allFlushed) break;
    std::this_thread::sleep_for(1ms);
  }
  for (auto& conn : conns_) conn->close();
  loopExited_.store(true, std::memory_order_release);
}

bool SpectorDaemon::pumpOnce() {
  bool worked = false;

  {
    const std::scoped_lock lock(acceptMutex_);
    for (auto& conn : accepted_) conns_.push_back(std::move(conn));
    accepted_.clear();
  }

  // Read + dispatch per connection.
  for (auto& connPtr : conns_) {
    Connection& conn = *connPtr;
    if (conn.closed()) continue;
    while (true) {
      const std::size_t got = conn.pumpRead();
      bool parsedAny = false;
      while (auto frame = conn.nextFrame()) {
        parsedAny = true;
        worked = true;
        handleFrame(conn, std::move(*frame));
        if (conn.closed()) break;
      }
      if (conn.closed() || (got == 0 && !parsedAny)) break;
    }
    if (!conn.closed()) {
      const auto& parser = conn.parser();
      if (parser.garbageBytes() != conn.garbageFolded ||
          parser.rejectedFrames() != conn.rejectedFolded) {
        const std::scoped_lock lock(countersMutex_);
        counters_.garbageBytes += parser.garbageBytes() - conn.garbageFolded;
        counters_.rejectedFrames +=
            parser.rejectedFrames() - conn.rejectedFolded;
        conn.garbageFolded = parser.garbageBytes();
        conn.rejectedFolded = parser.rejectedFrames();
      }
      if (conn.ackOwed) {
        conn.ackOwed = false;
        ReportAckMsg ack;
        ack.ackedFrames = sessions_[conn.clientId].ackedFrames;
        conn.sendControl(FrameType::ReportAck, ack.encode());
      }
    }
  }

  // Publish finalized runs: apply to the loop-owned mirror, fan out.
  std::deque<ingest::RunDigest> digests;
  {
    const std::scoped_lock lock(publishMutex_);
    digests.swap(publishQueue_);
  }
  for (const auto& digest : digests) {
    worked = true;
    applyDigest(digest);
    publishDigest(digest);
    pendingPublishes_.fetch_sub(1, std::memory_order_release);
  }

  // Snapshots owed (initial subscribes now include everything published
  // above; resyncs wait for the queue to drain).
  for (auto& connPtr : conns_) {
    if (!connPtr->closed()) sendSnapshots(*connPtr);
  }

  // Flush, disconnect, reap.
  for (auto& connPtr : conns_) {
    Connection& conn = *connPtr;
    if (conn.closed()) continue;
    worked = conn.flushWrites() || worked;
    if (conn.disconnectAfterFlush || conn.peerGone()) conn.close();
  }
  std::erase_if(conns_, [](const std::unique_ptr<Connection>& conn) {
    // Reaping drops the daemon's last reference to the channel: disarm
    // the waker hooks so the peer's surviving endpoint neither pins this
    // connection's pipes nor wakes the loop for a dead connection.
    if (conn->closed()) conn->disarmActivity();
    return conn->closed();
  });
  return worked;
}

void SpectorDaemon::handleFrame(Connection& conn, Frame&& frame) {
  try {
    if (frame.type == FrameType::Hello) {
      handleHello(conn, frame);
      return;
    }
    if (frame.type == FrameType::Bye) {
      conn.disconnectAfterFlush = true;
      return;
    }
    if (!conn.helloDone) {
      sendError(conn, 1, "handshake required before any other frame");
      conn.disconnectAfterFlush = true;
      return;
    }
    switch (frame.type) {
      case FrameType::Report: {
        if (conn.kind != ClientKind::Ingest) {
          sendError(conn, 2, "Report on a non-ingest connection");
          return;
        }
        pipeline_.submitDatagram(frame.body);
        ++conn.stats.reportFrames;
        ++sessions_[conn.clientId].ackedFrames;
        conn.ackOwed = true;
        return;
      }
      case FrameType::RunComplete: {
        if (conn.kind != ClientKind::Ingest) {
          sendError(conn, 2, "RunComplete on a non-ingest connection");
          return;
        }
        core::SpabEnvelope env = core::SpabEnvelope::decode(frame.body);
        RunAckMsg ack;
        ack.jobIndex = env.jobIndex;
        SessionRecord& sess = sessions_[conn.clientId];
        if (!config_.assignment.owns(env.artifacts.apkSha256)) {
          ack.accepted = false;
          char buf[64];
          std::snprintf(buf, sizeof(buf), "apk owned by collector %u",
                        config_.assignment.ownerOf(env.artifacts.apkSha256));
          ack.reason = buf;
          const std::scoped_lock lock(countersMutex_);
          ++counters_.runsRefused;
        } else if (!sess.completedJobs.insert(env.jobIndex).second) {
          // A resumed client re-uploading a run whose ack was severed:
          // ack it (the client needs closure) without folding it again.
          ack.accepted = true;
          ack.duplicate = true;
          ack.reason = "duplicate upload (already folded this session)";
          const std::scoped_lock lock(countersMutex_);
          ++counters_.duplicateRunUploads;
        } else {
          pipeline_.submitRun(static_cast<std::size_t>(env.jobIndex),
                              std::move(env.artifacts));
          ack.accepted = true;
          ++conn.stats.runFrames;
          ++sess.ackedRuns;
        }
        conn.sendControl(FrameType::RunAck, ack.encode());
        return;
      }
      case FrameType::Subscribe: {
        if (conn.kind != ClientKind::Dashboard) {
          sendError(conn, 2, "Subscribe on a non-dashboard connection");
          return;
        }
        const SubscribeMsg msg = SubscribeMsg::decode(frame.body);
        conn.subscribed[topicIndex(msg.topic)] = true;
        conn.needsSnapshot[topicIndex(msg.topic)] = true;
        return;
      }
      case FrameType::Admin: {
        if (conn.kind != ClientKind::Admin) {
          sendError(conn, 2, "Admin on a non-admin connection");
          return;
        }
        handleAdmin(conn, AdminMsg::decode(frame.body));
        return;
      }
      default:
        sendError(conn, 3, "unexpected frame type from client");
        return;
    }
  } catch (const util::DecodeError& err) {
    // The frame's crc passed but its body didn't decode: protocol skew,
    // not line noise — tell the client and keep the connection.
    sendError(conn, 4, err.what());
  }
}

Connection* SpectorDaemon::liveAttach(std::uint64_t clientId,
                                      const Connection* except) {
  for (auto& connPtr : conns_) {
    Connection& other = *connPtr;
    if (&other == except || other.closed() || !other.helloDone) continue;
    // A connection whose peer already hung up is dead, it just has not
    // been reaped (or even fully drained) yet — it must not block the
    // replacement attach.
    if (other.clientId == clientId && !other.peerHungUp()) return &other;
  }
  return nullptr;
}

std::size_t SpectorDaemon::expireStaleSessions() {
  std::size_t expired = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (liveAttach(it->first, nullptr) != nullptr) {
      ++it;
    } else {
      it = sessions_.erase(it);
      ++expired;
    }
  }
  return expired;
}

void SpectorDaemon::handleHello(Connection& conn, const Frame& frame) {
  const HelloMsg msg = HelloMsg::decode(frame.body);
  // A session may have at most one live attach: a second Hello while the
  // first connection is still alive is a misconfigured fleet (two workers
  // sharing a clientId) and would corrupt the cumulative ack stream.
  if (liveAttach(msg.clientId, &conn) != nullptr) {
    sendError(conn, 5, "clientId already attached on a live connection");
    conn.disconnectAfterFlush = true;
    const std::scoped_lock lock(countersMutex_);
    ++counters_.attachRefusals;
    return;
  }
  conn.helloDone = true;
  conn.kind = msg.kind;
  conn.clientId = msg.clientId;
  SessionRecord& sess = sessions_[msg.clientId];
  HelloAckMsg ack;
  if (msg.resumeSession != 0 && msg.resumeSession == sess.token) {
    ack.resumed = true;
    const std::scoped_lock lock(countersMutex_);
    ++counters_.sessionsResumed;
  } else {
    sess = SessionRecord{};
    sess.token = nextSessionToken_++;
    sess.kind = msg.kind;
    const std::scoped_lock lock(countersMutex_);
    ++counters_.sessionsOpened;
  }
  conn.session = sess.token;
  ack.session = sess.token;
  ack.ackedFrames = sess.ackedFrames;
  ack.ackedRuns = sess.ackedRuns;
  conn.sendControl(FrameType::HelloAck, ack.encode());
}

void SpectorDaemon::handleAdmin(Connection& conn, const AdminMsg& msg) {
  AdminAckMsg ack;
  ack.op = msg.op;
  ack.ok = true;
  switch (msg.op) {
    case AdminOp::Drain: {
      // Blocks the loop; an admin barrier is allowed to. The shard
      // consumers do the draining, so this cannot deadlock on the loop.
      pipeline_.drain();
      // Drain is the operator's housekeeping barrier: sweep sessions whose
      // client is gone so the table does not grow with every crashed
      // worker across a long-lived study.
      const std::size_t expired = expireStaleSessions();
      char buf[64];
      std::snprintf(buf, sizeof(buf), "drained, %zu stale sessions expired",
                    expired);
      ack.info = buf;
      const std::scoped_lock lock(countersMutex_);
      counters_.sessionsExpired += expired;
      break;
    }
    case AdminOp::Compact: {
      if (!checkpoints_) {
        ack.ok = false;
        ack.info = "no checkpoint directory";
        break;
      }
      const std::size_t removed =
          orch::compactCheckpointDirectory(checkpoints_->directory());
      const std::size_t expired = expireStaleSessions();
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "compacted, %zu stale entries removed, %zu stale "
                    "sessions expired",
                    removed, expired);
      ack.info = buf;
      const std::scoped_lock lock(countersMutex_);
      counters_.sessionsExpired += expired;
      break;
    }
    case AdminOp::EvictApk: {
      ack.ok = pipeline_.evictPending(msg.arg);
      ack.info = ack.ok ? "evicted" : "no pending state for apk";
      break;
    }
    case AdminOp::Resume: {
      if (!checkpoints_) {
        ack.ok = false;
        ack.info = "no checkpoint directory";
        break;
      }
      orch::RecoveryReport report =
          orch::StudyRecovery::scan(checkpoints_->directory());
      for (auto& run : report.runs)
        pipeline_.replayRun(run.jobIndex, std::move(run.artifacts),
                            run.account);
      pipeline_.drain();
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "replayed %zu runs, quarantined %zu bundles",
                    report.runs.size(), report.quarantined.size());
      ack.info = buf;
      break;
    }
    case AdminOp::Status: {
      ack.info = statusJson();
      break;
    }
    case AdminOp::Shutdown: {
      {
        const std::scoped_lock lock(acceptMutex_);
        acceptingClosed_ = true;
      }
      if (!shutdownStarted_.exchange(true)) pipeline_.drain();
      {
        const std::scoped_lock lock(wakeMutex_);
        stopRequested_ = true;
      }
      ack.info = "shutting down";
      break;
    }
  }
  conn.sendControl(FrameType::AdminAck, ack.encode());
}

void SpectorDaemon::sendError(Connection& conn, std::uint16_t code,
                              std::string_view what) {
  ErrorMsg err;
  err.code = code;
  err.message = std::string(what);
  conn.sendControl(FrameType::Error, err.encode());
  ++conn.stats.errorsSent;
}

void SpectorDaemon::applyDigest(const ingest::RunDigest& digest) {
  ingest::RollingTotals& totals = dash_.totals;
  ++totals.runsFolded;
  totals.flowCount += digest.flowCount;
  totals.attributedBytes += digest.attributedBytes;
  totals.unattributedBytes += digest.unattributedBytes;
  for (const auto& [lib, bytes] : digest.bytesByLibrary)
    totals.bytesByLibrary[lib] += bytes;
  for (const auto& [cat, bytes] : digest.bytesByLibCategory)
    totals.bytesByLibCategory[cat] += bytes;
  totals.bytesByApp[digest.apkSha256] += digest.attributedBytes;
  dash_.accounts[digest.apkSha256] = digest.account;
  dash_.reportsDelivered += digest.account.uniqueDelivered;
  dash_.reportsLost += digest.account.lost;
}

void SpectorDaemon::publishDigest(const ingest::RunDigest& digest) {
  // Encode each topic's delta at most once, shared across subscribers.
  std::array<std::vector<std::uint8_t>, 4> bodies;
  const auto bodyFor = [&](Topic topic) -> const std::vector<std::uint8_t>& {
    std::vector<std::uint8_t>& body = bodies[topicIndex(topic)];
    if (body.empty()) {
      DeltaMsg delta;
      delta.topic = topic;
      delta.jobIndex = digest.jobIndex;
      delta.apkSha256 = digest.apkSha256;
      delta.replayed = digest.replayed;
      delta.flowCount = digest.flowCount;
      delta.attributedBytes = digest.attributedBytes;
      delta.unattributedBytes = digest.unattributedBytes;
      delta.bytesByLibrary = digest.bytesByLibrary;
      delta.bytesByLibCategory = digest.bytesByLibCategory;
      delta.account = digest.account;
      delta.runsFolded = dash_.totals.runsFolded;
      delta.expectedRuns = config_.expectedRuns;
      delta.reportsDelivered = dash_.reportsDelivered;
      delta.reportsLost = dash_.reportsLost;
      body = delta.encode();
    }
    return body;
  };

  for (auto& connPtr : conns_) {
    Connection& conn = *connPtr;
    if (conn.closed() || !conn.helloDone || conn.kind != ClientKind::Dashboard)
      continue;
    for (const Topic topic : kTopics) {
      const std::size_t i = topicIndex(topic);
      // A connection awaiting a snapshot skips deltas: the runs they carry
      // are already inside the snapshot it will get.
      if (!conn.subscribed[i] || conn.needsSnapshot[i]) continue;
      if (conn.sendDelta(bodyFor(topic))) {
        const std::scoped_lock lock(countersMutex_);
        ++counters_.deltasSent;
        continue;
      }
      {
        const std::scoped_lock lock(countersMutex_);
        ++counters_.deltasDropped;
      }
      if (config_.slowSubscriberPolicy == SlowSubscriberPolicy::DropAndResync) {
        conn.needsSnapshot[i] = true;
        conn.resyncSnapshot[i] = true;
      } else {
        conn.sendControl(FrameType::Bye, ByeMsg{"slow subscriber"}.encode());
        conn.disconnectAfterFlush = true;
        const std::scoped_lock lock(countersMutex_);
        ++counters_.subscribersDisconnected;
        break;
      }
    }
  }
}

void SpectorDaemon::sendSnapshots(Connection& conn) {
  if (!conn.helloDone || conn.kind != ClientKind::Dashboard) return;
  for (const Topic topic : kTopics) {
    const std::size_t i = topicIndex(topic);
    if (!conn.subscribed[i] || !conn.needsSnapshot[i]) continue;
    // A resync waits until the laggard drained its queue — re-queueing a
    // snapshot behind a full queue would grow it without bound.
    if (conn.resyncSnapshot[i] && !conn.writeQueueEmpty()) continue;
    conn.sendControl(FrameType::Snapshot, buildSnapshot(topic).encode());
    ++conn.stats.snapshotsSent;
    if (conn.resyncSnapshot[i]) {
      const std::scoped_lock lock(countersMutex_);
      ++counters_.snapshotsResent;
    }
    conn.needsSnapshot[i] = false;
    conn.resyncSnapshot[i] = false;
  }
}

SnapshotMsg SpectorDaemon::buildSnapshot(Topic topic) const {
  SnapshotMsg snap;
  snap.topic = topic;
  switch (topic) {
    case Topic::Totals:
      snap.totals = dash_.totals;
      break;
    case Topic::Loss:
      snap.accounts.assign(dash_.accounts.begin(), dash_.accounts.end());
      break;
    case Topic::Progress:
      break;
  }
  // Progress counters ride along on every snapshot (they are cheap and
  // make any snapshot self-describing about how far the study is).
  snap.runsFolded = dash_.totals.runsFolded;
  snap.expectedRuns = config_.expectedRuns;
  snap.reportsDelivered = dash_.reportsDelivered;
  snap.reportsLost = dash_.reportsLost;
  return snap;
}

std::string SpectorDaemon::statusJson() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "{\"collector_index\": %u, \"collector_count\": %u, "
      "\"connections\": %zu, \"sessions\": %zu, \"runs_folded\": %llu, "
      "\"expected_runs\": %llu, \"checkpointing\": %s}",
      config_.assignment.index, config_.assignment.count, conns_.size(),
      sessions_.size(),
      static_cast<unsigned long long>(dash_.totals.runsFolded),
      static_cast<unsigned long long>(config_.expectedRuns),
      checkpoints_ ? "true" : "false");
  return buf;
}

}  // namespace libspector::spectord
