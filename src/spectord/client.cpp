#include "spectord/client.hpp"

#include <stdexcept>

namespace libspector::spectord {

using namespace std::chrono_literals;

bool ClientChannel::send(FrameType type, std::span<const std::uint8_t> body) {
  return endpoint_.writeAll(encodeFrame(type, body));
}

std::optional<Frame> ClientChannel::tryRead() {
  if (auto frame = parser_.next()) return frame;
  scratch_.clear();
  if (endpoint_.readSome(scratch_) == 0) return std::nullopt;
  parser_.feed(scratch_);
  return parser_.next();
}

std::optional<Frame> ClientChannel::read(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    if (auto frame = tryRead()) return frame;
    if (endpoint_.peerClosed()) return std::nullopt;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    // Sleep the full remaining deadline on the pipe's condition variable:
    // a write or close on the peer side wakes the wait, so slicing the
    // timeout would only add wasted wakeups (which a real-socket
    // transport's epoll loop would amplify).
    endpoint_.waitReadable(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
  }
}

namespace {

/// Hello -> HelloAck, throwing on refusal, hangup or timeout. A resumed
/// connection can carry frames queued for the old attach (ReportAck, Delta,
/// a racing Bye) ahead of the HelloAck; they are skipped, bounded by the
/// deadline — only an explicit Error refusal aborts the handshake.
HelloAckMsg handshake(ClientChannel& channel, std::uint64_t clientId,
                      ClientKind kind, std::uint64_t resumeSession,
                      std::chrono::milliseconds timeout) {
  HelloMsg hello;
  hello.clientId = clientId;
  hello.kind = kind;
  hello.resumeSession = resumeSession;
  if (!channel.send(FrameType::Hello, hello.encode()))
    throw std::runtime_error("spectord client: daemon closed during Hello");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline)
      throw std::runtime_error("spectord client: HelloAck timeout");
    auto frame = channel.read(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!frame)
      throw std::runtime_error("spectord client: no HelloAck before hangup");
    if (frame->type == FrameType::HelloAck)
      return HelloAckMsg::decode(frame->body);
    if (frame->type == FrameType::Error)
      throw std::runtime_error("spectord client: handshake refused: " +
                               ErrorMsg::decode(frame->body).message);
  }
}

}  // namespace

// --- IngestClient ----------------------------------------------------------

IngestClient::IngestClient(ChannelEndpoint endpoint, std::uint64_t clientId,
                           std::uint64_t resumeSession,
                           std::chrono::milliseconds handshakeTimeout)
    : channel_(std::move(endpoint)) {
  const HelloAckMsg ack = handshake(channel_, clientId, ClientKind::Ingest,
                                    resumeSession, handshakeTimeout);
  session_ = ack.session;
  resumed_ = ack.resumed;
  ackedFrames_ = ack.ackedFrames;
  ackedRuns_ = ack.ackedRuns;
}

void IngestClient::handleLocked(const Frame& frame) {
  switch (frame.type) {
    case FrameType::ReportAck: {
      const ReportAckMsg ack = ReportAckMsg::decode(frame.body);
      if (ack.ackedFrames > ackedFrames_) ackedFrames_ = ack.ackedFrames;
      return;
    }
    case FrameType::RunAck: {
      RunAckMsg ack = RunAckMsg::decode(frame.body);
      // Dedupe by jobIndex before counting: a re-delivered ack (or the
      // daemon acking a resume re-upload it already has, ack.duplicate)
      // must not bump ackedRuns_ twice, and a fresh ack must replace a
      // stale entry rather than being silently discarded.
      if (ack.accepted && !ack.duplicate &&
          countedRuns_.insert(ack.jobIndex).second)
        ++ackedRuns_;
      runAcks_.insert_or_assign(ack.jobIndex, std::move(ack));
      return;
    }
    default:
      return;  // Bye / Error: surfaced via peerClosed by the daemon close
  }
}

void IngestClient::pumpLocked() {
  while (auto frame = channel_.tryRead()) handleLocked(*frame);
}

void IngestClient::submitDatagram(std::span<const std::uint8_t> payload) {
  const std::scoped_lock lock(mutex_);
  // Pump before writing so a pile of acks never deadlocks both sides'
  // bounded buffers against each other.
  pumpLocked();
  if (channel_.send(FrameType::Report, payload))
    ++framesSent_;
  else
    sendFailed_ = true;
  pumpLocked();
}

RunAckMsg IngestClient::completeRun(std::uint64_t jobIndex,
                                    const core::RunArtifacts& artifacts,
                                    std::chrono::milliseconds timeout) {
  const std::scoped_lock lock(mutex_);
  pumpLocked();
  const auto envelope =
      core::SpabEnvelope::encode(jobIndex, core::ApkLossAccount{}, artifacts);
  if (!channel_.send(FrameType::RunComplete, envelope)) {
    sendFailed_ = true;
    throw std::runtime_error("spectord client: daemon closed during upload");
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto it = runAcks_.find(jobIndex);
    if (it != runAcks_.end()) {
      RunAckMsg ack = std::move(it->second);
      runAcks_.erase(it);
      return ack;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline)
      throw std::runtime_error("spectord client: RunAck timeout");
    auto frame = channel_.read(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!frame)
      throw std::runtime_error("spectord client: no RunAck before hangup");
    handleLocked(*frame);
  }
}

bool IngestClient::waitAckedFrames(std::uint64_t frames,
                                   std::chrono::milliseconds timeout) {
  const std::scoped_lock lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    pumpLocked();
    if (ackedFrames_ >= frames) return true;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    auto frame = channel_.read(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!frame) return ackedFrames_ >= frames;
    handleLocked(*frame);
  }
}

std::uint64_t IngestClient::ackedFrames() const {
  const std::scoped_lock lock(mutex_);
  return ackedFrames_;
}

std::uint64_t IngestClient::ackedRuns() const {
  const std::scoped_lock lock(mutex_);
  return ackedRuns_;
}

std::uint64_t IngestClient::framesSent() const {
  const std::scoped_lock lock(mutex_);
  return framesSent_;
}

bool IngestClient::down() const {
  const std::scoped_lock lock(mutex_);
  return sendFailed_ || channel_.peerClosed();
}

void IngestClient::bye() {
  const std::scoped_lock lock(mutex_);
  channel_.send(FrameType::Bye, ByeMsg{"done"}.encode());
  channel_.close();
}

// --- DashboardClient -------------------------------------------------------

void DashboardMirror::applySnapshot(const SnapshotMsg& snapshot) {
  switch (snapshot.topic) {
    case Topic::Totals:
      totals = snapshot.totals;
      break;
    case Topic::Loss:
      accounts.clear();
      for (const auto& [sha, account] : snapshot.accounts)
        accounts[sha] = account;
      break;
    case Topic::Progress:
      break;
  }
  runsFolded = snapshot.runsFolded;
  expectedRuns = snapshot.expectedRuns;
  reportsDelivered = snapshot.reportsDelivered;
  reportsLost = snapshot.reportsLost;
}

void DashboardMirror::applyDelta(const DeltaMsg& delta) {
  switch (delta.topic) {
    case Topic::Totals: {
      ++totals.runsFolded;
      totals.flowCount += delta.flowCount;
      totals.attributedBytes += delta.attributedBytes;
      totals.unattributedBytes += delta.unattributedBytes;
      for (const auto& [lib, bytes] : delta.bytesByLibrary)
        totals.bytesByLibrary[lib] += bytes;
      for (const auto& [cat, bytes] : delta.bytesByLibCategory)
        totals.bytesByLibCategory[cat] += bytes;
      totals.bytesByApp[delta.apkSha256] += delta.attributedBytes;
      break;
    }
    case Topic::Loss:
      accounts[delta.apkSha256] = delta.account;
      break;
    case Topic::Progress:
      // Cumulative-as-of-that-run values, emitted in order: replace.
      runsFolded = delta.runsFolded;
      expectedRuns = delta.expectedRuns;
      reportsDelivered = delta.reportsDelivered;
      reportsLost = delta.reportsLost;
      break;
  }
}

DashboardClient::DashboardClient(ChannelEndpoint endpoint,
                                 std::uint64_t clientId,
                                 std::uint64_t resumeSession,
                                 std::chrono::milliseconds handshakeTimeout)
    : channel_(std::move(endpoint)) {
  session_ = handshake(channel_, clientId, ClientKind::Dashboard,
                       resumeSession, handshakeTimeout)
                 .session;
}

void DashboardClient::subscribe(Topic topic) {
  SubscribeMsg msg;
  msg.topic = topic;
  channel_.send(FrameType::Subscribe, msg.encode());
}

std::size_t DashboardClient::poll(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::size_t folded = 0;
  while (true) {
    std::optional<Frame> frame = channel_.tryRead();
    if (!frame) {
      const auto now = std::chrono::steady_clock::now();
      if (timeout.count() == 0 || now >= deadline || channel_.peerClosed())
        break;
      frame = channel_.read(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now));
      if (!frame) break;
    }
    // Only frames folded into the mirror count toward the return value:
    // Bye and unrecognized frames would skew waitForSnapshot-style callers
    // that treat the count as mirror progress.
    switch (frame->type) {
      case FrameType::Snapshot: {
        const SnapshotMsg snapshot = SnapshotMsg::decode(frame->body);
        mirror_.applySnapshot(snapshot);
        ++snapshots_[static_cast<std::size_t>(snapshot.topic)];
        ++folded;
        break;
      }
      case FrameType::Delta: {
        mirror_.applyDelta(DeltaMsg::decode(frame->body));
        ++deltas_;
        ++folded;
        break;
      }
      case FrameType::Bye:
        bye_ = true;
        break;
      default:
        break;
    }
  }
  return folded;
}

bool DashboardClient::waitForSnapshot(Topic topic,
                                      std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (snapshotsReceived(topic) == 0) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    poll(std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
  }
  return true;
}

bool DashboardClient::waitForRuns(std::uint64_t runs,
                                  std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (mirror_.totals.runsFolded < runs) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    poll(std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
  }
  return true;
}

// --- AdminClient -----------------------------------------------------------

AdminClient::AdminClient(ChannelEndpoint endpoint, std::uint64_t clientId,
                         std::chrono::milliseconds handshakeTimeout)
    : channel_(std::move(endpoint)) {
  handshake(channel_, clientId, ClientKind::Admin, 0, handshakeTimeout);
}

AdminAckMsg AdminClient::request(AdminOp op, std::string arg,
                                 std::chrono::milliseconds timeout) {
  AdminMsg msg;
  msg.op = op;
  msg.arg = std::move(arg);
  if (!channel_.send(FrameType::Admin, msg.encode()))
    throw std::runtime_error("spectord admin: daemon closed");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline)
      throw std::runtime_error("spectord admin: ack timeout");
    auto frame = channel_.read(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!frame) throw std::runtime_error("spectord admin: hangup before ack");
    if (frame->type == FrameType::AdminAck)
      return AdminAckMsg::decode(frame->body);
    if (frame->type == FrameType::Error)
      throw std::runtime_error("spectord admin: refused: " +
                               ErrorMsg::decode(frame->body).message);
    // Bye while waiting (daemon shutting down) still races the ack in.
  }
}

}  // namespace libspector::spectord
