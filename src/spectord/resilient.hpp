// Reconnect-and-resume client tier for spectord.
//
// The base clients (client.hpp) speak the protocol over one connection
// and simply go `down()` when it dies. This layer makes them survivable:
//
//  - Reconnector is the backoff policy: capped exponential delays with
//    deterministic seeded jitter and a consecutive-failure budget, so a
//    thundering herd of collectors de-synchronizes without tests losing
//    reproducibility.
//  - ResilientIngestClient wraps IngestClient behind a connect factory.
//    It remembers the session token and every unacked report frame; on
//    hangup it reconnects with backoff, re-handshakes with the saved
//    token, drops the prefix the daemon's HelloAck acks, and re-sends
//    only the tail. Run uploads retry until a RunAck arrives — the
//    daemon's per-session completed-job dedupe makes the re-upload safe.
//  - ResilientDashboardClient reconnects and re-subscribes its recorded
//    topics; the fresh snapshot the daemon sends on subscribe restores
//    mirror exactness.
//  - BreakerEndpoint is the matching fault injector: a man-in-the-middle
//    proxy that severs, stalls or truncates the byte stream at a scripted
//    client->daemon byte offset (deliberately mid-frame). Every fault
//    ends with a dead connection — the transport either delivers a
//    prefix in order or dies, never a mid-stream hole — which is the
//    invariant that makes cumulative-ack resume exact.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "spectord/channel.hpp"
#include "spectord/client.hpp"
#include "util/rng.hpp"

namespace libspector::spectord {

/// Capped exponential backoff with deterministic jitter.
struct ReconnectorConfig {
  std::chrono::milliseconds initialDelay{10};
  std::chrono::milliseconds maxDelay{2000};
  double multiplier = 2.0;
  /// Each delay is scaled by a factor drawn uniformly from
  /// [1 - jitter, 1 + jitter]; deterministic given the seed.
  double jitter = 0.25;
  /// Consecutive failed attempts before giving up; a successful attach
  /// resets the count.
  std::size_t maxAttempts = 10;
  std::uint64_t seed = 0x5bec011ULL;
};

class Reconnector {
 public:
  explicit Reconnector(ReconnectorConfig config = {});

  /// Delay to sleep before the next attempt, advancing the schedule.
  /// Throws std::runtime_error once the attempt budget is exhausted.
  [[nodiscard]] std::chrono::milliseconds nextDelay();

  /// A connection attempt succeeded: the failure streak is over.
  void reset() noexcept { attempt_ = 0; }

  [[nodiscard]] std::size_t attempt() const noexcept { return attempt_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return attempt_ >= config_.maxAttempts;
  }

 private:
  ReconnectorConfig config_;
  util::Rng rng_;
  std::size_t attempt_ = 0;
};

/// Scripted connection killer. Wraps a daemon-side endpoint in a proxy
/// whose clientEnd() is handed to the client under test; two pump threads
/// forward bytes both ways until the scheduled fault fires.
class BreakerEndpoint {
 public:
  enum class FaultKind : std::uint8_t {
    None,      // pass-through (still a proxy, never fires)
    Sever,     // close both directions at the scheduled offset
    Stall,     // freeze the client->daemon stream for `stall`, then sever
    Truncate,  // half-close toward the daemon first (EOF mid-frame), then
               // sever the client side after `stall`
  };
  struct Fault {
    FaultKind kind = FaultKind::None;
    /// Fires once this many client->daemon bytes were forwarded; offsets
    /// landing mid-frame are the interesting case.
    std::uint64_t afterClientBytes = 0;
    std::chrono::milliseconds stall{0};
  };

  BreakerEndpoint(ChannelEndpoint upstream, Fault fault,
                  std::size_t capacity = 64 * 1024);
  ~BreakerEndpoint();
  BreakerEndpoint(const BreakerEndpoint&) = delete;
  BreakerEndpoint& operator=(const BreakerEndpoint&) = delete;

  /// The endpoint the client speaks to.
  [[nodiscard]] ChannelEndpoint clientEnd() const { return clientEnd_; }

  [[nodiscard]] bool fired() const { return fired_.load(); }
  /// Client->daemon bytes actually delivered upstream.
  [[nodiscard]] std::uint64_t forwardedToDaemon() const {
    return forwarded_.load();
  }

 private:
  void pumpToDaemon();
  void pumpToClient();

  ChannelEndpoint upstream_;
  ChannelEndpoint proxySide_;  // proxy's end of the client-facing channel
  ChannelEndpoint clientEnd_;
  Fault fault_;
  std::atomic<bool> fired_{false};
  std::atomic<std::uint64_t> forwarded_{0};
  std::thread toDaemon_;
  std::thread toClient_;
};

/// Factory for a fresh daemon connection; called on every (re)connect.
/// `attempt` is the 0-based ordinal of the connection being opened, which
/// fault-injection tests use to script per-connection breakage.
using ConnectFn = std::function<ChannelEndpoint(std::size_t attempt)>;

struct ResilientClientConfig {
  ReconnectorConfig reconnect;
  std::chrono::milliseconds handshakeTimeout{10000};
  /// Per-attempt RunAck wait; on expiry the connection is torn down and
  /// the upload retried on a fresh attach.
  std::chrono::milliseconds runAckTimeout{60000};
  /// Total completeRun attempts before failing loudly. A daemon that
  /// stays reachable but never acks would otherwise retry forever: every
  /// re-attach succeeds and resets the reconnect budget, so the upload
  /// needs its own.
  std::size_t runUploadAttempts = 8;
};

/// IngestClient that survives connection death. Thread-safe like the
/// client it wraps; a reconnect (backoff sleep included) happens under
/// the lock, so concurrent emulator workers stall rather than interleave
/// with a half-restored session.
class ResilientIngestClient final : public ingest::ReportSink {
 public:
  ResilientIngestClient(ConnectFn connect, std::uint64_t clientId,
                        ResilientClientConfig config = {});

  /// Buffers the payload in the unacked tail, then sends. On a dead
  /// transport: reconnect, resume, replay the tail (this frame included).
  void submitDatagram(std::span<const std::uint8_t> payload) override;

  /// Upload a finished run, retrying across connection deaths until the
  /// daemon acks. A retry of an already-folded upload comes back
  /// accepted with `duplicate` set — still one ack per call.
  RunAckMsg completeRun(std::uint64_t jobIndex,
                        const core::RunArtifacts& artifacts);

  /// Wait until the daemon has acked `frames` cumulative report frames,
  /// reconnecting as needed.
  bool waitAckedFrames(std::uint64_t frames, std::chrono::milliseconds timeout);

  [[nodiscard]] std::uint64_t sessionToken() const;
  /// Distinct report frames offered (retransmissions not re-counted).
  [[nodiscard]] std::uint64_t framesOffered() const;
  [[nodiscard]] std::uint64_t ackedFrames() const;
  /// Successful attaches after the first.
  [[nodiscard]] std::uint64_t reconnects() const;
  /// Tail frames re-sent on resumed sessions.
  [[nodiscard]] std::uint64_t framesResent() const;
  /// Run uploads retried after a death mid-upload.
  [[nodiscard]] std::uint64_t runsResent() const;
  /// Resume requests the daemon answered with a fresh session (our old
  /// one was expired, e.g. by an admin drain while we were down).
  [[nodiscard]] std::uint64_t resumesRefused() const;

  void bye();

 private:
  /// Attach (or re-attach) until the transport is live and the unacked
  /// tail replayed; throws once the backoff budget is exhausted. Returns
  /// true when it performed an attach (and therefore already re-sent
  /// every tail frame), false when the transport was live all along.
  bool ensureConnectedLocked();
  void pruneAckedLocked();

  mutable std::mutex mutex_;
  ConnectFn connect_;
  const std::uint64_t clientId_;
  ResilientClientConfig config_;
  Reconnector reconnector_;
  std::unique_ptr<IngestClient> client_;
  std::uint64_t session_ = 0;
  std::size_t connectCalls_ = 0;  // factory invocations (ordinal source)
  std::size_t connections_ = 0;   // attempts that completed the handshake
  /// Unacked tail: frame payloads with cumulative indices
  /// [tailBase_, tailBase_ + tail_.size()); pruned as acks arrive.
  std::deque<std::vector<std::uint8_t>> tail_;
  std::uint64_t tailBase_ = 0;
  /// Cumulative frame index the live session's ack 0 corresponds to.
  /// Zero for the first session and every resumed one; rebased to
  /// tailBase_ when the daemon refuses a resume (fresh session, acks
  /// restart at zero for the tail we replay into it).
  std::uint64_t ackBase_ = 0;
  /// Cumulative frame indices [0, sentHigh_) have been transmitted at
  /// least once; replaying below this line counts as a re-send.
  std::uint64_t sentHigh_ = 0;
  std::uint64_t framesOffered_ = 0;
  std::uint64_t framesResent_ = 0;
  std::uint64_t runsResent_ = 0;
  std::uint64_t resumesRefused_ = 0;
};

/// DashboardClient that survives connection death. Single-threaded like
/// the client it wraps. Counters aggregate across incarnations.
class ResilientDashboardClient {
 public:
  ResilientDashboardClient(ConnectFn connect, std::uint64_t clientId,
                           ResilientClientConfig config = {});

  void subscribe(Topic topic);
  std::size_t poll(std::chrono::milliseconds timeout =
                       std::chrono::milliseconds(0));
  bool waitForSnapshot(Topic topic, std::chrono::milliseconds timeout);
  bool waitForRuns(std::uint64_t runs, std::chrono::milliseconds timeout);

  [[nodiscard]] const DashboardMirror& mirror() const;
  [[nodiscard]] std::uint64_t sessionToken() const { return session_; }
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }
  [[nodiscard]] std::uint64_t snapshotsReceived(Topic topic) const;
  [[nodiscard]] std::uint64_t deltasReceived() const;

  void close();

 private:
  /// Returns true when it performed an attach (which re-subscribed every
  /// recorded topic), false when the transport was live or stays down
  /// after an orderly Bye.
  bool ensureConnected();
  void foldCountersFromDead();

  ConnectFn connect_;
  const std::uint64_t clientId_;
  ResilientClientConfig config_;
  Reconnector reconnector_;
  std::unique_ptr<DashboardClient> client_;
  std::uint64_t session_ = 0;
  std::size_t connectCalls_ = 0;
  std::size_t connections_ = 0;
  std::uint64_t reconnects_ = 0;
  std::vector<Topic> topics_;  // re-subscribed on every fresh attach
  /// Counter/mirror state carried over from dead incarnations.
  std::array<std::uint64_t, 4> snapshotsBase_{};
  std::uint64_t deltasBase_ = 0;
  DashboardMirror lastMirror_;
};

}  // namespace libspector::spectord
