#include "spectord/cluster.hpp"

#include <atomic>
#include <optional>
#include <utility>
#include <vector>

#include "core/attribution.hpp"
#include "orch/dispatcher.hpp"
#include "orch/recovery.hpp"
#include "radar/corpus.hpp"
#include "spectord/client.hpp"
#include "store/prefetch.hpp"
#include "util/log.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::spectord {

CollectorResult runCollector(const orch::StudyConfig& config,
                             const CollectorOptions& options) {
  if (options.checkpointDirectory.empty())
    throw std::invalid_argument(
        "runCollector: checkpointDirectory is the collector's output and "
        "must be set");
  const store::AppStoreGenerator generator(config.store);
  const CollectorAssignment assignment{options.index, options.count};

  static const radar::LibraryCorpus kCorpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&generator](const std::string& domain) {
        return generator.domainTruth(domain);
      });
  core::TrafficAttributor attributor(kCorpus, categorizer, config.attribution);

  DaemonConfig daemonConfig;
  daemonConfig.ingest = config.ingest;
  daemonConfig.checkpointDirectory = options.checkpointDirectory;
  daemonConfig.assignment = assignment;
  SpectorDaemon daemon(
      daemonConfig,
      [&attributor](const core::RunArtifacts& artifacts) {
        return attributor.attribute(artifacts);
      },
      config.attribution.columnarFold
          ? ingest::IngestPipeline::AttributeColumnsFn(
                [&attributor](const core::RunArtifacts& artifacts) {
                  return attributor.attributeColumns(artifacts);
                })
          : ingest::IngestPipeline::AttributeColumnsFn{});

  CollectorResult result;
  const std::size_t appCount = generator.appCount();

  // Resume path: re-inject this directory's survivors straight through the
  // pipeline (replayRun preserves the persisted loss accounts; uploading
  // them as RunComplete frames would make the daemon recompute accounts
  // from datagrams it never saw). The admin Resume op is the remote
  // equivalent for an already-running daemon.
  std::vector<bool> done(appCount, false);
  if (options.resume) {
    orch::RecoveryReport report =
        orch::StudyRecovery::scan(options.checkpointDirectory);
    for (auto& run : report.runs) {
      if (run.jobIndex >= appCount || done[run.jobIndex]) continue;
      done[run.jobIndex] = true;
      daemon.pipeline().replayRun(run.jobIndex, std::move(run.artifacts),
                                  run.account);
      ++result.runsReplayed;
    }
    daemon.pipeline().drain();
  }

  // The resilient client survives connection death: it reconnects with
  // backoff, resumes its session and replays the unacked tail, so a
  // channelWrapper killing every connection still yields the same
  // checkpoints as an unbroken run.
  ResilientClientConfig clientConfig;
  clientConfig.reconnect = options.reconnect;
  ResilientIngestClient client(
      [&daemon, &options](std::size_t ordinal) {
        ChannelEndpoint endpoint = daemon.connect();
        if (options.channelWrapper)
          endpoint = options.channelWrapper(std::move(endpoint), ordinal);
        return endpoint;
      },
      /*clientId=*/0x5bec0000ULL + options.index, clientConfig);
  result.sessionToken = client.sessionToken();

  {
    // The prefetcher expands the whole corpus — ownership hashes the apk
    // digest, which only exists after expansion — and the source filters
    // to owned gaps. Non-owned expansion is wasted generation, not wasted
    // emulation; the emulator tier only ever sees owned jobs.
    std::vector<std::size_t> indices;
    indices.reserve(appCount);
    for (std::size_t i = 0; i < appCount; ++i) indices.push_back(i);
    store::JobPrefetcher prefetcher(generator, std::move(indices),
                                    config.prefetch);

    std::atomic<std::uint64_t> accepted{0};
    orch::Dispatcher dispatcher(generator.farm(), &client, config.dispatcher);
    dispatcher.runConcurrent(
        // Serialized by the dispatcher's source lock, so the plain result
        // counters are safe here.
        [&]() -> std::optional<orch::Dispatcher::Job> {
          while (true) {
            if (result.jobsDispatched >= options.jobLimit)
              return std::nullopt;  // simulated mid-study kill
            auto item = prefetcher.next();
            if (!item) return std::nullopt;
            if (!assignment.owns(item->apkSha256)) continue;
            if (done[item->index]) continue;  // replayed on resume
            // Owned is counted after the done[] skip: a resumed collector
            // reports only the gaps it still has to work, not its whole
            // share over again.
            ++result.jobsOwned;
            ++result.jobsDispatched;
            return orch::Dispatcher::Job{std::move(item->job.apk),
                                         std::move(item->job.program),
                                         item->index,
                                         std::move(item->apkSha256)};
          }
        },
        [&](std::size_t index, core::RunArtifacts&& artifacts) {
          const RunAckMsg ack = client.completeRun(index, artifacts);
          if (ack.accepted) accepted.fetch_add(1, std::memory_order_relaxed);
        },
        [&](std::size_t index, const orch::Dispatcher::FailedJob&) {
          daemon.pipeline().skip(index);
        });
    result.runsAccepted = accepted.load();
  }

  daemon.drain();
  result.metrics = daemon.metrics();
  result.reconnects = client.reconnects();
  result.framesResent = client.framesResent();
  result.runsResent = client.runsResent();
  client.bye();
  daemon.shutdown();

  util::logInfo(
      "collector %u/%u: %llu owned, %llu dispatched, %llu accepted, %llu "
      "replayed, %llu reconnects",
      options.index, options.count,
      static_cast<unsigned long long>(result.jobsOwned),
      static_cast<unsigned long long>(result.jobsDispatched),
      static_cast<unsigned long long>(result.runsAccepted),
      static_cast<unsigned long long>(result.runsReplayed),
      static_cast<unsigned long long>(result.reconnects));
  return result;
}

}  // namespace libspector::spectord
